package crackstore

import (
	"fmt"

	"crackstore/client"
	"crackstore/internal/crack"
	"crackstore/internal/dict"
	"crackstore/internal/engine"
	"crackstore/internal/netserve"
	"crackstore/internal/partial"
	"crackstore/internal/serve"
	"crackstore/internal/shard"
	"crackstore/internal/sideways"
	"crackstore/internal/store"
	"crackstore/internal/wal"
)

// Core types, re-exported from the kernel and engine layers.
type (
	// Value is the attribute value type (int64; strings are dictionary-
	// encoded by callers).
	Value = store.Value
	// Pred is a one-attribute range predicate.
	Pred = store.Pred
	// Relation is a named set of aligned columns.
	Relation = store.Relation
	// AttrPred pairs an attribute name with a predicate.
	AttrPred = engine.AttrPred
	// Query is a multi-selection, multi-projection query.
	Query = engine.Query
	// Result holds positionally aligned projection columns.
	Result = engine.Result
	// Cost is the selection / tuple-reconstruction cost split.
	Cost = engine.Cost
	// Engine is one physical design over a relation.
	Engine = engine.Engine
	// Kind identifies a physical design.
	Kind = engine.Kind
	// JoinSide describes one side of a join query.
	JoinSide = engine.JoinSide
	// JoinCost breaks a join into pre-join, join, and post-join phases.
	JoinCost = engine.JoinCost
)

// Engine kinds.
const (
	// Scan is the plain column-store baseline: full scans with
	// order-preserving selects.
	Scan = engine.Scan
	// SelCrack is selection cracking (CIDR 2007).
	SelCrack = engine.SelCrack
	// Presorted keeps presorted copies per selection attribute.
	Presorted = engine.Presorted
	// Sideways is sideways cracking with fully materialized maps
	// (Section 3 of the paper).
	Sideways = engine.Sideways
	// PartialSideways is partial sideways cracking with chunked maps and
	// storage management (Section 4 of the paper).
	PartialSideways = engine.PartialSideways
	// RowStore is the N-ary row-store reference engine (read-only).
	RowStore = engine.RowStore
)

// Range returns the half-open predicate lo <= v < hi.
func Range(lo, hi Value) Pred { return store.Range(lo, hi) }

// OpenRange returns the open predicate lo < v < hi.
func OpenRange(lo, hi Value) Pred { return store.Open(lo, hi) }

// Point returns the equality predicate v == x.
func Point(x Value) Pred { return store.Point(x) }

// NewRelation returns an empty relation with the given attribute names.
func NewRelation(name string, attrs ...string) *Relation {
	return store.NewRelation(name, attrs...)
}

// Build constructs a relation of n rows with gen supplying each value.
func Build(name string, n int, attrs []string, gen func(attr string, row int) Value) *Relation {
	return store.Build(name, n, attrs, gen)
}

// Open wraps rel (not copied) in an engine of the given kind.
func Open(kind Kind, rel *Relation) Engine { return engine.New(kind, rel) }

// CrackPolicy configures adaptive pivot selection for cracking engines.
// The zero value cracks only at query bounds (the paper's algorithm);
// the Stochastic and Capped kinds additionally pre-split any targeted
// piece larger than a cap, so convergence no longer depends on the query
// pattern — sequential sweeps and zoom-ins degrade plain cracking toward
// quadratic total work, which the auxiliary pivots prevent.
type CrackPolicy = crack.Policy

// CrackPolicyKind identifies one adaptive pivot policy.
type CrackPolicyKind = crack.PolicyKind

// Adaptive cracking policy kinds.
const (
	// DefaultCracking cracks exactly at query predicate bounds.
	DefaultCracking = crack.Default
	// StochasticCracking pre-splits oversized pieces at median-of-sample
	// pivots drawn with a seeded hash (the DDC/DDR remedy of Halim et al.,
	// VLDB 2012).
	StochasticCracking = crack.Stochastic
	// CappedCracking pre-splits oversized pieces at the midpoint of their
	// value range, recursively (the deterministic sibling).
	CappedCracking = crack.Capped
)

// CrackPolicyByName maps "default", "stochastic" or "capped" to its kind.
func CrackPolicyByName(name string) (CrackPolicyKind, bool) { return crack.KindByName(name) }

// OpenWithPolicy is Open with an adaptive cracking policy applied (a no-op
// for engine kinds that do not crack). Configure policies before the first
// query: structures that replay shared tapes freeze the policy at creation.
func OpenWithPolicy(kind Kind, rel *Relation, pol CrackPolicy) Engine {
	return engine.NewWithPolicy(kind, rel, pol)
}

// SetCrackPolicy applies an adaptive cracking policy to an engine
// (including Concurrent/Serialized wrappers and sharded engines),
// reporting whether the engine's physical design cracks. Call before the
// first query.
func SetCrackPolicy(e Engine, pol CrackPolicy) bool { return engine.SetPolicy(e, pol) }

// OpenSidewaysBudget opens a full-map sideways engine with a storage
// threshold in tuples (maps are dropped least-frequently-used first).
func OpenSidewaysBudget(rel *Relation, budget int) Engine {
	return engine.NewSidewaysWithBudget(rel, budget)
}

// OpenPartialBudget opens a partial sideways engine with a chunk-storage
// threshold in tuples.
func OpenPartialBudget(rel *Relation, budget int) Engine {
	return engine.NewPartialWithBudget(rel, budget)
}

// PartialOptions tunes the partial sideways engine beyond the budget.
type PartialOptions struct {
	// Budget is the chunk storage threshold in tuples; 0 = unlimited.
	Budget int
	// CachedPieceTuples enables head dropping once every piece of a chunk
	// is at most this many tuples; 0 disables.
	CachedPieceTuples int
	// HeadDropIdleQueries drops heads of chunks not cracked for this many
	// queries; 0 disables.
	HeadDropIdleQueries int
}

// OpenPartialWithOptions opens a partial sideways engine with full control
// over the storage-management knobs of Section 4.
func OpenPartialWithOptions(rel *Relation, opts PartialOptions) Engine {
	st := partial.NewStore(rel)
	st.Budget = opts.Budget
	st.CachedPieceTuples = opts.CachedPieceTuples
	st.HeadDropIdleQueries = opts.HeadDropIdleQueries
	return engine.WrapPartial(st)
}

// JoinMax evaluates a two-sided join with per-side conjunctive selections
// and returns the maxima of the requested projections, keyed "L.attr" /
// "R.attr" (the paper's q2 shape).
func JoinMax(l, r JoinSide) (map[string]Value, JoinCost) { return engine.JoinMax(l, r) }

// MaxPerProj reduces a result to per-projection maxima.
func MaxPerProj(res Result, projs []string) (map[string]Value, bool) {
	return engine.MaxPerProj(res, projs)
}

// SidewaysStore returns the underlying sideways store of a Sideways engine
// for advanced inspection (map sets, tapes, storage), or nil.
func SidewaysStore(e Engine) *sideways.Store {
	if se, ok := e.(interface{ Store() *sideways.Store }); ok {
		return se.Store()
	}
	return nil
}

// PartialStore returns the underlying partial store of a PartialSideways
// engine, or nil.
func PartialStore(e Engine) *partial.Store {
	if pe, ok := e.(interface{ Store() *partial.Store }); ok {
		return pe.Store()
	}
	return nil
}

// Dict is an order-preserving string dictionary: string range and prefix
// predicates become integer range predicates, making string columns
// crackable (the "string cracking" direction of the paper's conclusions).
type Dict = dict.Dict

// BuildDict builds an order-preserving dictionary over the distinct
// strings in vals.
func BuildDict(vals []string) *Dict { return dict.Build(vals) }

// KeyPair is one cracker-join match (tuple keys of both inputs).
type KeyPair = sideways.KeyPair

// CrackerJoin joins lAttr of the left engine's relation with rAttr of the
// right engine's over range partitions derived from (and retained as)
// cracking knowledge — the partitioned join of Section 3.4. Both engines
// must be Sideways engines.
func CrackerJoin(l Engine, lAttr string, r Engine, rAttr string, parts int) ([]KeyPair, error) {
	ls, rs := SidewaysStore(l), SidewaysStore(r)
	if ls == nil || rs == nil {
		return nil, fmt.Errorf("crackstore: CrackerJoin requires Sideways engines, got %v and %v", l.Kind(), r.Kind())
	}
	return sideways.CrackerJoin(ls, lAttr, rs, rAttr, parts), nil
}

// ClusteredMax returns the maximum live value of attr on a Sideways
// engine, reading only the last non-empty piece of an existing cracker map
// (Section 3.4: "a max can consider only the last piece of a map"). For
// other engine kinds it returns ok == false.
func ClusteredMax(e Engine, attr string) (v Value, ok bool) {
	if st := SidewaysStore(e); st != nil {
		return st.MaxAttr(attr)
	}
	return 0, false
}

// ClusteredMin is the symmetric minimum.
func ClusteredMin(e Engine, attr string) (v Value, ok bool) {
	if st := SidewaysStore(e); st != nil {
		return st.MinAttr(attr)
	}
	return 0, false
}

// Concurrent wraps an engine with the two-phase (probe/execute) locking
// protocol so it can be shared across goroutines: queries that reorganize
// nothing — the vast majority once a workload's ranges are cracked — run
// in parallel under a shared read lock, and only queries that must crack,
// merge pending updates, or maintain auxiliary structures take the
// exclusive write lock (double-checked, so one crack pays for every
// waiting reader). Wrapping is idempotent.
func Concurrent(e Engine) Engine { return engine.Concurrent(e) }

// Serialized wraps an engine with a single mutex that serializes every
// operation. It is the baseline Concurrent is benchmarked against
// (crackbench -clients).
func Serialized(e Engine) Engine { return engine.Serialized(e) }

// Snapshot wraps an engine for concurrent serving with lock-free snapshot
// reads: writers publish every reorganization (crack, pending-update
// merge) as a new immutable version behind an atomic pointer, readers pin
// an epoch and traverse the version they loaded, and retired versions are
// reclaimed only after every reader that could see them has exited — so a
// read-only query never waits for a crack, where Concurrent stalls all
// readers behind a cold crack's write lock. Implemented for SelCrack
// engines; already-shared engines are returned unchanged and other kinds
// fall back to Concurrent. Wrapping is idempotent.
func Snapshot(e Engine) Engine { return engine.Snapshot(e) }

// ConcurrencyStats reports reader/writer contention statistics from a
// shared-safe wrapper: time readers spent blocked (Concurrent), versions
// published and reclaimed (Snapshot). ok is false when e's wrapper does
// not track them.
func ConcurrencyStats(e Engine) (engine.ConcStats, bool) { return engine.ConcStatsOf(e) }

// Synchronized wraps an engine so it can be shared across goroutines.
//
// Deprecated: Synchronized is a shim over Concurrent, kept for
// compatibility; call Concurrent directly in new code, or Serialized for
// the fully serialized baseline.
func Synchronized(e Engine) Engine { return engine.Synchronized(e) }

// DurableOptions configures OpenDurable: WAL fsync mode (WALSyncGroup /
// WALSyncAlways / WALSyncNone), checkpoint rotation threshold, cracking
// policy, and a file-wrapping hook for fault injection.
type DurableOptions = engine.DurableOptions

// DurabilityStatsReport is the durability counter snapshot of a durable
// engine: recovery outcome (clean vs replayed, records and bytes applied,
// torn tail truncated), crack-tape length, checkpoints written, WAL size,
// and write/fsync activity.
type DurabilityStatsReport = engine.DurStats

// WALSync selects when an acked write becomes durable (see the Durability
// section of the package documentation).
type WALSync = wal.SyncMode

// WAL sync modes.
const (
	// WALSyncGroup (default): acks wait for an fsync covering their
	// record; concurrent writers share fsyncs (group commit).
	WALSyncGroup = wal.SyncGroup
	// WALSyncAlways: eager fsync per record; same loss guarantee as group
	// commit, more syscalls for a strictly serial writer.
	WALSyncAlways = wal.SyncAlways
	// WALSyncNone: acks never wait; a crash may lose the acked tail.
	WALSyncNone = wal.SyncNone
)

// ParseWALSync parses "group", "always" or "none" (the -fsync flag values).
func ParseWALSync(s string) (WALSync, error) { return wal.ParseSyncMode(s) }

// OpenDurable opens (or creates) a durable engine backed by data directory
// dir: every acked Insert/Delete is written to a CRC-framed write-ahead
// log before it is applied, reorganizing queries are recorded on a crack
// tape, and periodic checkpoints snapshot base columns + tombstones + tape
// atomically. For a fresh directory, rel seeds the store; on recovery, rel
// is ignored — the relation is rebuilt from the checkpoint, the tape is
// replayed so the adaptive layout comes back warm, and the WAL tail is
// applied (torn tail truncated). The returned engine is shared-safe (no
// Concurrent wrapper needed) and should be closed with CloseDurable.
func OpenDurable(kind Kind, rel *Relation, dir string, opts DurableOptions) (Engine, error) {
	return engine.OpenDurable(kind, rel, dir, opts)
}

// CloseDurable flushes, checkpoints, and closes a durable engine, marking
// the shutdown clean so the next OpenDurable skips replay entirely. ok is
// false when e is not a durable engine.
func CloseDurable(e Engine) (ok bool, err error) { return engine.CloseDurable(e) }

// DurabilityStats reports a durable engine's durability counters; ok is
// false when e is not durable.
func DurabilityStats(e Engine) (s DurabilityStatsReport, ok bool) { return engine.DurStatsOf(e) }

// ShardOptions tunes a sharded engine: partition attribute and hash
// fallback.
type ShardOptions = shard.Options

// Sharded partitions rel across n engines of the given kind, each behind
// its own Concurrent wrapper. Rows are range-partitioned on
// ShardOptions.Attr (default: the relation's first attribute) with
// boundaries at the base data's n-quantiles, falling back to hash
// partitioning when the attribute cannot form n distinct bands (or when
// ShardOptions.Hash forces it). Conjunctive queries that constrain the
// partition attribute skip every shard whose value band cannot intersect
// the predicate, and a query takes a shard's write lock only if that shard
// itself must crack — a crack on one shard never blocks read-only hits on
// the others. The returned engine is already shared-safe: Serve and
// Concurrent use it as-is.
func Sharded(kind Kind, rel *Relation, n int, opts ShardOptions) Engine {
	return shard.New(kind, rel, n, opts)
}

// ServeOptions tunes a Server: worker-pool size, admission-queue capacity,
// and admission batching of same-attribute queries.
type ServeOptions = serve.Options

// Server executes queries from many clients against one shared engine
// through a bounded worker pool, capturing per-query latencies.
type Server = serve.Server

// ServeStats summarizes a serving run: query count, throughput (QPS), and
// latency percentiles.
type ServeStats = serve.Stats

// Serve starts a concurrent serving layer over e (wrapping it in
// Concurrent unless it is already shared-safe). Callers submit queries
// with Server.Do from any number of goroutines and must Close the server
// when done.
func Serve(e Engine, opts ServeOptions) *Server { return serve.New(e, opts) }

// ErrServeTimeout is the distinct error Server.Do returns when
// ServeOptions.Timeout expires before the query completes; timed-out
// queries count in ServeStats.Errors and never leak a worker slot.
var ErrServeTimeout = serve.ErrTimeout

// ErrServeOverloaded is the distinct error Server.Do returns when
// ServeOptions.MaxWaiting is set and the backlog is at the watermark: the
// query was shed without executing. Sheds count in ServeStats.Sheds, not
// Errors — shedding is the overload defense working, not a failure.
var ErrServeOverloaded = serve.ErrOverloaded

// DialOptions tunes a remote client: pooled connection count, response
// frame cap, dial timeout, and the resilience knobs — retry budget and
// backoff schedule (MaxRetries, RetryBase, RetryMax), hedged reads
// (Hedge, HedgeAfter), and per-call deadlines (Timeout).
type DialOptions = client.Options

// ErrRemoteOverloaded is the error a RemoteClient call returns once the
// server has shed it past the retry budget: the server answered in-band
// that it is at capacity, and backing off further is the caller's call.
var ErrRemoteOverloaded = client.ErrOverloaded

// RemoteCounters are a RemoteClient's cumulative resilience counters
// (retries, hedges, hedge wins, sheds seen, redials) from
// RemoteClient.Counters — the observability half of the retry layer: a
// fault-injection run whose counters stay zero exercised nothing.
type RemoteCounters = client.Counters

// RemoteClient is a connection to a crackserved daemon. It multiplexes any
// number of concurrent callers over a small pool of TCP connections —
// every request carries an ID, so many requests are in flight per
// connection at once and responses are matched as the server finishes
// them — and returns the same typed results (Result, Cost) the in-process
// Engine API does.
type RemoteClient = client.Client

// RemoteStats is the scalar serving summary a daemon reports to
// RemoteClient.Stats.
type RemoteStats = client.Stats

// Dial connects to a crackserved daemon (or any ListenAndServe listener)
// at addr. Use it when the engine lives in another process:
//
//	c, err := crackstore.Dial("localhost:9090", crackstore.DialOptions{Conns: 2})
//	res, cost, err := c.Query(q) // Engine.Query, over the wire
//
// For an engine in the same process, Open/Serve remain the faster path.
func Dial(addr string, opts DialOptions) (*RemoteClient, error) { return client.Dial(addr, opts) }

// NetServeOptions tunes a network server: the serving-layer knobs
// (workers, batching, per-query Timeout, Policy) plus wire limits
// (MaxFrame, MaxPipeline).
type NetServeOptions = netserve.Options

// NetServer serves an engine over TCP to RemoteClient peers. Close drains
// gracefully: it answers everything in flight before shutting down.
type NetServer = netserve.Server

// ListenAndServe serves e over TCP at addr (e.g. ":9090") in a background
// goroutine — the embeddable form of the crackserved daemon. The engine is
// wrapped for sharing exactly as Serve wraps it. Remote peers connect with
// Dial; Close the returned server to drain and stop.
func ListenAndServe(addr string, e Engine, opts NetServeOptions) (*NetServer, error) {
	return netserve.Listen(addr, e, opts)
}
