package crackstore_test

import (
	"math/rand"
	"testing"

	crackstore "crackstore"
)

func demoRelation(n int, seed int64) *crackstore.Relation {
	rng := rand.New(rand.NewSource(seed))
	return crackstore.Build("R", n, []string{"A", "B", "C"},
		func(string, int) crackstore.Value { return rng.Int63n(1000) })
}

func TestOpenAllKinds(t *testing.T) {
	kinds := []crackstore.Kind{
		crackstore.Scan, crackstore.SelCrack, crackstore.Presorted,
		crackstore.Sideways, crackstore.PartialSideways, crackstore.RowStore,
	}
	q := crackstore.Query{
		Preds: []crackstore.AttrPred{{Attr: "A", Pred: crackstore.Range(100, 300)}},
		Projs: []string{"B"},
	}
	var ref int
	for i, k := range kinds {
		e := crackstore.Open(k, demoRelation(500, 7))
		res, cost := e.Query(q)
		if cost.Total() < 0 {
			t.Fatalf("%v: negative cost", k)
		}
		if i == 0 {
			ref = res.N
			continue
		}
		if res.N != ref {
			t.Fatalf("%v returned %d rows, want %d", k, res.N, ref)
		}
	}
}

func TestPredicateConstructors(t *testing.T) {
	if !crackstore.Range(1, 5).Matches(1) || crackstore.Range(1, 5).Matches(5) {
		t.Fatal("Range semantics")
	}
	if crackstore.OpenRange(1, 5).Matches(1) {
		t.Fatal("OpenRange semantics")
	}
	if !crackstore.Point(3).Matches(3) || crackstore.Point(3).Matches(4) {
		t.Fatal("Point semantics")
	}
}

func TestStoreAccessors(t *testing.T) {
	side := crackstore.Open(crackstore.Sideways, demoRelation(100, 1))
	if crackstore.SidewaysStore(side) == nil {
		t.Fatal("SidewaysStore should unwrap a sideways engine")
	}
	if crackstore.PartialStore(side) != nil {
		t.Fatal("PartialStore must not unwrap a sideways engine")
	}
	part := crackstore.OpenPartialWithOptions(demoRelation(100, 1),
		crackstore.PartialOptions{Budget: 1000, CachedPieceTuples: 64})
	if crackstore.PartialStore(part) == nil {
		t.Fatal("PartialStore should unwrap a partial engine")
	}
}

func TestBudgetedOpeners(t *testing.T) {
	rel := demoRelation(1000, 2)
	e := crackstore.OpenPartialBudget(rel, 500)
	for i := 0; i < 10; i++ {
		e.Query(crackstore.Query{
			Preds: []crackstore.AttrPred{{Attr: "A", Pred: crackstore.Range(crackstore.Value(i*90), crackstore.Value(i*90+200))}},
			Projs: []string{"B"},
		})
		if e.Storage() > 500 {
			t.Fatalf("budget exceeded: %d", e.Storage())
		}
	}
	e2 := crackstore.OpenSidewaysBudget(demoRelation(1000, 2), 2500)
	e2.Query(crackstore.Query{
		Preds: []crackstore.AttrPred{{Attr: "A", Pred: crackstore.Range(0, 100)}},
		Projs: []string{"B", "C"},
	})
	if e2.Storage() == 0 {
		t.Fatal("sideways should have materialized maps")
	}
}

func TestJoinMaxPublic(t *testing.T) {
	l := crackstore.Open(crackstore.Sideways, demoRelation(300, 3))
	r := crackstore.Open(crackstore.Sideways, demoRelation(300, 4))
	maxes, cost := crackstore.JoinMax(
		crackstore.JoinSide{E: l, Preds: []crackstore.AttrPred{{Attr: "A", Pred: crackstore.Range(0, 800)}}, JoinAttr: "C", Projs: []string{"B"}},
		crackstore.JoinSide{E: r, Preds: []crackstore.AttrPred{{Attr: "A", Pred: crackstore.Range(0, 800)}}, JoinAttr: "C", Projs: []string{"B"}},
	)
	if cost.Total() <= 0 {
		t.Fatal("join cost should be positive")
	}
	if _, ok := maxes["L.B"]; !ok {
		t.Fatal("missing L.B max")
	}
}
