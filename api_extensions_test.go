package crackstore_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	crackstore "crackstore"
)

func TestBuildDictAndPrefixQueries(t *testing.T) {
	d := crackstore.BuildDict([]string{"rome", "paris", "prague", "porto"})
	if d.Len() != 4 {
		t.Fatalf("Len = %d", d.Len())
	}
	p := d.PrefixPred("p")
	matched := 0
	for c := 0; c < d.Len(); c++ {
		if p.Matches(crackstore.Value(c)) {
			matched++
		}
	}
	if matched != 3 {
		t.Fatalf("prefix p matched %d, want 3", matched)
	}
}

func TestClusteredMaxMin(t *testing.T) {
	rel := demoRelation(500, 11)
	e := crackstore.Open(crackstore.Sideways, rel)
	// Crack a little first so the clustered path has pieces to use.
	e.Query(crackstore.Query{
		Preds: []crackstore.AttrPred{{Attr: "A", Pred: crackstore.Range(100, 600)}},
		Projs: []string{"B"},
	})
	var wantMax, wantMin crackstore.Value = -1, 1 << 62
	for _, v := range rel.MustColumn("A").Vals {
		if v > wantMax {
			wantMax = v
		}
		if v < wantMin {
			wantMin = v
		}
	}
	if m, ok := crackstore.ClusteredMax(e, "A"); !ok || m != wantMax {
		t.Fatalf("ClusteredMax = %d,%v want %d", m, ok, wantMax)
	}
	if m, ok := crackstore.ClusteredMin(e, "A"); !ok || m != wantMin {
		t.Fatalf("ClusteredMin = %d,%v want %d", m, ok, wantMin)
	}
	// Non-sideways engines report !ok.
	if _, ok := crackstore.ClusteredMax(crackstore.Open(crackstore.Scan, demoRelation(10, 1)), "A"); ok {
		t.Fatal("ClusteredMax on scan engine should report !ok")
	}
}

func TestCrackerJoinPublic(t *testing.T) {
	l := crackstore.Open(crackstore.Sideways, demoRelation(400, 12))
	r := crackstore.Open(crackstore.Sideways, demoRelation(400, 13))
	pairs, err := crackstore.CrackerJoin(l, "A", r, "A", 8)
	if err != nil {
		t.Fatal(err)
	}
	// Reference cardinality from fresh copies of the same relations.
	lc := map[crackstore.Value]int{}
	for _, v := range demoRelation(400, 12).MustColumn("A").Vals {
		lc[v]++
	}
	rc := map[crackstore.Value]int{}
	for _, v := range demoRelation(400, 13).MustColumn("A").Vals {
		rc[v]++
	}
	want := 0
	for k, c := range lc {
		want += c * rc[k]
	}
	if len(pairs) != want {
		t.Fatalf("CrackerJoin returned %d pairs, want %d", len(pairs), want)
	}
	// Deterministic across repeats.
	again, _ := crackstore.CrackerJoin(l, "A", r, "A", 8)
	canon := func(ps []crackstore.KeyPair) []crackstore.KeyPair {
		out := append([]crackstore.KeyPair(nil), ps...)
		sort.Slice(out, func(i, j int) bool {
			if out[i].LKey != out[j].LKey {
				return out[i].LKey < out[j].LKey
			}
			return out[i].RKey < out[j].RKey
		})
		return out
	}
	a, b := canon(pairs), canon(again)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("CrackerJoin not deterministic across repeats")
		}
	}
	// Wrong engine kinds are rejected.
	if _, err := crackstore.CrackerJoin(
		crackstore.Open(crackstore.Scan, demoRelation(10, 1)), "A", r, "A", 4); err == nil {
		t.Fatal("CrackerJoin should reject non-sideways engines")
	}
}

func TestSynchronizedPublic(t *testing.T) {
	e := crackstore.Synchronized(crackstore.Open(crackstore.Sideways, demoRelation(2000, 14)))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				lo := rng.Int63n(900)
				e.Query(crackstore.Query{
					Preds: []crackstore.AttrPred{{Attr: "A", Pred: crackstore.Range(lo, lo+100)}},
					Projs: []string{"B", "C"},
				})
			}
		}(int64(g))
	}
	wg.Wait()
	res, _ := e.Query(crackstore.Query{
		Preds: []crackstore.AttrPred{{Attr: "A", Pred: crackstore.Range(0, 1000)}},
		Projs: []string{"B"},
	})
	if res.N != 2000 {
		t.Fatalf("post-concurrency full query N = %d, want 2000", res.N)
	}
}

// TestShardedPublic drives the sharded engine through the public API: a
// sharded engine served to many clients must agree with a single engine
// over the same rows, and the serving stats must reflect every query.
func TestShardedPublic(t *testing.T) {
	// The reference engine is queried from every client goroutine too, so
	// it needs its own concurrency wrapper (cracking mutates on read).
	single := crackstore.Concurrent(crackstore.Open(crackstore.Sideways, demoRelation(2000, 21)))
	sharded := crackstore.Sharded(crackstore.Sideways, demoRelation(2000, 21), 4,
		crackstore.ShardOptions{Attr: "A"})

	srv := crackstore.Serve(sharded, crackstore.ServeOptions{Workers: 4})
	defer srv.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				lo := rng.Int63n(900)
				q := crackstore.Query{
					Preds: []crackstore.AttrPred{{Attr: "A", Pred: crackstore.Range(lo, lo+60)}},
					Projs: []string{"B"},
				}
				want, _ := single.Query(q)
				got, _, err := srv.Do(q)
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				if got.N != want.N {
					t.Errorf("sharded N=%d, single N=%d", got.N, want.N)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := srv.Stats()
	if st.Queries != 4*25 || st.Errors != 0 {
		t.Fatalf("stats: %d queries, %d errors; want 100, 0", st.Queries, st.Errors)
	}
}
