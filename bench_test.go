// Benchmarks that regenerate each table and figure of the paper at reduced
// scale — one testing.B benchmark per artifact. Run all with
//
//	go test -bench=. -benchmem
//
// and use cmd/crackbench / cmd/tpchbench for full-size runs with the
// printed rows/series.
package crackstore_test

import (
	"testing"

	"crackstore/internal/exp"
	"crackstore/internal/workload"
)

func benchCfg(rows, queries int) exp.Config {
	return exp.Config{Rows: rows, Queries: queries, Seed: 1}
}

// BenchmarkExp1_Fig4a regenerates Figure 4(a) and the Section 3.6 cost
// breakdown table: varying tuple reconstructions across the four engines.
func BenchmarkExp1_Fig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Exp1(benchCfg(20000, 50))
	}
}

// BenchmarkExp2_Fig4b regenerates Figure 4(b): varying selectivity.
func BenchmarkExp2_Fig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Exp2(benchCfg(20000, 60))
	}
}

// BenchmarkExp3_Reordering regenerates the Section 3.6 reordering inset.
func BenchmarkExp3_Reordering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Exp3(benchCfg(100000, 0))
	}
}

// BenchmarkExp4_Fig5 regenerates Figure 5: join queries with multiple
// selections and reconstructions.
func BenchmarkExp4_Fig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Exp4(benchCfg(10000, 25))
	}
}

// BenchmarkExp5_Fig6 regenerates Figure 6: skewed workload.
func BenchmarkExp5_Fig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Exp5(benchCfg(20000, 100))
	}
}

// BenchmarkExp6HFLV_Fig7a regenerates Figure 7(a): high-frequency
// low-volume updates.
func BenchmarkExp6HFLV_Fig7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Exp6(benchCfg(10000, 100), workload.HFLV)
	}
}

// BenchmarkExp6LFHV_Fig7b regenerates Figure 7(b): low-frequency
// high-volume updates (scaled: 50 updates every 50 queries).
func BenchmarkExp6LFHV_Fig7b(b *testing.B) {
	sc := workload.UpdateScenario{Name: "LFHV", Frequency: 50, Volume: 50}
	for i := 0; i < b.N; i++ {
		exp.Exp6(benchCfg(10000, 100), sc)
	}
}

// BenchmarkFig9_StorageThresholds regenerates Figure 9: full vs partial
// maps under storage restrictions.
func BenchmarkFig9_StorageThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig9(benchCfg(10000, 100))
	}
}

// BenchmarkFig10_Adaptation regenerates Figure 10: workload adaptation
// under a storage threshold.
func BenchmarkFig10_Adaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig10(benchCfg(10000, 100))
	}
}

// BenchmarkFig11_SequenceTotals regenerates Figure 11: cumulative costs
// over result sizes and thresholds.
func BenchmarkFig11_SequenceTotals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig11(benchCfg(5000, 50))
	}
}

// BenchmarkFig12_ChangeRate regenerates Figure 12: workload change rate.
func BenchmarkFig12_ChangeRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig12(benchCfg(5000, 100))
	}
}

// BenchmarkFig13_Alignment regenerates Figure 13: alignment cost profiles.
func BenchmarkFig13_Alignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig13(benchCfg(10000, 100))
	}
}

// BenchmarkFig14_TPCH regenerates Figure 14 and the Section 5 improvement
// table at a reduced scale factor with 5 parameter variations.
func BenchmarkFig14_TPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig14(exp.Config{Seed: 1}, 0.002, 5)
	}
}

// BenchmarkTPCHMixed regenerates the Section 5 mixed-workload figure.
func BenchmarkTPCHMixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Mixed(exp.Config{Seed: 1}, 0.002, 3)
	}
}
