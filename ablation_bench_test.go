// Ablation benchmarks for the design choices DESIGN.md calls out: adaptive
// (lazy) vs eager alignment, histogram-driven vs naive map-set choice, and
// partial vs forced-full chunk alignment. Each pair runs the identical
// workload with only the switch flipped.
package crackstore_test

import (
	"math/rand"
	"testing"

	crackstore "crackstore"
	"crackstore/internal/engine"
	"crackstore/internal/partial"
	"crackstore/internal/sideways"
	"crackstore/internal/store"
	"crackstore/internal/workload"
)

func ablationRel(rows, attrs int, seed int64) *store.Relation {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, attrs)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	return store.Build("R", rows, names, func(string, int) store.Value {
		return rng.Int63n(int64(rows))
	})
}

// Lazy vs eager alignment: nine maps get created once, then the workload
// hammers a single hot map. With adaptive (lazy) alignment the cold maps
// never pay for the hot map's cracks; with eager ("on-line") alignment —
// the strategy Section 3.2 rejects — every query drags all ten maps
// through every crack.
func benchAlignment(b *testing.B, eager bool) {
	rows := 50000
	projs := []string{"B", "C", "D", "E", "F", "G", "H", "I", "J"}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := sideways.NewStore(ablationRel(rows, 10, 1))
		st.EagerAlignment = eager
		gen := workload.New(int64(rows), 2)
		b.StartTimer()
		// Materialize every map once.
		for _, proj := range projs {
			st.SelectProject("A", gen.Range(0.1), []string{proj})
		}
		// Then only the hot map is queried.
		for q := 0; q < 200; q++ {
			st.SelectProject("A", gen.Range(0.1), []string{"B"})
		}
	}
}

func BenchmarkAblationAlignmentLazy(b *testing.B)  { benchAlignment(b, false) }
func BenchmarkAblationAlignmentEager(b *testing.B) { benchAlignment(b, true) }

// Histogram-driven vs naive map-set choice: the first predicate is very
// unselective, the second very selective. The histogram chooser flips to
// the selective set; the naive chooser builds maps over 90% candidate
// areas.
func benchSetChoice(b *testing.B, naive bool) {
	rows := 50000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := sideways.NewStore(ablationRel(rows, 4, 3))
		st.NaiveSetChoice = naive
		gen := workload.New(int64(rows), 4)
		b.StartTimer()
		for q := 0; q < 100; q++ {
			preds := []sideways.AttrPred{
				{Attr: "A", Pred: gen.Range(0.9)},
				{Attr: "B", Pred: gen.Range(0.02)},
			}
			st.MultiSelect(preds, []string{"C", "D"}, false)
		}
	}
}

func BenchmarkAblationSetChoiceHistogram(b *testing.B) { benchSetChoice(b, false) }
func BenchmarkAblationSetChoiceNaive(b *testing.B)     { benchSetChoice(b, true) }

// Partial vs forced-full chunk alignment: one heavily cracked wide area,
// then a different attribute's chunks repeatedly used as covered chunks.
func benchPartialAlignment(b *testing.B, forceFull bool) {
	rows := 50000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := partial.NewStore(ablationRel(rows, 6, 5))
		st.ForceFullAlignment = forceFull
		gen := workload.New(int64(rows), 6)
		// Crack one attribute's chunks hard.
		for q := 0; q < 100; q++ {
			st.SelectProject("A", gen.RangeIn(1, int64(rows), 0.05), []string{"B"})
		}
		b.StartTimer()
		// Covered queries over other tails: partial alignment leaves them
		// at low cursors; forced-full replays the whole tape per chunk.
		wide := store.Range(1, int64(rows))
		tails := []string{"C", "D", "E", "F"}
		for q := 0; q < 50; q++ {
			st.SelectProject("A", wide, []string{tails[q%len(tails)]})
		}
	}
}

func BenchmarkAblationPartialAlignment(b *testing.B)   { benchPartialAlignment(b, false) }
func BenchmarkAblationFullChunkAlignment(b *testing.B) { benchPartialAlignment(b, true) }

// Head dropping: storage saved vs recovery cost when the workload comes
// back to crack a head-dropped chunk.
func BenchmarkAblationHeadDropRecovery(b *testing.B) {
	rows := 50000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := partial.NewStore(ablationRel(rows, 2, 7))
		gen := workload.New(int64(rows), 8)
		for q := 0; q < 50; q++ {
			st.SelectProject("A", gen.Range(0.05), []string{"B"})
		}
		st.DropHead()
		b.StartTimer()
		for q := 0; q < 20; q++ {
			st.SelectProject("A", gen.Range(0.05), []string{"B"})
		}
	}
}

// Reference: the same tail queries without the head drop.
func BenchmarkAblationNoHeadDrop(b *testing.B) {
	rows := 50000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := partial.NewStore(ablationRel(rows, 2, 7))
		gen := workload.New(int64(rows), 8)
		for q := 0; q < 50; q++ {
			st.SelectProject("A", gen.Range(0.05), []string{"B"})
		}
		b.StartTimer()
		for q := 0; q < 20; q++ {
			st.SelectProject("A", gen.Range(0.05), []string{"B"})
		}
	}
}

// Sanity: the ablation switches must not change results, only costs.
func TestAblationSwitchesPreserveResults(t *testing.T) {
	rows := 5000
	gen := workload.New(int64(rows), 9)
	preds := make([]store.Pred, 40)
	for i := range preds {
		preds[i] = gen.Range(0.1)
	}
	run := func(eager, naive bool) []int {
		st := sideways.NewStore(ablationRel(rows, 4, 10))
		st.EagerAlignment = eager
		st.NaiveSetChoice = naive
		var ns []int
		for _, p := range preds {
			res := st.MultiSelect([]sideways.AttrPred{
				{Attr: "A", Pred: p},
				{Attr: "B", Pred: store.Range(0, int64(rows/2))},
			}, []string{"C"}, false)
			ns = append(ns, res.N)
		}
		return ns
	}
	base := run(false, false)
	for _, mode := range [][2]bool{{true, false}, {false, true}, {true, true}} {
		got := run(mode[0], mode[1])
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("ablation %v changed result %d: %d vs %d", mode, i, got[i], base[i])
			}
		}
	}
	// Partial: forced-full alignment must match partial alignment.
	runP := func(force bool) []int {
		st := partial.NewStore(ablationRel(rows, 3, 11))
		st.ForceFullAlignment = force
		var ns []int
		for _, p := range preds {
			res := st.SelectProject("A", p, []string{"B", "C"})
			ns = append(ns, res.N)
		}
		return ns
	}
	pa, pb := runP(false), runP(true)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("ForceFullAlignment changed result %d: %d vs %d", i, pa[i], pb[i])
		}
	}
	_ = crackstore.Sideways
	_ = engine.Scan
}
