package client

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/store"
	"crackstore/internal/wire"
)

func TestDialFailure(t *testing.T) {
	// A listener we immediately close: dialing it must fail cleanly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr, Options{DialTimeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("Dial to a closed port succeeded")
	}
}

func TestCallsAfterClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { // accept and hold, so Dial succeeds
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	c, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	c.Close()
	if _, _, err := c.Query(engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(1, 2)}},
	}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close = %v, want ErrClosed", err)
	}
	if _, err := c.Insert(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close = %v, want ErrClosed", err)
	}
	c.Close() // idempotent
}

// miniServer is a minimal in-test wire peer: it answers every decodable
// request with a canned StatusOK response, so client-side pool and retry
// machinery can be exercised with full control over connection lifetimes.
type miniServer struct {
	t  *testing.T
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

func startMiniServer(t *testing.T) *miniServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := &miniServer{t: t, ln: ln}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			m.mu.Lock()
			m.conns = append(m.conns, nc)
			m.mu.Unlock()
			go m.serve(nc)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		m.closeAll()
	})
	return m
}

func (m *miniServer) serve(nc net.Conn) {
	br := bufio.NewReader(nc)
	for {
		payload, err := wire.ReadFrame(br, 0)
		if err != nil {
			nc.Close()
			return
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			nc.Close()
			return
		}
		resp := wire.Response{ID: req.ID, Op: req.Op, Status: wire.StatusOK}
		switch req.Op {
		case wire.OpQuery, wire.OpQueryRO:
			resp.Result = engine.Result{N: 1, Cols: map[string][]store.Value{"B": {42}}}
		case wire.OpInsert:
			resp.Key = 7
		case wire.OpDelete, wire.OpPing, wire.OpStats:
		default:
			resp.Status = wire.StatusErr
			resp.Err = "miniServer: unknown op"
		}
		if _, err := nc.Write(wire.AppendResponse(nil, &resp)); err != nil {
			nc.Close()
			return
		}
	}
}

// closeAll severs every accepted connection (peer death, client view).
func (m *miniServer) closeAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, nc := range m.conns {
		nc.Close()
	}
	m.conns = nil
}

var testQuery = engine.Query{
	Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(1, 2)}},
}

// TestPeerDeathRetriesAndRedials: a peer that dies mid-call no longer
// fails the pool permanently — the idempotent call is retried over a
// redialed connection and succeeds, and the counters show the machinery
// fired.
func TestPeerDeathRetriesAndRedials(t *testing.T) {
	m := startMiniServer(t)
	c, err := Dial(m.ln.Addr().String(), Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	if _, _, err := c.Query(testQuery); err != nil {
		t.Fatalf("warm-up query: %v", err)
	}
	m.closeAll() // peer dies between calls; next call hits a dead conn

	if _, _, err := c.Query(testQuery); err != nil {
		t.Fatalf("query after peer death failed despite retries: %v", err)
	}
	ctr := c.Counters()
	if ctr.Redials == 0 {
		t.Fatalf("no redial recorded after peer death: %+v", ctr)
	}
}

// TestOneConnResetDoesNotPoisonPool: with a pool of two, killing every
// current connection must not fail future calls — each slot evicts its
// dead conn and redials independently.
func TestOneConnResetDoesNotPoisonPool(t *testing.T) {
	m := startMiniServer(t)
	c, err := Dial(m.ln.Addr().String(), Options{Conns: 2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	for i := 0; i < 4; i++ {
		if _, _, err := c.Query(testQuery); err != nil {
			t.Fatalf("warm-up query %d: %v", i, err)
		}
	}
	m.closeAll()
	// Every subsequent call must succeed; round-robin touches both slots.
	for i := 0; i < 8; i++ {
		if _, _, err := c.Query(testQuery); err != nil {
			t.Fatalf("query %d after conn resets: %v", i, err)
		}
	}
	if ctr := c.Counters(); ctr.Redials < 1 {
		t.Fatalf("expected redials after resets, got %+v", ctr)
	}
}

// TestRetryDisabledFailsFast: with MaxRetries < 0 the old fail-fast
// behavior is preserved for the in-flight call — but a later call still
// succeeds, because the pool itself always heals by redialing.
func TestRetryDisabledFailsFast(t *testing.T) {
	m := startMiniServer(t)
	c, err := Dial(m.ln.Addr().String(), Options{MaxRetries: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	if _, _, err := c.Query(testQuery); err != nil {
		t.Fatalf("warm-up query: %v", err)
	}
	m.closeAll()
	if _, _, err := c.Query(testQuery); err == nil {
		t.Fatal("retry-disabled call on dead conn succeeded")
	}
	// The dead conn was evicted; the pool heals for the next call.
	if _, _, err := c.Query(testQuery); err != nil {
		t.Fatalf("pool did not heal after fail-fast error: %v", err)
	}
	if ctr := c.Counters(); ctr.Retries != 0 {
		t.Fatalf("retries fired despite MaxRetries=-1: %+v", ctr)
	}
}

// slowServer answers every query after a fixed delay; stallFirstRO makes
// the first accepted connection swallow QueryRO requests entirely.
func slowServer(t *testing.T, delay time.Duration, stallFirstRO bool) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	acceptN := 0
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			acceptN++
			stall := stallFirstRO && acceptN == 1
			mu.Unlock()
			go func() {
				defer nc.Close()
				br := bufio.NewReader(nc)
				for {
					payload, err := wire.ReadFrame(br, 0)
					if err != nil {
						return
					}
					req, err := wire.DecodeRequest(payload)
					if err != nil {
						return
					}
					if stall && req.Op == wire.OpQueryRO {
						continue // swallow: the hedge must rescue the call
					}
					if delay > 0 {
						time.Sleep(delay)
					}
					resp := wire.Response{ID: req.ID, Op: req.Op, Status: wire.StatusOK,
						Result: engine.Result{N: 1, Cols: map[string][]store.Value{"B": {1}}}}
					if _, err := nc.Write(wire.AppendResponse(nil, &resp)); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestContextCancellationAbandonsCall: a canceled context unblocks the
// caller immediately, and the late response for the abandoned request is
// dropped without killing the connection.
func TestContextCancellationAbandonsCall(t *testing.T) {
	ln := slowServer(t, 100*time.Millisecond, false)
	c, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, _, err = c.QueryContext(ctx, testQuery)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled call returned %v, want DeadlineExceeded", err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("cancellation took %v, want prompt return", d)
	}
	// The straggling response for the abandoned ID must not poison the
	// conn: the next (uncanceled) call on the same connection succeeds.
	if _, _, err := c.Query(testQuery); err != nil {
		t.Fatalf("call after abandoned request failed: %v", err)
	}
}

// TestHedgedReadWins: with hedging on and one conn's read-only answers
// swallowed, the hedge fires on the other conn and every call completes.
func TestHedgedReadWins(t *testing.T) {
	ln := slowServer(t, 0, true)
	c, err := Dial(ln.Addr().String(), Options{Conns: 2, Hedge: true, HedgeAfter: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			if _, _, ok, err := c.QueryRO(testQuery); err != nil || !ok {
				t.Errorf("hedged QueryRO %d: ok=%v err=%v", i, ok, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("hedged reads hung — hedge did not rescue the stalled conn")
	}
	if ctr := c.Counters(); ctr.Hedges == 0 {
		t.Fatalf("no hedge fired against a stalled conn: %+v", ctr)
	}
}

// TestPing: the health probe round-trips against a live peer and fails
// promptly against a dead one.
func TestPing(t *testing.T) {
	m := startMiniServer(t)
	c, err := Dial(m.ln.Addr().String(), Options{MaxRetries: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping against live server: %v", err)
	}
	m.ln.Close()
	m.closeAll()
	if err := c.Ping(); err == nil {
		t.Fatal("Ping against dead server succeeded")
	}
}

// TestUnknownStatusIsTyped: a response status this client build does not
// know (protocol skew: a newer server enum) surfaces as a typed
// *UnknownStatusError, distinguishable from ordinary remote failures.
func TestUnknownStatusIsTyped(t *testing.T) {
	var c Client
	resp := &wire.Response{Op: wire.OpQueryRO, Status: wire.Status(99)}
	_, _, ok, err := c.roResult(resp, time.Now())
	if ok {
		t.Fatal("unknown status reported ok=true")
	}
	var use *UnknownStatusError
	if !errors.As(err, &use) {
		t.Fatalf("err = %v (%T), want *UnknownStatusError", err, err)
	}
	if use.Op != wire.OpQueryRO || use.Status != wire.Status(99) {
		t.Fatalf("UnknownStatusError fields = %+v", use)
	}
	// The known statuses must not be misclassified as skew.
	for _, st := range []wire.Status{wire.StatusOK, wire.StatusRefused, wire.StatusErr, wire.StatusOverloaded} {
		_, _, _, err := c.roResult(&wire.Response{Op: wire.OpQueryRO, Status: st}, time.Now())
		if errors.As(err, &use) {
			t.Fatalf("status %d misreported as unknown", byte(st))
		}
	}
}
