package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/store"
)

func TestDialFailure(t *testing.T) {
	// A listener we immediately close: dialing it must fail cleanly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr, Options{DialTimeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("Dial to a closed port succeeded")
	}
}

func TestCallsAfterClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { // accept and hold, so Dial succeeds
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	c, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	c.Close()
	if _, _, err := c.Query(engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(1, 2)}},
	}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close = %v, want ErrClosed", err)
	}
	if _, err := c.Insert(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close = %v, want ErrClosed", err)
	}
	c.Close() // idempotent
}

func TestPeerDisconnectFailsPendingAndFutureCalls(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	c, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	peer := <-accepted

	// A call in flight when the peer hangs up must fail, not hang.
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Query(engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(1, 2)}},
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the wire
	peer.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight call survived peer disconnect")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after peer disconnect")
	}
	// And later calls fail fast on the dead pool.
	if _, err := c.Insert(1, 2); err == nil {
		t.Fatal("call on dead pool succeeded")
	}
}
