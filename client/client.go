// Package client is the remote counterpart of the in-process engine API: a
// connection to a crackserved daemon (or any internal/netserve listener)
// that speaks the internal/wire protocol and returns the same typed
// results — engine.Result, engine.Cost — an in-process Engine would.
//
// A Client multiplexes any number of concurrent callers over a small pool
// of TCP connections. Every request carries an ID, so many requests from
// many goroutines are in flight on one connection at once (pipelining) and
// responses are matched as they arrive, in whatever order the server
// finishes them. Calls are synchronous per goroutine: fire N goroutines to
// keep N requests in flight.
//
// The crackstore root package re-exports Dial, so typical use is:
//
//	c, err := crackstore.Dial("localhost:9090", crackstore.DialOptions{Conns: 2})
//	res, cost, err := c.Query(q) // same types as Engine.Query
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bufio"

	"crackstore/internal/engine"
	"crackstore/internal/store"
	"crackstore/internal/wire"
)

// Options tunes a Client.
type Options struct {
	// Conns is the number of pooled TCP connections; 0 means 1. Requests
	// round-robin across them; each connection pipelines independently.
	Conns int
	// MaxFrame caps the size of an accepted response frame; 0 means
	// wire.DefaultMaxFrame.
	MaxFrame int
	// DialTimeout bounds connection establishment; 0 means 5s.
	DialTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

// ErrClosed is returned by calls on a closed Client.
var ErrClosed = errors.New("client: connection is closed")

// Stats is the scalar serving-statistics summary a server reports
// (Client.Stats): query and error counts, throughput, and latency
// percentiles as measured server-side.
type Stats = wire.Stats

// Client is a pooled, multiplexing connection to a remote engine.
type Client struct {
	conns  []*conn
	rr     atomic.Uint64
	closed atomic.Bool
}

// Dial connects to a crackserved daemon at addr.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{conns: make([]*conn, 0, opts.Conns)}
	for i := 0; i < opts.Conns; i++ {
		nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: dial %s: %w", addr, err)
		}
		cn := newConn(nc, opts.MaxFrame)
		c.conns = append(c.conns, cn)
	}
	return c, nil
}

// Close closes every pooled connection. In-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, cn := range c.conns {
		cn.shutdown(ErrClosed)
	}
	return nil
}

// call sends one request on a healthy pooled connection and waits for its
// response. A connection that has failed is skipped; when every connection
// is down the last failure surfaces.
func (c *Client) call(req *wire.Request) (*wire.Response, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	start := c.rr.Add(1)
	var lastErr error = ErrClosed
	for i := 0; i < len(c.conns); i++ {
		cn := c.conns[(start+uint64(i))%uint64(len(c.conns))]
		resp, sent, err := cn.call(req)
		if err == nil {
			return resp, nil
		}
		if sent {
			// The request reached the wire: it may have executed
			// server-side, so failing over to another connection could
			// run it twice (fatal for Insert). The failure is final.
			return nil, err
		}
		lastErr = err // never sent: another pooled connection may be healthy
	}
	return nil, lastErr
}

// Query executes q remotely, exactly as Engine.Query would in-process: it
// may reorganize (crack) server-side structures.
func (c *Client) Query(q engine.Query) (engine.Result, engine.Cost, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpQuery, Query: q})
	if err != nil {
		return engine.Result{}, engine.Cost{}, err
	}
	if resp.Status != wire.StatusOK {
		return engine.Result{}, engine.Cost{}, remoteErr(resp)
	}
	return resp.Result, resp.Cost, nil
}

// QueryRO executes q remotely only if the server can answer it without
// reorganizing; ok reports whether it could (Engine.QueryRO semantics).
func (c *Client) QueryRO(q engine.Query) (engine.Result, engine.Cost, bool, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpQueryRO, Query: q})
	if err != nil {
		return engine.Result{}, engine.Cost{}, false, err
	}
	switch resp.Status {
	case wire.StatusOK:
		return resp.Result, resp.Cost, true, nil
	case wire.StatusRefused:
		return engine.Result{}, engine.Cost{}, false, nil
	}
	return engine.Result{}, engine.Cost{}, false, remoteErr(resp)
}

// Insert appends one tuple (relation attribute order) and returns its
// global key, matching Engine.Insert.
func (c *Client) Insert(vals ...store.Value) (int, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpInsert, Vals: vals})
	if err != nil {
		return 0, err
	}
	if resp.Status != wire.StatusOK {
		return 0, remoteErr(resp)
	}
	return resp.Key, nil
}

// Delete removes the tuple with the given global key, matching
// Engine.Delete.
func (c *Client) Delete(key int) error {
	resp, err := c.call(&wire.Request{Op: wire.OpDelete, Key: key})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return remoteErr(resp)
	}
	return nil
}

// Stats snapshots the server's serving-layer statistics.
func (c *Client) Stats() (wire.Stats, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.Stats{}, err
	}
	if resp.Status != wire.StatusOK {
		return wire.Stats{}, remoteErr(resp)
	}
	return resp.Stats, nil
}

func remoteErr(resp *wire.Response) error {
	if resp.Status == wire.StatusRefused {
		return fmt.Errorf("client: %v refused (would reorganize)", resp.Op)
	}
	return fmt.Errorf("client: remote %v failed: %s", resp.Op, resp.Err)
}

// ---------------------------------------------------------------------------
// One pooled connection.

// result pairs a routed response with a connection-level failure.
type result struct {
	resp *wire.Response
	err  error
}

type conn struct {
	nc       net.Conn
	maxFrame int

	sendq chan *outFrame // encoded request frames, callers -> writer
	dead  chan struct{}  // closed by shutdown; unblocks writer and senders

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan result
	err     error // sticky: set once the connection is unusable
}

// outFrame is one queued request frame. wrote records whether the writer
// actually handed it to the socket: a failed call whose frame was never
// written is provably safe to retry on another pooled connection, while
// "merely enqueued" is not proof either way once the writer has started
// draining.
type outFrame struct {
	buf   []byte
	wrote atomic.Bool
}

// outFramePool recycles request frames. A frame is returned only after its
// call received a successful response — which proves the writer finished
// with the buffer — so steady-state calls allocate no fresh frame. Frames
// of failed calls are dropped: on a dying connection the writer may still
// hold them.
var outFramePool = sync.Pool{
	New: func() any { return new(outFrame) },
}

func newConn(nc net.Conn, maxFrame int) *conn {
	cn := &conn{
		nc:       nc,
		maxFrame: maxFrame,
		sendq:    make(chan *outFrame, 64),
		dead:     make(chan struct{}),
		pending:  make(map[uint64]chan result),
	}
	go cn.readLoop()
	go cn.writeLoop()
	return cn
}

// resultChPool recycles per-call waiter channels. Every registered channel
// receives exactly one send (a routed response or the shutdown error —
// pending-map removal makes the two mutually exclusive), so a channel is
// provably empty again after the receive and safe to reuse.
var resultChPool = sync.Pool{
	New: func() any { return make(chan result, 1) },
}

// call registers a waiter, enqueues the request frame, and blocks for the
// matched response. Many goroutines may be inside call on the same
// connection at once — that is the pipelining; the writer goroutine
// coalesces their frames into few syscalls. sent reports whether the
// writer handed any of the request to the socket: a failure with
// sent == false is safe to retry on another connection.
func (cn *conn) call(req *wire.Request) (resp *wire.Response, sent bool, err error) {
	ch := resultChPool.Get().(chan result)
	defer resultChPool.Put(ch)
	cn.mu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.mu.Unlock()
		return nil, false, err
	}
	cn.nextID++ // IDs start at 1: ID 0 is the server's conn-level error channel
	id := cn.nextID
	req.ID = id
	cn.pending[id] = ch
	cn.mu.Unlock()

	f := outFramePool.Get().(*outFrame)
	f.buf = wire.AppendRequest(f.buf[:0], req)
	f.wrote.Store(false)
	select {
	case <-cn.dead:
		// Shutdown already failed every pending waiter, including ours;
		// receive below so the accounting stays in one place. Checking
		// dead first keeps a frame off the queue of a dying connection
		// whenever the death is already observable.
	default:
		select {
		case cn.sendq <- f:
		case <-cn.dead:
		}
	}
	res := <-ch
	sent = f.wrote.Load()
	if res.err == nil {
		// A response arrived, so the frame was fully written long ago;
		// the writer no longer references it.
		outFramePool.Put(f)
	}
	return res.resp, sent, res.err
}

// writeLoop batches queued request frames onto the socket: one write per
// drain of the queue, flushed when it momentarily empties — concurrent
// callers pipelining through the same connection share syscalls instead of
// paying one each. Frames still queued when the connection dies are never
// marked written, so their callers may fail over to another connection.
func (cn *conn) writeLoop() {
	bw := bufio.NewWriterSize(cn.nc, 64<<10)
	for {
		select {
		case f := <-cn.sendq:
			f.wrote.Store(true) // before Write: buffered bytes may reach the wire later
			if _, err := bw.Write(f.buf); err != nil {
				cn.shutdown(fmt.Errorf("client: write: %w", err))
				return
			}
			if len(cn.sendq) == 0 {
				if err := bw.Flush(); err != nil {
					cn.shutdown(fmt.Errorf("client: write: %w", err))
					return
				}
			}
		case <-cn.dead:
			return
		}
	}
}

// readLoop routes responses to their waiters until the connection dies,
// then fails everything still pending.
func (cn *conn) readLoop() {
	br := bufio.NewReaderSize(cn.nc, 64<<10)
	for {
		payload, err := wire.ReadFrame(br, cn.maxFrame)
		if err != nil {
			cn.shutdown(fmt.Errorf("client: read: %w", err))
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			cn.shutdown(fmt.Errorf("client: protocol: %w", err))
			return
		}
		if resp.ID == 0 {
			// Connection-level server error (e.g. an oversized frame we
			// sent): no specific waiter, the connection is done for.
			cn.shutdown(fmt.Errorf("client: server: %s", resp.Err))
			return
		}
		cn.mu.Lock()
		ch, ok := cn.pending[resp.ID]
		delete(cn.pending, resp.ID)
		cn.mu.Unlock()
		if !ok {
			cn.shutdown(fmt.Errorf("client: protocol: response for unknown request %d", resp.ID))
			return
		}
		r := resp
		ch <- result{resp: &r}
	}
}

// shutdown marks the connection failed, closes the socket, and fails every
// pending waiter. First error wins; later calls are no-ops.
func (cn *conn) shutdown(err error) {
	cn.mu.Lock()
	if cn.err != nil {
		cn.mu.Unlock()
		return
	}
	cn.err = err
	waiters := cn.pending
	cn.pending = make(map[uint64]chan result)
	cn.mu.Unlock()
	close(cn.dead) // stops the writer; unblocks senders
	cn.nc.Close()  // unblocks the reader, which re-enters shutdown harmlessly
	for _, ch := range waiters {
		ch <- result{err: err}
	}
}
