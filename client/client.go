// Package client is the remote counterpart of the in-process engine API: a
// connection to a crackserved daemon (or any internal/netserve listener)
// that speaks the internal/wire protocol and returns the same typed
// results — engine.Result, engine.Cost — an in-process Engine would.
//
// A Client multiplexes any number of concurrent callers over a small pool
// of TCP connections. Every request carries an ID, so many requests from
// many goroutines are in flight on one connection at once (pipelining) and
// responses are matched as they arrive, in whatever order the server
// finishes them. Calls are synchronous per goroutine: fire N goroutines to
// keep N requests in flight.
//
// The Client is resilient by default. A connection that dies is evicted
// from the pool and re-dialed with backoff, so one reset never poisons the
// pool. Failed calls are retried with jittered exponential backoff when
// that is provably safe: requests that never reached the wire always,
// reads/pings/stats always (they are idempotent), and writes because every
// Insert/Delete carries an idempotency token the server deduplicates — a
// retried write whose original actually executed gets the recorded
// response replayed instead of a second application. In-band
// wire.StatusOverloaded sheds are also retried after backoff. Context-
// carrying variants (QueryContext, ...) bound each call and propagate the
// remaining time as a wire TTL hint so the server skips work nobody
// awaits. Optional hedged reads (Options.Hedge) fire a second QueryRO on
// another pooled connection once the first exceeds a p99-derived delay and
// take whichever answers first.
//
// The crackstore root package re-exports Dial, so typical use is:
//
//	c, err := crackstore.Dial("localhost:9090", crackstore.DialOptions{Conns: 2})
//	res, cost, err := c.Query(q) // same types as Engine.Query
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bufio"

	"crackstore/internal/engine"
	"crackstore/internal/obs"
	"crackstore/internal/store"
	"crackstore/internal/wire"
)

// Options tunes a Client.
type Options struct {
	// Conns is the number of pooled TCP connections; 0 means 1. Requests
	// round-robin across them; each connection pipelines independently.
	Conns int
	// MaxFrame caps the size of an accepted response frame; 0 means
	// wire.DefaultMaxFrame.
	MaxFrame int
	// DialTimeout bounds connection establishment; 0 means 5s.
	DialTimeout time.Duration

	// MaxRetries caps how many times one call is re-attempted after a
	// retryable failure (conn-level error on an idempotent or tokened
	// request, or an in-band overload shed). 0 means 4; negative disables
	// retries entirely.
	MaxRetries int
	// RetryBase is the first backoff step (doubled each retry, jittered);
	// 0 means 2ms.
	RetryBase time.Duration
	// RetryMax caps the backoff step; 0 means 250ms.
	RetryMax time.Duration

	// Hedge enables hedged read-only queries: a QueryRO still unanswered
	// after the hedge delay fires a duplicate on another pooled connection
	// and the first answer wins (the loser is abandoned, its late response
	// dropped). Needs Conns >= 2 to be useful.
	Hedge bool
	// HedgeAfter fixes the hedge delay; 0 derives it from the observed p99
	// of recent successful queries (2ms until enough samples exist).
	HedgeAfter time.Duration

	// Metrics, when non-nil, registers the client's resilience counters
	// (crack_client_retries_total, ...) into the registry at Dial. The
	// closures read the same counters Client.Counters snapshots, at scrape
	// time only. One registry accepts one client (duplicate names panic).
	Metrics *obs.Registry
	// TraceSample, when > 0, samples one in TraceSample queries for
	// end-to-end tracing (rounded up to the next power of two, so the
	// untraced path stays division-free). Dial negotiates the protocol
	// version with an
	// OpHello; a server that does not speak the tracing extension (it
	// answers Hello with an unknown-op error) silently disables tracing,
	// so a new client never breaks against an old server. Each sampled
	// query carries a client-allocated trace ID to the server, and the
	// assembled trace — client send, server queue/execute/crack, client
	// recv — is handed to OnTrace.
	TraceSample int
	// OnTrace receives each completed trace, synchronously on the calling
	// goroutine (keep it cheap; tr.WriteJSON to a line-buffered sink is
	// the intended use). Nil discards traces.
	OnTrace func(tr *obs.Trace)
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	switch {
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	case o.MaxRetries == 0:
		o.MaxRetries = 4
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 2 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 250 * time.Millisecond
	}
	return o
}

// ErrClosed is returned by calls on a closed Client.
var ErrClosed = errors.New("client: connection is closed")

// ErrOverloaded is returned when the server shed the request
// (wire.StatusOverloaded) and the retry budget ran out backing off.
var ErrOverloaded = errors.New("client: server overloaded")

// Stats is the scalar serving-statistics summary a server reports
// (Client.Stats): query and error counts, throughput, and latency
// percentiles as measured server-side.
type Stats = wire.Stats

// Counters are the client-side resilience counters: how often the retry,
// hedge, shed, and redial machinery actually fired. All monotonically
// increasing; snapshot with Client.Counters.
type Counters struct {
	Retries   uint64 // re-attempts after a retryable failure
	Hedges    uint64 // hedge requests fired
	HedgeWins uint64 // hedges whose answer arrived first
	Sheds     uint64 // StatusOverloaded responses observed
	Redials   uint64 // pool connections re-established after eviction
}

// counters holds the live atomic counters behind Counters. One struct
// (rather than loose fields) so the snapshot method and the metrics
// bridge observably read the same instruments.
type counters struct {
	retries   obs.Counter
	hedges    obs.Counter
	hedgeWins obs.Counter
	sheds     obs.Counter
	redials   obs.Counter
}

// Client is a pooled, multiplexing connection to a remote engine.
type Client struct {
	addr  string
	opts  Options
	slots []*slot
	rr    atomic.Uint64
	// tokens: a random per-client base plus a counter, so concurrent
	// clients of one server draw from disjoint ranges with overwhelming
	// probability and the server's dedup window never conflates them.
	tokBase uint64
	tokSeq  atomic.Uint64
	lat     latRing
	closed  atomic.Bool

	ctr     counters
	sampler *obs.Sampler // nil unless tracing was enabled AND negotiated
}

// Dial connects to a crackserved daemon at addr.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{addr: addr, opts: opts, tokBase: rand.Uint64() | 1}
	for i := 0; i < opts.Conns; i++ {
		nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: dial %s: %w", addr, err)
		}
		c.slots = append(c.slots, &slot{cn: newConn(nc, opts.MaxFrame)})
	}
	if opts.TraceSample > 0 && c.hello() {
		c.sampler = obs.NewSampler(opts.TraceSample)
	}
	if r := opts.Metrics; r != nil {
		r.CounterFunc("crack_client_retries_total", "re-attempts after a retryable failure", c.ctr.retries.Value)
		r.CounterFunc("crack_client_hedges_total", "hedge requests fired", c.ctr.hedges.Value)
		r.CounterFunc("crack_client_hedge_wins_total", "hedges whose answer arrived first", c.ctr.hedgeWins.Value)
		r.CounterFunc("crack_client_sheds_total", "StatusOverloaded responses observed", c.ctr.sheds.Value)
		r.CounterFunc("crack_client_redials_total", "pool connections re-established after eviction", c.ctr.redials.Value)
	}
	return c, nil
}

// hello negotiates the protocol version, reporting whether the server
// speaks the tracing extension (version 2+). An old server answers the
// unknown op with an in-band error — that, and any transport failure,
// reads as "no": tracing downgrades silently, the client still works.
func (c *Client) hello() bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.DialTimeout)
	defer cancel()
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpHello, Version: wire.ProtoVersion})
	return err == nil && resp.Status == wire.StatusOK && resp.Version >= 2
}

// Close closes every pooled connection. In-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, sl := range c.slots {
		sl.mu.Lock()
		if sl.cn != nil {
			sl.cn.shutdown(ErrClosed)
			sl.cn = nil
		}
		sl.mu.Unlock()
	}
	return nil
}

// Counters snapshots the resilience counters. The snapshot is relaxed —
// counters keep moving while it is taken, so the fields need not be
// mutually consistent to the instant — but it is causally ordered:
// every counter is loaded before any counter its increments causally
// follow (HedgeWins is read before Hedges, and a win is only ever
// recorded after its hedge), so impossible states like
// HedgeWins > Hedges can never be observed.
func (c *Client) Counters() Counters {
	wins := c.ctr.hedgeWins.Value()
	hedges := c.ctr.hedges.Value()
	retries := c.ctr.retries.Value()
	sheds := c.ctr.sheds.Value()
	redials := c.ctr.redials.Value()
	return Counters{
		Retries:   retries,
		Hedges:    hedges,
		HedgeWins: wins,
		Sheds:     sheds,
		Redials:   redials,
	}
}

// nextToken mints a fresh nonzero idempotency token.
func (c *Client) nextToken() uint64 {
	for {
		if t := c.tokBase + c.tokSeq.Add(1); t != 0 {
			return t
		}
	}
}

// retryable classifies a failed attempt: a request that never reached the
// wire is always safe to resend; one that did is safe exactly when it is
// idempotent — reads, pings, and stats inherently, writes by virtue of
// their dedup token.
func retryable(req *wire.Request, sent bool) bool {
	if !sent {
		return true
	}
	if req.Op == wire.OpInsert || req.Op == wire.OpDelete {
		return req.Token != 0
	}
	return true
}

// call runs one request through the retry loop: attempt, classify, back
// off, re-attempt — up to the retry budget. Context cancellation wins over
// everything; its remaining time rides along as the request's TTL hint so
// the server can skip expired work.
func (c *Client) call(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	backoff := c.opts.RetryBase
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if dl, ok := ctx.Deadline(); ok {
			ttl := time.Until(dl)
			if ttl <= 0 {
				return nil, context.DeadlineExceeded
			}
			req.TTL = ttl
		}
		resp, sent, err := c.once(ctx, req)
		switch {
		case err == nil && resp.Status == wire.StatusOverloaded:
			// An in-band shed: the server refused before executing, so a
			// backed-off retry is always safe.
			c.ctr.sheds.Inc()
			lastErr = ErrOverloaded
		case err == nil:
			return resp, nil
		default:
			if c.closed.Load() {
				return nil, ErrClosed
			}
			if ctx.Err() != nil {
				return nil, err
			}
			if !retryable(req, sent) {
				return nil, err
			}
			lastErr = err
		}
		if attempt >= c.opts.MaxRetries {
			return nil, lastErr
		}
		c.ctr.retries.Inc()
		// Jittered exponential backoff: uniform in [backoff/2, backoff),
		// so a burst of failing callers decorrelates instead of
		// re-stampeding the server in lockstep.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > c.opts.RetryMax {
			backoff = c.opts.RetryMax
		}
	}
}

// once makes a single attempt: pick a healthy pooled connection (skipping
// and redialing dead slots), send, wait. sent reports whether any attempt
// handed bytes to a socket.
func (c *Client) once(ctx context.Context, req *wire.Request) (*wire.Response, bool, error) {
	start := c.rr.Add(1)
	n := uint64(len(c.slots))
	var lastErr error = ErrClosed
	for i := uint64(0); i < n; i++ {
		sl := c.slots[(start+i)%n]
		cn, err := sl.get(c)
		if err != nil {
			lastErr = err
			continue
		}
		resp, sent, err := cn.call(ctx, req)
		if err == nil {
			return resp, true, nil
		}
		if ctx.Err() != nil {
			return nil, sent, err
		}
		sl.evict(cn)
		if sent {
			// The request reached the wire: whether to re-send is the
			// retry loop's (idempotency-aware) decision, not the pool's.
			return nil, true, err
		}
		lastErr = err // never sent: another pooled connection may be healthy
	}
	return nil, false, lastErr
}

// Query executes q remotely, exactly as Engine.Query would in-process: it
// may reorganize (crack) server-side structures.
func (c *Client) Query(q engine.Query) (engine.Result, engine.Cost, error) {
	return c.QueryContext(context.Background(), q)
}

// QueryContext is Query bounded by ctx: cancellation or deadline expiry
// abandons the call, and the remaining time is sent as a TTL hint the
// server uses to skip already-expired work.
func (c *Client) QueryContext(ctx context.Context, q engine.Query) (engine.Result, engine.Cost, error) {
	t0 := time.Now()
	req := &wire.Request{Op: wire.OpQuery, Query: q}
	traced := c.traceStart(req)
	resp, err := c.call(ctx, req)
	if traced {
		c.finishTrace(req, t0, resp, err)
	}
	if err != nil {
		return engine.Result{}, engine.Cost{}, err
	}
	if resp.Status != wire.StatusOK {
		return engine.Result{}, engine.Cost{}, remoteErr(resp)
	}
	c.lat.record(time.Since(t0))
	return resp.Result, resp.Cost, nil
}

// QueryRO executes q remotely only if the server can answer it without
// reorganizing; ok reports whether it could (Engine.QueryRO semantics).
func (c *Client) QueryRO(q engine.Query) (engine.Result, engine.Cost, bool, error) {
	return c.QueryROContext(context.Background(), q)
}

// QueryROContext is QueryRO bounded by ctx. With Options.Hedge and a pool
// of at least two connections, a straggling call fires a duplicate on
// another connection after the hedge delay and the first answer wins —
// safe precisely because a read-only query by definition changes nothing.
func (c *Client) QueryROContext(ctx context.Context, q engine.Query) (engine.Result, engine.Cost, bool, error) {
	t0 := time.Now()
	var resp *wire.Response
	var err error
	req := &wire.Request{Op: wire.OpQueryRO, Query: q}
	// A sampled call skips hedging: one trace must describe one
	// request's life, not the interleaving of a race.
	if traced := c.traceStart(req); traced {
		resp, err = c.call(ctx, req)
		c.finishTrace(req, t0, resp, err)
	} else if c.opts.Hedge && len(c.slots) > 1 {
		resp, err = c.hedged(ctx, q)
	} else {
		resp, err = c.call(ctx, req)
	}
	if err != nil {
		return engine.Result{}, engine.Cost{}, false, err
	}
	return c.roResult(resp, t0)
}

// traceStart makes the 1-in-N sampling decision for one query, stamping
// the request with a fresh trace ID when sampled. The untraced path is
// one atomic add.
func (c *Client) traceStart(req *wire.Request) bool {
	id, ok := c.sampler.Next()
	if ok {
		req.Trace = id
	}
	return ok
}

// finishTrace assembles the end-to-end trace of a completed sampled call
// and hands it to OnTrace. Server spans arrive anchored at request
// receipt; the client cannot read the server's clock, so the round-trip
// slack (total minus the server-side window) is split evenly between the
// send and recv spans — the classic symmetric-delay assumption. Stage
// starts are monotonic by construction.
func (c *Client) finishTrace(req *wire.Request, t0 time.Time, resp *wire.Response, err error) {
	f := c.opts.OnTrace
	if f == nil {
		return
	}
	total := time.Since(t0)
	tr := obs.Trace{ID: req.Trace, Op: req.Op.String(), Total: total}
	var server []obs.Span
	if resp != nil {
		server = resp.Spans
		tr.Err = resp.Err
	}
	if err != nil {
		tr.Err = err.Error()
	}
	var window time.Duration // server-side span window: max span end
	for _, sp := range server {
		if end := sp.Start + sp.Dur; end > window {
			window = end
		}
	}
	slack := total - window
	if slack < 0 {
		slack = 0
	}
	send := slack / 2
	tr.Spans = make([]obs.Span, 0, len(server)+2)
	tr.Spans = append(tr.Spans, obs.Span{Stage: obs.StageClientSend, Start: 0, Dur: send})
	for _, sp := range server {
		sp.Start += send
		tr.Spans = append(tr.Spans, sp)
	}
	tr.Spans = append(tr.Spans, obs.Span{Stage: obs.StageClientRecv, Start: send + window, Dur: total - send - window})
	f(&tr)
}

// roResult maps a QueryRO response onto the method's return signature.
// The codec only passes statuses it knows, so the default arm fires when
// this client links a wire package newer than itself — protocol skew gets
// a typed error instead of silently reading an empty result.
func (c *Client) roResult(resp *wire.Response, t0 time.Time) (engine.Result, engine.Cost, bool, error) {
	switch resp.Status {
	case wire.StatusOK:
		c.lat.record(time.Since(t0))
		return resp.Result, resp.Cost, true, nil
	case wire.StatusRefused:
		return engine.Result{}, engine.Cost{}, false, nil
	case wire.StatusErr, wire.StatusOverloaded:
		return engine.Result{}, engine.Cost{}, false, remoteErr(resp)
	default:
		return engine.Result{}, engine.Cost{}, false, &UnknownStatusError{Op: resp.Op, Status: resp.Status}
	}
}

// hedged races a primary QueryRO against a delayed duplicate. The loser is
// canceled through its context: its pending entry is tombstoned so the
// late answer is dropped, never treated as a protocol violation.
func (c *Client) hedged(ctx context.Context, q engine.Query) (*wire.Response, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap the loser
	type hres struct {
		resp  *wire.Response
		err   error
		hedge bool
	}
	out := make(chan hres, 2) // buffered: the loser must never block
	launch := func(hedge bool) {
		go func() {
			resp, err := c.call(hctx, &wire.Request{Op: wire.OpQueryRO, Query: q})
			out <- hres{resp, err, hedge}
		}()
	}
	launch(false)
	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	launched := 1
	for {
		select {
		case r := <-out:
			if r.err == nil {
				if r.hedge {
					c.ctr.hedgeWins.Inc()
				}
				return r.resp, nil
			}
			if launched == 2 {
				// One attempt failed; the other decides.
				r2 := <-out
				if r2.err == nil {
					if r2.hedge {
						c.ctr.hedgeWins.Inc()
					}
					return r2.resp, nil
				}
				if !r.hedge {
					return nil, r.err // prefer the primary's error
				}
				return nil, r2.err
			}
			return nil, r.err // primary failed before the hedge fired
		case <-timer.C:
			if launched == 1 {
				c.ctr.hedges.Inc()
				launch(true)
				launched = 2
			}
		}
	}
}

// hedgeDelay is the straggler threshold: Options.HedgeAfter when fixed,
// otherwise the p99 of recent successful queries — hedging the slowest 1%
// costs ~1% extra load for a tail-latency cut, the classic trade.
func (c *Client) hedgeDelay() time.Duration {
	if c.opts.HedgeAfter > 0 {
		return c.opts.HedgeAfter
	}
	if d := c.lat.p99(); d > 0 {
		if d < 500*time.Microsecond {
			d = 500 * time.Microsecond
		}
		return d
	}
	return 2 * time.Millisecond
}

// Insert appends one tuple (relation attribute order) and returns its
// global key, matching Engine.Insert. The request carries an idempotency
// token, so a retry after a lost response cannot apply the write twice.
func (c *Client) Insert(vals ...store.Value) (int, error) {
	return c.InsertContext(context.Background(), vals...)
}

// InsertContext is Insert bounded by ctx.
func (c *Client) InsertContext(ctx context.Context, vals ...store.Value) (int, error) {
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpInsert, Token: c.nextToken(), Vals: vals})
	if err != nil {
		return 0, err
	}
	if resp.Status != wire.StatusOK {
		return 0, remoteErr(resp)
	}
	return resp.Key, nil
}

// Delete removes the tuple with the given global key, matching
// Engine.Delete. Tokened and retried exactly like Insert.
func (c *Client) Delete(key int) error {
	return c.DeleteContext(context.Background(), key)
}

// DeleteContext is Delete bounded by ctx.
func (c *Client) DeleteContext(ctx context.Context, key int) error {
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpDelete, Token: c.nextToken(), Key: key})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return remoteErr(resp)
	}
	return nil
}

// Stats snapshots the server's serving-layer statistics.
func (c *Client) Stats() (wire.Stats, error) {
	return c.StatsContext(context.Background())
}

// StatsContext is Stats bounded by ctx.
func (c *Client) StatsContext(ctx context.Context) (wire.Stats, error) {
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.Stats{}, err
	}
	if resp.Status != wire.StatusOK {
		return wire.Stats{}, remoteErr(resp)
	}
	return resp.Stats, nil
}

// Ping round-trips a health probe: a nil return proves the peer is alive
// and answering right now — the fast peer-death check, cheap enough to
// run ahead of a critical call instead of discovering death by timeout.
func (c *Client) Ping() error {
	return c.PingContext(context.Background())
}

// PingContext is Ping bounded by ctx.
func (c *Client) PingContext(ctx context.Context) error {
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpPing})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return remoteErr(resp)
	}
	return nil
}

// UnknownStatusError reports a response whose Status is not one this build
// of the client understands — a server speaking a newer protocol revision.
// It is typed (rather than folded into remoteErr) so callers can tell a
// protocol-skew failure apart from an ordinary remote execution error.
type UnknownStatusError struct {
	Op     wire.Op
	Status wire.Status
}

func (e *UnknownStatusError) Error() string {
	return fmt.Sprintf("client: %v returned unknown status %d (protocol skew?)", e.Op, byte(e.Status))
}

func remoteErr(resp *wire.Response) error {
	if resp.Status == wire.StatusRefused {
		return fmt.Errorf("client: %v refused (would reorganize)", resp.Op)
	}
	return fmt.Errorf("client: remote %v failed: %s", resp.Op, resp.Err)
}

// ---------------------------------------------------------------------------
// Pool slots.

// slot is one pool position: a live connection, or a vacancy being
// re-dialed with backoff. Eviction is per-connection — one dead conn never
// poisons the rest of the pool.
type slot struct {
	mu      sync.Mutex
	cn      *conn
	fails   int       // consecutive dial failures, drives the backoff
	next    time.Time // earliest next dial attempt
	lastErr error
}

// get returns the slot's live connection, dialing a fresh one if the slot
// is vacant and its backoff window has passed.
func (s *slot) get(c *Client) (*conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cn != nil {
		if s.cn.healthy() {
			return s.cn, nil
		}
		s.cn = nil
	}
	if c.closed.Load() {
		return nil, ErrClosed
	}
	now := time.Now()
	if now.Before(s.next) {
		if s.lastErr != nil {
			return nil, s.lastErr
		}
		return nil, errors.New("client: connection backoff")
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		s.fails++
		// 10ms, 20ms, ... capped at 2s: a downed server is probed promptly
		// at first, gently while it stays down.
		d := 10 * time.Millisecond << uint(s.fails-1)
		if d > 2*time.Second {
			d = 2 * time.Second
		}
		s.next = now.Add(d)
		s.lastErr = fmt.Errorf("client: redial %s: %w", c.addr, err)
		return nil, s.lastErr
	}
	s.fails = 0
	s.lastErr = nil
	s.cn = newConn(nc, c.opts.MaxFrame)
	c.ctr.redials.Inc()
	return s.cn, nil
}

// evict drops a dead connection from its slot (the next get re-dials
// immediately; dial backoff only applies to failed dials).
func (s *slot) evict(cn *conn) {
	s.mu.Lock()
	if s.cn == cn {
		s.cn = nil
	}
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Hedge-delay latency ring.

// latRing keeps the last N successful query latencies for the p99-derived
// hedge delay. Lock-free: slots are atomically stored nanosecond counts.
type latRing struct {
	n       atomic.Uint64
	samples [256]atomic.Int64
}

func (l *latRing) record(d time.Duration) {
	i := l.n.Add(1) - 1
	l.samples[i%uint64(len(l.samples))].Store(int64(d))
}

// p99 returns the 99th percentile of the retained samples, or 0 until at
// least 32 samples exist (too few to call anything a tail).
func (l *latRing) p99() time.Duration {
	n := l.n.Load()
	if n < 32 {
		return 0
	}
	if n > uint64(len(l.samples)) {
		n = uint64(len(l.samples))
	}
	lats := make([]int64, n)
	for i := range lats {
		lats[i] = l.samples[i].Load()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return time.Duration(lats[(len(lats)*99)/100])
}

// ---------------------------------------------------------------------------
// One pooled connection.

// result pairs a routed response with a connection-level failure.
type result struct {
	resp *wire.Response
	err  error
}

type conn struct {
	nc       net.Conn
	maxFrame int

	sendq chan *outFrame // encoded request frames, callers -> writer
	dead  chan struct{}  // closed by shutdown; unblocks writer and senders

	mu     sync.Mutex
	nextID uint64
	// pending maps request ID -> waiter. A nil channel is a tombstone: the
	// caller abandoned the request (context cancellation, hedge loss) and
	// the eventual response must be dropped, not treated as unknown.
	pending map[uint64]chan result
	err     error // sticky: set once the connection is unusable
}

// outFrame is one queued request frame. wrote records whether the writer
// actually handed it to the socket: a failed call whose frame was never
// written is provably safe to retry on another pooled connection, while
// "merely enqueued" is not proof either way once the writer has started
// draining.
type outFrame struct {
	buf   []byte
	wrote atomic.Bool
}

// outFramePool recycles request frames. A frame is returned only after its
// call received a successful response — which proves the writer finished
// with the buffer — so steady-state calls allocate no fresh frame. Frames
// of failed or abandoned calls are dropped: the writer may still hold them.
var outFramePool = sync.Pool{
	New: func() any { return new(outFrame) },
}

func newConn(nc net.Conn, maxFrame int) *conn {
	cn := &conn{
		nc:       nc,
		maxFrame: maxFrame,
		sendq:    make(chan *outFrame, 64),
		dead:     make(chan struct{}),
		pending:  make(map[uint64]chan result),
	}
	go cn.readLoop()
	go cn.writeLoop()
	return cn
}

// healthy reports whether the connection is still usable.
func (cn *conn) healthy() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.err == nil
}

// resultChPool recycles per-call waiter channels. Every registered channel
// sees at most one send (a routed response or the shutdown error —
// pending-map removal makes the two mutually exclusive) and every return
// path below either consumed that send or proved it can never happen
// (forget), so a pooled channel is always empty.
var resultChPool = sync.Pool{
	New: func() any { return make(chan result, 1) },
}

// call registers a waiter, enqueues the request frame, and blocks for the
// matched response or context expiry. Many goroutines may be inside call
// on the same connection at once — that is the pipelining; the writer
// goroutine coalesces their frames into few syscalls. sent reports whether
// the writer handed any of the request to the socket: a failure with
// sent == false is safe to retry on another connection.
func (cn *conn) call(ctx context.Context, req *wire.Request) (resp *wire.Response, sent bool, err error) {
	ch := resultChPool.Get().(chan result)
	defer resultChPool.Put(ch)
	cn.mu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.mu.Unlock()
		return nil, false, err
	}
	cn.nextID++ // IDs start at 1: ID 0 is the server's conn-level error channel
	id := cn.nextID
	req.ID = id
	cn.pending[id] = ch
	cn.mu.Unlock()

	f := outFramePool.Get().(*outFrame)
	f.buf = wire.AppendRequest(f.buf[:0], req)
	f.wrote.Store(false)
	select {
	case <-cn.dead:
		// Shutdown already failed every pending waiter, including ours;
		// receive below so the accounting stays in one place. Checking
		// dead first keeps a frame off the queue of a dying connection
		// whenever the death is already observable.
	default:
		select {
		case cn.sendq <- f:
		case <-cn.dead:
		case <-ctx.Done():
			// Never enqueued; the forget below cleanly unregisters.
		}
	}
	var res result
	select {
	case res = <-ch:
	case <-ctx.Done():
		if cn.forget(id) {
			// Tombstoned: no response will ever be delivered to ch.
			return nil, f.wrote.Load(), ctx.Err()
		}
		// The response (or shutdown) raced our cancellation; its send is
		// already in flight to the buffered channel.
		res = <-ch
	}
	sent = f.wrote.Load()
	if res.err == nil {
		// A response arrived, so the frame was fully written long ago;
		// the writer no longer references it.
		outFramePool.Put(f)
	}
	return res.resp, sent, res.err
}

// forget tombstones a pending request whose caller gave up, so the reader
// drops the eventual late response instead of killing the connection over
// it. Reports whether the request was still pending — true guarantees no
// send to the waiter channel will ever happen.
func (cn *conn) forget(id uint64) bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	ch, ok := cn.pending[id]
	if !ok || ch == nil {
		return false
	}
	cn.pending[id] = nil
	return true
}

// writeLoop batches queued request frames onto the socket: one write per
// drain of the queue, flushed when it momentarily empties — concurrent
// callers pipelining through the same connection share syscalls instead of
// paying one each. Frames still queued when the connection dies are never
// marked written, so their callers may fail over to another connection.
func (cn *conn) writeLoop() {
	bw := bufio.NewWriterSize(cn.nc, 64<<10)
	for {
		select {
		case f := <-cn.sendq:
			f.wrote.Store(true) // before Write: buffered bytes may reach the wire later
			if _, err := bw.Write(f.buf); err != nil {
				cn.shutdown(fmt.Errorf("client: write: %w", err))
				return
			}
			if len(cn.sendq) == 0 {
				if err := bw.Flush(); err != nil {
					cn.shutdown(fmt.Errorf("client: write: %w", err))
					return
				}
			}
		case <-cn.dead:
			return
		}
	}
}

// readLoop routes responses to their waiters until the connection dies,
// then fails everything still pending.
func (cn *conn) readLoop() {
	br := bufio.NewReaderSize(cn.nc, 64<<10)
	for {
		payload, err := wire.ReadFrame(br, cn.maxFrame)
		if err != nil {
			cn.shutdown(fmt.Errorf("client: read: %w", err))
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			cn.shutdown(fmt.Errorf("client: protocol: %w", err))
			return
		}
		if resp.ID == 0 {
			// Connection-level server error (e.g. an oversized frame we
			// sent): no specific waiter, the connection is done for.
			cn.shutdown(fmt.Errorf("client: server: %s", resp.Err))
			return
		}
		cn.mu.Lock()
		ch, ok := cn.pending[resp.ID]
		delete(cn.pending, resp.ID)
		cn.mu.Unlock()
		if !ok {
			cn.shutdown(fmt.Errorf("client: protocol: response for unknown request %d", resp.ID))
			return
		}
		if ch == nil {
			continue // abandoned request (hedge loser / canceled ctx): drop
		}
		r := resp
		ch <- result{resp: &r}
	}
}

// shutdown marks the connection failed, closes the socket, and fails every
// pending waiter. First error wins; later calls are no-ops.
func (cn *conn) shutdown(err error) {
	cn.mu.Lock()
	if cn.err != nil {
		cn.mu.Unlock()
		return
	}
	cn.err = err
	waiters := cn.pending
	cn.pending = make(map[uint64]chan result)
	cn.mu.Unlock()
	close(cn.dead) // stops the writer; unblocks senders
	cn.nc.Close()  // unblocks the reader, which re-enters shutdown harmlessly
	for _, ch := range waiters {
		if ch != nil { // skip tombstones: nobody is waiting
			ch <- result{err: err}
		}
	}
}
