package crackstore_test

import (
	"fmt"

	crackstore "crackstore"
)

// Example shows the core loop: open a relation under sideways cracking and
// query it — every query physically reorganizes the cracker maps so later
// queries get faster, with no index creation or presorting.
func Example() {
	rel := crackstore.NewRelation("orders", "amount", "customer")
	for i := 0; i < 8; i++ {
		rel.AppendRow(crackstore.Value(i*10), crackstore.Value(100+i))
	}
	e := crackstore.Open(crackstore.Sideways, rel)
	res, _ := e.Query(crackstore.Query{
		Preds: []crackstore.AttrPred{{Attr: "amount", Pred: crackstore.Range(20, 60)}},
		Projs: []string{"customer"},
	})
	fmt.Println("matching customers:", res.N)
	// Output: matching customers: 4
}

// ExampleQuery_multiSelection demonstrates a conjunctive multi-attribute
// query: the engine picks the most selective predicate's map set via its
// self-organizing histograms and filters with a bit vector.
func ExampleQuery_multiSelection() {
	rel := crackstore.NewRelation("t", "a", "b", "c")
	rel.AppendRow(1, 10, 100)
	rel.AppendRow(2, 20, 200)
	rel.AppendRow(3, 30, 300)
	rel.AppendRow(4, 40, 400)
	e := crackstore.Open(crackstore.Sideways, rel)
	res, _ := e.Query(crackstore.Query{
		Preds: []crackstore.AttrPred{
			{Attr: "a", Pred: crackstore.Range(2, 5)},
			{Attr: "b", Pred: crackstore.Range(0, 35)},
		},
		Projs: []string{"c"},
	})
	fmt.Println(res.Cols["c"])
	// Output: [200 300]
}

// ExampleBuildDict shows string cracking: an order-preserving dictionary
// turns prefix predicates into integer ranges the cracking engines handle.
func ExampleBuildDict() {
	d := crackstore.BuildDict([]string{"paris", "porto", "prague", "rome"})
	p := d.PrefixPred("p")
	code, _ := d.Code("prague")
	fmt.Println(p.Matches(code))
	code, _ = d.Code("rome")
	fmt.Println(p.Matches(code))
	// Output:
	// true
	// false
}

// ExampleCrackerJoin joins two relations partition-wise over their cracker
// maps (Section 3.4's partitioned join).
func ExampleCrackerJoin() {
	l := crackstore.NewRelation("L", "k", "x")
	r := crackstore.NewRelation("R", "k", "y")
	for i := 0; i < 6; i++ {
		l.AppendRow(crackstore.Value(i), crackstore.Value(i*i))
		r.AppendRow(crackstore.Value(i*2), crackstore.Value(i))
	}
	le := crackstore.Open(crackstore.Sideways, l)
	re := crackstore.Open(crackstore.Sideways, r)
	pairs, _ := crackstore.CrackerJoin(le, "k", re, "k", 4)
	fmt.Println("matches:", len(pairs)) // k values 0,2,4 exist on both sides
	// Output: matches: 3
}

// ExampleOpenPartialWithOptions configures partial sideways cracking with
// a storage budget and automatic head dropping.
func ExampleOpenPartialWithOptions() {
	rel := crackstore.NewRelation("t", "a", "b")
	for i := 0; i < 1000; i++ {
		rel.AppendRow(crackstore.Value(i), crackstore.Value(i%7))
	}
	e := crackstore.OpenPartialWithOptions(rel, crackstore.PartialOptions{
		Budget:            500,  // at most 500 tuples of chunk storage
		CachedPieceTuples: 4096, // drop heads once pieces are cache-resident
	})
	res, _ := e.Query(crackstore.Query{
		Preds: []crackstore.AttrPred{{Attr: "a", Pred: crackstore.Range(100, 200)}},
		Projs: []string{"b"},
	})
	fmt.Println(res.N, e.Storage() <= 500)
	// Output: 100 true
}
