module crackstore

go 1.22
