// Adaptive dashboard: a monitoring workload where 90% of queries hit the
// most recent slice of a metrics table (the hot set). Sideways cracking
// concentrates its physical reorganization exactly where the workload
// lands (the paper's Exp5): the hot region converges to presorted-like
// speed within a handful of queries while cold queries still work and
// gradually improve.
package main

import (
	"fmt"
	"math/rand"
	"time"

	crackstore "crackstore"
	"crackstore/internal/workload"
)

func main() {
	const rows = 400000
	rng := rand.New(rand.NewSource(7))
	rel := crackstore.Build("metrics", rows,
		[]string{"ts", "latency", "errors"},
		func(attr string, row int) crackstore.Value {
			if attr == "ts" {
				return rng.Int63n(rows) // event timestamps
			}
			return rng.Int63n(10000)
		})
	e := crackstore.Open(crackstore.Sideways, rel)
	gen := workload.New(rows, 99)

	var hot, cold []time.Duration
	for q := 0; q < 200; q++ {
		// 9/10 dashboard refreshes look at the most recent half of the
		// data; 1/10 are historical drill-downs.
		pred := gen.Skewed(0.05, 0.5, 0.9)
		res, cost := e.Query(crackstore.Query{
			Preds: []crackstore.AttrPred{{Attr: "ts", Pred: pred}},
			Projs: []string{"latency", "errors"},
		})
		if maxes, ok := crackstore.MaxPerProj(res, []string{"latency", "errors"}); ok && q%50 == 0 {
			fmt.Printf("refresh %3d: window %v -> %6d samples, p100 latency %4d, max errors %4d (%v)\n",
				q, pred, res.N, maxes["latency"], maxes["errors"], cost.Total())
		}
		if pred.Hi <= rows/2+1 {
			hot = append(hot, cost.Total())
		} else {
			cold = append(cold, cost.Total())
		}
	}
	fmt.Printf("\nhot-set queries:  %4d, first %v -> last %v\n", len(hot), hot[0], hot[len(hot)-1])
	fmt.Printf("cold queries:     %4d, first %v -> last %v\n", len(cold), cold[0], cold[len(cold)-1])
	fmt.Printf("map storage: %d tuples\n", e.Storage())
	fmt.Println("\nThe hot range is cracked into fine pieces quickly; cold ranges")
	fmt.Println("self-organize only as they are touched — no tuning, no DDL.")
}
