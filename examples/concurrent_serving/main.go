// Concurrent serving: many clients, one shared engine. The serving layer
// wraps the engine in the two-phase (probe/execute) Concurrent protocol,
// so after a warm-up the clients' aligned repeat queries run genuinely in
// parallel under a shared read lock — only queries that actually crack new
// ranges or merge updates serialize behind the write lock. Compare against
// the old fully serialized wrapper to see throughput and tail latency
// improve.
package main

import (
	"fmt"
	"math/rand"
	"sync"

	crackstore "crackstore"
)

const (
	rows    = 100_000
	clients = 8
	perEach = 2_000
)

func buildEngine() crackstore.Engine {
	rng := rand.New(rand.NewSource(1))
	rel := crackstore.Build("orders", rows,
		[]string{"amount", "customer"},
		func(string, int) crackstore.Value { return rng.Int63n(rows) })
	return crackstore.Open(crackstore.Sideways, rel)
}

// pool is the clients' shared hot query set: narrow ranges over amount.
func pool() []crackstore.Query {
	rng := rand.New(rand.NewSource(2))
	qs := make([]crackstore.Query, 32)
	for i := range qs {
		lo := rng.Int63n(rows - 200)
		qs[i] = crackstore.Query{
			Preds: []crackstore.AttrPred{{Attr: "amount", Pred: crackstore.Range(lo, lo+100)}},
			Projs: []string{"customer"},
		}
	}
	return qs
}

func run(name string, e crackstore.Engine) {
	qs := pool()
	// Warm-up: one pass over the pool cracks every hot range.
	for _, q := range qs {
		e.Query(q)
	}
	srv := crackstore.Serve(e, crackstore.ServeOptions{Workers: clients})
	defer srv.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perEach; i++ {
				if _, _, err := srv.Do(qs[rng.Intn(len(qs))]); err != nil {
					panic(err)
				}
			}
		}(int64(c))
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("%-12s %8d queries  %10.0f q/s   p50=%-9v p99=%-9v max=%v\n",
		name, st.Queries, st.QPS, st.P50, st.P99, st.Max)
}

func main() {
	fmt.Printf("%d clients, %d queries each, one shared sideways engine\n\n", clients, perEach)
	run("serialized", crackstore.Serialized(buildEngine()))
	run("concurrent", crackstore.Concurrent(buildEngine()))
	fmt.Println("\nThe serialized wrapper queues every client behind one mutex; the")
	fmt.Println("concurrent wrapper probes first and serves aligned repeats in parallel.")
}
