// Storage budget: partial sideways cracking under a hard auxiliary-storage
// threshold (the paper's Section 4). A rotating report workload touches
// five different attribute pairs; full maps would need 10x the table size,
// but partial maps materialize only the chunks the workload actually
// reads, evict cold chunks least-frequently-used first, and recreate them
// on demand — always staying under the budget.
package main

import (
	"fmt"
	"math/rand"

	crackstore "crackstore"
	"crackstore/internal/workload"
)

func main() {
	const rows = 200000
	const budget = rows // auxiliary storage capped at one table's worth

	attrs := []string{"key", "b1", "b2", "b3", "b4", "b5", "c1", "c2", "c3", "c4", "c5"}
	rng := rand.New(rand.NewSource(3))
	rel := crackstore.Build("facts", rows, attrs,
		func(string, int) crackstore.Value { return rng.Int63n(rows) })

	e := crackstore.OpenPartialWithOptions(rel, crackstore.PartialOptions{
		Budget:            budget,
		CachedPieceTuples: 2048, // drop heads of cache-resident chunks
	})
	gen := workload.New(rows, 11)

	fmt.Printf("budget: %d tuples; full maps for this workload would need %d\n\n",
		budget, 10*rows)
	peak := 0
	for q := 0; q < 250; q++ {
		// Rotate through five report types every 50 queries.
		ti := workload.BatchCycle(q, 50, 5)
		bAttr := attrs[1+ti]
		cAttr := attrs[6+ti]
		_, _ = e.Query(crackstore.Query{
			Preds: []crackstore.AttrPred{
				{Attr: "key", Pred: gen.Range(0.02)},
				{Attr: bAttr, Pred: gen.Range(0.5)},
			},
			Projs: []string{cAttr},
		})
		if s := e.Storage(); s > peak {
			peak = s
		}
		if q%50 == 49 {
			fmt.Printf("after %3d queries (report type %d): %6d tuples of chunk storage\n",
				q+1, ti+1, e.Storage())
		}
	}
	fmt.Printf("\npeak chunk storage: %d tuples (budget %d) — never exceeded\n", peak, budget)
	if st := crackstore.PartialStore(e); st != nil {
		fmt.Printf("chunk map overhead (not budgeted, like a cracker column): %d tuples\n",
			st.ChunkMapTuples())
	}
}
