// Sharded serving: one relation range-partitioned across four engines,
// each behind its own probe/execute lock. A single Concurrent engine
// already serves read-only repeats in parallel, but every crack — and
// cracking stores turn reads into writes — still stalls the whole
// relation behind one write lock. Sharding splits that lock: a client
// whose query cracks new ground on shard 3 blocks only shard 3, while
// queries over the other shards' value bands keep streaming. Range
// pruning means a narrow predicate usually touches exactly one shard.
package main

import (
	"fmt"
	"math/rand"
	"sync"

	crackstore "crackstore"
)

const (
	rows    = 100_000
	shards  = 4
	clients = 8
	perEach = 2_000
)

func buildRelation() *crackstore.Relation {
	rng := rand.New(rand.NewSource(1))
	return crackstore.Build("orders", rows,
		[]string{"amount", "customer"},
		func(string, int) crackstore.Value { return rng.Int63n(rows) })
}

// pool mixes a warm hot set with fresh, never-seen ranges: the fresh
// ranges force cracks during the run, which is where per-shard locking
// pays off.
func pool(seed int64) []crackstore.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]crackstore.Query, 64)
	for i := range qs {
		lo := rng.Int63n(rows - 200)
		qs[i] = crackstore.Query{
			Preds: []crackstore.AttrPred{{Attr: "amount", Pred: crackstore.Range(lo, lo+100)}},
			Projs: []string{"customer"},
		}
	}
	return qs
}

func run(name string, e crackstore.Engine) {
	warm := pool(2)
	for _, q := range warm {
		e.Query(q)
	}
	srv := crackstore.Serve(e, crackstore.ServeOptions{Workers: clients})
	defer srv.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			fresh := pool(100 + seed) // cold ranges: these crack mid-run
			for i := 0; i < perEach; i++ {
				q := warm[rng.Intn(len(warm))]
				if rng.Intn(8) == 0 {
					q = fresh[rng.Intn(len(fresh))]
				}
				if _, _, err := srv.Do(q); err != nil {
					panic(err)
				}
			}
		}(int64(c))
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("%-12s %8d queries  %3d errors  %10.0f q/s   p50=%-9v p99=%-9v max=%v\n",
		name, st.Queries, st.Errors, st.QPS, st.P50, st.P99, st.Max)
}

func main() {
	fmt.Printf("%d clients, %d queries each, cracking mid-run (1 in 8 queries hits a cold range)\n\n",
		clients, perEach)
	run("concurrent", crackstore.Concurrent(crackstore.Open(crackstore.Sideways, buildRelation())))
	run("sharded", crackstore.Sharded(crackstore.Sideways, buildRelation(), shards,
		crackstore.ShardOptions{Attr: "amount"}))
	fmt.Println("\nThe single concurrent engine stalls every client whenever any query")
	fmt.Println("cracks; the sharded engine confines each crack to the one shard that")
	fmt.Println("owns the value band, so the other shards keep serving reads.")
}
