// Updates: sideways cracking under a live insert/delete stream (the
// paper's Exp6). Updates are queued as pending and merged by the Ripple
// algorithm only when a query actually touches the affected value range,
// so query answers are always exact while update cost is absorbed
// incrementally — no index rebuild, ever. Contrast with presorted copies,
// which must re-sort after any change.
package main

import (
	"fmt"
	"math/rand"

	crackstore "crackstore"
	"crackstore/internal/workload"
)

func main() {
	const rows = 100000
	rng := rand.New(rand.NewSource(5))
	build := func() *crackstore.Relation {
		r := rand.New(rand.NewSource(5))
		return crackstore.Build("inventory", rows,
			[]string{"price", "stock", "warehouse"},
			func(string, int) crackstore.Value { return r.Int63n(100000) })
	}

	side := crackstore.Open(crackstore.Sideways, build())
	scan := crackstore.Open(crackstore.Scan, build())
	gen := workload.New(100000, 21)

	live := make([]int, rows)
	for i := range live {
		live[i] = i
	}

	fmt.Println("10 random updates every 10 queries (HFLV scenario)")
	fmt.Printf("%-8s%14s%14s%10s\n", "query", "sideways", "plain scan", "rows")
	for q := 1; q <= 100; q++ {
		if q%10 == 0 {
			for u := 0; u < 10; u++ {
				i := rng.Intn(len(live))
				key := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				side.Delete(key)
				scan.Delete(key)
				vals := []crackstore.Value{gen.Value(), gen.Value(), gen.Value()}
				k1 := side.Insert(vals...)
				scan.Insert(vals...)
				live = append(live, k1)
			}
		}
		pred := gen.Range(0.2)
		q1 := crackstore.Query{
			Preds: []crackstore.AttrPred{{Attr: "price", Pred: pred}},
			Projs: []string{"stock", "warehouse"},
		}
		r1, c1 := side.Query(q1)
		r2, c2 := scan.Query(q1)
		if r1.N != r2.N {
			panic(fmt.Sprintf("engines disagree: %d vs %d", r1.N, r2.N))
		}
		if q%10 == 1 {
			fmt.Printf("%-8d%14v%14v%10d\n", q, c1.Total(), c2.Total(), r1.N)
		}
	}
	fmt.Println("\nSideways cracking keeps its self-organized advantage across the")
	fmt.Println("update stream; pending updates merge only when queries need them.")
}
