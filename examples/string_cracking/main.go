// String cracking: the paper's conclusions list cracking on string
// attributes as future work. The standard route — and the one this library
// ships — is an order-preserving dictionary: each string becomes its rank
// in sorted order, so string ranges and prefixes are contiguous integer
// ranges that the ordinary cracking machinery handles. This example cracks
// a city-name column by prefix queries and joins two relations with the
// partitioned cracker join of Section 3.4.
package main

import (
	"fmt"
	"math/rand"

	crackstore "crackstore"
)

var cities = []string{
	"amsterdam", "athens", "atlanta", "austin", "barcelona", "beijing",
	"berlin", "bogota", "boston", "brussels", "budapest", "buenos aires",
	"cairo", "calgary", "cape town", "caracas", "chicago", "copenhagen",
	"dallas", "delhi", "denver", "detroit", "dubai", "dublin",
	"edinburgh", "frankfurt", "geneva", "hamburg", "helsinki", "hongkong",
	"houston", "istanbul", "jakarta", "johannesburg", "karachi", "kiev",
	"lagos", "lima", "lisbon", "london", "los angeles", "madrid",
	"manila", "melbourne", "mexico city", "miami", "milan", "montreal",
	"moscow", "mumbai", "munich", "nairobi", "new york", "osaka",
	"oslo", "paris", "prague", "rome", "san francisco", "santiago",
	"sao paulo", "seattle", "seoul", "shanghai", "singapore", "stockholm",
	"sydney", "tokyo", "toronto", "vienna", "warsaw", "zurich",
}

func main() {
	const rows = 200000
	d := crackstore.BuildDict(cities)
	rng := rand.New(rand.NewSource(1))

	// Events table: (city, amount). City stored as dictionary codes.
	events := crackstore.NewRelation("events", "city", "amount")
	for i := 0; i < rows; i++ {
		code, _ := d.Code(cities[rng.Intn(len(cities))])
		events.AppendRow(code, rng.Int63n(10000))
	}
	e := crackstore.Open(crackstore.Sideways, events)

	fmt.Println("prefix queries on a cracked string column:")
	for _, prefix := range []string{"b", "s", "san", "m", "b"} {
		pred := d.PrefixPred(prefix)
		res, cost := e.Query(crackstore.Query{
			Preds: []crackstore.AttrPred{{Attr: "city", Pred: pred}},
			Projs: []string{"amount"},
		})
		fmt.Printf("  city LIKE %q%%  -> %6d events (codes [%d,%d), %v)\n",
			prefix, res.N, pred.Lo, pred.Hi, cost.Total())
	}

	// String ranges work the same way.
	pred := d.RangePred("berlin", "dublin")
	res, _ := e.Query(crackstore.Query{
		Preds: []crackstore.AttrPred{{Attr: "city", Pred: pred}},
		Projs: []string{"amount"},
	})
	fmt.Printf("\n'berlin' <= city <= 'dublin' -> %d events\n", res.N)

	// Clustered aggregate: the max only inspects the last piece of the
	// already-cracked map.
	if mx, ok := crackstore.ClusteredMax(e, "city"); ok {
		fmt.Printf("lexicographically largest city with events: %s\n", d.String(mx))
	}

	// Partitioned cracker join against a second relation on the city code.
	offices := crackstore.NewRelation("offices", "city", "headcount")
	for i := 0; i < 2000; i++ {
		code, _ := d.Code(cities[rng.Intn(len(cities))])
		offices.AppendRow(code, rng.Int63n(500))
	}
	o := crackstore.Open(crackstore.Sideways, offices)
	pairs, err := crackstore.CrackerJoin(e, "city", o, "city", 8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncracker join events.city = offices.city: %d pairs over 8 partitions\n", len(pairs))
	fmt.Println("(the partitioning work is retained as cracking knowledge for future queries)")
}
