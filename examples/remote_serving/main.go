// Remote serving: the engine in one process, clients in another, a
// length-prefixed binary protocol in between. This example hosts a
// sideways-cracking engine on a loopback TCP listener (the embeddable form
// of the crackserved daemon), connects a multiplexing client, and drives
// pipelined concurrent traffic through the wire — the same Query/Insert/
// Delete API as in-process, now across a network boundary.
//
// Run it:
//
//	go run ./examples/remote_serving
//
// Against a real daemon the only change is the address:
//
//	crackserved -addr :9090 -rows 100000 &
//	c, _ := crackstore.Dial("localhost:9090", crackstore.DialOptions{})
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	crackstore "crackstore"
)

const (
	rows    = 100_000
	clients = 16
	perEach = 500
)

func main() {
	// Host: any engine works; the sharded + adaptive stack composes too.
	rng := rand.New(rand.NewSource(1))
	rel := crackstore.Build("orders", rows,
		[]string{"amount", "customer", "region"},
		func(string, int) crackstore.Value { return 1 + rng.Int63n(rows) })
	srv, err := crackstore.ListenAndServe("127.0.0.1:0",
		crackstore.Open(crackstore.Sideways, rel),
		crackstore.NetServeOptions{
			// One slow crack must not wedge a connection's pipeline:
			// bound every query and let stragglers finish off-path.
			Serve: crackstore.ServeOptions{Workers: 8, Timeout: time.Second},
		})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("serving %d rows on %s\n", rows, srv.Addr())

	// Client: one pooled, multiplexing connection set; safe for any number
	// of goroutines, each synchronous call pipelines over the shared conns.
	c, err := crackstore.Dial(srv.Addr().String(), crackstore.DialOptions{Conns: 2})
	if err != nil {
		panic(err)
	}
	defer c.Close()

	// A remote insert is visible to remote queries exactly like an
	// in-process one.
	key, err := c.Insert(500, 42, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("inserted tuple got global key %d\n", key)

	pool := make([]crackstore.Query, 32)
	for i := range pool {
		lo := 1 + rng.Int63n(rows-200)
		pool[i] = crackstore.Query{
			Preds: []crackstore.AttrPred{{Attr: "amount", Pred: crackstore.Range(lo, lo+100)}},
			Projs: []string{"customer"},
		}
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perEach; i++ {
				if _, _, err := c.Query(pool[r.Intn(len(pool))]); err != nil {
					panic(err)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	elapsed := time.Since(t0)

	st, err := c.Stats() // server-side serving statistics, over the wire
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n%d clients x %d queries over the wire in %v (%.0f q/s)\n",
		clients, perEach, elapsed.Round(time.Millisecond),
		float64(clients*perEach)/elapsed.Seconds())
	fmt.Printf("server reports: %d queries, %d errors, p50=%v p99=%v\n",
		st.Queries, st.Errors, st.P50, st.P99)
	fmt.Println("\nEvery query crossed a real TCP connection: requests are")
	fmt.Println("pipelined per connection and matched to responses by ID, so")
	fmt.Println("a crack in progress never stalls the read-only answers behind it.")
}
