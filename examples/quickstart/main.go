// Quickstart: open a relation under sideways cracking and watch the system
// self-organize — every query physically reorganizes the cracker maps a
// little more, so identical work gets cheaper over time with no index
// creation, no presorting, and no workload knowledge.
package main

import (
	"fmt"
	"math/rand"

	crackstore "crackstore"
)

func main() {
	const rows = 500000
	rng := rand.New(rand.NewSource(1))
	rel := crackstore.Build("orders", rows,
		[]string{"amount", "customer", "region"},
		func(string, int) crackstore.Value { return rng.Int63n(1000000) })

	e := crackstore.Open(crackstore.Sideways, rel)

	fmt.Println("select customer, region from orders where lo <= amount < hi")
	fmt.Printf("%-8s%-22s%10s%16s\n", "query", "range", "rows", "cost")
	for q := 1; q <= 15; q++ {
		lo := rng.Int63n(900000)
		pred := crackstore.Range(lo, lo+100000) // ~10% selectivity
		res, cost := e.Query(crackstore.Query{
			Preds: []crackstore.AttrPred{{Attr: "amount", Pred: pred}},
			Projs: []string{"customer", "region"},
		})
		fmt.Printf("%-8d%-22v%10d%16v\n", q, pred, res.N, cost.Total())
	}
	fmt.Printf("\nauxiliary map storage: %d tuples (built incrementally by the queries)\n",
		e.Storage())

	// The same data, same queries, on the plain scan engine for contrast.
	rng = rand.New(rand.NewSource(1))
	rel2 := crackstore.Build("orders", rows,
		[]string{"amount", "customer", "region"},
		func(string, int) crackstore.Value { return rng.Int63n(1000000) })
	scan := crackstore.Open(crackstore.Scan, rel2)
	lo := rng.Int63n(900000)
	_, cost := scan.Query(crackstore.Query{
		Preds: []crackstore.AttrPred{{Attr: "amount", Pred: crackstore.Range(lo, lo+100000)}},
		Projs: []string{"customer", "region"},
	})
	fmt.Printf("plain scan engine pays %v on every query, forever\n", cost.Total())
}
