// Package faultnet injects deterministic network faults under the remote-
// serving stack: a net.Conn / net.Listener wrapper and an in-process TCP
// proxy that — driven by a seeded RNG — delay operations, corrupt or
// truncate byte streams, cut connections mid-frame, short-write, and stall
// accepts. It exists so the resilience layer (client retries, idempotency
// tokens, hedged reads, overload shedding) can be exercised against real
// failures in ordinary tests, from `crackbench -chaos`, and as a
// `crackserved -fault-rate` debug mode, without ever touching iptables or
// real packet loss.
//
// All randomness flows from one seeded source per Injector, so a run is
// reproducible given its seed and the (scheduler-dependent) order of
// operations: fault *decisions* are deterministic per draw even when
// concurrency makes the draw order vary.
//
// Faults are injected on the write side of a wrapped conn (and optionally
// on reads for listener-wrapped conns): a corrupted write is seen by the
// peer as a corrupted read, which is exactly how real corruption arrives.
// The wire protocol's frame checksum turns silent corruption into a
// detectable connection error, which the client then retries — the chaos
// property tests assert zero wrong answers survive this pipeline.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Faults configures the injector: each rate is the per-operation
// probability (0..1) of that fault firing on a Read/Write/Accept.
type Faults struct {
	// Seed drives every fault decision; runs with equal seeds and equal
	// operation orders make identical decisions.
	Seed int64

	// DelayRate stalls an operation for a uniform duration in
	// [DelayMin, DelayMax] before it proceeds (slow peer, congested link).
	DelayRate float64
	DelayMin  time.Duration
	DelayMax  time.Duration

	// CorruptRate flips one byte of the transferred chunk (bit rot, broken
	// middlebox). The peer's frame checksum catches it.
	CorruptRate float64

	// PartialWriteRate writes only a prefix of the chunk and fails the
	// connection (peer saw a truncated stream).
	PartialWriteRate float64

	// TruncateRate forwards a prefix of the chunk and then closes the
	// connection (mid-frame cut).
	TruncateRate float64

	// ResetRate closes the connection before the operation (abrupt peer
	// death / RST).
	ResetRate float64

	// AcceptStallRate delays an Accept by AcceptStall (listener overload,
	// SYN queue pressure).
	AcceptStallRate float64
	AcceptStall     time.Duration
}

// Mix returns the standard chaos mixture at an aggregate fault rate: the
// rate is split across corruption, resets, partial writes, truncation, and
// delays, which together exercise every failure path the resilience layer
// defends (checksum rejection, retry-after-send with idempotency tokens,
// redial with backoff, hedging past stragglers).
func Mix(rate float64, seed int64) Faults {
	return Faults{
		Seed:             seed,
		DelayRate:        rate * 0.2,
		DelayMin:         200 * time.Microsecond,
		DelayMax:         2 * time.Millisecond,
		CorruptRate:      rate * 0.2,
		PartialWriteRate: rate * 0.2,
		TruncateRate:     rate * 0.2,
		ResetRate:        rate * 0.2,
	}
}

// ErrInjected is the base error of every injected fault, so tests and
// retry classifiers can tell injected failures from real ones.
var ErrInjected = errors.New("faultnet: injected fault")

// Injector makes seeded fault decisions. One Injector is shared by every
// conn of a listener or proxy, so the configured rates hold across the
// whole run rather than per connection.
type Injector struct {
	f  Faults
	mu sync.Mutex
	r  *rand.Rand
}

// NewInjector builds an injector from a fault configuration.
func NewInjector(f Faults) *Injector {
	return &Injector{f: f, r: rand.New(rand.NewSource(f.Seed))}
}

// pick is the seeded per-operation draw every fault wrapper shares (Conn
// on the network side, FaultFile on the storage side). One uniform draw
// walks the cumulative distribution over rates — so each rate is the
// marginal probability of its fault, independent of evaluation order — and
// a second draw (cut) parameterizes whichever fault fired (prefix length,
// delay fraction, byte position). Exactly two draws per operation, always,
// which is what keeps a run reproducible per seed across refactors.
func (in *Injector) pick(rates []float64) (choice int, cut float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	x := in.r.Float64()
	cut = in.r.Float64()
	for i, rate := range rates {
		if x -= rate; x < 0 {
			return i, cut
		}
	}
	return -1, cut
}

// decide draws the fault (if any) for one network operation. Read-side
// operations keep zero-rate slots for the write-only faults so the draw
// sequence (and thus every seeded run) is unchanged by the shared core.
func (in *Injector) decide(write bool) (fault byte, delay time.Duration, cut float64) {
	f := in.f
	rates := [5]float64{f.ResetRate, 0, 0, 0, f.DelayRate}
	if write {
		rates[1], rates[2], rates[3] = f.CorruptRate, f.PartialWriteRate, f.TruncateRate
	}
	choice, cut := in.pick(rates[:])
	switch choice {
	case 0:
		return 'R', 0, cut
	case 1:
		return 'C', 0, cut
	case 2:
		return 'P', 0, cut
	case 3:
		return 'T', 0, cut
	case 4:
		span := f.DelayMax - f.DelayMin
		if span < 0 {
			span = 0
		}
		return 'D', f.DelayMin + time.Duration(cut*float64(span)), cut
	}
	return 0, 0, cut
}

// stallAccept draws the accept-stall decision.
func (in *Injector) stallAccept() (time.Duration, bool) {
	if in.f.AcceptStallRate <= 0 {
		return 0, false
	}
	in.mu.Lock()
	hit := in.r.Float64() < in.f.AcceptStallRate
	in.mu.Unlock()
	if !hit {
		return 0, false
	}
	d := in.f.AcceptStall
	if d <= 0 {
		d = 5 * time.Millisecond
	}
	return d, true
}

// Conn wraps a net.Conn with fault injection. Writes may be delayed,
// corrupted, short-written, truncated, or turned into resets; reads may be
// delayed or reset (read-side corruption is redundant — the peer's writes
// were already eligible when both sides are wrapped, and a proxy wraps the
// forwarding writes of both directions).
type Conn struct {
	net.Conn
	inj *Injector
}

// WrapConn wraps nc with the injector's faults.
func WrapConn(nc net.Conn, inj *Injector) *Conn { return &Conn{Conn: nc, inj: inj} }

func (c *Conn) Read(p []byte) (int, error) {
	switch fault, delay, _ := c.inj.decide(false); fault {
	case 'R':
		c.Conn.Close()
		return 0, fmt.Errorf("%w: read reset", ErrInjected)
	case 'D':
		time.Sleep(delay)
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	fault, delay, cut := c.inj.decide(true)
	switch fault {
	case 'R':
		c.Conn.Close()
		return 0, fmt.Errorf("%w: write reset", ErrInjected)
	case 'D':
		time.Sleep(delay)
	case 'C':
		if len(p) > 0 {
			// Copy before flipping: the net.Conn contract forbids mutating
			// the caller's buffer, and the client retries from it.
			dup := append([]byte(nil), p...)
			dup[int(cut*float64(len(dup)))%len(dup)] ^= 0xA5
			return c.Conn.Write(dup)
		}
	case 'P':
		n := int(cut * float64(len(p)))
		if n >= len(p) && len(p) > 0 {
			n = len(p) - 1
		}
		wrote, _ := c.Conn.Write(p[:n])
		c.Conn.Close()
		return wrote, fmt.Errorf("%w: partial write %d/%d", ErrInjected, wrote, len(p))
	case 'T':
		n := int(cut * float64(len(p)))
		if n >= len(p) && len(p) > 0 {
			n = len(p) - 1
		}
		c.Conn.Write(p[:n])
		c.Conn.Close()
		return 0, fmt.Errorf("%w: stream truncated after %d/%d", ErrInjected, n, len(p))
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener: accepts may stall, and every accepted
// conn carries the shared injector. This is the `crackserved -fault-rate`
// debug mode — the daemon itself misbehaves, no proxy required.
type Listener struct {
	net.Listener
	inj *Injector
}

// WrapListener wraps ln with fault injection from f.
func WrapListener(ln net.Listener, f Faults) *Listener {
	return &Listener{Listener: ln, inj: NewInjector(f)}
}

func (l *Listener) Accept() (net.Conn, error) {
	if d, ok := l.inj.stallAccept(); ok {
		time.Sleep(d)
	}
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(nc, l.inj), nil
}

// ---------------------------------------------------------------------------
// In-process proxy.

// Proxy is a TCP forwarder that injects faults into both directions of
// every proxied connection: tests and crackbench put it between a healthy
// client and a healthy server so neither endpoint needs fault hooks.
type Proxy struct {
	ln     net.Listener
	target string
	inj    *Injector

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy listens on addr (e.g. "127.0.0.1:0") and forwards every
// connection to target with faults injected on the forwarded streams.
func NewProxy(addr, target string, f Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, inj: NewInjector(f), conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — dial this instead of the
// target.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// Close stops accepting and severs every proxied connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		if d, ok := p.inj.stallAccept(); ok {
			time.Sleep(d)
		}
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		out, err := net.Dial("tcp", p.target)
		if err != nil {
			in.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			in.Close()
			out.Close()
			return
		}
		p.conns[in] = struct{}{}
		p.conns[out] = struct{}{}
		p.wg.Add(2)
		p.mu.Unlock()
		// Faults ride on the forwarding writes, so each direction sees
		// delays, corruption, truncation, and resets independently.
		go p.pump(in, WrapConn(out, p.inj))
		go p.pump(out, WrapConn(in, p.inj))
	}
}

// pump copies src -> dst until either side dies, then severs both so the
// peer observes the failure instead of a half-open hang.
func (p *Proxy) pump(src net.Conn, dst *Conn) {
	defer p.wg.Done()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	src.Close()
	dst.Close()
	p.mu.Lock()
	delete(p.conns, src)
	delete(p.conns, dst.Conn)
	p.mu.Unlock()
}
