package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestDecideDeterministic: equal seeds make identical fault decisions for
// an identical operation sequence — the property that makes a chaos run
// reproducible.
func TestDecideDeterministic(t *testing.T) {
	f := Mix(0.3, 42)
	a, b := NewInjector(f), NewInjector(f)
	for i := 0; i < 1000; i++ {
		fa, da, ca := a.decide(i%2 == 0)
		fb, db, cb := b.decide(i%2 == 0)
		if fa != fb || da != db || ca != cb {
			t.Fatalf("draw %d diverged: (%c,%v,%v) vs (%c,%v,%v)", i, fa, da, ca, fb, db, cb)
		}
	}
}

// TestMixRates: over many draws each fault of the standard mix fires at
// roughly its configured share, and a zero rate never fires.
func TestMixRates(t *testing.T) {
	in := NewInjector(Mix(0.5, 7))
	counts := map[byte]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		f, _, _ := in.decide(true)
		counts[f]++
	}
	// Each write-side fault should get ~10% (0.5 * 0.2) of draws.
	for _, f := range []byte{'R', 'C', 'P', 'T', 'D'} {
		got := float64(counts[f]) / n
		if got < 0.05 || got > 0.15 {
			t.Errorf("fault %c rate %.3f, want ~0.10", f, got)
		}
	}
	if none := float64(counts[0]) / n; none < 0.4 || none > 0.6 {
		t.Errorf("no-fault rate %.3f, want ~0.50", none)
	}

	quiet := NewInjector(Faults{Seed: 1})
	for i := 0; i < 1000; i++ {
		if f, _, _ := quiet.decide(true); f != 0 {
			t.Fatalf("zero-rate injector fired fault %c", f)
		}
	}
}

// pipePair builds a loopback TCP pair for conn-level tests.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		done <- c
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := <-done
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

// TestCorruptWriteFlipsByte: a corruption fault delivers a chunk of the
// right length that differs from the original in exactly one byte, and the
// caller's buffer is untouched.
func TestCorruptWriteFlipsByte(t *testing.T) {
	c, s := pipePair(t)
	inj := NewInjector(Faults{Seed: 3, CorruptRate: 1})
	fc := WrapConn(c, inj)
	msg := []byte("hello, corrupted world")
	orig := append([]byte(nil), msg...)
	if _, err := fc.Write(msg); err != nil {
		t.Fatalf("corrupt write errored: %v", err)
	}
	if !bytes.Equal(msg, orig) {
		t.Fatal("Write mutated the caller's buffer")
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes, want exactly 1", diff)
	}
}

// TestResetAndPartialWriteKillConn: reset and partial-write faults error
// with ErrInjected and leave the conn unusable — the shape a retrying
// client must classify as a connection failure.
func TestResetAndPartialWriteKillConn(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Faults
	}{
		{"reset", Faults{Seed: 5, ResetRate: 1}},
		{"partial", Faults{Seed: 5, PartialWriteRate: 1}},
		{"truncate", Faults{Seed: 5, TruncateRate: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, s := pipePair(t)
			fc := WrapConn(c, NewInjector(tc.f))
			_, err := fc.Write(make([]byte, 1024))
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("want ErrInjected, got %v", err)
			}
			// Peer observes a closed/truncated stream, never 1024 clean bytes.
			s.SetReadDeadline(time.Now().Add(2 * time.Second))
			n, _ := io.ReadFull(s, make([]byte, 1024))
			if n >= 1024 {
				t.Fatalf("peer received the full chunk despite %s", tc.name)
			}
		})
	}
}

// TestProxyCleanAtRateZero: a zero-fault proxy is a transparent forwarder.
func TestProxyCleanAtRateZero(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c) // echo
		}
	}()
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String(), Faults{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("abcdefgh"), 4096)
	go c.Write(msg)
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("echo through proxy: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("proxy corrupted a zero-fault stream")
	}
}

// TestProxyCloseSevers: closing the proxy severs proxied connections so
// clients observe peer death instead of hanging.
func TestProxyCloseSevers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String(), Faults{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("warm")) // ensure the proxied pair is established
	time.Sleep(20 * time.Millisecond)
	p.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on severed proxy conn succeeded")
	}
}
