package faultnet

import (
	"bytes"
	"errors"
	"testing"
)

// memSink collects writes so tests can inspect what "hit disk".
type memSink struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memSink) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memSink) Sync() error                 { m.syncs++; return nil }
func (m *memSink) Close() error                { m.closed = true; return nil }

func TestFaultFilePassThroughAtZeroRate(t *testing.T) {
	sink := &memSink{}
	f := WrapFile(sink, FSFaults{Seed: 1})
	for i := 0; i < 100; i++ {
		if n, err := f.Write([]byte("abcd")); n != 4 || err != nil {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if sink.buf.Len() != 400 || sink.syncs != 100 {
		t.Fatalf("pass-through mangled: len=%d syncs=%d", sink.buf.Len(), sink.syncs)
	}
	if err := f.Close(); err != nil || !sink.closed {
		t.Fatalf("close: %v closed=%v", err, sink.closed)
	}
}

func TestFaultFileInjectsDeterministically(t *testing.T) {
	run := func() (written int, faults int, tornPrefixes []int) {
		sink := &memSink{}
		f := WrapFile(sink, MixFS(0.3, 42))
		for i := 0; i < 200; i++ {
			before := sink.buf.Len()
			n, err := f.Write([]byte("0123456789"))
			if err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("non-injected error: %v", err)
				}
				faults++
				tornPrefixes = append(tornPrefixes, sink.buf.Len()-before)
				continue
			}
			if n != 10 {
				t.Fatalf("clean write returned n=%d", n)
			}
			written++
		}
		return
	}
	w1, f1, p1 := run()
	w2, f2, p2 := run()
	if w1 != w2 || f1 != f2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", w1, f1, w2, f2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("torn prefix lengths diverged at %d: %d vs %d", i, p1[i], p2[i])
		}
	}
	if f1 == 0 {
		t.Fatal("0.3 mix over 200 writes injected nothing")
	}
	// A torn or short write persists a strict prefix, never the whole
	// buffer, never extra bytes.
	for _, p := range p1 {
		if p < 0 || p >= 10 {
			t.Fatalf("injected write persisted %d of 10 bytes", p)
		}
	}
}

func TestFaultFileSyncErrors(t *testing.T) {
	sink := &memSink{}
	f := WrapFile(sink, FSFaults{Seed: 7, SyncErrRate: 0.5})
	var failed, passed int
	for i := 0; i < 100; i++ {
		if err := f.Sync(); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("non-injected sync error: %v", err)
			}
			failed++
		} else {
			passed++
		}
	}
	if failed == 0 || passed == 0 {
		t.Fatalf("sync fault mix degenerate: failed=%d passed=%d", failed, passed)
	}
	// A failed Sync must not have synced.
	if sink.syncs != passed {
		t.Fatalf("underlying syncs=%d but only %d passed", sink.syncs, passed)
	}
}
