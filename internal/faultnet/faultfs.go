// Storage-side fault injection: the same seeded-draw machinery that breaks
// network streams (see faultnet.go) wrapped around a write-syncer file, so
// the WAL's crash paths — torn appends, short writes, failed fsyncs — can
// be exercised deterministically in ordinary tests and from
// `crackbench -durable`. The wrapper deliberately satisfies the wal
// package's File seam structurally (io.Writer + Sync + Close) without
// importing it, keeping faultnet dependency-free.

package faultnet

import (
	"fmt"
	"io"
)

// FSFile is the file surface storage faults are injected through;
// *os.File satisfies it.
type FSFile interface {
	io.Writer
	Sync() error
	Close() error
}

// FSFaults configures per-operation storage fault probabilities.
type FSFaults struct {
	// Seed drives every decision, same semantics as Faults.Seed.
	Seed int64

	// TornWriteRate persists only a prefix of the buffer and reports zero
	// bytes written — the on-disk image holds a torn record whose extent
	// the caller cannot know, the shape a power cut leaves behind.
	TornWriteRate float64

	// ShortWriteRate persists a prefix and honestly reports its length
	// with an error (ENOSPC-style partial syscall).
	ShortWriteRate float64

	// SyncErrRate fails a Sync without syncing. Nothing already written is
	// durable beyond what earlier syncs covered — the fsync-gate scenario
	// the WAL's sticky poison exists for.
	SyncErrRate float64
}

// MixFS returns the standard storage chaos mixture at an aggregate rate,
// the disk-side sibling of Mix: torn writes take the largest share because
// they are the fault recovery's torn-tail truncation must handle, with
// short writes and fsync errors exercising the ack-refusal path.
func MixFS(rate float64, seed int64) FSFaults {
	return FSFaults{
		Seed:           seed,
		TornWriteRate:  rate * 0.4,
		ShortWriteRate: rate * 0.3,
		SyncErrRate:    rate * 0.3,
	}
}

// FaultFile wraps an FSFile with seeded storage fault injection. Every
// injected failure carries ErrInjected, and a fault never lies about
// success: a torn or short write returns an error, so the caller's poison
// logic engages while the on-disk bytes model the crash.
type FaultFile struct {
	f   FSFile
	fs  FSFaults
	inj *Injector
}

// WrapFile wraps f with faults drawn from fs.
func WrapFile(f FSFile, fs FSFaults) *FaultFile {
	return &FaultFile{f: f, fs: fs, inj: NewInjector(Faults{Seed: fs.Seed})}
}

func (f *FaultFile) Write(p []byte) (int, error) {
	choice, cut := f.inj.pick([]float64{f.fs.TornWriteRate, f.fs.ShortWriteRate})
	switch choice {
	case 0: // torn: a prefix lands, the caller learns nothing of its size
		n := int(cut * float64(len(p)))
		f.f.Write(p[:n])
		return 0, fmt.Errorf("%w: torn write (%d of %d bytes persisted)", ErrInjected, n, len(p))
	case 1: // short: a prefix lands and is reported
		n := int(cut * float64(len(p)))
		wrote, _ := f.f.Write(p[:n])
		return wrote, fmt.Errorf("%w: short write %d/%d", ErrInjected, wrote, len(p))
	}
	return f.f.Write(p)
}

func (f *FaultFile) Sync() error {
	if choice, _ := f.inj.pick([]float64{f.fs.SyncErrRate}); choice == 0 {
		return fmt.Errorf("%w: fsync failed", ErrInjected)
	}
	return f.f.Sync()
}

func (f *FaultFile) Close() error { return f.f.Close() }
