// Package presort implements the "ultimate physical design" baseline the
// paper compares against (Sections 1 and 3.6): multiple presorted copies of
// a relation, one per selection attribute. Selections become binary
// searches; all other attributes of a copy are reordered along with the
// sort attribute, so tuple reconstruction is a slice of a contiguous area.
//
// Preparing a copy is expensive (the paper reports 3-14 minutes for TPC-H
// scale 1) and there is no efficient way to maintain sorted copies under
// updates — Prepare must be re-run after any change, which is exactly the
// restriction sideways cracking removes.
package presort

import (
	"sort"

	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// Copy is one presorted replica of a relation, ordered by Attr.
type Copy struct {
	Attr string
	cols map[string][]Value
	key  []Value // sorted values of Attr
}

// Len returns the number of tuples.
func (c *Copy) Len() int { return len(c.key) }

// Store holds a base relation and its presorted copies.
type Store struct {
	rel    *store.Relation
	copies map[string]*Copy
}

// NewStore wraps rel (not copied).
func NewStore(rel *store.Relation) *Store {
	return &Store{rel: rel, copies: make(map[string]*Copy)}
}

// Relation returns the underlying base relation.
func (s *Store) Relation() *store.Relation { return s.rel }

// Prepare builds (or rebuilds) the copy sorted on attr. This is the heavy
// offline step; experiments report its cost separately.
func (s *Store) Prepare(attr string) *Copy {
	return s.PrepareFiltered(attr, nil)
}

// PrepareFiltered is Prepare with rows skipped when skip(key) is true; used
// to rebuild copies after deletions without disturbing base-column keys.
func (s *Store) PrepareFiltered(attr string, skip func(key int) bool) *Copy {
	perm := store.OrderBy(s.rel.MustColumn(attr).Vals)
	if skip != nil {
		kept := perm[:0]
		for _, p := range perm {
			if !skip(p) {
				kept = append(kept, p)
			}
		}
		perm = kept
	}
	c := &Copy{Attr: attr, cols: make(map[string][]Value, len(s.rel.Order))}
	for _, name := range s.rel.Order {
		src := s.rel.MustColumn(name).Vals
		dst := make([]Value, len(perm))
		for i, p := range perm {
			dst[i] = src[p]
		}
		c.cols[name] = dst
	}
	c.key = c.cols[attr]
	s.copies[attr] = c
	return c
}

// CopyFor returns the copy sorted on attr, or nil if not prepared.
func (s *Store) CopyFor(attr string) *Copy { return s.copies[attr] }

// area returns the contiguous index range [lo, hi) of tuples matching pred
// using binary search on the sort column.
func (c *Copy) area(pred store.Pred) (lo, hi int) {
	lo = sort.Search(len(c.key), func(i int) bool {
		v := c.key[i]
		if pred.LoIncl {
			return v >= pred.Lo
		}
		return v > pred.Lo
	})
	hi = sort.Search(len(c.key), func(i int) bool {
		v := c.key[i]
		if pred.HiIncl {
			return v > pred.Hi
		}
		return v >= pred.Hi
	})
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Area exposes the matching range for cost accounting in experiments.
func (c *Copy) Area(pred store.Pred) (lo, hi int) { return c.area(pred) }

// Column returns the named column of the copy (sorted order).
func (c *Copy) Column(attr string) []Value { return c.cols[attr] }

// Result mirrors the sideways result: positionally aligned projections.
type Result struct {
	Cols map[string][]Value
	N    int
}

// Query evaluates a conjunctive (or disjunctive) multi-selection with
// projections using the copy sorted on the attribute of preds[primary].
// The copy must have been Prepared. Like the sideways plan, secondary
// predicates are applied by scanning the aligned area.
func (s *Store) Query(preds []store.Pred, attrs []string, primary int, projs []string, disjunctive bool) Result {
	c := s.copies[attrs[primary]]
	if c == nil {
		c = s.Prepare(attrs[primary])
	}
	res := Result{Cols: make(map[string][]Value, len(projs))}
	if disjunctive {
		n := c.Len()
		keep := make([]int, 0, n)
		for i := 0; i < n; i++ {
			for j, attr := range attrs {
				if preds[j].Matches(c.cols[attr][i]) {
					keep = append(keep, i)
					break
				}
			}
		}
		res.N = len(keep)
		for _, attr := range projs {
			col := c.cols[attr]
			out := make([]Value, len(keep))
			for i, p := range keep {
				out[i] = col[p]
			}
			res.Cols[attr] = out
		}
		return res
	}
	lo, hi := c.area(preds[primary])
	keep := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		ok := true
		for j, attr := range attrs {
			if j == primary {
				continue
			}
			if !preds[j].Matches(c.cols[attr][i]) {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, i)
		}
	}
	res.N = len(keep)
	for _, attr := range projs {
		col := c.cols[attr]
		out := make([]Value, len(keep))
		for i, p := range keep {
			out[i] = col[p]
		}
		res.Cols[attr] = out
	}
	return res
}
