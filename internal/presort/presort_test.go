package presort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crackstore/internal/store"
)

func buildRel(rng *rand.Rand, n int, attrs []string, domain int64) *store.Relation {
	return store.Build("R", n, attrs, func(attr string, row int) Value {
		return Value(rng.Int63n(domain))
	})
}

func TestPrepareSortsAllColumnsTogether(t *testing.T) {
	rel := store.NewRelation("R", "A", "B")
	rel.AppendRow(3, 30)
	rel.AppendRow(1, 10)
	rel.AppendRow(2, 20)
	s := NewStore(rel)
	c := s.Prepare("A")
	if !sort.SliceIsSorted(c.key, func(i, j int) bool { return c.key[i] < c.key[j] }) {
		t.Fatal("copy not sorted")
	}
	for i := 0; i < 3; i++ {
		if c.cols["B"][i] != c.cols["A"][i]*10 {
			t.Fatalf("columns not reordered together: A=%d B=%d", c.cols["A"][i], c.cols["B"][i])
		}
	}
}

func TestAreaBinarySearch(t *testing.T) {
	rel := store.NewRelation("R", "A")
	for _, v := range []Value{5, 1, 9, 3, 7, 5, 5} {
		rel.AppendRow(v)
	}
	s := NewStore(rel)
	c := s.Prepare("A")
	lo, hi := c.Area(store.Point(5))
	if hi-lo != 3 {
		t.Fatalf("point area = %d, want 3", hi-lo)
	}
	lo, hi = c.Area(store.Open(1, 9)) // 1 < v < 9
	if hi-lo != 5 {
		t.Fatalf("open area = %d, want 5", hi-lo)
	}
	lo, hi = c.Area(store.Range(100, 200))
	if hi != lo {
		t.Fatal("out-of-domain area should be empty")
	}
}

// Property: Query agrees with a naive scan for conjunctive and disjunctive
// multi-selections.
func TestQuickQuery(t *testing.T) {
	f := func(seed int64, disjunctive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := buildRel(rng, 200, []string{"A", "B", "C"}, 50)
		s := NewStore(rel)
		for q := 0; q < 10; q++ {
			lo1 := rng.Int63n(50)
			lo2 := rng.Int63n(50)
			preds := []store.Pred{store.Range(lo1, lo1+10), store.Range(lo2, lo2+20)}
			attrs := []string{"A", "B"}
			res := s.Query(preds, attrs, 0, []string{"C"}, disjunctive)
			want := 0
			for i := 0; i < rel.NumRows(); i++ {
				a := rel.MustColumn("A").Vals[i]
				b := rel.MustColumn("B").Vals[i]
				m := preds[0].Matches(a) && preds[1].Matches(b)
				if disjunctive {
					m = preds[0].Matches(a) || preds[1].Matches(b)
				}
				if m {
					want++
				}
			}
			if res.N != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPrepare(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rel := buildRel(rng, 1<<16, []string{"A", "B", "C", "D"}, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewStore(rel).Prepare("A")
	}
}

func BenchmarkQueryAfterPrepare(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rel := buildRel(rng, 1<<16, []string{"A", "B", "C", "D"}, 1<<16)
	s := NewStore(rel)
	s.Prepare("A")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(1 << 16)
		s.Query([]store.Pred{store.Range(lo, lo+(1<<13))}, []string{"A"}, 0, []string{"B", "C"}, false)
	}
}
