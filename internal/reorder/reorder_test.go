package reorder

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSort(t *testing.T) {
	in := []int{5, 1, 3, 2}
	out := Sort(in)
	if !sort.IntsAreSorted(out) {
		t.Fatal("not sorted")
	}
	if in[0] != 5 {
		t.Fatal("input mutated")
	}
}

func TestRadixClusterPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	keys := make([]int, 3000)
	for i := range keys {
		keys[i] = rng.Intn(n)
	}
	out := RadixCluster(keys, 256, n)
	a := append([]int(nil), keys...)
	b := append([]int(nil), out...)
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("multiset changed")
		}
	}
}

// Property: after clustering, cluster ids are non-decreasing and within a
// cluster the original relative order is preserved (stable).
func TestQuickRadixClusterOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1000 + rng.Intn(5000)
		span := 1 + rng.Intn(500)
		keys := make([]int, rng.Intn(2000))
		for i := range keys {
			keys[i] = rng.Intn(n)
		}
		out := RadixCluster(keys, span, n)
		prevCluster := -1
		for _, k := range out {
			c := k / span
			if c < prevCluster {
				return false
			}
			prevCluster = c
		}
		// Stability: filter both sequences per cluster and compare.
		perCluster := map[int][]int{}
		for _, k := range keys {
			perCluster[k/span] = append(perCluster[k/span], k)
		}
		i := 0
		for i < len(out) {
			c := out[i] / span
			want := perCluster[c]
			for j := 0; j < len(want); j++ {
				if out[i+j] != want[j] {
					return false
				}
			}
			i += len(want)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRadixClusterSingleCluster(t *testing.T) {
	keys := []int{3, 1, 2}
	out := RadixCluster(keys, 100, 50)
	for i := range keys {
		if out[i] != keys[i] {
			t.Fatal("single-cluster case should preserve order")
		}
	}
}

func BenchmarkSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int, 1<<16)
	for i := range keys {
		keys[i] = rng.Intn(1 << 18)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sort(keys)
	}
}

func BenchmarkRadixCluster(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int, 1<<16)
	for i := range keys {
		keys[i] = rng.Intn(1 << 18)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RadixCluster(keys, 4096, 1<<18)
	}
}
