// Package reorder implements the intermediate-result reordering strategies
// of experiment Exp3 (Section 3.6): when selection cracking produces an
// unordered key list, tuple reconstruction degenerates to random access.
// Sorting the keys restores a fully sequential pattern at O(n log n) cost;
// cache-conscious radix-clustering (Manegold et al., VLDB 2004) restricts
// the randomness to cache-sized clusters at a lower investment.
package reorder

import "sort"

// Sort returns a sorted copy of keys, enabling ordered positional
// reconstruction.
func Sort(keys []int) []int {
	out := make([]int, len(keys))
	copy(out, keys)
	sort.Ints(out)
	return out
}

// RadixCluster partitions keys into clusters by key / clusterSpan,
// preserving input order within each cluster (one counting-sort pass, as in
// radix-decluster). Reconstruction then touches base-column regions of at
// most clusterSpan positions at a time: random access confined to the
// cache. n is the key domain size (number of base tuples).
func RadixCluster(keys []int, clusterSpan, n int) []int {
	if clusterSpan <= 0 {
		panic("reorder: clusterSpan must be positive")
	}
	nClusters := (n + clusterSpan - 1) / clusterSpan
	if nClusters <= 1 {
		out := make([]int, len(keys))
		copy(out, keys)
		return out
	}
	counts := make([]int, nClusters+1)
	for _, k := range keys {
		counts[k/clusterSpan+1]++
	}
	for i := 1; i <= nClusters; i++ {
		counts[i] += counts[i-1]
	}
	out := make([]int, len(keys))
	next := counts[:nClusters]
	pos := make([]int, nClusters)
	copy(pos, next)
	for _, k := range keys {
		c := k / clusterSpan
		out[pos[c]] = k
		pos[c]++
	}
	return out
}
