package crackindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBoundLess(t *testing.T) {
	ge5 := Bound{5, true}  // >= 5
	gt5 := Bound{5, false} // > 5
	ge6 := Bound{6, true}
	if !ge5.Less(gt5) {
		t.Error(">=5 must sort before >5")
	}
	if gt5.Less(ge5) {
		t.Error(">5 must not sort before >=5")
	}
	if !gt5.Less(ge6) {
		t.Error(">5 must sort before >=6")
	}
	if ge5.Less(ge5) {
		t.Error("bound must not be less than itself")
	}
}

func TestInsertLookup(t *testing.T) {
	ix := New()
	ix.Insert(Bound{10, true}, 100)
	ix.Insert(Bound{10, false}, 120)
	ix.Insert(Bound{5, true}, 50)
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ix.Len())
	}
	if ix.Pieces() != 4 {
		t.Fatalf("Pieces = %d, want 4", ix.Pieces())
	}
	for _, tc := range []struct {
		b   Bound
		pos int
	}{{Bound{10, true}, 100}, {Bound{10, false}, 120}, {Bound{5, true}, 50}} {
		got, ok := ix.Lookup(tc.b)
		if !ok || got != tc.pos {
			t.Errorf("Lookup(%v) = %d,%v want %d,true", tc.b, got, ok, tc.pos)
		}
	}
	if _, ok := ix.Lookup(Bound{5, false}); ok {
		t.Error("Lookup of absent boundary succeeded")
	}
}

func TestInsertUpdatesPosition(t *testing.T) {
	ix := New()
	ix.Insert(Bound{7, true}, 10)
	ix.Insert(Bound{7, true}, 20)
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	pos, _ := ix.Lookup(Bound{7, true})
	if pos != 20 {
		t.Fatalf("pos = %d, want 20", pos)
	}
}

func TestPieceForEdges(t *testing.T) {
	ix := New()
	const n = 1000
	p := ix.PieceFor(Bound{50, true}, n)
	if p.Lo != 0 || p.Hi != n || p.HasLoB || p.HasHiB {
		t.Fatalf("empty index piece = %+v", p)
	}
	ix.Insert(Bound{100, true}, 400)
	p = ix.PieceFor(Bound{50, true}, n)
	if p.Lo != 0 || p.Hi != 400 || p.HasLoB || !p.HasHiB {
		t.Fatalf("left piece = %+v", p)
	}
	p = ix.PieceFor(Bound{200, true}, n)
	if p.Lo != 400 || p.Hi != n || !p.HasLoB || p.HasHiB {
		t.Fatalf("right piece = %+v", p)
	}
	p = ix.PieceFor(Bound{100, true}, n)
	if !p.LoExact || p.Lo != 400 || p.Hi != 400 {
		t.Fatalf("exact piece = %+v", p)
	}
	// >100 is a different boundary from >=100 and falls after it.
	p = ix.PieceFor(Bound{100, false}, n)
	if p.LoExact || p.Lo != 400 || p.Hi != n {
		t.Fatalf(">100 piece = %+v", p)
	}
}

func TestDeleteAndRevive(t *testing.T) {
	ix := New()
	ix.Insert(Bound{10, true}, 100)
	ix.Insert(Bound{20, true}, 200)
	if !ix.Delete(Bound{10, true}) {
		t.Fatal("Delete failed")
	}
	if ix.Delete(Bound{10, true}) {
		t.Fatal("double Delete succeeded")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	if _, ok := ix.Lookup(Bound{10, true}); ok {
		t.Fatal("deleted boundary still visible")
	}
	// Piece lookup must see through the deleted node.
	p := ix.PieceFor(Bound{10, true}, 1000)
	if p.Lo != 0 || p.Hi != 200 {
		t.Fatalf("piece across deleted node = %+v", p)
	}
	// Revive with a new position.
	ix.Insert(Bound{10, true}, 111)
	pos, ok := ix.Lookup(Bound{10, true})
	if !ok || pos != 111 {
		t.Fatalf("revived = %d,%v", pos, ok)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
}

func TestShiftFrom(t *testing.T) {
	ix := New()
	ix.Insert(Bound{10, true}, 100)
	ix.Insert(Bound{20, true}, 200)
	ix.Insert(Bound{30, true}, 300)
	ix.ShiftFrom(200, 5)
	want := map[int64]int{10: 100, 20: 205, 30: 305}
	for v, wpos := range want {
		pos, _ := ix.Lookup(Bound{v, true})
		if pos != wpos {
			t.Errorf("after shift, boundary %d at %d, want %d", v, pos, wpos)
		}
	}
}

func TestWalkOrdered(t *testing.T) {
	ix := New()
	vals := []int64{50, 10, 30, 70, 20}
	for i, v := range vals {
		ix.Insert(Bound{v, true}, i*10)
	}
	ix.Delete(Bound{30, true})
	var got []int64
	ix.Walk(func(b Bound, pos int) { got = append(got, b.V) })
	want := []int64{10, 20, 50, 70}
	if len(got) != len(want) {
		t.Fatalf("Walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk = %v, want %v", got, want)
		}
	}
}

func TestEstimateExactWhenBoundariesExist(t *testing.T) {
	ix := New()
	ix.Insert(Bound{100, false}, 400) // > 100 starts at 400
	ix.Insert(Bound{200, true}, 700)  // >= 200 starts at 700
	// Predicate 100 < v < 200 → lower bound {100,false}, upper {200,true}.
	min, max, est := ix.Estimate(Bound{100, false}, Bound{200, true}, 1000)
	if min != 300 || max != 300 || est != 300 {
		t.Fatalf("Estimate = %d,%d,%d want 300,300,300", min, max, est)
	}
}

func TestEstimateBracketsTruth(t *testing.T) {
	// Build a sorted column conceptually: values 0..999 at positions 0..999.
	// Boundaries at >=250 (pos 250) and >=750 (pos 750).
	ix := New()
	ix.Insert(Bound{250, true}, 250)
	ix.Insert(Bound{750, true}, 750)
	// Predicate 300 <= v < 600: truth = 300 tuples.
	min, max, est := ix.Estimate(Bound{300, true}, Bound{600, true}, 1000)
	if !(min <= 300 && 300 <= max) {
		t.Fatalf("truth 300 outside [%d,%d]", min, max)
	}
	if est < min || est > max {
		t.Fatalf("est %d outside [%d,%d]", est, min, max)
	}
}

// Property: after inserting sorted-column boundaries, PieceFor always returns
// a window that contains the true insertion point.
func TestQuickPieceForContainsTruth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(500)
		// A conceptual sorted column: position i holds value i.
		ix := New()
		inserted := map[int64]bool{}
		for k := 0; k < 20; k++ {
			v := int64(rng.Intn(n))
			if inserted[v] {
				continue
			}
			inserted[v] = true
			ix.Insert(Bound{v, true}, int(v)) // >= v starts at position v
		}
		for k := 0; k < 50; k++ {
			v := int64(rng.Intn(n))
			p := ix.PieceFor(Bound{v, true}, n)
			// True position of boundary >=v in the sorted column is v.
			if p.LoExact {
				if p.Lo != int(v) {
					return false
				}
				continue
			}
			if !(p.Lo <= int(v) && int(v) <= p.Hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Walk yields strictly ascending bounds and ascending positions
// when boundaries are inserted consistently with a sorted column.
func TestQuickWalkMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := New()
		vals := rng.Perm(200)
		for _, v := range vals[:50] {
			ix.Insert(Bound{int64(v), true}, v)
		}
		var bs []Bound
		var ps []int
		ix.Walk(func(b Bound, pos int) { bs = append(bs, b); ps = append(ps, pos) })
		if !sort.SliceIsSorted(bs, func(i, j int) bool { return bs[i].Less(bs[j]) }) {
			return false
		}
		return sort.IntsAreSorted(ps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix := New()
		for k := 0; k < 100; k++ {
			ix.Insert(Bound{int64(rng.Intn(1 << 20)), true}, k)
		}
	}
}

func BenchmarkPieceFor(b *testing.B) {
	ix := New()
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 1000; k++ {
		v := int64(rng.Intn(1 << 20))
		ix.Insert(Bound{v, true}, int(v))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.PieceFor(Bound{int64(rng.Intn(1 << 20)), true}, 1<<20)
	}
}

// TestReposition verifies the bulk position update visits live boundaries in
// ascending order, skips deleted ones, and matches repeated Insert calls.
func TestReposition(t *testing.T) {
	ix := New()
	var bounds []Bound
	for i := 0; i < 50; i++ {
		b := Bound{V: int64(i * 2), Incl: i%2 == 0}
		bounds = append(bounds, b)
		ix.Insert(b, i*10)
	}
	ix.Delete(bounds[7])
	ix.Delete(bounds[23])

	// Reference: collect via Walk, shift with Insert.
	ref := New()
	ix.Walk(func(b Bound, pos int) { ref.Insert(b, pos+5) })

	var order []Bound
	ix.Reposition(func(b Bound, pos int) int {
		order = append(order, b)
		return pos + 5
	})
	for i := 1; i < len(order); i++ {
		if !order[i-1].Less(order[i]) {
			t.Fatalf("Reposition order not ascending at %d", i)
		}
	}
	if len(order) != ix.Len() {
		t.Fatalf("Reposition visited %d boundaries, want %d live", len(order), ix.Len())
	}
	ix.Walk(func(b Bound, pos int) {
		want, ok := ref.Lookup(b)
		if !ok || want != pos {
			t.Fatalf("boundary %v: pos %d, want %d", b, pos, want)
		}
	})
	// Deleted boundaries must remain deleted and untouched by Reposition.
	if _, ok := ix.Lookup(bounds[7]); ok {
		t.Fatal("deleted boundary revived by Reposition")
	}
}
