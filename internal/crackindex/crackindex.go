// Package crackindex implements the cracker index: an AVL tree that records
// how the value range of a cracked column (or cracker map) is partitioned
// into pieces (Section 2.2 of the paper).
//
// A boundary (V, Incl, Pos) states that the column is physically partitioned
// at position Pos such that
//
//	for all i >= Pos: value(i) >= V   (if Incl)
//	for all i >= Pos: value(i) >  V   (if !Incl)
//
// and symmetrically all positions before Pos hold smaller values. Pieces are
// the position intervals between consecutive boundaries. The index doubles as
// a self-organizing histogram (Section 3.3): piece sizes give exact tuple
// counts for ranges that match existing boundaries and tight bounds plus an
// interpolated estimate otherwise.
//
// Nodes are never physically removed while a structure is alive; lazy
// deletion marks them, so recreating a dropped chunk can reuse its learned
// partitioning (Section 4.1, "Storage Management").
package crackindex

import "fmt"

// Bound identifies one side of a range predicate in boundary semantics.
// For a lower bound "A > v" use Bound{v, false}; for "A >= v" use {v, true}.
// For an upper bound "A < v" use {v, true} (tuples from the boundary on are
// >= v, i.e. non-qualifying); for "A <= v" use {v, false}.
type Bound struct {
	V    int64
	Incl bool // boundary means: positions >= Pos have value >= V (else > V)
}

// Less orders boundaries: for equal values, the inclusive (>=) boundary
// precedes the exclusive (>) one, since >= v starts at or before > v.
func (b Bound) Less(o Bound) bool {
	if b.V != o.V {
		return b.V < o.V
	}
	return b.Incl && !o.Incl
}

func (b Bound) String() string {
	if b.Incl {
		return fmt.Sprintf(">=%d", b.V)
	}
	return fmt.Sprintf(">%d", b.V)
}

type node struct {
	b       Bound
	pos     int
	deleted bool
	h       int
	l, r    *node
}

// Index is a cracker index. The zero value is not usable; call New.
type Index struct {
	root *node
	n    int // live boundaries
}

// New returns an empty index.
func New() *Index { return &Index{} }

// Len returns the number of live (non-deleted) boundaries.
func (ix *Index) Len() int { return ix.n }

// Pieces returns the number of pieces a column of the given length is
// divided into (live boundaries + 1).
func (ix *Index) Pieces() int { return ix.n + 1 }

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.h
}

func fix(n *node) *node {
	n.h = 1 + max(height(n.l), height(n.r))
	bf := height(n.l) - height(n.r)
	switch {
	case bf > 1:
		if height(n.l.l) < height(n.l.r) {
			n.l = rotL(n.l)
		}
		return rotR(n)
	case bf < -1:
		if height(n.r.r) < height(n.r.l) {
			n.r = rotR(n.r)
		}
		return rotL(n)
	}
	return n
}

func rotR(n *node) *node {
	l := n.l
	n.l = l.r
	l.r = n
	n.h = 1 + max(height(n.l), height(n.r))
	l.h = 1 + max(height(l.l), height(l.r))
	return l
}

func rotL(n *node) *node {
	r := n.r
	n.r = r.l
	r.l = n
	n.h = 1 + max(height(n.l), height(n.r))
	r.h = 1 + max(height(r.l), height(r.r))
	return r
}

// Insert records boundary b at position pos. If the boundary already exists
// (live or lazily deleted) its position is updated and it is revived.
func (ix *Index) Insert(b Bound, pos int) {
	ix.root = ix.insert(ix.root, b, pos)
}

func (ix *Index) insert(n *node, b Bound, pos int) *node {
	if n == nil {
		ix.n++
		return &node{b: b, pos: pos, h: 1}
	}
	switch {
	case b.Less(n.b):
		n.l = ix.insert(n.l, b, pos)
	case n.b.Less(b):
		n.r = ix.insert(n.r, b, pos)
	default:
		if n.deleted {
			n.deleted = false
			ix.n++
		}
		n.pos = pos
		return n
	}
	return fix(n)
}

// Delete lazily removes boundary b. It reports whether a live boundary was
// found. The node stays in the tree and can be revived by a later Insert.
func (ix *Index) Delete(b Bound) bool {
	n := ix.root
	for n != nil {
		switch {
		case b.Less(n.b):
			n = n.l
		case n.b.Less(b):
			n = n.r
		default:
			if n.deleted {
				return false
			}
			n.deleted = true
			ix.n--
			return true
		}
	}
	return false
}

// Lookup returns the position of boundary b, if a live boundary exists.
func (ix *Index) Lookup(b Bound) (pos int, ok bool) {
	n := ix.root
	for n != nil {
		switch {
		case b.Less(n.b):
			n = n.l
		case n.b.Less(b):
			n = n.r
		default:
			if n.deleted {
				return 0, false
			}
			return n.pos, true
		}
	}
	return 0, false
}

// Has reports whether a live boundary equal to b exists. It is the
// read-only probe behind the two-phase (probe/execute) query protocol: a
// range whose bounds both exist as live boundaries can be answered without
// any physical reorganization.
func (ix *Index) Has(b Bound) bool {
	_, ok := ix.Lookup(b)
	return ok
}

// Piece is a contiguous position interval [Lo, Hi) delimited by the
// boundaries LoBound and HiBound (absent at the column edges).
type Piece struct {
	Lo, Hi           int
	LoBound, HiBound Bound
	HasLoB, HasHiB   bool
	LoExact, HiExact bool // whether Lo/Hi are exactly the requested bound
}

// PieceFor locates the piece that bound b falls into for a column of length
// n. If a live boundary equal to b exists, the returned piece is degenerate:
// Lo == Hi == position of the boundary and LoExact (and HiExact) are true.
func (ix *Index) PieceFor(b Bound, n int) Piece {
	p := Piece{Lo: 0, Hi: n}
	cur := ix.root
	for cur != nil {
		switch {
		case b.Less(cur.b):
			if !cur.deleted {
				p.Hi, p.HiBound, p.HasHiB = cur.pos, cur.b, true
			}
			cur = cur.l
		case cur.b.Less(b):
			if !cur.deleted {
				p.Lo, p.LoBound, p.HasLoB = cur.pos, cur.b, true
			}
			cur = cur.r
		default:
			if !cur.deleted {
				return Piece{Lo: cur.pos, Hi: cur.pos, LoBound: b, HiBound: b,
					HasLoB: true, HasHiB: true, LoExact: true, HiExact: true}
			}
			// Deleted boundary: keep searching both directions is not
			// needed — a deleted node partitions nothing; continue as if
			// absent by scanning the side that can tighten the piece.
			// Both subtrees may contain live boundaries; walk left side
			// first for the upper bound, then right side for the lower.
			p = tighten(cur.l, b, p)
			p = tighten(cur.r, b, p)
			return p
		}
	}
	return p
}

// tighten narrows piece p for bound b using live boundaries in subtree n.
func tighten(n *node, b Bound, p Piece) Piece {
	for n != nil {
		switch {
		case b.Less(n.b):
			if !n.deleted {
				p.Hi, p.HiBound, p.HasHiB = n.pos, n.b, true
			}
			n = n.l
		default:
			if !n.deleted {
				p.Lo, p.LoBound, p.HasLoB = n.pos, n.b, true
			}
			n = n.r
		}
	}
	return p
}

// ShiftFrom adds delta to the position of every boundary (live or deleted)
// at position >= pos. Used when ripple updates grow or shrink the column.
func (ix *Index) ShiftFrom(pos, delta int) {
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.pos >= pos {
			n.pos += delta
		}
		walk(n.l)
		walk(n.r)
	}
	walk(ix.root)
}

// Reposition calls f for every live boundary in ascending order and stores
// the returned position. It is the bulk counterpart of re-Inserting each
// boundary after a batched ripple update: one tree walk instead of one
// descent per boundary. f must keep positions monotone (the piece
// invariant).
func (ix *Index) Reposition(f func(b Bound, pos int) int) {
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.l)
		if !n.deleted {
			n.pos = f(n.b, n.pos)
		}
		walk(n.r)
	}
	walk(ix.root)
}

// Walk calls f for every live boundary in ascending order.
func (ix *Index) Walk(f func(b Bound, pos int)) {
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.l)
		if !n.deleted {
			f(n.b, n.pos)
		}
		walk(n.r)
	}
	walk(ix.root)
}

// Estimate reports bounds on the number of tuples in a column of length n
// whose value v satisfies lower < v < upper in boundary semantics: lower and
// upper are the boundaries that cracking this predicate would create (see
// Bound). Min and Max bracket the true count; Est interpolates within the
// unresolved edge pieces, assuming uniform value distribution between the
// surrounding boundary values (Section 3.3, self-organizing histograms).
func (ix *Index) Estimate(lower, upper Bound, n int) (min, max, est int) {
	lp := ix.PieceFor(lower, n)
	up := ix.PieceFor(upper, n)
	// Result area starts somewhere in [lp.Lo, lp.Hi] and ends in [up.Lo, up.Hi].
	maxC := up.Hi - lp.Lo
	minC := up.Lo - lp.Hi
	if minC < 0 {
		minC = 0
	}
	if maxC < 0 {
		maxC = 0
	}
	e := float64(minC)
	if !lp.LoExact {
		e += interp(lp, lower) * float64(lp.Hi-lp.Lo)
	}
	if !up.LoExact && (up.Lo != lp.Lo || up.Hi != lp.Hi) {
		e += (1 - interp(up, upper)) * float64(up.Hi-up.Lo)
	} else if !up.LoExact && up.Lo == lp.Lo && up.Hi == lp.Hi && !lp.LoExact {
		// Both bounds fall in the same piece: estimate the fraction between.
		e = frac(lp, lower, upper) * float64(lp.Hi-lp.Lo)
	}
	ei := int(e)
	if ei < minC {
		ei = minC
	}
	if ei > maxC {
		ei = maxC
	}
	return minC, maxC, ei
}

// interp estimates the fraction of piece p that lies at or above bound b,
// by linear interpolation between the piece's delimiting boundary values.
// Returns the fraction of the piece *excluded* when b is the lower bound
// start... concretely: fraction of tuples in p with value >= b.V.
func interp(p Piece, b Bound) float64 {
	if !p.HasLoB || !p.HasHiB || p.HiBound.V == p.LoBound.V {
		return 0.5
	}
	f := float64(p.HiBound.V-b.V) / float64(p.HiBound.V-p.LoBound.V)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}

// frac estimates the fraction of piece p with lo <= value < hi.
func frac(p Piece, lo, hi Bound) float64 {
	if !p.HasLoB || !p.HasHiB || p.HiBound.V == p.LoBound.V {
		return 0.5
	}
	f := float64(hi.V-lo.V) / float64(p.HiBound.V-p.LoBound.V)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}
