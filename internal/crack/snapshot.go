package crack

import (
	"math"
	"sort"
	"sync/atomic"

	"crackstore/internal/crackindex"
	"crackstore/internal/store"
)

// SnapCol is the multi-version twin of Col: a cracker column whose cracked
// state is versioned at piece granularity so read-only selects traverse a
// consistent snapshot without any lock.
//
// A version is an immutable partition of the column into pieces (each piece
// an aligned head/tail slice pair) separated by cut bounds — the flattened
// form of the cracker index — plus the pending-update structures of the
// Ripple algorithm. Readers load the current version with one atomic
// pointer read (inside an Epoch pin) and gather from it; nothing a reader
// touches is ever mutated.
//
// Writers (Select merging/cracking, Insert, Delete) build replacement
// pieces aside — a crack copies only the piece a bound falls into and
// partitions the copy with the same crack-in-two/crack-in-three kernels
// (and Policy pivots) Pairs uses — then publish a new version with one
// atomic pointer swap and retire the old one into a limbo list tagged by
// the shared Epoch clock. Retired pieces are reclaimed only when every
// reader that could still see them has exited its pin. Writers must be
// externally serialized (the owning engine's write path holds a mutex);
// readers need no coordination at all.
//
// Pending updates never block snapshot reads: GatherRO applies pending
// insertions virtually (appending matching keys) and filters pending
// deletions per tuple, so only a missing cut — a real crack — routes a
// query to the writer path.
type SnapCol struct {
	cur atomic.Pointer[colVersion]
	ep  *Epoch

	// Policy selects the adaptive pivot policy for cracks, as in Pairs.
	Policy Policy

	// Poison, when set (tests), overwrites reclaimed piece buffers with
	// poisonValue so that any premature reclaim — a piece freed while a
	// live reader still holds it — corrupts that reader's answer instead
	// of silently going unnoticed.
	Poison bool

	// limbo holds retired versions' dead pieces, tags ascending. Writer
	// state: guarded by the owner's exclusive lock, like all write paths.
	limbo []retiredPieces

	published atomic.Uint64 // versions published
	retired   atomic.Uint64 // versions retired into limbo
	reclaimed atomic.Uint64 // versions reclaimed out of limbo

	// kern accumulates the kernel partition counters of every piece
	// crack (InTwo, InThree, Visited, Moved, Aux). Writers are
	// serialized by the owner's lock; the counters are atomics so a
	// metrics scrape can read them without coordination.
	kern [5]atomic.Uint64
}

// poisonValue marks reclaimed buffers in Poison mode.
const poisonValue = Value(math.MinInt64)

// snapMaxPend bounds the pending-update backlog readers scan per gather:
// beyond it the probe routes one query to the writer path, which merges the
// whole backlog into pieces. Kept small so the virtual application of
// pendings on the lock-free read path stays a fraction of a narrow query's
// base cost even under a sustained insert stream.
const snapMaxPend = 128

// snapPiece is one immutable piece: values (head) and keys (tail),
// position-aligned. Sub-pieces produced by one crack share a backing array
// with disjoint ranges; a piece's slices are never written after the
// version holding it is published.
type snapPiece struct {
	head []Value
	tail []Value
}

// colVersion is one immutable snapshot of the column. cuts[i] separates
// pieces[i] (values on the bound's left) from pieces[i+1] (values at or
// right of it), in ascending bound order; len(cuts) == len(pieces)-1.
type colVersion struct {
	id     uint64
	pieces []*snapPiece
	cuts   []crackindex.Bound
	// pendIns is kept sorted by val (ties in arrival order), so the
	// lock-free read path applies pending insertions to a range predicate
	// with a binary search instead of scanning the whole backlog per read.
	pendIns []pendingTuple
	pendDel map[Value]bool
}

// retiredPieces is one limbo entry: the pieces replaced by the publish
// whose retire tag is tag. Reclaimable once tag < Epoch.MinActive().
type retiredPieces struct {
	tag  uint64
	dead []*snapPiece
}

// NewSnapCol creates the snapshot cracker column for base column col, with
// the keys in dels (may be nil) queued as pending deletions — the engine
// creates columns on demand after tombstones may already exist.
func NewSnapCol(col *store.Column, pol Policy, ep *Epoch, dels map[int]bool) *SnapCol {
	n := col.Len()
	head := make([]Value, n)
	tail := make([]Value, n)
	copy(head, col.Vals)
	for i := range tail {
		tail[i] = Value(i)
	}
	pendDel := make(map[Value]bool, len(dels))
	for k := range dels {
		pendDel[Value(k)] = true
	}
	c := &SnapCol{ep: ep, Policy: pol}
	c.cur.Store(&colVersion{
		pieces:  []*snapPiece{{head: head, tail: tail}},
		pendDel: pendDel,
	})
	return c
}

// SnapColFromCol converts a (possibly warm) Col into a SnapCol, preserving
// its cracked layout, index boundaries, and pending updates — so wrapping
// an already-trained engine keeps its adaptive investment.
func SnapColFromCol(src *Col, ep *Epoch) *SnapCol {
	head := append([]Value(nil), src.P.Head...)
	tail := append([]Value(nil), src.P.Tail...)
	var cuts []crackindex.Bound
	var poss []int
	src.P.Idx.Walk(func(b crackindex.Bound, pos int) {
		cuts = append(cuts, b)
		poss = append(poss, pos)
	})
	pieces := make([]*snapPiece, 0, len(cuts)+1)
	prev := 0
	for _, pos := range poss {
		pieces = append(pieces, &snapPiece{head: head[prev:pos:pos], tail: tail[prev:pos:pos]})
		prev = pos
	}
	pieces = append(pieces, &snapPiece{head: head[prev:], tail: tail[prev:]})
	pendIns := append([]pendingTuple(nil), src.pendIns...)
	sort.SliceStable(pendIns, func(i, j int) bool { return pendIns[i].val < pendIns[j].val })
	pendDel := make(map[Value]bool, len(src.pendDel))
	for k := range src.pendDel {
		pendDel[k] = true
	}
	c := &SnapCol{ep: ep, Policy: src.P.Policy}
	c.cur.Store(&colVersion{pieces: pieces, cuts: cuts, pendIns: pendIns, pendDel: pendDel})
	return c
}

// findCut returns the index of the cut equal to b, if present.
func (v *colVersion) findCut(b crackindex.Bound) (int, bool) {
	i := sort.Search(len(v.cuts), func(k int) bool { return !v.cuts[k].Less(b) })
	if i < len(v.cuts) && v.cuts[i] == b {
		return i, true
	}
	return 0, false
}

// pieceOfVal returns the index of the piece a tuple with value val belongs
// to: the piece left of the first cut whose left side val is on.
func (v *colVersion) pieceOfVal(val Value) int {
	return sort.Search(len(v.cuts), func(i int) bool { return onLeft(val, v.cuts[i]) })
}

// pieceOfBound returns the index of the piece a missing bound b falls into.
func (v *colVersion) pieceOfBound(b crackindex.Bound) int {
	return sort.Search(len(v.cuts), func(i int) bool { return b.Less(v.cuts[i]) })
}

// area returns the qualifying piece interval [i, j) for pred, ok only when
// both bounds exist as cuts (the snapshot twin of Pairs.Area).
func (v *colVersion) area(pred store.Pred) (i, j int, ok bool) {
	li, ok1 := v.findCut(pred.LowerBound())
	ui, ok2 := v.findCut(pred.UpperBound())
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	i, j = li+1, ui+1
	if j < i {
		j = i // empty predicate (hi < lo); normalize
	}
	return i, j, true
}

// NeedsCrack reports whether answering pred requires the writer path: a
// missing cut, or a pending-update backlog large enough that merging it
// beats rescanning it on every read.
func (c *SnapCol) NeedsCrack(pred store.Pred) bool {
	v := c.cur.Load()
	if len(v.pendIns) > snapMaxPend || len(v.pendDel) > snapMaxPend {
		return true
	}
	_, _, ok := v.area(pred)
	return !ok
}

// GatherRO appends the keys of tuples matching pred to dst, reading one
// consistent version lock-free. ok is false when answering pred needs the
// writer path (see NeedsCrack). The caller MUST hold an Epoch pin (Enter
// before, Exit after) spanning the call and any use of the result — the pin
// is what keeps the version's pieces from being reclaimed underneath it.
// Pending insertions are applied virtually and pending deletions filtered,
// so the answer equals the writer path's.
func (c *SnapCol) GatherRO(pred store.Pred, dst []Value) ([]Value, bool) {
	v := c.cur.Load()
	if len(v.pendIns) > snapMaxPend || len(v.pendDel) > snapMaxPend {
		return dst, false
	}
	i, j, ok := v.area(pred)
	if !ok {
		return dst, false
	}
	if len(v.pendDel) == 0 {
		for _, pc := range v.pieces[i:j] {
			dst = append(dst, pc.tail...)
		}
	} else {
		for _, pc := range v.pieces[i:j] {
			for _, k := range pc.tail {
				if !v.pendDel[k] {
					dst = append(dst, k)
				}
			}
		}
	}
	if len(v.pendIns) > 0 {
		// pendIns is val-sorted: the matching entries are one contiguous run.
		lo := sort.Search(len(v.pendIns), func(i int) bool {
			if pred.LoIncl {
				return v.pendIns[i].val >= pred.Lo
			}
			return v.pendIns[i].val > pred.Lo
		})
		for _, t := range v.pendIns[lo:] {
			if t.val > pred.Hi || (t.val == pred.Hi && !pred.HiIncl) {
				break
			}
			dst = append(dst, t.key)
		}
	}
	return dst, true
}

// beginEdit starts a writer edit: a version whose piece table and cut list
// are fresh copies safe to splice, while piece contents and pending
// structures stay shared until an edit step copies them.
func (v *colVersion) beginEdit() *colVersion {
	return &colVersion{
		id:      v.id + 1,
		pieces:  append([]*snapPiece(nil), v.pieces...),
		cuts:    append([]crackindex.Bound(nil), v.cuts...),
		pendIns: v.pendIns,
		pendDel: v.pendDel,
	}
}

// Select is the writer-path twin of Col.Select: it merges relevant pending
// updates and ensures both predicate bounds exist as cuts — building every
// replacement piece aside and publishing one new version — then returns the
// qualifying keys as a fresh slice. Must run under the owner's exclusive
// lock (one writer at a time); readers are never blocked and never see a
// partial edit.
func (c *SnapCol) Select(pred store.Pred) []Value {
	old := c.cur.Load()
	w := old.beginEdit()
	var dead []*snapPiece
	changed := c.mergePend(w, &dead, pred, len(old.pendIns) > snapMaxPend)
	changed = c.ensureCuts(w, &dead, pred) || changed
	i, j, ok := w.area(pred)
	if !ok {
		panic("crack: SnapCol area missing after crack")
	}
	lo, hi := i, j
	if len(w.pendDel) > snapMaxPend {
		lo, hi = 0, len(w.pieces)
	}
	changed = c.applyDel(w, &dead, lo, hi) || changed
	if changed {
		c.publish(w, dead)
	} else {
		w = old // nothing moved: answer from the published version
	}
	n := 0
	for _, pc := range w.pieces[i:j] {
		n += len(pc.tail)
	}
	out := make([]Value, 0, n)
	for _, pc := range w.pieces[i:j] {
		out = append(out, pc.tail...)
	}
	return out
}

// Insert queues (key, val) as a pending insertion in a new version,
// spliced in at its val-sorted position; when the backlog exceeds
// snapMaxPend the whole backlog is merged into pieces. Writer path: caller
// holds the owner's exclusive lock.
func (c *SnapCol) Insert(key int, val Value) {
	old := c.cur.Load()
	w := old.beginEdit()
	at := sort.Search(len(old.pendIns), func(i int) bool { return old.pendIns[i].val > val })
	ni := make([]pendingTuple, 0, len(old.pendIns)+1)
	ni = append(ni, old.pendIns[:at]...)
	ni = append(ni, pendingTuple{key: Value(key), val: val})
	ni = append(ni, old.pendIns[at:]...)
	w.pendIns = ni
	var dead []*snapPiece
	if len(w.pendIns) > snapMaxPend {
		c.mergePend(w, &dead, store.Pred{}, true)
	}
	c.publish(w, dead)
}

// Delete queues a pending deletion (or cancels a pending insertion) in a
// new version. Writer path: caller holds the owner's exclusive lock.
func (c *SnapCol) Delete(key int) {
	old := c.cur.Load()
	k := Value(key)
	for i, t := range old.pendIns {
		if t.key == k {
			// Still pending: cancel the insertion instead.
			w := old.beginEdit()
			ni := make([]pendingTuple, 0, len(old.pendIns)-1)
			ni = append(ni, old.pendIns[:i]...)
			ni = append(ni, old.pendIns[i+1:]...)
			w.pendIns = ni
			c.publish(w, nil)
			return
		}
	}
	if old.pendDel[k] {
		return
	}
	w := old.beginEdit()
	nd := make(map[Value]bool, len(old.pendDel)+1)
	for dk := range old.pendDel {
		nd[dk] = true
	}
	nd[k] = true
	w.pendDel = nd
	var dead []*snapPiece
	if len(nd) > snapMaxPend {
		c.applyDel(w, &dead, 0, len(w.pieces))
	}
	c.publish(w, dead)
}

// mergePend merges pending insertions matching pred (or all of them) into
// copies of their target pieces, val order preserved per piece.
func (c *SnapCol) mergePend(w *colVersion, dead *[]*snapPiece, pred store.Pred, all bool) bool {
	if len(w.pendIns) == 0 {
		return false
	}
	var take, rest []pendingTuple
	for _, t := range w.pendIns {
		if all || pred.Matches(t.val) {
			take = append(take, t)
		} else {
			rest = append(rest, t)
		}
	}
	if len(take) == 0 {
		return false
	}
	w.pendIns = rest
	byPiece := make(map[int][]pendingTuple)
	for _, t := range take {
		pi := w.pieceOfVal(t.val)
		byPiece[pi] = append(byPiece[pi], t)
	}
	for pi, ts := range byPiece {
		pc := w.pieces[pi]
		n := len(pc.head)
		head := make([]Value, n, n+len(ts))
		tail := make([]Value, n, n+len(ts))
		copy(head, pc.head)
		copy(tail, pc.tail)
		for _, t := range ts {
			head = append(head, t.val)
			tail = append(tail, t.key)
		}
		*dead = append(*dead, pc)
		w.pieces[pi] = &snapPiece{head: head, tail: tail}
	}
	return true
}

// ensureCuts makes both bounds of pred exist as cuts, cracking the pieces
// they fall into. When both bounds miss inside the same piece, the piece is
// partitioned against both in one crack-in-three pass, exactly like
// Pairs.CrackRange.
func (c *SnapCol) ensureCuts(w *colVersion, dead *[]*snapPiece, pred store.Pred) bool {
	lb, ub := pred.LowerBound(), pred.UpperBound()
	_, okL := w.findCut(lb)
	_, okU := w.findCut(ub)
	if okL && okU {
		return false
	}
	if !okL && !okU && lb.Less(ub) && w.pieceOfBound(lb) == w.pieceOfBound(ub) {
		c.crackPiece(w, dead, w.pieceOfBound(lb), func(tmp *Pairs) { tmp.CrackRange(pred) })
		return true
	}
	if !okL {
		c.crackPiece(w, dead, w.pieceOfBound(lb), func(tmp *Pairs) { tmp.CrackBound(lb) })
	}
	if _, ok := w.findCut(ub); !ok {
		c.crackPiece(w, dead, w.pieceOfBound(ub), func(tmp *Pairs) { tmp.CrackBound(ub) })
	}
	return true
}

// crackPiece copies piece pi, partitions the copy with the shared Pairs
// kernels (crack applies c.Policy, so auxiliary pivots land here too), and
// splices the resulting sub-pieces and cuts into w. The sub-pieces share
// the copy's backing arrays over disjoint ranges; the replaced piece goes
// to the dead list.
func (c *SnapCol) crackPiece(w *colVersion, dead *[]*snapPiece, pi int, f func(tmp *Pairs)) {
	pc := w.pieces[pi]
	head := append([]Value(nil), pc.head...)
	tail := append([]Value(nil), pc.tail...)
	tmp := WrapPairs(head, tail)
	tmp.Policy = c.Policy
	f(tmp)
	c.kern[0].Add(uint64(tmp.Stats.InTwo))
	c.kern[1].Add(uint64(tmp.Stats.InThree))
	c.kern[2].Add(uint64(tmp.Stats.Visited))
	c.kern[3].Add(uint64(tmp.Stats.Moved))
	c.kern[4].Add(uint64(tmp.Stats.Aux))
	type cutpos struct {
		b   crackindex.Bound
		pos int
	}
	var cps []cutpos
	tmp.Idx.Walk(func(b crackindex.Bound, pos int) {
		// A policy pivot can coincide with the piece's delimiting cut;
		// re-adding it would duplicate the cut around an empty sub-piece.
		if pi > 0 && !w.cuts[pi-1].Less(b) {
			return
		}
		if pi < len(w.cuts) && !b.Less(w.cuts[pi]) {
			return
		}
		cps = append(cps, cutpos{b, pos})
	})
	subs := make([]*snapPiece, 0, len(cps)+1)
	bs := make([]crackindex.Bound, 0, len(cps))
	prev := 0
	for _, cp := range cps {
		subs = append(subs, &snapPiece{head: head[prev:cp.pos:cp.pos], tail: tail[prev:cp.pos:cp.pos]})
		bs = append(bs, cp.b)
		prev = cp.pos
	}
	subs = append(subs, &snapPiece{head: head[prev:], tail: tail[prev:]})
	*dead = append(*dead, pc)
	np := make([]*snapPiece, 0, len(w.pieces)+len(subs)-1)
	np = append(np, w.pieces[:pi]...)
	np = append(np, subs...)
	np = append(np, w.pieces[pi+1:]...)
	w.pieces = np
	nc := make([]crackindex.Bound, 0, len(w.cuts)+len(bs))
	nc = append(nc, w.cuts[:pi]...)
	nc = append(nc, bs...)
	nc = append(nc, w.cuts[pi:]...)
	w.cuts = nc
}

// applyDel removes tuples with pending deletions from pieces [lo, hi),
// copying only affected pieces and consuming the matched entries from a
// copy of the pending-deletion set (which also guards duplicate keys,
// mirroring Col.applyPendingDeletes).
func (c *SnapCol) applyDel(w *colVersion, dead *[]*snapPiece, lo, hi int) bool {
	del := w.pendDel
	if len(del) == 0 {
		return false
	}
	var nd map[Value]bool
	for pi := lo; pi < hi; pi++ {
		pc := w.pieces[pi]
		cnt := 0
		for _, k := range pc.tail {
			if del[k] {
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		if nd == nil {
			nd = make(map[Value]bool, len(w.pendDel))
			for k := range w.pendDel {
				nd[k] = true
			}
			del = nd
		}
		n := len(pc.head)
		head := make([]Value, 0, n-cnt)
		tail := make([]Value, 0, n-cnt)
		for x, k := range pc.tail {
			if nd[k] {
				delete(nd, k)
				continue
			}
			head = append(head, pc.head[x])
			tail = append(tail, k)
		}
		*dead = append(*dead, pc)
		w.pieces[pi] = &snapPiece{head: head, tail: tail}
	}
	if nd == nil {
		return false
	}
	w.pendDel = nd
	return true
}

// publish swaps in the new version, retires the old one's replaced pieces
// into limbo tagged with the advanced epoch, and reclaims every limbo entry
// no live reader can still see.
func (c *SnapCol) publish(w *colVersion, dead []*snapPiece) {
	c.cur.Store(w)
	tag := c.ep.Advance()
	c.limbo = append(c.limbo, retiredPieces{tag: tag, dead: dead})
	c.published.Add(1)
	c.retired.Add(1)
	c.tryReclaim()
}

// tryReclaim frees the limbo prefix whose tags precede every active
// reader's enter-epoch. In Poison mode the dead piece buffers are
// overwritten first, making a reclamation bug observable as corrupted
// reads rather than a silent latent race.
func (c *SnapCol) tryReclaim() {
	min := c.ep.MinActive()
	n := 0
	for _, r := range c.limbo {
		if r.tag >= min {
			break
		}
		if c.Poison {
			for _, pc := range r.dead {
				for i := range pc.head {
					pc.head[i] = poisonValue
				}
				for i := range pc.tail {
					pc.tail[i] = poisonValue
				}
			}
		}
		n++
	}
	if n > 0 {
		c.limbo = append(c.limbo[:0], c.limbo[n:]...)
		c.reclaimed.Add(uint64(n))
	}
}

// Len returns the number of tuples materialized in pieces (excluding
// pending insertions), like Col.Len.
func (c *SnapCol) Len() int {
	v := c.cur.Load()
	n := 0
	for _, pc := range v.pieces {
		n += len(pc.head)
	}
	return n
}

// Pieces returns the number of pieces in the current version.
func (c *SnapCol) Pieces() int { return len(c.cur.Load().pieces) }

// PendingInsertions returns the number of insertions not yet merged.
func (c *SnapCol) PendingInsertions() int { return len(c.cur.Load().pendIns) }

// PendingDeletions returns the number of deletions not yet merged.
func (c *SnapCol) PendingDeletions() int { return len(c.cur.Load().pendDel) }

// SnapStats are SnapCol's version-lifecycle counters. Limbo is the number
// of retired-but-unreclaimed versions — held back by live readers.
type SnapStats struct {
	Published uint64
	Retired   uint64
	Reclaimed uint64
	Limbo     uint64
}

// KernelStats returns the kernel partition counters accumulated across
// every piece crack since the column was created (the conversion from a
// plain Col starts from zero). Safe to call concurrently.
func (c *SnapCol) KernelStats() KernelStats {
	return KernelStats{
		InTwo:   int(c.kern[0].Load()),
		InThree: int(c.kern[1].Load()),
		Visited: int(c.kern[2].Load()),
		Moved:   int(c.kern[3].Load()),
		Aux:     int(c.kern[4].Load()),
	}
}

// Stats returns the version-lifecycle counters. Safe to call concurrently.
func (c *SnapCol) Stats() SnapStats {
	s := SnapStats{
		Published: c.published.Load(),
		Retired:   c.retired.Load(),
		Reclaimed: c.reclaimed.Load(),
	}
	s.Limbo = s.Retired - s.Reclaimed
	return s
}

// CheckVersion verifies the current version's piece invariant (every value
// sits between its piece's delimiting cuts) and cut ordering; the snapshot
// twin of Pairs.CheckPieces, used by tests.
func (c *SnapCol) CheckVersion() bool {
	v := c.cur.Load()
	if len(v.cuts) != len(v.pieces)-1 {
		return false
	}
	for i := 1; i < len(v.cuts); i++ {
		if !v.cuts[i-1].Less(v.cuts[i]) {
			return false
		}
	}
	for pi, pc := range v.pieces {
		for _, val := range pc.head {
			if pi > 0 && onLeft(val, v.cuts[pi-1]) {
				return false
			}
			if pi < len(v.cuts) && !onLeft(val, v.cuts[pi]) {
				return false
			}
		}
	}
	for i := 1; i < len(v.pendIns); i++ {
		if v.pendIns[i].val < v.pendIns[i-1].val {
			return false
		}
	}
	return true
}
