// Package crack implements database cracking (CIDR 2007): incremental
// physical reorganization of a column as a side effect of query processing,
// plus the Ripple update algorithm (SIGMOD 2007) the paper's Section 3.5
// builds on.
//
// The central type is Pairs, a two-column table (head, tail) with a cracker
// index over the head. Every cracking structure in this repository is a
// Pairs under the hood:
//
//	cracker column  C_A   — head = A values, tail = tuple keys
//	cracker map     M_AB  — head = A values, tail = B values
//	chunk map       H_A   — head = A values, tail = tuple keys
//	key map         M_Akey— head = A values, tail = tuple keys
//
// Crack-in-two and crack-in-three are implemented as deterministic pure
// functions of (piece contents, predicate). Determinism is the invariant
// that makes sideways cracking's adaptive alignment correct: two maps of the
// same set that replay the same sequence of cracks end up with identical
// head orderings (Section 3.2).
package crack

import (
	"sort"

	"crackstore/internal/crackindex"
	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// Pairs is a two-column table with a cracker index over the head column.
type Pairs struct {
	Head []Value
	Tail []Value
	Idx  *crackindex.Index
}

// NewPairs returns a Pairs over copies of head and tail. Panics if lengths
// differ.
func NewPairs(head, tail []Value) *Pairs {
	if len(head) != len(tail) {
		panic("crack: head/tail length mismatch")
	}
	h := make([]Value, len(head))
	t := make([]Value, len(tail))
	copy(h, head)
	copy(t, tail)
	return &Pairs{Head: h, Tail: t, Idx: crackindex.New()}
}

// WrapPairs returns a Pairs that takes ownership of head and tail without
// copying.
func WrapPairs(head, tail []Value) *Pairs {
	if len(head) != len(tail) {
		panic("crack: head/tail length mismatch")
	}
	return &Pairs{Head: head, Tail: tail, Idx: crackindex.New()}
}

// Len returns the number of tuples.
func (p *Pairs) Len() int { return len(p.Head) }

func (p *Pairs) swap(i, j int) {
	p.Head[i], p.Head[j] = p.Head[j], p.Head[i]
	p.Tail[i], p.Tail[j] = p.Tail[j], p.Tail[i]
}

// onLeft reports whether value v belongs strictly before boundary b.
func onLeft(v Value, b crackindex.Bound) bool {
	if b.Incl {
		return v < b.V // boundary >= V: left side is < V
	}
	return v <= b.V // boundary > V: left side is <= V
}

// crackInTwo partitions positions [lo, hi) so that all values on the left
// of boundary b precede all values at-or-right of it, returning the split
// position. The algorithm is the two-pointer partition of [7]; it is a
// deterministic function of the piece contents.
func (p *Pairs) crackInTwo(b crackindex.Bound, lo, hi int) int {
	i, j := lo, hi-1
	for i <= j {
		for i <= j && onLeft(p.Head[i], b) {
			i++
		}
		for i <= j && !onLeft(p.Head[j], b) {
			j--
		}
		if i < j {
			p.swap(i, j)
			i++
			j--
		}
	}
	return i
}

// CrackBound ensures a physical boundary for b exists, cracking the piece it
// falls into if necessary, and returns the boundary position. The index is
// updated. A no-op if the boundary already exists.
func (p *Pairs) CrackBound(b crackindex.Bound) int {
	pc := p.Idx.PieceFor(b, len(p.Head))
	if pc.LoExact {
		return pc.Lo
	}
	pos := p.crackInTwo(b, pc.Lo, pc.Hi)
	p.Idx.Insert(b, pos)
	return pos
}

// CrackRange physically reorganizes the pairs so that all tuples matching
// pred occupy the contiguous area [lo, hi), which is returned. This is the
// core of operator sideways.select steps (4)-(6) and of crackers.select.
func (p *Pairs) CrackRange(pred store.Pred) (lo, hi int) {
	lo = p.CrackBound(pred.LowerBound())
	hi = p.CrackBound(pred.UpperBound())
	if hi < lo {
		// Possible only for empty predicates (e.g. lo > hi); normalize.
		hi = lo
	}
	return lo, hi
}

// RippleInsert inserts the tuple (v, t) into the piece where v belongs,
// shifting one boundary tuple per subsequent piece (the Ripple algorithm of
// SIGMOD 2007). The column grows by one; index positions are adjusted.
// The placement is deterministic: the new tuple lands at the position of
// the first boundary whose left side v belongs to (i.e. at the end of its
// piece), and exactly those boundaries shift right by one.
func (p *Pairs) RippleInsert(v, t Value) {
	// Boundaries that must end up after the new tuple are exactly those b
	// with onLeft(v, b). Walk yields them in ascending order; they form a
	// suffix of the boundary sequence.
	type bpos struct {
		b   crackindex.Bound
		pos int
	}
	var bps []bpos
	p.Idx.Walk(func(b crackindex.Bound, pos int) {
		if onLeft(v, b) {
			bps = append(bps, bpos{b, pos})
		}
	})
	p.Head = append(p.Head, 0)
	p.Tail = append(p.Tail, 0)
	hole := len(p.Head) - 1
	for i := len(bps) - 1; i >= 0; i-- {
		bp := bps[i].pos
		if bp != hole {
			p.Head[hole], p.Tail[hole] = p.Head[bp], p.Tail[bp]
			hole = bp
		}
	}
	p.Head[hole], p.Tail[hole] = v, t
	for _, e := range bps {
		p.Idx.Insert(e.b, e.pos+1)
	}
}

// RemovePositions deletes the tuples at the given positions (ascending,
// duplicate-free) and compacts the arrays, shifting index boundaries left.
func (p *Pairs) RemovePositions(positions []int) {
	if len(positions) == 0 {
		return
	}
	del := 0
	next := 0
	out := 0
	for i := 0; i < len(p.Head); i++ {
		if next < len(positions) && positions[next] == i {
			next++
			del++
			continue
		}
		if out != i {
			p.Head[out], p.Tail[out] = p.Head[i], p.Tail[i]
		}
		out++
	}
	p.Head = p.Head[:out]
	p.Tail = p.Tail[:out]
	// Re-position every boundary: subtract the number of deleted positions
	// before it.
	type bp struct {
		b   crackindex.Bound
		pos int
	}
	var all []bp
	p.Idx.Walk(func(b crackindex.Bound, pos int) { all = append(all, bp{b, pos}) })
	for _, e := range all {
		d := sort.SearchInts(positions, e.pos)
		if d > 0 {
			p.Idx.Insert(e.b, e.pos-d)
		}
	}
}

// CheckPieces verifies that every index boundary holds physically: values
// before a boundary are on its left side, values at or after are not.
// Returns false at the first violation. Used by tests and property checks.
func (p *Pairs) CheckPieces() bool {
	ok := true
	p.Idx.Walk(func(b crackindex.Bound, pos int) {
		for i := 0; i < pos && ok; i++ {
			if !onLeft(p.Head[i], b) {
				ok = false
			}
		}
		for i := pos; i < len(p.Head) && ok; i++ {
			if onLeft(p.Head[i], b) {
				ok = false
			}
		}
	})
	return ok
}
