// Package crack implements database cracking (CIDR 2007): incremental
// physical reorganization of a column as a side effect of query processing,
// plus the Ripple update algorithm (SIGMOD 2007) the paper's Section 3.5
// builds on.
//
// The central type is Pairs, a two-column table (head, tail) with a cracker
// index over the head. Every cracking structure in this repository is a
// Pairs under the hood:
//
//	cracker column  C_A   — head = A values, tail = tuple keys
//	cracker map     M_AB  — head = A values, tail = B values
//	chunk map       H_A   — head = A values, tail = tuple keys
//	key map         M_Akey— head = A values, tail = tuple keys
//
// Crack-in-two and crack-in-three are implemented as deterministic pure
// functions of (piece contents, predicate). Determinism is the invariant
// that makes sideways cracking's adaptive alignment correct: two maps of the
// same set that replay the same sequence of cracks end up with identical
// head orderings (Section 3.2).
//
// CrackRange partitions against both bounds of a range predicate in a
// single pass (crack-in-three, a Dutch-national-flag partition) whenever
// both bounds fall into the same uncracked piece — the common cold-start
// case — and falls back to two crack-in-two passes otherwise. Which path is
// taken depends only on the cracker-index state, which itself is a function
// of the replayed operation sequence, so the choice is deterministic across
// aligned maps and the alignment invariant is preserved.
//
// Updates use the Ripple algorithm. RippleInsert merges one pending tuple;
// RippleInsertBatch merges many in a single pass (one index walk, one bulk
// boundary shift) and is defined to produce exactly the layout that
// arrival-order sequential RippleInsert calls would, so replay tapes can be
// applied with either without breaking alignment.
package crack

import (
	"math"
	"sort"

	"crackstore/internal/crackindex"
	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// KernelStats counts partition work. Tests use it to verify that a cold
// range crack is a single pass; benchmarks use it for work accounting.
type KernelStats struct {
	InTwo   int // crack-in-two partition passes
	InThree int // single-pass crack-in-three partitions
	Visited int // tuples examined across all partition passes
}

// Pairs is a two-column table with a cracker index over the head column.
type Pairs struct {
	Head []Value
	Tail []Value
	Idx  *crackindex.Index

	// Stats accumulates kernel partition counters. Resetting it is cheap
	// and does not affect behavior.
	Stats KernelStats
}

// NewPairs returns a Pairs over copies of head and tail. Panics if lengths
// differ.
func NewPairs(head, tail []Value) *Pairs {
	if len(head) != len(tail) {
		panic("crack: head/tail length mismatch")
	}
	h := make([]Value, len(head))
	t := make([]Value, len(tail))
	copy(h, head)
	copy(t, tail)
	return &Pairs{Head: h, Tail: t, Idx: crackindex.New()}
}

// WrapPairs returns a Pairs that takes ownership of head and tail without
// copying.
func WrapPairs(head, tail []Value) *Pairs {
	if len(head) != len(tail) {
		panic("crack: head/tail length mismatch")
	}
	return &Pairs{Head: head, Tail: tail, Idx: crackindex.New()}
}

// Len returns the number of tuples.
func (p *Pairs) Len() int { return len(p.Head) }

func (p *Pairs) swap(i, j int) {
	p.Head[i], p.Head[j] = p.Head[j], p.Head[i]
	p.Tail[i], p.Tail[j] = p.Tail[j], p.Tail[i]
}

// onLeft reports whether value v belongs strictly before boundary b.
func onLeft(v Value, b crackindex.Bound) bool {
	if b.Incl {
		return v < b.V // boundary >= V: left side is < V
	}
	return v <= b.V // boundary > V: left side is <= V
}

// cut returns the exclusive cutoff c with onLeft(v, b) == (v < c), so hot
// partition loops compare against a plain integer instead of re-testing
// b.Incl per tuple. ok is false only for the non-representable boundary
// {MaxInt64, exclusive}, whose left side is the whole domain.
func cut(b crackindex.Bound) (c Value, ok bool) {
	if b.Incl {
		return b.V, true
	}
	if b.V == math.MaxInt64 {
		return 0, false
	}
	return b.V + 1, true
}

// crackInTwo partitions positions [lo, hi) so that all values on the left
// of boundary b precede all values at-or-right of it, returning the split
// position. The algorithm is the two-pointer partition of [7]; it is a
// deterministic function of the piece contents.
func (p *Pairs) crackInTwo(b crackindex.Bound, lo, hi int) int {
	p.Stats.InTwo++
	p.Stats.Visited += hi - lo
	i, j := lo, hi-1
	for i <= j {
		for i <= j && onLeft(p.Head[i], b) {
			i++
		}
		for i <= j && !onLeft(p.Head[j], b) {
			j--
		}
		if i < j {
			p.swap(i, j)
			i++
			j--
		}
	}
	return i
}

// CrackBound ensures a physical boundary for b exists, cracking the piece it
// falls into if necessary, and returns the boundary position. The index is
// updated. A no-op if the boundary already exists.
func (p *Pairs) CrackBound(b crackindex.Bound) int {
	return p.crackBoundAt(b, p.Idx.PieceFor(b, len(p.Head)))
}

// crackBoundAt is CrackBound for a bound whose piece is already located,
// saving the index descent.
func (p *Pairs) crackBoundAt(b crackindex.Bound, pc crackindex.Piece) int {
	if pc.LoExact {
		return pc.Lo
	}
	pos := p.crackInTwo(b, pc.Lo, pc.Hi)
	p.Idx.Insert(b, pos)
	return pos
}

// crackInThree partitions positions [lo, hi) against both bounds in a
// single pass (a Dutch-national-flag partition): values left of b1, then
// values in [b1, b2), then values at-or-right of b2. Requires b1 < b2.
// Returns the two split positions. Like crackInTwo it is a deterministic
// function of the piece contents.
func (p *Pairs) crackInThree(b1, b2 crackindex.Bound, lo, hi int) (int, int) {
	c1, ok1 := cut(b1)
	c2, ok2 := cut(b2)
	if !ok1 || !ok2 {
		// Unreachable for predicates over real value domains; resolve the
		// non-representable bound as two crack-in-two passes (which keep
		// their own stats).
		lo = p.crackInTwo(b1, lo, hi)
		return lo, p.crackInTwo(b2, lo, hi)
	}
	p.Stats.InThree++
	p.Stats.Visited += hi - lo
	h, t := p.Head, p.Tail
	// Invariant: [lo,lt) left of b1, [lt,cur) in [b1,b2), [gt,hi) at-or-right
	// of b2, [cur,gt) unexamined. Right-class elements met by the descending
	// gt cursor stay in place for free; only genuinely misplaced tuples are
	// swapped, so the pass does crack-in-two-like data movement while
	// resolving both bounds in one traversal.
	lt, cur, gt := lo, lo, hi
	for cur < gt {
		v := h[cur]
		if v < c2 {
			if v < c1 {
				if lt != cur {
					h[lt], h[cur] = v, h[lt]
					t[lt], t[cur] = t[cur], t[lt]
				}
				lt++
			}
			cur++
			continue
		}
		// v belongs at-or-right of b2: pull a non-right partner down from
		// the top, skipping elements already in their final region.
		for {
			gt--
			if cur == gt {
				break
			}
			w := h[gt]
			if w < c2 {
				h[cur], h[gt] = w, v
				t[cur], t[gt] = t[gt], t[cur]
				if w < c1 {
					if lt != cur {
						h[lt], h[cur] = w, h[lt]
						t[lt], t[cur] = t[cur], t[lt]
					}
					lt++
				}
				cur++
				break
			}
		}
	}
	return lt, gt
}

// CrackRange physically reorganizes the pairs so that all tuples matching
// pred occupy the contiguous area [lo, hi), which is returned. This is the
// core of operator sideways.select steps (4)-(6) and of crackers.select.
//
// When both bounds of pred fall into the same uncracked piece (always the
// case on a cold column), the piece is partitioned against both bounds in
// one crack-in-three pass; otherwise each bound cracks its own piece in
// two. The path choice depends only on the index state, so it is identical
// across maps replaying the same operation sequence.
func (p *Pairs) CrackRange(pred store.Pred) (lo, hi int) {
	b1, b2 := pred.LowerBound(), pred.UpperBound()
	if b1.Less(b2) {
		pc := p.Idx.PieceFor(b1, len(p.Head))
		if !pc.LoExact && (!pc.HasHiB || b2.Less(pc.HiBound)) {
			lo, hi = p.crackInThree(b1, b2, pc.Lo, pc.Hi)
			p.Idx.Insert(b1, lo)
			p.Idx.Insert(b2, hi)
			return lo, hi
		}
		lo = p.crackBoundAt(b1, pc) // reuse the descent the probe already paid
	} else {
		lo = p.CrackBound(b1)
	}
	hi = p.CrackBound(b2)
	if hi < lo {
		// Possible only for empty predicates (e.g. lo > hi); normalize.
		hi = lo
	}
	return lo, hi
}

// Area is the read-only probe of the two-phase (probe/execute) protocol:
// if both bounds of pred already exist as live boundaries, the qualifying
// area [lo, hi) can be read without any physical reorganization and ok is
// true. When ok is false, answering pred requires CrackRange (a write).
func (p *Pairs) Area(pred store.Pred) (lo, hi int, ok bool) {
	lo, ok1 := p.Idx.Lookup(pred.LowerBound())
	hi, ok2 := p.Idx.Lookup(pred.UpperBound())
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi, true
}

// NeedsCrack reports whether answering pred would physically reorganize the
// pairs. Read-only; safe to call concurrently with other readers.
func (p *Pairs) NeedsCrack(pred store.Pred) bool {
	_, _, ok := p.Area(pred)
	return !ok
}

// RippleInsert inserts the tuple (v, t) into the piece where v belongs,
// shifting one boundary tuple per subsequent piece (the Ripple algorithm of
// SIGMOD 2007). The column grows by one; index positions are adjusted.
// The placement is deterministic: the new tuple lands at the position of
// the first boundary whose left side v belongs to (i.e. at the end of its
// piece), and exactly those boundaries shift right by one.
func (p *Pairs) RippleInsert(v, t Value) {
	// Boundaries that must end up after the new tuple are exactly those b
	// with onLeft(v, b). Walk yields them in ascending order; they form a
	// suffix of the boundary sequence.
	type bpos struct {
		b   crackindex.Bound
		pos int
	}
	var bps []bpos
	p.Idx.Walk(func(b crackindex.Bound, pos int) {
		if onLeft(v, b) {
			bps = append(bps, bpos{b, pos})
		}
	})
	p.Head = append(p.Head, 0)
	p.Tail = append(p.Tail, 0)
	hole := len(p.Head) - 1
	for i := len(bps) - 1; i >= 0; i-- {
		bp := bps[i].pos
		if bp != hole {
			p.Head[hole], p.Tail[hole] = p.Head[bp], p.Tail[bp]
			hole = bp
		}
	}
	p.Head[hole], p.Tail[hole] = v, t
	for _, e := range bps {
		p.Idx.Insert(e.b, e.pos+1)
	}
}

// RippleInsertBatch inserts all tuples (vals[i], tails[i]) as if
// RippleInsert were called for each in order, but in a single pass: one
// index walk to collect boundaries, one target search per tuple, one
// piece-wise reshuffle of the arrays, and one bulk boundary shift. The
// resulting layout is exactly the layout the equivalent sequence of
// RippleInsert calls produces, so tape replays may use either form without
// breaking alignment determinism.
func (p *Pairs) RippleInsertBatch(vals, tails []Value) {
	if len(vals) != len(tails) {
		panic("crack: RippleInsertBatch vals/tails length mismatch")
	}
	m := len(vals)
	if m == 0 {
		return
	}
	if m == 1 {
		p.RippleInsert(vals[0], tails[0])
		return
	}
	type bpos struct {
		b   crackindex.Bound
		pos int
	}
	var bps []bpos
	p.Idx.Walk(func(b crackindex.Bound, pos int) { bps = append(bps, bpos{b, pos}) })
	nb := len(bps)
	if nb == 0 {
		p.Head = append(p.Head, vals...)
		p.Tail = append(p.Tail, tails...)
		return
	}
	// target[i] is the first boundary whose left side vals[i] belongs to
	// (nb when it belongs after all boundaries): the tuple lands at the end
	// of piece target[i] and exactly boundaries target[i].. shift right.
	// onLeft(v, ·) is monotone along the boundary order, so binary search
	// applies.
	targets := make([]int, m)
	shift := make([]int, nb+1) // after prefix-summing: #inserts with target <= k
	for i, v := range vals {
		t := sort.Search(nb, func(k int) bool { return onLeft(v, bps[k].b) })
		targets[i] = t
		shift[t]++
	}
	for k := 1; k <= nb; k++ {
		shift[k] += shift[k-1]
	}
	n := len(p.Head)
	p.Head = append(p.Head, make([]Value, m)...)
	p.Tail = append(p.Tail, make([]Value, m)...)

	// Rebuild affected pieces from the top down. Sequential ripple inserts
	// act on piece k (positions [bps[k-1].pos, bps[k].pos)) as a queue: an
	// insert targeting k appends its tuple; an insert targeting a lower
	// piece rotates the piece's current first tuple to its end (one tuple
	// per shifted boundary). Replaying those events in arrival order per
	// piece reproduces the sequential layout exactly.
	appH := make([]Value, 0, m)
	appT := make([]Value, 0, m)
	for k := nb; k >= 0; k-- {
		if shift[k] == 0 {
			break // no inserts land at or below piece k: untouched
		}
		start, end := 0, n
		if k > 0 {
			start = bps[k-1].pos
		}
		if k < nb {
			end = bps[k].pos
		}
		sBefore := 0
		if k > 0 {
			sBefore = shift[k-1]
		}
		appH, appT = appH[:0], appT[:0]
		front := start // old-array index of the piece's current first tuple
		pop := 0       // consumed prefix of the appended queue
		for i := 0; i < m; i++ {
			switch {
			case targets[i] == k:
				appH = append(appH, vals[i])
				appT = append(appT, tails[i])
			case targets[i] < k:
				if front < end {
					appH = append(appH, p.Head[front])
					appT = append(appT, p.Tail[front])
					front++
				} else if pop < len(appH) {
					appH = append(appH, appH[pop])
					appT = append(appT, appT[pop])
					pop++
				}
				// else: the piece is empty; nothing rotates.
			}
		}
		// Surviving originals keep their order, then the appended queue.
		newStart := start + sBefore
		origLen := end - front
		copy(p.Head[newStart:newStart+origLen], p.Head[front:end])
		copy(p.Tail[newStart:newStart+origLen], p.Tail[front:end])
		copy(p.Head[newStart+origLen:end+shift[k]], appH[pop:])
		copy(p.Tail[newStart+origLen:end+shift[k]], appT[pop:])
	}
	k := 0
	p.Idx.Reposition(func(b crackindex.Bound, pos int) int {
		d := shift[k]
		k++
		return pos + d
	})
}

// RippleInsertKeys batch-merges the tuples with the given base keys: head
// values come from headCol, tails from tailCol, or the keys themselves when
// tailCol is nil (key maps). Shared by the sideways and partial replay
// tapes so their insert entries stay byte-identical.
func (p *Pairs) RippleInsertKeys(keys []int, headCol, tailCol *store.Column) {
	vals := make([]Value, len(keys))
	tails := make([]Value, len(keys))
	for i, k := range keys {
		vals[i] = headCol.Vals[k]
		if tailCol != nil {
			tails[i] = tailCol.Vals[k]
		} else {
			tails[i] = Value(k)
		}
	}
	p.RippleInsertBatch(vals, tails)
}

// RippleDelete removes the tuple at position pos by rippling the hole to
// the end of the column: the last tuple of the hole's piece fills the hole,
// every subsequent boundary shifts left by one (its piece donates its last
// tuple to the hole it inherits), and the column shrinks by one. Only one
// tuple per downstream piece moves, versus the full-suffix compaction of
// RemovePositions. This is the per-tuple reference for RippleDeleteBatch.
func (p *Pairs) RippleDelete(pos int) {
	n := len(p.Head)
	type bpos struct {
		b crackindex.Bound
		p int
	}
	var bps []bpos
	p.Idx.Walk(func(b crackindex.Bound, bp int) {
		if bp > pos {
			bps = append(bps, bpos{b, bp})
		}
	})
	hole := pos
	for _, e := range bps {
		last := e.p - 1
		if hole != last {
			p.Head[hole], p.Tail[hole] = p.Head[last], p.Tail[last]
		}
		hole = last
	}
	if hole != n-1 {
		p.Head[hole], p.Tail[hole] = p.Head[n-1], p.Tail[n-1]
	}
	p.Head = p.Head[:n-1]
	p.Tail = p.Tail[:n-1]
	for _, e := range bps {
		p.Idx.Insert(e.b, e.p-1)
	}
}

// RippleDeleteBatch removes the tuples at the given positions (ascending,
// duplicate-free, valid against the current layout) in a single pass: one
// index walk, one fill-from-the-end sweep per affected piece, and one bulk
// boundary shift. It produces exactly the layout that per-tuple
// RippleDelete calls produce when applied from the highest position down
// (the order in which every position stays valid), so replay tapes can use
// either form without breaking alignment determinism. It is the delete-side
// counterpart of RippleInsertBatch.
func (p *Pairs) RippleDeleteBatch(positions []int) {
	m := len(positions)
	if m == 0 {
		return
	}
	if m == 1 {
		p.RippleDelete(positions[0])
		return
	}
	n := len(p.Head)
	type bpos struct {
		b crackindex.Bound
		p int
	}
	var bps []bpos
	p.Idx.Walk(func(b crackindex.Bound, bp int) { bps = append(bps, bpos{b, bp}) })
	nb := len(bps)
	h, t := p.Head, p.Tail
	// Sequential highest-first semantics decompose per piece: a piece first
	// absorbs its own deletions (each hole filled by the piece's current
	// last tuple), then rotates right once per deletion in an earlier piece
	// (it donates its last tuple to the piece below and inherits a slot).
	// "before" counts deletions in earlier pieces; di scans positions.
	di, before := 0, 0
	for k := 0; k <= nb; k++ {
		s, e := 0, n
		if k > 0 {
			s = bps[k-1].p
		}
		if k < nb {
			e = bps[k].p
		}
		ownStart := di
		for di < m && positions[di] < e {
			di++
		}
		own := positions[ownStart:di]
		if before == 0 && len(own) == 0 {
			continue
		}
		end := e
		for i := len(own) - 1; i >= 0; i-- {
			end--
			if d := own[i]; d != end {
				h[d], t[d] = h[end], t[end]
			}
		}
		if before > 0 {
			sz := end - s
			ns := s - before
			if sz > 0 {
				r := before % sz
				copy(h[ns:ns+r], h[end-r:end])
				copy(t[ns:ns+r], t[end-r:end])
				if before >= sz {
					// Every survivor moves: the rotated tail block lands
					// first, then the untouched prefix follows it.
					copy(h[ns+r:ns+sz], h[s:end-r])
					copy(t[ns+r:ns+sz], t[s:end-r])
				}
				// before < sz: only the tail block moved into the front
				// gap; the middle [s, end-r) already sits at its final
				// positions.
			}
		}
		before += len(own)
	}
	p.Head = h[:n-m]
	p.Tail = t[:n-m]
	p.Idx.Reposition(func(b crackindex.Bound, pos int) int {
		return pos - sort.SearchInts(positions, pos)
	})
}

// RemovePositions deletes the tuples at the given positions (ascending,
// duplicate-free) and compacts the arrays, shifting index boundaries left.
func (p *Pairs) RemovePositions(positions []int) {
	if len(positions) == 0 {
		return
	}
	del := 0
	next := 0
	out := 0
	for i := 0; i < len(p.Head); i++ {
		if next < len(positions) && positions[next] == i {
			next++
			del++
			continue
		}
		if out != i {
			p.Head[out], p.Tail[out] = p.Head[i], p.Tail[i]
		}
		out++
	}
	p.Head = p.Head[:out]
	p.Tail = p.Tail[:out]
	// Re-position every boundary: subtract the number of deleted positions
	// before it.
	p.Idx.Reposition(func(b crackindex.Bound, pos int) int {
		return pos - sort.SearchInts(positions, pos)
	})
}

// CheckPieces verifies that every index boundary holds physically: values
// before a boundary are on its left side, values at or after are not.
// Returns false at the first violation. Used by tests and property checks.
func (p *Pairs) CheckPieces() bool {
	ok := true
	p.Idx.Walk(func(b crackindex.Bound, pos int) {
		for i := 0; i < pos && ok; i++ {
			if !onLeft(p.Head[i], b) {
				ok = false
			}
		}
		for i := pos; i < len(p.Head) && ok; i++ {
			if onLeft(p.Head[i], b) {
				ok = false
			}
		}
	})
	return ok
}
