// Package crack implements database cracking (CIDR 2007): incremental
// physical reorganization of a column as a side effect of query processing,
// plus the Ripple update algorithm (SIGMOD 2007) the paper's Section 3.5
// builds on.
//
// The central type is Pairs, a two-column table (head, tail) with a cracker
// index over the head. Every cracking structure in this repository is a
// Pairs under the hood:
//
//	cracker column  C_A   — head = A values, tail = tuple keys
//	cracker map     M_AB  — head = A values, tail = B values
//	chunk map       H_A   — head = A values, tail = tuple keys
//	key map         M_Akey— head = A values, tail = tuple keys
//
// Crack-in-two and crack-in-three are implemented as deterministic pure
// functions of (piece contents, predicate). Determinism is the invariant
// that makes sideways cracking's adaptive alignment correct: two maps of the
// same set that replay the same sequence of cracks end up with identical
// head orderings (Section 3.2).
//
// CrackRange partitions against both bounds of a range predicate with one
// crack-in-three (a single classification pass that fixes both split
// positions, followed by a movement-optimal cycle repair that stores every
// misplaced tuple exactly once) whenever both bounds fall into the same
// uncracked piece — the common cold-start case — and falls back to two
// crack-in-two passes otherwise. Which path is taken depends only on the
// cracker-index state, which itself is a function of the replayed
// operation sequence, so the choice is deterministic across aligned maps
// and the alignment invariant is preserved.
//
// Updates use the Ripple algorithm. RippleInsert merges one pending tuple;
// RippleInsertBatch merges many in a single pass (one index walk, one bulk
// boundary shift) and is defined to produce exactly the layout that
// arrival-order sequential RippleInsert calls would, so replay tapes can be
// applied with either without breaking alignment.
//
// Two orthogonal knobs tune the kernel beyond the paper's algorithm:
//
//   - Pairs.Policy selects an adaptive pivot policy (see Policy): the
//     Stochastic and Capped policies pre-split pathologically large pieces
//     at auxiliary pivots before the query's own crack, so convergence no
//     longer depends on the query pattern. Auxiliary pivots are ordinary
//     index boundaries; probes and SelectRO benefit from them immediately.
//   - The partition inner loops run branch-free by default: per-tuple
//     left/right decisions are computed as 0/1 cursor advances and masked
//     swaps instead of unpredictable branches, so throughput does not
//     collapse on random data (~50% mispredicts in the branchy loop).
//     Pairs.Branchy selects the branchy reference implementation, which is
//     fuzz-pinned layout-identical to the predicated kernels.
package crack

import (
	"math"
	"sort"
	"sync"

	"crackstore/internal/crackindex"
	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// KernelStats counts partition work. Tests use it to verify that a cold
// range crack classifies each tuple once and that crack-in-three moves no
// more tuples than two crack-in-twos; benchmarks use it for work
// accounting.
type KernelStats struct {
	InTwo   int // crack-in-two partition passes
	InThree int // crack-in-three partitions (both bounds in one pass)
	Visited int // tuples classified, one per tuple per partition pass
	Moved   int // tuples stored to a new position (swaps count 2, rotations 3)
	Aux     int // auxiliary policy pivots introduced (see Policy)
}

// Add accumulates o into s (aggregation across columns/maps/chunks).
func (s *KernelStats) Add(o KernelStats) {
	s.InTwo += o.InTwo
	s.InThree += o.InThree
	s.Visited += o.Visited
	s.Moved += o.Moved
	s.Aux += o.Aux
}

// Pairs is a two-column table with a cracker index over the head column.
type Pairs struct {
	Head []Value
	Tail []Value
	Idx  *crackindex.Index

	// Policy selects the adaptive pivot policy; the zero value is Default
	// (crack only at query bounds). Change it only between queries: policy
	// decisions are part of the deterministic layout, so structures that
	// must stay aligned have to crack under one policy.
	Policy Policy

	// Branchy selects the branchy reference partition loops instead of the
	// branch-free predicated defaults. Both produce identical layouts;
	// the switch exists for the equivalence fuzz targets and the kernel
	// microbenchmarks.
	Branchy bool

	// Stats accumulates kernel partition counters. Resetting it is cheap
	// and does not affect behavior.
	Stats KernelStats
}

// NewPairs returns a Pairs over copies of head and tail. Panics if lengths
// differ.
func NewPairs(head, tail []Value) *Pairs {
	if len(head) != len(tail) {
		panic("crack: head/tail length mismatch")
	}
	h := make([]Value, len(head))
	t := make([]Value, len(tail))
	copy(h, head)
	copy(t, tail)
	return &Pairs{Head: h, Tail: t, Idx: crackindex.New()}
}

// WrapPairs returns a Pairs that takes ownership of head and tail without
// copying.
func WrapPairs(head, tail []Value) *Pairs {
	if len(head) != len(tail) {
		panic("crack: head/tail length mismatch")
	}
	return &Pairs{Head: head, Tail: tail, Idx: crackindex.New()}
}

// Len returns the number of tuples.
func (p *Pairs) Len() int { return len(p.Head) }

func (p *Pairs) swap(i, j int) {
	p.Head[i], p.Head[j] = p.Head[j], p.Head[i]
	p.Tail[i], p.Tail[j] = p.Tail[j], p.Tail[i]
}

// onLeft reports whether value v belongs strictly before boundary b.
func onLeft(v Value, b crackindex.Bound) bool {
	if b.Incl {
		return v < b.V // boundary >= V: left side is < V
	}
	return v <= b.V // boundary > V: left side is <= V
}

// cut returns the exclusive cutoff c with onLeft(v, b) == (v < c), so hot
// partition loops compare against a plain integer instead of re-testing
// b.Incl per tuple. ok is false only for the non-representable boundary
// {MaxInt64, exclusive}, whose left side is the whole domain.
func cut(b crackindex.Bound) (c Value, ok bool) {
	if b.Incl {
		return b.V, true
	}
	if b.V == math.MaxInt64 {
		return 0, false
	}
	return b.V + 1, true
}

// b2v returns 1 for true and 0 for false. The Go compiler lowers this
// pattern to a flag-set instruction, keeping the predicated kernels free of
// data-dependent branches.
func b2v(b bool) Value {
	if b {
		return 1
	}
	return 0
}

// crackInTwo partitions positions [lo, hi) so that all values on the left
// of boundary b precede all values at-or-right of it, returning the split
// position. It dispatches to the branch-free predicated kernel (default)
// or the branchy two-pointer reference (Pairs.Branchy); both execute the
// same cursor state machine and produce identical layouts, which the
// equivalence fuzz targets pin. The result is a deterministic function of
// the piece contents either way.
func (p *Pairs) crackInTwo(b crackindex.Bound, lo, hi int) int {
	p.Stats.InTwo++
	p.Stats.Visited += hi - lo
	c, ok := cut(b)
	if !ok {
		// Non-representable boundary {MaxInt64, exclusive}: every value is
		// on its left; nothing moves and the split is at hi.
		return hi
	}
	if p.Branchy {
		return p.crackInTwoBranchy(c, lo, hi)
	}
	return p.crackInTwoPred(c, lo, hi)
}

// crackInTwoBranchy is the branchy reference of the count-then-repair
// crack-in-two: a counting pass fixes the split position, then cursor i
// scans the left region for misplaced (>= c) tuples while cursor j scans
// the right region for misplaced (< c) ones, swapping the k-th stall of
// each — every swap puts two tuples in their final region, the minimum
// movement any swap-based partition can achieve. The stall positions and
// their pairing are what crackInTwoPred replicates exactly.
func (p *Pairs) crackInTwoBranchy(c Value, lo, hi int) int {
	h, t := p.Head, p.Tail
	nL := 0
	for _, v := range h[lo:hi] {
		if v < c {
			nL++
		}
	}
	split := lo + nL
	moved := 0
	i, j := lo, split
	for {
		for i < split && h[i] < c {
			i++
		}
		for j < hi && h[j] >= c {
			j++
		}
		if i == split {
			// Misplaced counts on both sides are equal, so j == hi too.
			break
		}
		h[i], h[j] = h[j], h[i]
		t[i], t[j] = t[j], t[i]
		moved += 2
		i++
		j++
	}
	p.Stats.Moved += moved
	return split
}

// predBlock is the compaction block size of the predicated kernels: small
// enough for the index buffers to live in L1, large enough to amortize the
// per-block control branches to noise (one check per predBlock tuples).
const predBlock = 256

// crackInTwoPred is the branch-free predicated crack-in-two: the counting
// pass is a 0/1 accumulation, and the repair phase block-compacts the
// misplaced positions of each region into small index buffers using
// store-always/advance-by-flag compaction, then swaps the paired positions
// unconditionally. No per-tuple branch depends on the data anywhere — the
// classic two-pointer loop mispredicts once per tuple on random data,
// while here the only data-dependent control is one buffer check per
// predBlock tuples. Pairing (k-th misplaced of the left region with the
// k-th of the right) matches crackInTwoBranchy exactly, so layouts and
// stats are identical (fuzz-pinned).
func (p *Pairs) crackInTwoPred(c Value, lo, hi int) int {
	h, t := p.Head, p.Tail
	nL := 0
	for _, v := range h[lo:hi] {
		nL += int(b2v(v < c))
	}
	split := lo + nL
	moved := 0
	var bufI, bufJ [predBlock]int
	i, j := lo, split
	ni, ci, nj, cj := 0, 0, 0, 0
	for {
		if ni == ci {
			ni, ci = 0, 0
			for k := 0; k < predBlock && i < split; k++ {
				bufI[ni] = i
				ni += int(b2v(h[i] >= c))
				i++
			}
		}
		if nj == cj {
			nj, cj = 0, 0
			for k := 0; k < predBlock && j < hi; k++ {
				bufJ[nj] = j
				nj += int(b2v(h[j] < c))
				j++
			}
		}
		sw := min(ni-ci, nj-cj)
		if sw == 0 {
			// Misplaced counts on both sides are equal, so one drained
			// side with an exhausted region means the repair is complete.
			if (i == split && ni == ci) || (j == hi && nj == cj) {
				break
			}
			continue
		}
		for k := 0; k < sw; k++ {
			a, b := bufI[ci+k], bufJ[cj+k]
			h[a], h[b] = h[b], h[a]
			t[a], t[b] = t[b], t[a]
		}
		moved += 2 * sw
		ci += sw
		cj += sw
	}
	p.Stats.Moved += moved
	return split
}

// CrackBound ensures a physical boundary for b exists, cracking the piece it
// falls into if necessary, and returns the boundary position. The index is
// updated. A no-op if the boundary already exists. Under a non-default
// Policy, a piece larger than the policy cap is first split at auxiliary
// pivots.
func (p *Pairs) CrackBound(b crackindex.Bound) int {
	p.applyPolicy(b)
	return p.crackBoundAt(b, p.Idx.PieceFor(b, len(p.Head)))
}

// crackBoundAt is CrackBound for a bound whose piece is already located,
// saving the index descent.
func (p *Pairs) crackBoundAt(b crackindex.Bound, pc crackindex.Piece) int {
	if pc.LoExact {
		return pc.Lo
	}
	pos := p.crackInTwo(b, pc.Lo, pc.Hi)
	p.Idx.Insert(b, pos)
	return pos
}

// crackInThree partitions positions [lo, hi) against both bounds in one
// classification pass: values left of b1, then values in [b1, b2), then
// values at-or-right of b2. Requires b1 <= b2. Returns the two split
// positions.
//
// The kernel is movement-optimal: it first counts the three classes (one
// branch-free pass fixing the split positions), then repairs misplaced
// tuples with direct 2-cycle swaps and 3-cycle rotations, so every
// misplaced tuple is stored exactly once — the information-theoretic
// minimum. Two crack-in-two passes are swap-based and therefore store
// every tuple they move at least once too, over a superset of the
// misplaced tuples, which makes Moved(crack-in-three) <= Moved(two
// crack-in-twos) a theorem rather than an empirical observation
// (TestCrackInThreeMovesNoMoreThanTwoPass pins it).
//
// Like crackInTwo it dispatches between the predicated default and the
// branchy reference, which produce identical layouts, and is a
// deterministic function of the piece contents.
func (p *Pairs) crackInThree(b1, b2 crackindex.Bound, lo, hi int) (int, int) {
	c1, ok1 := cut(b1)
	c2, ok2 := cut(b2)
	if !ok1 || !ok2 {
		// Unreachable for predicates over real value domains; resolve the
		// non-representable bound as two crack-in-two passes (which keep
		// their own stats).
		lo = p.crackInTwo(b1, lo, hi)
		return lo, p.crackInTwo(b2, lo, hi)
	}
	p.Stats.InThree++
	p.Stats.Visited += hi - lo
	if p.Branchy {
		return p.crackInThreeBranchy(c1, c2, lo, hi)
	}
	return p.crackInThreePred(c1, c2, lo, hi)
}

// crackInThreeBranchy is the branchy reference of the count-then-permute
// crack-in-three. The counting pass fixes the final regions A=[lo,lt),
// B=[lt,gt), C=[gt,hi); repair then runs three greedy 2-cycle phases —
// M-in-A with L-in-B, R-in-A with L-in-C, R-in-B with M-in-C, each a
// pairwise swap of the k-th misplaced tuple of one region with the k-th
// matching one of the other — and finishes the leftovers, which class
// conservation forces into 3-cycles of a single orientation (one tuple per
// region), with three-way rotations. Every misplaced tuple is written
// exactly once: the minimum movement any correct partition can achieve.
// The phase order and pairing are what crackInThreePred replicates.
func (p *Pairs) crackInThreeBranchy(c1, c2 Value, lo, hi int) (int, int) {
	h, t := p.Head, p.Tail
	nL, nM := 0, 0
	for _, v := range h[lo:hi] {
		if v < c1 {
			nL++
		} else if v < c2 {
			nM++
		}
	}
	lt, gt := lo+nL, lo+nL+nM
	moved := 0

	// Phase 1: 2-cycles M-in-A <-> L-in-B.
	i, j := lo, lt
	for {
		for i < lt && !(h[i] >= c1 && h[i] < c2) {
			i++
		}
		for j < gt && h[j] >= c1 {
			j++
		}
		if i == lt || j == gt {
			break
		}
		h[i], h[j] = h[j], h[i]
		t[i], t[j] = t[j], t[i]
		moved += 2
		i++
		j++
	}
	// Phase 2: 2-cycles R-in-A <-> L-in-C.
	i, j = lo, gt
	for {
		for i < lt && h[i] < c2 {
			i++
		}
		for j < hi && h[j] >= c1 {
			j++
		}
		if i == lt || j == hi {
			break
		}
		h[i], h[j] = h[j], h[i]
		t[i], t[j] = t[j], t[i]
		moved += 2
		i++
		j++
	}
	// Phase 3: 2-cycles R-in-B <-> M-in-C.
	i, j = lt, gt
	for {
		for i < gt && h[i] < c2 {
			i++
		}
		for j < hi && !(h[j] >= c1 && h[j] < c2) {
			j++
		}
		if i == gt || j == hi {
			break
		}
		h[i], h[j] = h[j], h[i]
		t[i], t[j] = t[j], t[i]
		moved += 2
		i++
		j++
	}
	// Phase 4: leftover 3-cycles, all of one orientation (each has exactly
	// one tuple per region; a's class decides the rotation direction).
	a, b, c := lo, lt, gt
	for {
		for a < lt && h[a] < c1 {
			a++
		}
		for b < gt && h[b] >= c1 && h[b] < c2 {
			b++
		}
		for c < hi && h[c] >= c2 {
			c++
		}
		if a == lt || b == gt || c == hi {
			break
		}
		if h[a] < c2 {
			// M@a, R@b, L@c: a<-c, b<-a, c<-b.
			h[a], h[b], h[c] = h[c], h[a], h[b]
			t[a], t[b], t[c] = t[c], t[a], t[b]
		} else {
			// R@a, L@b, M@c: a<-b, b<-c, c<-a.
			h[a], h[b], h[c] = h[b], h[c], h[a]
			t[a], t[b], t[c] = t[b], t[c], t[a]
		}
		moved += 3
		a++
		b++
		c++
	}
	p.Stats.Moved += moved
	return lt, gt
}

// threeScratch pools the position-buffer scratch of crackInThreePred
// (sized 2*piece+6 int32s), so repeated cold cracks allocate once per size
// high-water mark instead of per call. Cracks run under their structure's
// write lock, but independent structures (shards, map sets) crack in
// parallel, hence a pool rather than a global.
var threeScratch = sync.Pool{New: func() any { return new([]int32) }}

// crackInThreePred is the branch-free predicated crack-in-three: the same
// counting pass and repair phases as crackInThreeBranchy, but each region
// is scanned exactly once, compacting the positions of its two misplaced
// classes into index buffers with store-always/advance-by-flag compaction
// (no data-dependent branch). The phase swap counts then follow from the
// buffer lengths by arithmetic, and every swap and rotation is applied
// unconditionally from the buffers. Pairing is scan-order on both sides of
// every phase — exactly crackInThreeBranchy's — so layouts and stats are
// identical (fuzz-pinned).
func (p *Pairs) crackInThreePred(c1, c2 Value, lo, hi int) (int, int) {
	if hi > math.MaxInt32 {
		// Positions no longer fit the int32 compaction buffers; the
		// branchy reference produces the identical layout.
		return p.crackInThreeBranchy(c1, c2, lo, hi)
	}
	h, t := p.Head, p.Tail
	nL, nM := 0, 0
	for _, v := range h[lo:hi] {
		nL += int(b2v(v < c1))
		nM += int(b2v(v >= c1) & b2v(v < c2))
	}
	lt, gt := lo+nL, lo+nL+nM

	// Per-class position buffers, sliced out of one pooled scratch. Each
	// region needs capacity region-size+1 per class (store-always writes
	// one slot past the final count).
	aCap, bCap, cCap := lt-lo+1, gt-lt+1, hi-gt+1
	sp := threeScratch.Get().(*[]int32)
	if need := 2 * (aCap + bCap + cCap); cap(*sp) < need {
		*sp = make([]int32, need)
	}
	s := *sp
	bufAM, s := s[:aCap], s[aCap:]
	bufAR, s := s[:aCap], s[aCap:]
	bufBL, s := s[:bCap], s[bCap:]
	bufBR, s := s[:bCap], s[bCap:]
	bufCL, s := s[:cCap], s[cCap:]
	bufCM := s[:cCap]

	nAM, nAR := 0, 0
	for i := lo; i < lt; i++ {
		v := h[i]
		bufAM[nAM] = int32(i)
		nAM += int(b2v(v >= c1) & b2v(v < c2))
		bufAR[nAR] = int32(i)
		nAR += int(b2v(v >= c2))
	}
	nBL, nBR := 0, 0
	for i := lt; i < gt; i++ {
		v := h[i]
		bufBL[nBL] = int32(i)
		nBL += int(b2v(v < c1))
		bufBR[nBR] = int32(i)
		nBR += int(b2v(v >= c2))
	}
	nCL, nCM := 0, 0
	for i := gt; i < hi; i++ {
		v := h[i]
		bufCL[nCL] = int32(i)
		nCL += int(b2v(v < c1))
		bufCM[nCM] = int32(i)
		nCM += int(b2v(v >= c1) & b2v(v < c2))
	}

	// Greedy 2-cycle phases (pairing matches the branchy phases).
	s1 := min(nAM, nBL) // M-in-A <-> L-in-B
	for k := 0; k < s1; k++ {
		a, b := int(bufAM[k]), int(bufBL[k])
		h[a], h[b] = h[b], h[a]
		t[a], t[b] = t[b], t[a]
	}
	s2 := min(nAR, nCL) // R-in-A <-> L-in-C
	for k := 0; k < s2; k++ {
		a, b := int(bufAR[k]), int(bufCL[k])
		h[a], h[b] = h[b], h[a]
		t[a], t[b] = t[b], t[a]
	}
	s3 := min(nBR, nCM) // R-in-B <-> M-in-C
	for k := 0; k < s3; k++ {
		a, b := int(bufBR[k]), int(bufCM[k])
		h[a], h[b] = h[b], h[a]
		t[a], t[b] = t[b], t[a]
	}

	// Leftover 3-cycles, single orientation by class conservation; the
	// buffer tails are still in scan order, matching the branchy phase 4.
	r1 := nAM - s1 // M@a, R@b, L@c: a<-c, b<-a, c<-b
	for k := 0; k < r1; k++ {
		pa, pb, pc := int(bufAM[s1+k]), int(bufBR[s3+k]), int(bufCL[s2+k])
		h[pa], h[pb], h[pc] = h[pc], h[pa], h[pb]
		t[pa], t[pb], t[pc] = t[pc], t[pa], t[pb]
	}
	r2 := nAR - s2 // R@a, L@b, M@c: a<-b, b<-c, c<-a
	for k := 0; k < r2; k++ {
		pa, pb, pc := int(bufAR[s2+k]), int(bufBL[s1+k]), int(bufCM[s3+k])
		h[pa], h[pb], h[pc] = h[pb], h[pc], h[pa]
		t[pa], t[pb], t[pc] = t[pb], t[pc], t[pa]
	}
	threeScratch.Put(sp)
	p.Stats.Moved += 2*(s1+s2+s3) + 3*(r1+r2)
	return lt, gt
}

// CrackRange physically reorganizes the pairs so that all tuples matching
// pred occupy the contiguous area [lo, hi), which is returned. This is the
// core of operator sideways.select steps (4)-(6) and of crackers.select.
//
// When both bounds of pred fall into the same uncracked piece (always the
// case on a cold column), the piece is partitioned against both bounds in
// one crack-in-three pass; otherwise each bound cracks its own piece in
// two. The path choice depends only on the index state, so it is identical
// across maps replaying the same operation sequence.
func (p *Pairs) CrackRange(pred store.Pred) (lo, hi int) {
	b1, b2 := pred.LowerBound(), pred.UpperBound()
	if p.Policy.Kind != Default {
		// Pre-split oversized target pieces at auxiliary policy pivots.
		// This runs before the path choice below, so the choice stays a
		// deterministic function of (index state, policy) and aligned maps
		// replaying the same sequence keep identical layouts.
		p.applyPolicy(b1)
		p.applyPolicy(b2)
	}
	if b1.Less(b2) {
		pc := p.Idx.PieceFor(b1, len(p.Head))
		if !pc.LoExact && (!pc.HasHiB || b2.Less(pc.HiBound)) {
			lo, hi = p.crackInThree(b1, b2, pc.Lo, pc.Hi)
			p.Idx.Insert(b1, lo)
			p.Idx.Insert(b2, hi)
			return lo, hi
		}
		lo = p.crackBoundAt(b1, pc) // reuse the descent the probe already paid
	} else {
		lo = p.crackBoundAt(b1, p.Idx.PieceFor(b1, len(p.Head)))
	}
	hi = p.crackBoundAt(b2, p.Idx.PieceFor(b2, len(p.Head)))
	if hi < lo {
		// Possible only for empty predicates (e.g. lo > hi); normalize.
		hi = lo
	}
	return lo, hi
}

// Area is the read-only probe of the two-phase (probe/execute) protocol:
// if both bounds of pred already exist as live boundaries, the qualifying
// area [lo, hi) can be read without any physical reorganization and ok is
// true. When ok is false, answering pred requires CrackRange (a write).
func (p *Pairs) Area(pred store.Pred) (lo, hi int, ok bool) {
	lo, ok1 := p.Idx.Lookup(pred.LowerBound())
	hi, ok2 := p.Idx.Lookup(pred.UpperBound())
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi, true
}

// NeedsCrack reports whether answering pred would physically reorganize the
// pairs. Read-only; safe to call concurrently with other readers.
func (p *Pairs) NeedsCrack(pred store.Pred) bool {
	_, _, ok := p.Area(pred)
	return !ok
}

// RippleInsert inserts the tuple (v, t) into the piece where v belongs,
// shifting one boundary tuple per subsequent piece (the Ripple algorithm of
// SIGMOD 2007). The column grows by one; index positions are adjusted.
// The placement is deterministic: the new tuple lands at the position of
// the first boundary whose left side v belongs to (i.e. at the end of its
// piece), and exactly those boundaries shift right by one.
func (p *Pairs) RippleInsert(v, t Value) {
	// Boundaries that must end up after the new tuple are exactly those b
	// with onLeft(v, b). Walk yields them in ascending order; they form a
	// suffix of the boundary sequence.
	type bpos struct {
		b   crackindex.Bound
		pos int
	}
	var bps []bpos
	p.Idx.Walk(func(b crackindex.Bound, pos int) {
		if onLeft(v, b) {
			bps = append(bps, bpos{b, pos})
		}
	})
	p.Head = append(p.Head, 0)
	p.Tail = append(p.Tail, 0)
	hole := len(p.Head) - 1
	for i := len(bps) - 1; i >= 0; i-- {
		bp := bps[i].pos
		if bp != hole {
			p.Head[hole], p.Tail[hole] = p.Head[bp], p.Tail[bp]
			hole = bp
		}
	}
	p.Head[hole], p.Tail[hole] = v, t
	for _, e := range bps {
		p.Idx.Insert(e.b, e.pos+1)
	}
}

// RippleInsertBatch inserts all tuples (vals[i], tails[i]) as if
// RippleInsert were called for each in order, but in a single pass: one
// index walk to collect boundaries, one target search per tuple, one
// piece-wise reshuffle of the arrays, and one bulk boundary shift. The
// resulting layout is exactly the layout the equivalent sequence of
// RippleInsert calls produces, so tape replays may use either form without
// breaking alignment determinism.
func (p *Pairs) RippleInsertBatch(vals, tails []Value) {
	if len(vals) != len(tails) {
		panic("crack: RippleInsertBatch vals/tails length mismatch")
	}
	m := len(vals)
	if m == 0 {
		return
	}
	if m == 1 {
		p.RippleInsert(vals[0], tails[0])
		return
	}
	type bpos struct {
		b   crackindex.Bound
		pos int
	}
	var bps []bpos
	p.Idx.Walk(func(b crackindex.Bound, pos int) { bps = append(bps, bpos{b, pos}) })
	nb := len(bps)
	if nb == 0 {
		p.Head = append(p.Head, vals...)
		p.Tail = append(p.Tail, tails...)
		return
	}
	// target[i] is the first boundary whose left side vals[i] belongs to
	// (nb when it belongs after all boundaries): the tuple lands at the end
	// of piece target[i] and exactly boundaries target[i].. shift right.
	// onLeft(v, ·) is monotone along the boundary order, so binary search
	// applies.
	targets := make([]int, m)
	shift := make([]int, nb+1) // after prefix-summing: #inserts with target <= k
	for i, v := range vals {
		t := sort.Search(nb, func(k int) bool { return onLeft(v, bps[k].b) })
		targets[i] = t
		shift[t]++
	}
	for k := 1; k <= nb; k++ {
		shift[k] += shift[k-1]
	}
	n := len(p.Head)
	p.Head = append(p.Head, make([]Value, m)...)
	p.Tail = append(p.Tail, make([]Value, m)...)

	// Rebuild affected pieces from the top down. Sequential ripple inserts
	// act on piece k (positions [bps[k-1].pos, bps[k].pos)) as a queue: an
	// insert targeting k appends its tuple; an insert targeting a lower
	// piece rotates the piece's current first tuple to its end (one tuple
	// per shifted boundary). Replaying those events in arrival order per
	// piece reproduces the sequential layout exactly.
	appH := make([]Value, 0, m)
	appT := make([]Value, 0, m)
	for k := nb; k >= 0; k-- {
		if shift[k] == 0 {
			break // no inserts land at or below piece k: untouched
		}
		start, end := 0, n
		if k > 0 {
			start = bps[k-1].pos
		}
		if k < nb {
			end = bps[k].pos
		}
		sBefore := 0
		if k > 0 {
			sBefore = shift[k-1]
		}
		appH, appT = appH[:0], appT[:0]
		front := start // old-array index of the piece's current first tuple
		pop := 0       // consumed prefix of the appended queue
		for i := 0; i < m; i++ {
			switch {
			case targets[i] == k:
				appH = append(appH, vals[i])
				appT = append(appT, tails[i])
			case targets[i] < k:
				if front < end {
					appH = append(appH, p.Head[front])
					appT = append(appT, p.Tail[front])
					front++
				} else if pop < len(appH) {
					appH = append(appH, appH[pop])
					appT = append(appT, appT[pop])
					pop++
				}
				// else: the piece is empty; nothing rotates.
			}
		}
		// Surviving originals keep their order, then the appended queue.
		newStart := start + sBefore
		origLen := end - front
		copy(p.Head[newStart:newStart+origLen], p.Head[front:end])
		copy(p.Tail[newStart:newStart+origLen], p.Tail[front:end])
		copy(p.Head[newStart+origLen:end+shift[k]], appH[pop:])
		copy(p.Tail[newStart+origLen:end+shift[k]], appT[pop:])
	}
	k := 0
	p.Idx.Reposition(func(b crackindex.Bound, pos int) int {
		d := shift[k]
		k++
		return pos + d
	})
}

// RippleInsertKeys batch-merges the tuples with the given base keys: head
// values come from headCol, tails from tailCol, or the keys themselves when
// tailCol is nil (key maps). Shared by the sideways and partial replay
// tapes so their insert entries stay byte-identical.
func (p *Pairs) RippleInsertKeys(keys []int, headCol, tailCol *store.Column) {
	vals := make([]Value, len(keys))
	tails := make([]Value, len(keys))
	for i, k := range keys {
		vals[i] = headCol.Vals[k]
		if tailCol != nil {
			tails[i] = tailCol.Vals[k]
		} else {
			tails[i] = Value(k)
		}
	}
	p.RippleInsertBatch(vals, tails)
}

// RippleDelete removes the tuple at position pos by rippling the hole to
// the end of the column: the last tuple of the hole's piece fills the hole,
// every subsequent boundary shifts left by one (its piece donates its last
// tuple to the hole it inherits), and the column shrinks by one. Only one
// tuple per downstream piece moves, versus the full-suffix compaction of
// RemovePositions. This is the per-tuple reference for RippleDeleteBatch.
func (p *Pairs) RippleDelete(pos int) {
	n := len(p.Head)
	type bpos struct {
		b crackindex.Bound
		p int
	}
	var bps []bpos
	p.Idx.Walk(func(b crackindex.Bound, bp int) {
		if bp > pos {
			bps = append(bps, bpos{b, bp})
		}
	})
	hole := pos
	for _, e := range bps {
		last := e.p - 1
		if hole != last {
			p.Head[hole], p.Tail[hole] = p.Head[last], p.Tail[last]
		}
		hole = last
	}
	if hole != n-1 {
		p.Head[hole], p.Tail[hole] = p.Head[n-1], p.Tail[n-1]
	}
	p.Head = p.Head[:n-1]
	p.Tail = p.Tail[:n-1]
	for _, e := range bps {
		p.Idx.Insert(e.b, e.p-1)
	}
}

// RippleDeleteBatch removes the tuples at the given positions (ascending,
// duplicate-free, valid against the current layout) in a single pass: one
// index walk, one fill-from-the-end sweep per affected piece, and one bulk
// boundary shift. It produces exactly the layout that per-tuple
// RippleDelete calls produce when applied from the highest position down
// (the order in which every position stays valid), so replay tapes can use
// either form without breaking alignment determinism. It is the delete-side
// counterpart of RippleInsertBatch.
func (p *Pairs) RippleDeleteBatch(positions []int) {
	m := len(positions)
	if m == 0 {
		return
	}
	if m == 1 {
		p.RippleDelete(positions[0])
		return
	}
	n := len(p.Head)
	type bpos struct {
		b crackindex.Bound
		p int
	}
	var bps []bpos
	p.Idx.Walk(func(b crackindex.Bound, bp int) { bps = append(bps, bpos{b, bp}) })
	nb := len(bps)
	h, t := p.Head, p.Tail
	// Sequential highest-first semantics decompose per piece: a piece first
	// absorbs its own deletions (each hole filled by the piece's current
	// last tuple), then rotates right once per deletion in an earlier piece
	// (it donates its last tuple to the piece below and inherits a slot).
	// "before" counts deletions in earlier pieces; di scans positions.
	di, before := 0, 0
	for k := 0; k <= nb; k++ {
		s, e := 0, n
		if k > 0 {
			s = bps[k-1].p
		}
		if k < nb {
			e = bps[k].p
		}
		ownStart := di
		for di < m && positions[di] < e {
			di++
		}
		own := positions[ownStart:di]
		if before == 0 && len(own) == 0 {
			continue
		}
		end := e
		for i := len(own) - 1; i >= 0; i-- {
			end--
			if d := own[i]; d != end {
				h[d], t[d] = h[end], t[end]
			}
		}
		if before > 0 {
			sz := end - s
			ns := s - before
			if sz > 0 {
				r := before % sz
				copy(h[ns:ns+r], h[end-r:end])
				copy(t[ns:ns+r], t[end-r:end])
				if before >= sz {
					// Every survivor moves: the rotated tail block lands
					// first, then the untouched prefix follows it.
					copy(h[ns+r:ns+sz], h[s:end-r])
					copy(t[ns+r:ns+sz], t[s:end-r])
				}
				// before < sz: only the tail block moved into the front
				// gap; the middle [s, end-r) already sits at its final
				// positions.
			}
		}
		before += len(own)
	}
	p.Head = h[:n-m]
	p.Tail = t[:n-m]
	p.Idx.Reposition(func(b crackindex.Bound, pos int) int {
		return pos - sort.SearchInts(positions, pos)
	})
}

// RemovePositions deletes the tuples at the given positions (ascending,
// duplicate-free) and compacts the arrays, shifting index boundaries left.
func (p *Pairs) RemovePositions(positions []int) {
	if len(positions) == 0 {
		return
	}
	del := 0
	next := 0
	out := 0
	for i := 0; i < len(p.Head); i++ {
		if next < len(positions) && positions[next] == i {
			next++
			del++
			continue
		}
		if out != i {
			p.Head[out], p.Tail[out] = p.Head[i], p.Tail[i]
		}
		out++
	}
	p.Head = p.Head[:out]
	p.Tail = p.Tail[:out]
	// Re-position every boundary: subtract the number of deleted positions
	// before it.
	p.Idx.Reposition(func(b crackindex.Bound, pos int) int {
		return pos - sort.SearchInts(positions, pos)
	})
}

// CheckPieces verifies that every index boundary holds physically: values
// before a boundary are on its left side, values at or after are not.
// Returns false at the first violation. Used by tests and property checks.
func (p *Pairs) CheckPieces() bool {
	ok := true
	p.Idx.Walk(func(b crackindex.Bound, pos int) {
		for i := 0; i < pos && ok; i++ {
			if !onLeft(p.Head[i], b) {
				ok = false
			}
		}
		for i := pos; i < len(p.Head) && ok; i++ {
			if onLeft(p.Head[i], b) {
				ok = false
			}
		}
	})
	return ok
}
