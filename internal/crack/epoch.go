package crack

import (
	"math"
	"sync/atomic"
)

// Epoch is the reclamation clock behind SnapCol's lock-free snapshot reads.
//
// The protocol is epoch-based reclamation with exact per-reader epochs:
//
//   - A reader calls Enter before loading any version pointer and Exit when
//     it is done. Enter publishes the reader's enter-epoch in a claimed
//     slot; the claim is a single CAS, so readers never block — not on
//     writers, not on each other.
//   - A writer that replaces state advances the clock and tags the retired
//     version with the new value. Because the clock is monotone and a
//     reader publishes its slot *before* loading the pointer, any version a
//     reader can still hold was retired at a tag strictly greater than the
//     reader's slot value: either the reader's claim preceded the retire
//     (then tag = clock-at-retire + 1 > slot) or it followed it (then the
//     pointer the reader loads is already the replacement).
//   - A retired version whose tag is below the minimum active slot value is
//     therefore unreachable from every live reader and safe to reclaim.
//
// When every slot is taken, Enter falls back to an overflow counter that
// blocks all reclamation until the overflow readers exit — strictly
// conservative, never unsafe. The slot array is sized so that overflow
// requires more simultaneous pinned readers than any sane GOMAXPROCS.
//
// One Epoch is shared by all columns of an engine: readers pin once per
// query, writers advance once per publish, and each column keeps its own
// limbo list tagged against the shared clock.
type Epoch struct {
	clock    atomic.Uint64
	probe    atomic.Uint64 // rotating start index for slot claims
	overflow atomic.Int64  // readers pinned without a slot (blocks reclaim)
	slots    [epochSlots]atomic.Uint64
}

// epochSlots bounds the number of simultaneously pinned readers that keep
// exact epochs; further readers spill to the overflow counter.
const epochSlots = 128

// NewEpoch returns an epoch clock starting at 1 (slot value 0 means free).
func NewEpoch() *Epoch {
	e := &Epoch{}
	e.clock.Store(1)
	return e
}

// Pin is an active reader registration; pass it to Exit.
type Pin struct{ slot int32 }

// Enter registers the calling goroutine as an active reader and must be
// called before loading a version pointer. It never blocks.
func (e *Epoch) Enter() Pin {
	ep := e.clock.Load()
	start := int(e.probe.Add(1))
	for k := 0; k < epochSlots; k++ {
		i := (start + k) % epochSlots
		if e.slots[i].CompareAndSwap(0, ep) {
			return Pin{slot: int32(i)}
		}
	}
	// Every slot taken: fall back to the overflow counter, which defers
	// all reclamation until the overflow drains. Safe, just conservative.
	e.overflow.Add(1)
	return Pin{slot: -1}
}

// Exit releases a Pin obtained from Enter.
func (e *Epoch) Exit(p Pin) {
	if p.slot < 0 {
		e.overflow.Add(-1)
		return
	}
	e.slots[p.slot].Store(0)
}

// Advance bumps the epoch clock and returns the new value — the retire tag
// for state replaced by the publish that triggered the advance.
func (e *Epoch) Advance() uint64 { return e.clock.Add(1) }

// Now returns the current epoch clock value.
func (e *Epoch) Now() uint64 { return e.clock.Load() }

// MinActive returns the smallest enter-epoch among active readers:
// math.MaxUint64 when no reader is pinned (everything retired may be
// reclaimed), 0 while the overflow path is in use (nothing may be).
func (e *Epoch) MinActive() uint64 {
	if e.overflow.Load() != 0 {
		return 0
	}
	min := uint64(math.MaxUint64)
	for i := range e.slots {
		if v := e.slots[i].Load(); v != 0 && v < min {
			min = v
		}
	}
	return min
}

// Active returns the number of currently pinned readers (slots + overflow);
// a monitoring/test helper, inherently racy.
func (e *Epoch) Active() int {
	n := int(e.overflow.Load())
	for i := range e.slots {
		if e.slots[i].Load() != 0 {
			n++
		}
	}
	return n
}
