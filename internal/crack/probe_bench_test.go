package crack

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"crackstore/internal/store"
)

// Benchmarks for the read-only fast path of the two-phase protocol: a
// probe-hit answers a warm predicate entirely under a shared lock
// (SelectRO), while a probe-miss falls back to the exclusive cracking path
// (Select). Goroutine counts 1/4/16 show how the shared-lock path scales
// with available cores while the miss path serializes.

func warmCol(n, pool int) (*Col, []store.Pred) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]Value, n)
	for i := range vals {
		vals[i] = rng.Int63n(int64(n))
	}
	c := NewCol(store.NewColumn("A", vals))
	preds := make([]store.Pred, pool)
	for i := range preds {
		lo := rng.Int63n(int64(n - n/100))
		preds[i] = store.Range(lo, lo+int64(n/1000)+1)
		c.Select(preds[i])
	}
	return c, preds
}

func BenchmarkProbeHit(b *testing.B) {
	for _, gor := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gor), func(b *testing.B) {
			c, preds := warmCol(100_000, 64)
			var mu sync.RWMutex
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / gor
			for g := 0; g < gor; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						mu.RLock()
						keys, ok := c.SelectRO(preds[(g+i)%len(preds)])
						mu.RUnlock()
						if !ok || len(keys) == 0 {
							panic("probe-hit benchmark missed")
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func BenchmarkProbeMiss(b *testing.B) {
	for _, gor := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gor), func(b *testing.B) {
			// A huge value domain keeps every generated predicate cold, so
			// each query misses the probe and pays the exclusive crack.
			const n = 100_000
			rng := rand.New(rand.NewSource(9))
			vals := make([]Value, n)
			for i := range vals {
				vals[i] = rng.Int63n(1 << 40)
			}
			c := NewCol(store.NewColumn("A", vals))
			var mu sync.RWMutex
			var seq int64
			var seqMu sync.Mutex
			next := func() store.Pred {
				seqMu.Lock()
				seq++
				lo := seq * 997 // distinct, never-repeating ranges
				seqMu.Unlock()
				return store.Range(lo<<20, lo<<20+1<<18)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / gor
			for g := 0; g < gor; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						pred := next()
						mu.RLock()
						_, ok := c.SelectRO(pred)
						mu.RUnlock()
						if ok {
							continue // unexpectedly warm; nothing to crack
						}
						mu.Lock()
						c.Select(pred)
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
		})
	}
}
