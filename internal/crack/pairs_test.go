package crack

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crackstore/internal/store"
)

func randPairs(rng *rand.Rand, n int, domain int64) *Pairs {
	head := make([]Value, n)
	tail := make([]Value, n)
	for i := range head {
		head[i] = Value(rng.Int63n(domain))
		tail[i] = Value(i) // tail identifies the original tuple
	}
	return WrapPairs(head, tail)
}

func randPred(rng *rand.Rand, domain int64) store.Pred {
	lo := rng.Int63n(domain)
	hi := lo + rng.Int63n(domain-lo+1)
	return store.Pred{Lo: lo, Hi: hi, LoIncl: rng.Intn(2) == 0, HiIncl: rng.Intn(2) == 0}
}

// multiset of (head,tail) pairs for content-preservation checks.
func pairSet(p *Pairs) map[[2]Value]int {
	m := map[[2]Value]int{}
	for i := range p.Head {
		m[[2]Value{p.Head[i], p.Tail[i]}]++
	}
	return m
}

func equalSets(a, b map[[2]Value]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestCrackRangeClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := randPairs(rng, 1000, 100)
	before := pairSet(p)
	pred := store.Open(20, 60)
	lo, hi := p.CrackRange(pred)
	// Every tuple inside [lo,hi) matches; none outside does.
	for i := 0; i < p.Len(); i++ {
		in := i >= lo && i < hi
		if pred.Matches(p.Head[i]) != in {
			t.Fatalf("position %d (val %d): inArea=%v matches=%v",
				i, p.Head[i], in, pred.Matches(p.Head[i]))
		}
	}
	if !equalSets(before, pairSet(p)) {
		t.Fatal("cracking changed the tuple multiset")
	}
	if !p.CheckPieces() {
		t.Fatal("piece invariant violated")
	}
}

func TestCrackRangeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randPairs(rng, 500, 50)
	pred := store.Range(10, 30)
	lo1, hi1 := p.CrackRange(pred)
	headCopy := append([]Value(nil), p.Head...)
	lo2, hi2 := p.CrackRange(pred)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("second crack moved area: (%d,%d) vs (%d,%d)", lo1, hi1, lo2, hi2)
	}
	for i := range headCopy {
		if p.Head[i] != headCopy[i] {
			t.Fatal("second crack physically reorganized data")
		}
	}
}

func TestCrackEmptyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randPairs(rng, 200, 50)
	lo, hi := p.CrackRange(store.Open(25, 25)) // 25 < v < 25: empty
	if lo != hi {
		t.Fatalf("empty predicate returned non-empty area [%d,%d)", lo, hi)
	}
	if !p.CheckPieces() {
		t.Fatal("piece invariant violated")
	}
}

func TestPointPredicate(t *testing.T) {
	p := WrapPairs(
		[]Value{5, 3, 7, 5, 1, 5, 9},
		[]Value{0, 1, 2, 3, 4, 5, 6},
	)
	lo, hi := p.CrackRange(store.Point(5))
	if hi-lo != 3 {
		t.Fatalf("point select found %d tuples, want 3", hi-lo)
	}
	for i := lo; i < hi; i++ {
		if p.Head[i] != 5 {
			t.Fatalf("non-matching value %d in point area", p.Head[i])
		}
	}
}

// Determinism is the invariant underlying adaptive alignment (Section 3.2):
// two pairs with identical initial contents that replay the same predicate
// sequence must be bit-identical afterwards — including tail order.
func TestQuickCrackDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(300)
		head := make([]Value, n)
		for i := range head {
			head[i] = Value(rng.Int63n(100))
		}
		tailA := make([]Value, n)
		tailB := make([]Value, n)
		for i := range tailA {
			tailA[i] = Value(i)
			tailB[i] = Value(i)
		}
		a := WrapPairs(append([]Value(nil), head...), tailA)
		b := WrapPairs(append([]Value(nil), head...), tailB)
		for q := 0; q < 15; q++ {
			pred := randPred(rng, 100)
			a.CrackRange(pred)
			b.CrackRange(pred)
		}
		for i := 0; i < n; i++ {
			if a.Head[i] != b.Head[i] || a.Tail[i] != b.Tail[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after any crack sequence, every index boundary physically holds
// and the tuple multiset is unchanged.
func TestQuickCrackInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPairs(rng, 300, 64)
		before := pairSet(p)
		for q := 0; q < 20; q++ {
			pred := randPred(rng, 64)
			lo, hi := p.CrackRange(pred)
			for i := lo; i < hi; i++ {
				if !pred.Matches(p.Head[i]) {
					return false
				}
			}
		}
		return p.CheckPieces() && equalSets(before, pairSet(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRippleInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randPairs(rng, 300, 50)
	// Crack a few times to create pieces.
	p.CrackRange(store.Open(10, 20))
	p.CrackRange(store.Open(30, 40))
	n := p.Len()
	p.RippleInsert(15, 999)
	if p.Len() != n+1 {
		t.Fatalf("Len = %d, want %d", p.Len(), n+1)
	}
	if !p.CheckPieces() {
		t.Fatal("piece invariant violated after insert")
	}
	// The inserted pair must exist.
	found := false
	for i := range p.Head {
		if p.Head[i] == 15 && p.Tail[i] == 999 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted tuple lost")
	}
	// Selecting its range must include it without recracking issues.
	lo, hi := p.CrackRange(store.Open(10, 20))
	ok := false
	for i := lo; i < hi; i++ {
		if p.Tail[i] == 999 {
			ok = true
		}
	}
	if !ok {
		t.Fatal("inserted tuple not visible to select")
	}
}

// Property: ripple inserts keep piece invariants and preserve prior tuples.
func TestQuickRippleInsert(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPairs(rng, 200, 50)
		for q := 0; q < 5; q++ {
			p.CrackRange(randPred(rng, 50))
		}
		before := pairSet(p)
		inserted := map[[2]Value]int{}
		for k := 0; k < 30; k++ {
			v := Value(rng.Int63n(50))
			tl := Value(1000 + k)
			p.RippleInsert(v, tl)
			inserted[[2]Value{v, tl}]++
		}
		if !p.CheckPieces() {
			return false
		}
		after := pairSet(p)
		for k, c := range before {
			if after[k] < c {
				return false
			}
		}
		for k, c := range inserted {
			if after[k] < c {
				return false
			}
		}
		return p.Len() == 230
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemovePositions(t *testing.T) {
	p := WrapPairs(
		[]Value{1, 2, 3, 4, 5, 6, 7, 8},
		[]Value{0, 1, 2, 3, 4, 5, 6, 7},
	)
	p.CrackRange(store.Range(3, 6)) // creates boundaries
	// Find positions of values 3 and 7 and remove them.
	var dead []int
	for i, v := range p.Head {
		if v == 3 || v == 7 {
			dead = append(dead, i)
		}
	}
	sort.Ints(dead)
	p.RemovePositions(dead)
	if p.Len() != 6 {
		t.Fatalf("Len = %d, want 6", p.Len())
	}
	if !p.CheckPieces() {
		t.Fatal("piece invariant violated after remove")
	}
	for _, v := range p.Head {
		if v == 3 || v == 7 {
			t.Fatal("removed value still present")
		}
	}
	// A further crack must still work correctly.
	lo, hi := p.CrackRange(store.Range(4, 9))
	if hi-lo != 4 { // 4,5,6,8
		t.Fatalf("post-remove crack area = %d, want 4", hi-lo)
	}
}

func BenchmarkCrackRangeFirstQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	head := make([]Value, 1<<18)
	tail := make([]Value, 1<<18)
	for i := range head {
		head[i] = Value(rng.Int63n(1 << 18))
		tail[i] = Value(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := append([]Value(nil), head...)
		tl := append([]Value(nil), tail...)
		p := WrapPairs(h, tl)
		b.StartTimer()
		p.CrackRange(store.Range(1000, 1<<17))
	}
}

func BenchmarkCrackRangeConverged(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	head := make([]Value, 1<<18)
	tail := make([]Value, 1<<18)
	for i := range head {
		head[i] = Value(rng.Int63n(1 << 18))
		tail[i] = Value(i)
	}
	p := WrapPairs(head, tail)
	for q := 0; q < 1000; q++ {
		lo := rng.Int63n(1 << 18)
		p.CrackRange(store.Range(lo, lo+(1<<15)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(1 << 18)
		p.CrackRange(store.Range(lo, lo+(1<<15)))
	}
}

// Property: the self-organizing histogram (index Estimate) always brackets
// the true result size, and is exact once the predicate's bounds have been
// cracked.
func TestQuickEstimateBracketsTruth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPairs(rng, 400, 200)
		for q := 0; q < 10; q++ {
			p.CrackRange(randPred(rng, 200))
		}
		for q := 0; q < 20; q++ {
			pred := randPred(rng, 200)
			truth := 0
			for _, v := range p.Head {
				if pred.Matches(v) {
					truth++
				}
			}
			min, max, est := p.Idx.Estimate(pred.LowerBound(), pred.UpperBound(), p.Len())
			if !(min <= truth && truth <= max && min <= est && est <= max) {
				return false
			}
			// After cracking this predicate, the estimate must be exact.
			lo, hi := p.CrackRange(pred)
			_, _, est2 := p.Idx.Estimate(pred.LowerBound(), pred.UpperBound(), p.Len())
			if est2 != hi-lo || est2 != truth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
