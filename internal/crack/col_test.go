package crack

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crackstore/internal/store"
)

// model is a naive reference implementation: key -> value, mutated eagerly.
type model struct {
	vals map[int]Value
}

func (m *model) selectKeys(pred store.Pred) []int {
	var out []int
	for k, v := range m.vals {
		if pred.Matches(v) {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

func sortedKeys(view []Value) []int {
	out := make([]int, len(view))
	for i, k := range view {
		out[i] = int(k)
	}
	sort.Ints(out)
	return out
}

func TestColSelectMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 1000
	vals := make([]Value, n)
	for i := range vals {
		vals[i] = Value(rng.Int63n(500))
	}
	base := store.NewColumn("A", vals)
	c := NewCol(base)
	m := &model{vals: map[int]Value{}}
	for i, v := range vals {
		m.vals[i] = v
	}
	for q := 0; q < 50; q++ {
		pred := randPred(rng, 500)
		got := sortedKeys(c.Select(pred))
		want := m.selectKeys(pred)
		if len(got) != len(want) {
			t.Fatalf("query %d %v: got %d keys, want %d", q, pred, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d %v: key mismatch at %d: %d vs %d", q, pred, i, got[i], want[i])
			}
		}
	}
}

func TestColInsertVisibleAfterMerge(t *testing.T) {
	base := store.NewColumn("A", []Value{10, 20, 30})
	c := NewCol(base)
	c.Insert(3, 25)
	if c.PendingInsertions() != 1 {
		t.Fatalf("pending = %d", c.PendingInsertions())
	}
	// A query not touching value 25 must not merge it.
	c.Select(store.Range(100, 200))
	if c.PendingInsertions() != 1 {
		t.Fatal("insert merged by unrelated query")
	}
	// A query touching it must merge and return it.
	keys := sortedKeys(c.Select(store.Range(20, 30)))
	if c.PendingInsertions() != 0 {
		t.Fatal("insert not merged")
	}
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 3 {
		t.Fatalf("keys = %v, want [1 3]", keys)
	}
}

func TestColDeleteHidesTuple(t *testing.T) {
	base := store.NewColumn("A", []Value{10, 20, 30, 20})
	c := NewCol(base)
	c.Delete(1)
	keys := sortedKeys(c.Select(store.Point(20)))
	if len(keys) != 1 || keys[0] != 3 {
		t.Fatalf("keys = %v, want [3]", keys)
	}
	if c.PendingDeletions() != 0 {
		t.Fatal("delete not merged by covering query")
	}
}

func TestColDeleteCancelsPendingInsert(t *testing.T) {
	base := store.NewColumn("A", []Value{10})
	c := NewCol(base)
	c.Insert(1, 50)
	c.Delete(1)
	if c.PendingInsertions() != 0 || c.PendingDeletions() != 0 {
		t.Fatal("delete of pending insert should cancel both")
	}
	if got := c.Select(store.Point(50)); len(got) != 0 {
		t.Fatalf("cancelled tuple visible: %v", got)
	}
}

func TestColUpdateAsDeletePlusInsert(t *testing.T) {
	// An update is modeled as delete(old key) + insert(fresh key), per
	// Section 3.5 ("an update is merely translated into a deletion and an
	// insertion").
	base := store.NewColumn("A", []Value{10, 20})
	c := NewCol(base)
	c.Delete(0)
	c.Insert(2, 99)
	keys := sortedKeys(c.Select(store.Range(0, 1000)))
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 2 {
		t.Fatalf("keys = %v, want [1 2]", keys)
	}
}

// Property: under random interleaved queries/inserts/deletes, Select always
// agrees with an eager reference model.
func TestQuickColModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = Value(rng.Int63n(100))
		}
		c := NewCol(store.NewColumn("A", vals))
		m := &model{vals: map[int]Value{}}
		for i, v := range vals {
			m.vals[i] = v
		}
		nextKey := n
		live := make([]int, n)
		for i := range live {
			live[i] = i
		}
		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0: // insert
				v := Value(rng.Int63n(100))
				c.Insert(nextKey, v)
				m.vals[nextKey] = v
				live = append(live, nextKey)
				nextKey++
			case 1: // delete a random live key
				if len(live) > 0 {
					i := rng.Intn(len(live))
					k := live[i]
					live = append(live[:i], live[i+1:]...)
					c.Delete(k)
					delete(m.vals, k)
				}
			default: // query
				pred := randPred(rng, 100)
				got := sortedKeys(c.Select(pred))
				want := m.selectKeys(pred)
				if len(got) != len(want) {
					return false
				}
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
				if !c.P.CheckPieces() {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRelSelect(t *testing.T) {
	base := store.NewColumn("B", []Value{5, 15, 25, 35, 45})
	keys := []Value{4, 0, 2}
	got := RelSelect(keys, base, store.Range(20, 50))
	if len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Fatalf("RelSelect = %v, want [4 2]", got)
	}
}

func BenchmarkColSelectSequence(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]Value, 1<<17)
	for i := range vals {
		vals[i] = Value(rng.Int63n(1 << 17))
	}
	base := store.NewColumn("A", vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := NewCol(base)
		b.StartTimer()
		for q := 0; q < 100; q++ {
			lo := rng.Int63n(1 << 17)
			c.Select(store.Range(lo, lo+(1<<14)))
		}
	}
}
