package crack

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"crackstore/internal/store"
)

// newTestSnapCol builds a SnapCol plus its reference model over n uniform
// values in [0, domain).
func newTestSnapCol(rng *rand.Rand, n int, domain int64) (*SnapCol, *Epoch, *model) {
	vals := make([]Value, n)
	for i := range vals {
		vals[i] = Value(rng.Int63n(domain))
	}
	ep := NewEpoch()
	c := NewSnapCol(store.NewColumn("A", vals), Policy{}, ep, nil)
	m := &model{vals: map[int]Value{}}
	for i, v := range vals {
		m.vals[i] = v
	}
	return c, ep, m
}

// gatherAll answers pred through the snapshot read path, falling back to the
// writer path exactly like the engine does.
func snapSelect(c *SnapCol, ep *Epoch, pred store.Pred) []Value {
	if keys, ok := func() ([]Value, bool) {
		pin := ep.Enter()
		defer ep.Exit(pin)
		return c.GatherRO(pred, nil)
	}(); ok {
		return keys
	}
	return c.Select(pred)
}

func TestSnapColModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const domain = 500
	c, ep, m := newTestSnapCol(rng, 1000, domain)
	nextKey := 1000
	for q := 0; q < 400; q++ {
		switch rng.Intn(10) {
		case 0: // insert
			v := Value(rng.Int63n(domain))
			c.Insert(nextKey, v)
			m.vals[nextKey] = v
			nextKey++
		case 1: // delete a random live key
			for k := range m.vals {
				c.Delete(k)
				delete(m.vals, k)
				break
			}
		default:
			pred := randPred(rng, domain)
			got := sortedKeys(snapSelect(c, ep, pred))
			want := m.selectKeys(pred)
			if len(got) != len(want) {
				t.Fatalf("query %d %v: got %d keys, want %d", q, pred, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("query %d %v: key mismatch at %d: %d vs %d", q, pred, i, got[i], want[i])
				}
			}
		}
		if !c.CheckVersion() {
			t.Fatalf("op %d: version violates the piece invariant", q)
		}
	}
	if c.Pieces() < 2 {
		t.Fatalf("workload never cracked: %d pieces", c.Pieces())
	}
}

func TestSnapColGatherROAppliesPending(t *testing.T) {
	ep := NewEpoch()
	c := NewSnapCol(store.NewColumn("A", []Value{10, 20, 30, 40}), Policy{}, ep, nil)
	pred := store.Range(15, 45)
	c.Select(pred) // establish the cuts
	c.Insert(4, 25)
	c.Delete(1) // key 1 (value 20) is materialized: a pending deletion
	keys, ok := func() ([]Value, bool) {
		pin := ep.Enter()
		defer ep.Exit(pin)
		return c.GatherRO(pred, nil)
	}()
	if !ok {
		t.Fatal("GatherRO refused a cracked predicate")
	}
	got := sortedKeys(keys)
	want := []int{2, 3, 4} // 30, 40, and the pending 25; 20 deleted
	if len(got) != len(want) {
		t.Fatalf("got keys %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got keys %v, want %v", got, want)
		}
	}
}

func TestSnapColFromColPreservesWarmState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vals := make([]Value, 2000)
	for i := range vals {
		vals[i] = Value(rng.Int63n(1000))
	}
	col := NewCol(store.NewColumn("A", vals))
	m := &model{vals: map[int]Value{}}
	for i, v := range vals {
		m.vals[i] = v
	}
	// Warm the column and leave pending updates unmerged.
	for q := 0; q < 20; q++ {
		col.Select(randPred(rng, 1000))
	}
	col.Insert(2000, 555)
	m.vals[2000] = 555
	col.Delete(7)
	delete(m.vals, 7)

	ep := NewEpoch()
	sc := SnapColFromCol(col, ep)
	if sc.Pieces() < 2 {
		t.Fatalf("conversion dropped the cracked layout: %d pieces", sc.Pieces())
	}
	if !sc.CheckVersion() {
		t.Fatal("converted version violates the piece invariant")
	}
	for q := 0; q < 50; q++ {
		pred := randPred(rng, 1000)
		got := sortedKeys(snapSelect(sc, ep, pred))
		want := m.selectKeys(pred)
		if len(got) != len(want) {
			t.Fatalf("query %d %v: got %d keys, want %d", q, pred, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d %v: key mismatch at %d", q, pred, i)
			}
		}
	}
}

func TestEpochProtocol(t *testing.T) {
	ep := NewEpoch()
	if ep.MinActive() == 0 {
		t.Fatal("no readers: MinActive must not block reclamation")
	}
	// The pinned window runs in its own scope: the deferred Exit marks
	// exactly where the reader departs.
	tag := func() uint64 {
		p1 := ep.Enter()
		defer ep.Exit(p1)
		e1 := ep.Now()
		tag := ep.Advance() // something retired after p1 entered
		if tag <= e1 {
			t.Fatalf("advance did not move the clock: tag %d, enter epoch %d", tag, e1)
		}
		if min := ep.MinActive(); min > e1 {
			t.Fatalf("pinned reader invisible: MinActive %d > enter epoch %d", min, e1)
		}
		// The retired tag must NOT be reclaimable while p1 is pinned.
		if tag < ep.MinActive() {
			t.Fatal("retired state reclaimable under a live pin")
		}
		return tag
	}()
	if tag >= ep.MinActive() {
		t.Fatal("retired state still held back after the only reader exited")
	}
}

func TestEpochOverflow(t *testing.T) {
	ep := NewEpoch()
	pins := make([]Pin, 0, epochSlots+3)
	for i := 0; i < epochSlots+3; i++ {
		//crackvet:ignore epochpin the overflow test must accumulate pins to exhaust the slot array
		pins = append(pins, ep.Enter())
	}
	overflowed := 0
	for _, p := range pins {
		if p.slot < 0 {
			overflowed++
		}
	}
	if overflowed != 3 {
		t.Fatalf("expected 3 overflow pins, got %d", overflowed)
	}
	if ep.MinActive() != 0 {
		t.Fatal("overflow pins must block all reclamation")
	}
	if got := ep.Active(); got != epochSlots+3 {
		t.Fatalf("Active = %d, want %d", got, epochSlots+3)
	}
	for _, p := range pins {
		ep.Exit(p)
	}
	if ep.MinActive() == 0 {
		t.Fatal("reclamation still blocked after all pins exited")
	}
}

func TestSnapColReclaimWaitsForReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c, ep, _ := newTestSnapCol(rng, 1000, 1000)

	// Writer replaces state while a reader is pinned: retired pieces must
	// stay in limbo. The pinned window is its own scope so the deferred
	// Exit marks exactly where the reader departs.
	func() {
		pin := ep.Enter()
		defer ep.Exit(pin)
		c.Select(store.Range(100, 200))
		c.Select(store.Range(300, 400))
		if st := c.Stats(); st.Limbo == 0 {
			t.Fatal("retired versions reclaimed under a live pin")
		}
	}()
	// The next publish reclaims everything the departed reader held back.
	c.Select(store.Range(500, 600))
	st := c.Stats()
	if st.Limbo > 1 { // only the newest retirement may still be pending
		t.Fatalf("limbo backlog after readers left: %+v", st)
	}
	if st.Reclaimed == 0 {
		t.Fatal("nothing reclaimed after readers left")
	}
}

// TestSnapColPoisonCatchesUseAfterReclaim demonstrates the Poison harness:
// a pinned reader's loaded version is never poisoned, while an unpinned
// (buggy) reader holding stale state would observe poisonValue.
func TestSnapColPoisonCatchesUseAfterReclaim(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	c, ep, _ := newTestSnapCol(rng, 1000, 1000)
	c.Poison = true

	// Correct reader: pins, loads, is never corrupted.
	func() {
		pin := ep.Enter()
		defer ep.Exit(pin)
		v := c.cur.Load()
		c.Select(store.Range(100, 900)) // cracks: retires the single piece
		for _, pc := range v.pieces {
			for _, val := range pc.head {
				if val == poisonValue {
					t.Fatal("pinned reader's version was poisoned")
				}
			}
		}
	}()

	// Buggy reader: holds version state without a pin. After the next
	// publish its memory is fair game and the poison must land.
	stale := c.cur.Load()
	c.Select(store.Range(200, 300))
	c.Select(store.Range(400, 500))
	poisoned := false
	for _, pc := range stale.pieces {
		for _, val := range pc.head {
			if val == poisonValue {
				poisoned = true
			}
		}
	}
	if !poisoned {
		t.Fatal("unpinned stale version escaped poisoning (reclaim not exercised)")
	}
}

// TestSnapColConcurrentReaders hammers one SnapCol with lock-free readers
// while a serialized writer cracks and mutates continuously. Run with -race.
func TestSnapColConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const domain = 2000
	c, ep, _ := newTestSnapCol(rng, 4000, domain)
	c.Poison = true // make premature reclamation corrupt answers observably

	var stop atomic.Bool
	var mu sync.Mutex // the writer serialization SnapCol requires
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				pred := randPred(rng, domain)
				// One pinned read per iteration: the closure scope keeps
				// the defer per-iteration rather than per-goroutine.
				if !func() bool {
					pin := ep.Enter()
					defer ep.Exit(pin)
					keys, ok := c.GatherRO(pred, nil)
					if !ok {
						return true
					}
					// Touch every key while pinned; poisoned answers would
					// surface as impossible key values.
					for _, k := range keys {
						if k == poisonValue {
							t.Error("reader observed a poisoned key: premature reclaim")
							return false
						}
					}
					return true
				}() {
					return
				}
			}
		}(int64(100 + r))
	}
	writerRng := rand.New(rand.NewSource(42))
	nextKey := 4000
	for i := 0; i < 300; i++ {
		mu.Lock()
		switch writerRng.Intn(4) {
		case 0:
			c.Insert(nextKey, Value(writerRng.Int63n(domain)))
			nextKey++
		case 1:
			c.Delete(writerRng.Intn(nextKey))
		default:
			c.Select(randPred(writerRng, domain))
		}
		mu.Unlock()
	}
	stop.Store(true)
	wg.Wait()
	if !c.CheckVersion() {
		t.Fatal("final version violates the piece invariant")
	}
	st := c.Stats()
	if st.Published == 0 || st.Reclaimed == 0 {
		t.Fatalf("run exercised nothing: %+v", st)
	}
}
