package crack

import (
	"math/rand"
	"sort"
	"testing"

	"crackstore/internal/store"
)

// FuzzPolicyKernels is the combined equivalence fuzz target for the
// adaptive policies and the predicated kernels. For every fuzzer-chosen
// predicate sequence it drives six structures over the same data — each
// policy (Default, Stochastic, Capped) under both the predicated and the
// branchy kernel — and checks:
//
//   - answer equivalence: every policy returns exactly the Default
//     policy's qualifying key set for every query (layouts may differ
//     across policies);
//   - kernel equivalence: at a fixed policy, the branchy and predicated
//     kernels produce bit-identical layouts, identical boundaries, and
//     identical kernel stats;
//   - invariants: piece boundaries hold physically and the tuple multiset
//     never changes.
func FuzzPolicyKernels(f *testing.F) {
	f.Add(int64(1), []byte{10, 40, 5, 60, 20, 20})
	f.Add(int64(4), []byte{0, 127, 64, 65, 1, 126})
	f.Add(int64(7), []byte{3, 3, 3, 3, 90, 100})
	f.Add(int64(12), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, preds []byte) {
		rng := rand.New(rand.NewSource(seed))
		base := randPairs(rng, 512, 128)
		before := pairSet(base)
		policies := []Policy{
			{},
			{Kind: Stochastic, Cap: 32, Seed: uint64(seed)},
			{Kind: Capped, Cap: 32},
		}
		mk := func(pol Policy, branchy bool) *Pairs {
			p := WrapPairs(append([]Value(nil), base.Head...), append([]Value(nil), base.Tail...))
			p.Policy = pol
			p.Branchy = branchy
			return p
		}
		pred := make([]*Pairs, len(policies))
		bran := make([]*Pairs, len(policies))
		for i, pol := range policies {
			pred[i] = mk(pol, false)
			bran[i] = mk(pol, true)
		}
		for i := 0; i+1 < len(preds) && i < 40; i += 2 {
			lo, hi := int64(preds[i])%128, int64(preds[i+1])%128
			if lo > hi {
				lo, hi = hi, lo
			}
			q := store.Pred{Lo: lo, Hi: hi, LoIncl: preds[i]%2 == 0, HiIncl: preds[i+1]%2 == 0}
			var want []Value
			for k := range policies {
				plo, phi := pred[k].CrackRange(q)
				blo, bhi := bran[k].CrackRange(q)
				if plo != blo || phi != bhi {
					t.Fatalf("policy %v: area (%d,%d) pred vs (%d,%d) branchy",
						policies[k].Kind, plo, phi, blo, bhi)
				}
				keys := append([]Value(nil), pred[k].Tail[plo:phi]...)
				sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
				if k == 0 {
					want = keys
				} else {
					if len(keys) != len(want) {
						t.Fatalf("policy %v: %d keys, default %d for %v",
							policies[k].Kind, len(keys), len(want), q)
					}
					for x := range keys {
						if keys[x] != want[x] {
							t.Fatalf("policy %v: key set diverged from default for %v",
								policies[k].Kind, q)
						}
					}
				}
			}
		}
		for k := range policies {
			a, b := pred[k], bran[k]
			if a.Stats != b.Stats {
				t.Fatalf("policy %v: kernel stats diverged: %+v vs %+v",
					policies[k].Kind, a.Stats, b.Stats)
			}
			for i := 0; i < a.Len(); i++ {
				if a.Head[i] != b.Head[i] || a.Tail[i] != b.Tail[i] {
					t.Fatalf("policy %v: branchy vs predicated layout diverged at %d",
						policies[k].Kind, i)
				}
			}
			if !sameBoundaries(a, b) {
				t.Fatalf("policy %v: boundaries diverged", policies[k].Kind)
			}
			if !a.CheckPieces() || !b.CheckPieces() {
				t.Fatalf("policy %v: piece invariant violated", policies[k].Kind)
			}
			if !equalSets(before, pairSet(a)) {
				t.Fatalf("policy %v: tuple multiset changed", policies[k].Kind)
			}
		}
	})
}
