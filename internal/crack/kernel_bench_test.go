package crack

import (
	"math/rand"
	"testing"

	"crackstore/internal/crackindex"
	"crackstore/internal/store"
)

// benchColumn builds a cold 2^18-tuple column for the cold-start kernel
// benchmarks (same shape as BenchmarkCrackRangeFirstQuery).
func benchColumn() ([]Value, []Value) {
	rng := rand.New(rand.NewSource(1))
	head := make([]Value, 1<<18)
	tail := make([]Value, 1<<18)
	for i := range head {
		head[i] = Value(rng.Int63n(1 << 18))
		tail[i] = Value(i)
	}
	return head, tail
}

// BenchmarkCrackInTwo measures the seed kernel on a cold column: two
// independent crack-in-two passes, one per predicate bound.
func BenchmarkCrackInTwo(b *testing.B) {
	head, tail := benchColumn()
	pred := store.Range(1000, 1<<17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := WrapPairs(append([]Value(nil), head...), append([]Value(nil), tail...))
		b.StartTimer()
		p.CrackBound(pred.LowerBound())
		p.CrackBound(pred.UpperBound())
	}
}

// BenchmarkCrackInThree measures the single-pass kernel on the same cold
// column and predicate.
func BenchmarkCrackInThree(b *testing.B) {
	head, tail := benchColumn()
	pred := store.Range(1000, 1<<17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := WrapPairs(append([]Value(nil), head...), append([]Value(nil), tail...))
		b.StartTimer()
		p.CrackRange(pred)
	}
}

// benchCrackInTwoKernel measures the crack-in-two inner loop alone on a
// cold random column (the worst case for branch prediction: every tuple's
// side is a coin flip).
func benchCrackInTwoKernel(b *testing.B, branchy bool) {
	head, tail := benchColumn()
	pred := store.Range(1000, 1<<17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := WrapPairs(append([]Value(nil), head...), append([]Value(nil), tail...))
		p.Branchy = branchy
		b.StartTimer()
		p.CrackBound(pred.LowerBound())
		p.CrackBound(pred.UpperBound())
	}
}

// BenchmarkCrackInTwoPredicated is the branch-free predicated default.
func BenchmarkCrackInTwoPredicated(b *testing.B) { benchCrackInTwoKernel(b, false) }

// BenchmarkCrackInTwoBranchyRef is the branchy two-pointer reference.
func BenchmarkCrackInTwoBranchyRef(b *testing.B) { benchCrackInTwoKernel(b, true) }

// benchCrackInThreeKernel measures the fused crack-in-three on the same
// cold random column.
func benchCrackInThreeKernel(b *testing.B, branchy bool) {
	head, tail := benchColumn()
	pred := store.Range(1000, 1<<17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := WrapPairs(append([]Value(nil), head...), append([]Value(nil), tail...))
		p.Branchy = branchy
		b.StartTimer()
		p.CrackRange(pred)
	}
}

// BenchmarkCrackInThreePredicated is the branch-free predicated default.
func BenchmarkCrackInThreePredicated(b *testing.B) { benchCrackInThreeKernel(b, false) }

// BenchmarkCrackInThreeBranchyRef is the branchy reference.
func BenchmarkCrackInThreeBranchyRef(b *testing.B) { benchCrackInThreeKernel(b, true) }

// benchCrackedPairs returns a 2^16-tuple column cracked into ~512 pieces,
// plus a batch of pending inserts spread over the domain.
func benchCrackedPairs(batch int) (*Pairs, []Value, []Value) {
	rng := rand.New(rand.NewSource(2))
	const n = 1 << 16
	head := make([]Value, n)
	tail := make([]Value, n)
	for i := range head {
		head[i] = Value(rng.Int63n(n))
		tail[i] = Value(i)
	}
	p := WrapPairs(head, tail)
	for q := 0; q < 512; q++ {
		lo := rng.Int63n(n)
		p.CrackRange(store.Range(lo, lo+(n>>6)))
	}
	vals := make([]Value, batch)
	tails := make([]Value, batch)
	for i := range vals {
		vals[i] = Value(rng.Int63n(n))
		tails[i] = Value(n + i)
	}
	return p, vals, tails
}

// BenchmarkRippleInsertSequential merges a 256-tuple pending batch with one
// RippleInsert walk-and-shift per tuple (the seed update path).
func BenchmarkRippleInsertSequential(b *testing.B) {
	base, vals, tails := benchCrackedPairs(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := WrapPairs(append([]Value(nil), base.Head...), append([]Value(nil), base.Tail...))
		base.Idx.Walk(func(bd crackindex.Bound, pos int) { p.Idx.Insert(bd, pos) })
		b.StartTimer()
		for j := range vals {
			p.RippleInsert(vals[j], tails[j])
		}
	}
}

// BenchmarkRippleInsertBatch merges the same pending batch in a single
// pass: one boundary walk, one piece-wise reshuffle, one bulk shift.
func BenchmarkRippleInsertBatch(b *testing.B) {
	base, vals, tails := benchCrackedPairs(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := WrapPairs(append([]Value(nil), base.Head...), append([]Value(nil), base.Tail...))
		base.Idx.Walk(func(bd crackindex.Bound, pos int) { p.Idx.Insert(bd, pos) })
		b.StartTimer()
		p.RippleInsertBatch(vals, tails)
	}
}
