package crack

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crackstore/internal/crackindex"
	"crackstore/internal/store"
)

// pieceSizes returns the sizes of all pieces of p in position order.
func pieceSizes(p *Pairs) []int {
	var cuts []int
	p.Idx.Walk(func(b crackindex.Bound, pos int) { cuts = append(cuts, pos) })
	var out []int
	prev := 0
	for _, c := range cuts {
		out = append(out, c-prev)
		prev = c
	}
	return append(out, p.Len()-prev)
}

func maxPieceSize(p *Pairs) int {
	max := 0
	for _, s := range pieceSizes(p) {
		if s > max {
			max = s
		}
	}
	return max
}

// areaKeys returns the sorted keys of the area CrackRange produced.
func areaKeys(p *Pairs, lo, hi int) []Value {
	out := append([]Value(nil), p.Tail[lo:hi]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestPolicySweepCapsPieces: under a sequential sweep — the pattern that
// degrades plain cracking toward quadratic work — both adaptive policies
// must leave no piece larger than the cap once the sweep has covered the
// domain, while the Default policy keeps one pathologically large piece
// until late in the sweep.
func TestPolicySweepCapsPieces(t *testing.T) {
	const n, cap, width = 1 << 14, 1 << 10, 256
	for _, pol := range []Policy{
		{Kind: Stochastic, Cap: cap, Seed: 7},
		{Kind: Capped, Cap: cap},
	} {
		rng := rand.New(rand.NewSource(11))
		p := randPairs(rng, n, n)
		p.Policy = pol
		for lo := int64(0); lo < n; lo += width {
			alo, ahi := p.CrackRange(store.Range(lo, lo+width))
			pred := store.Range(lo, lo+width)
			for i := 0; i < p.Len(); i++ {
				in := i >= alo && i < ahi
				if pred.Matches(p.Head[i]) != in {
					t.Fatalf("%v: wrong area for %v", pol.Kind, pred)
				}
			}
		}
		if !p.CheckPieces() {
			t.Fatalf("%v: piece invariant violated", pol.Kind)
		}
		if got := maxPieceSize(p); got > cap {
			t.Errorf("%v: max piece size %d after full sweep, want <= %d", pol.Kind, got, cap)
		}
		if p.Stats.Aux == 0 {
			t.Errorf("%v: no auxiliary pivots introduced", pol.Kind)
		}
	}
}

// TestPolicyAuxPivotsAreOrdinaryBoundaries: an auxiliary pivot must be a
// live index boundary like any query bound — a later crack whose bound
// equals it pays no partition pass, and read-only probes see it.
func TestPolicyAuxPivotsAreOrdinaryBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randPairs(rng, 8192, 8192)
	p.Policy = Policy{Kind: Capped, Cap: 512}
	p.CrackRange(store.Range(10, 20))
	if p.Stats.Aux == 0 {
		t.Fatal("capped crack on a cold 8192-tuple piece introduced no pivots")
	}
	// Find an aux pivot (any boundary that is not one of the query bounds).
	qb1, qb2 := store.Range(10, 20).LowerBound(), store.Range(10, 20).UpperBound()
	var aux crackindex.Bound
	found := false
	p.Idx.Walk(func(b crackindex.Bound, pos int) {
		if !found && b != qb1 && b != qb2 {
			aux, found = b, true
		}
	})
	if !found {
		t.Fatal("no auxiliary boundary recorded in the index")
	}
	if !p.Idx.Has(aux) {
		t.Fatal("auxiliary boundary not live")
	}
	before := p.Stats
	if pos := p.CrackBound(aux); pos < 0 {
		t.Fatal("bad boundary position")
	}
	if p.Stats.InTwo != before.InTwo || p.Stats.InThree != before.InThree {
		t.Fatal("cracking at an existing auxiliary pivot paid a partition pass")
	}
}

// TestPolicyAnswersMatchDefault: whatever pivots a policy introduces, the
// qualifying key set of every query must equal the Default policy's.
func TestPolicyAnswersMatchDefault(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(2000)
		head := make([]Value, n)
		for i := range head {
			head[i] = Value(rng.Int63n(300))
		}
		tail := make([]Value, n)
		for i := range tail {
			tail[i] = Value(i)
		}
		mk := func(pol Policy) *Pairs {
			p := WrapPairs(append([]Value(nil), head...), append([]Value(nil), tail...))
			p.Policy = pol
			return p
		}
		def := mk(Policy{})
		variants := []*Pairs{
			mk(Policy{Kind: Stochastic, Cap: 64, Seed: uint64(seed)}),
			mk(Policy{Kind: Capped, Cap: 64}),
		}
		for q := 0; q < 10; q++ {
			pred := randPred(rng, 300)
			dlo, dhi := def.CrackRange(pred)
			want := areaKeys(def, dlo, dhi)
			for _, v := range variants {
				lo, hi := v.CrackRange(pred)
				got := areaKeys(v, lo, hi)
				if len(got) != len(want) {
					return false
				}
				for i := range got {
					if got[i] != want[i] {
						return false
					}
				}
				if !v.CheckPieces() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyReplayDeterminism: two structures replaying the same crack
// sequence under the same (non-default) policy must produce bit-identical
// layouts — the alignment invariant sideways map sets rely on.
func TestPolicyReplayDeterminism(t *testing.T) {
	for _, pol := range []Policy{
		{Kind: Stochastic, Cap: 128, Seed: 42},
		{Kind: Capped, Cap: 128},
	} {
		rng := rand.New(rand.NewSource(9))
		a := randPairs(rng, 4096, 1024)
		b := WrapPairs(append([]Value(nil), a.Head...), append([]Value(nil), a.Tail...))
		a.Policy, b.Policy = pol, pol
		for q := 0; q < 20; q++ {
			pred := randPred(rng, 1024)
			a.CrackRange(pred)
			b.CrackRange(pred)
		}
		for i := 0; i < a.Len(); i++ {
			if a.Head[i] != b.Head[i] || a.Tail[i] != b.Tail[i] {
				t.Fatalf("%v: replayed structures diverged at %d", pol.Kind, i)
			}
		}
		if !sameBoundaries(a, b) {
			t.Fatalf("%v: boundaries diverged", pol.Kind)
		}
	}
}

// TestPolicyWithRippleUpdates: auxiliary pivots must behave like ordinary
// boundaries under ripple inserts and deletes.
func TestPolicyWithRippleUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := randPairs(rng, 4096, 512)
	p.Policy = Policy{Kind: Stochastic, Cap: 256, Seed: 1}
	for q := 0; q < 8; q++ {
		p.CrackRange(randPred(rng, 512))
		vals := make([]Value, 16)
		tails := make([]Value, 16)
		for i := range vals {
			vals[i] = Value(rng.Int63n(512))
			tails[i] = Value(100000 + q*16 + i)
		}
		p.RippleInsertBatch(vals, tails)
		var dead []int
		for i := 0; i < 8 && p.Len() > 0; i++ {
			pos := rng.Intn(p.Len())
			dup := false
			for _, d := range dead {
				if d == pos {
					dup = true
				}
			}
			if !dup {
				dead = append(dead, pos)
			}
		}
		sort.Ints(dead)
		p.RippleDeleteBatch(dead)
		if !p.CheckPieces() {
			t.Fatalf("piece invariant violated after round %d", q)
		}
	}
}

// TestPolicyDuplicateHeavyPieces: a piece of one repeated value larger than
// the cap cannot be split; the policies must terminate and stay correct.
func TestPolicyDuplicateHeavyPieces(t *testing.T) {
	for _, pol := range []Policy{
		{Kind: Stochastic, Cap: 16, Seed: 5},
		{Kind: Capped, Cap: 16},
	} {
		head := make([]Value, 512)
		tail := make([]Value, 512)
		for i := range head {
			head[i] = 7 // all duplicates
			tail[i] = Value(i)
		}
		p := WrapPairs(head, tail)
		p.Policy = pol
		lo, hi := p.CrackRange(store.Range(5, 10))
		if lo != 0 || hi != 512 {
			t.Fatalf("%v: area (%d,%d), want (0,512)", pol.Kind, lo, hi)
		}
		if !p.CheckPieces() {
			t.Fatalf("%v: piece invariant violated", pol.Kind)
		}
	}
}

// TestKindByName pins the flag-level policy names.
func TestKindByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind PolicyKind
		ok   bool
	}{
		{"default", Default, true},
		{"stochastic", Stochastic, true},
		{"capped", Capped, true},
		{"radix", Default, false},
	} {
		k, ok := KindByName(tc.name)
		if ok != tc.ok || (ok && k != tc.kind) {
			t.Errorf("KindByName(%q) = %v,%v", tc.name, k, ok)
		}
		if ok && k.String() != tc.name {
			t.Errorf("%v.String() = %q, want %q", k, k.String(), tc.name)
		}
	}
}
