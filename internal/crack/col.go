package crack

import (
	"crackstore/internal/store"
)

// Col is a cracker column C_A (Section 2.2): a copy of base column A stored
// as (value, key) pairs that is physically reorganized by every selection,
// plus the pending-update structures of the Ripple algorithm (SIGMOD 2007).
type Col struct {
	P *Pairs // head = values, tail = keys (as Value)

	pendIns []pendingTuple
	pendDel map[Value]bool // keys with a pending deletion
}

type pendingTuple struct {
	key Value
	val Value
}

// NewCol creates the cracker column for base column col: values are copied
// in insertion order and keys are the dense positions 0..n-1.
func NewCol(col *store.Column) *Col {
	n := col.Len()
	head := make([]Value, n)
	tail := make([]Value, n)
	copy(head, col.Vals)
	for i := range tail {
		tail[i] = Value(i)
	}
	return &Col{P: WrapPairs(head, tail), pendDel: make(map[Value]bool)}
}

// NewColWithPolicy is NewCol with an adaptive cracking policy for the
// column's pairs (see Policy).
func NewColWithPolicy(col *store.Column, pol Policy) *Col {
	c := NewCol(col)
	c.P.Policy = pol
	return c
}

// Len returns the number of tuples currently materialized in the column
// (excluding pending insertions).
func (c *Col) Len() int { return c.P.Len() }

// PendingInsertions returns the number of insertions not yet merged.
func (c *Col) PendingInsertions() int { return len(c.pendIns) }

// PendingDeletions returns the number of deletions not yet merged.
func (c *Col) PendingDeletions() int { return len(c.pendDel) }

// Insert queues the tuple (key, val) as a pending insertion. It is merged
// into the cracked column only when a query touches its value range. Keys
// must be fresh: re-using the key of a live or pending-deleted tuple is not
// supported (engines model an update as delete(old key) + insert(new key),
// matching the paper's Section 3.5).
func (c *Col) Insert(key int, val Value) {
	c.pendIns = append(c.pendIns, pendingTuple{key: Value(key), val: val})
}

// Delete queues a pending deletion of the tuple with the given key.
func (c *Col) Delete(key int) {
	for i, t := range c.pendIns {
		if t.key == Value(key) {
			// Still pending: cancel the insertion instead.
			c.pendIns = append(c.pendIns[:i], c.pendIns[i+1:]...)
			return
		}
	}
	c.pendDel[Value(key)] = true
}

// mergePendingInserts ripple-inserts every pending tuple whose value matches
// pred, in arrival order (deterministic), batched into a single pass.
func (c *Col) mergePendingInserts(pred store.Pred) {
	if len(c.pendIns) == 0 {
		return
	}
	var vals, keys []Value
	rest := c.pendIns[:0]
	for _, t := range c.pendIns {
		if pred.Matches(t.val) {
			vals = append(vals, t.val)
			keys = append(keys, t.key)
		} else {
			rest = append(rest, t)
		}
	}
	c.pendIns = rest
	c.P.RippleInsertBatch(vals, keys)
}

// applyPendingDeletes removes tuples within [lo, hi) whose key has a pending
// deletion and returns the new hi.
func (c *Col) applyPendingDeletes(lo, hi int) int {
	if len(c.pendDel) == 0 {
		return hi
	}
	// dead is ascending by construction; deleting the key as it is claimed
	// both consumes the pending deletion and guards against a duplicate key
	// in the scanned area.
	var dead []int
	for i := lo; i < hi; i++ {
		if k := c.P.Tail[i]; c.pendDel[k] {
			delete(c.pendDel, k)
			dead = append(dead, i)
		}
	}
	if len(dead) == 0 {
		return hi
	}
	c.P.RippleDeleteBatch(dead)
	return hi - len(dead)
}

// SelectRO is the reorganization-free execute path of the two-phase
// protocol: when the qualifying area already exists and no pending update
// is relevant it returns the keys of qualifying tuples without touching
// the column. ok is false when Select would reorganize — crack a piece,
// merge a pending insertion, or apply a pending deletion inside the area;
// callers then fall back to Select under exclusive access. Like Select,
// the returned slice is a view into the column, valid until the next
// crack. Safe to call concurrently with other readers.
func (c *Col) SelectRO(pred store.Pred) (keys []Value, ok bool) {
	for _, t := range c.pendIns {
		if pred.Matches(t.val) {
			return nil, false
		}
	}
	lo, hi, ok := c.P.Area(pred)
	if !ok {
		return nil, false
	}
	if len(c.pendDel) > 0 {
		for i := lo; i < hi; i++ {
			if c.pendDel[c.P.Tail[i]] {
				return nil, false
			}
		}
	}
	return c.P.Tail[lo:hi], true
}

// NeedsCrack is the read-only probe paired with SelectRO: it reports
// whether Select(pred) would physically reorganize the column.
func (c *Col) NeedsCrack(pred store.Pred) bool {
	_, ok := c.SelectRO(pred)
	return !ok
}

// Select is operator crackers.select(A,v1,v2): it merges relevant pending
// updates, physically reorganizes the column to cluster qualifying tuples
// into a contiguous area, and returns the keys of qualifying tuples. The
// returned slice is a view into the column (valid until the next crack).
// Keys are NOT in insertion order — cracking destroys tuple order, which is
// exactly the property that makes subsequent tuple reconstruction expensive
// for selection cracking (Section 2.2).
func (c *Col) Select(pred store.Pred) []Value {
	c.mergePendingInserts(pred)
	lo, hi := c.P.CrackRange(pred)
	hi = c.applyPendingDeletes(lo, hi)
	return c.P.Tail[lo:hi]
}

// SelectArea is Select but returns the cracked area bounds instead of the
// key view; used by cost accounting in the experiment harness.
func (c *Col) SelectArea(pred store.Pred) (lo, hi int) {
	c.mergePendingInserts(pred)
	lo, hi = c.P.CrackRange(pred)
	hi = c.applyPendingDeletes(lo, hi)
	return lo, hi
}

// RelSelect is operator crackers.rel_select (Section 2.2): for conjunctive
// queries, subsequent selections filter a prior intermediate result instead
// of cracking. Given keys from a previous selection and the base column of
// the next attribute, it performs select and reconstruct in one go using
// positional key lookups (random access, since keys are unordered).
func RelSelect(keys []Value, base *store.Column, pred store.Pred) []Value {
	out := keys[:0:0]
	for _, k := range keys {
		if pred.Matches(base.Vals[int(k)]) {
			out = append(out, k)
		}
	}
	return out
}
