package crack

import (
	"math/rand"
	"sort"
	"testing"

	"crackstore/internal/store"
)

// FuzzCrackRange drives random crack sequences from fuzzer-chosen bytes:
// every byte pair becomes a predicate. Invariants: the returned area
// contains exactly the matching tuples, piece boundaries hold physically,
// and the tuple multiset never changes.
func FuzzCrackRange(f *testing.F) {
	f.Add(int64(1), []byte{10, 40, 5, 60, 20, 20})
	f.Add(int64(2), []byte{0, 255, 128, 129})
	f.Add(int64(3), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, preds []byte) {
		rng := rand.New(rand.NewSource(seed))
		p := randPairs(rng, 256, 128)
		before := pairSet(p)
		for i := 0; i+1 < len(preds) && i < 40; i += 2 {
			lo, hi := int64(preds[i])%128, int64(preds[i+1])%128
			if lo > hi {
				lo, hi = hi, lo
			}
			pred := store.Pred{Lo: lo, Hi: hi, LoIncl: preds[i]%2 == 0, HiIncl: preds[i+1]%2 == 0}
			alo, ahi := p.CrackRange(pred)
			for j := 0; j < p.Len(); j++ {
				in := j >= alo && j < ahi
				if pred.Matches(p.Head[j]) != in {
					t.Fatalf("pred %v: position %d (val %d) inArea=%v", pred, j, p.Head[j], in)
				}
			}
		}
		if !p.CheckPieces() {
			t.Fatal("piece invariant violated")
		}
		if !equalSets(before, pairSet(p)) {
			t.Fatal("tuple multiset changed")
		}
	})
}

// FuzzCrackInThree fuzzes the single-pass crack-in-three kernel against the
// two-pass crack-in-two reference: for every fuzzer-chosen predicate
// sequence, both kernels must produce identical areas, identical piece
// boundaries, and identical CheckPieces() validity; and two maps replaying
// the sequence through CrackRange must end up with identical final layouts
// (the alignment-determinism invariant of Section 3.2).
func FuzzCrackInThree(f *testing.F) {
	f.Add(int64(1), []byte{10, 40, 5, 60, 20, 20})
	f.Add(int64(4), []byte{0, 127, 64, 65, 1, 126})
	f.Add(int64(8), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, preds []byte) {
		rng := rand.New(rand.NewSource(seed))
		a := randPairs(rng, 256, 128)
		b := WrapPairs(append([]Value(nil), a.Head...), append([]Value(nil), a.Tail...))
		ref := WrapPairs(append([]Value(nil), a.Head...), append([]Value(nil), a.Tail...))
		for i := 0; i+1 < len(preds) && i < 40; i += 2 {
			lo, hi := int64(preds[i])%128, int64(preds[i+1])%128
			if lo > hi {
				lo, hi = hi, lo
			}
			pred := store.Pred{Lo: lo, Hi: hi, LoIncl: preds[i]%2 == 0, HiIncl: preds[i+1]%2 == 0}
			alo, ahi := a.CrackRange(pred)
			b.CrackRange(pred)
			rlo, rhi := crackRangeTwoPass(ref, pred)
			if alo != rlo || ahi != rhi {
				t.Fatalf("pred %v: area (%d,%d) vs two-pass (%d,%d)", pred, alo, ahi, rlo, rhi)
			}
			if !sameBoundaries(a, ref) {
				t.Fatalf("pred %v: piece boundaries diverged from two-pass reference", pred)
			}
		}
		if a.CheckPieces() != ref.CheckPieces() || !a.CheckPieces() {
			t.Fatal("piece invariant validity diverged")
		}
		for i := 0; i < a.Len(); i++ {
			if a.Head[i] != b.Head[i] || a.Tail[i] != b.Tail[i] {
				t.Fatalf("replayed maps diverged at %d: (%d,%d) vs (%d,%d)",
					i, a.Head[i], a.Tail[i], b.Head[i], b.Tail[i])
			}
		}
	})
}

// FuzzRippleInsertBatch fuzzes the batched merge against arrival-order
// sequential RippleInsert calls interleaved with cracks: final layouts must
// be bit-identical.
func FuzzRippleInsertBatch(f *testing.F) {
	f.Add(int64(1), []byte{0, 10, 1, 20, 1, 30, 0, 50, 1, 5})
	f.Add(int64(3), []byte{1, 1, 1, 2, 1, 3})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		rng := rand.New(rand.NewSource(seed))
		a := randPairs(rng, 128, 64)
		b := WrapPairs(append([]Value(nil), a.Head...), append([]Value(nil), a.Tail...))
		var vals, tails []Value
		flush := func() {
			a.RippleInsertBatch(vals, tails)
			for i := range vals {
				b.RippleInsert(vals[i], tails[i])
			}
			vals, tails = vals[:0], tails[:0]
		}
		for i := 0; i+1 < len(ops) && i < 60; i += 2 {
			arg := int64(ops[i+1]) % 64
			if ops[i]%2 == 0 { // crack: flush the pending batch first
				flush()
				a.CrackRange(store.Range(arg, arg+16))
				b.CrackRange(store.Range(arg, arg+16))
			} else {
				vals = append(vals, arg)
				tails = append(tails, Value(1000+i))
			}
		}
		flush()
		if a.Len() != b.Len() {
			t.Fatalf("length diverged: %d vs %d", a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if a.Head[i] != b.Head[i] || a.Tail[i] != b.Tail[i] {
				t.Fatalf("batch vs sequential diverged at %d", i)
			}
		}
		if !sameBoundaries(a, b) {
			t.Fatal("index boundaries diverged")
		}
		if !a.CheckPieces() {
			t.Fatal("piece invariant violated")
		}
	})
}

// FuzzRippleDeleteBatch fuzzes the single-pass batched delete against
// highest-position-first sequential RippleDelete calls, interleaved with
// cracks: final layouts and index boundaries must be bit-identical.
func FuzzRippleDeleteBatch(f *testing.F) {
	f.Add(int64(1), []byte{1, 10, 1, 20, 0, 30, 1, 5})
	f.Add(int64(6), []byte{1, 0, 1, 1, 1, 2, 0, 40, 1, 63})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		rng := rand.New(rand.NewSource(seed))
		a := randPairs(rng, 128, 64)
		b := WrapPairs(append([]Value(nil), a.Head...), append([]Value(nil), a.Tail...))
		seen := make(map[int]bool)
		var dead []int
		flush := func() {
			sort.Ints(dead)
			a.RippleDeleteBatch(dead)
			for i := len(dead) - 1; i >= 0; i-- {
				b.RippleDelete(dead[i])
			}
			dead = dead[:0]
			for k := range seen {
				delete(seen, k)
			}
		}
		for i := 0; i+1 < len(ops) && i < 60; i += 2 {
			arg := int64(ops[i+1])
			if ops[i]%2 == 0 { // crack: flush the pending batch first
				flush()
				lo := arg % 64
				a.CrackRange(store.Range(lo, lo+16))
				b.CrackRange(store.Range(lo, lo+16))
			} else if a.Len() > len(dead) {
				pos := int(arg) % a.Len()
				if !seen[pos] {
					seen[pos] = true
					dead = append(dead, pos)
				}
			}
		}
		flush()
		if a.Len() != b.Len() {
			t.Fatalf("length diverged: %d vs %d", a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if a.Head[i] != b.Head[i] || a.Tail[i] != b.Tail[i] {
				t.Fatalf("batch vs sequential diverged at %d", i)
			}
		}
		if !sameBoundaries(a, b) {
			t.Fatal("index boundaries diverged")
		}
		if !a.CheckPieces() {
			t.Fatal("piece invariant violated")
		}
	})
}

// FuzzRippleUpdates mixes cracks, ripple inserts and positional removals.
func FuzzRippleUpdates(f *testing.F) {
	f.Add(int64(1), []byte{0, 10, 1, 20, 2, 3, 0, 50})
	f.Add(int64(9), []byte{2, 2, 2, 2, 1, 1})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		rng := rand.New(rand.NewSource(seed))
		p := randPairs(rng, 128, 64)
		live := p.Len()
		for i := 0; i+1 < len(ops) && i < 60; i += 2 {
			arg := int64(ops[i+1]) % 64
			switch ops[i] % 3 {
			case 0: // crack
				p.CrackRange(store.Range(arg, arg+16))
			case 1: // insert
				p.RippleInsert(arg, Value(1000+i))
				live++
			case 2: // remove one position
				if p.Len() > 0 {
					p.RemovePositions([]int{int(arg) % p.Len()})
					live--
				}
			}
			if p.Len() != live {
				t.Fatalf("length drift: %d vs %d", p.Len(), live)
			}
		}
		if !p.CheckPieces() {
			t.Fatal("piece invariant violated")
		}
	})
}
