package crack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crackstore/internal/crackindex"
	"crackstore/internal/store"
)

// crackRangeTwoPass is the seed kernel: each bound cracks its piece
// independently. Kept as the reference the single-pass crack-in-three is
// verified against.
func crackRangeTwoPass(p *Pairs, pred store.Pred) (lo, hi int) {
	lo = p.CrackBound(pred.LowerBound())
	hi = p.CrackBound(pred.UpperBound())
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// boundaries returns the live (bound, position) list of the index.
func boundaries(p *Pairs) []crackindex.Bound {
	var bs []crackindex.Bound
	var ps []int
	p.Idx.Walk(func(b crackindex.Bound, pos int) { bs = append(bs, b); ps = append(ps, pos) })
	out := make([]crackindex.Bound, 0, 2*len(bs))
	for i := range bs {
		out = append(out, bs[i], crackindex.Bound{V: int64(ps[i]), Incl: true})
	}
	return out
}

func sameBoundaries(a, b *Pairs) bool {
	x, y := boundaries(a), boundaries(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// TestCrackRangeColdSinglePass is the pass-counting acceptance test: on a
// cold column whose bounds both fall in the single uncracked piece,
// CrackRange must perform exactly one crack-in-three partition pass that
// visits each tuple once, and no crack-in-two pass.
func TestCrackRangeColdSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 10000
	p := randPairs(rng, n, 1000)
	pred := store.Range(100, 900)
	lo, hi := p.CrackRange(pred)
	if p.Stats.InThree != 1 || p.Stats.InTwo != 0 {
		t.Fatalf("cold crack used %d crack-in-three and %d crack-in-two passes, want 1 and 0",
			p.Stats.InThree, p.Stats.InTwo)
	}
	if p.Stats.Visited != n {
		t.Fatalf("cold crack visited %d tuples, want exactly %d (one pass)", p.Stats.Visited, n)
	}
	for i := 0; i < p.Len(); i++ {
		in := i >= lo && i < hi
		if pred.Matches(p.Head[i]) != in {
			t.Fatalf("position %d (val %d): inArea=%v", i, p.Head[i], in)
		}
	}
	if !p.CheckPieces() {
		t.Fatal("piece invariant violated")
	}
}

// TestCrackRangeFallsBackAcrossPieces verifies the crack-in-two fallback:
// once a boundary separates the two bounds, CrackRange cracks each piece
// independently.
func TestCrackRangeFallsBackAcrossPieces(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := randPairs(rng, 5000, 1000)
	p.CrackRange(store.Range(400, 600)) // boundaries at 400 and 600
	p.Stats = KernelStats{}
	p.CrackRange(store.Range(300, 700)) // bounds straddle existing boundaries
	if p.Stats.InThree != 0 || p.Stats.InTwo != 2 {
		t.Fatalf("straddling crack used %d in-three / %d in-two passes, want 0 / 2",
			p.Stats.InThree, p.Stats.InTwo)
	}
	if !p.CheckPieces() {
		t.Fatal("piece invariant violated")
	}
}

// TestCrackInThreeMatchesTwoPassBoundaries: for any predicate sequence, the
// single-pass kernel must produce the same areas and the same piece
// boundaries (bound and position) as the two-pass reference, because split
// positions are determined by value counts alone.
func TestCrackInThreeMatchesTwoPassBoundaries(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(400)
		head := make([]Value, n)
		for i := range head {
			head[i] = Value(rng.Int63n(80))
		}
		a := WrapPairs(append([]Value(nil), head...), make([]Value, n))
		r := WrapPairs(append([]Value(nil), head...), make([]Value, n))
		for q := 0; q < 12; q++ {
			pred := randPred(rng, 80)
			alo, ahi := a.CrackRange(pred)
			rlo, rhi := crackRangeTwoPass(r, pred)
			if alo != rlo || ahi != rhi {
				return false
			}
			if !sameBoundaries(a, r) {
				return false
			}
			if a.CheckPieces() != r.CheckPieces() || !a.CheckPieces() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCrackInThreeMovesNoMoreThanTwoPass: the Moved counter accounts data
// movement, and crack-in-three must move no more tuples than the two
// crack-in-two passes it replaces. This is a theorem for the
// count-then-permute kernel — it stores every misplaced tuple exactly once
// (the minimum any correct partition pays), while the two-pass reference
// is swap-based and can touch a tuple twice — but it only holds per crack
// on identical starting layouts, so both structures are warmed with the
// same kernel and diverge only on the measured query.
func TestCrackInThreeMovesNoMoreThanTwoPass(t *testing.T) {
	fused := 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(2000)
		head := make([]Value, n)
		for i := range head {
			head[i] = Value(rng.Int63n(500))
		}
		a := WrapPairs(append([]Value(nil), head...), make([]Value, n))
		r := WrapPairs(append([]Value(nil), head...), make([]Value, n))
		for q, warm := 0, rng.Intn(6); q < warm; q++ {
			pred := randPred(rng, 500)
			a.CrackRange(pred)
			r.CrackRange(pred) // same kernel: layouts stay bit-identical
		}
		pred := randPred(rng, 500)
		aBefore, rBefore := a.Stats, r.Stats
		a.CrackRange(pred)
		crackRangeTwoPass(r, pred)
		if a.Stats.InThree > aBefore.InThree {
			fused++
		}
		// When CrackRange fell back to crack-in-two the paths are identical
		// and the deltas are equal; the fused path must not exceed.
		return a.Stats.Moved-aBefore.Moved <= r.Stats.Moved-rBefore.Moved
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if fused == 0 {
		t.Fatal("no seed exercised the fused crack-in-three path")
	}
}

// TestMovedCounterMatchesAcrossKernels: the predicated and branchy kernels
// execute the same state machine, so their Moved accounting must agree
// exactly (alongside the layouts the fuzz targets pin).
func TestMovedCounterMatchesAcrossKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randPairs(rng, 4096, 1024)
	b := WrapPairs(append([]Value(nil), a.Head...), append([]Value(nil), a.Tail...))
	b.Branchy = true
	for q := 0; q < 20; q++ {
		pred := randPred(rng, 1024)
		a.CrackRange(pred)
		b.CrackRange(pred)
		if a.Stats != b.Stats {
			t.Fatalf("stats diverged after query %d: predicated %+v vs branchy %+v", q, a.Stats, b.Stats)
		}
	}
}

// TestRippleInsertBatchMatchesSequential: the batched merge must produce
// exactly the layout of arrival-order sequential RippleInsert calls —
// including tail order — so either form can replay a tape.
func TestRippleInsertBatchMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(300)
		head := make([]Value, n)
		for i := range head {
			head[i] = Value(rng.Int63n(60))
		}
		mkTail := func() []Value {
			tl := make([]Value, n)
			for i := range tl {
				tl[i] = Value(i)
			}
			return tl
		}
		a := WrapPairs(append([]Value(nil), head...), mkTail())
		b := WrapPairs(append([]Value(nil), head...), mkTail())
		for q := 0; q < 6; q++ {
			pred := randPred(rng, 60)
			a.CrackRange(pred)
			b.CrackRange(pred)
		}
		m := 1 + rng.Intn(40)
		vals := make([]Value, m)
		tails := make([]Value, m)
		for i := range vals {
			vals[i] = Value(rng.Int63n(60))
			tails[i] = Value(1000 + i)
		}
		a.RippleInsertBatch(vals, tails)
		for i := range vals {
			b.RippleInsert(vals[i], tails[i])
		}
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if a.Head[i] != b.Head[i] || a.Tail[i] != b.Tail[i] {
				return false
			}
		}
		return sameBoundaries(a, b) && a.CheckPieces() && b.CheckPieces()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRippleInsertBatchEmptyAndColdPaths covers the trivial batch paths.
func TestRippleInsertBatchEmptyAndColdPaths(t *testing.T) {
	p := WrapPairs([]Value{3, 1, 2}, []Value{0, 1, 2})
	p.RippleInsertBatch(nil, nil)
	if p.Len() != 3 {
		t.Fatal("empty batch changed the column")
	}
	// No boundaries: batch appends in arrival order.
	p.RippleInsertBatch([]Value{9, 4}, []Value{10, 11})
	want := []Value{3, 1, 2, 9, 4}
	for i, v := range want {
		if p.Head[i] != v {
			t.Fatalf("cold batch: Head[%d] = %d, want %d", i, p.Head[i], v)
		}
	}
	// Single-element batch delegates to RippleInsert.
	p.CrackRange(store.Range(2, 4))
	p.RippleInsertBatch([]Value{2}, []Value{12})
	if p.Len() != 6 || !p.CheckPieces() {
		t.Fatal("single-element batch broke invariants")
	}
}
