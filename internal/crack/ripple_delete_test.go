package crack

import (
	"math/rand"
	"sort"
	"testing"

	"crackstore/internal/crackindex"
	"crackstore/internal/store"
)

// randomCracked builds a Pairs over n random tuples and cracks it with q
// random range predicates so the index holds a realistic boundary set.
func randomCracked(rng *rand.Rand, n, q int, domain int64) *Pairs {
	head := make([]Value, n)
	tail := make([]Value, n)
	for i := range head {
		head[i] = rng.Int63n(domain)
		tail[i] = Value(i)
	}
	p := NewPairs(head, tail)
	for i := 0; i < q; i++ {
		lo := rng.Int63n(domain)
		w := 1 + rng.Int63n(domain/4+1)
		p.CrackRange(store.Range(lo, lo+w))
	}
	return p
}

func clonePairs(p *Pairs) *Pairs {
	c := NewPairs(p.Head, p.Tail)
	p.Idx.Walk(func(b crackindex.Bound, pos int) { c.Idx.Insert(b, pos) })
	return c
}

func pairsEqual(a, b *Pairs) bool {
	if len(a.Head) != len(b.Head) {
		return false
	}
	for i := range a.Head {
		if a.Head[i] != b.Head[i] || a.Tail[i] != b.Tail[i] {
			return false
		}
	}
	type bp struct {
		b   crackindex.Bound
		pos int
	}
	var ab, bb []bp
	a.Idx.Walk(func(b crackindex.Bound, pos int) { ab = append(ab, bp{b, pos}) })
	b.Idx.Walk(func(b crackindex.Bound, pos int) { bb = append(bb, bp{b, pos}) })
	if len(ab) != len(bb) {
		return false
	}
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}

// TestRippleDeleteBatchMatchesSequential is the layout-equivalence property
// the batch kernel is defined by: RippleDeleteBatch(positions) must produce
// exactly the layout of per-tuple RippleDelete calls applied from the
// highest position down.
func TestRippleDeleteBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 5 + rng.Intn(120)
		p := randomCracked(rng, n, rng.Intn(8), 1+rng.Int63n(60))
		ref := clonePairs(p)

		m := 1 + rng.Intn(n)
		perm := rng.Perm(n)[:m]
		sort.Ints(perm)

		p.RippleDeleteBatch(perm)
		for i := len(perm) - 1; i >= 0; i-- {
			ref.RippleDelete(perm[i])
		}

		if !pairsEqual(p, ref) {
			t.Fatalf("trial %d: batch layout differs from sequential reference\nbatch head=%v tail=%v\nref   head=%v tail=%v",
				trial, p.Head, p.Tail, ref.Head, ref.Tail)
		}
		if !p.CheckPieces() {
			t.Fatalf("trial %d: piece invariant violated after batch delete", trial)
		}
	}
}

// TestRippleDeletePreservesMultiset checks that ripple deletion removes
// exactly the requested tuples and nothing else.
func TestRippleDeletePreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(80)
		p := randomCracked(rng, n, rng.Intn(6), 1+rng.Int63n(40))

		m := 1 + rng.Intn(n)
		dead := rng.Perm(n)[:m]
		sort.Ints(dead)
		want := make(map[Value]int)
		for i, k := range p.Tail {
			want[k] = int(p.Head[i])
		}
		for _, d := range dead {
			delete(want, p.Tail[d])
		}

		p.RippleDeleteBatch(dead)
		if p.Len() != n-m {
			t.Fatalf("trial %d: len = %d, want %d", trial, p.Len(), n-m)
		}
		for i, k := range p.Tail {
			v, ok := want[k]
			if !ok || Value(v) != p.Head[i] {
				t.Fatalf("trial %d: survivor (%d,%d) not in expected set", trial, p.Head[i], k)
			}
			delete(want, k)
		}
		if len(want) != 0 {
			t.Fatalf("trial %d: %d tuples lost", trial, len(want))
		}
	}
}

// TestRippleDeleteSingleEdges exercises hand-picked edge cases: deletions
// at piece starts, at boundary-adjacent positions, and in empty-piece
// configurations.
func TestRippleDeleteSingleEdges(t *testing.T) {
	p := NewPairs(
		[]Value{5, 1, 9, 3, 7, 2, 8},
		[]Value{0, 1, 2, 3, 4, 5, 6},
	)
	p.CrackRange(store.Range(3, 8)) // pieces: <3 | [3,8) | >=8
	ref := clonePairs(p)
	for _, pos := range []int{p.Len() - 1, 0, 2} {
		p.RippleDelete(pos)
		ref.RippleDeleteBatch([]int{pos})
		if !pairsEqual(p, ref) {
			t.Fatalf("single-position batch diverged at pos %d", pos)
		}
		if !p.CheckPieces() {
			t.Fatalf("piece invariant violated after deleting pos %d", pos)
		}
	}
}
