package crack

import (
	"fmt"

	"crackstore/internal/crackindex"
	"crackstore/internal/store"
)

// PolicyKind selects how cracking picks partition pivots.
//
// Plain cracking converges only as fast as the workload lets it: every
// boundary comes from a query bound, so sequential sweeps and zoom-ins —
// the access shapes interactive exploration actually produces — leave one
// huge uncracked piece that every subsequent query rescans, degrading
// toward quadratic total work. The non-default policies below break that
// dependence by introducing auxiliary pivots whenever a crack targets a
// piece larger than a configurable cap, so no piece stays pathologically
// large regardless of the query pattern (the stochastic-cracking remedy of
// Halim, Idreos, Karras & Yap, VLDB 2012).
type PolicyKind int

const (
	// Default cracks exactly at the query's predicate bounds — the paper's
	// original algorithm and the zero value.
	Default PolicyKind = iota
	// Stochastic pre-splits any targeted piece larger than the cap at
	// median-of-sample pivots: three piece values at positions chosen by a
	// seeded hash of the piece, median taken as the pivot (DDC/DDR style).
	// Sampling real values splits duplicate-heavy and skewed pieces where a
	// value midpoint would not.
	Stochastic
	// Capped deterministically halves any targeted piece larger than the
	// cap at the midpoint of its value range, recursively, before the
	// query's own crack (the deterministic DDC sibling; radix-like on
	// uniform data).
	Capped
)

func (k PolicyKind) String() string {
	switch k {
	case Default:
		return "default"
	case Stochastic:
		return "stochastic"
	case Capped:
		return "capped"
	}
	return fmt.Sprintf("PolicyKind(%d)", int(k))
}

// KindByName maps a policy name ("default", "stochastic", "capped") to its
// kind; ok is false for unknown names.
func KindByName(name string) (PolicyKind, bool) {
	switch name {
	case "default":
		return Default, true
	case "stochastic":
		return Stochastic, true
	case "capped":
		return Capped, true
	}
	return Default, false
}

// Policy configures adaptive pivot selection for a Pairs. The zero value is
// the Default policy (no auxiliary pivots).
//
// Auxiliary pivots are recorded in the cracker index exactly like
// query-bound boundaries, so read-only probes (Area, SelectRO, the engine
// probe layer) benefit from them immediately, ripple updates shift them
// like any other boundary, and a later query whose bound equals a pivot
// pays no partition pass at all.
//
// Policy decisions are deterministic functions of (Policy, piece state), so
// two structures that replay the same operation sequence under the same
// policy produce identical layouts — the alignment invariant sideways
// cracking depends on. Stores therefore freeze the policy per map set at
// set-creation time.
type Policy struct {
	Kind PolicyKind
	// Cap is the piece size (in tuples) above which auxiliary pivots are
	// introduced before a crack; 0 picks max(1024, n/16) for a column of n
	// tuples.
	Cap int
	// Seed perturbs Stochastic's sample positions. Structures that must
	// stay aligned (maps of one sideways set) must share a seed; they do,
	// because the policy is fixed per store.
	Seed uint64
}

// capFor resolves the effective piece-size cap for a column of n tuples.
func (pol Policy) capFor(n int) int {
	if pol.Cap > 0 {
		return pol.Cap
	}
	c := n / 16
	if c < 1024 {
		c = 1024
	}
	return c
}

// maxPolicySplits bounds the auxiliary splits one applyPolicy call can
// introduce: 64 value-range halvings exhaust an int64 domain, so the bound
// is a safety net, not a tuning knob.
const maxPolicySplits = 64

// applyPolicy pre-splits the piece that bound b falls into while it is
// larger than the policy cap, recording each auxiliary pivot in the index
// as a normal boundary. A no-op under the Default policy, when b already
// exists as a boundary, and on pieces at or below the cap — in particular,
// a crack whose bounds are all existing boundaries stays a physical no-op
// under every policy (partial sideways' lazy replay relies on that).
func (p *Pairs) applyPolicy(b crackindex.Bound) {
	if p.Policy.Kind == Default || len(p.Head) == 0 {
		return
	}
	cap := p.Policy.capFor(len(p.Head))
	for s := 0; s < maxPolicySplits; s++ {
		pc := p.Idx.PieceFor(b, len(p.Head))
		if pc.LoExact || pc.Hi-pc.Lo <= cap {
			return
		}
		pv, ok := p.pivotFor(pc)
		if !ok {
			return
		}
		pb := crackindex.Bound{V: pv, Incl: true}
		if pb == b || p.Idx.Has(pb) {
			// The query's own crack will create this boundary, or a
			// degenerate pivot re-derived one that already exists; either
			// way another partition pass cannot shrink the piece.
			return
		}
		pos := p.crackInTwo(pb, pc.Lo, pc.Hi)
		p.Idx.Insert(pb, pos)
		p.Stats.Aux++
		if (pos == pc.Lo || pos == pc.Hi) && p.Policy.Kind != Capped {
			// The pivot was the piece's extreme value: positions did not
			// move and a re-sample would pick it again. Capped continues —
			// its value range still halves, so it converges regardless.
			return
		}
	}
}

// pivotFor returns the auxiliary pivot value for piece pc under the
// policy; ok is false when the piece cannot be usefully split.
//
// Validity: the new boundary {pivot, inclusive} must hold globally. For
// Stochastic the pivot is a value drawn from the piece itself, which is
// strictly right of everything before the piece and strictly left of
// everything after it (in boundary semantics), so it is always valid. For
// Capped the midpoint is kept strictly inside the piece's delimiting
// boundary values (LoBound.V < pivot < HiBound.V), with edge pieces
// scanned for their actual min/max.
func (p *Pairs) pivotFor(pc crackindex.Piece) (Value, bool) {
	switch p.Policy.Kind {
	case Stochastic:
		n := uint64(pc.Hi - pc.Lo)
		h := p.Policy.Seed + uint64(pc.Lo)*0x9e3779b97f4a7c15 + uint64(pc.Hi)*0xbf58476d1ce4e5b9
		v1 := p.Head[pc.Lo+int(store.Mix64(h)%n)]
		v2 := p.Head[pc.Lo+int(store.Mix64(h+1)%n)]
		v3 := p.Head[pc.Lo+int(store.Mix64(h+2)%n)]
		return median3(v1, v2, v3), true
	case Capped:
		lo, hi := p.pieceValueRange(pc)
		if hi-lo < 2 {
			return 0, false
		}
		return lo + (hi-lo)/2, true
	}
	return 0, false
}

// pieceValueRange returns the delimiting boundary values of piece pc,
// scanning the piece once for its actual min/max at the column edges
// (where no boundary delimits it).
func (p *Pairs) pieceValueRange(pc crackindex.Piece) (lo, hi Value) {
	lo, hi = pc.LoBound.V, pc.HiBound.V
	if pc.HasLoB && pc.HasHiB {
		return lo, hi
	}
	sLo, sHi := p.Head[pc.Lo], p.Head[pc.Lo]
	for _, v := range p.Head[pc.Lo:pc.Hi] {
		if v < sLo {
			sLo = v
		}
		if v > sHi {
			sHi = v
		}
	}
	if !pc.HasLoB {
		lo = sLo
	}
	if !pc.HasHiB {
		hi = sHi
	}
	return lo, hi
}

func median3(a, b, c Value) Value {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
