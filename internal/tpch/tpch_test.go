package tpch

import (
	"math/rand"
	"testing"

	"crackstore/internal/engine"
)

func smallData(t testing.TB) *Data {
	t.Helper()
	return Generate(0.002, 42) // ~3000 orders, ~12000 lineitems
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.001, 7)
	b := Generate(0.001, 7)
	if a.Lineitem.NumRows() != b.Lineitem.NumRows() {
		t.Fatal("row counts differ")
	}
	av := a.Lineitem.MustColumn("l_extendedprice").Vals
	bv := b.Lineitem.MustColumn("l_extendedprice").Vals
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
}

func TestGenerateShape(t *testing.T) {
	d := smallData(t)
	li := d.Lineitem
	n := li.NumRows()
	if n == 0 {
		t.Fatal("empty lineitem")
	}
	ship := li.MustColumn("l_shipdate").Vals
	receipt := li.MustColumn("l_receiptdate").Vals
	ok := li.MustColumn("l_orderkey").Vals
	for i := 0; i < n; i++ {
		if ship[i] < 0 || ship[i] > DateMax+60 {
			t.Fatalf("shipdate %d out of range", ship[i])
		}
		if receipt[i] <= ship[i] {
			t.Fatalf("receiptdate %d <= shipdate %d", receipt[i], ship[i])
		}
	}
	// Lineitem emitted in orderkey order (data presorted on Order keys).
	for i := 1; i < n; i++ {
		if ok[i] < ok[i-1] {
			t.Fatal("lineitem not ordered by orderkey")
		}
	}
	// Orders totalprice equals the sum of its lineitem prices.
	var sum Value
	totals := d.Orders.MustColumn("o_totalprice").Vals
	cur := Value(0)
	lep := li.MustColumn("l_extendedprice").Vals
	var acc Value
	for i := 0; i < n; i++ {
		if ok[i] != cur {
			if totals[cur] != acc {
				t.Fatalf("order %d totalprice %d != %d", cur, totals[cur], acc)
			}
			cur = ok[i]
			acc = 0
		}
		acc += lep[i]
		sum += lep[i]
	}
}

// TestAllQueriesAgreeAcrossEngines is the TPC-H integration check: every
// query must produce the same checksum on all five engine kinds, run twice
// (the second run exercises cracked/aligned state).
func TestAllQueriesAgreeAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := smallData(t)
	rng := rand.New(rand.NewSource(99))
	params := []Params{RandomParams(rng), RandomParams(rng)}

	kinds := []engine.Kind{engine.Scan, engine.SelCrack, engine.Presorted,
		engine.Sideways, engine.PartialSideways, engine.RowStore}
	dbs := make([]*DB, len(kinds))
	for i, k := range kinds {
		dbs[i] = NewDB(d, k)
	}
	for _, qid := range QueryIDs {
		fn := Queries[qid]
		for pi, p := range params {
			var ref Value
			for i, db := range dbs {
				got := fn(db, p)
				if i == 0 {
					ref = got
					continue
				}
				if got != ref {
					t.Fatalf("Q%d params %d: %v checksum %d != scan %d", qid, pi, kinds[i], got, ref)
				}
			}
		}
	}
}

func TestSelectionAttrsCoverAllQueries(t *testing.T) {
	for _, q := range QueryIDs {
		if len(SelectionAttrs[q]) == 0 {
			t.Errorf("Q%d has no selection attrs", q)
		}
		if Queries[q] == nil {
			t.Errorf("Q%d has no implementation", q)
		}
	}
}

func TestPrepareBuildsCopies(t *testing.T) {
	d := Generate(0.001, 5)
	db := NewDB(d, engine.Presorted)
	cost := db.Prepare(1)
	if cost <= 0 {
		t.Fatal("Prepare should take measurable time")
	}
	// Prepared query must be cheap and correct versus scan.
	p := RandomParams(rand.New(rand.NewSource(1)))
	scan := NewDB(d, engine.Scan)
	if Q1(db, p) != Q1(scan, p) {
		t.Fatal("prepared presorted Q1 differs from scan")
	}
}

func TestRandomParamsInRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		p := RandomParams(rng)
		if p.Date < Date1993 || p.Date >= Date1997 {
			t.Fatalf("date %d out of range", p.Date)
		}
		if p.Brand == p.Brand2 || p.Brand2 == p.Brand3 || p.Brand == p.Brand3 {
			t.Fatal("brands must be distinct")
		}
		if p.Nation1 == p.Nation2 {
			t.Fatal("nations must be distinct")
		}
		if p.Mode1 == p.Mode2 {
			t.Fatal("modes must be distinct")
		}
	}
}

func BenchmarkQ1Sideways(b *testing.B) {
	d := Generate(0.002, 42)
	db := NewDB(d, engine.Sideways)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Q1(db, RandomParams(rng))
	}
}

func BenchmarkQ6AllEngines(b *testing.B) {
	d := Generate(0.002, 42)
	for _, k := range []engine.Kind{engine.Scan, engine.SelCrack, engine.Sideways, engine.PartialSideways} {
		b.Run(k.String(), func(b *testing.B) {
			db := NewDB(d, k)
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Q6(db, RandomParams(rng))
			}
		})
	}
}
