// Package tpch is a self-contained TPC-H substrate: a deterministic
// dbgen-style data generator over an integer-encoded schema and
// implementations of the twelve benchmark queries the paper evaluates
// (Q1, 3, 4, 6, 7, 8, 10, 12, 14, 15, 19, 20 — those with at least one
// selection on a non-string attribute, Section 5).
//
// Encoding: dates are days since 1992-01-01 (the TPC-H date range spans
// 1992-01-01 .. 1998-12-31 = days 0..2557); monetary values are cents;
// percentages (discount, tax) are integer percent; categorical strings
// (brands, segments, ship modes, priorities, flags) are dictionary-encoded
// small integers. The paper only cracks non-string selections, so integer
// dictionaries preserve every exercised code path.
package tpch

import (
	"math/rand"

	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// Date helpers: days since 1992-01-01, months approximated as 30 days and
// years as 365 days within the generator's uniform date model.
const (
	DateMin  = 0
	DateMax  = 2557 // 1998-12-31
	Year     = 365
	Month    = 30
	Quarter  = 91
	Date1993 = 365
	Date1994 = 730
	Date1995 = 1095
	Date1996 = 1461
	Date1997 = 1826
	Date1998 = 2191
)

// Dictionary sizes for categorical attributes.
const (
	NumSegments   = 5  // c_mktsegment
	NumPriorities = 5  // o_orderpriority
	NumShipModes  = 7  // l_shipmode
	NumBrands     = 25 // p_brand
	NumTypes      = 50 // p_type (5 categories x 10; promo = type/10 == 0)
	NumContainers = 40 // p_container
	NumNations    = 25
	NumRegions    = 5
	MaxQuantity   = 50
	MaxDiscount   = 10 // percent
	MaxTax        = 8  // percent
	ReturnFlagR   = 2  // l_returnflag: 0=A,1=N,2=R
)

// Data holds the generated relations. Scale factor 1 corresponds to the
// official 6M-row lineitem; Generate scales all tables linearly.
type Data struct {
	SF       float64
	Region   *store.Relation
	Nation   *store.Relation
	Supplier *store.Relation
	Customer *store.Relation
	Part     *store.Relation
	PartSupp *store.Relation
	Orders   *store.Relation
	Lineitem *store.Relation
}

// Sizes returns the row counts per table at scale factor sf.
func Sizes(sf float64) (suppliers, customers, parts, orders, lineitemAvg int) {
	scale := func(n int) int {
		v := int(float64(n) * sf)
		if v < 10 {
			v = 10
		}
		return v
	}
	return scale(10000), scale(150000), scale(200000), scale(1500000), 4
}

// Generate builds a deterministic TPC-H database at scale factor sf.
// Orders and lineitem rows are emitted in orderkey order, mirroring the
// "TPC-H data comes already presorted on the keys of the Order table"
// property the paper calls out in Section 5.
func Generate(sf float64, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	nSupp, nCust, nPart, nOrd, _ := Sizes(sf)

	d := &Data{SF: sf}

	d.Region = store.NewRelation("region", "r_regionkey", "r_name")
	for i := 0; i < NumRegions; i++ {
		d.Region.AppendRow(Value(i), Value(i))
	}

	d.Nation = store.NewRelation("nation", "n_nationkey", "n_name", "n_regionkey")
	for i := 0; i < NumNations; i++ {
		d.Nation.AppendRow(Value(i), Value(i), Value(i%NumRegions))
	}

	d.Supplier = store.NewRelation("supplier", "s_suppkey", "s_nationkey", "s_acctbal")
	for i := 0; i < nSupp; i++ {
		d.Supplier.AppendRow(Value(i), Value(rng.Intn(NumNations)), Value(rng.Intn(1000000)))
	}

	d.Customer = store.NewRelation("customer",
		"c_custkey", "c_nationkey", "c_mktsegment", "c_acctbal")
	for i := 0; i < nCust; i++ {
		d.Customer.AppendRow(Value(i), Value(rng.Intn(NumNations)),
			Value(rng.Intn(NumSegments)), Value(rng.Intn(1000000)))
	}

	d.Part = store.NewRelation("part",
		"p_partkey", "p_brand", "p_type", "p_size", "p_container", "p_retailprice")
	for i := 0; i < nPart; i++ {
		d.Part.AppendRow(Value(i), Value(rng.Intn(NumBrands)), Value(rng.Intn(NumTypes)),
			Value(1+rng.Intn(50)), Value(rng.Intn(NumContainers)), Value(90000+rng.Intn(20000)))
	}

	d.PartSupp = store.NewRelation("partsupp",
		"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost")
	for i := 0; i < nPart; i++ {
		for j := 0; j < 4; j++ {
			d.PartSupp.AppendRow(Value(i), Value((i+j*nPart/4)%nSupp),
				Value(1+rng.Intn(9999)), Value(100+rng.Intn(99900)))
		}
	}

	d.Orders = store.NewRelation("orders",
		"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
		"o_orderdate", "o_orderpriority", "o_shippriority")
	d.Lineitem = store.NewRelation("lineitem",
		"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
		"l_quantity", "l_extendedprice", "l_discount", "l_tax",
		"l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
		"l_receiptdate", "l_shipinstruct", "l_shipmode")
	for o := 0; o < nOrd; o++ {
		odate := Value(rng.Intn(DateMax - 151)) // leave room for ship/receipt
		custkey := Value(rng.Intn(nCust))
		nLines := 1 + rng.Intn(7)
		var total Value
		status := Value(rng.Intn(3))
		for l := 0; l < nLines; l++ {
			qty := Value(1 + rng.Intn(MaxQuantity))
			price := qty * Value(90000+rng.Intn(20000)) / 50
			disc := Value(rng.Intn(MaxDiscount + 1))
			tax := Value(rng.Intn(MaxTax + 1))
			ship := odate + Value(1+rng.Intn(121))
			commit := odate + Value(30+rng.Intn(61))
			receipt := ship + Value(1+rng.Intn(30))
			rf := Value(rng.Intn(3))
			if receipt > Date1995 && rf == ReturnFlagR && rng.Intn(2) == 0 {
				rf = Value(rng.Intn(2)) // returns thin out in recent data
			}
			d.Lineitem.AppendRow(
				Value(o), Value(rng.Intn(nPart)), Value(rng.Intn(nSupp)), Value(l),
				qty, price, disc, tax,
				rf, Value(rng.Intn(2)), ship, commit,
				receipt, Value(rng.Intn(4)), Value(rng.Intn(NumShipModes)))
			total += price
		}
		d.Orders.AppendRow(Value(o), custkey, status, total, odate,
			Value(rng.Intn(NumPriorities)), Value(rng.Intn(2)))
	}
	return d
}

// CloneRelation deep-copies a relation so each engine owns its storage.
func CloneRelation(rel *store.Relation) *store.Relation {
	out := store.NewRelation(rel.Name, rel.Order...)
	for _, a := range rel.Order {
		src := rel.MustColumn(a).Vals
		out.MustColumn(a).Vals = append([]Value(nil), src...)
	}
	return out
}
