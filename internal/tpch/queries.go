package tpch

import (
	"math/rand"
	"sort"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/store"
)

// DB is one physical instantiation of the TPC-H database: every table
// wrapped by an engine of the same kind, each owning an independent copy of
// the data.
type DB struct {
	Kind   engine.Kind
	tables map[string]engine.Engine
	rels   map[string]*store.Relation
}

// NewDB clones the generated data and wraps each table in an engine of the
// given kind.
func NewDB(d *Data, kind engine.Kind) *DB {
	db := &DB{Kind: kind, tables: map[string]engine.Engine{}, rels: map[string]*store.Relation{}}
	for _, rel := range []*store.Relation{
		d.Region, d.Nation, d.Supplier, d.Customer, d.Part, d.PartSupp, d.Orders, d.Lineitem,
	} {
		c := CloneRelation(rel)
		db.rels[rel.Name] = c
		db.tables[rel.Name] = engine.New(kind, c)
	}
	return db
}

// Table returns the engine for a table.
func (db *DB) Table(name string) engine.Engine { return db.tables[name] }

// Rel returns the engine-owned relation for a table (used by the plain
// operators — joins, group-bys — that cracking does not affect).
func (db *DB) Rel(name string) *store.Relation { return db.rels[name] }

// QueryIDs lists the TPC-H queries the paper evaluates.
var QueryIDs = []int{1, 3, 4, 6, 7, 8, 10, 12, 14, 15, 19, 20}

// SelectionAttrs maps each query to the (table, attribute) pairs its
// cracked selections use; Prepare presorts these for the presorted engine.
var SelectionAttrs = map[int][][2]string{
	1:  {{"lineitem", "l_shipdate"}},
	3:  {{"customer", "c_mktsegment"}, {"orders", "o_orderdate"}, {"lineitem", "l_shipdate"}},
	4:  {{"orders", "o_orderdate"}},
	6:  {{"lineitem", "l_shipdate"}},
	7:  {{"lineitem", "l_shipdate"}},
	8:  {{"orders", "o_orderdate"}, {"part", "p_type"}},
	10: {{"orders", "o_orderdate"}, {"lineitem", "l_returnflag"}},
	12: {{"lineitem", "l_receiptdate"}},
	14: {{"lineitem", "l_shipdate"}},
	15: {{"lineitem", "l_shipdate"}},
	19: {{"lineitem", "l_quantity"}, {"part", "p_brand"}},
	20: {{"part", "p_brand"}, {"lineitem", "l_shipdate"}},
}

// Prepare presorts the copies a query needs (meaningful only for the
// presorted engine kind); returns the preparation cost.
func (db *DB) Prepare(q int) time.Duration {
	var total time.Duration
	for _, ta := range SelectionAttrs[q] {
		total += db.tables[ta[0]].Prepare(ta[1])
	}
	return total
}

// Params carries the per-run parameter variation (the paper runs 30 random
// variations per query).
type Params struct {
	Date                  Value
	Seg                   Value
	Disc, Qty             Value
	Mode1, Mode2          Value
	Brand, Brand2, Brand3 Value
	Nation1, Nation2      Value
	Region                Value
	PType                 Value
}

// RandomParams draws a parameter variation.
func RandomParams(rng *rand.Rand) Params {
	b := rng.Perm(NumBrands)
	n := rng.Perm(NumNations)
	m := rng.Perm(NumShipModes)
	return Params{
		Date:    Value(Date1993 + rng.Intn(Date1997-Date1993)),
		Seg:     Value(rng.Intn(NumSegments)),
		Disc:    Value(2 + rng.Intn(8)),
		Qty:     Value(20 + rng.Intn(20)),
		Mode1:   Value(m[0]),
		Mode2:   Value(m[1]),
		Brand:   Value(b[0]),
		Brand2:  Value(b[1]),
		Brand3:  Value(b[2]),
		Nation1: Value(n[0]),
		Nation2: Value(n[1]),
		Region:  Value(rng.Intn(NumRegions)),
		PType:   Value(rng.Intn(NumTypes)),
	}
}

// QueryFunc runs one TPC-H query variation and returns a result checksum
// used to verify that all engine kinds compute identical answers.
type QueryFunc func(db *DB, p Params) Value

// Queries maps query ids to implementations.
var Queries = map[int]QueryFunc{
	1: Q1, 3: Q3, 4: Q4, 6: Q6, 7: Q7, 8: Q8,
	10: Q10, 12: Q12, 14: Q14, 15: Q15, 19: Q19, 20: Q20,
}

func pred(attr string, p store.Pred) engine.AttrPred {
	return engine.AttrPred{Attr: attr, Pred: p}
}

func eq(attr string, v Value) engine.AttrPred {
	return engine.AttrPred{Attr: attr, Pred: store.Point(v)}
}

// Q1: pricing summary report. One selection (l_shipdate), six tuple
// reconstructions, group-by on two attributes — the paper's flagship
// multi-reconstruction query.
func Q1(db *DB, p Params) Value {
	res, _ := db.Table("lineitem").Query(engine.Query{
		Preds: []engine.AttrPred{pred("l_shipdate", store.Range(0, p.Date))},
		Projs: []string{"l_returnflag", "l_linestatus", "l_quantity",
			"l_extendedprice", "l_discount", "l_tax"},
	})
	type agg struct{ qty, price, disc, charge, count Value }
	groups := map[[2]Value]*agg{}
	for i := 0; i < res.N; i++ {
		k := [2]Value{res.Cols["l_returnflag"][i], res.Cols["l_linestatus"][i]}
		a := groups[k]
		if a == nil {
			a = &agg{}
			groups[k] = a
		}
		price := res.Cols["l_extendedprice"][i]
		disc := res.Cols["l_discount"][i]
		tax := res.Cols["l_tax"][i]
		a.qty += res.Cols["l_quantity"][i]
		a.price += price
		a.disc += price * (100 - disc) / 100
		a.charge += price * (100 - disc) * (100 + tax) / 10000
		a.count++
	}
	var keys [][2]Value
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
	})
	var sum Value
	for _, k := range keys {
		a := groups[k]
		sum = sum*31 + a.qty + a.price + a.disc + a.charge + a.count
	}
	return sum
}

// Q3: shipping priority. Three cracked selections on three tables, joined
// customer -> orders -> lineitem.
func Q3(db *DB, p Params) Value {
	cust, _ := db.Table("customer").Query(engine.Query{
		Preds: []engine.AttrPred{eq("c_mktsegment", p.Seg)},
		Projs: []string{"c_custkey"},
	})
	custSet := make(map[Value]bool, cust.N)
	for _, k := range cust.Cols["c_custkey"] {
		custSet[k] = true
	}
	ord, _ := db.Table("orders").Query(engine.Query{
		Preds: []engine.AttrPred{pred("o_orderdate", store.Range(0, p.Date))},
		Projs: []string{"o_orderkey", "o_custkey"},
	})
	ordSet := make(map[Value]bool, ord.N)
	for i := 0; i < ord.N; i++ {
		if custSet[ord.Cols["o_custkey"][i]] {
			ordSet[ord.Cols["o_orderkey"][i]] = true
		}
	}
	li, _ := db.Table("lineitem").Query(engine.Query{
		Preds: []engine.AttrPred{pred("l_shipdate", store.Range(p.Date+1, DateMax+1))},
		Projs: []string{"l_orderkey", "l_extendedprice", "l_discount"},
	})
	revenue := map[Value]Value{}
	for i := 0; i < li.N; i++ {
		ok := li.Cols["l_orderkey"][i]
		if ordSet[ok] {
			revenue[ok] += li.Cols["l_extendedprice"][i] * (100 - li.Cols["l_discount"][i]) / 100
		}
	}
	return sumTopValues(revenue, 10)
}

// Q4: order priority checking. Cracked selection on o_orderdate; the
// exists-subquery on lineitem (commitdate < receiptdate) is a plain scan,
// identical across engines.
func Q4(db *DB, p Params) Value {
	late := map[Value]bool{}
	li := db.Rel("lineitem")
	ck := li.MustColumn("l_commitdate").Vals
	rk := li.MustColumn("l_receiptdate").Vals
	ok := li.MustColumn("l_orderkey").Vals
	for i := range ok {
		if ck[i] < rk[i] {
			late[ok[i]] = true
		}
	}
	ord, _ := db.Table("orders").Query(engine.Query{
		Preds: []engine.AttrPred{pred("o_orderdate", store.Range(p.Date, p.Date+Quarter))},
		Projs: []string{"o_orderkey", "o_orderpriority"},
	})
	counts := make([]Value, NumPriorities)
	for i := 0; i < ord.N; i++ {
		if late[ord.Cols["o_orderkey"][i]] {
			counts[ord.Cols["o_orderpriority"][i]]++
		}
	}
	var sum Value
	for _, c := range counts {
		sum = sum*31 + c
	}
	return sum
}

// Q6: forecasting revenue change — a pure multi-selection query on
// lineitem, the best case for bit-vector sideways plans.
func Q6(db *DB, p Params) Value {
	res, _ := db.Table("lineitem").Query(engine.Query{
		Preds: []engine.AttrPred{
			pred("l_shipdate", store.Range(p.Date, p.Date+Year)),
			pred("l_discount", store.Pred{Lo: p.Disc - 1, Hi: p.Disc + 1, LoIncl: true, HiIncl: true}),
			pred("l_quantity", store.Range(0, p.Qty)),
		},
		Projs: []string{"l_extendedprice", "l_discount"},
	})
	var rev Value
	for i := 0; i < res.N; i++ {
		rev += res.Cols["l_extendedprice"][i] * res.Cols["l_discount"][i] / 100
	}
	return rev
}

// Q7: volume shipping between two nations, grouped by year.
func Q7(db *DB, p Params) Value {
	li, _ := db.Table("lineitem").Query(engine.Query{
		Preds: []engine.AttrPred{pred("l_shipdate", store.Range(Date1995, Date1997))},
		Projs: []string{"l_suppkey", "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"},
	})
	suppNation := db.Rel("supplier").MustColumn("s_nationkey").Vals
	custOf := db.Rel("orders").MustColumn("o_custkey").Vals
	custNation := db.Rel("customer").MustColumn("c_nationkey").Vals
	rev := map[[3]Value]Value{} // (suppNation, custNation, year)
	for i := 0; i < li.N; i++ {
		sn := suppNation[li.Cols["l_suppkey"][i]]
		cn := custNation[custOf[li.Cols["l_orderkey"][i]]]
		if !((sn == p.Nation1 && cn == p.Nation2) || (sn == p.Nation2 && cn == p.Nation1)) {
			continue
		}
		year := li.Cols["l_shipdate"][i] / Year
		rev[[3]Value{sn, cn, year}] += li.Cols["l_extendedprice"][i] * (100 - li.Cols["l_discount"][i]) / 100
	}
	return sortedMapChecksum3(rev)
}

// Q8: national market share. Cracked selections on o_orderdate and p_type.
func Q8(db *DB, p Params) Value {
	part, _ := db.Table("part").Query(engine.Query{
		Preds: []engine.AttrPred{eq("p_type", p.PType)},
		Projs: []string{"p_partkey"},
	})
	partSet := make(map[Value]bool, part.N)
	for _, k := range part.Cols["p_partkey"] {
		partSet[k] = true
	}
	ord, _ := db.Table("orders").Query(engine.Query{
		Preds: []engine.AttrPred{pred("o_orderdate", store.Range(Date1995, Date1997))},
		Projs: []string{"o_orderkey", "o_orderdate"},
	})
	ordDate := make(map[Value]Value, ord.N)
	for i := 0; i < ord.N; i++ {
		ordDate[ord.Cols["o_orderkey"][i]] = ord.Cols["o_orderdate"][i]
	}
	li := db.Rel("lineitem")
	lok := li.MustColumn("l_orderkey").Vals
	lpk := li.MustColumn("l_partkey").Vals
	lsk := li.MustColumn("l_suppkey").Vals
	lep := li.MustColumn("l_extendedprice").Vals
	ldc := li.MustColumn("l_discount").Vals
	suppNation := db.Rel("supplier").MustColumn("s_nationkey").Vals
	nationRegion := db.Rel("nation").MustColumn("n_regionkey").Vals
	var total, national [8]Value // per year bucket
	for i := range lok {
		od, ok := ordDate[lok[i]]
		if !ok || !partSet[lpk[i]] {
			continue
		}
		sn := suppNation[lsk[i]]
		if nationRegion[sn] != p.Region {
			continue
		}
		vol := lep[i] * (100 - ldc[i]) / 100
		y := od / Year
		total[y%8] += vol
		if sn == p.Nation1 {
			national[y%8] += vol
		}
	}
	var sum Value
	for i := range total {
		share := Value(0)
		if total[i] > 0 {
			share = national[i] * 10000 / total[i]
		}
		sum = sum*31 + share
	}
	return sum
}

// Q10: returned item reporting. Cracked selections on o_orderdate and
// l_returnflag.
func Q10(db *DB, p Params) Value {
	ord, _ := db.Table("orders").Query(engine.Query{
		Preds: []engine.AttrPred{pred("o_orderdate", store.Range(p.Date, p.Date+Quarter))},
		Projs: []string{"o_orderkey", "o_custkey"},
	})
	custOf := make(map[Value]Value, ord.N)
	for i := 0; i < ord.N; i++ {
		custOf[ord.Cols["o_orderkey"][i]] = ord.Cols["o_custkey"][i]
	}
	li, _ := db.Table("lineitem").Query(engine.Query{
		Preds: []engine.AttrPred{eq("l_returnflag", ReturnFlagR)},
		Projs: []string{"l_orderkey", "l_extendedprice", "l_discount"},
	})
	revenue := map[Value]Value{}
	for i := 0; i < li.N; i++ {
		if ck, ok := custOf[li.Cols["l_orderkey"][i]]; ok {
			revenue[ck] += li.Cols["l_extendedprice"][i] * (100 - li.Cols["l_discount"][i]) / 100
		}
	}
	return sumTopValues(revenue, 20)
}

// Q12: shipping modes and order priority. Cracked selection on
// l_receiptdate; mode and date-ordering filters applied on the aligned
// reconstruction.
func Q12(db *DB, p Params) Value {
	li, _ := db.Table("lineitem").Query(engine.Query{
		Preds: []engine.AttrPred{pred("l_receiptdate", store.Range(p.Date, p.Date+Year))},
		Projs: []string{"l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate", "l_receiptdate"},
	})
	prio := db.Rel("orders").MustColumn("o_orderpriority").Vals
	var high, low Value
	for i := 0; i < li.N; i++ {
		mode := li.Cols["l_shipmode"][i]
		if mode != p.Mode1 && mode != p.Mode2 {
			continue
		}
		if !(li.Cols["l_commitdate"][i] < li.Cols["l_receiptdate"][i] &&
			li.Cols["l_shipdate"][i] < li.Cols["l_commitdate"][i]) {
			continue
		}
		if prio[li.Cols["l_orderkey"][i]] < 2 {
			high++
		} else {
			low++
		}
	}
	return high*31 + low
}

// Q14: promotion effect. Cracked selection on l_shipdate; part type lookup
// via positional join.
func Q14(db *DB, p Params) Value {
	li, _ := db.Table("lineitem").Query(engine.Query{
		Preds: []engine.AttrPred{pred("l_shipdate", store.Range(p.Date, p.Date+Month))},
		Projs: []string{"l_partkey", "l_extendedprice", "l_discount"},
	})
	ptype := db.Rel("part").MustColumn("p_type").Vals
	var promo, total Value
	for i := 0; i < li.N; i++ {
		v := li.Cols["l_extendedprice"][i] * (100 - li.Cols["l_discount"][i]) / 100
		total += v
		if ptype[li.Cols["l_partkey"][i]]/10 == 0 { // promo category
			promo += v
		}
	}
	if total == 0 {
		return 0
	}
	return promo * 10000 / total
}

// Q15: top supplier. Cracked selection on l_shipdate; group-by suppkey.
func Q15(db *DB, p Params) Value {
	li, _ := db.Table("lineitem").Query(engine.Query{
		Preds: []engine.AttrPred{pred("l_shipdate", store.Range(p.Date, p.Date+Quarter))},
		Projs: []string{"l_suppkey", "l_extendedprice", "l_discount"},
	})
	revenue := map[Value]Value{}
	for i := 0; i < li.N; i++ {
		revenue[li.Cols["l_suppkey"][i]] += li.Cols["l_extendedprice"][i] * (100 - li.Cols["l_discount"][i]) / 100
	}
	var best Value
	for _, v := range revenue {
		if v > best {
			best = v
		}
	}
	return best
}

// Q19: discounted revenue — the complex disjunctive where clause the paper
// highlights: three brand/container/quantity/size clause groups, requiring
// many tuple reconstructions in a column-store.
func Q19(db *DB, p Params) Value {
	li, _ := db.Table("lineitem").Query(engine.Query{
		Preds: []engine.AttrPred{
			pred("l_quantity", store.Pred{Lo: 1, Hi: 11, LoIncl: true, HiIncl: true}),
			pred("l_quantity", store.Pred{Lo: 10, Hi: 20, LoIncl: true, HiIncl: true}),
			pred("l_quantity", store.Pred{Lo: 20, Hi: 30, LoIncl: true, HiIncl: true}),
		},
		Projs:       []string{"l_partkey", "l_quantity", "l_extendedprice", "l_discount"},
		Disjunctive: true,
	})
	part := db.Rel("part")
	brand := part.MustColumn("p_brand").Vals
	container := part.MustColumn("p_container").Vals
	size := part.MustColumn("p_size").Vals
	var rev Value
	for i := 0; i < li.N; i++ {
		pk := li.Cols["l_partkey"][i]
		qty := li.Cols["l_quantity"][i]
		b, c, s := brand[pk], container[pk], size[pk]
		match := (b == p.Brand && c < 10 && qty >= 1 && qty <= 11 && s >= 1 && s <= 5) ||
			(b == p.Brand2 && c >= 10 && c < 20 && qty >= 10 && qty <= 20 && s >= 1 && s <= 10) ||
			(b == p.Brand3 && c >= 20 && c < 30 && qty >= 20 && qty <= 30 && s >= 1 && s <= 15)
		if match {
			rev += li.Cols["l_extendedprice"][i] * (100 - li.Cols["l_discount"][i]) / 100
		}
	}
	return rev
}

// Q20: potential part promotion. Cracked selections on p_brand and
// l_shipdate; the availqty correlation uses partsupp directly.
func Q20(db *DB, p Params) Value {
	part, _ := db.Table("part").Query(engine.Query{
		Preds: []engine.AttrPred{eq("p_brand", p.Brand)},
		Projs: []string{"p_partkey"},
	})
	partSet := make(map[Value]bool, part.N)
	for _, k := range part.Cols["p_partkey"] {
		partSet[k] = true
	}
	li, _ := db.Table("lineitem").Query(engine.Query{
		Preds: []engine.AttrPred{pred("l_shipdate", store.Range(p.Date, p.Date+Year))},
		Projs: []string{"l_partkey", "l_suppkey", "l_quantity"},
	})
	shipped := map[[2]Value]Value{}
	for i := 0; i < li.N; i++ {
		pk := li.Cols["l_partkey"][i]
		if partSet[pk] {
			shipped[[2]Value{pk, li.Cols["l_suppkey"][i]}] += li.Cols["l_quantity"][i]
		}
	}
	ps := db.Rel("partsupp")
	pspk := ps.MustColumn("ps_partkey").Vals
	pssk := ps.MustColumn("ps_suppkey").Vals
	psaq := ps.MustColumn("ps_availqty").Vals
	supps := map[Value]bool{}
	for i := range pspk {
		if q, ok := shipped[[2]Value{pspk[i], pssk[i]}]; ok && psaq[i]*2 > q {
			supps[pssk[i]] = true
		}
	}
	var sum Value
	for s := range supps {
		sum += s
	}
	return sum
}

// sumTopValues returns a checksum of the k largest values in m
// (deterministic under map iteration).
func sumTopValues(m map[Value]Value, k int) Value {
	vals := make([]Value, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	if len(vals) > k {
		vals = vals[:k]
	}
	var sum Value
	for _, v := range vals {
		sum = sum*31 + v
	}
	return sum
}

func sortedMapChecksum3(m map[[3]Value]Value) Value {
	keys := make([][3]Value, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	var sum Value
	for _, k := range keys {
		sum = sum*31 + m[k]
	}
	return sum
}
