package sideways

import (
	"math/rand"
	"testing"

	"crackstore/internal/crack"
	"crackstore/internal/store"
)

// TestPolicyFrozenPerSet: a map set freezes the store policy at creation,
// so changing Store.Policy mid-run configures future sets without
// misaligning existing ones — every map of a set must replay the tape
// under one policy.
func TestPolicyFrozenPerSet(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rel := buildRel(rng, 6000, []string{"A", "B", "C"}, 600)
	nv := &naive{rel: rel, dead: map[int]bool{}}
	s := NewStore(rel)

	check := func(attr string, pred store.Pred, ctx string) {
		t.Helper()
		preds := []AttrPred{{Attr: attr, Pred: pred}}
		projs := []string{"B", "C"}
		if attr == "B" {
			projs = []string{"A", "C"}
		}
		res := s.MultiSelect(preds, projs, false)
		equalRows(t, resultRows(res, projs), nv.rows(preds, projs, false), ctx)
	}

	// Set A materializes under the default policy.
	check("A", store.Range(100, 140), "A under default")
	s.Policy = crack.Policy{Kind: crack.Stochastic, Cap: 256, Seed: 4}
	// Set A keeps its frozen default policy: later cracks and map
	// materializations (new tail attrs replay the tape) must stay aligned.
	for q := 0; q < 12; q++ {
		lo := rng.Int63n(600)
		check("A", store.Range(lo, lo+1+rng.Int63n(80)), "A after policy change")
	}
	for _, m := range s.sets["A"].maps {
		if m.pairs.Policy.Kind != crack.Default {
			t.Fatalf("map of pre-change set adopted policy %v", m.pairs.Policy.Kind)
		}
	}

	// Set B materializes under the stochastic policy and must cap pieces.
	for q := 0; q < 12; q++ {
		lo := rng.Int63n(600)
		check("B", store.Range(lo, lo+1+rng.Int63n(40)), "B under stochastic")
	}
	sawAux := false
	for _, m := range s.sets["B"].maps {
		if m.pairs.Policy.Kind != crack.Stochastic {
			t.Fatalf("map of post-change set has policy %v, want stochastic", m.pairs.Policy.Kind)
		}
		if m.pairs.Stats.Aux > 0 {
			sawAux = true
		}
	}
	if !sawAux {
		t.Fatal("stochastic set introduced no auxiliary pivots on 6000 tuples with cap 256")
	}
}

// TestPolicyStoreWithUpdates: a stochastic store must answer a mixed
// select/insert/delete workload exactly like the naive evaluator —
// auxiliary pivots must ripple like ordinary boundaries through tape
// replay on late-materialized maps.
func TestPolicyStoreWithUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := buildRel(rng, 4000, []string{"A", "B", "C"}, 400)
	nv := &naive{rel: rel, dead: map[int]bool{}}
	s := NewStore(rel)
	s.Policy = crack.Policy{Kind: crack.Stochastic, Cap: 128, Seed: 11}

	projPick := [][]string{{"B"}, {"B", "C"}, {"C"}}
	for q := 0; q < 40; q++ {
		lo := rng.Int63n(400)
		preds := []AttrPred{{Attr: "A", Pred: store.Range(lo, lo+1+rng.Int63n(60))}}
		projs := projPick[q%len(projPick)]
		res := s.MultiSelect(preds, projs, false)
		equalRows(t, resultRows(res, projs), nv.rows(preds, projs, false), "stochastic store")
		switch {
		case q%4 == 3:
			vals := []Value{rng.Int63n(400), rng.Int63n(400), rng.Int63n(400)}
			s.Insert(vals...)
		case q%9 == 8:
			k := rng.Intn(rel.NumRows())
			s.Delete(k)
			nv.dead[k] = true
		}
	}
}
