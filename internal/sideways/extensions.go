package sideways

import (
	"math"

	"crackstore/internal/crackindex"
	"crackstore/internal/store"
)

// This file implements the operator extensions Section 3.4 sketches as
// natural beneficiaries of the clustering information in cracker maps:
// aggregates that read only the relevant end pieces ("a max can consider
// only the last piece of a map") and a partitioned cracker join ("a join
// can be performed in a partitioned like way exploiting disjoint ranges in
// the input maps").

// fullPred matches every tuple.
var fullPred = store.Pred{Lo: math.MinInt64, Hi: math.MaxInt64, LoIncl: true, HiIncl: true}

// MergePendingAll converts every pending insertion and deletion of the set
// into tape entries, regardless of value range. Plans that read whole maps
// (disjunctions) call this before querying.
func (set *Set) MergePendingAll() { set.mergePending(fullPred) }

// MaxAttr returns the maximum live value of attr. When a cracker map for
// the attribute exists, only the last non-empty piece (plus merged pending
// updates) is inspected instead of the whole column.
func (s *Store) MaxAttr(attr string) (Value, bool) {
	return s.extremeAttr(attr, true)
}

// MinAttr returns the minimum live value of attr, reading only the first
// non-empty piece of an existing cracker map.
func (s *Store) MinAttr(attr string) (Value, bool) {
	return s.extremeAttr(attr, false)
}

func (s *Store) extremeAttr(attr string, wantMax bool) (Value, bool) {
	set := s.sets[attr]
	if set == nil || (len(set.maps) == 0 && set.keyMap == nil) {
		return s.scanExtreme(attr, wantMax)
	}
	m := set.MostAlignedMap()
	if m == nil {
		m = set.keyMap
	}
	// Collect the piece boundaries of the most aligned map. Values ascend
	// across pieces, so the extreme lives in the outermost non-empty piece
	// after pending updates for that range are merged.
	type bp struct {
		b   crackindex.Bound
		pos int
	}
	var bounds []bp
	m.pairs.Idx.Walk(func(b crackindex.Bound, pos int) { bounds = append(bounds, bp{b, pos}) })
	if len(bounds) == 0 {
		return s.scanExtreme(attr, wantMax)
	}
	// Probe pieces from the relevant end inward. Each probe issues a
	// set-level query for the piece's value range so pending updates merge
	// and alignment stays correct; the probed area is the piece only.
	for i := range bounds {
		var pred store.Pred
		if wantMax {
			b := bounds[len(bounds)-1-i].b
			pred = store.Pred{Lo: b.V, Hi: math.MaxInt64, LoIncl: b.Incl, HiIncl: true}
		} else {
			b := bounds[i].b
			pred = store.Pred{Lo: math.MinInt64, Hi: b.V, LoIncl: true, HiIncl: !b.Incl}
		}
		if v, ok := s.pieceExtreme(set, pred, wantMax); ok {
			return v, true
		}
	}
	// Every piece probe came back empty: fall back to the full range.
	return s.pieceExtreme(set, fullPred, wantMax)
}

// pieceExtreme queries one value range on the set's most aligned map and
// reduces its head values.
func (s *Store) pieceExtreme(set *Set, pred store.Pred, wantMax bool) (Value, bool) {
	m := set.MostAlignedMap()
	tail := ""
	if m != nil {
		tail = m.tailAttr
	}
	lo, hi, used := set.Query(pred, []string{tail})
	if hi <= lo {
		return 0, false
	}
	head := used[0].pairs.Head[lo:hi]
	best := head[0]
	for _, v := range head[1:] {
		if wantMax && v > best || !wantMax && v < best {
			best = v
		}
	}
	return best, true
}

// scanExtreme is the fallback when no cracking knowledge exists: a full
// scan of the base column skipping tombstoned tuples, plus pending state
// is irrelevant because base columns are append-only and tombstones are
// global.
func (s *Store) scanExtreme(attr string, wantMax bool) (Value, bool) {
	col := s.rel.MustColumn(attr)
	found := false
	var best Value
	for key, v := range col.Vals {
		if s.tombstones[key] {
			continue
		}
		if !found || (wantMax && v > best) || (!wantMax && v < best) {
			best = v
			found = true
		}
	}
	return best, found
}

// KeyPair is one cracker-join match: the tuple keys of the left and right
// inputs.
type KeyPair struct {
	LKey, RKey Value
}

// CrackerJoin joins ls.lAttr = rs.rAttr and returns matching key pairs.
// Instead of building one hash table over a full column, it range-
// partitions both sides by cracking their key maps on shared boundaries —
// disjoint ranges join independently with cache-sized hash tables, and the
// partitioning work is retained as cracking knowledge for future queries
// (Section 3.4's "partitioned like way" join).
func CrackerJoin(ls *Store, lAttr string, rs *Store, rAttr string, parts int) []KeyPair {
	if parts < 1 {
		parts = 1
	}
	lLo, lHi := ls.colStats(lAttr)
	rLo, rHi := rs.colStats(rAttr)
	lo, hi := lLo, lHi
	if rLo < lo {
		lo = rLo
	}
	if rHi > hi {
		hi = rHi
	}
	var out []KeyPair
	if hi < lo {
		return out
	}
	width := (hi - lo + Value(parts)) / Value(parts)
	if width < 1 {
		width = 1
	}
	lSet := ls.Set(lAttr)
	rSet := rs.Set(rAttr)
	for p := 0; p < parts; p++ {
		plo := lo + Value(p)*width
		phi := plo + width
		pred := store.Pred{Lo: plo, Hi: phi, LoIncl: true, HiIncl: false}
		if p == parts-1 {
			pred.Hi = hi
			pred.HiIncl = true
		}
		la, lb, lm := lSet.QueryKeys(pred)
		ra, rb, rm := rSet.QueryKeys(pred)
		if lb <= la || rb <= ra {
			continue
		}
		// Hash join within the partition: build on the smaller side.
		lHead, lTail := lm.pairs.Head[la:lb], lm.pairs.Tail[la:lb]
		rHead, rTail := rm.pairs.Head[ra:rb], rm.pairs.Tail[ra:rb]
		if len(lHead) <= len(rHead) {
			ht := make(map[Value][]Value, len(lHead))
			for i, v := range lHead {
				ht[v] = append(ht[v], lTail[i])
			}
			for i, v := range rHead {
				for _, lk := range ht[v] {
					out = append(out, KeyPair{LKey: lk, RKey: rTail[i]})
				}
			}
		} else {
			ht := make(map[Value][]Value, len(rHead))
			for i, v := range rHead {
				ht[v] = append(ht[v], rTail[i])
			}
			for i, v := range lHead {
				for _, rk := range ht[v] {
					out = append(out, KeyPair{LKey: lTail[i], RKey: rk})
				}
			}
		}
	}
	return out
}

// QueryKeys runs the set-level sideways select over the key map M_Akey:
// it merges pending updates, cracks, aligns, and returns the qualifying
// area of the aligned key map (head = attribute values, tail = keys).
func (set *Set) QueryKeys(pred store.Pred) (lo, hi int, m *Map) {
	if set.keyMap == nil {
		set.keyMap = set.newMap("")
	}
	set.mergePending(pred)
	set.tape = append(set.tape, entry{kind: entryCrack, pred: pred})
	set.replay(set.keyMap, len(set.tape))
	set.keyMap.access++
	lo, hi = areaOf(set.keyMap, pred)
	return lo, hi, set.keyMap
}
