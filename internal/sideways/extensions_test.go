package sideways

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crackstore/internal/store"
)

func TestMaxMinAttrNoMaps(t *testing.T) {
	rel := store.NewRelation("R", "A", "B")
	rel.AppendRow(5, 1)
	rel.AppendRow(9, 2)
	rel.AppendRow(2, 3)
	s := NewStore(rel)
	if m, ok := s.MaxAttr("A"); !ok || m != 9 {
		t.Fatalf("MaxAttr = %d,%v", m, ok)
	}
	if m, ok := s.MinAttr("A"); !ok || m != 2 {
		t.Fatalf("MinAttr = %d,%v", m, ok)
	}
}

func TestMaxAttrUsesLastPiece(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := buildRel(rng, 2000, []string{"A", "B"}, 10000)
	s := NewStore(rel)
	// Crack the map so pieces exist.
	s.SelectProject("A", store.Range(2000, 4000), []string{"B"})
	s.SelectProject("A", store.Range(7000, 9000), []string{"B"})
	truth, _ := store.Max(rel.MustColumn("A").Vals)
	if m, ok := s.MaxAttr("A"); !ok || m != truth {
		t.Fatalf("MaxAttr = %d, want %d", m, truth)
	}
	tmin, _ := store.Min(rel.MustColumn("A").Vals)
	if m, ok := s.MinAttr("A"); !ok || m != tmin {
		t.Fatalf("MinAttr = %d, want %d", m, tmin)
	}
}

func TestMaxAttrWithUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := buildRel(rng, 500, []string{"A", "B"}, 1000)
	s := NewStore(rel)
	s.SelectProject("A", store.Range(100, 900), []string{"B"})
	// Insert a new global maximum; it must be visible via pending merge.
	s.Insert(5000, 1)
	if m, ok := s.MaxAttr("A"); !ok || m != 5000 {
		t.Fatalf("MaxAttr after insert = %d, want 5000", m)
	}
	// Delete it again: the max must fall back to the base data.
	key := rel.NumRows() - 1
	s.Delete(key)
	truth := Value(-1)
	for k, v := range rel.MustColumn("A").Vals {
		if k != key && v > truth {
			truth = v
		}
	}
	if m, ok := s.MaxAttr("A"); !ok || m != truth {
		t.Fatalf("MaxAttr after delete = %d, want %d", m, truth)
	}
}

// Property: MaxAttr/MinAttr agree with a scan under random cracking and
// random updates.
func TestQuickExtremesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := buildRel(rng, 300, []string{"A", "B"}, 500)
		s := NewStore(rel)
		dead := map[int]bool{}
		for step := 0; step < 30; step++ {
			switch rng.Intn(5) {
			case 0:
				s.Insert(Value(rng.Int63n(500)), Value(rng.Int63n(500)))
			case 1:
				k := rng.Intn(rel.NumRows())
				if !dead[k] {
					s.Delete(k)
					dead[k] = true
				}
			case 2:
				lo := rng.Int63n(500)
				s.SelectProject("A", store.Range(lo, lo+100), []string{"B"})
			default:
				var want Value
				found := false
				for k, v := range rel.MustColumn("A").Vals {
					if dead[k] {
						continue
					}
					if !found || v > want {
						want, found = v, true
					}
				}
				got, ok := s.MaxAttr("A")
				if ok != found || (found && got != want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func naiveJoinPairs(lrel, rrel *store.Relation, lAttr, rAttr string,
	ldead, rdead map[int]bool) map[[2]Value]int {
	out := map[[2]Value]int{}
	lv := lrel.MustColumn(lAttr).Vals
	rv := rrel.MustColumn(rAttr).Vals
	for i, a := range lv {
		if ldead[i] {
			continue
		}
		for j, b := range rv {
			if rdead[j] {
				continue
			}
			if a == b {
				out[[2]Value{Value(i), Value(j)}]++
			}
		}
	}
	return out
}

func TestCrackerJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lrel := buildRel(rng, 300, []string{"A", "B"}, 100)
	rrel := buildRel(rng, 250, []string{"C", "D"}, 100)
	ls, rs := NewStore(lrel), NewStore(rrel)
	for _, parts := range []int{1, 4, 16} {
		got := CrackerJoin(ls, "A", rs, "C", parts)
		want := naiveJoinPairs(lrel, rrel, "A", "C", nil, nil)
		if len(got) != lenPairs(want) {
			t.Fatalf("parts=%d: %d pairs, want %d", parts, len(got), lenPairs(want))
		}
		for _, p := range got {
			if want[[2]Value{p.LKey, p.RKey}] == 0 {
				t.Fatalf("parts=%d: unexpected pair %v", parts, p)
			}
		}
	}
}

func lenPairs(m map[[2]Value]int) int {
	n := 0
	for _, c := range m {
		n += c
	}
	return n
}

func TestCrackerJoinWithUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lrel := buildRel(rng, 200, []string{"A", "B"}, 60)
	rrel := buildRel(rng, 200, []string{"C", "D"}, 60)
	ls, rs := NewStore(lrel), NewStore(rrel)
	// Touch both stores so updates become pending rather than baked in.
	CrackerJoin(ls, "A", rs, "C", 4)
	ldead, rdead := map[int]bool{}, map[int]bool{}
	for i := 0; i < 20; i++ {
		ls.Insert(Value(rng.Int63n(60)), 0)
		rs.Insert(Value(rng.Int63n(60)), 0)
		lk, rk := rng.Intn(200), rng.Intn(200)
		if !ldead[lk] {
			ls.Delete(lk)
			ldead[lk] = true
		}
		if !rdead[rk] {
			rs.Delete(rk)
			rdead[rk] = true
		}
	}
	got := CrackerJoin(ls, "A", rs, "C", 8)
	want := naiveJoinPairs(lrel, rrel, "A", "C", ldead, rdead)
	if len(got) != lenPairs(want) {
		t.Fatalf("%d pairs, want %d", len(got), lenPairs(want))
	}
	for _, p := range got {
		if want[[2]Value{p.LKey, p.RKey}] == 0 {
			t.Fatalf("unexpected pair %v", p)
		}
	}
}

// Property: CrackerJoin cardinality equals the key-frequency product sum
// for any partition count, and repeated joins (reusing cracked maps) give
// identical results.
func TestQuickCrackerJoin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lrel := buildRel(rng, 150, []string{"A", "B"}, 40)
		rrel := buildRel(rng, 150, []string{"C", "D"}, 40)
		ls, rs := NewStore(lrel), NewStore(rrel)
		lc, rc := map[Value]int{}, map[Value]int{}
		for _, v := range lrel.MustColumn("A").Vals {
			lc[v]++
		}
		for _, v := range rrel.MustColumn("C").Vals {
			rc[v]++
		}
		want := 0
		for k, c := range lc {
			want += c * rc[k]
		}
		parts := 1 + rng.Intn(10)
		first := CrackerJoin(ls, "A", rs, "C", parts)
		second := CrackerJoin(ls, "A", rs, "C", parts)
		if len(first) != want || len(second) != want {
			return false
		}
		canon := func(ps []KeyPair) []KeyPair {
			out := append([]KeyPair(nil), ps...)
			sort.Slice(out, func(i, j int) bool {
				if out[i].LKey != out[j].LKey {
					return out[i].LKey < out[j].LKey
				}
				return out[i].RKey < out[j].RKey
			})
			return out
		}
		a, b := canon(first), canon(second)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCrackerJoinVsHash(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 16
	lrel := store.Build("L", n, []string{"A", "B"}, func(string, int) Value {
		return rng.Int63n(int64(n))
	})
	rrel := store.Build("R", n, []string{"C", "D"}, func(string, int) Value {
		return rng.Int63n(int64(n))
	})
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store.Join(lrel.MustColumn("A").Vals, rrel.MustColumn("C").Vals)
		}
	})
	b.Run("cracker16", func(b *testing.B) {
		ls, rs := NewStore(lrel), NewStore(rrel)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CrackerJoin(ls, "A", rs, "C", 16)
		}
	})
}
