package sideways

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crackstore/internal/store"
)

// TestDisjunctiveSeesUnmergedInsert is the regression test for the
// disjunctive-merge bug: a pending insert that matches only a non-head
// disjunct must still appear in the result.
func TestDisjunctiveSeesUnmergedInsert(t *testing.T) {
	rel := store.NewRelation("R", "A", "B", "C")
	rel.AppendRow(10, 500, 1)
	rel.AppendRow(20, 600, 2)
	rel.AppendRow(900, 50, 3)
	s := NewStore(rel)
	// Materialize the set so the insert becomes pending rather than baked.
	s.SelectProject("A", store.Range(0, 1000), []string{"B"})
	// New tuple: A=15 matches the A-disjunct; B=999 does not matter.
	s.Insert(15, 999, 4)
	// Another new tuple: A=800 does NOT match the A-disjunct but its B=55
	// matches the B-disjunct — before the fix this row was lost.
	s.Insert(800, 55, 5)
	res := s.MultiSelect([]AttrPred{
		{Attr: "A", Pred: store.Range(0, 100)}, // head candidate (selective)
		{Attr: "B", Pred: store.Range(40, 60)},
	}, []string{"C"}, true)
	want := map[Value]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	if res.N != len(want) {
		t.Fatalf("N = %d, want %d", res.N, len(want))
	}
	for _, c := range res.Cols["C"] {
		if !want[c] {
			t.Fatalf("unexpected C value %d", c)
		}
	}
}

// TestDisjunctiveSeesUnmergedDelete: a pending deletion outside the head
// predicate's range must be honored by a disjunctive plan.
func TestDisjunctiveSeesUnmergedDelete(t *testing.T) {
	rel := store.NewRelation("R", "A", "B", "C")
	rel.AppendRow(10, 500, 1)
	rel.AppendRow(800, 55, 2) // matches only the B-disjunct
	s := NewStore(rel)
	s.SelectProject("A", store.Range(0, 1000), []string{"B"})
	s.Delete(1)
	res := s.MultiSelect([]AttrPred{
		{Attr: "A", Pred: store.Range(0, 100)},
		{Attr: "B", Pred: store.Range(40, 60)},
	}, []string{"C"}, true)
	if res.N != 1 || res.Cols["C"][0] != 1 {
		t.Fatalf("deleted tuple leaked into disjunction: %v", res.Cols["C"])
	}
}

// Property: disjunctive multi-selections agree with naive under interleaved
// updates (the conjunctive variant is covered by TestQuickUpdates).
func TestQuickDisjunctiveWithUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := buildRel(rng, 200, []string{"A", "B", "C"}, 50)
		s := NewStore(rel)
		nv := &naive{rel: rel, dead: map[int]bool{}}
		var live []int
		for i := 0; i < 200; i++ {
			live = append(live, i)
		}
		for step := 0; step < 40; step++ {
			switch rng.Intn(4) {
			case 0:
				k := s.Insert(Value(rng.Int63n(50)), Value(rng.Int63n(50)), Value(rng.Int63n(50)))
				live = append(live, k)
			case 1:
				if len(live) > 0 {
					i := rng.Intn(len(live))
					k := live[i]
					live = append(live[:i], live[i+1:]...)
					s.Delete(k)
					nv.dead[k] = true
				}
			default:
				lo1, lo2 := rng.Int63n(50), rng.Int63n(50)
				preds := []AttrPred{
					{Attr: "A", Pred: store.Range(lo1, lo1+10)},
					{Attr: "B", Pred: store.Range(lo2, lo2+10)},
				}
				res := s.MultiSelect(preds, []string{"C"}, true)
				want := nv.rows(preds, []string{"C"}, true)
				g := canon(resultRows(res, []string{"C"}))
				w := canon(want)
				if len(g) != len(w) {
					return false
				}
				for i := range w {
					if g[i] != w[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
