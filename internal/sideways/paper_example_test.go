package sideways

import (
	"testing"

	"crackstore/internal/store"
)

// TestPaperFigure3 replays the multi-selection example of Figure 3:
//
//	select D from R where 3<A<10 and 4<B<8 and 1<C<7
//
// over the paper's data, via select_create_bv / select_refine_bv /
// reconstruct on the aligned maps of the chosen set S_A.
func TestPaperFigure3(t *testing.T) {
	a := []Value{12, 3, 5, 9, 8, 22, 7, 26, 4, 2, 7, 9, 2, 6}
	b := []Value{10, 7, 11, 16, 2, 5, 8, 3, 6, 2, 1, 6, 9, 12}
	// The paper's figure lists C = [3,6,2,1,6,9,12,2,11,17,3,...]; the
	// exact values beyond what the figure shows are immaterial — we use a
	// full 14-tuple column consistent with the depicted qualifying rows.
	c := []Value{3, 6, 2, 1, 6, 9, 12, 2, 11, 17, 3, 5, 8, 4}
	d := []Value{9, 4, 2, 10, 12, 19, 3, 6, 5, 8, 1, 7, 11, 13}
	rel := store.NewRelation("R", "A", "B", "C", "D")
	for i := range a {
		rel.AppendRow(a[i], b[i], c[i], d[i])
	}
	s := NewStore(rel)
	preds := []AttrPred{
		{Attr: "A", Pred: store.Open(3, 10)},
		{Attr: "B", Pred: store.Open(4, 8)},
		{Attr: "C", Pred: store.Open(1, 7)},
	}
	res := s.MultiSelect(preds, []string{"D"}, false)

	// Naive reference.
	var want []Value
	for i := range a {
		if a[i] > 3 && a[i] < 10 && b[i] > 4 && b[i] < 8 && c[i] > 1 && c[i] < 7 {
			want = append(want, d[i])
		}
	}
	if res.N != len(want) {
		t.Fatalf("N = %d, want %d", res.N, len(want))
	}
	got := map[Value]int{}
	for _, v := range res.Cols["D"] {
		got[v]++
	}
	for _, v := range want {
		if got[v] == 0 {
			t.Fatalf("missing D value %d", v)
		}
		got[v]--
	}

	// The plan must have used a single map set (the most selective
	// predicate's) with one map per other attribute, all aligned.
	sets := 0
	for _, attr := range []string{"A", "B", "C"} {
		if s.SetIfExists(attr) != nil {
			sets++
		}
	}
	if sets != 1 {
		t.Fatalf("multi-selection materialized %d sets, want 1", sets)
	}
}

// TestFigure3OperatorPipeline exercises the three bit-vector operators
// directly, as the figure shows them: create over the cracked area, refine,
// reconstruct.
func TestFigure3OperatorPipeline(t *testing.T) {
	a := []Value{12, 3, 5, 9, 8, 22, 7, 26, 4, 2, 7, 9, 2, 6}
	b := []Value{10, 7, 11, 16, 2, 5, 8, 3, 6, 2, 1, 6, 9, 12}
	c := []Value{3, 6, 2, 1, 6, 9, 12, 2, 11, 17, 3, 5, 8, 4}
	d := []Value{9, 4, 2, 10, 12, 19, 3, 6, 5, 8, 1, 7, 11, 13}
	rel := store.NewRelation("R", "A", "B", "C", "D")
	for i := range a {
		rel.AppendRow(a[i], b[i], c[i], d[i])
	}
	s := NewStore(rel)
	set := s.Set("A")
	predA := store.Open(3, 10)
	lo, hi, used := set.Query(predA, []string{"B", "C", "D"})
	if hi <= lo {
		t.Fatal("empty candidate area")
	}
	// All three maps share the cracked area and are positionally aligned.
	for _, m := range used {
		l2, h2 := areaOf(m, predA)
		if l2 != lo || h2 != hi {
			t.Fatalf("map areas diverge: [%d,%d) vs [%d,%d)", l2, h2, lo, hi)
		}
	}
	bv := SelectCreateBV(used[0].Pairs().Tail, lo, hi, store.Open(4, 8))
	SelectRefineBV(used[1].Pairs().Tail, lo, hi, store.Open(1, 7), bv)
	got := ReconstructBV(used[2].Pairs().Tail, lo, bv)
	var want []Value
	for i := range a {
		if a[i] > 3 && a[i] < 10 && b[i] > 4 && b[i] < 8 && c[i] > 1 && c[i] < 7 {
			want = append(want, d[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("pipeline returned %d values, want %d", len(got), len(want))
	}
}
