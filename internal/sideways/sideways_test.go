package sideways

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crackstore/internal/store"
)

// naive evaluates the same queries directly over base columns with
// tombstone filtering, producing rows in insertion order.
type naive struct {
	rel  *store.Relation
	dead map[int]bool
}

func (nv *naive) rows(preds []AttrPred, projs []string, disjunctive bool) [][]Value {
	var out [][]Value
	n := nv.rel.NumRows()
	for i := 0; i < n; i++ {
		if nv.dead[i] {
			continue
		}
		match := !disjunctive
		for _, ap := range preds {
			m := ap.Pred.Matches(nv.rel.MustColumn(ap.Attr).Vals[i])
			if disjunctive {
				match = match || m
			} else {
				match = match && m
			}
		}
		if !match {
			continue
		}
		row := make([]Value, len(projs))
		for j, attr := range projs {
			row[j] = nv.rel.MustColumn(attr).Vals[i]
		}
		out = append(out, row)
	}
	return out
}

// canon sorts rows lexicographically for multiset comparison.
func canon(rows [][]Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func resultRows(res Result, projs []string) [][]Value {
	rows := make([][]Value, res.N)
	for i := 0; i < res.N; i++ {
		row := make([]Value, len(projs))
		for j, attr := range projs {
			row[j] = res.Cols[attr][i]
		}
		rows[i] = row
	}
	return rows
}

func equalRows(t *testing.T, got, want [][]Value, ctx string) {
	t.Helper()
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d rows, want %d", ctx, len(g), len(w))
	}
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("%s: row mismatch at %d: %s vs %s", ctx, i, g[i], w[i])
		}
	}
}

func buildRel(rng *rand.Rand, n int, attrs []string, domain int64) *store.Relation {
	return store.Build("R", n, attrs, func(attr string, row int) Value {
		return Value(rng.Int63n(domain))
	})
}

// Figure 1: select B from R where 10<A<15 on the paper's example data.
func TestPaperFigure1(t *testing.T) {
	a := []Value{12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16}
	b := make([]Value, len(a))
	for i := range b {
		b[i] = Value(100 + i) // b_i = 100+i stands for the paper's b1..b13
	}
	rel := store.NewRelation("R", "A", "B")
	for i := range a {
		rel.AppendRow(a[i], b[i])
	}
	s := NewStore(rel)
	res := s.SelectProject("A", store.Open(10, 15), []string{"B"})
	// Qualifying: A=12 (b1=100), A=11 (b12=111).
	equalRows(t, resultRows(res, []string{"B"}), [][]Value{{100}, {111}}, "figure 1 q1")

	// Second query: select B from R where 5<=A<17.
	res = s.SelectProject("A", store.Range(5, 17), []string{"B"})
	want := [][]Value{}
	for i := range a {
		if a[i] >= 5 && a[i] < 17 {
			want = append(want, []Value{b[i]})
		}
	}
	equalRows(t, resultRows(res, []string{"B"}), want, "figure 1 q2")
	// The second query must further crack the same map, not rebuild it.
	set := s.SetIfExists("A")
	if set == nil || set.MapIfExists("B") == nil {
		t.Fatal("map M_AB not retained")
	}
	if set.TapeLen() != 2 {
		t.Fatalf("tape length = %d, want 2", set.TapeLen())
	}
}

// Figure 2: multi-projection queries must yield positionally aligned
// results after adaptive alignment.
func TestPaperFigure2Alignment(t *testing.T) {
	a := []Value{7, 4, 1, 2, 8, 3, 6}
	b := []Value{71, 41, 11, 21, 81, 31, 61} // b_i tied to a_i
	c := []Value{72, 42, 12, 22, 82, 32, 62} // c_i tied to a_i
	rel := store.NewRelation("R", "A", "B", "C")
	for i := range a {
		rel.AppendRow(a[i], b[i], c[i])
	}
	s := NewStore(rel)
	// Query 1: select B where A<3 — creates and cracks M_AB.
	s.SelectProject("A", store.Open(-1, 3), []string{"B"})
	// Query 2: select C where A<5 — creates and cracks M_AC differently.
	s.SelectProject("A", store.Open(-1, 5), []string{"C"})
	// Query 3: select B,C where A<4 — alignment must restore positional
	// correspondence: each result row must be a true (b_i, c_i) pair.
	res := s.SelectProject("A", store.Open(-1, 4), []string{"B", "C"})
	if res.N != 3 {
		t.Fatalf("N = %d, want 3", res.N)
	}
	for i := 0; i < res.N; i++ {
		bv, cv := res.Cols["B"][i], res.Cols["C"][i]
		if bv-1 != cv-2 {
			t.Fatalf("row %d not aligned: B=%d C=%d", i, bv, cv)
		}
	}
}

func TestLazyAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := buildRel(rng, 500, []string{"A", "B", "C"}, 100)
	s := NewStore(rel)
	s.SelectProject("A", store.Range(10, 20), []string{"B"})
	s.SelectProject("A", store.Range(30, 40), []string{"B"})
	s.SelectProject("A", store.Range(50, 60), []string{"C"})
	set := s.SetIfExists("A")
	mb, mc := set.MapIfExists("B"), set.MapIfExists("C")
	if mb.Cursor() != 2 {
		t.Fatalf("M_AB cursor = %d, want 2 (must not see C's crack eagerly)", mb.Cursor())
	}
	if mc.Cursor() != 3 {
		t.Fatalf("M_AC cursor = %d, want 3", mc.Cursor())
	}
	// Using B again must catch it up.
	s.SelectProject("A", store.Range(70, 80), []string{"B"})
	if mb.Cursor() != 4 {
		t.Fatalf("M_AB cursor after reuse = %d, want 4", mb.Cursor())
	}
}

// Property: sequences of single-selection multi-projection queries agree
// with the naive scan, including row alignment across projections.
func TestQuickSelectProject(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := buildRel(rng, 300, []string{"A", "B", "C", "D"}, 80)
		s := NewStore(rel)
		nv := &naive{rel: rel, dead: map[int]bool{}}
		projSets := [][]string{{"B"}, {"B", "C"}, {"B", "C", "D"}, {"C", "D"}}
		for q := 0; q < 25; q++ {
			lo := rng.Int63n(80)
			hi := lo + rng.Int63n(80-lo+1)
			pred := store.Pred{Lo: lo, Hi: hi, LoIncl: rng.Intn(2) == 0, HiIncl: rng.Intn(2) == 0}
			projs := projSets[rng.Intn(len(projSets))]
			res := s.SelectProject("A", pred, projs)
			want := nv.rows([]AttrPred{{"A", pred}}, projs, false)
			g, w := canon(resultRows(res, projs)), canon(want)
			if len(g) != len(w) {
				return false
			}
			for i := range w {
				if g[i] != w[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: conjunctive and disjunctive multi-selections agree with naive.
func TestQuickMultiSelect(t *testing.T) {
	f := func(seed int64, disjunctive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := buildRel(rng, 250, []string{"A", "B", "C", "D"}, 60)
		s := NewStore(rel)
		nv := &naive{rel: rel, dead: map[int]bool{}}
		attrs := []string{"A", "B", "C"}
		for q := 0; q < 15; q++ {
			nPred := 1 + rng.Intn(3)
			var preds []AttrPred
			seen := map[string]bool{}
			for len(preds) < nPred {
				attr := attrs[rng.Intn(len(attrs))]
				if seen[attr] {
					continue
				}
				seen[attr] = true
				lo := rng.Int63n(60)
				hi := lo + rng.Int63n(60-lo+1)
				preds = append(preds, AttrPred{attr, store.Range(lo, hi)})
			}
			projs := []string{"D", "A"}
			res := s.MultiSelect(preds, projs, disjunctive)
			want := nv.rows(preds, projs, disjunctive)
			g, w := canon(resultRows(res, projs)), canon(want)
			if len(g) != len(w) {
				return false
			}
			for i := range w {
				if g[i] != w[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved updates and queries stay consistent with an eager
// reference, exercising tape insert/delete entries and the key map.
func TestQuickUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := buildRel(rng, 200, []string{"A", "B", "C"}, 50)
		s := NewStore(rel)
		nv := &naive{rel: rel, dead: map[int]bool{}}
		var live []int
		for i := 0; i < 200; i++ {
			live = append(live, i)
		}
		for step := 0; step < 50; step++ {
			switch rng.Intn(4) {
			case 0:
				k := s.Insert(Value(rng.Int63n(50)), Value(rng.Int63n(50)), Value(rng.Int63n(50)))
				live = append(live, k)
			case 1:
				if len(live) > 0 {
					i := rng.Intn(len(live))
					k := live[i]
					live = append(live[:i], live[i+1:]...)
					s.Delete(k)
					nv.dead[k] = true
				}
			default:
				lo := rng.Int63n(50)
				hi := lo + rng.Int63n(50-lo+1)
				pred := store.Range(lo, hi)
				projs := []string{"B", "C"}
				res := s.SelectProject("A", pred, projs)
				want := nv.rows([]AttrPred{{"A", pred}}, projs, false)
				g, w := canon(resultRows(res, projs)), canon(want)
				if len(g) != len(w) {
					return false
				}
				for i := range w {
					if g[i] != w[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetDropsLFUMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := buildRel(rng, 100, []string{"A", "B", "C", "D", "E"}, 50)
	s := NewStore(rel)
	s.Budget = 250 // room for two maps of 100 plus slack
	// Use B often, C once.
	for i := 0; i < 5; i++ {
		s.SelectProject("A", store.Range(10, 20), []string{"B"})
	}
	s.SelectProject("A", store.Range(10, 20), []string{"C"})
	// Requesting D must drop C (LFU), not B.
	s.SelectProject("A", store.Range(10, 20), []string{"D"})
	set := s.SetIfExists("A")
	if set.MapIfExists("C") != nil {
		t.Fatal("LFU map C should have been dropped")
	}
	if set.MapIfExists("B") == nil {
		t.Fatal("hot map B should have survived")
	}
	if s.StorageTuples() > s.Budget {
		t.Fatalf("storage %d exceeds budget %d", s.StorageTuples(), s.Budget)
	}
	// Dropped map must be recreated correctly on demand.
	res := s.SelectProject("A", store.Range(0, 50), []string{"C"})
	nv := &naive{rel: rel, dead: map[int]bool{}}
	want := nv.rows([]AttrPred{{"A", store.Range(0, 50)}}, []string{"C"}, false)
	equalRows(t, resultRows(res, []string{"C"}), want, "recreated map")
}

func TestEstimateImprovesWithCracking(t *testing.T) {
	// Sorted-ish domain: values 0..999 shuffled.
	rng := rand.New(rand.NewSource(4))
	n := 1000
	rel := store.Build("R", n, []string{"A", "B"}, func(attr string, row int) Value {
		return Value(rng.Int63n(1000))
	})
	s := NewStore(rel)
	pred := store.Range(100, 300)
	truth := store.SelectCount(rel.MustColumn("A"), pred)
	// Fallback estimate (no maps): uniform assumption.
	est0 := s.EstimateSelectivity("A", pred)
	if est0 <= 0 || est0 > n {
		t.Fatalf("fallback estimate out of range: %d", est0)
	}
	// Crack exactly this range: estimate becomes exact.
	s.SelectProject("A", pred, []string{"B"})
	est1 := s.EstimateSelectivity("A", pred)
	if est1 != truth {
		t.Fatalf("post-crack estimate = %d, want exact %d", est1, truth)
	}
}

func TestMultiSelectChoosesMostSelectiveSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := buildRel(rng, 1000, []string{"A", "B", "C"}, 1000)
	s := NewStore(rel)
	// A-predicate very selective, B-predicate not.
	preds := []AttrPred{
		{"A", store.Range(0, 10)},
		{"B", store.Range(0, 900)},
	}
	s.MultiSelect(preds, []string{"C"}, false)
	if s.SetIfExists("A") == nil {
		t.Fatal("expected set S_A to be chosen/created")
	}
	if s.SetIfExists("B") != nil {
		t.Fatal("set S_B should not have been materialized")
	}
}

func TestDisjunctiveChoosesLeastSelectiveSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := buildRel(rng, 1000, []string{"A", "B", "C"}, 1000)
	s := NewStore(rel)
	preds := []AttrPred{
		{"A", store.Range(0, 10)},
		{"B", store.Range(0, 900)},
	}
	s.MultiSelect(preds, []string{"C"}, true)
	if s.SetIfExists("B") == nil {
		t.Fatal("expected set S_B (least selective) to be chosen")
	}
	if s.SetIfExists("A") != nil {
		t.Fatal("set S_A should not have been materialized")
	}
}

func TestStorageTuplesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := buildRel(rng, 100, []string{"A", "B", "C"}, 50)
	s := NewStore(rel)
	if s.StorageTuples() != 0 {
		t.Fatal("fresh store should use no map storage")
	}
	s.SelectProject("A", store.Range(0, 10), []string{"B", "C"})
	if got := s.StorageTuples(); got != 200 {
		t.Fatalf("StorageTuples = %d, want 200 (two maps of 100)", got)
	}
}

func BenchmarkSelectProjectConverging(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rel := store.Build("R", 1<<16, []string{"A", "B", "C"}, func(string, int) Value {
		return Value(rng.Int63n(1 << 16))
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewStore(rel)
		b.StartTimer()
		for q := 0; q < 50; q++ {
			lo := rng.Int63n(1 << 16)
			s.SelectProject("A", store.Range(lo, lo+(1<<13)), []string{"B", "C"})
		}
	}
}
