// Package sideways implements sideways cracking with fully materialized
// cracker maps (Section 3 of the paper).
//
// A cracker map M_AB is a two-column table: head = values of attribute A,
// tail = values of attribute B, pairwise from the same relational tuples.
// All maps with head A form the map set S_A. Every selection on A cracks the
// map(s) a query uses and is logged in the set's cracker tape T_A; a map is
// aligned (synchronized) by replaying the tape from its private cursor. The
// deterministic cracking algorithms in internal/crack guarantee that maps
// replaying the same tape prefix are physically identical in head order, so
// multi-attribute results are positionally aligned and tuple reconstruction
// is free (Section 3.2).
//
// Multi-selection queries use a single aligned set plus bit-vector filtering
// (Section 3.3); the set is chosen via the self-organizing histograms kept
// by the cracker indices. Updates follow Section 3.5: pending insertions and
// deletions per set, merged on demand by the Ripple algorithm and logged in
// the tape so all maps of the set apply them in the same order.
package sideways

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"crackstore/internal/bitvec"
	"crackstore/internal/crack"
	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

type entryKind uint8

const (
	entryCrack entryKind = iota
	entryInsert
	entryDelete
)

// entry is one cracker-tape record. Crack entries carry the predicate;
// insert entries the tuple keys to ripple-insert; delete entries the
// physical positions (valid at this tape point) to remove.
type entry struct {
	kind      entryKind
	pred      store.Pred
	keys      []int
	positions []int
}

// Map is a cracker map M_A,tail: head = A values, tail = values of the tail
// attribute (or tuple keys for the set's key map M_Akey).
type Map struct {
	tailAttr string // "" for the key map
	pairs    *crack.Pairs
	cursor   int   // tape position of the last replayed entry
	access   int64 // queries that used this map (for LFU storage management);
	// bumped atomically by the read-only path, plainly under exclusive access
}

// Len returns the number of tuples currently in the map.
func (m *Map) Len() int { return m.pairs.Len() }

// Cursor returns the map's tape cursor (for tests and map-set choice).
func (m *Map) Cursor() int { return m.cursor }

// Pairs exposes the underlying pairs (head/tail/index) read-only by
// convention; used by the engine for aggregates over clustered pieces.
func (m *Map) Pairs() *crack.Pairs { return m.pairs }

// Set is a map set S_A: the collection of cracker maps with head attribute
// A, their shared cracker tape T_A, and the set's pending updates.
type Set struct {
	st      *Store
	attr    string
	baseLen int // rows in the base prefix all maps start from
	tape    []entry
	maps    map[string]*Map
	keyMap  *Map // M_Akey, created on first merged deletion

	pendIns []int        // keys appended to base but not yet in the tape
	pendDel map[int]bool // keys deleted but not yet in the tape

	// policy is the store's cracking policy frozen at set creation: every
	// map of the set replays the same tape and must make identical pivot
	// decisions, so a later Store.Policy change must not split a set.
	policy crack.Policy
}

// Attr returns the head attribute name.
func (s *Set) Attr() string { return s.attr }

// TapeLen returns the number of tape entries (for tests/alignment metrics).
func (s *Set) TapeLen() int { return len(s.tape) }

// Maps returns the live maps keyed by tail attribute.
func (s *Set) Maps() map[string]*Map { return s.maps }

// Store owns a base relation plus all map sets built over it. The base
// columns are append-only: inserts are appended immediately (keys are dense
// positions) while cracking structures keep them pending; deletes are
// tombstoned and merged lazily per set.
type Store struct {
	rel        *store.Relation
	tombstones map[int]bool
	sets       map[string]*Set

	// Budget is the storage threshold T in tuples for map storage; 0 means
	// unlimited. When exceeded, least-frequently-accessed maps not needed
	// by the current query are dropped (Section 4.2's full-map policy).
	Budget int

	// EagerAlignment is an ablation switch: when set, every query aligns
	// ALL maps of the touched set to the tape end, i.e. the "on-line
	// alignment" strategy Section 3.2 rejects ("every query would have to
	// touch all maps of a set"). Default false = adaptive (lazy) alignment.
	EagerAlignment bool

	// NaiveSetChoice is an ablation switch: when set, MultiSelect uses the
	// first predicate's map set instead of consulting the self-organizing
	// histograms for the most selective one (Section 3.3).
	NaiveSetChoice bool

	// Policy is the adaptive cracking policy (crack.Policy) applied to
	// maps. It is snapshotted per map set at set creation: every map of a
	// set must crack under one policy or tape replay would misalign the
	// set, so set Policy before the first query touches an attribute.
	Policy crack.Policy

	statsMu        sync.Mutex       // guards colMin/colMax (lazily filled by read-only probes)
	colMin, colMax map[string]Value // cached base column stats for fallback estimation
}

// NewStore wraps rel (not copied) for sideways cracking.
func NewStore(rel *store.Relation) *Store {
	return &Store{
		rel:        rel,
		tombstones: make(map[int]bool),
		sets:       make(map[string]*Set),
		colMin:     make(map[string]Value),
		colMax:     make(map[string]Value),
	}
}

// Relation returns the underlying base relation.
func (s *Store) Relation() *store.Relation { return s.rel }

// NumSets returns the number of materialized map sets.
func (s *Store) NumSets() int { return len(s.sets) }

// StorageTuples returns the total size of all maps in tuples (a map of
// length n costs n tuples, as in the paper's Figures 9(d)/10(c)).
// Kernel aggregates the kernel partition counters and cracker-index
// sizes over every map of every set: the observability bridge. Call it
// under the same synchronization as queries (the stats are plain ints on
// the maps' Pairs).
func (s *Store) Kernel() (ks crack.KernelStats, pieces, cols int) {
	for _, set := range s.sets {
		for _, m := range set.maps {
			ks.Add(m.pairs.Stats)
			pieces += m.pairs.Idx.Pieces()
			cols++
		}
	}
	return ks, pieces, cols
}

func (s *Store) StorageTuples() int {
	total := 0
	for _, set := range s.sets {
		for _, m := range set.maps {
			total += m.Len()
		}
		if set.keyMap != nil {
			total += set.keyMap.Len()
		}
	}
	return total
}

// Insert appends a tuple (values in relation attribute order) to the base
// relation and registers it as pending with every existing map set. It
// returns the new tuple's key.
func (s *Store) Insert(vals ...Value) int {
	s.rel.AppendRow(vals...)
	key := s.rel.NumRows() - 1
	for _, set := range s.sets {
		set.pendIns = append(set.pendIns, key)
	}
	return key
}

// Delete tombstones the tuple with the given key and registers a pending
// deletion with every existing map set.
func (s *Store) Delete(key int) {
	if s.tombstones[key] {
		return
	}
	s.tombstones[key] = true
	for _, set := range s.sets {
		set.noteDelete(key)
	}
}

// IsDeleted reports whether key is tombstoned.
func (s *Store) IsDeleted(key int) bool { return s.tombstones[key] }

func (set *Set) noteDelete(key int) {
	if key >= set.baseLen {
		// The tuple might still be a pending insertion: cancel it.
		for i, k := range set.pendIns {
			if k == key {
				set.pendIns = append(set.pendIns[:i], set.pendIns[i+1:]...)
				return
			}
		}
	}
	set.pendDel[key] = true
}

// Set returns the map set for attr, creating it on demand. A set created
// after updates starts from the full current base (inserts included) with
// all live tombstones pending, which is equivalent to having observed the
// updates as pending from the start.
func (s *Store) Set(attr string) *Set {
	if set, ok := s.sets[attr]; ok {
		return set
	}
	// Validate before registering: a panic on an unknown attribute must
	// not leave a half-created set behind (a later read-only probe would
	// mistake it for real cracking knowledge).
	s.rel.MustColumn(attr)
	set := &Set{
		st:      s,
		attr:    attr,
		baseLen: s.rel.NumRows(),
		maps:    make(map[string]*Map),
		pendDel: make(map[int]bool),
		policy:  s.Policy,
	}
	for k := range s.tombstones {
		set.pendDel[k] = true
	}
	s.sets[attr] = set
	return set
}

// SetIfExists returns the map set for attr if it is materialized.
func (s *Store) SetIfExists(attr string) *Set { return s.sets[attr] }

// newMap materializes map M_A,tailAttr from the base prefix. tailAttr ""
// creates the key map M_Akey. The map starts at tape cursor 0; the caller
// aligns it.
func (set *Set) newMap(tailAttr string) *Map {
	headCol := set.st.rel.MustColumn(set.attr)
	head := make([]Value, set.baseLen)
	copy(head, headCol.Vals[:set.baseLen])
	tail := make([]Value, set.baseLen)
	if tailAttr == "" {
		for i := range tail {
			tail[i] = Value(i)
		}
	} else {
		copy(tail, set.st.rel.MustColumn(tailAttr).Vals[:set.baseLen])
	}
	m := &Map{tailAttr: tailAttr, pairs: crack.WrapPairs(head, tail)}
	m.pairs.Policy = set.policy
	return m
}

// MapIfExists returns the map for tailAttr if materialized.
func (set *Set) MapIfExists(tailAttr string) *Map { return set.maps[tailAttr] }

// replay applies tape entries [m.cursor, end) to m.
func (set *Set) replay(m *Map, end int) {
	rel := set.st.rel
	var tailCol *store.Column
	if m.tailAttr != "" {
		tailCol = rel.MustColumn(m.tailAttr)
	}
	headCol := rel.MustColumn(set.attr)
	for ; m.cursor < end; m.cursor++ {
		e := set.tape[m.cursor]
		switch e.kind {
		case entryCrack:
			m.pairs.CrackRange(e.pred)
		case entryInsert:
			m.pairs.RippleInsertKeys(e.keys, headCol, tailCol)
		case entryDelete:
			m.pairs.RippleDeleteBatch(e.positions)
		}
	}
}

// mergePending converts pending updates relevant to pred into tape entries
// (Section 3.5): matching insertions become an insert entry; matching
// deletions are located via the aligned key map and become a delete entry
// carrying physical positions.
func (set *Set) mergePending(pred store.Pred) {
	headCol := set.st.rel.MustColumn(set.attr)
	if len(set.pendIns) > 0 {
		var matched []int
		rest := set.pendIns[:0]
		for _, k := range set.pendIns {
			if pred.Matches(headCol.Vals[k]) {
				matched = append(matched, k)
			} else {
				rest = append(rest, k)
			}
		}
		set.pendIns = rest
		if len(matched) > 0 {
			set.tape = append(set.tape, entry{kind: entryInsert, keys: matched})
		}
	}
	if len(set.pendDel) > 0 {
		var matchedKeys []int
		for k := range set.pendDel {
			if pred.Matches(headCol.Vals[k]) {
				matchedKeys = append(matchedKeys, k)
			}
		}
		if len(matchedKeys) > 0 {
			sort.Ints(matchedKeys)
			if set.keyMap == nil {
				set.keyMap = set.newMap("")
			}
			set.replay(set.keyMap, len(set.tape))
			want := make(map[Value]bool, len(matchedKeys))
			for _, k := range matchedKeys {
				want[Value(k)] = true
				delete(set.pendDel, k)
			}
			var positions []int
			for i, k := range set.keyMap.pairs.Tail {
				if want[k] {
					positions = append(positions, i)
				}
			}
			sort.Ints(positions)
			set.tape = append(set.tape, entry{kind: entryDelete, positions: positions})
			set.replay(set.keyMap, len(set.tape))
		}
	}
}

// Query is the set-level sideways.select for one predicate over any number
// of tail attributes: it merges relevant pending updates, logs the crack in
// the tape, creates missing maps, aligns every requested map, and returns
// the contiguous result area [lo, hi) shared by all of them (they are
// positionally aligned). The returned maps give access to the tails.
func (set *Set) Query(pred store.Pred, tailAttrs []string) (lo, hi int, used []*Map) {
	used = make([]*Map, len(tailAttrs))
	for i, attr := range tailAttrs {
		m, ok := set.maps[attr]
		if !ok {
			set.st.ensureBudget(set, attr, tailAttrs)
			m = set.newMap(attr)
			set.maps[attr] = m
		}
		used[i] = m
	}
	set.mergePending(pred)
	set.tape = append(set.tape, entry{kind: entryCrack, pred: pred})
	for _, m := range used {
		set.replay(m, len(set.tape))
		m.access++
	}
	if set.st.EagerAlignment {
		for _, m := range set.maps {
			set.replay(m, len(set.tape))
		}
	}
	if len(used) == 0 {
		return 0, 0, used
	}
	lo, hi = areaOf(used[0], pred)
	return lo, hi, used
}

// areaOf reads the result area of pred from an aligned map's index.
func areaOf(m *Map, pred store.Pred) (lo, hi int) {
	lo, ok1 := m.pairs.Idx.Lookup(pred.LowerBound())
	hi, ok2 := m.pairs.Idx.Lookup(pred.UpperBound())
	if !ok1 || !ok2 {
		panic(fmt.Sprintf("sideways: missing boundary after alignment for %v", pred))
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// ensureBudget drops least-frequently-accessed maps (across all sets, never
// ones needed by the current query) until a new map of base size fits
// within the store budget. With Budget == 0 it is a no-op.
func (s *Store) ensureBudget(cur *Set, newAttr string, needed []string) {
	if s.Budget <= 0 {
		return
	}
	needTuples := cur.baseLen
	for s.StorageTuples()+needTuples > s.Budget {
		var victimSet *Set
		var victimAttr string
		var victim *Map
		for _, set := range s.sets {
			for attr, m := range set.maps {
				if set == cur && isNeeded(attr, needed) {
					continue
				}
				if victim == nil || m.access < victim.access {
					victimSet, victimAttr, victim = set, attr, m
				}
			}
		}
		if victim == nil {
			return // nothing droppable; allow exceeding the budget
		}
		delete(victimSet.maps, victimAttr)
	}
}

func isNeeded(attr string, needed []string) bool {
	for _, a := range needed {
		if a == attr {
			return true
		}
	}
	return false
}

// MostAlignedMap returns the map of the set whose cursor is closest to the
// tape end (Section 3.3: better aligned maps give better estimates), or nil
// if the set has no maps.
func (set *Set) MostAlignedMap() *Map {
	var best *Map
	for _, m := range set.maps {
		if best == nil || m.cursor > best.cursor {
			best = m
		}
	}
	return best
}

// EstimateSelectivity estimates the number of tuples matching pred on attr
// using the self-organizing histogram of the most aligned map of S_attr; if
// no map exists it falls back to a uniform estimate from base column stats.
func (s *Store) EstimateSelectivity(attr string, pred store.Pred) int {
	if set := s.sets[attr]; set != nil {
		if m := set.MostAlignedMap(); m != nil {
			_, _, est := m.pairs.Idx.Estimate(pred.LowerBound(), pred.UpperBound(), m.Len())
			return est
		}
	}
	lo, hi := s.colStats(attr)
	n := s.rel.NumRows()
	if hi <= lo {
		return n
	}
	clo, chi := pred.Lo, pred.Hi
	if clo < lo {
		clo = lo
	}
	if chi > hi {
		chi = hi
	}
	if chi < clo {
		return 0
	}
	return int(float64(n) * float64(chi-clo) / float64(hi-lo))
}

func (s *Store) colStats(attr string) (lo, hi Value) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if l, ok := s.colMin[attr]; ok {
		return l, s.colMax[attr]
	}
	col := s.rel.MustColumn(attr)
	l, _ := store.Min(col.Vals)
	h, _ := store.Max(col.Vals)
	s.colMin[attr], s.colMax[attr] = l, h
	return l, h
}

// AttrPred is one selection of a multi-attribute query.
type AttrPred struct {
	Attr string
	Pred store.Pred
}

// Result of a multi-attribute query: projected columns, positionally
// aligned (row i across all Cols entries belongs to the same tuple).
type Result struct {
	Cols map[string][]Value
	N    int
}

// SelectProject evaluates a single-selection, multi-projection query
// (Section 3.2): select projs from R where pred(selAttr). All projection
// maps come from set S_selAttr and are aligned, so the result tails are
// positionally aligned slices.
func (s *Store) SelectProject(selAttr string, pred store.Pred, projs []string) Result {
	set := s.Set(selAttr)
	lo, hi, used := set.Query(pred, projs)
	res := Result{Cols: make(map[string][]Value, len(projs)), N: hi - lo}
	for i, attr := range projs {
		out := make([]Value, hi-lo)
		copy(out, used[i].pairs.Tail[lo:hi])
		res.Cols[attr] = out
	}
	return res
}

// choosePred picks the plan's head predicate: the most (conjunctive) or
// least (disjunctive) selective one per the self-organizing histograms, or
// simply the first under the NaiveSetChoice ablation. Read-only.
func (s *Store) choosePred(preds []AttrPred, disjunctive bool) int {
	chosen := 0
	if len(preds) == 1 {
		return 0
	}
	if !s.NaiveSetChoice {
		bestEst := s.EstimateSelectivity(preds[0].Attr, preds[0].Pred)
		for i := 1; i < len(preds); i++ {
			est := s.EstimateSelectivity(preds[i].Attr, preds[i].Pred)
			better := est < bestEst
			if disjunctive {
				better = est > bestEst
			}
			if better {
				chosen, bestEst = i, est
			}
		}
	}
	return chosen
}

// tailPlan assigns one tail-attribute slot per distinct attribute needed by
// the plan: other selection attributes first, then projections.
func tailPlan(others []AttrPred, projs []string) ([]string, map[string]int) {
	tailAttrs := make([]string, 0, len(others)+len(projs))
	tailOf := make(map[string]int, len(others)+len(projs))
	add := func(attr string) {
		if _, ok := tailOf[attr]; !ok {
			tailOf[attr] = len(tailAttrs)
			tailAttrs = append(tailAttrs, attr)
		}
	}
	for _, ap := range others {
		add(ap.Attr)
	}
	for _, attr := range projs {
		add(attr)
	}
	return tailAttrs, tailOf
}

// splitPreds separates the chosen head predicate from the rest.
func splitPreds(preds []AttrPred, chosen int) (AttrPred, []AttrPred) {
	others := make([]AttrPred, 0, len(preds)-1)
	for i, ap := range preds {
		if i != chosen {
			others = append(others, ap)
		}
	}
	return preds[chosen], others
}

// MultiSelect evaluates a multi-selection query with optional projections
// (Section 3.3). Conjunctive plans pick the most selective predicate's set
// and filter the aligned candidate area with a bit vector
// (select_create_bv / select_refine_bv / reconstruct); disjunctive plans
// pick the least selective set and a map-sized bit vector.
func (s *Store) MultiSelect(preds []AttrPred, projs []string, disjunctive bool) Result {
	if len(preds) == 0 {
		panic("sideways: MultiSelect requires at least one predicate")
	}
	// Map set choice via self-organizing histograms.
	head, others := splitPreds(preds, s.choosePred(preds, disjunctive))
	// All tails needed: other selection attributes plus projections.
	tailAttrs, tailOf := tailPlan(others, projs)
	set := s.Set(head.Attr)
	if disjunctive {
		// A disjunctive plan reads the whole map (areas outside w too), so
		// every pending update is relevant regardless of the head
		// predicate and must be merged first.
		set.MergePendingAll()
	}
	lo, hi, used := set.Query(head.Pred, tailAttrs)

	if disjunctive {
		return s.disjunctive(set, lo, hi, used, tailAttrs, tailOf, others, projs)
	}
	return conjunctiveResult(lo, hi, used, tailOf, others, projs)
}

// conjunctiveResult finishes a conjunctive plan over one aligned area:
// refine [lo, hi) with a bit vector for the secondary predicates, then
// reconstruct the projections. A pure read over the aligned maps, shared by
// the write path and the read-only path.
func conjunctiveResult(lo, hi int, used []*Map, tailOf map[string]int, others []AttrPred, projs []string) Result {
	// Conjunctive: bit vector over the candidate area [lo, hi).
	var bv *bitvec.Vector
	for _, ap := range others {
		tail := used[tailOf[ap.Attr]].pairs.Tail
		if bv == nil {
			bv = SelectCreateBV(tail, lo, hi, ap.Pred) // operator select_create_bv
		} else {
			SelectRefineBV(tail, lo, hi, ap.Pred, bv) // operator select_refine_bv
		}
	}
	res := Result{Cols: make(map[string][]Value, len(projs))}
	if bv == nil {
		res.N = hi - lo
		for _, attr := range projs {
			out := make([]Value, hi-lo)
			copy(out, used[tailOf[attr]].pairs.Tail[lo:hi])
			res.Cols[attr] = out
		}
		return res
	}
	res.N = bv.Count()
	for _, attr := range projs {
		res.Cols[attr] = ReconstructBV(used[tailOf[attr]].pairs.Tail, lo, bv) // operator reconstruct
	}
	return res
}

// pendingTouches reports whether any pending insertion or deletion of the
// set falls inside pred's value range. Read-only.
func (set *Set) pendingTouches(pred store.Pred) bool {
	if len(set.pendIns) == 0 && len(set.pendDel) == 0 {
		return false
	}
	headCol := set.st.rel.MustColumn(set.attr)
	for _, k := range set.pendIns {
		if pred.Matches(headCol.Vals[k]) {
			return true
		}
	}
	for k := range set.pendDel {
		if pred.Matches(headCol.Vals[k]) {
			return true
		}
	}
	return false
}

// roPlan is a fully resolved read-only query plan: the aligned maps and
// result area a query can be answered from without any reorganization.
type roPlan struct {
	set       *Set
	lo, hi    int
	used      []*Map
	tailAttrs []string
	tailOf    map[string]int
	others    []AttrPred
}

// roEligible reports whether the set can serve pred read-only as far as
// pending updates and the alignment policy are concerned. Shared by planRO
// and the MultiSelectRO fast path so the eligibility rules live in one
// place.
func (s *Store) roEligible(set *Set, pred store.Pred, disjunctive bool) bool {
	if disjunctive {
		// Disjunctions read whole maps, so any pending update is relevant.
		if len(set.pendIns) > 0 || len(set.pendDel) > 0 {
			return false
		}
	} else if set.pendingTouches(pred) {
		return false
	}
	if s.EagerAlignment {
		// On-line alignment touches all maps of the set every query; a
		// lagging map means the write path would replay it.
		for _, m := range set.maps {
			if m.cursor != len(set.tape) {
				return false
			}
		}
	}
	return true
}

// roMap returns the map for tailAttr if it exists and is aligned to the
// tape end, or nil when the write path would materialize or replay it.
func (set *Set) roMap(tailAttr string) *Map {
	m := set.maps[tailAttr]
	if m == nil || m.cursor != len(set.tape) {
		return nil
	}
	return m
}

// planRO builds the read-only plan for a query, or reports ok == false when
// answering it would reorganize the store: crack a map, merge a pending
// update, materialize a map, or grow the tape.
func (s *Store) planRO(preds []AttrPred, projs []string, disjunctive bool) (roPlan, bool) {
	var plan roPlan
	if len(preds) == 0 {
		return plan, false
	}
	head, others := splitPreds(preds, s.choosePred(preds, disjunctive))
	set := s.sets[head.Attr]
	if set == nil || !s.roEligible(set, head.Pred, disjunctive) {
		return plan, false
	}
	tailAttrs, tailOf := tailPlan(others, projs)
	used := make([]*Map, len(tailAttrs))
	for i, attr := range tailAttrs {
		if used[i] = set.roMap(attr); used[i] == nil {
			return plan, false
		}
	}
	lo, hi := 0, 0
	if len(used) > 0 {
		var ok bool
		lo, hi, ok = used[0].pairs.Area(head.Pred)
		if !ok {
			return plan, false
		}
	}
	return roPlan{set: set, lo: lo, hi: hi, used: used,
		tailAttrs: tailAttrs, tailOf: tailOf, others: others}, true
}

// ProbeMulti is the read-only probe of the two-phase (probe/execute)
// protocol: it reports whether MultiSelect(preds, projs, disjunctive) would
// physically reorganize the store. Safe for concurrent use with other
// read-only operations.
func (s *Store) ProbeMulti(preds []AttrPred, projs []string, disjunctive bool) bool {
	_, ok := s.planRO(preds, projs, disjunctive)
	return !ok
}

// MultiSelectRO is the reorganization-free execute path paired with
// ProbeMulti: it answers the query only when doing so requires no cracking,
// no pending-update merge, no map creation, and no tape growth. ok is false
// otherwise; callers then fall back to MultiSelect under exclusive access.
// Safe for concurrent use with other read-only operations. LFU access
// counters are bumped atomically; everything else is left untouched.
func (s *Store) MultiSelectRO(preds []AttrPred, projs []string, disjunctive bool) (Result, bool) {
	// Dedicated fast path for the dominant aligned-repeat shape: one
	// predicate, one projection, conjunctive. Same eligibility rules as
	// planRO (roEligible/roMap/Area) without its plan allocations — no
	// tail maps, no bit vectors, just index lookups and one slice copy.
	if len(preds) == 1 && len(projs) == 1 && !disjunctive {
		head := preds[0]
		set := s.sets[head.Attr]
		if set == nil || !s.roEligible(set, head.Pred, false) {
			return Result{}, false
		}
		m := set.roMap(projs[0])
		if m == nil {
			return Result{}, false
		}
		lo, hi, ok := m.pairs.Area(head.Pred)
		if !ok {
			return Result{}, false
		}
		atomic.AddInt64(&m.access, 1)
		out := make([]Value, hi-lo)
		copy(out, m.pairs.Tail[lo:hi])
		return Result{Cols: map[string][]Value{projs[0]: out}, N: hi - lo}, true
	}
	plan, ok := s.planRO(preds, projs, disjunctive)
	if !ok {
		return Result{}, false
	}
	for _, m := range plan.used {
		atomic.AddInt64(&m.access, 1)
	}
	if disjunctive {
		return s.disjunctive(plan.set, plan.lo, plan.hi, plan.used,
			plan.tailAttrs, plan.tailOf, plan.others, projs), true
	}
	return conjunctiveResult(plan.lo, plan.hi, plan.used, plan.tailOf, plan.others, projs), true
}

// disjunctive finishes a disjunctive plan: mark everything in the head
// area, then probe unmarked tuples outside it for the other predicates.
func (s *Store) disjunctive(set *Set, lo, hi int, used []*Map, tailAttrs []string,
	tailOf map[string]int, others []AttrPred, projs []string) Result {

	n := 0
	if len(used) > 0 {
		n = used[0].Len()
	}
	bv := bitvec.New(n)
	bv.SetRange(lo, hi)
	for _, ap := range others {
		tail := used[tailOf[ap.Attr]].pairs.Tail
		for i := 0; i < lo; i++ {
			if !bv.Get(i) && ap.Pred.Matches(tail[i]) {
				bv.Set(i)
			}
		}
		for i := hi; i < n; i++ {
			if !bv.Get(i) && ap.Pred.Matches(tail[i]) {
				bv.Set(i)
			}
		}
	}
	res := Result{Cols: make(map[string][]Value, len(projs)), N: bv.Count()}
	for _, attr := range projs {
		res.Cols[attr] = ReconstructBV(used[tailOf[attr]].pairs.Tail, 0, bv)
	}
	return res
}

// SelectCreateBV is operator sideways.select_create_bv step (8): create a
// bit vector for area [lo, hi) of an aligned map tail under pred.
func SelectCreateBV(tail []Value, lo, hi int, pred store.Pred) *bitvec.Vector {
	bv := bitvec.New(hi - lo)
	for i := lo; i < hi; i++ {
		if pred.Matches(tail[i]) {
			bv.Set(i - lo)
		}
	}
	return bv
}

// SelectRefineBV is operator sideways.select_refine_bv step (8): clear bits
// of tuples in [lo, hi) that fail pred.
func SelectRefineBV(tail []Value, lo, hi int, pred store.Pred, bv *bitvec.Vector) {
	for i := lo; i < hi; i++ {
		if bv.Get(i-lo) && !pred.Matches(tail[i]) {
			bv.Clear(i - lo)
		}
	}
}

// ReconstructBV is operator sideways.reconstruct step (8): gather the tail
// values whose bit is set; base is the tail offset of bit 0.
func ReconstructBV(tail []Value, base int, bv *bitvec.Vector) []Value {
	out := make([]Value, 0, bv.Count())
	bv.ForEachSet(func(i int) { out = append(out, tail[base+i]) })
	return out
}
