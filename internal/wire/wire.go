// Package wire implements the remote-serving protocol: a compact
// length-prefixed binary encoding of the engine query/update API, so a
// crackstore engine can be served over a TCP connection (internal/netserve)
// and driven by a multiplexing client (crackstore/client).
//
// # Framing
//
// Every message travels as one frame:
//
//	+----------------+------------------+----------------+---------------------+
//	| length uint32  | length^lenEcho   | crc32 uint32   | payload             |
//	| big-endian     | big-endian       | IEEE, payload  | (length bytes)      |
//	+----------------+------------------+----------------+---------------------+
//
// The length counts payload bytes only, and travels twice — once plain,
// once XOR-masked — so the reader validates it before trusting it: a
// corrupted length byte is the one fault a payload CRC cannot catch,
// because the reader would block waiting for a frame that was never sent
// instead of reaching the checksum. Readers also enforce a maximum frame
// size (MaxFrame / DefaultMaxFrame): a peer announcing a larger frame is a
// protocol error, detected before any allocation, so a corrupt or
// adversarial length prefix cannot make the receiver allocate gigabytes.
// The checksum turns silent byte corruption — a flaky link, a broken
// middlebox — into a detectable connection error (ErrChecksum) instead of
// a wrong answer: a value column is raw 8-byte words, so without the CRC a
// flipped bit would decode cleanly into a different value. Corruption is
// not recoverable in-stream (the frame boundary itself is untrusted);
// the reader reports it and the connection ends, which the client treats
// like any other connection failure and retries idempotently elsewhere.
//
// # Payloads
//
// A payload is a message type byte, a request ID uvarint, and a
// type-dependent body. Scalar integers are varints (encoding/binary);
// strings are uvarint-counted; value slices (insert tuples, result
// columns) are uvarint-counted fixed 8-byte little-endian words, which
// en/decode an order of magnitude faster than varints on large results.
// The request ID pairs a response with its request: responses may come
// back in any order, which is what lets a single connection pipeline many
// in-flight requests.
//
// Requests: OpQuery and OpQueryRO carry a Query (predicates, projections,
// disjunctive flag); OpInsert carries the tuple values; OpDelete the tuple
// key; OpStats and OpPing are empty. Every request also carries a TTL
// uvarint (microseconds; 0 = none) — a deadline hint that lets the server
// skip executing requests whose caller has already given up — and the
// write requests (OpInsert, OpDelete) carry an idempotency token: the
// server deduplicates retried writes by token and replays the recorded
// response, so a client may safely resend a write whose response was lost.
//
// Responses: StatusOK carries the op-specific body (result+cost, inserted
// key, nothing, serving stats); StatusErr carries an error string;
// StatusRefused is the QueryRO "would reorganize" answer; StatusOverloaded
// is the in-band shed answer — the server declined cheaply under overload
// and the client should back off and retry, with no work done and the
// connection intact.
//
// Decoding is strict: every read is bounds-checked, trailing garbage is an
// error, and slice preallocations are capped by the bytes actually
// remaining, so a truncated or adversarial frame can neither panic the
// decoder nor make it over-allocate (FuzzDecodeRequest and
// FuzzDecodeResponse pin both properties).
//
// # Tracing extension
//
// A traced request sets traceFlag (0x40) on its op byte and carries a
// trace ID uvarint after the TTL; the matching response sets the same
// flag and appends a per-stage span list (queue, execute, crack) after
// its body. The flag bit is free — request ops are small positive bytes
// and responses use the 0x80 tag — so untraced traffic is byte-identical
// to the previous protocol version: an old client never sets the flag
// and a new server answers it exactly as before. A new client discovers
// whether its server understands the extension with OpHello (a
// protocol-version exchange): an old server answers Hello with its usual
// in-band unknown-op error and an intact connection, which the client
// reads as "no tracing", and simply never sets the flag.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/obs"
	"crackstore/internal/store"
)

// ProtoVersion is the protocol version this package speaks, exchanged by
// OpHello. Version 2 added the tracing extension (traceFlag + span
// lists); version 1 is the implied pre-Hello protocol.
const ProtoVersion = 2

// FrameHeader is the byte size of the frame header: a big-endian payload
// length, the same length XOR lenEcho, and a big-endian CRC-32 (IEEE) of
// the payload. The masked echo makes the header self-validating: the
// payload CRC can only be checked after the length is trusted, so a
// corrupted length byte would otherwise mis-frame the stream — the reader
// could block forever waiting for bytes that never come instead of
// failing. With the echo, any corruption confined to the length field is
// detected before a single payload byte is read.
const FrameHeader = 12

// lenEcho masks the redundant length copy so an all-zero header (a common
// failure shape) never validates.
const lenEcho = 0x5AA5C33C

// DefaultMaxFrame is the frame-size cap used when a reader does not choose
// its own: large enough for result sets of a few million tuples, small
// enough that a corrupt length prefix cannot exhaust memory.
const DefaultMaxFrame = 64 << 20

// Op identifies a request kind (and echoes in its response).
type Op byte

// Request operations.
const (
	OpQuery   Op = 1 // full query: may reorganize (crack, merge, materialize)
	OpQueryRO Op = 2 // reorganization-free query; refused if it would reorganize
	OpInsert  Op = 3 // append one tuple
	OpDelete  Op = 4 // delete by tuple key
	OpStats   Op = 5 // serving-layer statistics snapshot
	OpPing    Op = 6 // health check: answered immediately, bypassing admission
	// OpHello exchanges protocol versions. New clients send it once per
	// connection before relying on any protocol extension; servers answer
	// with their own ProtoVersion. Servers predating OpHello answer with
	// their regular in-band unknown-op error (connection intact), which a
	// client must treat as version 1.
	OpHello Op = 7
)

func (o Op) String() string {
	switch o {
	case OpQuery:
		return "query"
	case OpQueryRO:
		return "query-ro"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpStats:
		return "stats"
	case OpPing:
		return "ping"
	case OpHello:
		return "hello"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Status is the response disposition.
type Status byte

// Response statuses.
const (
	StatusOK      Status = 0 // body is the op-specific success payload
	StatusErr     Status = 1 // body is an error string
	StatusRefused Status = 2 // OpQueryRO only: executing would reorganize
	// StatusOverloaded is the in-band shed response: the server's admission
	// watermark (or global in-flight cap) was exceeded, the request did not
	// execute, and the connection remains healthy. Clients back off and
	// retry; shedding never closes the connection.
	StatusOverloaded Status = 3
)

// respTag marks a payload as a response (high bit set over the request op).
const respTag byte = 0x80

// traceFlag marks a traced payload: the request carries a trace ID
// uvarint after its TTL, the response carries a span list after its
// body. Free bit: ops are small positive bytes, responses use respTag.
const traceFlag byte = 0x40

// Request is one decoded client request.
type Request struct {
	ID uint64
	Op Op

	// TTL is the caller's remaining deadline budget when the request was
	// sent (microsecond resolution on the wire; 0 = no deadline). The
	// server treats arrival+TTL as the request's deadline and skips
	// executing requests that expire while queued — the caller has already
	// given up, so the work would be wasted and the worker slot occupied
	// for nothing.
	TTL time.Duration

	// Token is the idempotency token of a write request (OpInsert,
	// OpDelete; 0 = none). The server keeps a bounded window of recently
	// executed tokens and answers a repeated token by replaying the
	// recorded response instead of applying the write again — what makes a
	// write safe to retry after its frame reached the wire.
	Token uint64

	// Trace is the nonzero trace ID of a sampled query (0 = untraced).
	// Traced requests set traceFlag on the wire and ask the server to
	// time its stages and return them as response spans.
	Trace uint64

	// Version is the client's protocol version (OpHello only).
	Version uint64

	// Query body (OpQuery, OpQueryRO).
	Query engine.Query
	// Vals is the tuple of an OpInsert, in relation attribute order.
	Vals []store.Value
	// Key is the tuple key of an OpDelete.
	Key int
}

// Response is one decoded server response.
type Response struct {
	ID     uint64
	Op     Op
	Status Status
	// Err is the error string of a StatusErr response.
	Err string

	// Result and Cost answer OpQuery / OpQueryRO.
	Result engine.Result
	Cost   engine.Cost
	// Key answers OpInsert.
	Key int
	// Stats answers OpStats.
	Stats Stats
	// Version answers OpHello: the server's protocol version.
	Version uint64

	// Spans are the server-side stage timings of a traced request
	// (StageQueue, StageExecute, StageCrack), with Start offsets relative
	// to the server's receipt of the request. Present only when the
	// request carried a trace ID and the server speaks the extension.
	Spans []obs.Span
}

// Stats is the wire form of the serving-layer statistics: scalar summary
// only (the per-query latency series stays server-side).
type Stats struct {
	Queries int
	Errors  int
	// Sheds counts requests refused in-band under overload
	// (StatusOverloaded); they neither executed nor count as Errors.
	Sheds   int
	Elapsed time.Duration
	QPS     float64

	P50, P95, P99, Max time.Duration
}

// Errors shared by the codec layer.
var (
	// ErrFrameTooLarge reports a length prefix above the reader's cap.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrCorrupt reports a payload that does not decode cleanly.
	ErrCorrupt = errors.New("wire: corrupt payload")
	// ErrChecksum reports a frame whose payload does not match its CRC:
	// the stream carried corrupted bytes and cannot be trusted past this
	// point.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
)

// ---------------------------------------------------------------------------
// Framing.

// AppendFrame appends the frame header (length + masked length echo + CRC)
// and payload to buf.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [FrameHeader]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload))^lenEcho)
	binary.BigEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...)
}

// ReadFrame reads one length-prefixed, checksummed payload from r. A
// header whose masked length echo disagrees with its length draws
// ErrChecksum immediately, before any payload read — a corrupted length
// must never decide how many bytes to wait for, or the reader could stall
// forever on a mis-framed stream. Frames longer than maxFrame
// (DefaultMaxFrame when <= 0) return ErrFrameTooLarge before any payload
// allocation; a payload that fails its CRC returns ErrChecksum — the
// stream carried corruption and the connection should be abandoned. io.EOF
// is returned only on a clean boundary (no partial header).
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [FrameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: truncated frame header: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if echo := binary.BigEndian.Uint32(hdr[4:8]); echo != n^lenEcho {
		return nil, fmt.Errorf("%w: length %d does not match its echo", ErrChecksum, n)
	}
	// Compare in uint64: converting a cap >= 2^32 to uint32 would wrap and
	// reject (or mis-cap) every frame.
	if uint64(n) > uint64(maxFrame) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: truncated frame body: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(hdr[8:]); got != want {
		return nil, fmt.Errorf("%w: crc %08x != %08x over %d bytes", ErrChecksum, got, want, n)
	}
	return payload, nil
}

// ---------------------------------------------------------------------------
// Primitive append/consume helpers.
//
// The appenders build payloads; the consumers are the strict inverses, each
// returning the remaining bytes and a hard error on truncation. All sizes
// decode through consumeLen, which rejects any announced element count that
// could not fit in the bytes that remain — the property that keeps
// preallocation proportional to real input.

func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }
func appendVarint(buf []byte, v int64) []byte   { return binary.AppendVarint(buf, v) }
func appendString(buf []byte, s string) []byte {
	return append(appendUvarint(buf, uint64(len(s))), s...)
}
func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}
func appendDuration(buf []byte, d time.Duration) []byte {
	return appendVarint(buf, int64(d))
}

func consumeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrCorrupt
	}
	return v, b[n:], nil
}

func consumeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, ErrCorrupt
	}
	return v, b[n:], nil
}

// consumeLen decodes an element count and rejects counts that cannot fit in
// the remaining bytes at minSize bytes per element, bounding every
// subsequent make() by the true input size.
func consumeLen(b []byte, minSize int) (int, []byte, error) {
	v, rest, err := consumeUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if minSize < 1 {
		minSize = 1
	}
	if v > uint64(len(rest)/minSize) {
		return 0, nil, ErrCorrupt
	}
	return int(v), rest, nil
}

func consumeString(b []byte) (string, []byte, error) {
	n, rest, err := consumeLen(b, 1)
	if err != nil {
		return "", nil, err
	}
	return string(rest[:n]), rest[n:], nil
}

func consumeBool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, ErrCorrupt
	}
	switch b[0] {
	case 0:
		return false, b[1:], nil
	case 1:
		return true, b[1:], nil
	}
	return false, nil, ErrCorrupt
}

func consumeDuration(b []byte) (time.Duration, []byte, error) {
	v, rest, err := consumeVarint(b)
	return time.Duration(v), rest, err
}

// Value slices (insert tuples, result columns) use fixed 8-byte
// little-endian encoding rather than varints: results carry thousands of
// values per response, and a fixed-width loop en/decodes an order of
// magnitude faster than per-value varints — on a loopback or datacenter
// link the serving path is CPU-bound, not bandwidth-bound.

func appendValues(buf []byte, vals []store.Value) []byte {
	buf = appendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

func consumeValues(b []byte) ([]store.Value, []byte, error) {
	n, rest, err := consumeLen(b, 8)
	if err != nil {
		return nil, nil, err
	}
	vals := make([]store.Value, n)
	for i := range vals {
		vals[i] = store.Value(binary.LittleEndian.Uint64(rest[i*8:]))
	}
	return vals, rest[n*8:], nil
}

// ---------------------------------------------------------------------------
// Query / Result / Cost bodies.

func appendPred(buf []byte, p store.Pred) []byte {
	buf = appendVarint(buf, int64(p.Lo))
	buf = appendVarint(buf, int64(p.Hi))
	buf = appendBool(buf, p.LoIncl)
	return appendBool(buf, p.HiIncl)
}

func consumePred(b []byte) (store.Pred, []byte, error) {
	var (
		p   store.Pred
		lo  int64
		hi  int64
		err error
	)
	if lo, b, err = consumeVarint(b); err != nil {
		return p, nil, err
	}
	if hi, b, err = consumeVarint(b); err != nil {
		return p, nil, err
	}
	p.Lo, p.Hi = store.Value(lo), store.Value(hi)
	if p.LoIncl, b, err = consumeBool(b); err != nil {
		return p, nil, err
	}
	if p.HiIncl, b, err = consumeBool(b); err != nil {
		return p, nil, err
	}
	return p, b, nil
}

func appendQuery(buf []byte, q engine.Query) []byte {
	buf = appendUvarint(buf, uint64(len(q.Preds)))
	for _, ap := range q.Preds {
		buf = appendString(buf, ap.Attr)
		buf = appendPred(buf, ap.Pred)
	}
	buf = appendUvarint(buf, uint64(len(q.Projs)))
	for _, p := range q.Projs {
		buf = appendString(buf, p)
	}
	return appendBool(buf, q.Disjunctive)
}

func consumeQuery(b []byte) (engine.Query, []byte, error) {
	var (
		q   engine.Query
		n   int
		err error
	)
	if n, b, err = consumeLen(b, 5); err != nil { // attr len + 4 pred bytes minimum
		return q, nil, err
	}
	if n > 0 {
		q.Preds = make([]engine.AttrPred, n)
		for i := range q.Preds {
			if q.Preds[i].Attr, b, err = consumeString(b); err != nil {
				return q, nil, err
			}
			if q.Preds[i].Pred, b, err = consumePred(b); err != nil {
				return q, nil, err
			}
		}
	}
	if n, b, err = consumeLen(b, 1); err != nil {
		return q, nil, err
	}
	if n > 0 {
		q.Projs = make([]string, n)
		for i := range q.Projs {
			if q.Projs[i], b, err = consumeString(b); err != nil {
				return q, nil, err
			}
		}
	}
	if q.Disjunctive, b, err = consumeBool(b); err != nil {
		return q, nil, err
	}
	return q, b, nil
}

// appendResult encodes a result in sorted column order, so the encoding of
// a given Result is canonical regardless of map iteration order — the
// answer-equivalence tests byte-compare encodings.
func appendResult(buf []byte, res engine.Result) []byte {
	buf = appendUvarint(buf, uint64(res.N))
	names := make([]string, 0, len(res.Cols))
	for name := range res.Cols {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = appendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = appendString(buf, name)
		buf = appendValues(buf, res.Cols[name])
	}
	return buf
}

func consumeResult(b []byte) (engine.Result, []byte, error) {
	var (
		res engine.Result
		n   uint64
		err error
	)
	if n, b, err = consumeUvarint(b); err != nil {
		return res, nil, err
	}
	// N is the row count, not a buffer size; cap it sanely rather than
	// against remaining bytes (columns may legitimately be absent).
	if n > math.MaxInt32 {
		return res, nil, ErrCorrupt
	}
	res.N = int(n)
	cols, b, err := consumeLen(b, 2) // name len + value count minimum
	if err != nil {
		return res, nil, err
	}
	res.Cols = make(map[string][]store.Value, cols)
	for i := 0; i < cols; i++ {
		var (
			name string
			vals []store.Value
		)
		if name, b, err = consumeString(b); err != nil {
			return res, nil, err
		}
		if vals, b, err = consumeValues(b); err != nil {
			return res, nil, err
		}
		if _, dup := res.Cols[name]; dup {
			return res, nil, ErrCorrupt
		}
		res.Cols[name] = vals
	}
	return res, b, nil
}

func appendCost(buf []byte, c engine.Cost) []byte {
	buf = appendDuration(buf, c.Sel)
	return appendDuration(buf, c.TR)
}

func consumeCost(b []byte) (engine.Cost, []byte, error) {
	var (
		c   engine.Cost
		err error
	)
	if c.Sel, b, err = consumeDuration(b); err != nil {
		return c, nil, err
	}
	if c.TR, b, err = consumeDuration(b); err != nil {
		return c, nil, err
	}
	return c, b, nil
}

func appendStats(buf []byte, st Stats) []byte {
	buf = appendUvarint(buf, uint64(st.Queries))
	buf = appendUvarint(buf, uint64(st.Errors))
	buf = appendUvarint(buf, uint64(st.Sheds))
	buf = appendDuration(buf, st.Elapsed)
	buf = appendUvarint(buf, math.Float64bits(st.QPS))
	buf = appendDuration(buf, st.P50)
	buf = appendDuration(buf, st.P95)
	buf = appendDuration(buf, st.P99)
	return appendDuration(buf, st.Max)
}

func consumeStats(b []byte) (Stats, []byte, error) {
	var (
		st  Stats
		u   uint64
		err error
	)
	if u, b, err = consumeUvarint(b); err != nil {
		return st, nil, err
	}
	// Counters are 64-bit ints: a long-lived daemon legitimately exceeds
	// 2^31 queries within hours at measured rates.
	if u > math.MaxInt64 {
		return st, nil, ErrCorrupt
	}
	st.Queries = int(u)
	if u, b, err = consumeUvarint(b); err != nil {
		return st, nil, err
	}
	if u > math.MaxInt64 {
		return st, nil, ErrCorrupt
	}
	st.Errors = int(u)
	if u, b, err = consumeUvarint(b); err != nil {
		return st, nil, err
	}
	if u > math.MaxInt64 {
		return st, nil, ErrCorrupt
	}
	st.Sheds = int(u)
	if st.Elapsed, b, err = consumeDuration(b); err != nil {
		return st, nil, err
	}
	if u, b, err = consumeUvarint(b); err != nil {
		return st, nil, err
	}
	st.QPS = math.Float64frombits(u)
	if st.P50, b, err = consumeDuration(b); err != nil {
		return st, nil, err
	}
	if st.P95, b, err = consumeDuration(b); err != nil {
		return st, nil, err
	}
	if st.P99, b, err = consumeDuration(b); err != nil {
		return st, nil, err
	}
	if st.Max, b, err = consumeDuration(b); err != nil {
		return st, nil, err
	}
	return st, b, nil
}

// appendSpans encodes a span list: count, then per span a stage byte and
// start/dur as nanosecond uvarints. Negative offsets clamp to zero (a
// span never legitimately starts before its trace).
func appendSpans(buf []byte, spans []obs.Span) []byte {
	buf = appendUvarint(buf, uint64(len(spans)))
	for _, sp := range spans {
		buf = append(buf, byte(sp.Stage))
		start, dur := sp.Start, sp.Dur
		if start < 0 {
			start = 0
		}
		if dur < 0 {
			dur = 0
		}
		buf = appendUvarint(buf, uint64(start))
		buf = appendUvarint(buf, uint64(dur))
	}
	return buf
}

func consumeSpans(b []byte) ([]obs.Span, []byte, error) {
	n, b, err := consumeLen(b, 3) // stage byte + two 1-byte uvarints minimum
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	spans := make([]obs.Span, n)
	for i := range spans {
		if len(b) < 1 {
			return nil, nil, ErrCorrupt
		}
		st := obs.Stage(b[0])
		if st == 0 || st > obs.MaxStage {
			return nil, nil, fmt.Errorf("%w: unknown trace stage %d", ErrCorrupt, b[0])
		}
		spans[i].Stage = st
		b = b[1:]
		var u uint64
		if u, b, err = consumeUvarint(b); err != nil {
			return nil, nil, err
		}
		if u > math.MaxInt64 {
			return nil, nil, fmt.Errorf("%w: span start overflows", ErrCorrupt)
		}
		spans[i].Start = time.Duration(u)
		if u, b, err = consumeUvarint(b); err != nil {
			return nil, nil, err
		}
		if u > math.MaxInt64 {
			return nil, nil, fmt.Errorf("%w: span duration overflows", ErrCorrupt)
		}
		spans[i].Dur = time.Duration(u)
	}
	return spans, b, nil
}

// ---------------------------------------------------------------------------
// Request codec.

// beginFrame reserves the frame header (length + CRC) in buf, returning
// its offset; endFrame backfills both once the payload has been encoded in
// place. Encoding directly into the destination (the pooled frame buffers
// of netserve and the client) avoids a per-message scratch allocation and
// a full payload copy on the hot path.
func beginFrame(buf []byte) ([]byte, int) {
	return append(buf, make([]byte, FrameHeader)...), len(buf)
}

func endFrame(buf []byte, start int) []byte {
	payload := buf[start+FrameHeader:]
	binary.BigEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[start+4:], uint32(len(payload))^lenEcho)
	binary.BigEndian.PutUint32(buf[start+8:], crc32.ChecksumIEEE(payload))
	return buf
}

// maxTTLMicros bounds the decoded deadline hint so a corrupt (or
// adversarial) TTL cannot overflow the Duration conversion.
const maxTTLMicros = uint64(math.MaxInt64 / int64(time.Microsecond))

// AppendRequest appends req as one complete frame (prefix included).
func AppendRequest(buf []byte, req *Request) []byte {
	buf, start := beginFrame(buf)
	op := byte(req.Op)
	if req.Trace != 0 {
		op |= traceFlag
	}
	buf = append(buf, op)
	buf = appendUvarint(buf, req.ID)
	ttl := req.TTL / time.Microsecond
	if ttl < 0 {
		ttl = 0
	}
	buf = appendUvarint(buf, uint64(ttl))
	if req.Trace != 0 {
		buf = appendUvarint(buf, req.Trace)
	}
	switch req.Op {
	case OpQuery, OpQueryRO:
		buf = appendQuery(buf, req.Query)
	case OpInsert:
		buf = appendUvarint(buf, req.Token)
		buf = appendValues(buf, req.Vals)
	case OpDelete:
		buf = appendUvarint(buf, req.Token)
		buf = appendVarint(buf, int64(req.Key))
	case OpStats, OpPing:
		// no body
	case OpHello:
		buf = appendUvarint(buf, req.Version)
	default:
		panic(fmt.Sprintf("wire: cannot encode request op %v", req.Op))
	}
	return endFrame(buf, start)
}

// DecodeRequest decodes one request payload (a frame body).
func DecodeRequest(payload []byte) (Request, error) {
	var req Request
	if len(payload) < 1 {
		return req, ErrCorrupt
	}
	tagged, b := payload[0], payload[1:]
	traced := tagged&traceFlag != 0
	op := Op(tagged &^ traceFlag)
	var err error
	if req.ID, b, err = consumeUvarint(b); err != nil {
		return req, err
	}
	var ttl uint64
	if ttl, b, err = consumeUvarint(b); err != nil {
		return req, err
	}
	if ttl > maxTTLMicros {
		return req, fmt.Errorf("%w: ttl overflows", ErrCorrupt)
	}
	req.TTL = time.Duration(ttl) * time.Microsecond
	if traced {
		if req.Trace, b, err = consumeUvarint(b); err != nil {
			return req, err
		}
		if req.Trace == 0 {
			return req, fmt.Errorf("%w: traced request with zero trace id", ErrCorrupt)
		}
	}
	req.Op = op
	switch op {
	case OpQuery, OpQueryRO:
		if req.Query, b, err = consumeQuery(b); err != nil {
			return req, err
		}
	case OpInsert:
		if req.Token, b, err = consumeUvarint(b); err != nil {
			return req, err
		}
		if req.Vals, b, err = consumeValues(b); err != nil {
			return req, err
		}
	case OpDelete:
		if req.Token, b, err = consumeUvarint(b); err != nil {
			return req, err
		}
		var k int64
		if k, b, err = consumeVarint(b); err != nil {
			return req, err
		}
		if k < 0 {
			return req, ErrCorrupt
		}
		req.Key = int(k)
	case OpStats, OpPing:
		// no body
	case OpHello:
		if req.Version, b, err = consumeUvarint(b); err != nil {
			return req, err
		}
	default:
		return req, fmt.Errorf("%w: unknown request op %d", ErrCorrupt, byte(op))
	}
	if len(b) != 0 {
		return req, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	return req, nil
}

// ---------------------------------------------------------------------------
// Response codec.

// AppendResponse appends resp as one complete frame (prefix included).
func AppendResponse(buf []byte, resp *Response) []byte {
	buf, start := beginFrame(buf)
	tag := byte(resp.Op) | respTag
	if len(resp.Spans) > 0 {
		tag |= traceFlag
	}
	buf = append(buf, tag)
	buf = appendUvarint(buf, resp.ID)
	buf = append(buf, byte(resp.Status))
	switch resp.Status {
	case StatusErr:
		buf = appendString(buf, resp.Err)
	case StatusRefused:
		// no body: the query must be retried as OpQuery
	case StatusOverloaded:
		// no body: the request was shed before executing; retry with backoff
	case StatusOK:
		switch resp.Op {
		case OpQuery, OpQueryRO:
			buf = appendResult(buf, resp.Result)
			buf = appendCost(buf, resp.Cost)
		case OpInsert:
			buf = appendVarint(buf, int64(resp.Key))
		case OpDelete, OpPing:
			// no body
		case OpStats:
			buf = appendStats(buf, resp.Stats)
		case OpHello:
			buf = appendUvarint(buf, resp.Version)
		default:
			panic(fmt.Sprintf("wire: cannot encode response op %v", resp.Op))
		}
	default:
		panic(fmt.Sprintf("wire: cannot encode response status %d", resp.Status))
	}
	if len(resp.Spans) > 0 {
		buf = appendSpans(buf, resp.Spans)
	}
	return endFrame(buf, start)
}

// DecodeResponse decodes one response payload (a frame body).
func DecodeResponse(payload []byte) (Response, error) {
	var resp Response
	if len(payload) < 1 {
		return resp, ErrCorrupt
	}
	tagged, b := payload[0], payload[1:]
	if tagged&respTag == 0 {
		return resp, fmt.Errorf("%w: payload is not a response", ErrCorrupt)
	}
	traced := tagged&traceFlag != 0
	resp.Op = Op(tagged &^ (respTag | traceFlag))
	var err error
	if resp.ID, b, err = consumeUvarint(b); err != nil {
		return resp, err
	}
	if len(b) < 1 {
		return resp, ErrCorrupt
	}
	resp.Status, b = Status(b[0]), b[1:]
	switch resp.Status {
	case StatusErr:
		if resp.Err, b, err = consumeString(b); err != nil {
			return resp, err
		}
	case StatusRefused:
		if resp.Op != OpQueryRO {
			return resp, fmt.Errorf("%w: refused status on %v", ErrCorrupt, resp.Op)
		}
	case StatusOverloaded:
		switch resp.Op {
		case OpQuery, OpQueryRO, OpInsert, OpDelete, OpStats, OpPing, OpHello:
			// no body
		default:
			return resp, fmt.Errorf("%w: overloaded status on unknown op %d", ErrCorrupt, byte(resp.Op))
		}
	case StatusOK:
		switch resp.Op {
		case OpQuery, OpQueryRO:
			if resp.Result, b, err = consumeResult(b); err != nil {
				return resp, err
			}
			if resp.Cost, b, err = consumeCost(b); err != nil {
				return resp, err
			}
		case OpInsert:
			var k int64
			if k, b, err = consumeVarint(b); err != nil {
				return resp, err
			}
			if k < 0 {
				return resp, ErrCorrupt
			}
			resp.Key = int(k)
		case OpDelete, OpPing:
			// no body
		case OpStats:
			if resp.Stats, b, err = consumeStats(b); err != nil {
				return resp, err
			}
		case OpHello:
			if resp.Version, b, err = consumeUvarint(b); err != nil {
				return resp, err
			}
		default:
			return resp, fmt.Errorf("%w: unknown response op %d", ErrCorrupt, byte(resp.Op))
		}
	default:
		return resp, fmt.Errorf("%w: unknown status %d", ErrCorrupt, byte(resp.Status))
	}
	if traced {
		if resp.Spans, b, err = consumeSpans(b); err != nil {
			return resp, err
		}
	}
	if len(b) != 0 {
		return resp, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	return resp, nil
}
