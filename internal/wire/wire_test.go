package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/store"
)

func sampleRequests() []Request {
	return []Request{
		{ID: 1, Op: OpQuery, Query: engine.Query{
			Preds: []engine.AttrPred{
				{Attr: "A", Pred: store.Range(10, 20)},
				{Attr: "B", Pred: store.Open(-5, 5)},
			},
			Projs: []string{"B", "C"},
		}},
		{ID: 1<<63 + 7, Op: OpQueryRO, Query: engine.Query{
			Preds:       []engine.AttrPred{{Attr: "long attribute name", Pred: store.Point(-42)}},
			Disjunctive: true,
		}},
		{ID: 0, Op: OpQuery, Query: engine.Query{}},
		{ID: 3, Op: OpInsert, Vals: []store.Value{1, -2, 1 << 60}},
		{ID: 4, Op: OpInsert},
		{ID: 5, Op: OpDelete, Key: 123456},
		{ID: 6, Op: OpStats},
		{ID: 7, Op: OpPing},
		{ID: 8, Op: OpInsert, Token: 1<<64 - 3, Vals: []store.Value{9}},
		{ID: 9, Op: OpDelete, Token: 77, Key: 5},
		{ID: 10, Op: OpQuery, TTL: 250 * time.Millisecond, Query: engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: store.Point(3)}},
		}},
		{ID: 11, Op: OpInsert, TTL: time.Second, Token: 42, Vals: []store.Value{1, 2}},
	}
}

func sampleResponses() []Response {
	return []Response{
		{ID: 1, Op: OpQuery, Status: StatusOK,
			Result: engine.Result{
				N: 2,
				Cols: map[string][]store.Value{
					"B": {7, 8},
					"C": {-1, 1 << 40},
				},
			},
			Cost: engine.Cost{Sel: 123 * time.Microsecond, TR: time.Millisecond},
		},
		{ID: 2, Op: OpQueryRO, Status: StatusOK,
			Result: engine.Result{N: 0, Cols: map[string][]store.Value{}}},
		{ID: 3, Op: OpQueryRO, Status: StatusRefused},
		{ID: 4, Op: OpQuery, Status: StatusErr, Err: "engine: no such attribute"},
		{ID: 5, Op: OpInsert, Status: StatusOK, Key: 99},
		{ID: 6, Op: OpDelete, Status: StatusOK},
		{ID: 7, Op: OpStats, Status: StatusOK, Stats: Stats{
			Queries: 1000, Errors: 2, Sheds: 17, Elapsed: 3 * time.Second, QPS: 12345.678,
			P50: time.Millisecond, P95: 2 * time.Millisecond,
			P99: 4 * time.Millisecond, Max: time.Second,
		}},
		{ID: 8, Op: OpPing, Status: StatusOK},
		{ID: 9, Op: OpQuery, Status: StatusOverloaded},
		{ID: 10, Op: OpInsert, Status: StatusOverloaded},
		{ID: 11, Op: OpPing, Status: StatusOverloaded},
	}
}

// normalizeResult maps the empty-but-non-nil forms the decoder produces onto
// the encoder's input so DeepEqual compares semantics, not nil-ness.
func normalizeReq(r Request) Request {
	if len(r.Query.Preds) == 0 {
		r.Query.Preds = nil
	}
	if len(r.Query.Projs) == 0 {
		r.Query.Projs = nil
	}
	if len(r.Vals) == 0 {
		r.Vals = nil
	}
	return r
}

func normalizeResp(r Response) Response {
	if len(r.Result.Cols) == 0 {
		r.Result.Cols = nil
	}
	for k, v := range r.Result.Cols {
		if len(v) == 0 {
			r.Result.Cols[k] = nil
		}
	}
	return r
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		frame := AppendRequest(nil, &req)
		payload, err := ReadFrame(bytes.NewReader(frame), 0)
		if err != nil {
			t.Fatalf("%v: ReadFrame: %v", req.Op, err)
		}
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("%v: DecodeRequest: %v", req.Op, err)
		}
		if !reflect.DeepEqual(normalizeReq(got), normalizeReq(req)) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", req.Op, got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, resp := range sampleResponses() {
		frame := AppendResponse(nil, &resp)
		payload, err := ReadFrame(bytes.NewReader(frame), 0)
		if err != nil {
			t.Fatalf("%v: ReadFrame: %v", resp.Op, err)
		}
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("%v: DecodeResponse: %v", resp.Op, err)
		}
		if !reflect.DeepEqual(normalizeResp(got), normalizeResp(resp)) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", resp.Op, got, resp)
		}
	}
}

func TestResultEncodingIsCanonical(t *testing.T) {
	// Two results with identical content must encode identically even
	// though map iteration order differs between instances.
	mk := func() engine.Result {
		return engine.Result{N: 1, Cols: map[string][]store.Value{
			"z": {1}, "a": {2}, "m": {3}, "q": {4}, "b": {5},
		}}
	}
	a := AppendResponse(nil, &Response{ID: 1, Op: OpQuery, Result: mk()})
	for i := 0; i < 20; i++ {
		b := AppendResponse(nil, &Response{ID: 1, Op: OpQuery, Result: mk()})
		if !bytes.Equal(a, b) {
			t.Fatal("result encoding depends on map iteration order")
		}
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	frame := AppendFrame(nil, make([]byte, 1024))
	if _, err := ReadFrame(bytes.NewReader(frame), 512); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// At exactly the cap the frame passes.
	if _, err := ReadFrame(bytes.NewReader(frame), 1024); err != nil {
		t.Fatalf("frame at cap rejected: %v", err)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	req := sampleRequests()[0]
	frame := AppendRequest(nil, &req)
	// Clean EOF only at a frame boundary.
	if _, err := ReadFrame(bytes.NewReader(nil), 0); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
	for cut := 1; cut < len(frame); cut++ {
		_, err := ReadFrame(bytes.NewReader(frame[:cut]), 0)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

// TestDecodeTruncatedPayloads feeds every prefix of every valid payload to
// the decoders: all must error (a strict codec has no valid proper prefix,
// since trailing bytes are also rejected) and none may panic.
func TestDecodeTruncatedPayloads(t *testing.T) {
	for _, req := range sampleRequests() {
		frame := AppendRequest(nil, &req)
		payload := frame[FrameHeader:]
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeRequest(payload[:cut]); err == nil {
				t.Fatalf("%v: truncated payload (%d/%d bytes) decoded cleanly", req.Op, cut, len(payload))
			}
		}
	}
	for _, resp := range sampleResponses() {
		frame := AppendResponse(nil, &resp)
		payload := frame[FrameHeader:]
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeResponse(payload[:cut]); err == nil {
				t.Fatalf("%v: truncated payload (%d/%d bytes) decoded cleanly", resp.Op, cut, len(payload))
			}
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	for _, req := range sampleRequests() {
		frame := AppendRequest(nil, &req)
		payload := append(append([]byte(nil), frame[FrameHeader:]...), 0xEE)
		if _, err := DecodeRequest(payload); err == nil {
			t.Fatalf("%v: trailing garbage accepted", req.Op)
		}
	}
}

// TestReadFrameChecksum: a flipped byte ANYWHERE in the frame — length,
// length echo, CRC, or payload — is rejected as ErrChecksum, and never by
// blocking on a mis-framed read. This is the property that turns silent
// corruption into a retryable connection error instead of a wrong answer
// or a stalled stream: a corrupted length field is caught by its masked
// echo before the reader decides how many bytes to wait for.
func TestReadFrameChecksum(t *testing.T) {
	req := sampleRequests()[0]
	frame := AppendRequest(nil, &req)
	for i := 0; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, err := ReadFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: want ErrChecksum, got %v", i, err)
		}
	}
	// The pristine frame still passes.
	if _, err := ReadFrame(bytes.NewReader(frame), 0); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
}

// TestDecodeResilienceFrames is the table-driven decode matrix for the
// resilience additions: Ping requests/responses, StatusOverloaded sheds,
// idempotency tokens, and TTL hints — valid forms decode to the exact
// struct, malformed forms (truncated token, oversized TTL, overloaded on
// an unknown op) draw ErrCorrupt.
func TestDecodeResilienceFrames(t *testing.T) {
	reqCases := []struct {
		name    string
		payload []byte
		want    Request
		wantErr bool
	}{
		{
			name:    "ping",
			payload: AppendRequest(nil, &Request{ID: 3, Op: OpPing})[FrameHeader:],
			want:    Request{ID: 3, Op: OpPing},
		},
		{
			name:    "insert with token and ttl",
			payload: AppendRequest(nil, &Request{ID: 4, Op: OpInsert, Token: 99, TTL: time.Millisecond, Vals: []store.Value{1}})[FrameHeader:],
			want:    Request{ID: 4, Op: OpInsert, Token: 99, TTL: time.Millisecond, Vals: []store.Value{1}},
		},
		{
			name:    "delete with token",
			payload: AppendRequest(nil, &Request{ID: 5, Op: OpDelete, Token: 1 << 62, Key: 9})[FrameHeader:],
			want:    Request{ID: 5, Op: OpDelete, Token: 1 << 62, Key: 9},
		},
		{
			name: "truncated token",
			// Op + ID + TTL, then a token uvarint with its continuation bit
			// set and nothing after it.
			payload: append(appendUvarint(appendUvarint([]byte{byte(OpInsert)}, 6), 0), 0x80),
			wantErr: true,
		},
		{
			name: "ttl overflows duration",
			payload: appendUvarint(appendUvarint([]byte{byte(OpPing)}, 7),
				uint64(1)<<63),
			wantErr: true,
		},
		{
			name:    "ping with trailing body",
			payload: append(AppendRequest(nil, &Request{ID: 8, Op: OpPing})[FrameHeader:], 0x01),
			wantErr: true,
		},
	}
	for _, tc := range reqCases {
		got, err := DecodeRequest(tc.payload)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: decoded cleanly, want error", tc.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !reflect.DeepEqual(normalizeReq(got), normalizeReq(tc.want)) {
			t.Errorf("%s: got %+v want %+v", tc.name, got, tc.want)
		}
	}

	respCases := []struct {
		name    string
		payload []byte
		want    Response
		wantErr bool
	}{
		{
			name:    "pong",
			payload: AppendResponse(nil, &Response{ID: 2, Op: OpPing, Status: StatusOK})[FrameHeader:],
			want:    Response{ID: 2, Op: OpPing, Status: StatusOK},
		},
		{
			name:    "query shed",
			payload: AppendResponse(nil, &Response{ID: 3, Op: OpQuery, Status: StatusOverloaded})[FrameHeader:],
			want:    Response{ID: 3, Op: OpQuery, Status: StatusOverloaded},
		},
		{
			name:    "insert shed",
			payload: AppendResponse(nil, &Response{ID: 4, Op: OpInsert, Status: StatusOverloaded})[FrameHeader:],
			want:    Response{ID: 4, Op: OpInsert, Status: StatusOverloaded},
		},
		{
			name: "shed on unknown op",
			payload: append(appendUvarint([]byte{0x7F | respTag}, 5),
				byte(StatusOverloaded)),
			wantErr: true,
		},
		{
			name: "shed with trailing body",
			payload: append(AppendResponse(nil,
				&Response{ID: 6, Op: OpQuery, Status: StatusOverloaded})[FrameHeader:], 0xAB),
			wantErr: true,
		},
	}
	for _, tc := range respCases {
		got, err := DecodeResponse(tc.payload)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: decoded cleanly, want error", tc.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !reflect.DeepEqual(normalizeResp(got), normalizeResp(tc.want)) {
			t.Errorf("%s: got %+v want %+v", tc.name, got, tc.want)
		}
	}
}

// TestDecodeAdversarialCounts pins the over-allocation guard: a tiny frame
// announcing a huge element count must be rejected, not trusted.
func TestDecodeAdversarialCounts(t *testing.T) {
	// OpInsert with a claimed 2^40 values in a tiny payload.
	payload := []byte{byte(OpInsert)}
	payload = appendUvarint(payload, 1)     // ID
	payload = appendUvarint(payload, 0)     // TTL
	payload = appendUvarint(payload, 7)     // token
	payload = appendUvarint(payload, 1<<40) // value count
	if _, err := DecodeRequest(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge insert count: want ErrCorrupt, got %v", err)
	}
	// Query with a claimed 2^32 predicates.
	payload = []byte{byte(OpQuery)}
	payload = appendUvarint(payload, 1)     // ID
	payload = appendUvarint(payload, 0)     // TTL
	payload = appendUvarint(payload, 1<<32) // predicate count
	if _, err := DecodeRequest(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge pred count: want ErrCorrupt, got %v", err)
	}
	// Response result with a huge column count.
	payload = []byte{byte(OpQuery) | respTag}
	payload = appendUvarint(payload, 1)
	payload = append(payload, byte(StatusOK))
	payload = appendUvarint(payload, 3)     // N
	payload = appendUvarint(payload, 1<<50) // columns
	if _, err := DecodeResponse(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge column count: want ErrCorrupt, got %v", err)
	}
}

func TestDecodeRejectsDuplicateColumns(t *testing.T) {
	payload := []byte{byte(OpQuery) | respTag}
	payload = appendUvarint(payload, 9)
	payload = append(payload, byte(StatusOK))
	payload = appendUvarint(payload, 1) // N
	payload = appendUvarint(payload, 2) // columns
	for i := 0; i < 2; i++ {
		payload = appendString(payload, "B")
		payload = appendValues(payload, []store.Value{int64(i)})
	}
	payload = appendCost(payload, engine.Cost{})
	if _, err := DecodeResponse(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate column: want ErrCorrupt, got %v", err)
	}
}
