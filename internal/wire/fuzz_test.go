package wire

import (
	"bytes"
	"testing"

	"crackstore/internal/engine"
	"crackstore/internal/store"
)

// FuzzDecodeRequest pins the decoder's safety contract on arbitrary bytes:
// it never panics, and when it does accept a payload, re-encoding the
// decoded request yields a payload the decoder accepts again with an
// identical re-encoding (a canonical-form fixed point).
func FuzzDecodeRequest(f *testing.F) {
	for _, req := range []Request{
		{ID: 1, Op: OpQuery, Query: engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(1, 9)}},
			Projs: []string{"B"},
		}},
		{ID: 2, Op: OpQueryRO, Query: engine.Query{
			Preds:       []engine.AttrPred{{Attr: "x", Pred: store.Point(7)}},
			Disjunctive: true,
		}},
		{ID: 3, Op: OpInsert, Vals: []store.Value{-1, 0, 1 << 40}},
		{ID: 4, Op: OpDelete, Key: 77},
		{ID: 5, Op: OpStats},
		{ID: 6, Op: OpPing},
		{ID: 7, Op: OpInsert, Token: 1<<64 - 1, TTL: 1 << 20, Vals: []store.Value{5}},
		{ID: 8, Op: OpDelete, Token: 300, Key: 2},
	} {
		f.Add(AppendRequest(nil, &req)[FrameHeader:])
	}
	// Token-bearing frames cut mid-token: the uvarint continuation bit is set
	// with no following byte, which the decoder must reject, never over-read.
	tok := AppendRequest(nil, &Request{ID: 9, Op: OpInsert, Token: 1 << 42, Vals: []store.Value{1}})[FrameHeader:]
	f.Add(tok[:len(tok)-10])
	f.Add(append(appendUvarint(appendUvarint([]byte{byte(OpDelete)}, 9), 0), 0x80))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		re := AppendRequest(nil, &req)[FrameHeader:]
		req2, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-encoded request rejected: %v", err)
		}
		re2 := AppendRequest(nil, &req2)[FrameHeader:]
		if !bytes.Equal(re, re2) {
			t.Fatalf("request re-encoding is not a fixed point:\n %x\n %x", re, re2)
		}
	})
}

// FuzzDecodeResponse is the response-side twin of FuzzDecodeRequest.
func FuzzDecodeResponse(f *testing.F) {
	for _, resp := range []Response{
		{ID: 1, Op: OpQuery, Status: StatusOK,
			Result: engine.Result{N: 2, Cols: map[string][]store.Value{"B": {3, 4}}},
			Cost:   engine.Cost{Sel: 10, TR: 20}},
		{ID: 2, Op: OpQueryRO, Status: StatusRefused},
		{ID: 3, Op: OpInsert, Status: StatusOK, Key: 5},
		{ID: 4, Op: OpDelete, Status: StatusOK},
		{ID: 5, Op: OpStats, Status: StatusOK, Stats: Stats{Queries: 10, QPS: 1.5}},
		{ID: 6, Op: OpQuery, Status: StatusErr, Err: "boom"},
		{ID: 7, Op: OpPing, Status: StatusOK},
		{ID: 8, Op: OpQueryRO, Status: StatusOverloaded},
	} {
		f.Add(AppendResponse(nil, &resp)[FrameHeader:])
	}
	f.Add([]byte{respTag})
	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, err := DecodeResponse(payload)
		if err != nil {
			return
		}
		re := AppendResponse(nil, &resp)[FrameHeader:]
		resp2, err := DecodeResponse(re)
		if err != nil {
			t.Fatalf("re-encoded response rejected: %v", err)
		}
		re2 := AppendResponse(nil, &resp2)[FrameHeader:]
		if !bytes.Equal(re, re2) {
			t.Fatalf("response re-encoding is not a fixed point:\n %x\n %x", re, re2)
		}
	})
}
