// Package rowstore is a minimal N-ary (row-at-a-time) storage engine used
// as the "MySQL presorted" reference series in the paper's Figure 14. Rows
// are processed tuple-by-tuple, so multi-predicate evaluation needs no
// tuple reconstruction at all — the trade-off the paper discusses for
// TPC-H Query 19.
package rowstore

import (
	"sort"

	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// Table is a row-store table: one []Value per tuple, with a schema mapping
// attribute names to field positions.
type Table struct {
	Attrs []string
	index map[string]int
	Rows  [][]Value
}

// New builds a row table from a columnar relation.
func New(rel *store.Relation) *Table {
	t := &Table{Attrs: append([]string(nil), rel.Order...), index: make(map[string]int)}
	for i, a := range t.Attrs {
		t.index[a] = i
	}
	n := rel.NumRows()
	cols := make([][]Value, len(t.Attrs))
	for i, a := range t.Attrs {
		cols[i] = rel.MustColumn(a).Vals
	}
	t.Rows = make([][]Value, n)
	for r := 0; r < n; r++ {
		row := make([]Value, len(cols))
		for c := range cols {
			row[c] = cols[c][r]
		}
		t.Rows[r] = row
	}
	return t
}

// Field returns the position of attr in each row.
func (t *Table) Field(attr string) int {
	i, ok := t.index[attr]
	if !ok {
		panic("rowstore: unknown attribute " + attr)
	}
	return i
}

// SortBy returns a copy of the table sorted on attr (the presorted-MySQL
// configuration of Figure 14).
func (t *Table) SortBy(attr string) *Table {
	f := t.Field(attr)
	out := &Table{Attrs: t.Attrs, index: t.index, Rows: make([][]Value, len(t.Rows))}
	copy(out.Rows, t.Rows)
	sort.SliceStable(out.Rows, func(i, j int) bool { return out.Rows[i][f] < out.Rows[j][f] })
	return out
}

// Pred pairs an attribute with a range predicate.
type Pred struct {
	Attr string
	P    store.Pred
}

// Select returns the rows matching all preds, scanning tuple-by-tuple. If
// the table is sorted on preds[0].Attr, the scan starts and stops via
// binary search on that attribute.
func (t *Table) Select(preds []Pred, sortedOn string) [][]Value {
	lo, hi := 0, len(t.Rows)
	if len(preds) > 0 && sortedOn == preds[0].Attr {
		f := t.Field(sortedOn)
		p := preds[0].P
		lo = sort.Search(len(t.Rows), func(i int) bool {
			v := t.Rows[i][f]
			if p.LoIncl {
				return v >= p.Lo
			}
			return v > p.Lo
		})
		hi = sort.Search(len(t.Rows), func(i int) bool {
			v := t.Rows[i][f]
			if p.HiIncl {
				return v > p.Hi
			}
			return v >= p.Hi
		})
		if hi < lo {
			hi = lo
		}
	}
	var out [][]Value
	for i := lo; i < hi; i++ {
		row := t.Rows[i]
		ok := true
		for _, pr := range preds {
			if !pr.P.Matches(row[t.Field(pr.Attr)]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

// MaxOf returns the maximum of attr over the given rows.
func (t *Table) MaxOf(rows [][]Value, attr string) (Value, bool) {
	if len(rows) == 0 {
		return 0, false
	}
	f := t.Field(attr)
	m := rows[0][f]
	for _, r := range rows[1:] {
		if r[f] > m {
			m = r[f]
		}
	}
	return m, true
}
