package rowstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crackstore/internal/store"
)

func buildRel(rng *rand.Rand, n int) *store.Relation {
	return store.Build("R", n, []string{"A", "B", "C"}, func(string, int) Value {
		return Value(rng.Int63n(100))
	})
}

func TestNewPreservesRows(t *testing.T) {
	rel := store.NewRelation("R", "A", "B")
	rel.AppendRow(1, 10)
	rel.AppendRow(2, 20)
	tab := New(rel)
	if len(tab.Rows) != 2 || tab.Rows[1][tab.Field("B")] != 20 {
		t.Fatal("rows not built correctly")
	}
}

func TestSortByAndBinarySearchSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := buildRel(rng, 500)
	tab := New(rel).SortBy("A")
	preds := []Pred{{Attr: "A", P: store.Range(20, 40)}, {Attr: "B", P: store.Range(0, 50)}}
	got := tab.Select(preds, "A")
	want := 0
	for i := 0; i < rel.NumRows(); i++ {
		if preds[0].P.Matches(rel.MustColumn("A").Vals[i]) && preds[1].P.Matches(rel.MustColumn("B").Vals[i]) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Select = %d rows, want %d", len(got), want)
	}
}

// Property: sorted and unsorted select agree.
func TestQuickSortedUnsortedAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := buildRel(rng, 300)
		plain := New(rel)
		sorted := plain.SortBy("A")
		for q := 0; q < 10; q++ {
			lo := rng.Int63n(100)
			preds := []Pred{
				{Attr: "A", P: store.Range(lo, lo+20)},
				{Attr: "C", P: store.Range(10, 90)},
			}
			a := plain.Select(preds, "")
			b := sorted.Select(preds, "A")
			if len(a) != len(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxOf(t *testing.T) {
	rel := store.NewRelation("R", "A", "B")
	rel.AppendRow(1, 10)
	rel.AppendRow(2, 30)
	rel.AppendRow(3, 20)
	tab := New(rel)
	m, ok := tab.MaxOf(tab.Rows, "B")
	if !ok || m != 30 {
		t.Fatalf("MaxOf = %d,%v", m, ok)
	}
	if _, ok := tab.MaxOf(nil, "B"); ok {
		t.Fatal("MaxOf(empty) should be !ok")
	}
}
