package engine

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"crackstore/internal/store"
)

// The concurrency property test: N goroutines fire a mixed
// select/insert/delete workload through one shared Concurrent(e). Each
// goroutine owns a disjoint value band (both in the base data and in its
// updates), so every query's correct answer depends only on its own
// goroutine's operation history — which lets the concurrent results be
// checked, per query, against a sequential replay of that goroutine's
// operations on a clone. Run with -race in CI; that is what makes the
// RWMutex probe/execute protocol trustworthy.

const (
	bandWidth   = 1_000 // value band per goroutine
	bandRows    = 300   // base rows per band
	opsPerGor   = 40
	nGoroutines = 4
)

type concOp struct {
	kind int // 0 query, 1 insert, 2 delete
	q    Query
	vals []Value // insert: values in attribute order (A, B)
	del  int     // delete: index into the goroutine's live-key list
}

// bandOps generates goroutine g's deterministic operation sequence, every
// value confined to g's band.
func bandOps(g int, seed int64) []concOp {
	rng := rand.New(rand.NewSource(seed + int64(g)))
	lo := int64(g * bandWidth)
	ops := make([]concOp, opsPerGor)
	for i := range ops {
		switch r := rng.Intn(10); {
		case r < 6: // query; both predicates stay strictly inside the band
			qlo := lo + rng.Int63n(bandWidth-250)
			q := Query{
				Preds: []AttrPred{{Attr: "A", Pred: store.Range(qlo, qlo+1+rng.Int63n(200))}},
				Projs: []string{"B"},
			}
			if rng.Intn(3) == 0 { // sometimes a second in-band predicate
				blo := lo + rng.Int63n(bandWidth-450)
				q.Preds = append(q.Preds, AttrPred{Attr: "B", Pred: store.Range(blo, blo+400)})
				q.Disjunctive = rng.Intn(2) == 0
			}
			ops[i] = concOp{kind: 0, q: q}
		case r < 8: // insert
			ops[i] = concOp{kind: 1, vals: []Value{lo + rng.Int63n(bandWidth), lo + rng.Int63n(bandWidth)}}
		default: // delete
			ops[i] = concOp{kind: 2, del: rng.Intn(1 << 20)}
		}
	}
	return ops
}

// buildBandedRel lays out nGoroutines*bandRows rows, band by band, so
// goroutine g owns base keys [g*bandRows, (g+1)*bandRows).
func buildBandedRel(seed int64) *store.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := store.NewRelation("R", "A", "B")
	for g := 0; g < nGoroutines; g++ {
		lo := int64(g * bandWidth)
		for i := 0; i < bandRows; i++ {
			rel.AppendRow(lo+rng.Int63n(bandWidth), lo+rng.Int63n(bandWidth))
		}
	}
	return rel
}

// runOps applies g's operations to e and returns the result multiset of
// every query (projection values sorted, plus the result count).
func runOps(e Engine, g int, ops []concOp) [][]Value {
	keys := make([]int, 0, bandRows+opsPerGor)
	for i := 0; i < bandRows; i++ {
		keys = append(keys, g*bandRows+i)
	}
	var results [][]Value
	for _, op := range ops {
		switch op.kind {
		case 0:
			res, _ := e.Query(op.q)
			vals := append([]Value(nil), res.Cols["B"]...)
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			vals = append(vals, Value(res.N))
			results = append(results, vals)
		case 1:
			keys = append(keys, e.Insert(op.vals...))
		case 2:
			if len(keys) == 0 {
				continue
			}
			i := op.del % len(keys)
			e.Delete(keys[i])
			keys = append(keys[:i], keys[i+1:]...)
		}
	}
	return results
}

func valsEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConcurrentMatchesSequentialReplay(t *testing.T) {
	const seed = 99
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			base := buildBandedRel(seed)
			shared := Concurrent(New(kind, cloneRel(base)))

			ops := make([][]concOp, nGoroutines)
			for g := range ops {
				ops[g] = bandOps(g, seed+7)
			}

			got := make([][][]Value, nGoroutines)
			var wg sync.WaitGroup
			for g := 0; g < nGoroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					got[g] = runOps(shared, g, ops[g])
				}(g)
			}
			wg.Wait()

			// Sequential replay: each goroutine's operations alone on a
			// fresh clone must produce identical per-query multisets.
			for g := 0; g < nGoroutines; g++ {
				want := runOps(New(kind, cloneRel(base)), g, ops[g])
				if len(want) != len(got[g]) {
					t.Fatalf("goroutine %d: %d results, want %d", g, len(got[g]), len(want))
				}
				for qi := range want {
					if !valsEqual(want[qi], got[g][qi]) {
						t.Fatalf("goroutine %d query %d: concurrent result %v != sequential replay %v",
							g, qi, got[g][qi], want[qi])
					}
				}
			}
		})
	}
}

// TestConcurrentProbeConsistency checks the protocol contract on a live
// engine: once a query has run, an identical repeat must probe as
// reorganization-free and QueryRO must agree with Query.
func TestConcurrentProbeConsistency(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			rel := buildRel(rng, 1000, []string{"A", "B"}, 400)
			e := New(kind, rel)
			q := Query{
				Preds: []AttrPred{{Attr: "A", Pred: store.Range(50, 120)}},
				Projs: []string{"B"},
			}
			first, _ := e.Query(q)
			if e.Probe(q) {
				t.Fatalf("%v: repeat query still probes as reorganizing", kind)
			}
			ro, _, ok := e.QueryRO(q)
			if !ok {
				t.Fatalf("%v: QueryRO refused an aligned repeat", kind)
			}
			if ro.N != first.N {
				t.Fatalf("%v: QueryRO N=%d, Query N=%d", kind, ro.N, first.N)
			}
			a := append([]Value(nil), first.Cols["B"]...)
			b := append([]Value(nil), ro.Cols["B"]...)
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			if !valsEqual(a, b) {
				t.Fatalf("%v: QueryRO multiset differs from Query", kind)
			}

			// An update relevant to the range must flip the probe back —
			// except for the scan engine, whose inserts land directly in
			// the base column with nothing pending to merge.
			e.Insert(Value(60), Value(60))
			if kind != Scan && !e.Probe(q) {
				t.Fatalf("%v: probe missed a pending insertion in range", kind)
			}
			res, _ := e.Query(q)
			if res.N != first.N+1 {
				t.Fatalf("%v: post-insert N=%d, want %d", kind, res.N, first.N+1)
			}
			if e.Probe(q) {
				t.Fatalf("%v: probe still reorganizing after merge", kind)
			}
		})
	}
}
