package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"crackstore/internal/crack"
	"crackstore/internal/store"
)

// Snapshot wraps e for concurrent serving with lock-free snapshot reads:
// read-only queries traverse an immutable version of the cracked state
// (published by writers with an atomic pointer swap, reclaimed via
// epoch-based reclamation) and never wait for a crack — the RWMutex of
// Concurrent makes every reader stall behind a cold crack's multi-ms write
// section; Snapshot removes that cliff entirely.
//
// The snapshot protocol is implemented for the selection-cracking engine
// (SelCrack), whose state — cracker columns plus a tombstone set over
// append-only base columns — is exactly reconstructible at piece
// granularity. A warm SelCrack engine keeps its cracked layout and pending
// updates across the conversion. Engines that are already shared-safe are
// returned unchanged; other kinds (whose auxiliary structures mutate
// internal maps and stat caches on the read path) fall back to
// Concurrent(e), so Snapshot is always safe to request.
func Snapshot(e Engine) Engine {
	if IsShared(e) {
		return e
	}
	if sc, ok := e.(*selCrackEngine); ok {
		return newSnapEngine(sc)
	}
	return Concurrent(e)
}

// snapEngine is the multi-version selection-cracking engine behind
// Snapshot. Readers (Probe, QueryRO, and Query's fast path) are entirely
// lock-free: they pin an epoch, load immutable state through atomic
// pointers, and copy what they need. Writers (cracking queries, Insert,
// Delete, JoinInput) serialize on mu and publish every change as a new
// immutable version before returning.
//
// Lock-free reads lean on three invariants:
//
//   - Base columns are append-only (deletes are tombstones), and bases
//     holds their slice headers republished under mu after every append —
//     a reader's header snapshot never sees a partially written row
//     because the row's keys only become reachable via a cracker-column
//     version published after bases.
//   - A cracker column's versions are immutable and epoch-reclaimed
//     (crack.SnapCol); readers pin the epoch across a gather.
//   - The cols map is copy-on-write: on-demand column creation publishes a
//     fresh map, never mutating one a reader may hold.
type snapEngine struct {
	mu   sync.Mutex // serializes writers; readers never take it
	rel  *store.Relation
	ep   *crack.Epoch
	dead map[int]bool // writer-only tombstones (never read lock-free)
	pol  crack.Policy

	cols  atomic.Pointer[map[string]*crack.SnapCol]
	bases atomic.Pointer[map[string][]Value]
}

func newSnapEngine(sc *selCrackEngine) *snapEngine {
	e := &snapEngine{
		rel:  sc.rel,
		ep:   crack.NewEpoch(),
		dead: make(map[int]bool, len(sc.dead)),
		pol:  sc.pol,
	}
	for k := range sc.dead {
		e.dead[k] = true
	}
	cols := make(map[string]*crack.SnapCol, len(sc.cols))
	for attr, c := range sc.cols {
		cols[attr] = crack.SnapColFromCol(c, e.ep)
	}
	e.cols.Store(&cols)
	e.publishBasesLocked()
	return e
}

// SharedEngine marks the engine as safe to share without further wrapping.
func (e *snapEngine) SharedEngine() {}

func (e *snapEngine) Name() string { return "selection cracking (snapshot)" }
func (e *snapEngine) Kind() Kind   { return SelCrack }

// SetCrackPolicy configures the adaptive pivot policy for current and
// future cracker columns (future cracks only; published layouts stand).
func (e *snapEngine) SetCrackPolicy(pol crack.Policy) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pol = pol
	for _, c := range *e.cols.Load() {
		c.Policy = pol
	}
	return true
}

// publishBasesLocked re-publishes the base-column slice headers; must run
// under mu and before any cracker-column version referencing new keys is
// published, so a reader that sees a key through a version always finds
// its row in the bases snapshot it loads afterwards.
func (e *snapEngine) publishBasesLocked() {
	nb := make(map[string][]Value, len(e.rel.Order))
	for _, a := range e.rel.Order {
		nb[a] = e.rel.MustColumn(a).Vals
	}
	e.bases.Store(&nb)
}

// colLocked returns the cracker column for attr, creating it on demand from
// the current base state (tombstones become pending deletions) and
// publishing a fresh cols map. Must run under mu.
func (e *snapEngine) colLocked(attr string) *crack.SnapCol {
	cols := *e.cols.Load()
	if c, ok := cols[attr]; ok {
		return c
	}
	c := crack.NewSnapCol(e.rel.MustColumn(attr), e.pol, e.ep, e.dead)
	nc := make(map[string]*crack.SnapCol, len(cols)+1)
	for k, v := range cols {
		nc[k] = v
	}
	nc[attr] = c
	e.cols.Store(&nc)
	return c
}

func (e *snapEngine) Insert(vals ...Value) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rel.AppendRow(vals...)
	key := e.rel.NumRows() - 1
	e.publishBasesLocked() // before any column version can expose the key
	cols := *e.cols.Load()
	for _, ap := range e.rel.Order {
		if c, ok := cols[ap]; ok {
			c.Insert(key, e.rel.MustColumn(ap).Vals[key])
		}
	}
	return key
}

func (e *snapEngine) Delete(key int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead[key] {
		return
	}
	e.dead[key] = true
	for _, c := range *e.cols.Load() {
		c.Delete(key)
	}
}

func (e *snapEngine) Prepare(attrs ...string) time.Duration { return 0 }

func (e *snapEngine) Storage() int {
	total := 0
	for _, c := range *e.cols.Load() {
		total += c.Len()
	}
	return total
}

// Probe reports whether q would reorganize: a missing cracker column, a
// missing cut, or a pending-update backlog due for merging. Lock-free.
func (e *snapEngine) Probe(q Query) bool {
	if len(q.Preds) == 0 {
		return true
	}
	cols := *e.cols.Load()
	if q.Disjunctive {
		for _, ap := range q.Preds {
			c, ok := cols[ap.Attr]
			if !ok || c.NeedsCrack(ap.Pred) {
				return true
			}
		}
		return false
	}
	c, ok := cols[q.Preds[0].Attr]
	return !ok || c.NeedsCrack(q.Preds[0].Pred)
}

// gatherRO collects qualifying keys lock-free from one consistent snapshot
// per touched column. The caller must hold an epoch pin spanning the call.
func (e *snapEngine) gatherRO(q Query) ([]Value, bool) {
	cols := *e.cols.Load()
	if q.Disjunctive {
		seen := make(map[Value]bool)
		var keys []Value
		for _, ap := range q.Preds {
			c, ok := cols[ap.Attr]
			if !ok {
				return nil, false
			}
			part, ok := c.GatherRO(ap.Pred, nil)
			if !ok {
				return nil, false
			}
			for _, k := range part {
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
		}
		return keys, true
	}
	c, ok := cols[q.Preds[0].Attr]
	if !ok {
		return nil, false
	}
	keys, ok := c.GatherRO(q.Preds[0].Pred, nil)
	if !ok {
		return nil, false
	}
	// Secondary predicates filter against the base-column snapshot; dead
	// tuples are already excluded by the primary column (physically
	// removed, or filtered through its pending-deletion set).
	bases := *e.bases.Load()
	for _, ap := range q.Preds[1:] {
		base := bases[ap.Attr]
		out := keys[:0]
		for _, k := range keys {
			if ap.Pred.Matches(base[int(k)]) {
				out = append(out, k)
			}
		}
		keys = out
	}
	return keys, true
}

func (e *snapEngine) QueryRO(q Query) (Result, Cost, bool) {
	if len(q.Preds) == 0 {
		return Result{}, Cost{}, false
	}
	var cost Cost
	t0 := time.Now()
	keys, ok := func() ([]Value, bool) {
		pin := e.ep.Enter()
		defer e.ep.Exit(pin) // keys are copies; nothing references version memory after this
		return e.gatherRO(q)
	}()
	if !ok {
		return Result{}, Cost{}, false
	}
	cost.Sel = time.Since(t0)
	t0 = time.Now()
	bases := *e.bases.Load()
	res := Result{Cols: make(map[string][]Value, len(q.Projs)), N: len(keys)}
	for _, attr := range q.Projs {
		base := bases[attr]
		out := make([]Value, len(keys))
		for i, k := range keys {
			out[i] = base[int(k)] // random access: keys are unordered
		}
		res.Cols[attr] = out
	}
	cost.TR = time.Since(t0)
	return res, cost, true
}

func (e *snapEngine) Query(q Query) (Result, Cost) {
	// Fast path: lock-free snapshot read.
	if res, cost, ok := e.QueryRO(q); ok {
		return res, cost
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Double-check: a writer that ran between the two attempts may have
	// cracked the very same range already.
	if res, cost, ok := e.QueryRO(q); ok {
		return res, cost
	}
	var cost Cost
	t0 := time.Now()
	keys := e.selectKeysLocked(q.Preds, q.Disjunctive)
	cost.Sel = time.Since(t0)
	t0 = time.Now()
	res := Result{Cols: make(map[string][]Value, len(q.Projs)), N: len(keys)}
	for _, attr := range q.Projs {
		col := e.rel.MustColumn(attr)
		out := make([]Value, len(keys))
		for i, k := range keys {
			out[i] = col.Vals[int(k)]
		}
		res.Cols[attr] = out
	}
	cost.TR = time.Since(t0)
	return res, cost
}

// selectKeysLocked is the writer-path key selection: cracker-column selects
// publish new versions as a side effect. Must run under mu.
func (e *snapEngine) selectKeysLocked(preds []AttrPred, disjunctive bool) []Value {
	if disjunctive {
		seen := make(map[Value]bool)
		var keys []Value
		for _, ap := range preds {
			for _, k := range e.colLocked(ap.Attr).Select(ap.Pred) {
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
		}
		return keys
	}
	keys := e.colLocked(preds[0].Attr).Select(preds[0].Pred)
	for _, ap := range preds[1:] {
		keys = crack.RelSelect(keys, e.rel.MustColumn(ap.Attr), ap.Pred)
		keys = e.dropDeadLocked(keys)
	}
	return keys
}

// dropDeadLocked removes keys whose tuple is tombstoned but whose deletion
// has not been merged into the column serving the primary predicate yet.
func (e *snapEngine) dropDeadLocked(keys []Value) []Value {
	if len(e.dead) == 0 {
		return keys
	}
	out := keys[:0]
	for _, k := range keys {
		if !e.dead[int(k)] {
			out = append(out, k)
		}
	}
	return out
}

func (e *snapEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var cost Cost
	t0 := time.Now()
	keys := e.selectKeysLocked(preds, false)
	cost.Sel = time.Since(t0)
	t0 = time.Now()
	col := e.rel.MustColumn(joinAttr)
	jv := make([]Value, len(keys))
	for i, k := range keys {
		jv[i] = col.Vals[int(k)]
	}
	cost.TR = time.Since(t0)
	// The fetcher captures the current base-column snapshot: post-join
	// fetches are lock-free and stable even while writers keep appending.
	bases := *e.bases.Load()
	return JoinInput{
		JoinVals: jv,
		Fetch: func(attr string, i int) Value {
			return bases[attr][int(keys[i])]
		},
	}, cost
}

// SnapshotStats aggregates the version-lifecycle counters across the
// engine's cracker columns, plus the number of currently pinned readers.
type SnapshotStats struct {
	Published uint64 // versions published (atomic pointer swaps)
	Reclaimed uint64 // versions reclaimed after their readers exited
	Limbo     uint64 // retired versions still held back by live readers
	Readers   int    // currently pinned readers (racy, monitoring only)
}

// SnapshotStats returns the aggregated snapshot counters.
func (e *snapEngine) SnapshotStats() SnapshotStats {
	var st SnapshotStats
	for _, c := range *e.cols.Load() {
		s := c.Stats()
		st.Published += s.Published
		st.Reclaimed += s.Reclaimed
		st.Limbo += s.Limbo
	}
	st.Readers = e.ep.Active()
	return st
}

// ConcStats implements ConcObservable: snapshot readers never block, so
// reader-wait is identically zero; the interesting signal is versions
// published and reclaimed.
func (e *snapEngine) ConcStats() ConcStats {
	st := e.SnapshotStats()
	return ConcStats{
		Snapshots: int64(st.Published),
		Reclaimed: int64(st.Reclaimed),
	}
}
