// Package engine provides a uniform query executor over the physical
// designs the paper compares:
//
//	Scan            — plain column-store (MonetDB baseline): full scans,
//	                  order-preserving selects, positional reconstruction
//	SelCrack        — selection cracking (CIDR 2007): cracker columns,
//	                  unordered results, random-access reconstruction
//	Presorted       — presorted copies: binary search + aligned slices,
//	                  heavy Prepare step, updates force re-sorting
//	Sideways        — sideways cracking with full maps (Section 3)
//	PartialSideways — partial sideways cracking (Section 4)
//	RowStore        — N-ary row-store reference (read-only, Figure 14)
//
// All engines answer the same Query type and support the same update API,
// so the experiment harness can replay identical workloads against each and
// compare cost profiles. Costs are split into selection (locating
// qualifying tuples) and tuple reconstruction (materializing projections),
// matching the breakdown in the paper's Section 3.6 table.
package engine

import (
	"time"

	"crackstore/internal/crack"
	"crackstore/internal/partial"
	"crackstore/internal/presort"
	"crackstore/internal/sideways"
	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// AttrPred pairs an attribute with a range predicate.
type AttrPred = sideways.AttrPred

// Kind identifies a physical design.
type Kind int

// The core engine kinds; RowStore is declared in rowstore.go.
const (
	Scan Kind = iota
	SelCrack
	Presorted
	Sideways
	PartialSideways
)

func (k Kind) String() string {
	switch k {
	case Scan:
		return "scan"
	case SelCrack:
		return "selcrack"
	case Presorted:
		return "presorted"
	case Sideways:
		return "sideways"
	case PartialSideways:
		return "partial"
	case RowStore:
		return "rowstore"
	}
	return "unknown"
}

// KindByName maps an engine kind's String() form ("scan", "selcrack",
// "presorted", "sideways", "partial", "rowstore") back to its Kind, for
// command-line and configuration surfaces.
func KindByName(name string) (Kind, bool) {
	for _, k := range []Kind{Scan, SelCrack, Presorted, Sideways, PartialSideways, RowStore} {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Query is a multi-selection, multi-projection query. Preds are combined
// conjunctively unless Disjunctive is set. The first predicate is treated
// as the primary (most selective) one by engines without self-organizing
// histograms; sideways engines choose their own map set.
type Query struct {
	Preds       []AttrPred
	Projs       []string
	Disjunctive bool
}

// Result holds positionally aligned projection columns.
type Result struct {
	Cols map[string][]Value
	N    int
}

// Cost is the per-query cost split used throughout the experiments.
type Cost struct {
	Sel time.Duration // locating qualifying tuples (incl. cracking/alignment)
	TR  time.Duration // tuple reconstruction of projections
}

// Total returns Sel + TR.
func (c Cost) Total() time.Duration { return c.Sel + c.TR }

// Engine is one physical design wrapping a single relation.
//
// Engines follow a two-phase (probe/execute) query protocol: Probe asks,
// read-only, whether a query would physically reorganize engine state;
// QueryRO executes reorganization-free queries, reporting ok == false for
// queries that would reorganize. Concurrent builds on QueryRO: it
// attempts every query under a shared read lock and falls back to
// exclusive access only when QueryRO refuses — i.e. when the query must
// crack, merge pending updates, or maintain auxiliary structures. Probe
// is the planning-side view of the same eligibility rule, for callers
// (admission control, schedulers, tests) that want the answer without
// executing.
type Engine interface {
	Name() string
	Kind() Kind
	// Query evaluates q and reports the cost split.
	Query(q Query) (Result, Cost)
	// Probe is the read-only half of the protocol: it reports whether
	// Query(q) would physically reorganize engine state — crack a piece,
	// merge a pending update, or build/align an auxiliary structure. It
	// never mutates and is safe to call concurrently with other read-only
	// operations.
	Probe(q Query) bool
	// QueryRO answers q without reorganizing anything. ok is false when
	// reorganization is required; callers then fall back to Query under
	// exclusive access. Safe to call concurrently with other read-only
	// operations.
	QueryRO(q Query) (Result, Cost, bool)
	// Insert appends a tuple (attribute order of the relation); returns
	// its key.
	Insert(vals ...Value) int
	// Delete removes the tuple with the given key.
	Delete(key int)
	// Prepare performs any offline preparation (presorting); returns its
	// cost. A no-op for self-organizing engines.
	Prepare(attrs ...string) time.Duration
	// Storage returns the auxiliary-structure footprint in tuples.
	Storage() int
	// JoinInput evaluates the selection side of a join plan: it returns
	// the join-attribute values of qualifying tuples and a fetcher for
	// post-join projection lookups by intermediate row index.
	JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost)
}

// JoinInput is one side of a join: the join column of qualifying tuples
// plus a post-join fetcher. For scan and selection cracking the fetcher
// reaches into full base columns (scattered access); for presorted and
// sideways designs it stays within the small clustered intermediate.
type JoinInput struct {
	JoinVals []Value
	Fetch    func(attr string, i int) Value
}

// PolicyConfigurable is implemented by engines (and their shared-safe
// wrappers) whose cracking kernel supports adaptive pivot policies
// (crack.Policy): SelCrack, Sideways and PartialSideways. SetCrackPolicy
// reports whether a cracking engine received the policy — wrappers
// forward and propagate the inner engine's answer, so a wrapped Scan
// still reports false. Policies must be configured before the first
// query touches the relevant attribute — structures that replay shared
// tapes freeze the policy at creation.
type PolicyConfigurable interface {
	SetCrackPolicy(pol crack.Policy) bool
}

// SetPolicy applies the adaptive cracking policy to e when its physical
// design cracks, reporting whether it did. Non-cracking engines (Scan,
// Presorted, RowStore) ignore policies.
func SetPolicy(e Engine, pol crack.Policy) bool {
	if pc, ok := e.(PolicyConfigurable); ok {
		return pc.SetCrackPolicy(pol)
	}
	return false
}

// NewWithPolicy constructs an engine of the given kind over rel with the
// adaptive cracking policy applied (a no-op for non-cracking kinds).
func NewWithPolicy(kind Kind, rel *store.Relation, pol crack.Policy) Engine {
	e := New(kind, rel)
	SetPolicy(e, pol)
	return e
}

// New constructs an engine of the given kind over rel (not copied).
func New(kind Kind, rel *store.Relation) Engine {
	switch kind {
	case Scan:
		return NewScan(rel)
	case SelCrack:
		return NewSelCrack(rel)
	case Presorted:
		return NewPresorted(rel)
	case Sideways:
		return NewSideways(rel)
	case PartialSideways:
		return NewPartial(rel)
	case RowStore:
		return NewRowStore(rel)
	}
	panic("engine: unknown kind")
}

// MaxPerProj reduces a result to the per-projection maxima (the aggregate
// used by queries q1-q3 in the paper's experiments). ok is false when the
// result is empty.
func MaxPerProj(res Result, projs []string) (map[string]Value, bool) {
	if res.N == 0 {
		return nil, false
	}
	out := make(map[string]Value, len(projs))
	for _, attr := range projs {
		m, _ := store.Max(res.Cols[attr])
		out[attr] = m
	}
	return out, true
}

// ---------------------------------------------------------------------------
// Scan engine: the plain column-store baseline.

type scanEngine struct {
	rel  *store.Relation
	dead map[int]bool
}

// NewScan returns the plain column-store engine (non-cracking MonetDB).
func NewScan(rel *store.Relation) Engine {
	return &scanEngine{rel: rel, dead: make(map[int]bool)}
}

func (e *scanEngine) Name() string { return "MonetDB-style scan" }
func (e *scanEngine) Kind() Kind   { return Scan }

func (e *scanEngine) Insert(vals ...Value) int {
	e.rel.AppendRow(vals...)
	return e.rel.NumRows() - 1
}

func (e *scanEngine) Delete(key int)                        { e.dead[key] = true }
func (e *scanEngine) Prepare(attrs ...string) time.Duration { return 0 }
func (e *scanEngine) Storage() int                          { return 0 }

// selectKeys returns the ordered keys matching the query's predicates.
func (e *scanEngine) selectKeys(preds []AttrPred, disjunctive bool) []int {
	n := e.rel.NumRows()
	var keys []int
	cols := make([]*store.Column, len(preds))
	for i, ap := range preds {
		cols[i] = e.rel.MustColumn(ap.Attr)
	}
	for i := 0; i < n; i++ {
		if e.dead[i] {
			continue
		}
		match := !disjunctive
		for j, ap := range preds {
			m := ap.Pred.Matches(cols[j].Vals[i])
			if disjunctive {
				match = match || m
			} else {
				match = match && m
			}
		}
		if match {
			keys = append(keys, i)
		}
	}
	return keys
}

func (e *scanEngine) Query(q Query) (Result, Cost) {
	var cost Cost
	t0 := time.Now()
	keys := e.selectKeys(q.Preds, q.Disjunctive)
	cost.Sel = time.Since(t0)
	t0 = time.Now()
	res := Result{Cols: make(map[string][]Value, len(q.Projs)), N: len(keys)}
	for _, attr := range q.Projs {
		res.Cols[attr] = store.Reconstruct(e.rel.MustColumn(attr), keys)
	}
	cost.TR = time.Since(t0)
	return res, cost
}

// Probe: a full scan never reorganizes anything.
func (e *scanEngine) Probe(q Query) bool { return false }

func (e *scanEngine) QueryRO(q Query) (Result, Cost, bool) {
	res, cost := e.Query(q)
	return res, cost, true
}

func (e *scanEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	var cost Cost
	t0 := time.Now()
	keys := e.selectKeys(preds, false)
	cost.Sel = time.Since(t0)
	t0 = time.Now()
	jv := store.Reconstruct(e.rel.MustColumn(joinAttr), keys)
	cost.TR = time.Since(t0)
	// Capture the projection columns' slice headers now: base columns are
	// append-only (deletes are tombstones), so the snapshot stays valid for
	// every selected key even if writers append rows between fetches —
	// which lets shared-safe wrappers hand the fetcher out lock-free.
	fetchCols := fetchSnapshot(e.rel, projs, joinAttr)
	return JoinInput{
		JoinVals: jv,
		// Post-join reconstruction prompts the full base columns: the
		// qualifying tuples are scattered across the whole column.
		Fetch: func(attr string, i int) Value {
			return fetchCols.col(e.rel, attr)[keys[i]]
		},
	}, cost
}

// fetchCols is a snapshot of base-column slice headers captured when a
// JoinInput fetcher is built, so post-join fetches need no lock.
type fetchCols map[string][]Value

func fetchSnapshot(rel *store.Relation, projs []string, joinAttr string) fetchCols {
	fc := make(fetchCols, len(projs)+1)
	for _, a := range projs {
		fc[a] = rel.MustColumn(a).Vals
	}
	fc[joinAttr] = rel.MustColumn(joinAttr).Vals
	return fc
}

// col resolves attr from the snapshot, falling back to the live column for
// attributes outside the join's projection list (join plans never fetch
// those; the fallback only preserves the old any-attribute behavior for
// direct callers).
func (fc fetchCols) col(rel *store.Relation, attr string) []Value {
	if vals, ok := fc[attr]; ok {
		return vals
	}
	return rel.MustColumn(attr).Vals
}

// ---------------------------------------------------------------------------
// Selection cracking engine.

type selCrackEngine struct {
	rel  *store.Relation
	cols map[string]*crack.Col
	dead map[int]bool
	pol  crack.Policy
}

// NewSelCrack returns the selection-cracking engine of CIDR 2007: cracker
// columns per selection attribute, crackers.select + rel_select plans, and
// random-access tuple reconstruction from base columns.
func NewSelCrack(rel *store.Relation) Engine {
	return &selCrackEngine{rel: rel, cols: make(map[string]*crack.Col), dead: make(map[int]bool)}
}

func (e *selCrackEngine) Name() string { return "selection cracking" }
func (e *selCrackEngine) Kind() Kind   { return SelCrack }

// SetCrackPolicy configures the adaptive pivot policy for cracker columns.
// Existing columns adopt it for future cracks (each column is independent,
// so no cross-structure alignment is at stake).
func (e *selCrackEngine) SetCrackPolicy(pol crack.Policy) bool {
	e.pol = pol
	for _, c := range e.cols {
		c.P.Policy = pol
	}
	return true
}

func (e *selCrackEngine) Insert(vals ...Value) int {
	e.rel.AppendRow(vals...)
	key := e.rel.NumRows() - 1
	for _, ap := range e.rel.Order {
		if c, ok := e.cols[ap]; ok {
			c.Insert(key, e.rel.MustColumn(ap).Vals[key])
		}
	}
	return key
}

func (e *selCrackEngine) Delete(key int) {
	if e.dead[key] {
		return
	}
	e.dead[key] = true
	for _, c := range e.cols {
		c.Delete(key)
	}
}

func (e *selCrackEngine) Prepare(attrs ...string) time.Duration { return 0 }

func (e *selCrackEngine) Storage() int {
	total := 0
	for _, c := range e.cols {
		total += c.Len()
	}
	return total
}

// col returns the cracker column for attr, creating it on demand from the
// current base state (tombstones become pending deletions).
func (e *selCrackEngine) col(attr string) *crack.Col {
	if c, ok := e.cols[attr]; ok {
		return c
	}
	c := crack.NewColWithPolicy(e.rel.MustColumn(attr), e.pol)
	for k := range e.dead {
		c.Delete(k)
	}
	e.cols[attr] = c
	return c
}

// selectKeys runs crackers.select on the primary predicate and
// crackers.rel_select on the rest. Keys come back unordered.
func (e *selCrackEngine) selectKeys(preds []AttrPred, disjunctive bool) []Value {
	if disjunctive {
		// Disjunctions crack every predicate's column and union the keys.
		seen := make(map[Value]bool)
		var keys []Value
		for _, ap := range preds {
			for _, k := range e.col(ap.Attr).Select(ap.Pred) {
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
		}
		return keys
	}
	keys := append([]Value(nil), e.col(preds[0].Attr).Select(preds[0].Pred)...)
	for _, ap := range preds[1:] {
		keys = crack.RelSelect(keys, e.rel.MustColumn(ap.Attr), ap.Pred)
		keys = e.dropDead(keys, ap)
	}
	return keys
}

// dropDead removes keys whose tuple is tombstoned but whose deletion has
// not been merged into the cracker column serving this predicate yet.
func (e *selCrackEngine) dropDead(keys []Value, ap AttrPred) []Value {
	if len(e.dead) == 0 {
		return keys
	}
	out := keys[:0]
	for _, k := range keys {
		if !e.dead[int(k)] {
			out = append(out, k)
		}
	}
	return out
}

func (e *selCrackEngine) Query(q Query) (Result, Cost) {
	var cost Cost
	t0 := time.Now()
	keys := e.selectKeys(q.Preds, q.Disjunctive)
	cost.Sel = time.Since(t0)
	t0 = time.Now()
	res := Result{Cols: make(map[string][]Value, len(q.Projs)), N: len(keys)}
	for _, attr := range q.Projs {
		col := e.rel.MustColumn(attr)
		out := make([]Value, len(keys))
		for i, k := range keys {
			out[i] = col.Vals[int(k)] // random access: keys are unordered
		}
		res.Cols[attr] = out
	}
	cost.TR = time.Since(t0)
	return res, cost
}

// Probe reports whether q's selections would crack a cracker column or
// merge a pending update (including the on-demand creation of a missing
// cracker column).
func (e *selCrackEngine) Probe(q Query) bool {
	if len(q.Preds) == 0 {
		return true
	}
	if q.Disjunctive {
		for _, ap := range q.Preds {
			c, ok := e.cols[ap.Attr]
			if !ok || c.NeedsCrack(ap.Pred) {
				return true
			}
		}
		return false
	}
	c, ok := e.cols[q.Preds[0].Attr]
	return !ok || c.NeedsCrack(q.Preds[0].Pred)
}

// selectKeysRO is the reorganization-free twin of selectKeys: it reads the
// qualifying keys out of already-cracked areas. ok is false when any
// touched column would reorganize.
func (e *selCrackEngine) selectKeysRO(preds []AttrPred, disjunctive bool) ([]Value, bool) {
	if len(preds) == 0 {
		return nil, false
	}
	if disjunctive {
		seen := make(map[Value]bool)
		var keys []Value
		for _, ap := range preds {
			c, ok := e.cols[ap.Attr]
			if !ok {
				return nil, false
			}
			view, ok := c.SelectRO(ap.Pred)
			if !ok {
				return nil, false
			}
			for _, k := range view {
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
		}
		return keys, true
	}
	c, ok := e.cols[preds[0].Attr]
	if !ok {
		return nil, false
	}
	view, ok := c.SelectRO(preds[0].Pred)
	if !ok {
		return nil, false
	}
	keys := append([]Value(nil), view...)
	for _, ap := range preds[1:] {
		keys = crack.RelSelect(keys, e.rel.MustColumn(ap.Attr), ap.Pred)
		keys = e.dropDead(keys, ap)
	}
	return keys, true
}

func (e *selCrackEngine) QueryRO(q Query) (Result, Cost, bool) {
	var cost Cost
	t0 := time.Now()
	keys, ok := e.selectKeysRO(q.Preds, q.Disjunctive)
	if !ok {
		return Result{}, Cost{}, false
	}
	cost.Sel = time.Since(t0)
	t0 = time.Now()
	res := Result{Cols: make(map[string][]Value, len(q.Projs)), N: len(keys)}
	for _, attr := range q.Projs {
		col := e.rel.MustColumn(attr)
		out := make([]Value, len(keys))
		for i, k := range keys {
			out[i] = col.Vals[int(k)] // random access: keys are unordered
		}
		res.Cols[attr] = out
	}
	cost.TR = time.Since(t0)
	return res, cost, true
}

func (e *selCrackEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	var cost Cost
	t0 := time.Now()
	keys := e.selectKeys(preds, false)
	cost.Sel = time.Since(t0)
	t0 = time.Now()
	col := e.rel.MustColumn(joinAttr)
	jv := make([]Value, len(keys))
	for i, k := range keys {
		jv[i] = col.Vals[int(k)]
	}
	cost.TR = time.Since(t0)
	// Snapshot the projection columns so the fetcher never touches live
	// engine state (see scanEngine.JoinInput).
	fetchCols := fetchSnapshot(e.rel, projs, joinAttr)
	return JoinInput{
		JoinVals: jv,
		Fetch: func(attr string, i int) Value {
			return fetchCols.col(e.rel, attr)[int(keys[i])]
		},
	}, cost
}

// ---------------------------------------------------------------------------
// Presorted engine.

type presortEngine struct {
	ps    *presort.Store
	stale map[string]bool
	dead  map[int]bool
}

// NewPresorted returns the presorted-copies engine. Prepare builds a copy
// per selection attribute; updates mark every copy stale and the next query
// pays a full re-sort — the maintenance problem the paper highlights.
func NewPresorted(rel *store.Relation) Engine {
	return &presortEngine{ps: presort.NewStore(rel), stale: make(map[string]bool), dead: make(map[int]bool)}
}

func (e *presortEngine) Name() string { return "presorted copies" }
func (e *presortEngine) Kind() Kind   { return Presorted }

func (e *presortEngine) Prepare(attrs ...string) time.Duration {
	t0 := time.Now()
	for _, a := range attrs {
		e.rebuild(a)
	}
	return time.Since(t0)
}

func (e *presortEngine) rebuild(attr string) {
	if len(e.dead) == 0 {
		e.ps.Prepare(attr)
	} else {
		e.ps.PrepareFiltered(attr, func(key int) bool { return e.dead[key] })
	}
	delete(e.stale, attr)
}

func (e *presortEngine) Insert(vals ...Value) int {
	rel := e.ps.Relation()
	rel.AppendRow(vals...)
	for a := range e.allCopies() {
		e.stale[a] = true
	}
	return rel.NumRows() - 1
}

func (e *presortEngine) Delete(key int) {
	if e.dead[key] {
		return
	}
	// There is no efficient way to maintain presorted copies under updates
	// (Section 3.6, Exp6): every copy must be rebuilt.
	e.dead[key] = true
	for a := range e.allCopies() {
		e.stale[a] = true
	}
}

func (e *presortEngine) allCopies() map[string]bool {
	out := make(map[string]bool)
	for _, a := range e.ps.Relation().Order {
		if e.ps.CopyFor(a) != nil {
			out[a] = true
		}
	}
	return out
}

func (e *presortEngine) Storage() int {
	total := 0
	for _, a := range e.ps.Relation().Order {
		if c := e.ps.CopyFor(a); c != nil {
			total += c.Len() * len(e.ps.Relation().Order)
		}
	}
	return total
}

func (e *presortEngine) freshCopy(attr string) {
	if e.ps.CopyFor(attr) == nil || e.stale[attr] {
		e.rebuild(attr)
	}
}

func (e *presortEngine) Query(q Query) (Result, Cost) {
	var cost Cost
	primary := q.Preds[0].Attr
	t0 := time.Now()
	e.freshCopy(primary)
	preds := make([]store.Pred, len(q.Preds))
	attrs := make([]string, len(q.Preds))
	for i, ap := range q.Preds {
		preds[i] = ap.Pred
		attrs[i] = ap.Attr
	}
	pres := e.ps.Query(preds, attrs, 0, q.Projs, q.Disjunctive)
	cost.Sel = time.Since(t0)
	// Selection and reconstruction are fused in the sorted copy; attribute
	// the (small) projection copying to TR by re-measuring it.
	t0 = time.Now()
	res := Result{Cols: pres.Cols, N: pres.N}
	cost.TR = time.Since(t0)
	return res, cost
}

// Probe reports whether the primary predicate's presorted copy is missing
// or stale (updates force a full re-sort on the next query).
func (e *presortEngine) Probe(q Query) bool {
	if len(q.Preds) == 0 {
		return true
	}
	primary := q.Preds[0].Attr
	return e.ps.CopyFor(primary) == nil || e.stale[primary]
}

func (e *presortEngine) QueryRO(q Query) (Result, Cost, bool) {
	if e.Probe(q) {
		return Result{}, Cost{}, false
	}
	// With a fresh copy the query is a binary search plus aligned scans —
	// no rebuild, no mutation.
	res, cost := e.Query(q)
	return res, cost, true
}

func (e *presortEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	var cost Cost
	t0 := time.Now()
	q := Query{Preds: preds, Projs: append(append([]string(nil), projs...), joinAttr)}
	res, _ := e.Query(q)
	cost.Sel = time.Since(t0)
	return JoinInput{
		JoinVals: res.Cols[joinAttr],
		// Post-join access stays within the small materialized result.
		Fetch: func(attr string, i int) Value {
			return res.Cols[attr][i]
		},
	}, cost
}

// ---------------------------------------------------------------------------
// Sideways cracking engine (full maps).

type sidewaysEngine struct {
	st *sideways.Store
}

// NewSideways returns the full-map sideways cracking engine (Section 3).
func NewSideways(rel *store.Relation) Engine {
	return &sidewaysEngine{st: sideways.NewStore(rel)}
}

// NewSidewaysWithBudget returns a sideways engine with a storage threshold
// (full maps are dropped LFU when the budget is exceeded, Section 4.2).
func NewSidewaysWithBudget(rel *store.Relation, budget int) Engine {
	st := sideways.NewStore(rel)
	st.Budget = budget
	return &sidewaysEngine{st: st}
}

func (e *sidewaysEngine) Name() string { return "sideways cracking" }
func (e *sidewaysEngine) Kind() Kind   { return Sideways }

// SetCrackPolicy configures the adaptive pivot policy for the store's
// maps; it affects map sets created after the call (sets freeze their
// policy at creation to keep tape replay aligned).
func (e *sidewaysEngine) SetCrackPolicy(pol crack.Policy) bool {
	e.st.Policy = pol
	return true
}

func (e *sidewaysEngine) Insert(vals ...Value) int        { return e.st.Insert(vals...) }
func (e *sidewaysEngine) Delete(key int)                  { e.st.Delete(key) }
func (e *sidewaysEngine) Prepare(...string) time.Duration { return 0 }
func (e *sidewaysEngine) Storage() int                    { return e.st.StorageTuples() }
func (e *sidewaysEngine) Store() *sideways.Store          { return e.st }

func (e *sidewaysEngine) Query(q Query) (Result, Cost) {
	var cost Cost
	t0 := time.Now()
	res := e.st.MultiSelect(q.Preds, q.Projs, q.Disjunctive)
	cost.Sel = time.Since(t0)
	return Result{Cols: res.Cols, N: res.N}, cost
}

// Probe reports whether the query would crack a map, merge pending
// updates, materialize a map, or grow the set's cracker tape.
func (e *sidewaysEngine) Probe(q Query) bool {
	if len(q.Preds) == 0 {
		return true
	}
	return e.st.ProbeMulti(q.Preds, q.Projs, q.Disjunctive)
}

func (e *sidewaysEngine) QueryRO(q Query) (Result, Cost, bool) {
	if len(q.Preds) == 0 {
		return Result{}, Cost{}, false
	}
	var cost Cost
	t0 := time.Now()
	res, ok := e.st.MultiSelectRO(q.Preds, q.Projs, q.Disjunctive)
	if !ok {
		return Result{}, Cost{}, false
	}
	cost.Sel = time.Since(t0)
	return Result{Cols: res.Cols, N: res.N}, cost, true
}

func (e *sidewaysEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	var cost Cost
	t0 := time.Now()
	res := e.st.MultiSelect(preds, append(append([]string(nil), projs...), joinAttr), false)
	cost.Sel = time.Since(t0)
	return JoinInput{
		JoinVals: res.Cols[joinAttr],
		Fetch: func(attr string, i int) Value {
			return res.Cols[attr][i]
		},
	}, cost
}

// ---------------------------------------------------------------------------
// Partial sideways cracking engine.

type partialEngine struct {
	st *partial.Store
}

// NewPartial returns the partial sideways cracking engine (Section 4).
func NewPartial(rel *store.Relation) Engine {
	return &partialEngine{st: partial.NewStore(rel)}
}

// NewPartialWithBudget returns a partial engine with a chunk storage
// threshold in tuples.
func NewPartialWithBudget(rel *store.Relation, budget int) Engine {
	st := partial.NewStore(rel)
	st.Budget = budget
	return &partialEngine{st: st}
}

// WrapPartial wraps an already-configured partial store in an Engine.
func WrapPartial(st *partial.Store) Engine { return &partialEngine{st: st} }

func (e *partialEngine) Name() string { return "partial sideways cracking" }
func (e *partialEngine) Kind() Kind   { return PartialSideways }

// SetCrackPolicy configures the adaptive pivot policy for chunk maps and
// chunks; it affects sets created after the call (sets freeze their policy
// at creation to keep area-tape replay aligned).
func (e *partialEngine) SetCrackPolicy(pol crack.Policy) bool {
	e.st.Policy = pol
	return true
}

func (e *partialEngine) Insert(vals ...Value) int        { return e.st.Insert(vals...) }
func (e *partialEngine) Delete(key int)                  { e.st.Delete(key) }
func (e *partialEngine) Prepare(...string) time.Duration { return 0 }
func (e *partialEngine) Storage() int                    { return e.st.StorageTuples() }
func (e *partialEngine) Store() *partial.Store           { return e.st }

func (e *partialEngine) Query(q Query) (Result, Cost) {
	var cost Cost
	t0 := time.Now()
	res := e.st.MultiSelect(q.Preds, q.Projs, q.Disjunctive)
	cost.Sel = time.Since(t0)
	return Result{Cols: res.Cols, N: res.N}, cost
}

// Probe reports whether the query would fetch an area, create or replay a
// chunk, crack, merge pending updates, or grow an area tape.
func (e *partialEngine) Probe(q Query) bool {
	if len(q.Preds) == 0 {
		return true
	}
	return e.st.ProbeMulti(q.Preds, q.Projs, q.Disjunctive)
}

func (e *partialEngine) QueryRO(q Query) (Result, Cost, bool) {
	if len(q.Preds) == 0 {
		return Result{}, Cost{}, false
	}
	var cost Cost
	t0 := time.Now()
	res, ok := e.st.MultiSelectRO(q.Preds, q.Projs, q.Disjunctive)
	if !ok {
		return Result{}, Cost{}, false
	}
	cost.Sel = time.Since(t0)
	return Result{Cols: res.Cols, N: res.N}, cost, true
}

func (e *partialEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	var cost Cost
	t0 := time.Now()
	res := e.st.MultiSelect(preds, append(append([]string(nil), projs...), joinAttr), false)
	cost.Sel = time.Since(t0)
	return JoinInput{
		JoinVals: res.Cols[joinAttr],
		Fetch: func(attr string, i int) Value {
			return res.Cols[attr][i]
		},
	}, cost
}

// ---------------------------------------------------------------------------
// Join plans (Exp4, q2).

// JoinSide describes one side of a join query.
type JoinSide struct {
	E        Engine
	Preds    []AttrPred
	JoinAttr string
	Projs    []string
}

// JoinCost breaks a join query into the phases reported by Figure 5.
type JoinCost struct {
	PreSel time.Duration // selections + pre-join tuple reconstruction
	Join   time.Duration // the join itself
	PostTR time.Duration // post-join tuple reconstruction
}

// Total returns the summed join cost.
func (c JoinCost) Total() time.Duration { return c.PreSel + c.Join + c.PostTR }

// JoinMax evaluates "select max(projs...) from L, R where preds and
// L.join = R.join" across two engines and returns the maxima keyed by
// side-qualified attribute names ("L.attr", "R.attr").
func JoinMax(l, r JoinSide) (map[string]Value, JoinCost) {
	var jc JoinCost
	li, lc := l.E.JoinInput(l.Preds, l.JoinAttr, l.Projs)
	ri, rc := r.E.JoinInput(r.Preds, r.JoinAttr, r.Projs)
	jc.PreSel = lc.Sel + lc.TR + rc.Sel + rc.TR

	t0 := time.Now()
	pairs := store.Join(li.JoinVals, ri.JoinVals)
	jc.Join = time.Since(t0)

	t0 = time.Now()
	out := make(map[string]Value, len(l.Projs)+len(r.Projs))
	if len(pairs) > 0 {
		for _, attr := range l.Projs {
			m := li.Fetch(attr, pairs[0].L)
			for _, p := range pairs[1:] {
				if v := li.Fetch(attr, p.L); v > m {
					m = v
				}
			}
			out["L."+attr] = m
		}
		for _, attr := range r.Projs {
			m := ri.Fetch(attr, pairs[0].R)
			for _, p := range pairs[1:] {
				if v := ri.Fetch(attr, p.R); v > m {
					m = v
				}
			}
			out["R."+attr] = m
		}
	}
	jc.PostTR = time.Since(t0)
	return out, jc
}
