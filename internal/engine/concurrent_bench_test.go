package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"crackstore/internal/store"
	"crackstore/internal/workload"
)

// warmEngine builds a sideways engine over rows random tuples and runs the
// returned query pool once, so every pool query afterwards hits the
// reorganization-free path.
func warmEngine(rows int, sel float64, wrap func(Engine) Engine) (Engine, []Query) {
	rng := rand.New(rand.NewSource(1))
	rel := store.Build("R", rows, []string{"A", "B"}, func(string, int) Value {
		return rng.Int63n(int64(rows)) + 1
	})
	e := wrap(New(Sideways, rel))
	gen := workload.New(int64(rows), 2)
	pool := make([]Query, 64)
	for i := range pool {
		pool[i] = Query{Preds: []AttrPred{{Attr: "A", Pred: gen.Range(sel)}}, Projs: []string{"B"}}
	}
	for _, q := range pool {
		e.Query(q)
	}
	return e, pool
}

// BenchmarkWarmQuery compares the serialized baseline against the
// probe/execute Concurrent wrapper on an aligned repeat workload, across
// client counts. With >1 CPU the Concurrent numbers scale with cores; the
// serialized ones do not.
func BenchmarkWarmQuery(b *testing.B) {
	for _, mode := range []struct {
		name string
		wrap func(Engine) Engine
	}{{"serialized", Serialized}, {"concurrent", Concurrent}} {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", mode.name, clients), func(b *testing.B) {
				e, pool := warmEngine(100_000, 0.01, mode.wrap)
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / clients
				for g := 0; g < clients; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							e.Query(pool[(g+i)%len(pool)])
						}
					}(g)
				}
				wg.Wait()
			})
		}
	}
}
