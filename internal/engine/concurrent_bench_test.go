package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"crackstore/internal/store"
	"crackstore/internal/workload"
)

// warmEngine builds a sideways engine over rows random tuples and runs the
// returned query pool once, so every pool query afterwards hits the
// reorganization-free path.
func warmEngine(rows int, sel float64, wrap func(Engine) Engine) (Engine, []Query) {
	rng := rand.New(rand.NewSource(1))
	rel := store.Build("R", rows, []string{"A", "B"}, func(string, int) Value {
		return rng.Int63n(int64(rows)) + 1
	})
	e := wrap(New(Sideways, rel))
	gen := workload.New(int64(rows), 2)
	pool := make([]Query, 64)
	for i := range pool {
		pool[i] = Query{Preds: []AttrPred{{Attr: "A", Pred: gen.Range(sel)}}, Projs: []string{"B"}}
	}
	for _, q := range pool {
		e.Query(q)
	}
	return e, pool
}

// BenchmarkJoinFetch measures the post-join fetch path of a Concurrent-
// wrapped engine: JoinInput once, then every qualifying tuple fetched for
// projection. The fetcher used to take/release the wrapper's RLock per
// tuple; it now reads a captured column snapshot with no lock at all, so
// this benchmark is the regression guard for that fix.
func BenchmarkJoinFetch(b *testing.B) {
	for _, mode := range []struct {
		name string
		wrap func(Engine) Engine
	}{{"plain", func(e Engine) Engine { return e }}, {"concurrent", Concurrent}} {
		b.Run(mode.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			const rows = 100_000
			rel := store.Build("R", rows, []string{"A", "B", "C"}, func(string, int) Value {
				return rng.Int63n(rows) + 1
			})
			e := mode.wrap(New(SelCrack, rel))
			preds := []AttrPred{{Attr: "A", Pred: store.Range(1, rows/4)}}
			ji, _ := e.JoinInput(preds, "B", []string{"C"})
			if len(ji.JoinVals) == 0 {
				b.Fatal("empty join input")
			}
			b.ResetTimer()
			var sink Value
			for i := 0; i < b.N; i++ {
				sink += ji.Fetch("C", i%len(ji.JoinVals))
			}
			_ = sink
		})
	}
}

// BenchmarkWarmQuery compares the serialized baseline against the
// probe/execute Concurrent wrapper on an aligned repeat workload, across
// client counts. With >1 CPU the Concurrent numbers scale with cores; the
// serialized ones do not.
func BenchmarkWarmQuery(b *testing.B) {
	for _, mode := range []struct {
		name string
		wrap func(Engine) Engine
	}{{"serialized", Serialized}, {"concurrent", Concurrent}} {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", mode.name, clients), func(b *testing.B) {
				e, pool := warmEngine(100_000, 0.01, mode.wrap)
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / clients
				for g := 0; g < clients; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							e.Query(pool[(g+i)%len(pool)])
						}
					}(g)
				}
				wg.Wait()
			})
		}
	}
}
