package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"crackstore/internal/crack"
)

// ConcStats reports how a shared-safe wrapper's readers fare against
// concurrent reorganization: how long (and how often) readers blocked
// waiting for access, and — for snapshot engines — how many versions were
// published and reclaimed. The zero value means "nothing observed".
type ConcStats struct {
	// ReaderWait is the cumulative time readers spent blocked acquiring
	// read access (zero for lock-free snapshot readers).
	ReaderWait time.Duration
	// ReaderWaits counts read acquisitions that had to block.
	ReaderWaits int64
	// Snapshots counts versions published by writers (snapshot engine).
	Snapshots int64
	// Reclaimed counts retired versions whose memory was freed after all
	// reader epochs moved past them (snapshot engine).
	Reclaimed int64
}

// ConcObservable is implemented by shared-safe wrappers that track
// reader/writer contention statistics.
type ConcObservable interface {
	ConcStats() ConcStats
}

// ConcStatsOf extracts contention statistics from e if its wrapper tracks
// them.
func ConcStatsOf(e Engine) (ConcStats, bool) {
	if o, ok := e.(ConcObservable); ok {
		return o.ConcStats(), true
	}
	return ConcStats{}, false
}

// Concurrent wraps an engine with the two-phase (probe/execute) locking
// protocol so it can serve many goroutines at once.
//
// Cracking engines physically reorganize their structures as a side effect
// of queries — reads are writes — but after a warm-up the vast majority of
// queries touch only already-cracked pieces and reorganize nothing. The
// wrapper exploits that: a query first attempts the engine's
// reorganization-free path under a shared read lock (QueryRO); only when
// the engine reports that cracking, a pending-update merge, or structure
// maintenance is required does it take the exclusive write lock, re-check
// (another writer may have done the work in the meantime), and run the full
// Query. Aligned repeat queries therefore run genuinely in parallel, and
// one crack pays for every reader that was waiting behind it.
//
// Wrapping is idempotent: Concurrent on an engine that is already safe to
// share (a Concurrent or Serialized wrapper, or an engine carrying the
// SharedEngine marker, such as the sharded engine) returns it unchanged —
// adding a global lock over an engine that manages its own finer-grained
// locking would serialize it.
func Concurrent(e Engine) Engine {
	if IsShared(e) {
		return e
	}
	return &rwEngine{e: e}
}

// sharedMarker tags engines defined outside this package that are already
// safe to share across goroutines because they do their own locking (e.g.
// internal/shard, which wraps every shard in Concurrent individually).
type sharedMarker interface{ SharedEngine() }

// IsShared reports whether e is already safe to share across goroutines:
// a Concurrent or Serialized wrapper, or any engine implementing the
// SharedEngine marker method.
func IsShared(e Engine) bool {
	switch e.(type) {
	case *rwEngine, *syncEngine:
		return true
	}
	_, ok := e.(sharedMarker)
	return ok
}

type rwEngine struct {
	mu sync.RWMutex
	e  Engine

	readerWaitNs atomic.Int64
	readerWaits  atomic.Int64
}

// rlock acquires the read lock, recording time spent blocked behind a
// writer (an uncontended acquisition costs one TryRLock).
func (s *rwEngine) rlock() {
	if s.mu.TryRLock() {
		return
	}
	t0 := time.Now()
	//crackvet:ignore lockpair rlock acquires for its caller; every call site pairs it with s.mu.RUnlock
	s.mu.RLock()
	s.readerWaitNs.Add(int64(time.Since(t0)))
	s.readerWaits.Add(1)
}

func (s *rwEngine) ConcStats() ConcStats {
	return ConcStats{
		ReaderWait:  time.Duration(s.readerWaitNs.Load()),
		ReaderWaits: s.readerWaits.Load(),
	}
}

func (s *rwEngine) Name() string { return s.e.Name() + " (concurrent)" }
func (s *rwEngine) Kind() Kind   { return s.e.Kind() }

// SetCrackPolicy forwards the adaptive cracking policy to the wrapped
// engine under the write lock, reporting whether it cracks.
func (s *rwEngine) SetCrackPolicy(pol crack.Policy) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SetPolicy(s.e, pol)
}

func (s *rwEngine) Query(q Query) (Result, Cost) {
	// Fast path: execute read-only under the shared lock.
	s.rlock()
	res, cost, ok := s.e.QueryRO(q)
	s.mu.RUnlock()
	if ok {
		return res, cost
	}
	// Slow path: the query needs reorganization. Double-check under the
	// write lock — a writer that ran between the two lock acquisitions may
	// have cracked the very same range already.
	s.mu.Lock()
	defer s.mu.Unlock()
	if res, cost, ok := s.e.QueryRO(q); ok {
		return res, cost
	}
	return s.e.Query(q)
}

func (s *rwEngine) Probe(q Query) bool {
	s.rlock()
	defer s.mu.RUnlock()
	return s.e.Probe(q)
}

func (s *rwEngine) QueryRO(q Query) (Result, Cost, bool) {
	s.rlock()
	defer s.mu.RUnlock()
	return s.e.QueryRO(q)
}

func (s *rwEngine) Insert(vals ...Value) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Insert(vals...)
}

func (s *rwEngine) Delete(key int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.e.Delete(key)
}

func (s *rwEngine) Prepare(attrs ...string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Prepare(attrs...)
}

func (s *rwEngine) Storage() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.Storage()
}

func (s *rwEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	// Join selections crack both inputs; take the write lock up front.
	// The returned fetcher needs no lock at all: every engine's JoinInput
	// captures a snapshot of its fetch columns (base-column slice headers
	// or a materialized intermediate), both immutable under concurrent
	// appends. The previous per-tuple RLock/RUnlock pair here dominated
	// wide join projections.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.JoinInput(preds, joinAttr, projs)
}
