package engine

import (
	"sync"
	"time"

	"crackstore/internal/crack"
)

// Concurrent wraps an engine with the two-phase (probe/execute) locking
// protocol so it can serve many goroutines at once.
//
// Cracking engines physically reorganize their structures as a side effect
// of queries — reads are writes — but after a warm-up the vast majority of
// queries touch only already-cracked pieces and reorganize nothing. The
// wrapper exploits that: a query first attempts the engine's
// reorganization-free path under a shared read lock (QueryRO); only when
// the engine reports that cracking, a pending-update merge, or structure
// maintenance is required does it take the exclusive write lock, re-check
// (another writer may have done the work in the meantime), and run the full
// Query. Aligned repeat queries therefore run genuinely in parallel, and
// one crack pays for every reader that was waiting behind it.
//
// Wrapping is idempotent: Concurrent on an engine that is already safe to
// share (a Concurrent or Serialized wrapper, or an engine carrying the
// SharedEngine marker, such as the sharded engine) returns it unchanged —
// adding a global lock over an engine that manages its own finer-grained
// locking would serialize it.
func Concurrent(e Engine) Engine {
	if IsShared(e) {
		return e
	}
	return &rwEngine{e: e}
}

// sharedMarker tags engines defined outside this package that are already
// safe to share across goroutines because they do their own locking (e.g.
// internal/shard, which wraps every shard in Concurrent individually).
type sharedMarker interface{ SharedEngine() }

// IsShared reports whether e is already safe to share across goroutines:
// a Concurrent or Serialized wrapper, or any engine implementing the
// SharedEngine marker method.
func IsShared(e Engine) bool {
	switch e.(type) {
	case *rwEngine, *syncEngine:
		return true
	}
	_, ok := e.(sharedMarker)
	return ok
}

type rwEngine struct {
	mu sync.RWMutex
	e  Engine
}

func (s *rwEngine) Name() string { return s.e.Name() + " (concurrent)" }
func (s *rwEngine) Kind() Kind   { return s.e.Kind() }

// SetCrackPolicy forwards the adaptive cracking policy to the wrapped
// engine under the write lock, reporting whether it cracks.
func (s *rwEngine) SetCrackPolicy(pol crack.Policy) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SetPolicy(s.e, pol)
}

func (s *rwEngine) Query(q Query) (Result, Cost) {
	// Fast path: execute read-only under the shared lock.
	s.mu.RLock()
	res, cost, ok := s.e.QueryRO(q)
	s.mu.RUnlock()
	if ok {
		return res, cost
	}
	// Slow path: the query needs reorganization. Double-check under the
	// write lock — a writer that ran between the two lock acquisitions may
	// have cracked the very same range already.
	s.mu.Lock()
	defer s.mu.Unlock()
	if res, cost, ok := s.e.QueryRO(q); ok {
		return res, cost
	}
	return s.e.Query(q)
}

func (s *rwEngine) Probe(q Query) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.Probe(q)
}

func (s *rwEngine) QueryRO(q Query) (Result, Cost, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.QueryRO(q)
}

func (s *rwEngine) Insert(vals ...Value) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Insert(vals...)
}

func (s *rwEngine) Delete(key int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.e.Delete(key)
}

func (s *rwEngine) Prepare(attrs ...string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Prepare(attrs...)
}

func (s *rwEngine) Storage() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.Storage()
}

func (s *rwEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	// Join selections crack both inputs; take the write lock up front.
	s.mu.Lock()
	ji, cost := s.e.JoinInput(preds, joinAttr, projs)
	s.mu.Unlock()
	inner := ji.Fetch
	// Post-join fetches are pure reads (base columns or materialized
	// intermediates); a shared lock suffices.
	ji.Fetch = func(attr string, i int) Value {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return inner(attr, i)
	}
	return ji, cost
}
