package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crackstore/internal/store"
)

func buildRel(rng *rand.Rand, n int, attrs []string, domain int64) *store.Relation {
	return store.Build("R", n, attrs, func(attr string, row int) Value {
		return Value(rng.Int63n(domain))
	})
}

// cloneRel deep-copies a relation so each engine owns independent storage.
func cloneRel(rel *store.Relation) *store.Relation {
	out := store.NewRelation(rel.Name, rel.Order...)
	for _, a := range rel.Order {
		src := rel.MustColumn(a).Vals
		dst := out.MustColumn(a)
		dst.Vals = append([]Value(nil), src...)
	}
	return out
}

func canonRows(res Result, projs []string) []string {
	rows := make([]string, res.N)
	for i := 0; i < res.N; i++ {
		row := make([]Value, len(projs))
		for j, attr := range projs {
			row[j] = res.Cols[attr][i]
		}
		rows[i] = fmt.Sprint(row)
	}
	sort.Strings(rows)
	return rows
}

func allKinds() []Kind {
	return []Kind{Scan, SelCrack, Presorted, Sideways, PartialSideways}
}

// TestAllEnginesAgree replays an identical read-only workload on all five
// engines and requires identical result multisets.
func TestAllEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := buildRel(rng, 400, []string{"A", "B", "C", "D"}, 100)
	engines := make([]Engine, 0, 5)
	for _, k := range allKinds() {
		engines = append(engines, New(k, cloneRel(base)))
	}
	for q := 0; q < 30; q++ {
		lo := rng.Int63n(100)
		hi := lo + rng.Int63n(100-lo+1)
		lo2 := rng.Int63n(100)
		query := Query{
			Preds: []AttrPred{
				{Attr: "A", Pred: store.Range(lo, hi)},
				{Attr: "B", Pred: store.Range(lo2, lo2+30)},
			},
			Projs:       []string{"C", "D"},
			Disjunctive: q%5 == 4,
		}
		var ref []string
		for i, e := range engines {
			res, _ := e.Query(query)
			got := canonRows(res, query.Projs)
			if i == 0 {
				ref = got
				continue
			}
			if len(got) != len(ref) {
				t.Fatalf("q%d: %s returned %d rows, scan returned %d", q, e.Name(), len(got), len(ref))
			}
			for j := range ref {
				if got[j] != ref[j] {
					t.Fatalf("q%d: %s row %d = %s, want %s", q, e.Name(), j, got[j], ref[j])
				}
			}
		}
	}
}

// Property: all engines agree under interleaved updates and queries.
func TestQuickEnginesAgreeWithUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := buildRel(rng, 200, []string{"A", "B", "C"}, 50)
		engines := make([]Engine, 0, 5)
		for _, k := range allKinds() {
			engines = append(engines, New(k, cloneRel(base)))
		}
		var live []int
		for i := 0; i < 200; i++ {
			live = append(live, i)
		}
		for step := 0; step < 40; step++ {
			switch rng.Intn(5) {
			case 0:
				vals := []Value{rng.Int63n(50), rng.Int63n(50), rng.Int63n(50)}
				var key int
				for _, e := range engines {
					key = e.Insert(vals...)
				}
				live = append(live, key)
			case 1:
				if len(live) > 0 {
					i := rng.Intn(len(live))
					k := live[i]
					live = append(live[:i], live[i+1:]...)
					for _, e := range engines {
						e.Delete(k)
					}
				}
			default:
				lo := rng.Int63n(50)
				hi := lo + rng.Int63n(50-lo+1)
				query := Query{
					Preds: []AttrPred{{Attr: "A", Pred: store.Range(lo, hi)}},
					Projs: []string{"B", "C"},
				}
				var ref []string
				for i, e := range engines {
					res, _ := e.Query(query)
					got := canonRows(res, query.Projs)
					if i == 0 {
						ref = got
						continue
					}
					if len(got) != len(ref) {
						return false
					}
					for j := range ref {
						if got[j] != ref[j] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPerProj(t *testing.T) {
	res := Result{
		Cols: map[string][]Value{"B": {3, 9, 1}, "C": {7, 2, 8}},
		N:    3,
	}
	m, ok := MaxPerProj(res, []string{"B", "C"})
	if !ok || m["B"] != 9 || m["C"] != 8 {
		t.Fatalf("MaxPerProj = %v, %v", m, ok)
	}
	if _, ok := MaxPerProj(Result{}, []string{"B"}); ok {
		t.Fatal("empty result should report !ok")
	}
}

// TestJoinMaxAllEnginesAgree verifies the q2-style join plan across all
// engine kinds against a naive nested-loop reference.
func TestJoinMaxAllEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	relR := buildRel(rng, 200, []string{"R1", "R2", "R3", "R7"}, 60)
	relS := buildRel(rng, 200, []string{"S1", "S2", "S3", "S7"}, 60)
	lPreds := []AttrPred{{Attr: "R3", Pred: store.Range(10, 40)}}
	rPreds := []AttrPred{{Attr: "S3", Pred: store.Range(20, 50)}}

	// Naive reference.
	want := map[string]Value{}
	found := false
	for i := 0; i < 200; i++ {
		if !lPreds[0].Pred.Matches(relR.MustColumn("R3").Vals[i]) {
			continue
		}
		for j := 0; j < 200; j++ {
			if !rPreds[0].Pred.Matches(relS.MustColumn("S3").Vals[j]) {
				continue
			}
			if relR.MustColumn("R7").Vals[i] != relS.MustColumn("S7").Vals[j] {
				continue
			}
			found = true
			for _, a := range []string{"R1", "R2"} {
				v := relR.MustColumn(a).Vals[i]
				if cur, ok := want["L."+a]; !ok || v > cur {
					want["L."+a] = v
				}
			}
			for _, a := range []string{"S1", "S2"} {
				v := relS.MustColumn(a).Vals[j]
				if cur, ok := want["R."+a]; !ok || v > cur {
					want["R."+a] = v
				}
			}
		}
	}
	if !found {
		t.Skip("degenerate workload: no join matches")
	}

	for _, k := range allKinds() {
		le := New(k, cloneRel(relR))
		re := New(k, cloneRel(relS))
		got, _ := JoinMax(
			JoinSide{E: le, Preds: lPreds, JoinAttr: "R7", Projs: []string{"R1", "R2"}},
			JoinSide{E: re, Preds: rPreds, JoinAttr: "S7", Projs: []string{"S1", "S2"}},
		)
		for key, w := range want {
			if got[key] != w {
				t.Fatalf("%v: JoinMax[%s] = %d, want %d", k, key, got[key], w)
			}
		}
	}
}

func TestPreparedPresortedIsFastOnQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := buildRel(rng, 5000, []string{"A", "B"}, 5000)
	e := New(Presorted, rel)
	prep := e.Prepare("A")
	if prep <= 0 {
		t.Fatal("Prepare should take measurable time")
	}
	_, cost := e.Query(Query{
		Preds: []AttrPred{{Attr: "A", Pred: store.Range(100, 200)}},
		Projs: []string{"B"},
	})
	if cost.Total() > prep*100 {
		t.Fatalf("query cost %v disproportionate to prepare %v", cost.Total(), prep)
	}
}

func TestStorageReporting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rel := buildRel(rng, 100, []string{"A", "B"}, 50)
	for _, k := range allKinds() {
		e := New(k, cloneRel(rel))
		e.Query(Query{
			Preds: []AttrPred{{Attr: "A", Pred: store.Range(10, 30)}},
			Projs: []string{"B"},
		})
		s := e.Storage()
		switch k {
		case Scan:
			if s != 0 {
				t.Errorf("scan storage = %d, want 0", s)
			}
		case PartialSideways:
			if s <= 0 || s > 100 {
				t.Errorf("partial storage = %d, want small positive", s)
			}
		default:
			if s <= 0 {
				t.Errorf("%v storage = %d, want positive", k, s)
			}
		}
	}
}
