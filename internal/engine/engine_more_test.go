package engine

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"crackstore/internal/store"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Scan: "scan", SelCrack: "selcrack", Presorted: "presorted",
		Sideways: "sideways", PartialSideways: "partial", RowStore: "rowstore",
		Kind(42): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestNamesAndNoopPrepare(t *testing.T) {
	rel := buildRel(rand.New(rand.NewSource(1)), 50, []string{"A", "B"}, 10)
	for _, k := range []Kind{Scan, SelCrack, Sideways, PartialSideways} {
		e := New(k, cloneRel(rel))
		if e.Name() == "" {
			t.Errorf("%v: empty name", k)
		}
		if d := e.Prepare("A"); d != 0 {
			t.Errorf("%v: Prepare should be a no-op, took %v", k, d)
		}
	}
}

func TestRowStoreEngineAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := buildRel(rng, 300, []string{"A", "B", "C"}, 50)
	scan := New(Scan, cloneRel(rel))
	rs := New(RowStore, cloneRel(rel))
	rs.Prepare("A")
	for q := 0; q < 20; q++ {
		lo := rng.Int63n(50)
		query := Query{
			Preds: []AttrPred{
				{Attr: "A", Pred: store.Range(lo, lo+15)},
				{Attr: "B", Pred: store.Range(5, 40)},
			},
			Projs:       []string{"C"},
			Disjunctive: q%3 == 2,
		}
		a, _ := scan.Query(query)
		b, _ := rs.Query(query)
		ra, rb := canonRows(a, query.Projs), canonRows(b, query.Projs)
		if len(ra) != len(rb) {
			t.Fatalf("q%d: rowstore %d rows, scan %d", q, len(rb), len(ra))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("q%d row %d: %s vs %s", q, i, rb[i], ra[i])
			}
		}
	}
	if rs.Storage() == 0 {
		t.Error("prepared rowstore should report sorted-copy storage")
	}
}

func TestRowStoreReadOnlyPanics(t *testing.T) {
	rel := buildRel(rand.New(rand.NewSource(3)), 10, []string{"A"}, 10)
	e := New(RowStore, rel)
	for name, f := range map[string]func(){
		"Insert": func() { e.Insert(1) },
		"Delete": func() { e.Delete(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on rowstore should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBudgetedConstructors(t *testing.T) {
	rel := buildRel(rand.New(rand.NewSource(4)), 200, []string{"A", "B", "C"}, 50)
	q := Query{Preds: []AttrPred{{Attr: "A", Pred: store.Range(0, 25)}}, Projs: []string{"B"}}

	se := NewSidewaysWithBudget(cloneRel(rel), 450)
	for i := 0; i < 5; i++ {
		se.Query(q)
	}
	if se.Storage() > 450 {
		t.Errorf("sideways budget exceeded: %d", se.Storage())
	}
	// The budget must exceed one query's working set (a ~104-tuple chunk
	// here); below that the engine documents a soft overrun.
	pe := NewPartialWithBudget(cloneRel(rel), 150)
	for i := 0; i < 8; i++ {
		lo := Value(i * 6)
		pe.Query(Query{
			Preds: []AttrPred{{Attr: "A", Pred: store.Range(lo, lo+25)}},
			Projs: []string{"B", "C"},
		})
	}
	if pe.Storage() > 150 {
		t.Errorf("partial budget exceeded: %d", pe.Storage())
	}
}

func TestJoinCostTotal(t *testing.T) {
	jc := JoinCost{PreSel: 1, Join: 2, PostTR: 3}
	if jc.Total() != 6 {
		t.Fatalf("Total = %d", jc.Total())
	}
}

func TestSynchronizedConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := buildRel(rng, 1000, []string{"A", "B"}, 200)
	e := Synchronized(New(Sideways, cloneRel(rel)))
	if Synchronized(e) != e {
		t.Fatal("double-wrapping should be a no-op")
	}
	if e.Kind() != Sideways {
		t.Fatal("wrapper must preserve kind")
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				switch r.Intn(10) {
				case 0:
					e.Insert(Value(r.Int63n(200)), Value(r.Int63n(200)))
				default:
					lo := r.Int63n(200)
					res, _ := e.Query(Query{
						Preds: []AttrPred{{Attr: "A", Pred: store.Range(lo, lo+20)}},
						Projs: []string{"B"},
					})
					if res.N < 0 {
						errs <- "negative result size"
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// Results must still be exact after the concurrent phase.
	res, _ := e.Query(Query{
		Preds: []AttrPred{{Attr: "A", Pred: store.Range(0, 1000)}},
		Projs: []string{"B"},
	})
	if res.N == 0 {
		t.Fatal("post-concurrency query returned nothing")
	}
}

func TestSynchronizedJoinInput(t *testing.T) {
	rel := buildRel(rand.New(rand.NewSource(6)), 100, []string{"A", "B", "C"}, 30)
	e := Synchronized(New(Scan, cloneRel(rel)))
	ji, _ := e.JoinInput([]AttrPred{{Attr: "A", Pred: store.Range(0, 30)}}, "C", []string{"B"})
	if len(ji.JoinVals) == 0 {
		t.Skip("degenerate: no matches")
	}
	v := ji.Fetch("B", 0)
	if v < 0 || v >= 30 {
		t.Fatalf("fetched value %d out of domain", v)
	}
}

// Property: all five updatable engines agree on disjunctive queries under
// interleaved updates.
func TestQuickEnginesAgreeDisjunctiveWithUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := buildRel(rng, 150, []string{"A", "B", "C"}, 40)
		engines := make([]Engine, 0, 5)
		for _, k := range allKinds() {
			engines = append(engines, New(k, cloneRel(base)))
		}
		var live []int
		for i := 0; i < 150; i++ {
			live = append(live, i)
		}
		for step := 0; step < 25; step++ {
			switch rng.Intn(5) {
			case 0:
				vals := []Value{rng.Int63n(40), rng.Int63n(40), rng.Int63n(40)}
				var key int
				for _, e := range engines {
					key = e.Insert(vals...)
				}
				live = append(live, key)
			case 1:
				if len(live) > 0 {
					i := rng.Intn(len(live))
					k := live[i]
					live = append(live[:i], live[i+1:]...)
					for _, e := range engines {
						e.Delete(k)
					}
				}
			default:
				lo1, lo2 := rng.Int63n(40), rng.Int63n(40)
				query := Query{
					Preds: []AttrPred{
						{Attr: "A", Pred: store.Range(lo1, lo1+8)},
						{Attr: "B", Pred: store.Range(lo2, lo2+8)},
					},
					Projs:       []string{"C"},
					Disjunctive: true,
				}
				var ref []string
				for i, e := range engines {
					res, _ := e.Query(query)
					got := canonRows(res, query.Projs)
					if i == 0 {
						ref = got
						continue
					}
					if len(got) != len(ref) {
						return false
					}
					for j := range ref {
						if got[j] != ref[j] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
