package engine

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"crackstore/internal/store"
)

// TestSnapshotMatchesSequentialReplay runs the banded concurrency property
// test (see concurrent_test.go) against the Snapshot wrapper: every
// goroutine's concurrent answers must match a sequential replay of its own
// operations. Run with -race.
func TestSnapshotMatchesSequentialReplay(t *testing.T) {
	const seed = 99
	base := buildBandedRel(seed)
	shared := Snapshot(New(SelCrack, cloneRel(base)))
	if _, ok := shared.(*snapEngine); !ok {
		t.Fatalf("Snapshot(SelCrack) built %T, want *snapEngine", shared)
	}

	ops := make([][]concOp, nGoroutines)
	for g := range ops {
		ops[g] = bandOps(g, seed+7)
	}

	got := make([][][]Value, nGoroutines)
	var wg sync.WaitGroup
	for g := 0; g < nGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = runOps(shared, g, ops[g])
		}(g)
	}
	wg.Wait()

	for g := 0; g < nGoroutines; g++ {
		want := runOps(New(SelCrack, cloneRel(base)), g, ops[g])
		if len(want) != len(got[g]) {
			t.Fatalf("goroutine %d: %d results, want %d", g, len(got[g]), len(want))
		}
		for qi := range want {
			if !valsEqual(want[qi], got[g][qi]) {
				t.Fatalf("goroutine %d query %d: snapshot result %v != sequential replay %v",
					g, qi, got[g][qi], want[qi])
			}
		}
	}
}

// TestSnapshotReadersNeverSeeReclaimedState is the snapshot-consistency
// property test of the epoch protocol: N lock-free readers over static value
// bands + one writer cracking, inserting, and deleting continuously in its
// own band. Reader answers are precomputed (their bands never change), the
// cracker columns run in Poison mode — reclaimed piece memory is overwritten,
// so a piece freed while a live reader still traverses it corrupts that
// reader's answer — and the version-lifecycle counters must show that
// publication AND reclamation actually happened. Run with -race.
func TestSnapshotReadersNeverSeeReclaimedState(t *testing.T) {
	const seed = 31
	base := buildBandedRel(seed)
	shared := Snapshot(New(SelCrack, cloneRel(base)))
	se := shared.(*snapEngine)

	// Build the reader query set over the static bands 1..n-1 and
	// precompute every expected answer on a sequential clone.
	rng := rand.New(rand.NewSource(seed))
	type check struct {
		q    Query
		want []Value
	}
	ref := New(SelCrack, cloneRel(base))
	var checks []check
	for g := 1; g < nGoroutines; g++ {
		lo := int64(g * bandWidth)
		for i := 0; i < 8; i++ {
			qlo := lo + rng.Int63n(bandWidth-300)
			q := Query{
				Preds: []AttrPred{{Attr: "A", Pred: store.Range(qlo, qlo+1+rng.Int63n(250))}},
				Projs: []string{"B"},
			}
			res, _ := ref.Query(q)
			want := append([]Value(nil), res.Cols["B"]...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			checks = append(checks, check{q: q, want: want})
		}
	}

	// Create the cracker columns, then poison reclaimed memory so a
	// premature reclaim is observable instead of silent.
	shared.Query(Query{Preds: []AttrPred{{Attr: "A", Pred: store.Range(0, 1)}}, Projs: []string{"B"}})
	for _, c := range *se.cols.Load() {
		c.Poison = true
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				c := checks[rng.Intn(len(checks))]
				res, _ := shared.Query(c.q)
				got := append([]Value(nil), res.Cols["B"]...)
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if !valsEqual(got, c.want) {
					t.Errorf("reader answer diverged (reclaimed or torn state?): got %v, want %v", got, c.want)
					return
				}
			}
		}(int64(1000 + r))
	}

	// The writer churns band 0: every query cracks fresh ranges, inserts
	// and deletes force pending-update merges — each publish retires state
	// the readers may still hold.
	writerRng := rand.New(rand.NewSource(77))
	keys := make([]int, 0, bandRows)
	for i := 0; i < bandRows; i++ {
		keys = append(keys, i)
	}
	for i := 0; i < 400; i++ {
		switch writerRng.Intn(5) {
		case 0:
			keys = append(keys, shared.Insert(writerRng.Int63n(bandWidth), writerRng.Int63n(bandWidth)))
		case 1:
			if len(keys) > 0 {
				k := writerRng.Intn(len(keys))
				shared.Delete(keys[k])
				keys = append(keys[:k], keys[k+1:]...)
			}
		default:
			qlo := writerRng.Int63n(bandWidth - 200)
			shared.Query(Query{
				Preds: []AttrPred{{Attr: "A", Pred: store.Range(qlo, qlo+1+writerRng.Int63n(180))}},
				Projs: []string{"B"},
			})
		}
	}
	stop.Store(true)
	wg.Wait()

	st := se.SnapshotStats()
	if st.Published == 0 {
		t.Fatal("writer published no versions: the test exercised nothing")
	}
	if st.Reclaimed == 0 {
		t.Fatal("nothing was reclaimed: the epoch protocol was not exercised")
	}
	if st.Readers != 0 {
		t.Fatalf("leaked epoch pins: %d readers still registered", st.Readers)
	}
}

// TestSnapshotFallback pins the wrapper contract: SelCrack converts to the
// multi-version engine, already-shared engines pass through unchanged, and
// unsupported kinds degrade to Concurrent.
func TestSnapshotFallback(t *testing.T) {
	rel := buildBandedRel(3)
	if e := Snapshot(New(SelCrack, cloneRel(rel))); e.Name() != "selection cracking (snapshot)" {
		t.Fatalf("SelCrack snapshot engine not built: %s", e.Name())
	}
	if e := Snapshot(New(Scan, cloneRel(rel))); !IsShared(e) {
		t.Fatalf("Scan fallback is not shared-safe: %T", e)
	} else if _, ok := e.(*rwEngine); !ok {
		t.Fatalf("Scan fallback should be Concurrent, got %T", e)
	}
	shared := Concurrent(New(SelCrack, cloneRel(rel)))
	if Snapshot(shared) != shared {
		t.Fatal("Snapshot re-wrapped an already-shared engine")
	}
	snap := Snapshot(New(SelCrack, cloneRel(rel)))
	if Snapshot(snap) != snap {
		t.Fatal("Snapshot is not idempotent")
	}
}

// TestSnapshotConcStats checks the observability contract: the snapshot
// wrapper reports published/reclaimed versions and zero reader-wait, the
// Concurrent wrapper reports reader-wait fields.
func TestSnapshotConcStats(t *testing.T) {
	rel := buildBandedRel(5)
	e := Snapshot(New(SelCrack, cloneRel(rel)))
	for i := int64(0); i < 5; i++ {
		e.Query(Query{
			Preds: []AttrPred{{Attr: "A", Pred: store.Range(i*100, i*100+50)}},
			Projs: []string{"B"},
		})
	}
	cs, ok := ConcStatsOf(e)
	if !ok {
		t.Fatal("snapshot engine does not report ConcStats")
	}
	if cs.Snapshots == 0 {
		t.Fatal("no snapshots counted after cracking queries")
	}
	if cs.ReaderWait != 0 || cs.ReaderWaits != 0 {
		t.Fatal("lock-free readers reported blocked time")
	}
	if _, ok := ConcStatsOf(Concurrent(New(Scan, cloneRel(rel)))); !ok {
		t.Fatal("Concurrent wrapper does not report ConcStats")
	}
}

// TestSnapshotJoinInput checks the writer-path join selection and the
// lock-free post-join fetcher against the plain engine.
func TestSnapshotJoinInput(t *testing.T) {
	rel := buildBandedRel(9)
	snap := Snapshot(New(SelCrack, cloneRel(rel)))
	plain := New(SelCrack, cloneRel(rel))
	preds := []AttrPred{{Attr: "A", Pred: store.Range(100, 700)}}
	ji, _ := snap.JoinInput(preds, "B", []string{"A"})
	want, _ := plain.JoinInput(preds, "B", []string{"A"})
	if len(ji.JoinVals) != len(want.JoinVals) {
		t.Fatalf("join column length %d, want %d", len(ji.JoinVals), len(want.JoinVals))
	}
	// Concurrent appends must not disturb the captured fetcher.
	snap.Insert(Value(150), Value(150))
	got := make([]Value, len(ji.JoinVals))
	exp := make([]Value, len(want.JoinVals))
	for i := range ji.JoinVals {
		got[i] = ji.Fetch("A", i)
		exp[i] = want.Fetch("A", i)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(exp, func(i, j int) bool { return exp[i] < exp[j] })
	if !valsEqual(got, exp) {
		t.Fatal("post-join fetches diverged from the plain engine")
	}
}
