package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"crackstore/internal/faultnet"
	"crackstore/internal/store"
	"crackstore/internal/wal"
)

const durSentinelBase = store.Value(1) << 40

func durSeedRel() *store.Relation {
	return store.Build("R", 60, []string{"A", "B", "C"}, func(attr string, row int) store.Value {
		return store.Value(store.Mix64(uint64(row)*31+uint64(len(attr)))%999) + 1
	})
}

// durBattery is the answer battery used to compare two stores: range
// counts, multi-attribute conjunctions and disjunctions, and a point query
// per sentinel value. Answer-equivalence over it is the recovery contract.
func durBattery(sentinels []store.Value) []Query {
	all := []string{"A", "B", "C"}
	qs := []Query{
		{Preds: []AttrPred{{Attr: "A", Pred: store.Range(-(1 << 60), 1<<60)}}, Projs: all},
		{Preds: []AttrPred{{Attr: "A", Pred: store.Range(0, 500)}}, Projs: []string{"A", "B"}},
		{Preds: []AttrPred{{Attr: "A", Pred: store.Range(250, 800)}}, Projs: []string{"C"}},
		{Preds: []AttrPred{{Attr: "B", Pred: store.Range(100, 400)}}, Projs: []string{"A"}},
		{Preds: []AttrPred{
			{Attr: "A", Pred: store.Range(0, 300)},
			{Attr: "B", Pred: store.Range(0, 600)},
		}, Projs: []string{"A", "C"}},
		{Preds: []AttrPred{
			{Attr: "A", Pred: store.Range(0, 200)},
			{Attr: "B", Pred: store.Range(500, 900)},
		}, Projs: []string{"A"}, Disjunctive: true},
	}
	for _, s := range sentinels {
		qs = append(qs, Query{Preds: []AttrPred{{Attr: "A", Pred: store.Point(s)}}, Projs: all})
	}
	return qs
}

// resultTuples renders a result as a sorted multiset of tuples, so stores
// with different physical layouts (and thus different result orders)
// compare equal exactly when they agree on content.
func resultTuples(res Result, projs []string) []string {
	tuples := make([]string, res.N)
	for i := 0; i < res.N; i++ {
		row := ""
		for _, attr := range projs {
			row += fmt.Sprintf("%d|", res.Cols[attr][i])
		}
		tuples[i] = row
	}
	sort.Strings(tuples)
	return tuples
}

func assertAnswerEquivalent(t *testing.T, tag string, got, want Engine, qs []Query) {
	t.Helper()
	for qi, q := range qs {
		rg, _ := got.Query(q)
		rw, _ := want.Query(q)
		if rg.N != rw.N {
			t.Fatalf("%s: query %d: N=%d want %d", tag, qi, rg.N, rw.N)
		}
		tg, tw := resultTuples(rg, q.Projs), resultTuples(rw, q.Projs)
		for i := range tg {
			if tg[i] != tw[i] {
				t.Fatalf("%s: query %d: tuple %d: %q vs %q", tag, qi, i, tg[i], tw[i])
			}
		}
	}
}

// durOp is one scripted workload operation.
type durOp struct {
	kind byte // 'i' insert, 'd' delete, 'q' query
	vals []store.Value
	key  int
	q    Query
}

// durWorkload is the deterministic insert/delete/crack mix the crash tests
// run. Sentinel A-values are unique and far outside the seed domain so
// point queries can assert exactly-once survival.
func durWorkload() (ops []durOp, sentinels []store.Value) {
	qa := func(lo, hi store.Value) durOp {
		return durOp{kind: 'q', q: Query{Preds: []AttrPred{{Attr: "A", Pred: store.Range(lo, hi)}}, Projs: []string{"A", "B"}}}
	}
	qb := func(lo, hi store.Value) durOp {
		return durOp{kind: 'q', q: Query{Preds: []AttrPred{{Attr: "B", Pred: store.Range(lo, hi)}}, Projs: []string{"C"}}}
	}
	ins := func(i int) durOp {
		s := durSentinelBase + store.Value(i)
		sentinels = append(sentinels, s)
		return durOp{kind: 'i', vals: []store.Value{s, store.Value(100 + i), store.Value(200 + i)}}
	}
	ops = []durOp{
		qa(100, 300),
		ins(0), // key 60
		qa(200, 600),
		ins(1),
		durOp{kind: 'd', key: 5},
		qb(100, 500),
		ins(2),
		durOp{kind: 'd', key: 60}, // kills sentinel 0
		durOp{kind: 'q', q: Query{Preds: []AttrPred{
			{Attr: "A", Pred: store.Range(0, 150)},
			{Attr: "B", Pred: store.Range(600, 999)},
		}, Projs: []string{"A"}, Disjunctive: true}},
		ins(3),
		qa(50, 120),
		ins(4),
		durOp{kind: 'd', key: 17},
		qb(700, 950),
		ins(5),
		qa(400, 950),
		ins(6),
		ins(7),
	}
	return ops, sentinels
}

func applyOp(e Engine, op durOp) int {
	switch op.kind {
	case 'i':
		return e.Insert(op.vals...)
	case 'd':
		e.Delete(op.key)
	case 'q':
		e.Query(op.q)
	}
	return 0
}

func copyDurDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDurableFreshOpenBasics(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(SelCrack, durSeedRel(), dir, DurableOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	st, ok := DurStatsOf(e)
	if !ok {
		t.Fatal("durable engine has no DurStats")
	}
	if st.Recovered || st.CleanShutdown {
		t.Fatalf("fresh open claims recovery: %+v", st)
	}
	if key := e.Insert(durSentinelBase, 1, 2); key != 60 {
		t.Fatalf("insert key=%d want 60", key)
	}
	if key := e.Insert(1, 2); key != -1 {
		t.Fatal("arity-mismatched insert acked")
	}
	res, _ := e.Query(Query{Preds: []AttrPred{{Attr: "A", Pred: store.Point(durSentinelBase)}}, Projs: []string{"B"}})
	if res.N != 1 {
		t.Fatalf("sentinel query N=%d", res.N)
	}
	if !IsShared(e) {
		t.Fatal("durable engine must carry the shared marker")
	}
	if Concurrent(e) != e {
		t.Fatal("Concurrent double-wrapped a durable engine")
	}
	if ok, err := CloseDurable(e); !ok || err != nil {
		t.Fatalf("close: ok=%v err=%v", ok, err)
	}
}

// TestDurableCrashMatrix is the crash-point matrix property test: run a
// scripted insert/delete/crack workload with per-record fsync, then for
// every byte offset of the resulting WAL simulate a process kill at that
// point (checkpoint + truncated segment in a fresh directory), recover,
// and require the recovered store to be answer-equivalent to a sequential
// replay of exactly the records whose frames are complete in the image —
// zero acked-write loss at the full image, no phantoms anywhere.
func TestDurableCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{Sync: wal.SyncAlways, CheckpointBytes: -1}
	e, err := OpenDurable(SelCrack, durSeedRel(), dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ops, sentinels := durWorkload()
	for i, op := range ops {
		if key := applyOp(e, op); op.kind == 'i' && key < 0 {
			t.Fatalf("op %d: insert not acked", i)
		}
	}
	// No Close: the crash happens with the WAL as the only record of the
	// post-checkpoint writes. SyncAlways means every acked write is inside
	// the synced image read back here.
	img, err := os.ReadFile(wal.SegmentPath(dir, 0))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	cpBytes, err := os.ReadFile(filepath.Join(dir, "checkpoint"))
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	root := t.TempDir()
	qs := durBattery(sentinels)

	step := 1
	if testing.Short() {
		step = 13
	}
	for k := 0; k <= len(img); k += step {
		crashDir := filepath.Join(root, fmt.Sprintf("k%06d", k))
		if err := os.MkdirAll(crashDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, "checkpoint"), cpBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(wal.SegmentPath(crashDir, 0), img[:k], 0o644); err != nil {
			t.Fatal(err)
		}

		rec, err := OpenDurable(SelCrack, nil, crashDir, opts)
		if err != nil {
			t.Fatalf("k=%d: recovery failed: %v", k, err)
		}
		st, _ := DurStatsOf(rec)
		if !st.Recovered {
			t.Fatalf("k=%d: not marked recovered", k)
		}
		if st.CleanShutdown {
			t.Fatalf("k=%d: crash image marked clean", k)
		}

		// The never-crashed twin replays exactly the complete records.
		twin := New(SelCrack, durSeedRel())
		replayable := 0
		valid, err := wal.Scan(img[:k], func(_ int64, r wal.Record) error {
			switch r.Type {
			case wal.RecInsert:
				for i := 0; i+r.Width <= len(r.Vals); i += r.Width {
					twin.Insert(r.Vals[i : i+r.Width]...)
				}
				replayable++
			case wal.RecDelete:
				for _, key := range r.Keys {
					twin.Delete(key)
				}
				replayable++
			case wal.RecCrack:
				twin.Query(tapeQuery(r))
				replayable++
			case wal.RecCheckpoint:
			default:
				t.Fatalf("k=%d: unexpected record type %v", k, r.Type)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("k=%d: scan: %v", k, err)
		}
		if st.ReplayedRecords != replayable {
			t.Fatalf("k=%d: replayed %d records, image has %d", k, st.ReplayedRecords, replayable)
		}
		if st.TruncatedBytes != int64(k)-valid {
			t.Fatalf("k=%d: truncated %d, want %d", k, st.TruncatedBytes, int64(k)-valid)
		}
		assertAnswerEquivalent(t, fmt.Sprintf("k=%d", k), rec, twin, qs)
		CloseDurable(rec)
		os.RemoveAll(crashDir)
	}
}

func TestDurableWarmRestart(t *testing.T) {
	for _, kind := range []Kind{SelCrack, Sideways, PartialSideways} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			e, err := OpenDurable(kind, durSeedRel(), dir, DurableOptions{Sync: wal.SyncGroup})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			ops, sentinels := durWorkload()
			var cracked []Query
			for _, op := range ops {
				applyOp(e, op)
				if op.kind == 'q' {
					cracked = append(cracked, op.q)
				}
			}
			if ok, err := CloseDurable(e); !ok || err != nil {
				t.Fatalf("close: ok=%v err=%v", ok, err)
			}

			re, err := OpenDurable(kind, nil, dir, DurableOptions{Sync: wal.SyncGroup})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			st, _ := DurStatsOf(re)
			if !st.Recovered || !st.CleanShutdown {
				t.Fatalf("clean restart not detected: %+v", st)
			}
			if st.ReplayedRecords != 0 {
				t.Fatalf("clean restart replayed %d records", st.ReplayedRecords)
			}
			if st.TapeLen == 0 {
				t.Fatal("tape empty after cracking workload")
			}
			// Warmth: the queries that cracked the dead process's layout
			// must find the recovered layout already cracked — no
			// reorganization, which is exactly what Probe reports. Only
			// single-predicate queries guarantee this: multi-predicate
			// plans pick their head from live selectivity estimates, so
			// their probe outcome varies with physical state even on a
			// never-crashed store.
			warm := 0
			for i, q := range cracked {
				if len(q.Preds) != 1 {
					continue
				}
				warm++
				if re.Probe(q) {
					t.Fatalf("recovered store cold for replayed query %d: %+v", i, q)
				}
			}
			if warm == 0 {
				t.Fatal("workload had no single-predicate queries to check warmth with")
			}
			// And the recovered store answers like a never-crashed twin.
			twin := New(kind, durSeedRel())
			for _, op := range ops {
				applyOp(twin, op)
			}
			assertAnswerEquivalent(t, "warm", re, twin, durBattery(sentinels))
			CloseDurable(re)
		})
	}
}

func TestDurableRecoverMissingSegment(t *testing.T) {
	// Crash window in the fresh-open sequence: checkpoint written, segment
	// never created. Recovery must treat it as an empty segment.
	dir := t.TempDir()
	e, err := OpenDurable(SelCrack, durSeedRel(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := CloseDurable(e); !ok || err != nil {
		t.Fatal(err)
	}
	st, _ := os.ReadDir(dir)
	for _, f := range st {
		if f.Name() != "checkpoint" {
			os.Remove(filepath.Join(dir, f.Name()))
		}
	}
	re, err := OpenDurable(SelCrack, nil, dir, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery without segment: %v", err)
	}
	ds, _ := DurStatsOf(re)
	if !ds.Recovered || ds.CleanShutdown || ds.ReplayedRecords != 0 {
		t.Fatalf("unexpected stats: %+v", ds)
	}
	res, _ := re.Query(Query{Preds: []AttrPred{{Attr: "A", Pred: store.Range(-(1 << 60), 1<<60)}}, Projs: []string{"A"}})
	if res.N != 60 {
		t.Fatalf("N=%d want 60", res.N)
	}
	CloseDurable(re)
}

// TestDurableCheckpointRotation forces frequent WAL rotation and verifies
// (a) every mid-run directory snapshot — a consistent crash image taken
// between operations — recovers to exactly the writes acked before it, and
// (b) the final state matches a never-crashed twin.
func TestDurableCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{Sync: wal.SyncAlways, CheckpointBytes: 512}
	e, err := OpenDurable(SelCrack, durSeedRel(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	twin := New(SelCrack, durSeedRel())
	type snap struct {
		dir   string
		acked int // sentinels acked before the copy
	}
	var snaps []snap
	var sentinels []store.Value
	for i := 0; i < 120; i++ {
		s := durSentinelBase + store.Value(i)
		sentinels = append(sentinels, s)
		vals := []store.Value{s, store.Value(i % 7), store.Value(i % 11)}
		if key := e.Insert(vals...); key < 0 {
			t.Fatalf("insert %d refused", i)
		}
		twin.Insert(vals...)
		if i%17 == 3 {
			q := Query{Preds: []AttrPred{{Attr: "A", Pred: store.Range(store.Value(i), store.Value(i*5))}}, Projs: []string{"B"}}
			e.Query(q)
			twin.Query(q)
		}
		if i%25 == 24 {
			sd := filepath.Join(root, fmt.Sprintf("snap%03d", i))
			copyDurDir(t, dir, sd)
			snaps = append(snaps, snap{dir: sd, acked: i + 1})
		}
	}
	st, _ := DurStatsOf(e)
	if st.Checkpoints == 0 {
		t.Fatalf("no rotation at CheckpointBytes=512: %+v", st)
	}
	if st.WalBytes >= 10*512 {
		t.Fatalf("segment grew unbounded: %d bytes", st.WalBytes)
	}
	assertAnswerEquivalent(t, "final", e, twin, durBattery(sentinels))
	if ok, err := CloseDurable(e); !ok || err != nil {
		t.Fatal(err)
	}

	for _, sn := range snaps {
		rec, err := OpenDurable(SelCrack, nil, sn.dir, opts)
		if err != nil {
			t.Fatalf("%s: recovery: %v", sn.dir, err)
		}
		for i, s := range sentinels {
			res, _ := rec.Query(Query{Preds: []AttrPred{{Attr: "A", Pred: store.Point(s)}}, Projs: []string{"A"}})
			want := 0
			if i < sn.acked {
				want = 1
			}
			if res.N != want {
				t.Fatalf("%s: sentinel %d: N=%d want %d", sn.dir, i, res.N, want)
			}
		}
		CloseDurable(rec)
	}
}

// TestDurableConcurrentAckedWritesSurviveCrash hammers a durable engine
// from concurrent writers and readers (group-commit path), then recovers
// from a copy of the directory as if the process had been killed, and
// requires every acked insert to be present exactly once. Runs under
// -race in CI (and in the multicore stress job via the Concurrent name).
func TestDurableConcurrentAckedWritesSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(SelCrack, durSeedRel(), dir, DurableOptions{Sync: wal.SyncGroup, CheckpointBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 30
	var wg sync.WaitGroup
	acked := make([][]store.Value, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s := durSentinelBase + store.Value(w*perWriter+i)
				if key := e.Insert(s, store.Value(w), store.Value(i)); key >= 0 {
					acked[w] = append(acked[w], s)
				}
				if i%2 == 0 {
					e.Delete(5000 + w) // no-op keys: exercise delete logging
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				e.Query(Query{Preds: []AttrPred{{Attr: "A", Pred: store.Range(store.Value(r*10), store.Value(500+r*100))}}, Projs: []string{"B"}})
			}
		}(r)
	}
	wg.Wait()
	st, _ := DurStatsOf(e)
	if st.WriteErrs != 0 {
		t.Fatalf("healthy storage produced %d write errors", st.WriteErrs)
	}

	// Simulated kill: copy the directory while the engine still holds it
	// (every acked write is already fsynced under SyncGroup), recover the
	// copy.
	crashDir := filepath.Join(t.TempDir(), "crash")
	copyDurDir(t, dir, crashDir)
	rec, err := OpenDurable(SelCrack, nil, crashDir, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	rst, _ := DurStatsOf(rec)
	if !rst.Recovered || rst.CleanShutdown {
		t.Fatalf("crash image stats: %+v", rst)
	}
	total := 0
	for w := range acked {
		total += len(acked[w])
		for _, s := range acked[w] {
			res, _ := rec.Query(Query{Preds: []AttrPred{{Attr: "A", Pred: store.Point(s)}}, Projs: []string{"A"}})
			if res.N != 1 {
				t.Fatalf("acked sentinel %d present %d times after recovery", s, res.N)
			}
		}
	}
	if total != writers*perWriter {
		t.Fatalf("acked %d of %d healthy inserts", total, writers*perWriter)
	}
	CloseDurable(rec)
	CloseDurable(e)
}

// TestDurableFaultInjection drives the durable engine over a fault-
// injecting file (torn writes, short writes, fsync errors) and pins the
// ack contract: writes errored by injected faults return -1 and poison the
// store, recovery from the damaged image succeeds by truncating the torn
// tail, every acked write survives exactly once, and nothing that was
// never submitted appears.
func TestDurableFaultInjection(t *testing.T) {
	var e Engine
	var dir string
	opts := func(seed int64) DurableOptions {
		return DurableOptions{
			Sync:            wal.SyncAlways,
			CheckpointBytes: -1,
			Wrap: func(f wal.File) wal.File {
				return faultnet.WrapFile(f, faultnet.MixFS(0.04, seed))
			},
		}
	}
	// The injector can kill the open itself (the segment-marker append);
	// scan seeds until an open survives, keeping the run deterministic.
	seed := int64(0)
	for ; seed < 50; seed++ {
		dir = t.TempDir()
		var err error
		e, err = OpenDurable(SelCrack, durSeedRel(), dir, opts(seed))
		if err == nil {
			break
		}
	}
	if e == nil {
		t.Fatal("no seed produced a successful open")
	}

	var acked []store.Value
	refused := 0
	for i := 0; i < 300; i++ {
		s := durSentinelBase + store.Value(i)
		if key := e.Insert(s, store.Value(i%9), store.Value(i%13)); key >= 0 {
			acked = append(acked, s)
		} else {
			refused++
		}
		if i%19 == 4 {
			e.Query(Query{Preds: []AttrPred{{Attr: "A", Pred: store.Range(store.Value(i), store.Value(i+400))}}, Projs: []string{"C"}})
		}
	}
	st, _ := DurStatsOf(e)
	if refused == 0 || st.WriteErrs == 0 {
		t.Fatalf("fault mix injected nothing over 300 writes (seed %d)", seed)
	}
	if len(acked) == 0 {
		t.Fatalf("every write failed (seed %d): first fault should not precede all acks", seed)
	}
	t.Logf("seed=%d acked=%d refused=%d", seed, len(acked), refused)

	// Recover the damaged image (no clean shutdown, torn tail likely).
	crashDir := filepath.Join(t.TempDir(), "crash")
	copyDurDir(t, dir, crashDir)
	rec, err := OpenDurable(SelCrack, nil, crashDir, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery over damaged image: %v", err)
	}
	rst, _ := DurStatsOf(rec)
	if !rst.Recovered || rst.CleanShutdown {
		t.Fatalf("damaged image stats: %+v", rst)
	}
	for _, s := range acked {
		res, _ := rec.Query(Query{Preds: []AttrPred{{Attr: "A", Pred: store.Point(s)}}, Projs: []string{"A"}})
		if res.N != 1 {
			t.Fatalf("acked sentinel %d present %d times (seed %d)", s, res.N, seed)
		}
	}
	// No phantoms: every surviving sentinel was actually submitted.
	res, _ := rec.Query(Query{Preds: []AttrPred{{Attr: "A", Pred: store.Range(durSentinelBase, durSentinelBase+300)}}, Projs: []string{"A"}})
	if res.N < len(acked) || res.N > 300 {
		t.Fatalf("recovered %d sentinels, acked %d, submitted 300", res.N, len(acked))
	}
	CloseDurable(rec)
}
