package engine

import (
	"crackstore/internal/crack"
	"crackstore/internal/obs"
)

// Observability bridge: the engine layer's pre-existing stats structs
// (kernel counters, snapshot lifecycle, reader contention, durability)
// registered into an obs.Registry as scrape-time func-backed families.
// Nothing here touches a query path — every closure runs only when
// /metrics is scraped.

// KernelReport aggregates the crack-kernel counters and cracker-index
// sizes across every cracked structure an engine owns: cracker columns
// (selection cracking), maps (sideways), chunk maps and chunks
// (partial), or piece-versioned snapshot columns.
type KernelReport struct {
	InTwo   uint64 // crack-in-two partition passes
	InThree uint64 // crack-in-three partitions
	Visited uint64 // tuples classified
	Moved   uint64 // tuples stored to a new position
	Aux     uint64 // auxiliary policy pivots
	Pieces  uint64 // pieces across all cracker indexes
	Columns uint64 // cracked structures counted into Pieces
}

// KernelObservable is implemented by engines (and wrappers) that can
// report kernel work. Wrappers take their own locks, so the exported
// entry point KernelReportOf is safe on any shared engine; the raw
// per-engine implementations assume the caller serializes, exactly like
// Query.
type KernelObservable interface {
	KernelReport() (KernelReport, bool)
}

// KernelReportOf reports the aggregated kernel counters of e, or ok
// false when the engine's physical design does not crack (scan,
// presorted, rowstore).
func KernelReportOf(e Engine) (KernelReport, bool) {
	if o, ok := e.(KernelObservable); ok {
		return o.KernelReport()
	}
	return KernelReport{}, false
}

// SnapObservable is implemented by engines serving from piece-versioned
// snapshots (and wrappers over them).
type SnapObservable interface {
	SnapshotStats() SnapshotStats
}

// SnapshotStatsOf returns the snapshot lifecycle counters of e, or ok
// false when e does not serve from snapshots.
func SnapshotStatsOf(e Engine) (SnapshotStats, bool) {
	if o, ok := e.(SnapObservable); ok {
		return o.SnapshotStats(), true
	}
	return SnapshotStats{}, false
}

// KernelReport implements KernelObservable for the selection-cracking
// engine. Caller serializes (the shared wrappers do).
func (e *selCrackEngine) KernelReport() (KernelReport, bool) {
	var r KernelReport
	for _, c := range e.cols {
		addKernel(&r, c.P.Stats)
		r.Pieces += uint64(c.P.Idx.Pieces())
		r.Columns++
	}
	return r, true
}

// KernelReport implements KernelObservable for the sideways engine.
// Caller serializes.
func (e *sidewaysEngine) KernelReport() (KernelReport, bool) {
	ks, pieces, cols := e.st.Kernel()
	var r KernelReport
	addKernel(&r, ks)
	r.Pieces, r.Columns = uint64(pieces), uint64(cols)
	return r, true
}

// KernelReport implements KernelObservable for the partial engine.
// Caller serializes.
func (e *partialEngine) KernelReport() (KernelReport, bool) {
	ks, pieces, cols := e.st.Kernel()
	var r KernelReport
	addKernel(&r, ks)
	r.Pieces, r.Columns = uint64(pieces), uint64(cols)
	return r, true
}

// KernelReport implements KernelObservable for the snapshot engine:
// per-column counters are atomics and the cols map is copy-on-write, so
// no lock is needed.
func (e *snapEngine) KernelReport() (KernelReport, bool) {
	var r KernelReport
	for _, c := range *e.cols.Load() {
		addKernel(&r, c.KernelStats())
		r.Pieces += uint64(c.Pieces())
		r.Columns++
	}
	return r, true
}

// KernelReport forwards under the read lock. Deliberately bypasses
// rlock(): a metrics scrape must not count as reader contention.
func (s *rwEngine) KernelReport() (KernelReport, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return KernelReportOf(s.e)
}

// KernelReport forwards under the mutex.
func (s *syncEngine) KernelReport() (KernelReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return KernelReportOf(s.e)
}

// KernelReport forwards under the read lock (writers hold it
// exclusively while logging and applying).
func (d *durEngine) KernelReport() (KernelReport, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return KernelReportOf(d.e)
}

func addKernel(r *KernelReport, ks crack.KernelStats) {
	r.InTwo += uint64(ks.InTwo)
	r.InThree += uint64(ks.InThree)
	r.Visited += uint64(ks.Visited)
	r.Moved += uint64(ks.Moved)
	r.Aux += uint64(ks.Aux)
}

// RegisterMetrics registers e's observable stats into r as func-backed
// families, read only at scrape time: kernel work and index shape
// (crack_kernel_*, crack_index_*), reader contention and snapshot
// lifecycle (crack_engine_*, crack_snapshot_*), and durability
// (crack_wal_*, including a live fsync-latency histogram attached to the
// engine's WAL). Families whose layer the engine does not have are not
// registered, so their absence on /metrics is meaningful. Safe to call
// with a nil registry (no-op). Call once per registry — duplicate
// registration panics.
func RegisterMetrics(r *obs.Registry, e Engine) {
	if r == nil {
		return
	}
	if _, ok := KernelReportOf(e); ok {
		kr := func() KernelReport { k, _ := KernelReportOf(e); return k }
		r.CounterFunc("crack_kernel_crack_in_two_total", "crack-in-two partition passes", func() uint64 { return kr().InTwo })
		r.CounterFunc("crack_kernel_crack_in_three_total", "crack-in-three partitions (both bounds in one pass)", func() uint64 { return kr().InThree })
		r.CounterFunc("crack_kernel_tuples_visited_total", "tuples classified by partition passes", func() uint64 { return kr().Visited })
		r.CounterFunc("crack_kernel_tuples_moved_total", "tuples stored to a new position by partition passes", func() uint64 { return kr().Moved })
		r.CounterFunc("crack_kernel_aux_pivots_total", "auxiliary policy pivots introduced", func() uint64 { return kr().Aux })
		r.GaugeFunc("crack_index_pieces", "pieces across all cracker indexes (layout refinement)", func() float64 { return float64(kr().Pieces) })
		r.GaugeFunc("crack_index_columns", "cracked structures (columns, maps, chunks)", func() float64 { return float64(kr().Columns) })
	}
	if _, ok := ConcStatsOf(e); ok {
		cs := func() ConcStats { c, _ := ConcStatsOf(e); return c }
		r.GaugeFunc("crack_engine_reader_wait_seconds_total", "cumulative time readers blocked behind writers (zero for snapshot reads)", func() float64 { return cs().ReaderWait.Seconds() })
		r.CounterFunc("crack_engine_reader_waits_total", "blocked read acquisitions", func() uint64 { return uint64(cs().ReaderWaits) })
		r.CounterFunc("crack_snapshot_published_total", "immutable versions published by writers", func() uint64 { return uint64(cs().Snapshots) })
		r.CounterFunc("crack_snapshot_reclaimed_total", "retired versions reclaimed after readers exited", func() uint64 { return uint64(cs().Reclaimed) })
	}
	if _, ok := SnapshotStatsOf(e); ok {
		ss := func() SnapshotStats { s, _ := SnapshotStatsOf(e); return s }
		r.GaugeFunc("crack_snapshot_limbo", "retired versions held back by live readers", func() float64 { return float64(ss().Limbo) })
		r.GaugeFunc("crack_snapshot_readers", "currently pinned snapshot readers", func() float64 { return float64(ss().Readers) })
	}
	if _, ok := DurStatsOf(e); ok {
		ds := func() DurStats { d, _ := DurStatsOf(e); return d }
		r.CounterFunc("crack_wal_appends_total", "WAL records appended", func() uint64 { return uint64(ds().Wal.Appends) })
		r.CounterFunc("crack_wal_bytes_total", "WAL bytes written", func() uint64 { return uint64(ds().Wal.Bytes) })
		r.CounterFunc("crack_wal_fsyncs_total", "fsync syscalls issued by the WAL", func() uint64 { return uint64(ds().Wal.Fsyncs) })
		r.CounterFunc("crack_wal_group_commits_total", "appends made durable by another append's fsync", func() uint64 { return uint64(ds().Wal.GroupCommits) })
		r.CounterFunc("crack_wal_checkpoints_total", "checkpoints written", func() uint64 { return uint64(ds().Checkpoints) })
		r.CounterFunc("crack_wal_write_errors_total", "storage errors observed by the durable engine", func() uint64 { return uint64(ds().WriteErrs) })
		r.GaugeFunc("crack_wal_tape_records", "crack-tape records since the relation was seeded", func() float64 { return float64(ds().TapeLen) })
		r.GaugeFunc("crack_wal_replayed_records", "WAL records replayed on top of the checkpoint at open", func() float64 { return float64(ds().ReplayedRecords) })
	}
	if d, ok := e.(*durEngine); ok {
		d.log.ObserveFsync(r.Histogram("crack_wal_fsync_seconds", "fsync syscall latency"))
	}
	r.GaugeFunc("crack_engine_storage_tuples", "auxiliary storage held by the physical design, in tuples", func() float64 { return float64(e.Storage()) })
}
