package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"crackstore/internal/crack"
	"crackstore/internal/store"
)

func cloneRelForPolicy(rel *store.Relation) *store.Relation {
	out := store.NewRelation(rel.Name, rel.Order...)
	for _, a := range rel.Order {
		out.MustColumn(a).Vals = append([]Value(nil), rel.MustColumn(a).Vals...)
	}
	return out
}

func sortedRows(res Result, projs []string) []string {
	rows := make([]string, res.N)
	for i := 0; i < res.N; i++ {
		row := make([]Value, len(projs))
		for j, attr := range projs {
			row[j] = res.Cols[attr][i]
		}
		rows[i] = fmt.Sprint(row)
	}
	sort.Strings(rows)
	return rows
}

// TestPolicyEnginesMatchDefault: for every cracking engine kind and
// adaptive policy, a mixed workload (conjunctive and disjunctive selects,
// inserts, deletes) must return exactly the answers of the default-policy
// engine — auxiliary pivots change layouts, never results.
func TestPolicyEnginesMatchDefault(t *testing.T) {
	const n, domain = 3000, 500
	for _, kind := range []Kind{SelCrack, Sideways, PartialSideways} {
		for _, polKind := range []crack.PolicyKind{crack.Stochastic, crack.Capped} {
			rng := rand.New(rand.NewSource(int64(17 + int(kind)*10 + int(polKind))))
			base := buildRel(rng, n, []string{"A", "B", "C"}, domain)
			def := New(kind, cloneRelForPolicy(base))
			pol := NewWithPolicy(kind, cloneRelForPolicy(base),
				crack.Policy{Kind: polKind, Cap: 128, Seed: 9})
			for q := 0; q < 30; q++ {
				lo := rng.Int63n(domain)
				w := 1 + rng.Int63n(domain/4)
				query := Query{
					Preds:       []AttrPred{{Attr: "A", Pred: store.Range(lo, lo+w)}},
					Projs:       []string{"B", "C"},
					Disjunctive: false,
				}
				if q%5 == 4 {
					query.Preds = append(query.Preds,
						AttrPred{Attr: "B", Pred: store.Range(0, domain/2)})
					query.Disjunctive = q%10 == 9
				}
				dres, _ := def.Query(query)
				pres, _ := pol.Query(query)
				dr, pr := sortedRows(dres, query.Projs), sortedRows(pres, query.Projs)
				if len(dr) != len(pr) {
					t.Fatalf("%v/%v q%d: %d rows vs default %d", kind, polKind, q, len(pr), len(dr))
				}
				for i := range dr {
					if dr[i] != pr[i] {
						t.Fatalf("%v/%v q%d: row %d diverged: %s vs %s", kind, polKind, q, i, pr[i], dr[i])
					}
				}
				if q%3 == 2 {
					vals := []Value{rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain)}
					k1 := def.Insert(vals...)
					k2 := pol.Insert(vals...)
					if k1 != k2 {
						t.Fatalf("%v/%v: keys diverged: %d vs %d", kind, polKind, k1, k2)
					}
				}
				if q%7 == 6 {
					def.Delete(q * 13 % n)
					pol.Delete(q * 13 % n)
				}
			}
		}
	}
}

// TestPolicyThreadsThroughWrappers: SetPolicy through Concurrent and
// Serialized wrappers must reach the inner engine and actually introduce
// auxiliary pivots on oversized pieces.
func TestPolicyThreadsThroughWrappers(t *testing.T) {
	for _, tc := range []struct {
		name string
		wrap func(Engine) Engine
	}{
		{"concurrent", Concurrent},
		{"serialized", Serialized},
	} {
		rng := rand.New(rand.NewSource(5))
		rel := buildRel(rng, 20000, []string{"A", "B"}, 20000)
		e := tc.wrap(New(SelCrack, rel))
		if !SetPolicy(e, crack.Policy{Kind: crack.Stochastic, Cap: 512, Seed: 3}) {
			t.Fatalf("%s: SetPolicy not forwarded to the cracking engine", tc.name)
		}
		e.Query(Query{
			Preds: []AttrPred{{Attr: "A", Pred: store.Range(100, 200)}},
			Projs: []string{"B"},
		})
		var inner Engine
		switch w := e.(type) {
		case *rwEngine:
			inner = w.e
		case *syncEngine:
			inner = w.e
		}
		sc := inner.(*selCrackEngine)
		col := sc.cols["A"]
		if col.P.Policy.Kind != crack.Stochastic {
			t.Fatalf("%s: cracker column policy = %v, want stochastic", tc.name, col.P.Policy.Kind)
		}
		if col.P.Stats.Aux == 0 {
			t.Fatalf("%s: no auxiliary pivots on a 20000-tuple cold crack with cap 512", tc.name)
		}
	}
}

// TestPolicyIgnoredByNonCrackingEngines: Scan/Presorted/RowStore have no
// kernel to configure; SetPolicy must report false and leave them working.
func TestPolicyIgnoredByNonCrackingEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, kind := range []Kind{Scan, Presorted, RowStore} {
		rel := buildRel(rng, 500, []string{"A", "B"}, 100)
		e := New(kind, rel)
		if SetPolicy(e, crack.Policy{Kind: crack.Capped}) {
			t.Fatalf("%v: SetPolicy reported success on a non-cracking engine", kind)
		}
		// Wrappers must propagate the inner engine's answer, not their own.
		if SetPolicy(Concurrent(New(kind, buildRel(rng, 100, []string{"A", "B"}, 100))),
			crack.Policy{Kind: crack.Capped}) {
			t.Fatalf("%v: SetPolicy reported success through a Concurrent wrapper", kind)
		}
		if SetPolicy(Serialized(New(kind, buildRel(rng, 100, []string{"A", "B"}, 100))),
			crack.Policy{Kind: crack.Capped}) {
			t.Fatalf("%v: SetPolicy reported success through a Serialized wrapper", kind)
		}
		res, _ := e.Query(Query{
			Preds: []AttrPred{{Attr: "A", Pred: store.Range(10, 50)}},
			Projs: []string{"B"},
		})
		if res.N == 0 {
			t.Fatalf("%v: engine broken after SetPolicy attempt", kind)
		}
	}
}
