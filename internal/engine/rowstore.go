package engine

import (
	"time"

	"crackstore/internal/rowstore"
	"crackstore/internal/store"
)

// RowStore is the N-ary row-store engine kind (the "MySQL presorted"
// reference series of Figure 14). It is read-only: the paper uses it only
// for TPC-H query sequences.
const RowStore Kind = 100

type rowStoreEngine struct {
	rel    *store.Relation
	plain  *rowstore.Table
	sorted map[string]*rowstore.Table
}

// NewRowStore returns a row-store engine over rel. Prepare(attr) builds a
// copy sorted on attr that queries with a matching primary predicate use.
func NewRowStore(rel *store.Relation) Engine {
	return &rowStoreEngine{rel: rel, plain: rowstore.New(rel), sorted: make(map[string]*rowstore.Table)}
}

func (e *rowStoreEngine) Name() string { return "row-store (presorted)" }
func (e *rowStoreEngine) Kind() Kind   { return RowStore }

func (e *rowStoreEngine) Insert(vals ...Value) int {
	panic("engine: the row-store reference engine is read-only")
}

func (e *rowStoreEngine) Delete(key int) {
	panic("engine: the row-store reference engine is read-only")
}

func (e *rowStoreEngine) Prepare(attrs ...string) time.Duration {
	t0 := time.Now()
	for _, a := range attrs {
		e.sorted[a] = e.plain.SortBy(a)
	}
	return time.Since(t0)
}

func (e *rowStoreEngine) Storage() int {
	return len(e.sorted) * len(e.plain.Rows)
}

func (e *rowStoreEngine) tableFor(preds []AttrPred) (*rowstore.Table, string) {
	if len(preds) > 0 {
		if t, ok := e.sorted[preds[0].Attr]; ok {
			return t, preds[0].Attr
		}
	}
	return e.plain, ""
}

func (e *rowStoreEngine) Query(q Query) (Result, Cost) {
	var cost Cost
	t0 := time.Now()
	res := Result{Cols: make(map[string][]Value, len(q.Projs))}
	for _, attr := range q.Projs {
		res.Cols[attr] = []Value{}
	}
	if q.Disjunctive {
		// Tuple-at-a-time disjunction over the plain table: the row-store
		// evaluates all predicates per row with no reconstruction at all.
		fields := make([]int, len(q.Preds))
		for i, ap := range q.Preds {
			fields[i] = e.plain.Field(ap.Attr)
		}
		projF := make([]int, len(q.Projs))
		for i, a := range q.Projs {
			projF[i] = e.plain.Field(a)
		}
		for _, row := range e.plain.Rows {
			for i, ap := range q.Preds {
				if ap.Pred.Matches(row[fields[i]]) {
					res.N++
					for j, f := range projF {
						res.Cols[q.Projs[j]] = append(res.Cols[q.Projs[j]], row[f])
					}
					break
				}
			}
		}
		cost.Sel = time.Since(t0)
		return res, cost
	}
	tab, sortedOn := e.tableFor(q.Preds)
	preds := make([]rowstore.Pred, len(q.Preds))
	for i, ap := range q.Preds {
		preds[i] = rowstore.Pred{Attr: ap.Attr, P: ap.Pred}
	}
	rows := tab.Select(preds, sortedOn)
	res.N = len(rows)
	for _, attr := range q.Projs {
		f := tab.Field(attr)
		out := make([]Value, len(rows))
		for i, row := range rows {
			out[i] = row[f]
		}
		res.Cols[attr] = out
	}
	cost.Sel = time.Since(t0)
	return res, cost
}

// Probe: the read-only row store never reorganizes during queries.
func (e *rowStoreEngine) Probe(q Query) bool { return false }

func (e *rowStoreEngine) QueryRO(q Query) (Result, Cost, bool) {
	res, cost := e.Query(q)
	return res, cost, true
}

func (e *rowStoreEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	var cost Cost
	t0 := time.Now()
	res, _ := e.Query(Query{Preds: preds, Projs: append(append([]string(nil), projs...), joinAttr)})
	cost.Sel = time.Since(t0)
	return JoinInput{
		JoinVals: res.Cols[joinAttr],
		Fetch: func(attr string, i int) Value {
			return res.Cols[attr][i]
		},
	}, cost
}
