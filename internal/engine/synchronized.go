package engine

import (
	"sync"
	"time"

	"crackstore/internal/crack"
)

// Synchronized wraps an engine so it can be shared across goroutines.
//
// Deprecated: Synchronized is now a thin shim over Concurrent, which uses
// the two-phase probe/execute protocol to serve reorganization-free
// queries in parallel instead of serializing everything behind one mutex.
// Call Concurrent directly in new code. The fully serialized wrapper is
// still available as Serialized for use as a benchmark baseline.
func Synchronized(e Engine) Engine { return Concurrent(e) }

// Serialized wraps an engine with a single mutex: every operation —
// including queries that would reorganize nothing — runs exclusively.
// This mirrors the paper's setting (cracking happens in the critical path
// of a single query executor) and serves as the baseline the Concurrent
// wrapper is benchmarked against.
func Serialized(e Engine) Engine {
	if _, ok := e.(*syncEngine); ok {
		return e
	}
	return &syncEngine{e: e}
}

type syncEngine struct {
	mu sync.Mutex
	e  Engine
}

func (s *syncEngine) Name() string { return s.e.Name() + " (serialized)" }
func (s *syncEngine) Kind() Kind   { return s.e.Kind() }

// SetCrackPolicy forwards the adaptive cracking policy to the wrapped
// engine under the mutex, reporting whether it cracks.
func (s *syncEngine) SetCrackPolicy(pol crack.Policy) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SetPolicy(s.e, pol)
}

func (s *syncEngine) Query(q Query) (Result, Cost) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Query(q)
}

func (s *syncEngine) Probe(q Query) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Probe(q)
}

func (s *syncEngine) QueryRO(q Query) (Result, Cost, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.QueryRO(q)
}

func (s *syncEngine) Insert(vals ...Value) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Insert(vals...)
}

func (s *syncEngine) Delete(key int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.e.Delete(key)
}

func (s *syncEngine) Prepare(attrs ...string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Prepare(attrs...)
}

func (s *syncEngine) Storage() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Storage()
}

func (s *syncEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ji, cost := s.e.JoinInput(preds, joinAttr, projs)
	inner := ji.Fetch
	// The fetcher may touch engine state (scan/selcrack read base
	// columns); keep it under the same lock.
	ji.Fetch = func(attr string, i int) Value {
		s.mu.Lock()
		defer s.mu.Unlock()
		return inner(attr, i)
	}
	return ji, cost
}
