package engine

import (
	"sync"
	"time"
)

// Synchronized wraps an engine with a mutex. Cracking engines physically
// reorganize their structures as a side effect of queries — reads are
// writes — so any concurrent use must be serialized. This mirrors the
// paper's setting (cracking happens in the critical path of a single
// query executor) while making the library safe to share across
// goroutines.
func Synchronized(e Engine) Engine {
	if _, ok := e.(*syncEngine); ok {
		return e
	}
	return &syncEngine{e: e}
}

type syncEngine struct {
	mu sync.Mutex
	e  Engine
}

func (s *syncEngine) Name() string { return s.e.Name() + " (synchronized)" }
func (s *syncEngine) Kind() Kind   { return s.e.Kind() }

func (s *syncEngine) Query(q Query) (Result, Cost) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Query(q)
}

func (s *syncEngine) Insert(vals ...Value) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Insert(vals...)
}

func (s *syncEngine) Delete(key int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.e.Delete(key)
}

func (s *syncEngine) Prepare(attrs ...string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Prepare(attrs...)
}

func (s *syncEngine) Storage() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Storage()
}

func (s *syncEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ji, cost := s.e.JoinInput(preds, joinAttr, projs)
	inner := ji.Fetch
	// The fetcher may touch engine state (scan/selcrack read base
	// columns); keep it under the same lock.
	ji.Fetch = func(attr string, i int) Value {
		s.mu.Lock()
		defer s.mu.Unlock()
		return inner(attr, i)
	}
	return ji, cost
}
