package engine

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"crackstore/internal/crack"
	"crackstore/internal/store"
	"crackstore/internal/wal"
)

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Sync selects the WAL durability mode (see wal.SyncMode). The default
	// SyncGroup acks only after an fsync covers the record, sharing fsyncs
	// across concurrent writers.
	Sync wal.SyncMode
	// CheckpointBytes rotates the WAL and writes a fresh checkpoint when
	// the live segment exceeds this size. 0 picks 64 MiB; negative
	// disables automatic checkpoints (tests and the crash matrix use this
	// so the on-disk image stays a single scannable segment).
	CheckpointBytes int64
	// Policy, if non-nil, is the adaptive cracking policy applied at open
	// — both to fresh stores and before tape replay on recovery, since a
	// policy-steered tape must be replayed under the same policy to
	// reproduce the cuts.
	Policy *crack.Policy
	// Wrap, if set, wraps the WAL segment file before use; faultnet's
	// WrapFile injects torn writes, short writes, and fsync errors here.
	Wrap func(wal.File) wal.File
}

func (o DurableOptions) checkpointBytes() int64 {
	if o.CheckpointBytes == 0 {
		return 64 << 20
	}
	return o.CheckpointBytes
}

// DurStats reports durability state and activity for a durable engine.
type DurStats struct {
	// Recovered is true when the open found an existing store on disk
	// (false for a fresh directory).
	Recovered bool
	// CleanShutdown is true when recovery found a clean-shutdown marker
	// matching the on-disk state exactly: nothing torn, nothing to replay.
	CleanShutdown bool
	// ReplayedRecords / ReplayedBytes count the WAL tail applied on top of
	// the checkpoint during recovery (segment-marker records excluded).
	ReplayedRecords int
	ReplayedBytes   int64
	// TruncatedBytes is the torn tail discarded at open — bytes of a
	// record that was mid-write when the previous process died.
	TruncatedBytes int64
	// RecoveryTime is the wall time of the whole open-and-replay.
	RecoveryTime time.Duration
	// TapeLen is the crack tape length (reorganizing queries recorded
	// since the relation was seeded; the warmth a restart inherits).
	TapeLen int
	// Checkpoints counts checkpoints written by this process.
	Checkpoints int64
	// WriteErrs counts writes refused or failed because of storage errors
	// (the log poisons on the first such error and stops acking).
	WriteErrs int64
	// WalBytes is the live segment size; Wal holds the log's counters.
	WalBytes int64
	Wal      wal.Stats
}

// durEngine makes any engine durable: every acked Insert/Delete is written
// to a CRC-framed WAL before it is applied, reorganizing queries append
// their shape to a crack tape, and periodic checkpoints materialize base
// columns + tombstones + tape into an atomically-replaced snapshot with a
// fresh WAL segment. It is also a shared-safe wrapper (same probe/execute
// RWMutex protocol as Concurrent): holding the write lock across
// log-append and in-memory apply makes log order equal apply order, which
// is what lets replay reproduce identical tuple keys.
type durEngine struct {
	mu  sync.RWMutex
	e   Engine
	rel *store.Relation

	dir   string
	width int
	opts  DurableOptions

	log   *wal.Log
	cpSeq uint64

	tape []wal.Record // cumulative crack tape since seed
	dead []int        // cumulative tombstoned keys since seed

	checkpoints atomic.Int64
	writeErrs   atomic.Int64

	open DurStats // recovery-time fields, fixed after OpenDurable
}

// SharedEngine marks the wrapper safe to share; serve and Concurrent must
// not add another lock on top.
func (d *durEngine) SharedEngine() {}

// OpenDurable opens (or creates) a durable engine of the given kind backed
// by data directory dir. For a fresh directory, rel seeds the store: its
// contents become checkpoint 0, so the seed itself never needs the WAL.
// For an existing directory, rel is ignored — the relation is rebuilt from
// the checkpoint, the crack tape is replayed to re-crack the recovered
// layout warm, and the WAL segment tail is applied on top (torn tail
// truncated). The returned engine carries the SharedEngine marker and
// needs no Concurrent wrapper.
func OpenDurable(kind Kind, rel *store.Relation, dir string, opts DurableOptions) (Engine, error) {
	t0 := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cp, err := wal.LoadCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	walOpts := wal.Options{Sync: opts.Sync, Wrap: opts.Wrap}

	if cp == nil {
		// Fresh store: checkpoint the seed relation, then open segment 0.
		// A crash between the two leaves a checkpoint whose segment is
		// missing; OpenLog creates it empty, so that order is safe, while
		// the reverse order could leave a segment with records but no
		// checkpoint to anchor them.
		d := &durEngine{e: New(kind, rel), rel: rel, dir: dir, width: len(rel.Order), opts: opts}
		if opts.Policy != nil {
			SetPolicy(d.e, *opts.Policy)
		}
		if err := wal.WriteCheckpoint(dir, d.checkpoint(0)); err != nil {
			return nil, err
		}
		log, _, err := wal.OpenLog(wal.SegmentPath(dir, 0), walOpts)
		if err != nil {
			return nil, err
		}
		d.log = log
		if err := log.Append(wal.Record{Type: wal.RecCheckpoint, Seq: 0}); err != nil {
			log.Close()
			return nil, err
		}
		d.open.RecoveryTime = time.Since(t0)
		return d, nil
	}

	// Recovery. The clean marker is consumed up front (whatever happens
	// next, a future crash must not look clean), then validated against
	// the on-disk state it described.
	mSeq, mSize, hasMarker := wal.TakeCleanMarker(dir)

	rrel := store.NewRelation(cp.Name, cp.Attrs...)
	for i, attr := range cp.Attrs {
		rrel.MustColumn(attr).Vals = cp.Cols[i]
	}
	d := &durEngine{e: New(kind, rrel), rel: rrel, dir: dir, width: len(cp.Attrs), opts: opts, cpSeq: cp.Seq}
	if opts.Policy != nil {
		SetPolicy(d.e, *opts.Policy)
	}
	for _, k := range cp.Dead {
		d.e.Delete(k)
	}
	d.dead = cp.Dead

	// Replay the tape: re-running the recorded reorganizing queries cracks
	// the rebuilt base columns into the same cut set the dead process had
	// (the kernel is deterministic — enforced by crackvet's detrand
	// checker — and recovery is single-goroutine, so replay order is tape
	// order). This is what makes the restart warm rather than correct-but-
	// cold.
	for _, rec := range cp.Tape {
		d.e.Query(tapeQuery(rec))
	}
	d.tape = cp.Tape

	// Apply the segment tail on top of the checkpoint.
	segPath := wal.SegmentPath(dir, cp.Seq)
	raw, err := os.ReadFile(segPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	replayErr := func() error {
		n, err := wal.Scan(raw, func(_ int64, rec wal.Record) error {
			return d.applyReplay(cp.Seq, rec)
		})
		if err != nil {
			return err
		}
		d.open.TruncatedBytes = int64(len(raw)) - n
		return nil
	}()
	if replayErr != nil {
		return nil, replayErr
	}
	d.open.ReplayedBytes = int64(len(raw)) - d.open.TruncatedBytes

	log, torn, err := wal.OpenLog(segPath, walOpts)
	if err != nil {
		return nil, err
	}
	d.log = log

	d.open.Recovered = true
	d.open.CleanShutdown = hasMarker && mSeq == cp.Seq &&
		mSize == int64(len(raw)) && torn == 0 && d.open.ReplayedRecords == 0
	d.open.RecoveryTime = time.Since(t0)
	return d, nil
}

// applyReplay applies one recovered WAL record to the warm store.
func (d *durEngine) applyReplay(cpSeq uint64, rec wal.Record) error {
	switch rec.Type {
	case wal.RecInsert:
		for i := 0; i+rec.Width <= len(rec.Vals); i += rec.Width {
			d.e.Insert(rec.Vals[i : i+rec.Width]...)
		}
		d.open.ReplayedRecords++
	case wal.RecDelete:
		for _, k := range rec.Keys {
			d.e.Delete(k)
			d.dead = append(d.dead, k)
		}
		d.open.ReplayedRecords++
	case wal.RecCrack:
		d.e.Query(tapeQuery(rec))
		d.tape = append(d.tape, rec)
		d.open.ReplayedRecords++
	case wal.RecCheckpoint:
		if rec.Seq != cpSeq {
			return fmt.Errorf("engine: wal segment opened by checkpoint %d but checkpoint on disk is %d", rec.Seq, cpSeq)
		}
	default:
		return fmt.Errorf("engine: replaying unknown wal record type %d", rec.Type)
	}
	return nil
}

// tapeQuery converts a crack-tape record back into the query that cut it.
func tapeQuery(rec wal.Record) Query {
	q := Query{Projs: rec.Projs, Disjunctive: rec.Disjunctive}
	q.Preds = make([]AttrPred, len(rec.Preds))
	for i, p := range rec.Preds {
		q.Preds[i] = AttrPred{Attr: p.Attr, Pred: p.Pred}
	}
	return q
}

// crackRecord converts a reorganizing query into its tape record.
func crackRecord(q Query) wal.Record {
	rec := wal.Record{Type: wal.RecCrack, Projs: q.Projs, Disjunctive: q.Disjunctive}
	rec.Preds = make([]wal.PredRec, len(q.Preds))
	for i, ap := range q.Preds {
		rec.Preds[i] = wal.PredRec{Attr: ap.Attr, Pred: ap.Pred}
	}
	return rec
}

// checkpoint materializes the current state (caller holds the write lock,
// or is inside OpenDurable before the engine is shared). The base-column
// slices are referenced, not copied: the relation is append-only and the
// encode completes before the lock is released.
func (d *durEngine) checkpoint(seq uint64) *wal.Checkpoint {
	cp := &wal.Checkpoint{Seq: seq, Name: d.rel.Name, Attrs: d.rel.Order, Dead: d.dead, Tape: d.tape}
	cp.Cols = make([][]store.Value, len(d.rel.Order))
	for i, attr := range d.rel.Order {
		cp.Cols[i] = d.rel.MustColumn(attr).Vals
	}
	return cp
}

// maybeCheckpointLocked rotates the WAL when the live segment has outgrown
// the configured threshold. Caller holds the write lock.
func (d *durEngine) maybeCheckpointLocked() {
	limit := d.opts.checkpointBytes()
	if limit <= 0 || d.log.Size() < limit {
		return
	}
	d.checkpointLocked()
}

// checkpointLocked writes a fresh checkpoint and swaps to a new WAL
// segment. The order is chosen so a crash anywhere leaves a recoverable
// pair:
//
//  1. fsync the old segment — every ack in flight is durable before its
//     segment is retired, so no WaitDurable waiter can fail after its data
//     became recoverable;
//  2. create the new (empty) segment;
//  3. atomically publish the new checkpoint (tmp+fsync+rename+dir-fsync);
//  4. stamp the new segment with its checkpoint's marker record;
//  5. swap logs, then close and delete the old segment.
//
// Failing before step 3 keeps the old pair authoritative; failing after it
// leaves the new pair authoritative with at worst a stale segment file
// that recovery ignores.
func (d *durEngine) checkpointLocked() {
	if err := d.log.Sync(); err != nil {
		d.writeErrs.Add(1)
		return
	}
	seq := d.cpSeq + 1
	newLog, _, err := wal.OpenLog(wal.SegmentPath(d.dir, seq), wal.Options{Sync: d.opts.Sync, Wrap: d.opts.Wrap})
	if err != nil {
		d.writeErrs.Add(1)
		return
	}
	if err := wal.WriteCheckpoint(d.dir, d.checkpoint(seq)); err != nil {
		newLog.Close()
		os.Remove(wal.SegmentPath(d.dir, seq))
		d.writeErrs.Add(1)
		return
	}
	// The checkpoint on disk now names the new segment; from here the swap
	// must happen even if the marker append fails (a poisoned new log
	// refuses acks, which is safe — staying on the old log would ack
	// writes recovery will never see).
	if err := newLog.Append(wal.Record{Type: wal.RecCheckpoint, Seq: seq}); err != nil {
		d.writeErrs.Add(1)
	}
	old := d.log
	d.log = newLog
	d.cpSeq = seq
	d.checkpoints.Add(1)
	old.Close()
	wal.RemoveSegmentsExcept(d.dir, seq)
}

// Close makes the store durable and marks the shutdown clean: final fsync,
// final checkpoint (so the next open replays nothing), clean marker, close.
func (d *durEngine) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.log.Sync(); err != nil {
		d.log.Close()
		return err
	}
	d.checkpointLocked()
	if err := d.log.Err(); err != nil {
		d.log.Close()
		return err
	}
	if err := wal.WriteCleanMarker(d.dir, d.cpSeq, d.log.Size()); err != nil {
		d.log.Close()
		return err
	}
	return d.log.Close()
}

// DurStats returns a snapshot of the durability counters.
func (d *durEngine) DurStats() DurStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s := d.open
	s.TapeLen = len(d.tape)
	s.Checkpoints = d.checkpoints.Load()
	s.WriteErrs = d.writeErrs.Load()
	s.WalBytes = d.log.Size()
	s.Wal = d.log.Stats()
	return s
}

// DurObservable is implemented by durable engines.
type DurObservable interface {
	DurStats() DurStats
}

// DurStatsOf extracts durability statistics from e if it is durable.
func DurStatsOf(e Engine) (DurStats, bool) {
	if o, ok := e.(DurObservable); ok {
		return o.DurStats(), true
	}
	return DurStats{}, false
}

// CloseDurable checkpoints and closes a durable engine, reporting false
// when e is not one.
func CloseDurable(e Engine) (bool, error) {
	if d, ok := e.(*durEngine); ok {
		return true, d.Close()
	}
	return false, nil
}

// ---------------------------------------------------------------------------
// Engine interface.

func (d *durEngine) Name() string { return d.e.Name() + " (durable)" }
func (d *durEngine) Kind() Kind   { return d.e.Kind() }

// SetCrackPolicy forwards the policy under the write lock. Prefer
// DurableOptions.Policy: a policy set after queries ran is not recorded
// and therefore not re-applied before tape replay on recovery.
func (d *durEngine) SetCrackPolicy(pol crack.Policy) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return SetPolicy(d.e, pol)
}

// Insert logs the tuple, applies it, and acks only after the record is
// durable per the sync mode. A refused or failed write returns key -1 and
// counts in DurStats.WriteErrs; after any storage error the log is
// poisoned and every subsequent write returns -1 (the durable prefix is
// unknowable, so acking would lie — restart and recover instead).
func (d *durEngine) Insert(vals ...Value) int {
	if len(vals) != d.width {
		d.writeErrs.Add(1)
		return -1
	}
	rec := wal.Record{Type: wal.RecInsert, Width: d.width, Vals: vals}
	d.mu.Lock()
	log := d.log
	end, err := log.AppendBuffered(rec)
	if err != nil {
		d.mu.Unlock()
		d.writeErrs.Add(1)
		return -1
	}
	key := d.e.Insert(vals...)
	d.maybeCheckpointLocked()
	d.mu.Unlock()
	// The durability wait happens outside the lock: concurrent inserts
	// stack up appends and share fsyncs (group commit). If a checkpoint
	// retired this record's segment meanwhile, step 1 of the rotation
	// already fsynced it and the wait returns immediately.
	if err := log.WaitDurable(end); err != nil {
		d.writeErrs.Add(1)
		return -1
	}
	return key
}

// Delete logs and applies a tombstone. A refused append applies nothing
// (the in-memory state never runs ahead of the log's ordering); a failed
// durability wait counts as a write error, with the tombstone applied —
// the poisoned log stops all further acks anyway.
func (d *durEngine) Delete(key int) {
	rec := wal.Record{Type: wal.RecDelete, Keys: []int{key}}
	d.mu.Lock()
	log := d.log
	end, err := log.AppendBuffered(rec)
	if err != nil {
		d.mu.Unlock()
		d.writeErrs.Add(1)
		return
	}
	d.e.Delete(key)
	d.dead = append(d.dead, key)
	d.maybeCheckpointLocked()
	d.mu.Unlock()
	if err := log.WaitDurable(end); err != nil {
		d.writeErrs.Add(1)
	}
}

// Query runs the probe/execute protocol (see Concurrent): read-only under
// the shared lock, exclusive only when reorganization is needed — and a
// reorganizing query is appended to the crack tape before it runs, so the
// cuts it makes survive a restart. Tape appends are buffered, never
// durability-waited: losing an unsynced tape tail costs restart warmth,
// not correctness, and read latency must not pay for fsyncs.
func (d *durEngine) Query(q Query) (Result, Cost) {
	d.mu.RLock()
	res, cost, ok := d.e.QueryRO(q)
	d.mu.RUnlock()
	if ok {
		return res, cost
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if res, cost, ok := d.e.QueryRO(q); ok {
		return res, cost
	}
	rec := crackRecord(q)
	if _, err := d.log.AppendBuffered(rec); err != nil {
		d.writeErrs.Add(1)
	}
	d.tape = append(d.tape, rec)
	res, cost = d.e.Query(q)
	d.maybeCheckpointLocked()
	return res, cost
}

func (d *durEngine) Probe(q Query) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.e.Probe(q)
}

func (d *durEngine) QueryRO(q Query) (Result, Cost, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.e.QueryRO(q)
}

// Prepare runs under the write lock and is not logged: presorted copies
// are derivable state and self-organizing engines no-op here, so a restart
// merely rebuilds them on demand.
func (d *durEngine) Prepare(attrs ...string) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.e.Prepare(attrs...)
}

func (d *durEngine) Storage() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.e.Storage()
}

// JoinInput cracks both inputs under the write lock (see Concurrent). The
// reorganization it causes is not tape-recorded — join warmth is rebuilt
// on demand after a restart.
func (d *durEngine) JoinInput(preds []AttrPred, joinAttr string, projs []string) (JoinInput, Cost) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.e.JoinInput(preds, joinAttr, projs)
}
