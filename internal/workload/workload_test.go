package workload

import (
	"testing"
	"testing/quick"
)

func TestRangeWidth(t *testing.T) {
	g := New(10000, 1)
	for i := 0; i < 100; i++ {
		p := g.Range(0.2)
		if p.Hi-p.Lo != 2000 {
			t.Fatalf("width = %d, want 2000", p.Hi-p.Lo)
		}
		if p.Lo < 1 || p.Hi > 10001 {
			t.Fatalf("range [%d,%d) outside domain", p.Lo, p.Hi)
		}
	}
}

func TestRangeForResultSize(t *testing.T) {
	g := New(1000000, 2)
	p := g.RangeForResultSize(10000, 1000000)
	if p.Hi-p.Lo != 10000 {
		t.Fatalf("width = %d, want 10000", p.Hi-p.Lo)
	}
}

func TestSkewedHotProbability(t *testing.T) {
	g := New(10000, 3)
	hot := 0
	n := 2000
	for i := 0; i < n; i++ {
		p := g.Skewed(0.05, 0.5, 0.9)
		if p.Hi <= 5001 {
			hot++
		}
	}
	frac := float64(hot) / float64(n)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %.3f, want ~0.9", frac)
	}
}

func TestPointAndValues(t *testing.T) {
	g := New(100, 4)
	p := g.Point()
	if p.Lo != p.Hi || !p.LoIncl || !p.HiIncl {
		t.Fatalf("Point = %+v", p)
	}
	vs := g.Values(50)
	for _, v := range vs {
		if v < 1 || v > 100 {
			t.Fatalf("value %d outside domain", v)
		}
	}
}

func TestBatchCycle(t *testing.T) {
	cases := []struct{ q, batch, types, want int }{
		{0, 100, 5, 0}, {99, 100, 5, 0}, {100, 100, 5, 1},
		{499, 100, 5, 4}, {500, 100, 5, 0}, {999, 100, 5, 4},
	}
	for _, c := range cases {
		if got := BatchCycle(c.q, c.batch, c.types); got != c.want {
			t.Errorf("BatchCycle(%d,%d,%d) = %d, want %d", c.q, c.batch, c.types, got, c.want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(1000, 42)
	b := New(1000, 42)
	for i := 0; i < 20; i++ {
		if a.Range(0.1) != b.Range(0.1) {
			t.Fatal("same seed must give identical streams")
		}
	}
}

// Property: generated ranges always lie within the requested window.
func TestQuickRangeIn(t *testing.T) {
	f := func(seed int64) bool {
		g := New(10000, seed)
		for i := 0; i < 20; i++ {
			p := g.RangeIn(2000, 8000, 0.05)
			if p.Lo < 2000 || p.Hi > 8001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRangeInClampsWideFractions is the regression test for the width
// clamp: when frac*Domain exceeds the window hi-lo, the range must not run
// past hi (it used to start at lo with the full unclamped width).
func TestRangeInClampsWideFractions(t *testing.T) {
	g := New(10000, 7)
	for i := 0; i < 50; i++ {
		p := g.RangeIn(2000, 2500, 0.2) // frac*Domain = 2000 > 500
		if p.Lo < 2000 || p.Hi > 2501 {
			t.Fatalf("range [%d,%d) escapes window [2000,2500]", p.Lo, p.Hi)
		}
		if p.Hi-p.Lo != 500 {
			t.Fatalf("width = %d, want clamped 500", p.Hi-p.Lo)
		}
	}
	// Skewed hot regions narrower than the query fraction rely on the
	// same clamp.
	for i := 0; i < 50; i++ {
		p := g.Skewed(0.5, 0.1, 1.0) // hot region [1,1000], frac 0.5
		if p.Hi > 1001 {
			t.Fatalf("hot-region range [%d,%d) escapes [1,1000]", p.Lo, p.Hi)
		}
	}
}

// TestSequentialSweep: the sweep visits adjacent windows left to right,
// stays inside the domain, and wraps deterministically.
func TestSequentialSweep(t *testing.T) {
	g := New(10000, 1)
	for q := 0; q < 100; q++ {
		p := g.Sequential(q, 0.01)
		if p.Lo != int64(1+q*100) || p.Hi != p.Lo+100 {
			t.Fatalf("q=%d: got [%d,%d), want [%d,%d)", q, p.Lo, p.Hi, 1+q*100, 101+q*100)
		}
	}
	// Wrap: query 100 restarts at the domain start.
	if p := g.Sequential(100, 0.01); p.Lo != 1 {
		t.Fatalf("wrap: got lo=%d, want 1", p.Lo)
	}
}

// TestZoomInHalves: each level halves the window around the target and the
// sequence restarts after bottoming out.
func TestZoomInHalves(t *testing.T) {
	g := New(1<<14, 1)
	p0 := g.ZoomIn(0)
	if p0.Hi-p0.Lo != g.Domain {
		t.Fatalf("level 0 covers %d, want the whole domain %d", p0.Hi-p0.Lo, g.Domain)
	}
	prev := p0.Hi - p0.Lo
	restarted := false
	for q := 1; q < 40; q++ {
		p := g.ZoomIn(q)
		w := p.Hi - p.Lo
		if p.Lo < 1 || p.Hi > g.Domain+1 {
			t.Fatalf("q=%d: [%d,%d) outside domain", q, p.Lo, p.Hi)
		}
		switch {
		case w == g.Domain:
			restarted = true
		case w != prev/2:
			t.Fatalf("q=%d: width %d, want %d (half of previous)", q, w, prev/2)
		}
		prev = w
	}
	if !restarted {
		t.Fatal("zoom-in never restarted from the full domain")
	}
}

// TestPeriodicRepeats: the q-th and (q+period)-th predicates are identical
// and in-domain.
func TestPeriodicRepeats(t *testing.T) {
	g := New(10000, 1)
	const period = 100
	for q := 0; q < period; q++ {
		a := g.Periodic(q, period, 0.005)
		b := g.Periodic(q+period, period, 0.005)
		if a != b {
			t.Fatalf("q=%d: %+v != %+v one period later", q, a, b)
		}
		if a.Lo < 1 || a.Hi > 10001 {
			t.Fatalf("q=%d: [%d,%d) outside domain", q, a.Lo, a.Hi)
		}
	}
}

// TestPatternNames pins the -pattern flag names and that every listed name
// resolves.
func TestPatternNames(t *testing.T) {
	for _, name := range PatternNames() {
		f, ok := Pattern(name, 0.01)
		if !ok || f == nil {
			t.Fatalf("pattern %q did not resolve", name)
		}
		g := New(10000, 1)
		for q := 0; q < 10; q++ {
			p := f(g, q)
			if p.Lo < 1 || p.Hi > 10001 {
				t.Fatalf("%s q=%d: [%d,%d) outside domain", name, q, p.Lo, p.Hi)
			}
		}
	}
	if _, ok := Pattern("radix", 0.01); ok {
		t.Fatal("unknown pattern resolved")
	}
}
