package workload

import (
	"testing"
	"testing/quick"
)

func TestRangeWidth(t *testing.T) {
	g := New(10000, 1)
	for i := 0; i < 100; i++ {
		p := g.Range(0.2)
		if p.Hi-p.Lo != 2000 {
			t.Fatalf("width = %d, want 2000", p.Hi-p.Lo)
		}
		if p.Lo < 1 || p.Hi > 10001 {
			t.Fatalf("range [%d,%d) outside domain", p.Lo, p.Hi)
		}
	}
}

func TestRangeForResultSize(t *testing.T) {
	g := New(1000000, 2)
	p := g.RangeForResultSize(10000, 1000000)
	if p.Hi-p.Lo != 10000 {
		t.Fatalf("width = %d, want 10000", p.Hi-p.Lo)
	}
}

func TestSkewedHotProbability(t *testing.T) {
	g := New(10000, 3)
	hot := 0
	n := 2000
	for i := 0; i < n; i++ {
		p := g.Skewed(0.05, 0.5, 0.9)
		if p.Hi <= 5001 {
			hot++
		}
	}
	frac := float64(hot) / float64(n)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %.3f, want ~0.9", frac)
	}
}

func TestPointAndValues(t *testing.T) {
	g := New(100, 4)
	p := g.Point()
	if p.Lo != p.Hi || !p.LoIncl || !p.HiIncl {
		t.Fatalf("Point = %+v", p)
	}
	vs := g.Values(50)
	for _, v := range vs {
		if v < 1 || v > 100 {
			t.Fatalf("value %d outside domain", v)
		}
	}
}

func TestBatchCycle(t *testing.T) {
	cases := []struct{ q, batch, types, want int }{
		{0, 100, 5, 0}, {99, 100, 5, 0}, {100, 100, 5, 1},
		{499, 100, 5, 4}, {500, 100, 5, 0}, {999, 100, 5, 4},
	}
	for _, c := range cases {
		if got := BatchCycle(c.q, c.batch, c.types); got != c.want {
			t.Errorf("BatchCycle(%d,%d,%d) = %d, want %d", c.q, c.batch, c.types, got, c.want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(1000, 42)
	b := New(1000, 42)
	for i := 0; i < 20; i++ {
		if a.Range(0.1) != b.Range(0.1) {
			t.Fatal("same seed must give identical streams")
		}
	}
}

// Property: generated ranges always lie within the requested window.
func TestQuickRangeIn(t *testing.T) {
	f := func(seed int64) bool {
		g := New(10000, seed)
		for i := 0; i < 20; i++ {
			p := g.RangeIn(2000, 8000, 0.05)
			if p.Lo < 2000 || p.Hi > 8001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
