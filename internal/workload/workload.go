// Package workload generates the query and update streams used by the
// paper's experiments: uniform random range queries with controlled
// selectivity or result size, point queries, skewed (hot-set) workloads,
// batch-cycling multi-attribute query mixes, and the HFLV/LFHV update
// scenarios of Exp6.
package workload

import (
	"math/rand"

	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// Gen produces predicates over an integer value domain [1, Domain].
type Gen struct {
	rng    *rand.Rand
	Domain int64
}

// New returns a generator with its own deterministic source.
func New(domain int64, seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed)), Domain: domain}
}

// Range returns a uniformly located range predicate covering frac of the
// domain (selectivity frac under uniform data).
func (g *Gen) Range(frac float64) store.Pred {
	return g.RangeIn(1, g.Domain, frac)
}

// RangeIn returns a range predicate of width frac*Domain located uniformly
// within [lo, hi]. The width is clamped to the window, so the generated
// range never runs past hi even when frac*Domain exceeds hi-lo.
func (g *Gen) RangeIn(lo, hi int64, frac float64) store.Pred {
	width := int64(float64(g.Domain) * frac)
	if width > hi-lo {
		width = hi - lo
	}
	if width < 1 {
		width = 1
	}
	span := hi - lo - width
	start := lo
	if span > 0 {
		start = lo + g.rng.Int63n(span+1)
	}
	return store.Range(start, start+width)
}

// RangeForResultSize returns a range predicate expected to select s tuples
// from a column of n uniform values over the domain.
func (g *Gen) RangeForResultSize(s, n int) store.Pred {
	return g.Range(float64(s) / float64(n))
}

// Point returns a random point predicate.
func (g *Gen) Point() store.Pred {
	return store.Point(1 + g.rng.Int63n(g.Domain))
}

// Skewed returns a range predicate of the given fraction that falls in the
// hot region [1, hotFrac*Domain] with probability hotProb, else in the cold
// remainder (Exp5 uses hotFrac=0.5, hotProb=0.9; Fig 10(b) uses 0.2/0.9).
func (g *Gen) Skewed(frac, hotFrac, hotProb float64) store.Pred {
	hotHi := int64(float64(g.Domain) * hotFrac)
	if g.rng.Float64() < hotProb {
		return g.RangeIn(1, hotHi, frac)
	}
	return g.RangeIn(hotHi+1, g.Domain, frac)
}

// Values returns n uniform random values in [1, Domain]; used to build
// columns and update tuples.
func (g *Gen) Values(n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = 1 + g.rng.Int63n(g.Domain)
	}
	return out
}

// Value returns one uniform random value in [1, Domain].
func (g *Gen) Value() Value { return 1 + g.rng.Int63n(g.Domain) }

// Intn exposes the underlying source for auxiliary choices (batch picks).
func (g *Gen) Intn(n int) int { return g.rng.Intn(n) }

// Sequential returns the q-th predicate of a left-to-right sweep: query q
// covers the q-th adjacent window of width frac*Domain, wrapping around
// once the sweep passes the domain end. This is the access shape of
// cursor-style exploration (scrolling a time range), and the worst case
// for plain cracking: every query cracks off a small piece of one huge
// remainder that the next query re-scans, degrading toward quadratic
// total work.
func (g *Gen) Sequential(q int, frac float64) store.Pred {
	width := int64(float64(g.Domain) * frac)
	if width < 1 {
		width = 1
	}
	steps := g.Domain / width
	if steps < 1 {
		steps = 1
	}
	lo := 1 + (int64(q)%steps)*width
	hi := lo + width
	if hi > g.Domain+1 {
		hi = g.Domain + 1
	}
	return store.Range(lo, hi)
}

// ZoomIn returns the q-th predicate of a zoom-in sequence: the first query
// covers the whole domain and each subsequent query halves the window
// around a fixed interior target, restarting from the full domain once the
// window bottoms out (a fresh drill-down). Like Sequential, each query
// leaves most of its window uncracked for plain cracking to re-scan.
func (g *Gen) ZoomIn(q int) store.Pred {
	minWidth := g.Domain / 1024
	if minWidth < 1 {
		minWidth = 1
	}
	depth := 1
	for w := g.Domain; w/2 >= minWidth; w /= 2 {
		depth++
	}
	level := q % depth
	width := g.Domain >> uint(level)
	if width < 1 {
		width = 1
	}
	// An interior target off the midpoints, so zoom windows do not line up
	// with Capped's halving pivots by construction.
	target := 1 + (g.Domain*5)/8
	lo := target - width/2
	if lo < 1 {
		lo = 1
	}
	hi := lo + width
	if hi > g.Domain+1 {
		hi = g.Domain + 1
		lo = hi - width
		if lo < 1 {
			lo = 1
		}
	}
	return store.Range(lo, hi)
}

// Periodic returns the q-th predicate of a periodic sweep: like Sequential
// but the sweep covers the whole domain every period queries and then
// repeats (a dashboard refresh cycling through panels). The first pass
// behaves like a coarse sequential sweep; later passes revisit the same
// windows.
func (g *Gen) Periodic(q, period int, frac float64) store.Pred {
	if period < 1 {
		period = 1
	}
	width := int64(float64(g.Domain) * frac)
	if width < 1 {
		width = 1
	}
	step := g.Domain / int64(period)
	if step < 1 {
		step = 1
	}
	lo := 1 + int64(q%period)*step
	hi := lo + width
	if hi > g.Domain+1 {
		hi = g.Domain + 1
	}
	if lo >= hi {
		lo = hi - 1
	}
	return store.Range(lo, hi)
}

// PatternFunc returns the q-th predicate of an access pattern over g.
type PatternFunc func(g *Gen, q int) store.Pred

// Pattern maps a pattern name to its generator function: "random"
// (uniform ranges of the given selectivity), "sequential", "zoomin"
// (selectivity ignored; windows halve from the full domain), and
// "periodic" (sweep repeating every 100 queries). ok is false for unknown
// names.
func Pattern(name string, frac float64) (f PatternFunc, ok bool) {
	switch name {
	case "random":
		return func(g *Gen, q int) store.Pred { return g.Range(frac) }, true
	case "sequential":
		return func(g *Gen, q int) store.Pred { return g.Sequential(q, frac) }, true
	case "zoomin":
		return func(g *Gen, q int) store.Pred { return g.ZoomIn(q) }, true
	case "periodic":
		return func(g *Gen, q int) store.Pred { return g.Periodic(q, 100, frac) }, true
	}
	return nil, false
}

// PatternNames lists the patterns Pattern accepts, in presentation order.
func PatternNames() []string { return []string{"random", "sequential", "zoomin", "periodic"} }

// UpdateScenario describes the update experiments of Exp6 (Section 3.6):
// every Frequency queries, Volume random updates arrive. An update is a
// deletion of a random live tuple plus an insertion of a random new one.
type UpdateScenario struct {
	Name      string
	Frequency int // queries between update batches
	Volume    int // updates per batch
}

// HFLV is the high-frequency, low-volume scenario: 10 updates every 10
// queries.
var HFLV = UpdateScenario{Name: "HFLV", Frequency: 10, Volume: 10}

// LFHV is the low-frequency, high-volume scenario: 1000 updates every 1000
// queries.
var LFHV = UpdateScenario{Name: "LFHV", Frequency: 1000, Volume: 1000}

// BatchCycle deterministically yields the query-type index for query q when
// cycling through nTypes in batches of batchLen (the Q1..Q5 pattern of the
// Section 4.2 experiments).
func BatchCycle(q, batchLen, nTypes int) int {
	return (q / batchLen) % nTypes
}
