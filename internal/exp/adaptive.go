package exp

import (
	"fmt"
	"time"

	"crackstore/internal/crack"
	"crackstore/internal/engine"
	"crackstore/internal/workload"
)

// AdaptiveWorkloads compares the adaptive cracking policies (default,
// stochastic, capped) across access patterns (random, sequential, zoomin,
// periodic — the shapes interactive exploration produces). For every
// (pattern, policy) pair it replays cfg.Queries single-attribute range
// queries against a fresh SelCrack engine over cfg.Rows uniform tuples and
// records per-query latencies.
//
// The point of the comparison: plain cracking only ever cracks at query
// bounds, so a sequential sweep or zoom-in leaves one huge uncracked piece
// that every query re-scans — cumulative cost degrades toward quadratic.
// The stochastic and capped policies pre-split oversized pieces at
// auxiliary pivots and stay near-linear on every pattern, at the price of
// a small constant overhead on patterns plain cracking already handles.
//
// The emitted BENCH_adaptive_workloads.json carries the policy and pattern
// on every series plus document-level metadata, so the committed artifact
// is self-describing. Returns the series keyed "pattern/policy".
func AdaptiveWorkloads(cfg Config, patterns, policies []string) map[string]Series {
	if len(patterns) == 0 {
		patterns = workload.PatternNames()
	}
	if len(policies) == 0 {
		policies = []string{"default", "stochastic", "capped"}
	}
	rel := buildUniform(cfg, "R", 2)
	// One sweep step per query: the sequential pattern covers the domain
	// exactly once, the worst case for plain cracking.
	frac := 1.0 / float64(cfg.Queries)

	out := make(map[string]Series, len(patterns)*len(policies))
	var series []Series
	for _, pattern := range patterns {
		gen, ok := workload.Pattern(pattern, frac)
		if !ok {
			panic(fmt.Sprintf("exp: unknown pattern %q", pattern))
		}
		for _, polName := range policies {
			kind, ok := crack.KindByName(polName)
			if !ok {
				panic(fmt.Sprintf("exp: unknown policy %q", polName))
			}
			pol := crack.Policy{Kind: kind, Seed: uint64(cfg.Seed)}
			e := engine.NewWithPolicy(engine.SelCrack, cloneRel(rel), pol)
			g := workload.New(int64(cfg.Rows), cfg.Seed+11)
			y := make([]time.Duration, cfg.Queries)
			for q := 0; q < cfg.Queries; q++ {
				query := engine.Query{Preds: []engine.AttrPred{{Attr: "A1", Pred: gen(g, q)}}}
				t0 := time.Now()
				e.Query(query)
				y[q] = time.Since(t0)
			}
			s := Series{Name: pattern + "/" + polName, Y: y, Policy: polName, Pattern: pattern}
			out[s.Name] = s
			series = append(series, s)
			cfg.logf("%-22s cumulative %v\n", s.Name, sumDur(y).Round(time.Microsecond))
		}
	}

	cum := func(name string) time.Duration { return sumDur(out[name].Y) }
	title := fmt.Sprintf(
		"Adaptive cracking policies across access patterns (%d rows, %d queries)", cfg.Rows, cfg.Queries)
	if d, s := cum("sequential/default"), cum("sequential/stochastic"); d > 0 && s > 0 {
		title += fmt.Sprintf(": sequential sweep %.1fx faster under stochastic (%v vs %v)",
			float64(d)/float64(s), s.Round(time.Microsecond), d.Round(time.Microsecond))
	}
	cfg.Meta = map[string]string{
		"rows":        fmt.Sprint(cfg.Rows),
		"queries":     fmt.Sprint(cfg.Queries),
		"seed":        fmt.Sprint(cfg.Seed),
		"engine":      "selcrack",
		"selectivity": fmt.Sprintf("%.6f", frac),
		"policy_cap":  "default (max(1024, rows/16))",
	}
	// Print the sampled table without the title-derived exports; the JSON
	// artifact keeps a fixed name so future revisions diff against it.
	printCfg := cfg
	printCfg.JSONDir, printCfg.CSVDir = "", ""
	printSeries(printCfg, title, "query", series)
	cfg.reportExportError(cfg.jsonSeries("adaptive_workloads", title, "query", series))
	return out
}
