package exp

import (
	"fmt"
	"math/rand"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/tpch"
)

// Fig14Result reproduces Figure 14 (per-query TPC-H sequences) and the
// Section 5 improvement table.
type Fig14Result struct {
	SF       float64
	Runs     int
	QueryIDs []int
	// Series[qid][engine] = per-run durations across the parameter
	// variations.
	Series map[int]map[string][]time.Duration
	// PrepCost[qid] = presorting cost for the presorted engine.
	PrepCost map[int]time.Duration
	// Improvement[qid][engine] = percent improvement of the sequence total
	// versus the plain scan engine (positive = faster).
	Improvement map[int]map[string]float64
}

// Fig14Kinds are the engine series of Figure 14.
var Fig14Kinds = []engine.Kind{engine.Scan, engine.SelCrack, engine.Sideways,
	engine.Presorted, engine.RowStore}

// Fig14 runs each of the paper's twelve TPC-H queries as a sequence of
// parameter variations per engine kind.
func Fig14(cfg Config, sf float64, runs int) *Fig14Result {
	data := tpch.Generate(sf, cfg.Seed)
	res := &Fig14Result{
		SF: sf, Runs: runs, QueryIDs: tpch.QueryIDs,
		Series:      map[int]map[string][]time.Duration{},
		PrepCost:    map[int]time.Duration{},
		Improvement: map[int]map[string]float64{},
	}
	for _, qid := range tpch.QueryIDs {
		res.Series[qid] = map[string][]time.Duration{}
		fn := tpch.Queries[qid]
		prng := rand.New(rand.NewSource(cfg.Seed + int64(qid)))
		params := make([]tpch.Params, runs)
		for i := range params {
			params[i] = tpch.RandomParams(prng)
		}
		var check Value
		for ki, kind := range Fig14Kinds {
			db := tpch.NewDB(data, kind)
			if kind == engine.Presorted || kind == engine.RowStore {
				prep := db.Prepare(qid)
				if kind == engine.Presorted {
					res.PrepCost[qid] = prep
				}
			}
			name := kind.String()
			for _, p := range params {
				t0 := time.Now()
				got := fn(db, p)
				res.Series[qid][name] = append(res.Series[qid][name], time.Since(t0))
				if ki == 0 {
					check = check*31 + got
				}
			}
			_ = check
		}
		scanTotal := sumDur(res.Series[qid][engine.Scan.String()])
		res.Improvement[qid] = map[string]float64{}
		for _, kind := range Fig14Kinds[1:] {
			total := sumDur(res.Series[qid][kind.String()])
			if scanTotal > 0 {
				res.Improvement[qid][kind.String()] =
					100 * (1 - float64(total)/float64(scanTotal))
			}
		}
		var series []Series
		for _, kind := range Fig14Kinds {
			series = append(series, Series{Name: kind.String(), Y: res.Series[qid][kind.String()]})
		}
		printSeries(cfg, fmt.Sprintf("Fig 14: TPC-H Query %d (SF=%g)", qid, sf), "run", series)
		cfg.logf("(presorting cost for Q%d: %s)\n", qid, fmtDur(res.PrepCost[qid]))
	}
	cfg.logf("\n== Section 5 table: improvement over plain scan (sequence totals) ==\n")
	cfg.logf("%-6s%12s%12s\n", "Q", "SiCr%", "PrMo%")
	for _, qid := range tpch.QueryIDs {
		cfg.logf("%-6d%11.0f%%%11.0f%%\n", qid,
			res.Improvement[qid][engine.Sideways.String()],
			res.Improvement[qid][engine.Presorted.String()])
	}
	return res
}

// MixedResult reproduces the Section 5 closing figure: five sequential
// batches of all twelve queries, sideways cracking relative to the plain
// engine, with map reuse across different queries.
type MixedResult struct {
	Batches int
	// Relative[i] = sideways / scan for the i-th query execution.
	Relative []float64
	QueryIDs []int
}

// Mixed runs batches of the twelve TPC-H queries with varying parameters
// on persistent sideways and scan databases.
func Mixed(cfg Config, sf float64, batches int) *MixedResult {
	data := tpch.Generate(sf, cfg.Seed)
	scanDB := tpch.NewDB(data, engine.Scan)
	sideDB := tpch.NewDB(data, engine.Sideways)
	prng := rand.New(rand.NewSource(cfg.Seed + 77))
	res := &MixedResult{Batches: batches}
	for b := 0; b < batches; b++ {
		for _, qid := range tpch.QueryIDs {
			p := tpch.RandomParams(prng)
			fn := tpch.Queries[qid]
			t0 := time.Now()
			fn(scanDB, p)
			scanD := time.Since(t0)
			t0 = time.Now()
			fn(sideDB, p)
			sideD := time.Since(t0)
			rel := 0.0
			if scanD > 0 {
				rel = float64(sideD) / float64(scanD)
			}
			res.Relative = append(res.Relative, rel)
			res.QueryIDs = append(res.QueryIDs, qid)
		}
	}
	cfg.logf("\n== Mixed TPC-H workload: sideways relative to plain scan ==\n")
	cfg.logf("%-6s%-6s%10s\n", "seq", "query", "relative")
	for i, rel := range res.Relative {
		cfg.logf("%-6d%-6d%10.3f\n", i+1, res.QueryIDs[i], rel)
	}
	return res
}
