package exp

import (
	"time"

	"crackstore/internal/partial"
	"crackstore/internal/sideways"
	"crackstore/internal/store"
)

// AblationResult quantifies the design choices of Sections 3.2-4.1 by
// running identical workloads with exactly one switch flipped.
type AblationResult struct {
	// Pairs maps an ablation name to {paper design, ablated design} costs.
	Pairs map[string][2]time.Duration
}

// Ablations runs all ablation pairs at the configured scale.
func Ablations(cfg Config) *AblationResult {
	res := &AblationResult{Pairs: map[string][2]time.Duration{}}

	// Adaptive (lazy) vs eager alignment: nine cold maps, one hot map.
	alignment := func(eager bool) time.Duration {
		st := sideways.NewStore(buildUniform(cfg, "R", 10))
		st.EagerAlignment = eager
		gen := genFor(cfg, 900)
		projs := []string{"A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10"}
		t0 := time.Now()
		for _, proj := range projs {
			st.SelectProject("A1", gen.Range(0.1), []string{proj})
		}
		for q := 0; q < cfg.Queries; q++ {
			st.SelectProject("A1", gen.Range(0.1), []string{"A2"})
		}
		return time.Since(t0)
	}
	res.Pairs["alignment lazy vs eager (3.2)"] = [2]time.Duration{alignment(false), alignment(true)}

	// Histogram vs naive map-set choice: first predicate unselective.
	setChoice := func(naive bool) time.Duration {
		st := sideways.NewStore(buildUniform(cfg, "R", 4))
		st.NaiveSetChoice = naive
		gen := genFor(cfg, 901)
		t0 := time.Now()
		for q := 0; q < cfg.Queries; q++ {
			st.MultiSelect([]sideways.AttrPred{
				{Attr: "A1", Pred: gen.Range(0.9)},
				{Attr: "A2", Pred: gen.Range(0.02)},
			}, []string{"A3", "A4"}, false)
		}
		return time.Since(t0)
	}
	res.Pairs["set choice histogram vs naive (3.3)"] = [2]time.Duration{setChoice(false), setChoice(true)}

	// Partial vs forced-full chunk alignment: heavily cracked area, then
	// covered queries over other tails.
	partialAlign := func(force bool) time.Duration {
		st := partial.NewStore(buildUniform(cfg, "R", 6))
		st.ForceFullAlignment = force
		gen := genFor(cfg, 902)
		for q := 0; q < cfg.Queries; q++ {
			st.SelectProject("A1", gen.Range(0.05), []string{"A2"})
		}
		wide := store.Range(1, int64(cfg.Rows))
		tails := []string{"A3", "A4", "A5", "A6"}
		t0 := time.Now()
		for q := 0; q < cfg.Queries/2; q++ {
			st.SelectProject("A1", wide, []string{tails[q%len(tails)]})
		}
		return time.Since(t0)
	}
	res.Pairs["chunk alignment partial vs full (4.1)"] = [2]time.Duration{partialAlign(false), partialAlign(true)}

	// Head dropping: recovery cost on re-crack vs keeping heads.
	headDrop := func(drop bool) time.Duration {
		st := partial.NewStore(buildUniform(cfg, "R", 2))
		gen := genFor(cfg, 903)
		for q := 0; q < cfg.Queries; q++ {
			st.SelectProject("A1", gen.Range(0.05), []string{"A2"})
		}
		if drop {
			st.DropHead()
		}
		t0 := time.Now()
		for q := 0; q < cfg.Queries/4; q++ {
			st.SelectProject("A1", gen.Range(0.05), []string{"A2"})
		}
		return time.Since(t0)
	}
	res.Pairs["head retention vs drop+recover (4.1)"] = [2]time.Duration{headDrop(false), headDrop(true)}

	cfg.logf("\n== Ablations: paper design vs ablated (same workload) ==\n")
	cfg.logf("%-42s%14s%14s%8s\n", "design choice", "paper", "ablated", "ratio")
	for _, name := range []string{
		"alignment lazy vs eager (3.2)",
		"set choice histogram vs naive (3.3)",
		"chunk alignment partial vs full (4.1)",
		"head retention vs drop+recover (4.1)",
	} {
		pair := res.Pairs[name]
		ratio := 0.0
		if pair[0] > 0 {
			ratio = float64(pair[1]) / float64(pair[0])
		}
		cfg.logf("%-42s%14s%14s%7.2fx\n", name, fmtDur(pair[0]), fmtDur(pair[1]), ratio)
	}
	return res
}
