package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	cfg := tiny()
	cfg.CSVDir = dir
	Exp5(cfg)
	files, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no CSV files written: %v", err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != cfg.Queries+1 {
		t.Fatalf("%d lines, want %d (header + per query)", len(lines), cfg.Queries+1)
	}
	if !strings.HasPrefix(lines[0], "query,") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestCSVStorageExport(t *testing.T) {
	dir := t.TempDir()
	cfg := tiny()
	cfg.Rows = 3000
	cfg.Queries = 20
	cfg.CSVDir = dir
	Fig9(cfg)
	p := filepath.Join(dir, "fig9d_storage.csv")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("storage CSV missing: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 21 {
		t.Fatalf("%d lines, want 21", len(lines))
	}
	if !strings.Contains(lines[0], "_tuples") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestSanitize(t *testing.T) {
	got := sanitize("Fig 9(a) unlimited storage")
	if got != "fig_9_a_unlimited_storage" {
		t.Fatalf("sanitize = %q", got)
	}
}
