package exp

import (
	"fmt"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/workload"
)

// The Section 4.2 experiments use an 11-attribute relation and five query
// types Qi: select Ci from R where v1<A<v2 and v3<Bi<v4, all sharing the
// selection attribute A (=A1) but using different Bi (=A2..A6) and Ci
// (=A7..A11), i.e. each query type requires two different maps.
func partialQueryType(i int) (bAttr, cAttr string) {
	return fmt.Sprintf("A%d", 2+i), fmt.Sprintf("A%d", 7+i)
}

// PartialRun is one engine's trace through a Section 4.2 workload.
type PartialRun struct {
	Name    string
	PerQ    []time.Duration
	Storage []int // map/chunk tuples after each query
}

// partialWorkload replays the batch-cycling workload against one engine.
//   - resultFrac: the A-range width as a fraction of the domain (S tuples)
//   - batchLen: queries per batch before the query type changes
//   - nTypes: number of query types cycled
//   - skew: if true, 9/10 of the A ranges fall in the first 20% of the
//     domain (Figure 10(b))
func partialWorkload(cfg Config, e engine.Engine, resultFrac float64,
	batchLen, nTypes int, skew bool) PartialRun {

	gen := genFor(cfg, 700)
	run := PartialRun{Name: e.Kind().String()}
	for q := 0; q < cfg.Queries; q++ {
		ti := workload.BatchCycle(q, batchLen, nTypes)
		bAttr, cAttr := partialQueryType(ti)
		var predA = gen.Range(resultFrac)
		if skew {
			predA = gen.Skewed(resultFrac, 0.2, 0.9)
		}
		predB := gen.Range(0.5)
		t0 := time.Now()
		e.Query(engine.Query{
			Preds: []engine.AttrPred{
				{Attr: "A1", Pred: predA},
				{Attr: bAttr, Pred: predB},
			},
			Projs: []string{cAttr},
		})
		run.PerQ = append(run.PerQ, time.Since(t0))
		run.Storage = append(run.Storage, e.Storage())
	}
	return run
}

func newBudgeted(full bool, cfg Config, budget int) engine.Engine {
	rel := buildUniform(cfg, "R", 11)
	if full {
		return engine.NewSidewaysWithBudget(rel, budget)
	}
	return engine.NewPartialWithBudget(rel, budget)
}

// Fig9Result reproduces Figure 9: full vs partial maps under storage
// thresholds T ∈ {unlimited, 6.5x, 2x base rows}.
type Fig9Result struct {
	Budgets []int // 0 = unlimited
	// Runs[i] = {full, partial} for Budgets[i].
	Runs [][2]PartialRun
}

// Fig9 runs 5 query types in batches with S = 1% of the rows.
func Fig9(cfg Config) *Fig9Result {
	res := &Fig9Result{Budgets: []int{0, int(6.5 * float64(cfg.Rows)), 2 * cfg.Rows}}
	batchLen := cfg.Queries / 10
	if batchLen < 1 {
		batchLen = 1
	}
	for _, budget := range res.Budgets {
		full := partialWorkload(cfg, newBudgeted(true, cfg, budget), 0.01, batchLen, 5, false)
		full.Name = "full maps"
		part := partialWorkload(cfg, newBudgeted(false, cfg, budget), 0.01, batchLen, 5, false)
		part.Name = "partial maps"
		res.Runs = append(res.Runs, [2]PartialRun{full, part})
	}
	labels := []string{"(a) unlimited storage", "(b) T=6.5x rows", "(c) T=2x rows"}
	for i, pair := range res.Runs {
		printSeries(cfg, "Fig 9"+labels[i], "query",
			[]Series{{Name: pair[0].Name, Y: pair[0].PerQ}, {Name: pair[1].Name, Y: pair[1].PerQ}})
	}
	storageRuns := map[string][]int{}
	for i := range res.Runs {
		storageRuns["full"+budgetTag(res.Budgets[i])] = res.Runs[i][0].Storage
		storageRuns["part"+budgetTag(res.Budgets[i])] = res.Runs[i][1].Storage
	}
	cfg.reportExportError(cfg.csvStorage("fig9d_storage", storageRuns))
	cfg.logf("\n== Fig 9(d): storage used (tuples) ==\n")
	cfg.logf("%-8s", "query")
	for i := range res.Runs {
		cfg.logf("%14s%14s", "full"+budgetTag(res.Budgets[i]), "part"+budgetTag(res.Budgets[i]))
	}
	cfg.logf("\n")
	for _, q := range SamplePoints(cfg.Queries) {
		cfg.logf("%-8d", q+1)
		for i := range res.Runs {
			cfg.logf("%14d%14d", res.Runs[i][0].Storage[q], res.Runs[i][1].Storage[q])
		}
		cfg.logf("\n")
	}
	return res
}

func budgetTag(b int) string {
	if b == 0 {
		return "/noT"
	}
	return fmt.Sprintf("/T=%dk", b/1000)
}

// Fig10Result reproduces Figure 10: adaptation to selective and skewed
// workloads under T = 6.5x rows.
type Fig10Result struct {
	// Uniform1K: S = 0.1% uniform; Skewed10K: S = 1% skewed.
	Uniform1K, Skewed10K [2]PartialRun
}

// Fig10 reruns the basic experiment with higher selectivity and with skew.
func Fig10(cfg Config) *Fig10Result {
	budget := int(6.5 * float64(cfg.Rows))
	batchLen := cfg.Queries / 10
	if batchLen < 1 {
		batchLen = 1
	}
	res := &Fig10Result{}
	for i, sc := range []struct {
		frac float64
		skew bool
	}{{0.001, false}, {0.01, true}} {
		full := partialWorkload(cfg, newBudgeted(true, cfg, budget), sc.frac, batchLen, 5, sc.skew)
		full.Name = "full maps"
		part := partialWorkload(cfg, newBudgeted(false, cfg, budget), sc.frac, batchLen, 5, sc.skew)
		part.Name = "partial maps"
		if i == 0 {
			res.Uniform1K = [2]PartialRun{full, part}
		} else {
			res.Skewed10K = [2]PartialRun{full, part}
		}
	}
	printSeries(cfg, "Fig 10(a): random, S=0.1% of rows", "query",
		[]Series{{Name: "full maps", Y: res.Uniform1K[0].PerQ}, {Name: "partial maps", Y: res.Uniform1K[1].PerQ}})
	printSeries(cfg, "Fig 10(b): skewed, S=1% of rows", "query",
		[]Series{{Name: "full maps", Y: res.Skewed10K[0].PerQ}, {Name: "partial maps", Y: res.Skewed10K[1].PerQ}})
	cfg.reportExportError(cfg.csvStorage("fig10c_storage", map[string][]int{
		"full_rand1k":  res.Uniform1K[0].Storage,
		"part_rand1k":  res.Uniform1K[1].Storage,
		"full_skew10k": res.Skewed10K[0].Storage,
		"part_skew10k": res.Skewed10K[1].Storage,
	}))
	cfg.logf("\n== Fig 10(c): storage used (tuples) ==\n")
	cfg.logf("%-8s%14s%14s%14s%14s\n", "query", "F/rand1K", "P/rand1K", "F/skew10K", "P/skew10K")
	for _, q := range SamplePoints(cfg.Queries) {
		cfg.logf("%-8d%14d%14d%14d%14d\n", q+1,
			res.Uniform1K[0].Storage[q], res.Uniform1K[1].Storage[q],
			res.Skewed10K[0].Storage[q], res.Skewed10K[1].Storage[q])
	}
	return res
}

// Fig11Result reproduces Figure 11: total cost of the whole query sequence
// varying result size and storage threshold.
type Fig11Result struct {
	Fracs   []float64
	Budgets []int
	// Total[fi][bi] = {full, partial} cumulative cost.
	Total [][][2]time.Duration
}

// Fig11 shows partial maps add no overhead in sequence totals.
func Fig11(cfg Config) *Fig11Result {
	res := &Fig11Result{
		Fracs:   []float64{0.001, 0.01, 0.1, 0.3},
		Budgets: []int{0, int(6.5 * float64(cfg.Rows)), 2 * cfg.Rows},
	}
	batchLen := cfg.Queries / 10
	if batchLen < 1 {
		batchLen = 1
	}
	for _, frac := range res.Fracs {
		var perBudget [][2]time.Duration
		for _, budget := range res.Budgets {
			full := partialWorkload(cfg, newBudgeted(true, cfg, budget), frac, batchLen, 5, false)
			part := partialWorkload(cfg, newBudgeted(false, cfg, budget), frac, batchLen, 5, false)
			perBudget = append(perBudget, [2]time.Duration{sumDur(full.PerQ), sumDur(part.PerQ)})
		}
		res.Total = append(res.Total, perBudget)
	}
	cfg.logf("\n== Fig 11: total cumulative cost (%d queries) ==\n", cfg.Queries)
	cfg.logf("%-10s", "S/rows")
	for _, b := range res.Budgets {
		cfg.logf("%14s%14s", "full"+budgetTag(b), "part"+budgetTag(b))
	}
	cfg.logf("\n")
	for fi, frac := range res.Fracs {
		cfg.logf("%-10.3f", frac)
		for bi := range res.Budgets {
			cfg.logf("%14s%14s", fmtDur(res.Total[fi][bi][0]), fmtDur(res.Total[fi][bi][1]))
		}
		cfg.logf("\n")
	}
	return res
}

// Fig12Result reproduces Figure 12: total cost versus workload change rate.
type Fig12Result struct {
	Changes []int // workload changes per sequence
	Full    []time.Duration
	Partial []time.Duration
}

// Fig12 varies how often the query type changes under T = 6x rows.
func Fig12(cfg Config) *Fig12Result {
	res := &Fig12Result{}
	budget := 6 * cfg.Rows
	for _, changes := range []int{5, 10, 50, 100, 500, 1000} {
		if changes > cfg.Queries {
			break
		}
		batchLen := cfg.Queries / changes
		if batchLen < 1 {
			batchLen = 1
		}
		full := partialWorkload(cfg, newBudgeted(true, cfg, budget), 0.01, batchLen, 5, false)
		part := partialWorkload(cfg, newBudgeted(false, cfg, budget), 0.01, batchLen, 5, false)
		res.Changes = append(res.Changes, changes)
		res.Full = append(res.Full, sumDur(full.PerQ))
		res.Partial = append(res.Partial, sumDur(part.PerQ))
	}
	cfg.logf("\n== Fig 12: total cost vs workload change rate (%d queries) ==\n", cfg.Queries)
	cfg.logf("%-10s%14s%14s\n", "changes", "full", "partial")
	for i, c := range res.Changes {
		cfg.logf("%-10d%14s%14s\n", c, fmtDur(res.Full[i]), fmtDur(res.Partial[i]))
	}
	return res
}

// Fig13Result reproduces Figure 13: alignment cost when switching between
// two query types at different rates, with unlimited storage.
type Fig13Result struct {
	BatchLens []int
	// Runs[i] = {full, partial} for BatchLens[i].
	Runs [][2]PartialRun
}

// Fig13 isolates the alignment cost: two query types, no threshold.
func Fig13(cfg Config) *Fig13Result {
	res := &Fig13Result{}
	for _, batchLen := range []int{cfg.Queries / 100, cfg.Queries / 10, cfg.Queries / 5} {
		if batchLen < 1 {
			batchLen = 1
		}
		full := partialWorkload(cfg, newBudgeted(true, cfg, 0), 0.01, batchLen, 2, false)
		full.Name = "full maps"
		part := partialWorkload(cfg, newBudgeted(false, cfg, 0), 0.01, batchLen, 2, false)
		part.Name = "partial maps"
		res.BatchLens = append(res.BatchLens, batchLen)
		res.Runs = append(res.Runs, [2]PartialRun{full, part})
	}
	for i, pair := range res.Runs {
		printSeries(cfg, fmt.Sprintf("Fig 13: change workload every %d queries", res.BatchLens[i]),
			"query", []Series{{Name: pair[0].Name, Y: pair[0].PerQ}, {Name: pair[1].Name, Y: pair[1].PerQ}})
	}
	return res
}
