// Package exp is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (Sections 3.6, 4.2 and 5). Each
// experiment builds its workload exactly as described in the paper, replays
// it against the relevant engines, and reports the same rows/series the
// paper plots. Sizes default to laptop scale; the cmd/crackbench and
// cmd/tpchbench tools expose paper-scale settings.
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/store"
	"crackstore/internal/workload"
)

// Value aliases the kernel value type.
type Value = store.Value

// Config controls experiment scale and output.
type Config struct {
	Rows    int   // base relation rows (paper: 1e7 for Section 3.6, 1e6 for 4.2)
	Queries int   // queries per sequence (paper: 100-1000)
	Seed    int64 // workload seed
	W       io.Writer
	// CSVDir, when non-empty, also writes each figure's full series as a
	// CSV file (one per panel) into this directory for plotting.
	CSVDir string
	// JSONDir, when non-empty, also writes each figure's per-query and
	// cumulative latency series as BENCH_<panel>.json into this directory,
	// giving later revisions a machine-readable perf trajectory to compare
	// against.
	JSONDir string
	// Meta, when non-empty, is recorded verbatim in every BENCH_*.json
	// this config emits (scale, policy caps, pattern parameters), so the
	// committed artifacts are self-describing.
	Meta map[string]string
}

// Default returns a laptop-scale configuration.
func Default() Config {
	return Config{Rows: 100000, Queries: 100, Seed: 1, W: io.Discard}
}

// PaperScale returns the paper's sizes (minutes-long runs).
func PaperScale() Config {
	return Config{Rows: 10000000, Queries: 1000, Seed: 1, W: io.Discard}
}

func (c Config) writer() io.Writer {
	if c.W == nil {
		return io.Discard
	}
	return c.W
}

func (c Config) logf(format string, args ...any) {
	fmt.Fprintf(c.writer(), format, args...)
}

// buildUniform builds an nAttrs-column relation of cfg.Rows rows with
// uniform random integers in [1, cfg.Rows] (the paper's synthetic tables).
func buildUniform(cfg Config, name string, nAttrs int) *store.Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	attrs := make([]string, nAttrs)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i+1)
	}
	return store.Build(name, cfg.Rows, attrs, func(string, int) Value {
		return 1 + Value(rng.Int63n(int64(cfg.Rows)))
	})
}

func cloneRel(rel *store.Relation) *store.Relation {
	out := store.NewRelation(rel.Name, rel.Order...)
	for _, a := range rel.Order {
		out.MustColumn(a).Vals = append([]Value(nil), rel.MustColumn(a).Vals...)
	}
	return out
}

// SamplePoints returns log-spaced indices 0-based in [0, n): 1,2,...,10,20,
// ...,100,200,... — the x-axes the paper uses for query sequences.
func SamplePoints(n int) []int {
	var out []int
	step := 1
	for i := 1; i <= n; i += step {
		out = append(out, i-1)
		if i >= 10*step {
			step *= 10
		}
	}
	if len(out) == 0 || out[len(out)-1] != n-1 {
		out = append(out, n-1)
	}
	return out
}

// Series is one plotted line: per-query durations.
type Series struct {
	Name string
	Y    []time.Duration
	// Errors counts failed queries behind this series (serving runs). They
	// have no latency sample in Y; a nonzero count is surfaced in the JSON
	// emission so a run with failures cannot pass as healthy.
	Errors int
	// Policy and Pattern, when set, record the adaptive cracking policy
	// and the access pattern behind this series; they are emitted into the
	// BENCH_*.json line so the artifact is self-describing.
	Policy  string
	Pattern string
	// Transport, Conns and Pipeline describe a remote-serving series: the
	// transport the queries traveled over ("tcp", or "in-process" for the
	// local baseline), the pooled connections, and the per-connection
	// pipeline depth (concurrent in-flight requests). Zero values are
	// omitted from the JSON emission.
	Transport string
	Conns     int
	Pipeline  int
	// FaultRate, Retries, Hedges, Sheds, and Redials describe a chaos /
	// resilience series: the injected fault rate behind the run and the
	// client-side resilience counters it drove (retried calls, hedged
	// reads, in-band overload sheds absorbed, connections redialed). They
	// make the chaos artifact self-auditing: a fault run whose counters
	// are all zero exercised nothing.
	FaultRate float64
	Retries   int
	Hedges    int
	Sheds     int
	Redials   int
	// CPUs records the GOMAXPROCS value the series ran at (a -cpus
	// sweep); 0 means the process default and is omitted from the JSON.
	CPUs int
	// ReaderWait, ReaderWaits, Snapshots, and Reclaimed surface the shared
	// engine wrapper's contention counters behind a serving series: time
	// readers spent blocked acquiring read access and how often
	// (Concurrent), versions published and reclaimed (Snapshot). A
	// snapshot series with nonzero ReaderWait — or a contended Concurrent
	// series without it — flags a broken measurement.
	ReaderWait  time.Duration
	ReaderWaits int64
	Snapshots   int64
	Reclaimed   int64
}

// printSeries prints sampled points of several aligned series and, when
// CSVDir is set, exports the full series as CSV.
func printSeries(cfg Config, title string, xlabel string, series []Series) {
	cfg.reportExportError(cfg.csvSeries(sanitize(title), xlabel, series))
	cfg.reportExportError(cfg.jsonSeries(sanitize(title), title, xlabel, series))
	cfg.logf("\n== %s ==\n", title)
	cfg.logf("%-10s", xlabel)
	for _, s := range series {
		cfg.logf("%18s", s.Name)
	}
	cfg.logf("\n")
	if len(series) == 0 || len(series[0].Y) == 0 {
		return
	}
	for _, i := range SamplePoints(len(series[0].Y)) {
		cfg.logf("%-10d", i+1)
		for _, s := range series {
			cfg.logf("%18s", fmtDur(s.Y[i]))
		}
		cfg.logf("\n")
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dus", d.Microseconds())
	}
}

// sumDur totals a series.
func sumDur(y []time.Duration) time.Duration {
	var t time.Duration
	for _, d := range y {
		t += d
	}
	return t
}

// medianTail returns the median of the last k entries (converged cost).
func medianTail(y []time.Duration, k int) time.Duration {
	if len(y) == 0 {
		return 0
	}
	if k > len(y) {
		k = len(y)
	}
	tail := append([]time.Duration(nil), y[len(y)-k:]...)
	for i := 1; i < len(tail); i++ {
		for j := i; j > 0 && tail[j] < tail[j-1]; j-- {
			tail[j], tail[j-1] = tail[j-1], tail[j]
		}
	}
	return tail[len(tail)/2]
}

// runMaxQuery runs one q1/q3-style aggregation query and returns its cost.
func runMaxQuery(e engine.Engine, preds []engine.AttrPred, projs []string) engine.Cost {
	t0 := time.Now()
	res, cost := e.Query(engine.Query{Preds: preds, Projs: projs})
	engine.MaxPerProj(res, projs)
	total := time.Since(t0)
	// Attribute the aggregation time to TR (it iterates reconstructed
	// columns), keeping Sel as reported.
	cost.TR = total - cost.Sel
	return cost
}

// genFor returns a workload generator over the value domain of cfg.
func genFor(cfg Config, seedOffset int64) *workload.Gen {
	return workload.New(int64(cfg.Rows), cfg.Seed+seedOffset)
}
