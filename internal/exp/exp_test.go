package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"crackstore/internal/workload"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{Rows: 5000, Queries: 30, Seed: 1, W: nil}
}

func TestSamplePoints(t *testing.T) {
	pts := SamplePoints(1000)
	if pts[0] != 0 {
		t.Fatal("first sample must be query 1")
	}
	if pts[len(pts)-1] != 999 {
		t.Fatal("last sample must be the final query")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatal("samples must be strictly increasing")
		}
	}
	if len(SamplePoints(5)) != 5 {
		t.Fatalf("SamplePoints(5) = %v", SamplePoints(5))
	}
}

func TestMedianTail(t *testing.T) {
	y := []time.Duration{100, 1, 2, 3, 4, 5}
	if m := medianTail(y, 5); m != 3 {
		t.Fatalf("medianTail = %d, want 3", m)
	}
}

func TestExp1ShapeAndOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.W = &buf
	res := Exp1(cfg)
	for _, name := range []string{"presorted", "sideways", "selcrack", "scan"} {
		if len(res.LastCost[name]) != 3 {
			t.Fatalf("%s: %d TR points, want 3", name, len(res.LastCost[name]))
		}
	}
	if !strings.Contains(buf.String(), "Exp1 cost breakdown") {
		t.Fatal("missing breakdown table in output")
	}
	// Shape: converged sideways must not lose badly to selection cracking
	// at 8 TRs (the paper's core claim). Medians over the tail keep the
	// check robust to scheduler noise at test scale.
	side := medianTail(res.Series["sideways"][2], 10)
	selc := medianTail(res.Series["selcrack"][2], 10)
	if side > selc*3 {
		t.Errorf("converged sideways (%v) should not be 3x slower than selcrack (%v)", side, selc)
	}
}

func TestExp2Shape(t *testing.T) {
	cfg := tiny()
	res := Exp2(cfg)
	if len(res.Relative) != 6 {
		t.Fatalf("%d selectivities", len(res.Relative))
	}
	// Converged sideways must be at least as fast as plain scan for the
	// 50% selectivity series (index 3).
	side := medianTail(res.Sideways[3], 10)
	scan := medianTail(res.Scan[3], 10)
	if side > scan*2 {
		t.Errorf("converged sideways %v vs scan %v", side, scan)
	}
}

func TestExp3Shape(t *testing.T) {
	cfg := tiny()
	cfg.Rows = 50000
	res := Exp3(cfg)
	for name, ys := range res.Cost {
		if len(ys) != 4 {
			t.Fatalf("%s has %d points", name, len(ys))
		}
	}
}

func TestExp4Runs(t *testing.T) {
	cfg := tiny()
	cfg.Queries = 10
	res := Exp4(cfg)
	for _, name := range []string{"presorted", "sideways", "selcrack", "scan"} {
		if len(res.Total[name]) != 10 {
			t.Fatalf("%s total series length %d", name, len(res.Total[name]))
		}
		for i := range res.Total[name] {
			if res.Total[name][i] < res.PostTR[name][i] {
				t.Fatal("total must include post TR")
			}
		}
	}
}

func TestExp5Runs(t *testing.T) {
	cfg := tiny()
	res := Exp5(cfg)
	if len(res.Series["sideways"]) != cfg.Queries {
		t.Fatal("wrong series length")
	}
}

func TestExp6Runs(t *testing.T) {
	cfg := tiny()
	sc := workload.UpdateScenario{Name: "test", Frequency: 5, Volume: 5}
	res := Exp6(cfg, sc)
	for _, name := range []string{"sideways", "selcrack", "scan"} {
		if len(res.Series[name]) != cfg.Queries {
			t.Fatalf("%s series length %d", name, len(res.Series[name]))
		}
	}
}

func TestFig9BudgetRespected(t *testing.T) {
	cfg := tiny()
	cfg.Rows = 4000
	cfg.Queries = 50
	res := Fig9(cfg)
	if len(res.Runs) != 3 {
		t.Fatal("3 budget settings expected")
	}
	// Partial maps must respect the 2x budget throughout.
	budget := res.Budgets[2]
	for q, s := range res.Runs[2][1].Storage {
		if s > budget {
			t.Fatalf("partial storage %d exceeds budget %d at query %d", s, budget, q)
		}
	}
	// Partial maps must use no more storage than full maps with no limit.
	lastFull := res.Runs[0][0].Storage[cfg.Queries-1]
	lastPart := res.Runs[0][1].Storage[cfg.Queries-1]
	if lastPart > lastFull {
		t.Errorf("partial (%d) should use less storage than full (%d)", lastPart, lastFull)
	}
}

func TestFig10SkewUsesLessStorage(t *testing.T) {
	cfg := tiny()
	cfg.Rows = 4000
	cfg.Queries = 50
	res := Fig10(cfg)
	// With S=0.1%, partial materializes only tiny chunks: far below full.
	lastFull := res.Uniform1K[0].Storage[cfg.Queries-1]
	lastPart := res.Uniform1K[1].Storage[cfg.Queries-1]
	if lastPart >= lastFull {
		t.Errorf("selective partial storage %d should be < full %d", lastPart, lastFull)
	}
}

func TestFig11And12Run(t *testing.T) {
	cfg := tiny()
	cfg.Rows = 3000
	cfg.Queries = 20
	r11 := Fig11(cfg)
	if len(r11.Total) != len(r11.Fracs) {
		t.Fatal("fig11 shape")
	}
	r12 := Fig12(cfg)
	if len(r12.Changes) == 0 {
		t.Fatal("fig12 empty")
	}
}

func TestFig13Runs(t *testing.T) {
	cfg := tiny()
	cfg.Rows = 3000
	cfg.Queries = 40
	res := Fig13(cfg)
	if len(res.Runs) != 3 {
		t.Fatal("3 change rates expected")
	}
}

func TestFig14SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	cfg := Config{Rows: 0, Queries: 0, Seed: 1, W: &buf}
	res := Fig14(cfg, 0.001, 3)
	if len(res.Series) != 12 {
		t.Fatalf("%d queries, want 12", len(res.Series))
	}
	for qid, m := range res.Series {
		for name, ys := range m {
			if len(ys) != 3 {
				t.Fatalf("Q%d %s: %d runs", qid, name, len(ys))
			}
		}
	}
	if !strings.Contains(buf.String(), "improvement over plain scan") {
		t.Fatal("missing improvement table")
	}
}

func TestMixedSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Seed: 1}
	res := Mixed(cfg, 0.001, 2)
	if len(res.Relative) != 24 {
		t.Fatalf("%d executions, want 24", len(res.Relative))
	}
}

func TestAblationsRun(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Rows = 3000
	cfg.Queries = 20
	cfg.W = &buf
	res := Ablations(cfg)
	if len(res.Pairs) != 4 {
		t.Fatalf("%d ablation pairs, want 4", len(res.Pairs))
	}
	for name, pair := range res.Pairs {
		if pair[0] <= 0 || pair[1] <= 0 {
			t.Errorf("%s: non-positive timing %v", name, pair)
		}
	}
	if !strings.Contains(buf.String(), "Ablations") {
		t.Fatal("missing ablation table")
	}
}
