package exp

import (
	"fmt"
	"math/rand"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/reorder"
	"crackstore/internal/store"
	"crackstore/internal/workload"
)

// Exp1Result reproduces Figure 4(a) and the Section 3.6 cost-breakdown
// table: response time of the 100th query for 2/4/8 tuple reconstructions.
type Exp1Result struct {
	TRCounts []int
	// LastCost[engine][i] is the cost of the final query with TRCounts[i]
	// tuple reconstructions.
	LastCost map[string][]time.Duration
	// Breakdown[engine] is the Sel/TR/Total split at the largest TR count.
	Breakdown map[string]engine.Cost
	// Series[engine][i] is the full per-query cost series at TRCounts[i].
	Series map[string][][]time.Duration
	// PrepCost is the presorting cost paid upfront by the presorted engine.
	PrepCost time.Duration
}

// Exp1 runs query q1 — select max(A2), max(A3), ... where v1 < A1 < v2 —
// with 20% selectivity over a 9-attribute relation (Section 3.6, Exp1).
func Exp1(cfg Config) *Exp1Result {
	base := buildUniform(cfg, "R", 9)
	res := &Exp1Result{
		TRCounts:  []int{2, 4, 8},
		LastCost:  map[string][]time.Duration{},
		Breakdown: map[string]engine.Cost{},
		Series:    map[string][][]time.Duration{},
	}
	kinds := []engine.Kind{engine.Presorted, engine.Sideways, engine.SelCrack, engine.Scan}
	for _, k := range kinds {
		name := k.String()
		for _, tr := range res.TRCounts {
			e := engine.New(k, cloneRel(base))
			if k == engine.Presorted {
				res.PrepCost = e.Prepare("A1")
			}
			projs := make([]string, tr)
			for i := range projs {
				projs[i] = fmt.Sprintf("A%d", i+2)
			}
			gen := genFor(cfg, 100)
			var last engine.Cost
			series := make([]time.Duration, 0, cfg.Queries)
			for q := 0; q < cfg.Queries; q++ {
				pred := gen.Range(0.2)
				last = runMaxQuery(e, []engine.AttrPred{{Attr: "A1", Pred: pred}}, projs)
				series = append(series, last.Total())
			}
			res.LastCost[name] = append(res.LastCost[name], last.Total())
			res.Series[name] = append(res.Series[name], series)
			if tr == res.TRCounts[len(res.TRCounts)-1] {
				res.Breakdown[name] = last
			}
		}
	}
	cfg.logf("\n== Exp1 (Fig 4a): response time of query %d ==\n", cfg.Queries)
	cfg.logf("%-12s", "#TR")
	for _, tr := range res.TRCounts {
		cfg.logf("%14d", tr)
	}
	cfg.logf("\n")
	for _, k := range kinds {
		name := k.String()
		cfg.logf("%-12s", name)
		for _, d := range res.LastCost[name] {
			cfg.logf("%14s", fmtDur(d))
		}
		cfg.logf("\n")
	}
	cfg.logf("\n== Exp1 cost breakdown at %d TRs (cf. Section 3.6 table) ==\n",
		res.TRCounts[len(res.TRCounts)-1])
	cfg.logf("%-12s%12s%12s%12s\n", "engine", "Tot", "TR", "Sel")
	for _, k := range kinds {
		b := res.Breakdown[k.String()]
		cfg.logf("%-12s%12s%12s%12s\n", k.String(), fmtDur(b.Total()), fmtDur(b.TR), fmtDur(b.Sel))
	}
	cfg.logf("(presorting cost excluded from presorted: %s)\n", fmtDur(res.PrepCost))
	// Export the full per-query series at the largest TR count as the
	// machine-readable perf trajectory for this figure.
	var series []Series
	for _, k := range kinds {
		name := k.String()
		if ss := res.Series[name]; len(ss) > 0 {
			series = append(series, Series{Name: name, Y: ss[len(ss)-1]})
		}
	}
	cfg.reportExportError(cfg.jsonSeries(sanitize("Exp1 (Fig 4a) per-query"), "Exp1 (Fig 4a) per-query", "query", series))
	return res
}

// Exp2Result reproduces Figure 4(b): per-query cost of sideways cracking
// relative to the plain scan engine while varying selectivity.
type Exp2Result struct {
	Selectivities []float64 // 0 = point queries
	// Relative[i][q] = sideways cost / scan cost at query q.
	Relative [][]float64
	// Sideways and Scan hold the raw series for shape assertions.
	Sideways, Scan [][]time.Duration
}

// Exp2 runs q1 with 2 tuple reconstructions across selectivities from point
// queries to 90% (Section 3.6, Exp2).
func Exp2(cfg Config) *Exp2Result {
	base := buildUniform(cfg, "R", 3)
	res := &Exp2Result{Selectivities: []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9}}
	projs := []string{"A2", "A3"}
	for _, sel := range res.Selectivities {
		scanE := engine.New(engine.Scan, cloneRel(base))
		sideE := engine.New(engine.Sideways, cloneRel(base))
		gen1 := genFor(cfg, 200)
		gen2 := genFor(cfg, 200)
		rel := make([]float64, cfg.Queries)
		sideY := make([]time.Duration, cfg.Queries)
		scanY := make([]time.Duration, cfg.Queries)
		for q := 0; q < cfg.Queries; q++ {
			var pred1, pred2 store.Pred
			if sel == 0 {
				pred1, pred2 = gen1.Point(), gen2.Point()
			} else {
				pred1, pred2 = gen1.Range(sel), gen2.Range(sel)
			}
			sc := runMaxQuery(scanE, []engine.AttrPred{{Attr: "A1", Pred: pred1}}, projs)
			sd := runMaxQuery(sideE, []engine.AttrPred{{Attr: "A1", Pred: pred2}}, projs)
			scanY[q] = sc.Total()
			sideY[q] = sd.Total()
			if sc.Total() > 0 {
				rel[q] = float64(sd.Total()) / float64(sc.Total())
			}
		}
		res.Relative = append(res.Relative, rel)
		res.Sideways = append(res.Sideways, sideY)
		res.Scan = append(res.Scan, scanY)
	}
	cfg.logf("\n== Exp2 (Fig 4b): sideways cost relative to plain scan ==\n")
	cfg.logf("%-8s", "query")
	for _, s := range res.Selectivities {
		if s == 0 {
			cfg.logf("%10s", "point")
		} else {
			cfg.logf("%9.0f%%", s*100)
		}
	}
	cfg.logf("\n")
	for _, i := range SamplePoints(cfg.Queries) {
		cfg.logf("%-8d", i+1)
		for si := range res.Selectivities {
			cfg.logf("%10.3f", res.Relative[si][i])
		}
		cfg.logf("\n")
	}
	return res
}

// Exp3Result reproduces the Section 3.6 "Reordering" inset: tuple
// reconstruction cost for 1-8 projections under four strategies.
type Exp3Result struct {
	TRCounts []int
	// Cost[strategy][i] for TRCounts[i] reconstructions.
	Cost map[string][]time.Duration
}

// Exp3 measures ordered TR (plain), unordered TR (selection cracking),
// sort + ordered TR, and radix-cluster + clustered TR.
func Exp3(cfg Config) *Exp3Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows
	resultSize := n / 5 // 20% selectivity intermediate
	cols := make([]*store.Column, 8)
	for i := range cols {
		vals := make([]Value, n)
		for j := range vals {
			vals[j] = Value(rng.Int63n(int64(n)))
		}
		cols[i] = store.NewColumn(fmt.Sprintf("A%d", i+2), vals)
	}
	ordered := make([]int, resultSize)
	stride := n / resultSize
	for i := range ordered {
		ordered[i] = i * stride
	}
	unordered := append([]int(nil), ordered...)
	rng.Shuffle(len(unordered), func(i, j int) { unordered[i], unordered[j] = unordered[j], unordered[i] })

	res := &Exp3Result{TRCounts: []int{1, 2, 4, 8}, Cost: map[string][]time.Duration{}}
	clusterSpan := 4096
	for _, k := range res.TRCounts {
		t0 := time.Now()
		for i := 0; i < k; i++ {
			store.Reconstruct(cols[i], ordered)
		}
		res.Cost["ordered (plain)"] = append(res.Cost["ordered (plain)"], time.Since(t0))

		t0 = time.Now()
		for i := 0; i < k; i++ {
			store.Reconstruct(cols[i], unordered)
		}
		res.Cost["unordered (selcrack)"] = append(res.Cost["unordered (selcrack)"], time.Since(t0))

		t0 = time.Now()
		sorted := reorder.Sort(unordered)
		for i := 0; i < k; i++ {
			store.Reconstruct(cols[i], sorted)
		}
		res.Cost["sort + TR"] = append(res.Cost["sort + TR"], time.Since(t0))

		t0 = time.Now()
		clustered := reorder.RadixCluster(unordered, clusterSpan, n)
		for i := 0; i < k; i++ {
			store.Reconstruct(cols[i], clustered)
		}
		res.Cost["radix + TR"] = append(res.Cost["radix + TR"], time.Since(t0))
	}
	cfg.logf("\n== Exp3: reordering intermediates (TR cost) ==\n")
	cfg.logf("%-24s", "#TR")
	for _, k := range res.TRCounts {
		cfg.logf("%12d", k)
	}
	cfg.logf("\n")
	for _, name := range []string{"ordered (plain)", "unordered (selcrack)", "sort + TR", "radix + TR"} {
		cfg.logf("%-24s", name)
		for _, d := range res.Cost[name] {
			cfg.logf("%12s", fmtDur(d))
		}
		cfg.logf("\n")
	}
	return res
}

// Exp4Result reproduces Figure 5: join query q2 with three selections and
// two post-join reconstructions per side.
type Exp4Result struct {
	// Total, PreJoin, PostTR per engine: per-query series.
	Total, PreJoin, PostTR map[string][]time.Duration
	PrepCost               time.Duration
}

// Exp4 runs q2 over two 7-attribute relations with 50/30/20% conjunctive
// selectivities per side (Section 3.6, Exp4).
func Exp4(cfg Config) *Exp4Result {
	cfgR := cfg
	cfgR.Seed = cfg.Seed
	relR := buildUniform(cfgR, "R", 7)
	cfgS := cfg
	cfgS.Seed = cfg.Seed + 1
	relS := buildUniform(cfgS, "S", 7)

	res := &Exp4Result{
		Total:   map[string][]time.Duration{},
		PreJoin: map[string][]time.Duration{},
		PostTR:  map[string][]time.Duration{},
	}
	kinds := []engine.Kind{engine.Presorted, engine.Sideways, engine.SelCrack, engine.Scan}
	for _, k := range kinds {
		le := engine.New(k, cloneRel(relR))
		re := engine.New(k, cloneRel(relS))
		if k == engine.Presorted {
			res.PrepCost = le.Prepare("A5") + re.Prepare("A5")
		}
		gen := genFor(cfg, 300)
		name := k.String()
		for q := 0; q < cfg.Queries; q++ {
			// Most selective predicate first (A5: 20%, A4: 30%, A3: 50%).
			lPreds := []engine.AttrPred{
				{Attr: "A5", Pred: gen.Range(0.2)},
				{Attr: "A4", Pred: gen.Range(0.3)},
				{Attr: "A3", Pred: gen.Range(0.5)},
			}
			rPreds := []engine.AttrPred{
				{Attr: "A5", Pred: gen.Range(0.2)},
				{Attr: "A4", Pred: gen.Range(0.3)},
				{Attr: "A3", Pred: gen.Range(0.5)},
			}
			_, jc := engine.JoinMax(
				engine.JoinSide{E: le, Preds: lPreds, JoinAttr: "A7", Projs: []string{"A1", "A2"}},
				engine.JoinSide{E: re, Preds: rPreds, JoinAttr: "A7", Projs: []string{"A1", "A2"}},
			)
			res.Total[name] = append(res.Total[name], jc.Total())
			res.PreJoin[name] = append(res.PreJoin[name], jc.PreSel)
			res.PostTR[name] = append(res.PostTR[name], jc.PostTR)
		}
	}
	for _, part := range []struct {
		title string
		data  map[string][]time.Duration
	}{
		{"Exp4 (Fig 5a): join query total cost", res.Total},
		{"Exp4 (Fig 5b): select and TR cost before join", res.PreJoin},
		{"Exp4 (Fig 5c): TR cost after join", res.PostTR},
	} {
		var series []Series
		for _, k := range kinds {
			series = append(series, Series{Name: k.String(), Y: part.data[k.String()]})
		}
		printSeries(cfg, part.title, "query", series)
	}
	cfg.logf("(presorting cost: %s)\n", fmtDur(res.PrepCost))
	return res
}

// Exp5Result reproduces Figure 6: skewed workload.
type Exp5Result struct {
	Series   map[string][]time.Duration
	PrepCost time.Duration
}

// Exp5 runs q3 — select max(B), max(C) where v1<A<v2 — with 20%
// selectivity where 9/10 queries hit the first half of the domain.
func Exp5(cfg Config) *Exp5Result {
	base := buildUniform(cfg, "R", 3)
	res := &Exp5Result{Series: map[string][]time.Duration{}}
	kinds := []engine.Kind{engine.Presorted, engine.Sideways, engine.SelCrack, engine.Scan}
	projs := []string{"A2", "A3"}
	for _, k := range kinds {
		e := engine.New(k, cloneRel(base))
		if k == engine.Presorted {
			res.PrepCost = e.Prepare("A1")
		}
		gen := genFor(cfg, 400)
		name := k.String()
		for q := 0; q < cfg.Queries; q++ {
			pred := gen.Skewed(0.2, 0.5, 0.9)
			c := runMaxQuery(e, []engine.AttrPred{{Attr: "A1", Pred: pred}}, projs)
			res.Series[name] = append(res.Series[name], c.Total())
		}
	}
	var series []Series
	for _, k := range kinds {
		series = append(series, Series{Name: k.String(), Y: res.Series[k.String()]})
	}
	printSeries(cfg, "Exp5 (Fig 6): skewed workload", "query", series)
	cfg.logf("(presorting cost: %s)\n", fmtDur(res.PrepCost))
	return res
}

// Exp6Result reproduces Figure 7: query performance under updates.
type Exp6Result struct {
	Scenario string
	Series   map[string][]time.Duration
}

// Exp6 runs q3 queries interleaved with updates per the HFLV or LFHV
// scenario. Presorted data is excluded, as in the paper (no efficient way
// to maintain sorted copies under updates).
func Exp6(cfg Config, sc workload.UpdateScenario) *Exp6Result {
	base := buildUniform(cfg, "R", 3)
	res := &Exp6Result{Scenario: sc.Name, Series: map[string][]time.Duration{}}
	kinds := []engine.Kind{engine.Sideways, engine.SelCrack, engine.Scan}
	projs := []string{"A2", "A3"}
	for _, k := range kinds {
		e := engine.New(k, cloneRel(base))
		gen := genFor(cfg, 500)
		urng := rand.New(rand.NewSource(cfg.Seed + 600))
		live := make([]int, cfg.Rows)
		for i := range live {
			live[i] = i
		}
		name := k.String()
		for q := 0; q < cfg.Queries; q++ {
			if q > 0 && q%sc.Frequency == 0 {
				for u := 0; u < sc.Volume; u++ {
					i := urng.Intn(len(live))
					e.Delete(live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					key := e.Insert(gen.Value(), gen.Value(), gen.Value())
					live = append(live, key)
				}
			}
			pred := gen.Range(0.2)
			c := runMaxQuery(e, []engine.AttrPred{{Attr: "A1", Pred: pred}}, projs)
			res.Series[name] = append(res.Series[name], c.Total())
		}
	}
	var series []Series
	for _, k := range kinds {
		series = append(series, Series{Name: k.String(), Y: res.Series[k.String()]})
	}
	printSeries(cfg, "Exp6 (Fig 7): updates, scenario "+sc.Name, "query", series)
	return res
}
