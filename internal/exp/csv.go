package exp

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// CSVDir, when non-empty on a Config, makes the experiment printers also
// write machine-readable CSV files (one per figure panel) for plotting.
// Columns: x (query/run number) followed by one column per series, values
// in microseconds.
func (c Config) csvSeries(name string, xlabel string, series []Series) error {
	if c.CSVDir == "" || len(series) == 0 {
		return nil
	}
	if err := os.MkdirAll(c.CSVDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(c.CSVDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{xlabel}
	for _, s := range series {
		header = append(header, s.Name+"_us")
	}
	if err := w.Write(header); err != nil {
		return err
	}
	n := len(series[0].Y)
	for i := 0; i < n; i++ {
		row := []string{strconv.Itoa(i + 1)}
		for _, s := range series {
			var v time.Duration
			if i < len(s.Y) {
				v = s.Y[i]
			}
			row = append(row, strconv.FormatInt(v.Microseconds(), 10))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// csvStorage writes a storage trace (tuples per query) per run.
func (c Config) csvStorage(name string, runs map[string][]int) error {
	if c.CSVDir == "" || len(runs) == 0 {
		return nil
	}
	if err := os.MkdirAll(c.CSVDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(c.CSVDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	names := make([]string, 0, len(runs))
	n := 0
	for k, v := range runs {
		names = append(names, k)
		if len(v) > n {
			n = len(v)
		}
	}
	sortStrings(names)
	header := []string{"query"}
	for _, k := range names {
		header = append(header, k+"_tuples")
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := []string{strconv.Itoa(i + 1)}
		for _, k := range names {
			v := 0
			if i < len(runs[k]) {
				v = runs[k][i]
			}
			row = append(row, strconv.Itoa(v))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// sanitize turns a figure title into a CSV file stem.
func sanitize(title string) string {
	out := make([]rune, 0, len(title))
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		case r == ' ', r == ':', r == '(', r == ')', r == '/', r == ',':
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '_' {
		out = out[:len(out)-1]
	}
	return string(out)
}

// reportExportError surfaces CSV/JSON write problems without failing
// experiments.
func (c Config) reportExportError(err error) {
	if err != nil {
		fmt.Fprintf(c.writer(), "(series export failed: %v)\n", err)
	}
}
