package exp

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestAdaptiveWorkloadsSmoke runs the policy-vs-pattern comparison at toy
// scale: every (pattern, policy) series exists with one sample per query,
// the sequential sweep is cheaper under the stochastic policy than under
// plain cracking (the artifact's headline claim, with a wide margin at
// this scale), and the emitted JSON is self-describing.
func TestAdaptiveWorkloadsSmoke(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Rows: 20000, Queries: 200, Seed: 1, W: io.Discard, JSONDir: dir}
	out := AdaptiveWorkloads(cfg, nil, nil)

	for _, pattern := range []string{"random", "sequential", "zoomin", "periodic"} {
		for _, pol := range []string{"default", "stochastic", "capped"} {
			s, ok := out[pattern+"/"+pol]
			if !ok {
				t.Fatalf("missing series %s/%s", pattern, pol)
			}
			if len(s.Y) != cfg.Queries {
				t.Fatalf("%s: %d samples, want %d", s.Name, len(s.Y), cfg.Queries)
			}
			if s.Policy != pol || s.Pattern != pattern {
				t.Fatalf("%s: metadata %q/%q not recorded", s.Name, s.Policy, s.Pattern)
			}
		}
	}
	if def, sto := sumDur(out["sequential/default"].Y), sumDur(out["sequential/stochastic"].Y); sto >= def {
		t.Errorf("sequential sweep: stochastic %v not faster than default %v", sto, def)
	}

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_adaptive_workloads.json"))
	if err != nil {
		t.Fatalf("artifact missing: %v", err)
	}
	var doc struct {
		Title  string            `json:"title"`
		Meta   map[string]string `json:"meta"`
		Series []struct {
			Name    string `json:"name"`
			Policy  string `json:"policy"`
			Pattern string `json:"pattern"`
		} `json:"series"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if doc.Meta["rows"] != "20000" || doc.Meta["queries"] != "200" {
		t.Fatalf("artifact meta not self-describing: %v", doc.Meta)
	}
	if len(doc.Series) != 12 {
		t.Fatalf("artifact has %d series, want 12", len(doc.Series))
	}
	for _, s := range doc.Series {
		if s.Policy == "" || s.Pattern == "" {
			t.Fatalf("series %q lacks policy/pattern metadata", s.Name)
		}
	}
}
