package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// benchSeriesJSON is the machine-readable form of one figure panel, written
// as BENCH_<stem>.json when Config.JSONDir is set. Cumulative latencies give
// future PRs a perf trajectory to diff against: cumulative_us[i] is the
// total cost of answering queries 1..i+1.
type benchSeriesJSON struct {
	Title  string            `json:"title"`
	XLabel string            `json:"xlabel"`
	Meta   map[string]string `json:"meta,omitempty"`
	Series []benchLineJSON   `json:"series"`
}

type benchLineJSON struct {
	Name         string  `json:"name"`
	Policy       string  `json:"policy,omitempty"`
	Pattern      string  `json:"pattern,omitempty"`
	Transport    string  `json:"transport,omitempty"`
	Conns        int     `json:"conns,omitempty"`
	Pipeline     int     `json:"pipeline,omitempty"`
	Errors       int     `json:"errors,omitempty"`
	FaultRate    float64 `json:"fault_rate,omitempty"`
	Retries      int     `json:"retries,omitempty"`
	Hedges       int     `json:"hedges,omitempty"`
	Sheds        int     `json:"sheds,omitempty"`
	Redials      int     `json:"redials,omitempty"`
	CPUs         int     `json:"cpus,omitempty"`
	ReaderWaitUs int64   `json:"reader_wait_us,omitempty"`
	ReaderWaits  int64   `json:"reader_waits,omitempty"`
	Snapshots    int64   `json:"snapshots,omitempty"`
	Reclaimed    int64   `json:"reclaimed,omitempty"`
	PerQueryUs   []int64 `json:"per_query_us"`
	CumulativeUs []int64 `json:"cumulative_us"`
}

// WriteSeriesJSON writes one panel of per-query latency series in the
// BENCH_<name>.json format used by the experiment harness, so ad-hoc
// benchmark drivers (crackbench -clients) emit series future PRs can diff
// against.
func WriteSeriesJSON(dir, name, title, xlabel string, series []Series) error {
	return Config{JSONDir: dir}.jsonSeries(name, title, xlabel, series)
}

// WriteSeriesJSONMeta is WriteSeriesJSON with document-level metadata
// (rows, queries, policy caps, ...) recorded in the artifact.
func WriteSeriesJSONMeta(dir, name, title, xlabel string, meta map[string]string, series []Series) error {
	return Config{JSONDir: dir, Meta: meta}.jsonSeries(name, title, xlabel, series)
}

// jsonSeries writes the full per-query and cumulative latency series of one
// figure panel as BENCH_<name>.json into Config.JSONDir.
func (c Config) jsonSeries(name string, title, xlabel string, series []Series) error {
	if c.JSONDir == "" || len(series) == 0 {
		return nil
	}
	if err := os.MkdirAll(c.JSONDir, 0o755); err != nil {
		return err
	}
	doc := benchSeriesJSON{Title: title, XLabel: xlabel, Meta: c.Meta}
	for _, s := range series {
		line := benchLineJSON{
			Name:         s.Name,
			Policy:       s.Policy,
			Pattern:      s.Pattern,
			Transport:    s.Transport,
			Conns:        s.Conns,
			Pipeline:     s.Pipeline,
			Errors:       s.Errors,
			FaultRate:    s.FaultRate,
			Retries:      s.Retries,
			Hedges:       s.Hedges,
			Sheds:        s.Sheds,
			Redials:      s.Redials,
			CPUs:         s.CPUs,
			ReaderWaitUs: s.ReaderWait.Microseconds(),
			ReaderWaits:  s.ReaderWaits,
			Snapshots:    s.Snapshots,
			Reclaimed:    s.Reclaimed,
			PerQueryUs:   make([]int64, len(s.Y)),
			CumulativeUs: make([]int64, len(s.Y)),
		}
		var cum time.Duration
		for i, d := range s.Y {
			cum += d
			line.PerQueryUs[i] = d.Microseconds()
			line.CumulativeUs[i] = cum.Microseconds()
		}
		doc.Series = append(doc.Series, line)
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(filepath.Join(c.JSONDir, "BENCH_"+name+".json"), data, 0o644)
}
