package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"crackstore/internal/crack"
	"crackstore/internal/engine"
	"crackstore/internal/store"
)

func sortedCol(res engine.Result, attr string) []string {
	out := make([]string, res.N)
	for i := 0; i < res.N; i++ {
		out[i] = fmt.Sprint(res.Cols[attr][i])
	}
	sort.Strings(out)
	return out
}

// TestShardedPolicyMatchesUnsharded: a sharded engine built with
// Options.Policy must answer exactly like an unsharded engine under the
// same policy (and therefore like any default-policy engine).
func TestShardedPolicyMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rel := buildRel(rng, 5000, 1000)
	clone := store.NewRelation(rel.Name, rel.Order...)
	for _, a := range rel.Order {
		clone.MustColumn(a).Vals = append([]store.Value(nil), rel.MustColumn(a).Vals...)
	}
	pol := crack.Policy{Kind: crack.Capped, Cap: 256}
	sharded := New(engine.SelCrack, rel, 3, Options{Attr: "A", Policy: pol})
	single := engine.NewWithPolicy(engine.SelCrack, clone, pol)
	for q := 0; q < 25; q++ {
		lo := rng.Int63n(1000)
		query := engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(lo, lo+1+rng.Int63n(120))}},
			Projs: []string{"B"},
		}
		sres, _ := sharded.Query(query)
		ures, _ := single.Query(query)
		sr, ur := sortedCol(sres, "B"), sortedCol(ures, "B")
		if len(sr) != len(ur) {
			t.Fatalf("q%d: sharded %d rows, unsharded %d", q, len(sr), len(ur))
		}
		for i := range sr {
			if sr[i] != ur[i] {
				t.Fatalf("q%d: results diverged at %d", q, i)
			}
		}
	}
	// SetCrackPolicy forwards to every shard without error.
	sharded.SetCrackPolicy(crack.Policy{Kind: crack.Stochastic, Seed: 1})
}
