// Package shard implements a partitioned engine: one relation
// range-partitioned (or hash-partitioned) across N inner engines, each
// independently wrapped in engine.Concurrent.
//
// Cracking makes reads into writes, so even the probe/execute protocol of
// engine.Concurrent serializes every reader behind a crack — one RWMutex
// guards the whole relation. Sharding splits that lock: a query that must
// crack shard 3 takes only shard 3's write lock, while read-only hits on
// shards 0-2 keep flowing under their shared locks. This is the classic
// partition/fan-out/merge recipe applied to a self-organizing store, and
// the probe layer is what makes it safe: every inner engine can report,
// read-only, whether a query would reorganize it.
//
// Partitioning is by value range over a chosen primary attribute: shard i
// owns the half-open value band [cut[i-1], cut[i]) of that attribute, with
// the outer bands open-ended. Range partitioning enables pruning —
// conjunctive queries that constrain the partition attribute skip every
// shard whose band cannot intersect the predicate, and never touch those
// shards' locks at all. When the partition attribute cannot support n
// distinct bands (too few distinct values, or an empty relation), the
// engine falls back to hash partitioning, which still distributes load and
// still prunes point predicates, but cannot prune ranges.
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"crackstore/internal/crack"
	"crackstore/internal/engine"
	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// Options tunes the sharded engine.
type Options struct {
	// Attr is the partition attribute; "" means the relation's first
	// attribute. Range pruning applies to predicates over this attribute.
	Attr string
	// Hash forces hash partitioning even when the attribute could be
	// range-partitioned (useful for workloads whose predicates never touch
	// the partition attribute, where balanced load matters more than
	// pruning).
	Hash bool
	// Policy is the adaptive cracking policy (crack.Policy) applied to
	// every inner engine at construction; the zero value is the default
	// crack-at-query-bounds behavior.
	Policy crack.Policy
	// Snapshot wraps every shard in engine.Snapshot instead of
	// engine.Concurrent: per-shard lock-free snapshot reads on top of
	// per-shard write serialization. Kinds engine.Snapshot does not
	// support fall back to Concurrent per shard.
	Snapshot bool
}

// location maps a global tuple key to its shard and shard-local key.
type location struct {
	shard int
	key   int
}

// Engine is a relation partitioned across n inner engines. It implements
// engine.Engine; every inner engine is wrapped in engine.Concurrent, so the
// sharded engine is safe for any number of goroutines without further
// wrapping (it carries the SharedEngine marker).
type Engine struct {
	kind    engine.Kind
	attr    string  // partition attribute
	attrIdx int     // position of attr in the relation's attribute order
	hash    bool    // hash partitioning (range otherwise)
	cuts    []Value // range mode: n-1 ascending boundaries; shard i owns [cuts[i-1], cuts[i])
	shards  []engine.Engine

	mu   sync.RWMutex
	keys []location // global key -> location; grows on Insert
}

// New partitions rel across n engines of the given kind. Rows are routed by
// opts.Attr (default: the first attribute): range partitioning with
// n-quantile boundaries computed from the base data, or hash partitioning
// when opts.Hash is set or the attribute's values cannot form n distinct
// bands. The relation's rows are copied into per-shard relations; rel
// itself is not retained. Global tuple keys follow build order (row i of
// rel keeps key i; Insert appends), matching the key sequence of an
// unsharded engine over the same rows.
func New(kind engine.Kind, rel *store.Relation, n int, opts Options) *Engine {
	if n < 1 {
		panic("shard: shard count must be >= 1")
	}
	attr := opts.Attr
	if attr == "" {
		if len(rel.Order) == 0 {
			panic("shard: relation has no attributes")
		}
		attr = rel.Order[0]
	}
	attrIdx := -1
	for i, a := range rel.Order {
		if a == attr {
			attrIdx = i
		}
	}
	if attrIdx < 0 {
		panic(fmt.Sprintf("shard: relation %q has no attribute %q", rel.Name, attr))
	}

	s := &Engine{kind: kind, attr: attr, attrIdx: attrIdx, hash: opts.Hash}
	if !s.hash {
		s.cuts = quantileCuts(rel.MustColumn(attr).Vals, n)
		if len(s.cuts) != n-1 {
			// Unpartitionable: not enough distinct values (or no rows) to
			// form n non-empty bands. Fall back to hashing.
			s.hash = true
			s.cuts = nil
		}
	}

	// Split the base rows into per-shard relations, recording the global
	// key map as we go.
	rels := make([]*store.Relation, n)
	for i := range rels {
		rels[i] = store.NewRelation(fmt.Sprintf("%s/%d", rel.Name, i), rel.Order...)
	}
	cols := make([]*store.Column, len(rel.Order))
	for i, a := range rel.Order {
		cols[i] = rel.MustColumn(a)
	}
	nrows := rel.NumRows()
	s.keys = make([]location, nrows)
	vals := make([]Value, len(cols))
	for row := 0; row < nrows; row++ {
		for i, c := range cols {
			vals[i] = c.Vals[row]
		}
		sh := s.route(vals[attrIdx], n)
		s.keys[row] = location{shard: sh, key: rels[sh].NumRows()}
		rels[sh].AppendRow(vals...)
	}
	s.shards = make([]engine.Engine, n)
	for i := range s.shards {
		inner := engine.NewWithPolicy(kind, rels[i], opts.Policy)
		if opts.Snapshot {
			s.shards[i] = engine.Snapshot(inner)
		} else {
			s.shards[i] = engine.Concurrent(inner)
		}
	}
	return s
}

// ConcStats implements engine.ConcObservable by summing the per-shard
// wrapper statistics.
func (s *Engine) ConcStats() engine.ConcStats {
	var total engine.ConcStats
	for _, sh := range s.shards {
		if cs, ok := engine.ConcStatsOf(sh); ok {
			total.ReaderWait += cs.ReaderWait
			total.ReaderWaits += cs.ReaderWaits
			total.Snapshots += cs.Snapshots
			total.Reclaimed += cs.Reclaimed
		}
	}
	return total
}

// KernelReport implements engine.KernelObservable by summing the
// per-shard kernel counters. Each shard's own wrapper takes its lock, so
// this is safe on a live engine.
func (s *Engine) KernelReport() (engine.KernelReport, bool) {
	var total engine.KernelReport
	any := false
	for _, sh := range s.shards {
		kr, ok := engine.KernelReportOf(sh)
		if !ok {
			continue
		}
		any = true
		total.InTwo += kr.InTwo
		total.InThree += kr.InThree
		total.Visited += kr.Visited
		total.Moved += kr.Moved
		total.Aux += kr.Aux
		total.Pieces += kr.Pieces
		total.Columns += kr.Columns
	}
	return total, any
}

// SnapshotStats implements engine.SnapObservable by summing the
// per-shard snapshot lifecycle counters (zero when the shards are not
// snapshot-wrapped).
func (s *Engine) SnapshotStats() engine.SnapshotStats {
	var total engine.SnapshotStats
	for _, sh := range s.shards {
		if ss, ok := engine.SnapshotStatsOf(sh); ok {
			total.Published += ss.Published
			total.Reclaimed += ss.Reclaimed
			total.Limbo += ss.Limbo
			total.Readers += ss.Readers
		}
	}
	return total
}

// SetCrackPolicy forwards the adaptive cracking policy to every shard,
// reporting whether the shard engines crack. Like the per-engine setters,
// call it before the first query.
func (s *Engine) SetCrackPolicy(pol crack.Policy) bool {
	applied := false
	for _, sh := range s.shards {
		applied = engine.SetPolicy(sh, pol) || applied
	}
	return applied
}

// quantileCuts returns the n-1 ascending shard boundaries (quantiles of
// vals), or a shorter slice when the values cannot support n distinct
// bands.
func quantileCuts(vals []Value, n int) []Value {
	if n < 2 || len(vals) < n {
		return nil
	}
	sorted := append([]Value(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cuts := make([]Value, 0, n-1)
	for i := 1; i < n; i++ {
		c := sorted[i*len(sorted)/n]
		if len(cuts) == 0 && c > sorted[0] || len(cuts) > 0 && c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	return cuts
}

// route returns the shard owning partition value v among n shards.
func (s *Engine) route(v Value, n int) int {
	if s.hash {
		return int(store.Mix64(uint64(v)) % uint64(n))
	}
	// First boundary strictly above v; the outer bands are open-ended.
	return sort.Search(len(s.cuts), func(i int) bool { return v < s.cuts[i] })
}

// Shards returns the shard count.
func (s *Engine) Shards() int { return len(s.shards) }

// Attr returns the partition attribute.
func (s *Engine) Attr() string { return s.attr }

// Hashed reports whether the engine fell back to (or was forced into)
// hash partitioning.
func (s *Engine) Hashed() bool { return s.hash }

func (s *Engine) Name() string {
	mode := "range"
	if s.hash {
		mode = "hash"
	}
	return fmt.Sprintf("sharded %s (%d %s shards on %s)", s.kind, len(s.shards), mode, s.attr)
}

func (s *Engine) Kind() engine.Kind { return s.kind }

// SharedEngine marks the sharded engine as safe to share across goroutines
// without an engine.Concurrent wrapper: every shard carries its own
// read-write lock, and the key table has its own mutex. A global wrapper
// on top would re-serialize cracks across shards — exactly what sharding
// exists to avoid. engine.IsShared and serve.New honor this marker.
func (s *Engine) SharedEngine() {}

// ---------------------------------------------------------------------------
// Shard pruning.
//
// Shard bands are ordered, so the reach of one predicate over the
// partition attribute is always a contiguous run of shards, and pruning
// reduces to interval arithmetic — no per-query allocation on the hot
// path. Conjunctions intersect the per-predicate intervals exactly;
// disjunctions take the covering interval (a safe over-approximation:
// shards between two disjunct reaches hold no matching rows and simply
// contribute nothing).

// predSpan returns the half-open shard interval predicate p (over the
// partition attribute) can reach.
func (s *Engine) predSpan(p store.Pred) (int, int) {
	n := len(s.shards)
	if s.hash {
		// Hash routing can prune only predicates that match exactly one
		// value. Values are integers, so that covers more than store.Point:
		// normalize exclusive bounds inward and compare (e.g. the half-open
		// unit range [x, x+1) is a point lookup too).
		lo, hi := p.Lo, p.Hi
		if !p.LoIncl && lo < math.MaxInt64 {
			lo++
		}
		if !p.HiIncl && hi > math.MinInt64 {
			hi--
		}
		if lo == hi {
			r := s.route(lo, n)
			return r, r + 1
		}
		return 0, n
	}
	// First shard whose exclusive upper cut is above p.Lo, and last shard
	// whose inclusive lower cut is still reachable by p's upper bound.
	// Linear scans: shard counts are small (a handful of cuts), and on the
	// per-query hot path a straight loop beats sort.Search's closure
	// indirection.
	lo := 0
	for lo < len(s.cuts) && p.Lo >= s.cuts[lo] {
		lo++
	}
	hi := 0
	for hi < len(s.cuts) && (p.Hi > s.cuts[hi] || (p.Hi == s.cuts[hi] && p.HiIncl)) {
		hi++
	}
	return lo, hi + 1
}

// span returns the half-open shard interval [lo, hi) that q can touch.
// Conjunctive queries intersect the reach of every predicate over the
// partition attribute; disjunctive queries are prunable only when every
// predicate is over the partition attribute (any other predicate can match
// rows in any shard), in which case the per-predicate reaches union into
// their covering interval. An empty interval (lo == hi) means no shard can
// hold a match.
func (s *Engine) span(q engine.Query) (int, int) {
	n := len(s.shards)
	if len(q.Preds) == 0 {
		return 0, n
	}
	if q.Disjunctive {
		for _, ap := range q.Preds {
			if ap.Attr != s.attr {
				return 0, n
			}
		}
		lo, hi := n, 0
		for _, ap := range q.Preds {
			plo, phi := s.predSpan(ap.Pred)
			if plo < lo {
				lo = plo
			}
			if phi > hi {
				hi = phi
			}
		}
		if lo > hi {
			return 0, 0
		}
		return lo, hi
	}
	lo, hi := 0, n
	for _, ap := range q.Preds {
		if ap.Attr != s.attr {
			continue
		}
		plo, phi := s.predSpan(ap.Pred)
		if plo > lo {
			lo = plo
		}
		if phi < hi {
			hi = phi
		}
	}
	if lo > hi {
		return lo, lo
	}
	return lo, hi
}

// ---------------------------------------------------------------------------
// Query fan-out.

// mergeResults concatenates per-shard results in shard order.
func mergeResults(parts []engine.Result, projs []string) engine.Result {
	out := engine.Result{Cols: make(map[string][]Value, len(projs))}
	for _, p := range parts {
		out.N += p.N
	}
	for _, attr := range projs {
		col := make([]Value, 0, out.N)
		for _, p := range parts {
			col = append(col, p.Cols[attr]...)
		}
		out.Cols[attr] = col
	}
	return out
}

// addCost accumulates per-shard cost splits. The sum is aggregate work
// across shards, not wall-clock time: shards execute in parallel, so the
// elapsed time of a fanned-out query is bounded by its slowest shard.
func addCost(total *engine.Cost, c engine.Cost) {
	total.Sel += c.Sel
	total.TR += c.TR
}

// Query fans q out to the relevant shards and merges. Each shard's
// Concurrent wrapper independently decides between its read-only fast path
// and its write lock, so a crack on one shard never blocks read-only hits
// on the others. A query pruned to one shard — the common case for narrow
// predicates under range partitioning — is answered by that shard
// directly, with no merge. Multi-shard queries fan out in parallel when
// the runtime has CPUs to run them on, sequentially otherwise (goroutine
// handoff on a single-CPU box only adds scheduling latency).
func (s *Engine) Query(q engine.Query) (engine.Result, engine.Cost) {
	lo, hi := s.span(q)
	if hi-lo == 1 {
		return s.shards[lo].Query(q)
	}
	var cost engine.Cost
	parts := make([]engine.Result, hi-lo)
	if runtime.GOMAXPROCS(0) > 1 {
		costs := make([]engine.Cost, hi-lo)
		var wg sync.WaitGroup
		for sh := lo; sh < hi; sh++ {
			wg.Add(1)
			go func(sh int) {
				defer wg.Done()
				parts[sh-lo], costs[sh-lo] = s.shards[sh].Query(q)
			}(sh)
		}
		wg.Wait()
		for _, c := range costs {
			addCost(&cost, c)
		}
	} else {
		for sh := lo; sh < hi; sh++ {
			var c engine.Cost
			parts[sh-lo], c = s.shards[sh].Query(q)
			addCost(&cost, c)
		}
	}
	return mergeResults(parts, q.Projs), cost
}

// Probe reports whether q would physically reorganize any relevant shard.
// It fans out read-only: no shard's write lock is touched.
func (s *Engine) Probe(q engine.Query) bool {
	if len(q.Preds) == 0 {
		return true
	}
	lo, hi := s.span(q)
	for sh := lo; sh < hi; sh++ {
		if s.shards[sh].Probe(q) {
			return true
		}
	}
	return false
}

// QueryRO answers q if no relevant shard needs to reorganize; ok is false
// as soon as one shard refuses. Never mutates.
func (s *Engine) QueryRO(q engine.Query) (engine.Result, engine.Cost, bool) {
	if len(q.Preds) == 0 {
		return engine.Result{}, engine.Cost{}, false
	}
	lo, hi := s.span(q)
	if hi-lo == 1 {
		return s.shards[lo].QueryRO(q)
	}
	parts := make([]engine.Result, hi-lo)
	var cost engine.Cost
	for sh := lo; sh < hi; sh++ {
		res, c, ok := s.shards[sh].QueryRO(q)
		if !ok {
			return engine.Result{}, engine.Cost{}, false
		}
		parts[sh-lo] = res
		addCost(&cost, c)
	}
	return mergeResults(parts, q.Projs), cost, true
}

// ---------------------------------------------------------------------------
// Updates and maintenance.

// Insert routes the tuple to the shard owning its partition value and
// returns its global key. Only that shard's write lock is taken.
func (s *Engine) Insert(vals ...Value) int {
	if len(vals) <= s.attrIdx {
		panic("shard: Insert arity mismatch")
	}
	sh := s.route(vals[s.attrIdx], len(s.shards))
	local := s.shards[sh].Insert(vals...)
	s.mu.Lock()
	g := len(s.keys)
	s.keys = append(s.keys, location{shard: sh, key: local})
	s.mu.Unlock()
	return g
}

// Delete removes the tuple with the given global key; unknown keys are
// ignored. Only the owning shard's write lock is taken.
func (s *Engine) Delete(key int) {
	s.mu.RLock()
	if key < 0 || key >= len(s.keys) {
		s.mu.RUnlock()
		return
	}
	loc := s.keys[key]
	s.mu.RUnlock()
	s.shards[loc.shard].Delete(loc.key)
}

// Prepare fans out to every shard; the returned duration is the summed
// per-shard preparation work.
func (s *Engine) Prepare(attrs ...string) time.Duration {
	var total time.Duration
	for _, e := range s.shards {
		total += e.Prepare(attrs...)
	}
	return total
}

// Storage returns the summed auxiliary-structure footprint across shards.
func (s *Engine) Storage() int {
	total := 0
	for _, e := range s.shards {
		total += e.Storage()
	}
	return total
}

// JoinInput fans the selection side of a join out to the relevant shards
// and concatenates the join columns; the fetcher dispatches by segment to
// the owning shard's fetcher.
func (s *Engine) JoinInput(preds []engine.AttrPred, joinAttr string, projs []string) (engine.JoinInput, engine.Cost) {
	lo, hi := s.span(engine.Query{Preds: preds})
	var cost engine.Cost
	inputs := make([]engine.JoinInput, hi-lo)
	for sh := lo; sh < hi; sh++ {
		ji, c := s.shards[sh].JoinInput(preds, joinAttr, projs)
		inputs[sh-lo] = ji
		addCost(&cost, c)
	}
	var joinVals []Value
	starts := make([]int, len(inputs)) // segment start of each shard's rows
	for i, ji := range inputs {
		starts[i] = len(joinVals)
		joinVals = append(joinVals, ji.JoinVals...)
	}
	return engine.JoinInput{
		JoinVals: joinVals,
		Fetch: func(attr string, i int) Value {
			// Last segment starting at or before i owns it.
			seg := sort.Search(len(starts), func(j int) bool { return starts[j] > i }) - 1
			return inputs[seg].Fetch(attr, i-starts[seg])
		},
	}, cost
}
