package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/store"
)

func buildRel(rng *rand.Rand, n int, domain int64) *store.Relation {
	return store.Build("R", n, []string{"A", "B", "C"}, func(attr string, row int) Value {
		return rng.Int63n(domain)
	})
}

func cloneRel(rel *store.Relation) *store.Relation {
	out := store.NewRelation(rel.Name, rel.Order...)
	for _, a := range rel.Order {
		out.MustColumn(a).Vals = append([]Value(nil), rel.MustColumn(a).Vals...)
	}
	return out
}

// canonRows reduces a result to a sorted row multiset for order-insensitive
// comparison.
func canonRows(res engine.Result, projs []string) []string {
	rows := make([]string, res.N)
	for i := 0; i < res.N; i++ {
		row := make([]Value, len(projs))
		for j, attr := range projs {
			row[j] = res.Cols[attr][i]
		}
		rows[i] = fmt.Sprint(row)
	}
	sort.Strings(rows)
	return rows
}

func writableKinds() []engine.Kind {
	return []engine.Kind{engine.Scan, engine.SelCrack, engine.Presorted, engine.Sideways, engine.PartialSideways}
}

// TestShardedMatchesSingle is the layout-equivalence property test: a
// sharded engine and a single engine of the same kind replay an identical
// random query/insert/delete interleaving and must produce identical result
// multisets for every query — for every engine kind, under both range and
// hash partitioning. Global keys agree by construction (build order, then
// insertion order), so deletes target the same tuples on both sides.
func TestShardedMatchesSingle(t *testing.T) {
	const (
		rows   = 400
		domain = 500
		ops    = 80
		nsh    = 4
	)
	for _, kind := range writableKinds() {
		for _, hash := range []bool{false, true} {
			mode := "range"
			if hash {
				mode = "hash"
			}
			t.Run(fmt.Sprintf("%v/%s", kind, mode), func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				base := buildRel(rng, rows, domain)
				single := engine.New(kind, cloneRel(base))
				sharded := New(kind, cloneRel(base), nsh, Options{Attr: "A", Hash: hash})
				if !hash && sharded.Hashed() {
					t.Fatalf("range partitioning unexpectedly fell back to hash")
				}

				keys := make([]int, rows)
				for i := range keys {
					keys[i] = i
				}
				for op := 0; op < ops; op++ {
					switch r := rng.Intn(10); {
					case r < 6: // query
						lo := rng.Int63n(domain)
						q := engine.Query{
							Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(lo, lo+1+rng.Int63n(domain/4))}},
							Projs: []string{"B", "C"},
						}
						if rng.Intn(3) == 0 {
							blo := rng.Int63n(domain)
							q.Preds = append(q.Preds, engine.AttrPred{Attr: "B", Pred: store.Range(blo, blo+domain/5)})
							q.Disjunctive = rng.Intn(2) == 0
						}
						want, _ := single.Query(q)
						got, _ := sharded.Query(q)
						if got.N != want.N {
							t.Fatalf("op %d: sharded N=%d, single N=%d (query %+v)", op, got.N, want.N, q)
						}
						w, g := canonRows(want, q.Projs), canonRows(got, q.Projs)
						for i := range w {
							if w[i] != g[i] {
								t.Fatalf("op %d row %d: sharded %s != single %s", op, i, g[i], w[i])
							}
						}
					case r < 8: // insert
						vals := []Value{rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain)}
						k1 := single.Insert(vals...)
						k2 := sharded.Insert(vals...)
						if k1 != k2 {
							t.Fatalf("op %d: insert keys diverged: single %d, sharded %d", op, k1, k2)
						}
						keys = append(keys, k1)
					default: // delete
						if len(keys) == 0 {
							continue
						}
						i := rng.Intn(len(keys))
						single.Delete(keys[i])
						sharded.Delete(keys[i])
						keys = append(keys[:i], keys[i+1:]...)
					}
				}
			})
		}
	}
}

// TestShardedRowStoreReadOnly covers the read-only reference kind, which
// cannot take part in the update interleaving test.
func TestShardedRowStoreReadOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := buildRel(rng, 300, 200)
	single := engine.New(engine.RowStore, cloneRel(base))
	sharded := New(engine.RowStore, cloneRel(base), 3, Options{Attr: "A"})
	for i := 0; i < 20; i++ {
		lo := rng.Int63n(200)
		q := engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(lo, lo+40)}},
			Projs: []string{"B"},
		}
		want, _ := single.Query(q)
		got, _ := sharded.Query(q)
		w, g := canonRows(want, q.Projs), canonRows(got, q.Projs)
		if len(w) != len(g) {
			t.Fatalf("query %d: N=%d want %d", i, got.N, want.N)
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("query %d row %d: %s != %s", i, j, g[j], w[j])
			}
		}
	}
}

// identityRel builds a relation whose partition attribute equals the row
// index, giving exactly known quantile cuts (n/4, n/2, 3n/4 for 4 shards).
func identityRel(n int) *store.Relation {
	return store.Build("R", n, []string{"A", "B"}, func(attr string, row int) Value {
		return Value(row)
	})
}

// TestSpanPruning pins the pruning rule against known cuts [250 500 750]:
// span returns the half-open shard interval a query can touch.
func TestSpanPruning(t *testing.T) {
	s := New(engine.Sideways, identityRel(1000), 4, Options{Attr: "A"})
	if want := []Value{250, 500, 750}; !func() bool {
		if len(s.cuts) != len(want) {
			return false
		}
		for i := range want {
			if s.cuts[i] != want[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatalf("cuts = %v, want %v", s.cuts, want)
	}
	onA := func(p store.Pred) engine.Query {
		return engine.Query{Preds: []engine.AttrPred{{Attr: "A", Pred: p}}}
	}
	cases := []struct {
		name   string
		q      engine.Query
		lo, hi int
	}{
		{"inside shard 0", onA(store.Range(10, 20)), 0, 1},
		{"boundary value starts shard 1", onA(store.Point(250)), 1, 2},
		{"last below the cut stays in shard 0", onA(store.Point(249)), 0, 1},
		{"straddles 0-1", onA(store.Range(240, 260)), 0, 2},
		{"inside shard 3", onA(store.Range(800, 900)), 3, 4},
		{"open-ended above", onA(store.Range(900, 5000)), 3, 4},
		{"open-ended below", onA(store.Range(-100, 5)), 0, 1},
		{"covers all", onA(store.Range(0, 1000)), 0, 4},
		{"open pred excludes its low bound", onA(store.Pred{Lo: 499, Hi: 700}), 1, 3},
		{"conjunction intersects", engine.Query{Preds: []engine.AttrPred{
			{Attr: "A", Pred: store.Range(0, 600)},
			{Attr: "A", Pred: store.Range(300, 1000)},
		}}, 1, 3},
		{"disjoint conjunction is empty", engine.Query{Preds: []engine.AttrPred{
			{Attr: "A", Pred: store.Range(0, 100)},
			{Attr: "A", Pred: store.Range(800, 900)},
		}}, 3, 3},
		{"non-partition attr cannot prune", engine.Query{Preds: []engine.AttrPred{
			{Attr: "B", Pred: store.Range(10, 20)},
		}}, 0, 4},
		{"conjunct on B still prunes via A", engine.Query{Preds: []engine.AttrPred{
			{Attr: "B", Pred: store.Range(0, 1000)},
			{Attr: "A", Pred: store.Range(600, 700)},
		}}, 2, 3},
		{"disjunction over A takes the covering interval", engine.Query{Preds: []engine.AttrPred{
			{Attr: "A", Pred: store.Range(10, 20)},
			{Attr: "A", Pred: store.Range(800, 900)},
		}, Disjunctive: true}, 0, 4},
		{"disjunction over A prunes the outer shards", engine.Query{Preds: []engine.AttrPred{
			{Attr: "A", Pred: store.Range(300, 350)},
			{Attr: "A", Pred: store.Range(600, 650)},
		}, Disjunctive: true}, 1, 3},
		{"disjunction with B fans out", engine.Query{Preds: []engine.AttrPred{
			{Attr: "A", Pred: store.Range(10, 20)},
			{Attr: "B", Pred: store.Range(800, 900)},
		}, Disjunctive: true}, 0, 4},
	}
	for _, tc := range cases {
		if lo, hi := s.span(tc.q); lo != tc.lo || hi != tc.hi {
			t.Errorf("%s: span = [%d,%d), want [%d,%d)", tc.name, lo, hi, tc.lo, tc.hi)
		}
	}
}

// touchyEngine fails the test on any use: it stands in for a shard that a
// pruned query must never reach — neither its read nor its write lock.
type touchyEngine struct {
	t  *testing.T
	mu sync.Mutex
	n  int
}

func (e *touchyEngine) touched(what string) {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
	e.t.Errorf("pruned shard was touched: %s", what)
}

func (e *touchyEngine) Name() string      { return "touchy" }
func (e *touchyEngine) Kind() engine.Kind { return engine.Sideways }
func (e *touchyEngine) Insert(...Value) int {
	e.touched("Insert")
	return 0
}
func (e *touchyEngine) Delete(int)   { e.touched("Delete") }
func (e *touchyEngine) Storage() int { e.touched("Storage"); return 0 }
func (e *touchyEngine) Prepare(...string) time.Duration {
	e.touched("Prepare")
	return 0
}
func (e *touchyEngine) Query(engine.Query) (engine.Result, engine.Cost) {
	e.touched("Query")
	return engine.Result{}, engine.Cost{}
}
func (e *touchyEngine) Probe(engine.Query) bool { e.touched("Probe"); return false }
func (e *touchyEngine) QueryRO(engine.Query) (engine.Result, engine.Cost, bool) {
	e.touched("QueryRO")
	return engine.Result{}, engine.Cost{}, true
}
func (e *touchyEngine) JoinInput([]engine.AttrPred, string, []string) (engine.JoinInput, engine.Cost) {
	e.touched("JoinInput")
	return engine.JoinInput{}, engine.Cost{}
}

// TestPrunedShardNeverTouched replaces shard 3 with an engine that fails on
// any call, then runs queries, probes, inserts, and deletes confined to
// shard 0's band: range pruning must keep shard 3 — and therefore its
// locks — completely out of the picture.
func TestPrunedShardNeverTouched(t *testing.T) {
	s := New(engine.Sideways, identityRel(1000), 4, Options{Attr: "A"})
	s.shards[3] = &touchyEngine{t: t}

	q := engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(10, 120)}},
		Projs: []string{"B"},
	}
	if res, _ := s.Query(q); res.N != 110 {
		t.Fatalf("query N=%d, want 110", res.N)
	}
	s.Probe(q)
	if _, _, ok := s.QueryRO(q); !ok {
		t.Fatalf("repeat in-band query refused read-only execution")
	}
	s.JoinInput(q.Preds, "A", []string{"B"})
	k := s.Insert(5, 5) // routes to shard 0
	s.Delete(k)
	s.Delete(3) // base row 3 lives in shard 0
}

// gateEngine blocks every Query until released, simulating a shard stuck
// in a long crack while holding its write lock.
type gateEngine struct {
	inner   engine.Engine
	entered chan struct{}
	release chan struct{}
}

func (e *gateEngine) Name() string      { return "gate" }
func (e *gateEngine) Kind() engine.Kind { return e.inner.Kind() }
func (e *gateEngine) Query(q engine.Query) (engine.Result, engine.Cost) {
	e.entered <- struct{}{}
	<-e.release
	return e.inner.Query(q)
}
func (e *gateEngine) Probe(q engine.Query) bool { return e.inner.Probe(q) }
func (e *gateEngine) QueryRO(q engine.Query) (engine.Result, engine.Cost, bool) {
	return e.inner.QueryRO(q)
}
func (e *gateEngine) Insert(vals ...Value) int              { return e.inner.Insert(vals...) }
func (e *gateEngine) Delete(key int)                        { e.inner.Delete(key) }
func (e *gateEngine) Prepare(attrs ...string) time.Duration { return e.inner.Prepare(attrs...) }
func (e *gateEngine) Storage() int                          { return e.inner.Storage() }
func (e *gateEngine) JoinInput(p []engine.AttrPred, j string, pr []string) (engine.JoinInput, engine.Cost) {
	return e.inner.JoinInput(p, j, pr)
}

// TestStuckShardDoesNotBlockOthers pins the finer-grained concurrency the
// sharding layer exists for: while shard 1 is stuck mid-query (as if
// cracking under its write lock), queries confined to shard 0 keep
// completing.
func TestStuckShardDoesNotBlockOthers(t *testing.T) {
	s := New(engine.Sideways, identityRel(1000), 4, Options{Attr: "A"})
	gate := &gateEngine{
		inner:   s.shards[1],
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	s.shards[1] = gate

	stuck := make(chan struct{})
	go func() {
		defer close(stuck)
		s.Query(engine.Query{ // shard 1's band: blocks on the gate
			Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(300, 400)}},
			Projs: []string{"B"},
		})
	}()
	<-gate.entered // shard 1 is now wedged

	done := make(chan struct{})
	go func() {
		defer close(done)
		res, _ := s.Query(engine.Query{ // shard 0's band
			Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(10, 60)}},
			Projs: []string{"B"},
		})
		if res.N != 50 {
			t.Errorf("shard-0 query N=%d, want 50", res.N)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("query on shard 0 blocked behind a stuck shard 1")
	}
	close(gate.release)
	<-stuck
}

// TestHashFallback: a constant partition attribute cannot form distinct
// range bands; New must fall back to hashing and stay correct.
func TestHashFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := store.Build("R", 200, []string{"A", "B"}, func(attr string, row int) Value {
		if attr == "A" {
			return 7
		}
		return rng.Int63n(100)
	})
	s := New(engine.Sideways, cloneRel(rel), 4, Options{Attr: "A"})
	if !s.Hashed() {
		t.Fatal("constant attribute did not fall back to hash partitioning")
	}
	res, _ := s.Query(engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Point(7)}},
		Projs: []string{"B"},
	})
	if res.N != 200 {
		t.Fatalf("N=%d, want 200", res.N)
	}
	// Hash mode prunes any single-value predicate to the owning shard —
	// including the half-open unit range callers use for point lookups.
	for _, p := range []store.Pred{store.Point(7), store.Range(7, 8), {Lo: 6, Hi: 8}} {
		lo, hi := s.span(engine.Query{Preds: []engine.AttrPred{{Attr: "A", Pred: p}}})
		if hi-lo != 1 {
			t.Fatalf("hash span for %v = [%d,%d), want a single shard", p, lo, hi)
		}
	}
	if lo, hi := s.span(engine.Query{Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(5, 9)}}}); hi-lo != 4 {
		t.Fatalf("hash span for a real range = [%d,%d), want all shards", lo, hi)
	}
	// Empty relation is unpartitionable too.
	if !New(engine.Scan, store.NewRelation("E", "A"), 3, Options{}).Hashed() {
		t.Fatal("empty relation did not fall back to hash partitioning")
	}
}

// TestSharedMarker: the sharded engine does its own locking; the engine
// layer must recognize it as shared and refuse to re-wrap it.
func TestSharedMarker(t *testing.T) {
	s := New(engine.Sideways, identityRel(100), 2, Options{})
	if !engine.IsShared(s) {
		t.Fatal("IsShared(sharded) = false")
	}
	if engine.Concurrent(s) != engine.Engine(s) {
		t.Fatal("Concurrent(sharded) wrapped an engine that manages its own locks")
	}
}

// TestShardedConcurrentUse exercises the sharded engine from many
// goroutines (run with -race in CI): disjoint per-goroutine key bands as in
// the engine-level property test, mixed queries and updates.
func TestShardedConcurrentUse(t *testing.T) {
	const (
		gors   = 4
		band   = 1000
		perGor = 150
	)
	rel := store.NewRelation("R", "A", "B")
	rng := rand.New(rand.NewSource(12))
	for g := 0; g < gors; g++ {
		lo := int64(g * band)
		for i := 0; i < 200; i++ {
			rel.AppendRow(lo+rng.Int63n(band), lo+rng.Int63n(band))
		}
	}
	s := New(engine.Sideways, rel, 4, Options{Attr: "A"})
	var wg sync.WaitGroup
	for g := 0; g < gors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			lo := int64(g * band)
			var keys []int
			for i := 0; i < perGor; i++ {
				switch rng.Intn(4) {
				case 0:
					keys = append(keys, s.Insert(lo+rng.Int63n(band), lo+rng.Int63n(band)))
				case 1:
					if len(keys) > 0 {
						i := rng.Intn(len(keys))
						s.Delete(keys[i])
						keys = append(keys[:i], keys[i+1:]...)
					}
				default:
					qlo := lo + rng.Int63n(band-100)
					s.Query(engine.Query{
						Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(qlo, qlo+50)}},
						Projs: []string{"B"},
					})
				}
			}
		}(g)
	}
	wg.Wait()
}
