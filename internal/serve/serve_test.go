package serve

import (
	"math/rand"
	"sync"
	"testing"

	"crackstore/internal/engine"
	"crackstore/internal/store"
)

func buildRel(rng *rand.Rand, n int, domain int64) *store.Relation {
	return store.Build("R", n, []string{"A", "B"}, func(attr string, row int) store.Value {
		return rng.Int63n(domain)
	})
}

// TestServeMatchesDirectCounts fires many clients at one shared sideways
// engine and checks every result count against a direct scan of the base
// relation (read-only workload, so counts are stable).
func TestServeMatchesDirectCounts(t *testing.T) {
	for _, batch := range []bool{false, true} {
		rng := rand.New(rand.NewSource(11))
		rel := buildRel(rng, 4000, 500)
		srv := New(engine.New(engine.Sideways, rel), Options{Workers: 4, Batch: batch})

		preds := make([]store.Pred, 16)
		want := make([]int, 16)
		for i := range preds {
			lo := rng.Int63n(450)
			preds[i] = store.Range(lo, lo+40)
			want[i] = store.SelectCount(rel.MustColumn("A"), preds[i])
		}

		var wg sync.WaitGroup
		errs := make(chan string, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(seed)))
				for i := 0; i < 40; i++ {
					j := r.Intn(len(preds))
					res, _, err := srv.Do(engine.Query{
						Preds: []engine.AttrPred{{Attr: "A", Pred: preds[j]}},
						Projs: []string{"B"},
					})
					if err != nil {
						errs <- err.Error()
						return
					}
					if res.N != want[j] {
						errs <- "wrong result count"
						return
					}
					if len(res.Cols["B"]) != want[j] {
						errs <- "projection length mismatch"
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("batch=%v: %s", batch, e)
		}

		st := srv.Stats()
		if st.Queries != 8*40 {
			t.Fatalf("batch=%v: stats recorded %d queries, want %d", batch, st.Queries, 8*40)
		}
		if st.QPS <= 0 || st.P50 <= 0 || st.P99 < st.P50 || st.Max < st.P99 {
			t.Fatalf("batch=%v: implausible stats %+v", batch, st)
		}
		srv.Close()
		if _, _, err := srv.Do(engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: preds[0]}},
		}); err != ErrClosed {
			t.Fatalf("batch=%v: Do after Close = %v, want ErrClosed", batch, err)
		}
	}
}

// TestServeSurvivesPanickingQuery: a query naming a nonexistent attribute
// panics inside the engine; the server must surface it as an error and
// keep serving (no leaked semaphore slot, no stranded batch waiters).
func TestServeSurvivesPanickingQuery(t *testing.T) {
	for _, batch := range []bool{false, true} {
		rel := buildRel(rand.New(rand.NewSource(4)), 500, 100)
		srv := New(engine.New(engine.Sideways, rel), Options{Workers: 2, Batch: batch})
		bad := engine.Query{Preds: []engine.AttrPred{{Attr: "nope", Pred: store.Range(0, 10)}}}
		good := engine.Query{Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(0, 10)}}, Projs: []string{"B"}}
		for i := 0; i < 8; i++ { // more bad queries than worker slots
			if _, _, err := srv.Do(bad); err == nil {
				t.Fatalf("batch=%v: panicking query returned no error", batch)
			}
		}
		if _, _, err := srv.Do(good); err != nil {
			t.Fatalf("batch=%v: server unusable after panics: %v", batch, err)
		}
		srv.Close()
	}
}

func TestServeRejectsEmptyQuery(t *testing.T) {
	rel := buildRel(rand.New(rand.NewSource(3)), 100, 50)
	srv := New(engine.New(engine.Scan, rel), Options{Workers: 1})
	defer srv.Close()
	if _, _, err := srv.Do(engine.Query{}); err != ErrEmptyQuery {
		t.Fatalf("Do(empty) = %v, want ErrEmptyQuery", err)
	}
}
