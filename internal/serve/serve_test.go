package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/store"
)

func buildRel(rng *rand.Rand, n int, domain int64) *store.Relation {
	return store.Build("R", n, []string{"A", "B"}, func(attr string, row int) store.Value {
		return rng.Int63n(domain)
	})
}

// TestServeMatchesDirectCounts fires many clients at one shared sideways
// engine and checks every result count against a direct scan of the base
// relation (read-only workload, so counts are stable).
func TestServeMatchesDirectCounts(t *testing.T) {
	for _, batch := range []bool{false, true} {
		rng := rand.New(rand.NewSource(11))
		rel := buildRel(rng, 4000, 500)
		srv := New(engine.New(engine.Sideways, rel), Options{Workers: 4, Batch: batch})

		preds := make([]store.Pred, 16)
		want := make([]int, 16)
		for i := range preds {
			lo := rng.Int63n(450)
			preds[i] = store.Range(lo, lo+40)
			want[i] = store.SelectCount(rel.MustColumn("A"), preds[i])
		}

		var wg sync.WaitGroup
		errs := make(chan string, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(seed)))
				for i := 0; i < 40; i++ {
					j := r.Intn(len(preds))
					res, _, err := srv.Do(engine.Query{
						Preds: []engine.AttrPred{{Attr: "A", Pred: preds[j]}},
						Projs: []string{"B"},
					})
					if err != nil {
						errs <- err.Error()
						return
					}
					if res.N != want[j] {
						errs <- "wrong result count"
						return
					}
					if len(res.Cols["B"]) != want[j] {
						errs <- "projection length mismatch"
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("batch=%v: %s", batch, e)
		}

		st := srv.Stats()
		if st.Queries != 8*40 {
			t.Fatalf("batch=%v: stats recorded %d queries, want %d", batch, st.Queries, 8*40)
		}
		if st.QPS <= 0 || st.P50 <= 0 || st.P99 < st.P50 || st.Max < st.P99 {
			t.Fatalf("batch=%v: implausible stats %+v", batch, st)
		}
		srv.Close()
		if _, _, err := srv.Do(engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: preds[0]}},
		}); err != ErrClosed {
			t.Fatalf("batch=%v: Do after Close = %v, want ErrClosed", batch, err)
		}
	}
}

// TestServeSurvivesPanickingQuery: a query naming a nonexistent attribute
// panics inside the engine; the server must surface it as an error and
// keep serving (no leaked semaphore slot, no stranded batch waiters).
func TestServeSurvivesPanickingQuery(t *testing.T) {
	for _, batch := range []bool{false, true} {
		rel := buildRel(rand.New(rand.NewSource(4)), 500, 100)
		srv := New(engine.New(engine.Sideways, rel), Options{Workers: 2, Batch: batch})
		bad := engine.Query{Preds: []engine.AttrPred{{Attr: "nope", Pred: store.Range(0, 10)}}}
		good := engine.Query{Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(0, 10)}}, Projs: []string{"B"}}
		for i := 0; i < 8; i++ { // more bad queries than worker slots
			if _, _, err := srv.Do(bad); err == nil {
				t.Fatalf("batch=%v: panicking query returned no error", batch)
			}
		}
		if _, _, err := srv.Do(good); err != nil {
			t.Fatalf("batch=%v: server unusable after panics: %v", batch, err)
		}
		srv.Close()
	}
}

// TestStatsPercentileNearestRank pins the percentile math against known
// sample sets: nearest-rank with a ceiling, never the truncated index that
// underreported tail latency (P99 of 200 samples must read sorted index
// 198 = ceil(0.99*199), not int(0.99*199) = 197).
func TestStatsPercentileNearestRank(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	seq := func(n int) []time.Duration { // 1ms..n ms, so sorted[i] = (i+1)ms
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = ms(i + 1)
		}
		return out
	}
	cases := []struct {
		name               string
		lats               []time.Duration
		p50, p95, p99, max time.Duration
	}{
		{"one sample", seq(1), ms(1), ms(1), ms(1), ms(1)},
		{"two samples", seq(2), ms(2), ms(2), ms(2), ms(2)},
		// n=10: ceil(.5*9)=5, ceil(.95*9)=9, ceil(.99*9)=9
		{"ten samples", seq(10), ms(6), ms(10), ms(10), ms(10)},
		// n=100: ceil(.5*99)=50, ceil(.95*99)=95, ceil(.99*99)=99
		{"hundred samples", seq(100), ms(51), ms(96), ms(100), ms(100)},
		// n=200: ceil(.5*199)=100, ceil(.95*199)=190, ceil(.99*199)=198 —
		// the truncating implementation read 99, 189, and 197.
		{"two hundred samples", seq(200), ms(101), ms(191), ms(199), ms(200)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Server{lats: tc.lats}
			st := s.Stats()
			if st.P50 != tc.p50 || st.P95 != tc.p95 || st.P99 != tc.p99 || st.Max != tc.max {
				t.Fatalf("got p50=%v p95=%v p99=%v max=%v, want p50=%v p95=%v p99=%v max=%v",
					st.P50, st.P95, st.P99, st.Max, tc.p50, tc.p95, tc.p99, tc.max)
			}
		})
	}
}

// TestStatsFirstSubmissionMinimum feeds staggered synthetic t0s through the
// recording paths out of order and concurrently: Elapsed must span from the
// *earliest* submission, not whichever racing Do stamped first.
func TestStatsFirstSubmissionMinimum(t *testing.T) {
	base := time.Now()
	ms := time.Millisecond
	s := &Server{}
	// Out of order: the 5s-offset submission completes after the 10s one,
	// and the earliest submission of all belongs to an errored query.
	s.record(ms, base.Add(10*time.Second))
	s.record(ms, base.Add(5*time.Second))
	s.recordError(base.Add(2*time.Second), base.Add(3*time.Second))
	s.record(time.Second, base.Add(29*time.Second)) // completes at base+30s
	if st := s.Stats(); st.Elapsed != 28*time.Second {
		t.Fatalf("Elapsed = %v, want 28s (earliest t0 must win, not the first writer)", st.Elapsed)
	}
	// An error tail after the last success extends the wall clock too.
	s.recordError(base.Add(31*time.Second), base.Add(34*time.Second))
	if st := s.Stats(); st.Elapsed != 32*time.Second {
		t.Fatalf("Elapsed = %v, want 32s (errored completions are part of the run)", st.Elapsed)
	}

	// Concurrent start-up (run under -race in CI): every permutation of the
	// races must still yield the minimum.
	s = &Server{}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s.record(ms, base.Add(time.Duration(g)*time.Second))
		}(g)
	}
	wg.Wait()
	s.record(time.Second, base.Add(39*time.Second))
	if st := s.Stats(); st.Elapsed != 40*time.Second {
		t.Fatalf("concurrent Elapsed = %v, want 40s", st.Elapsed)
	}
}

// TestStatsCountsErrors: errored queries must surface in Stats.Errors
// instead of silently shrinking the run.
func TestStatsCountsErrors(t *testing.T) {
	for _, batch := range []bool{false, true} {
		rel := buildRel(rand.New(rand.NewSource(9)), 500, 100)
		srv := New(engine.New(engine.Sideways, rel), Options{Workers: 2, Batch: batch})
		bad := engine.Query{Preds: []engine.AttrPred{{Attr: "nope", Pred: store.Range(0, 10)}}}
		good := engine.Query{Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(0, 10)}}, Projs: []string{"B"}}
		for i := 0; i < 5; i++ {
			if _, _, err := srv.Do(bad); err == nil {
				t.Fatalf("batch=%v: bad query returned no error", batch)
			}
		}
		for i := 0; i < 3; i++ {
			if _, _, err := srv.Do(good); err != nil {
				t.Fatalf("batch=%v: good query failed: %v", batch, err)
			}
		}
		st := srv.Stats()
		if st.Errors != 5 {
			t.Fatalf("batch=%v: Stats.Errors = %d, want 5", batch, st.Errors)
		}
		if st.Queries != 3 {
			t.Fatalf("batch=%v: Stats.Queries = %d, want 3", batch, st.Queries)
		}
		srv.Close()
	}
}

func TestServeRejectsEmptyQuery(t *testing.T) {
	rel := buildRel(rand.New(rand.NewSource(3)), 100, 50)
	srv := New(engine.New(engine.Scan, rel), Options{Workers: 1})
	defer srv.Close()
	if _, _, err := srv.Do(engine.Query{}); err != ErrEmptyQuery {
		t.Fatalf("Do(empty) = %v, want ErrEmptyQuery", err)
	}
}
