package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"crackstore/internal/crack"
	"crackstore/internal/engine"
	"crackstore/internal/store"
)

// TestServePolicyOption: Options.Policy applies the adaptive cracking
// policy before serving, and served answers match a default-policy
// reference engine exactly.
func TestServePolicyOption(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rel := buildRel(rng, 4000, 800)
	clone := store.NewRelation(rel.Name, rel.Order...)
	for _, a := range rel.Order {
		clone.MustColumn(a).Vals = append([]store.Value(nil), rel.MustColumn(a).Vals...)
	}
	pol := crack.Policy{Kind: crack.Stochastic, Cap: 256, Seed: 6}
	srv := New(engine.New(engine.SelCrack, rel), Options{Workers: 2, Policy: &pol})
	defer srv.Close()
	ref := engine.New(engine.SelCrack, clone)

	canon := func(res engine.Result) []string {
		out := make([]string, res.N)
		for i := 0; i < res.N; i++ {
			out[i] = fmt.Sprint(res.Cols["B"][i])
		}
		sort.Strings(out)
		return out
	}
	for q := 0; q < 20; q++ {
		lo := rng.Int63n(800)
		query := engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(lo, lo+1+rng.Int63n(100))}},
			Projs: []string{"B"},
		}
		res, _, err := srv.Do(query)
		if err != nil {
			t.Fatalf("q%d: %v", q, err)
		}
		want, _ := ref.Query(query)
		g, w := canon(res), canon(want)
		if len(g) != len(w) {
			t.Fatalf("q%d: served %d rows, reference %d", q, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("q%d: served results diverged at %d", q, i)
			}
		}
	}
}
