// Package serve implements the concurrent query-serving layer: a bounded
// executor that runs queries from many clients against one shared engine,
// with per-query latency capture and optional admission batching.
//
// The layer builds on the engine two-phase (probe/execute) protocol: the
// engine is wrapped in engine.Concurrent, so reorganization-free queries —
// the vast majority after a warm-up — run in parallel under a shared read
// lock, and only queries that must crack, merge pending updates, or
// maintain auxiliary structures serialize behind the write lock.
//
// Without batching, queries execute directly on the submitting goroutine
// under a concurrency-limiting semaphore (Workers slots) — no handoff, no
// context switch. With admission batching (Options.Batch), queries instead
// flow through an admission queue where a dispatcher groups them by
// primary selection attribute and hands each group to a worker: the first
// query of a group pays the crack for its value range, the rest
// immediately hit the read-only fast path — one crack pays for many
// waiters. Groups over different attributes still run in parallel across
// the pool.
package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crackstore/internal/crack"
	"crackstore/internal/engine"
	"crackstore/internal/obs"
)

// Options tunes the server.
type Options struct {
	// Workers bounds the number of concurrently executing queries; 0
	// means GOMAXPROCS.
	Workers int
	// Queue is the admission-queue capacity in batching mode; 0 means 4x
	// Workers.
	Queue int
	// Batch enables admission batching of same-attribute queries.
	Batch bool
	// BatchWindow optionally holds a batch open for this long to collect
	// more queries; 0 (the default) batches only queries already waiting
	// in the admission queue, adding no artificial latency. Only used
	// when Batch is set.
	BatchWindow time.Duration
	// BatchMax caps the queries collected into one admission batch;
	// 0 means 64. Only used when Batch is set.
	BatchMax int
	// Policy, when non-nil, applies the adaptive cracking policy
	// (crack.Policy) to the engine before serving begins. Leave nil to
	// keep whatever policy the engine was constructed with. Engines whose
	// physical design does not crack ignore it.
	Policy *crack.Policy
	// MaxWaiting, when > 0, bounds the number of queries waiting for
	// execution (an admission-queue watermark in batching mode, a
	// semaphore-wait watermark in direct mode): a submission arriving with
	// the watermark already reached is shed immediately with ErrOverloaded
	// instead of queueing. Shedding is the overload defense for the remote
	// path — the server answers cheaply and in-band rather than letting an
	// unbounded backlog stretch every caller's latency (or stall the
	// connection). 0 disables shedding; queues then grow without limit.
	MaxWaiting int
	// Timeout is an optional per-query deadline covering both the wait
	// for an execution slot and the execution itself; 0 disables. A query
	// whose deadline expires returns ErrTimeout (counted in Stats.Errors).
	// Expiry never leaks a worker slot: a query already executing when its
	// caller gives up finishes in the background and releases its slot,
	// while the caller gets ErrTimeout immediately — so one slow crack
	// cannot wedge the callers (or a network connection's pipeline) stuck
	// behind it.
	Timeout time.Duration
	// Snapshot wraps the engine in engine.Snapshot instead of
	// engine.Concurrent: read-only queries traverse epoch-protected
	// versioned pieces lock-free and never wait behind a crack. Engines
	// whose kind engine.Snapshot does not support fall back to Concurrent.
	// Ignored when the engine is already shared-safe.
	Snapshot bool
	// Metrics, when non-nil, registers the serving-layer metric families
	// (crack_serve_*) in the given registry and feeds them as queries
	// flow. Nil (the default) keeps the hot path byte-identical to the
	// uninstrumented server: no clocks, no atomics beyond the existing
	// ones. One registry serves one Server — registering two servers in
	// the same registry panics on the duplicate family names.
	Metrics *obs.Registry
	// LatencyWindow bounds the retained per-query latency samples: once
	// full, the oldest samples are overwritten, so percentiles describe a
	// sliding window of recent queries while Queries and QPS still count
	// everything. 0 keeps every sample — right for bounded benchmark runs
	// that export full series, fatal for a long-running daemon (a server
	// at ~50k q/s would otherwise leak ~0.4 MB/s of history forever);
	// netserve sets a window by default.
	LatencyWindow int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Queue <= 0 {
		o.Queue = 4 * o.Workers
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 64
	}
	return o
}

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("serve: server is closed")

// ErrEmptyQuery is returned for queries without predicates.
var ErrEmptyQuery = errors.New("serve: query has no predicates")

// ErrTimeout is returned by Do when Options.Timeout expires before the
// query completes — whether it was still waiting for a slot or already
// executing. Timed-out queries count in Stats.Errors.
var ErrTimeout = errors.New("serve: query deadline exceeded")

// ErrOverloaded is returned by Do when Options.MaxWaiting is set and the
// wait backlog is at the watermark: the query was shed without executing.
// Shed queries count in Stats.Sheds, not Stats.Errors — a shed is the
// overload defense working, not a failure of the query.
var ErrOverloaded = errors.New("serve: server overloaded, query shed")

type request struct {
	q    engine.Query
	t0   time.Time
	res  engine.Result
	cost engine.Cost
	err  error
	done chan struct{}

	// sp, when non-nil, receives the queue/execute stage timings (trace
	// support). The worker writes it before closing done; the caller
	// reads it after done closes — no lock needed.
	sp *SpanTimes

	// deadline is t0 + Options.Timeout (zero when timeouts are off).
	deadline time.Time
	// claimed decides, exactly once, who accounts for this request: the
	// worker completing it or the Do call timing out. The loser records
	// nothing and (worker side) discards its result, so a timed-out query
	// is counted exactly once, as an error.
	claimed atomic.Bool
}

// expired reports whether the request's deadline (if any) has passed.
func (r *request) expired(now time.Time) bool {
	return !r.deadline.IsZero() && now.After(r.deadline)
}

// SpanTimes receives the serving-side stage timings of one query from
// DoUntilSpans: Queue is the time from submission to the start of
// execution (semaphore or admission-queue wait), Exec the engine
// execution time. Only filled in for successful queries.
type SpanTimes struct {
	Queue time.Duration
	Exec  time.Duration
}

// serveMetrics holds the serving-layer instruments. A nil *serveMetrics
// (Options.Metrics unset) is valid for every method and does nothing, so
// call sites stay unconditional. The success path is deliberately two
// histogram observes and nothing else: queries_total is derived from the
// latency histogram's bucket sum at scrape time, and in direct mode
// inflight is read from the semaphore depth at scrape time, so neither
// costs an atomic on the hot path.
type serveMetrics struct {
	errors   *obs.Counter
	timeouts *obs.Counter
	sheds    *obs.Counter
	latency  *obs.Histogram
	queue    *obs.Histogram
	inflight *obs.Gauge // batching mode only; nil in direct mode
}

func newServeMetrics(r *obs.Registry, s *Server) *serveMetrics {
	if r == nil {
		return nil
	}
	m := &serveMetrics{
		errors:   r.Counter("crack_serve_errors_total", "queries that failed (engine errors and deadline expiries)"),
		timeouts: r.Counter("crack_serve_timeouts_total", "queries that failed by deadline expiry (subset of errors)"),
		sheds:    r.Counter("crack_serve_sheds_total", "queries shed in-band at the MaxWaiting watermark"),
		latency:  r.Histogram("crack_serve_latency_seconds", "successful query latency, submission to completion (wait + execute)"),
		queue:    r.Histogram("crack_serve_queue_seconds", "successful query wait for an execution slot"),
	}
	// Every success observes latency exactly once, so the histogram's
	// count is the query count — no separate hot-path counter needed.
	r.CounterFunc("crack_serve_queries_total", "queries completed successfully", m.latency.Count)
	if s.opts.Batch {
		// Batch workers don't hold the semaphore; count executions
		// directly.
		m.inflight = r.Gauge("crack_serve_inflight", "queries executing on the engine right now")
	} else {
		// Direct mode holds a semaphore slot for exactly the execution
		// window (including detached timed-out executions), so the
		// channel depth is the inflight count, read only at scrape time.
		r.GaugeFunc("crack_serve_inflight", "queries executing on the engine right now", func() float64 {
			return float64(len(s.sem))
		})
	}
	r.GaugeFunc("crack_serve_waiting", "queries waiting for an execution slot", func() float64 {
		if s.opts.Batch {
			return float64(len(s.admit))
		}
		return float64(s.waiting.Load())
	})
	return m
}

func (m *serveMetrics) execStart() {
	if m != nil && m.inflight != nil {
		m.inflight.Add(1)
	}
}

func (m *serveMetrics) execEnd() {
	if m != nil && m.inflight != nil {
		m.inflight.Add(-1)
	}
}

func (m *serveMetrics) observeQueue(d time.Duration) {
	if m != nil {
		m.queue.Observe(d)
	}
}

func (m *serveMetrics) success(lat time.Duration) {
	if m != nil {
		m.latency.Observe(lat)
	}
}

func (m *serveMetrics) error() {
	if m != nil {
		m.errors.Inc()
	}
}

func (m *serveMetrics) timeout() {
	if m != nil {
		m.timeouts.Inc()
	}
}

func (m *serveMetrics) shed() {
	if m != nil {
		m.sheds.Inc()
	}
}

// Server executes queries from many clients against one shared engine.
type Server struct {
	e    engine.Engine
	opts Options
	met  *serveMetrics // nil unless Options.Metrics is set

	sem chan struct{} // direct mode: concurrency-limiting semaphore

	admit chan *request   // batching mode: admission queue
	work  chan []*request // batching mode: dispatcher -> worker pool
	wg    sync.WaitGroup  // batching mode: workers + dispatcher

	inDo    sync.WaitGroup // Do calls in flight (both modes)
	bg      sync.WaitGroup // detached executions whose caller timed out
	closed  atomic.Bool
	waiting atomic.Int64 // direct mode: Do calls blocked on the semaphore

	mu     sync.Mutex
	lats   []time.Duration
	latPos int       // LatencyWindow mode: next overwrite position once full
	total  int       // completed successes ever (lats may be a window of them)
	errs   int       // executed queries that failed (panic or engine error)
	sheds  int       // queries shed at the MaxWaiting watermark
	first  time.Time // earliest submission
	last   time.Time // last completion
}

// New starts a server over e. Unless e is already a shared-safe wrapper
// (engine.Concurrent or engine.Serialized), it is wrapped in
// engine.Concurrent. Close must be called to release the pool.
func New(e engine.Engine, opts Options) *Server {
	opts = opts.withDefaults()
	if opts.Policy != nil {
		// Apply before any query runs: tape-replaying structures freeze
		// their policy at set creation.
		engine.SetPolicy(e, *opts.Policy)
	}
	if !engine.IsShared(e) {
		if opts.Snapshot {
			e = engine.Snapshot(e)
		} else {
			e = engine.Concurrent(e)
		}
	}
	s := &Server{e: e, opts: opts}
	s.met = newServeMetrics(opts.Metrics, s)
	if opts.Batch {
		s.admit = make(chan *request, opts.Queue)
		s.work = make(chan []*request, opts.Queue)
		for i := 0; i < opts.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
		s.wg.Add(1)
		go s.dispatch()
	} else {
		s.sem = make(chan struct{}, opts.Workers)
	}
	return s
}

// Engine returns the shared (wrapped) engine the server executes against.
func (s *Server) Engine() engine.Engine { return s.e }

// Do submits q and blocks until it has been executed, returning the result
// and the engine cost split. The captured latency spans submission to
// completion, including queue or semaphore wait time. Do is safe to call
// from any number of goroutines.
func (s *Server) Do(q engine.Query) (engine.Result, engine.Cost, error) {
	return s.DoUntil(q, time.Time{})
}

// DoUntil is Do with an explicit absolute deadline, the entry point for
// callers that carry their own expiry — netserve maps a request's wire TTL
// hint here, so a query whose client has already given up is skipped
// instead of executed. A zero deadline means no caller deadline; when
// Options.Timeout is also set, the earlier of the two applies. Expiry
// returns ErrTimeout with the same exactly-once accounting and no-slot-leak
// guarantees as Options.Timeout.
func (s *Server) DoUntil(q engine.Query, deadline time.Time) (engine.Result, engine.Cost, error) {
	return s.doUntil(q, deadline, nil)
}

// DoUntilSpans is DoUntil for traced queries: on success, sp receives
// the queue and execute stage durations (netserve encodes them as
// response spans). Passing sp costs two extra clock reads on this call
// only; untraced calls through DoUntil are unaffected.
func (s *Server) DoUntilSpans(q engine.Query, deadline time.Time, sp *SpanTimes) (engine.Result, engine.Cost, error) {
	return s.doUntil(q, deadline, sp)
}

// timed reports whether this call must capture phase boundaries — for a
// span-collecting caller or the queue-wait histogram.
func (s *Server) timed(sp *SpanTimes) bool {
	return sp != nil || s.met != nil
}

func (s *Server) doUntil(q engine.Query, deadline time.Time, sp *SpanTimes) (engine.Result, engine.Cost, error) {
	if len(q.Preds) == 0 {
		return engine.Result{}, engine.Cost{}, ErrEmptyQuery
	}
	t0 := time.Now()
	if s.opts.Timeout > 0 {
		if td := t0.Add(s.opts.Timeout); deadline.IsZero() || td.Before(deadline) {
			deadline = td
		}
	}
	// Register before checking closed: Close flips the flag first and then
	// waits for inDo, so a Do that passed the check is always waited for.
	s.inDo.Add(1)
	defer s.inDo.Done()
	if s.closed.Load() {
		return engine.Result{}, engine.Cost{}, ErrClosed
	}
	if !deadline.IsZero() && !t0.Before(deadline) {
		// Expired before submission (e.g. the TTL burned up in transit):
		// never touches the queue or a slot.
		s.met.timeout()
		s.recordError(t0, t0)
		return engine.Result{}, engine.Cost{}, ErrTimeout
	}
	if s.shouldShed() {
		s.recordShed()
		return engine.Result{}, engine.Cost{}, ErrOverloaded
	}
	if !s.opts.Batch {
		if !deadline.IsZero() {
			return s.doDirectDeadline(q, t0, deadline, sp)
		}
		// Direct mode: execute on this goroutine under the semaphore. The
		// uncontended acquire is non-blocking so the warm path can skip
		// the mid-query clock read: a slot taken without waiting means
		// the slot wait was ~0 and the queue histogram records an exact
		// zero. Only actual waiters — and span-traced queries, which need
		// the queue/execute split regardless — pay for a time.Now (~65ns
		// on some VMs, the single largest per-query instrumentation cost).
		waited := false
		select {
		case s.sem <- struct{}{}:
		default:
			s.waiting.Add(1)
			s.sem <- struct{}{}
			s.waiting.Add(-1)
			waited = true
		}
		var t1 time.Time
		if sp != nil || (waited && s.met != nil) {
			t1 = time.Now()
		}
		s.met.execStart()
		res, cost, err := safeQuery(s.e, q)
		s.met.execEnd()
		<-s.sem
		end := time.Now()
		if err != nil {
			s.recordError(t0, end)
			return res, cost, err
		}
		if sp != nil {
			sp.Queue, sp.Exec = t1.Sub(t0), end.Sub(t1)
		}
		if s.met != nil {
			if t1.IsZero() {
				s.met.observeQueue(0)
			} else {
				s.met.observeQueue(t1.Sub(t0))
			}
		}
		s.record(end.Sub(t0), t0)
		return res, cost, nil
	}

	req := &request{q: q, t0: t0, deadline: deadline, done: make(chan struct{}), sp: sp}
	if !deadline.IsZero() {
		return s.doBatchDeadline(req)
	}
	s.admit <- req
	<-req.done
	return req.res, req.cost, req.err
}

// shouldShed reports whether a new submission must be shed at the
// MaxWaiting watermark. Batching mode reads the admission-queue depth;
// direct mode counts Do calls blocked on the semaphore. Both are cheap,
// slightly racy reads — overload control needs a watermark, not an exact
// count.
func (s *Server) shouldShed() bool {
	if s.opts.MaxWaiting <= 0 {
		return false
	}
	if s.opts.Batch {
		return len(s.admit) >= s.opts.MaxWaiting
	}
	return int(s.waiting.Load()) >= s.opts.MaxWaiting
}

// TryRO executes q immediately on the calling goroutine if the engine can
// answer it without reorganizing and a worker slot is free right now,
// recording it in the serving stats exactly like Do. ok is false — and
// nothing has executed — when the query needs reorganization, no slot is
// free, the server batches admissions, or the server is closed; callers
// then fall back to Do. The point is dispatch cost: a network reader can
// answer the warm read-only majority inline instead of paying a goroutine
// handoff per request, while cracking queries still go through Do and
// pipeline out of order.
func (s *Server) TryRO(q engine.Query) (engine.Result, engine.Cost, bool) {
	if len(q.Preds) == 0 || s.opts.Batch {
		return engine.Result{}, engine.Cost{}, false
	}
	t0 := time.Now()
	s.inDo.Add(1)
	defer s.inDo.Done()
	if s.closed.Load() {
		return engine.Result{}, engine.Cost{}, false
	}
	select {
	case s.sem <- struct{}{}:
	default: // all slots busy: let Do queue fairly
		return engine.Result{}, engine.Cost{}, false
	}
	s.met.execStart()
	res, cost, ok := safeQueryRO(s.e, q)
	s.met.execEnd()
	<-s.sem
	if !ok {
		return engine.Result{}, engine.Cost{}, false
	}
	s.record(time.Since(t0), t0)
	return res, cost, true
}

// safeQueryRO is QueryRO with the same panic conversion as safeQuery; a
// panicking query reports !ok so the Do fallback surfaces the error.
func safeQueryRO(e engine.Engine, q engine.Query) (res engine.Result, cost engine.Cost, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return e.QueryRO(q)
}

// outcome carries a detached execution's answer back to its Do call.
type outcome struct {
	res  engine.Result
	cost engine.Cost
	err  error
}

// doDirectDeadline is the direct-mode Do under a deadline. The wait for a
// semaphore slot is bounded by the deadline; once a slot is held the
// query runs on a detached goroutine so an expiring deadline returns
// ErrTimeout to the caller immediately while the execution finishes in the
// background and releases the slot itself — expiry can neither interrupt an
// engine mid-crack nor leak the slot.
func (s *Server) doDirectDeadline(q engine.Query, t0, deadline time.Time, sp *SpanTimes) (engine.Result, engine.Cost, error) {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	s.waiting.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.waiting.Add(-1)
	case <-timer.C:
		s.waiting.Add(-1)
		// Never got a slot; nothing to detach.
		s.met.timeout()
		s.recordError(t0, time.Now())
		return engine.Result{}, engine.Cost{}, ErrTimeout
	}
	var t1 time.Time
	if s.timed(sp) {
		t1 = time.Now()
	}
	var claimed atomic.Bool
	ch := make(chan outcome, 1)
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		s.met.execStart()
		res, cost, err := safeQuery(s.e, q)
		s.met.execEnd()
		<-s.sem
		end := time.Now()
		if !claimed.CompareAndSwap(false, true) {
			return // caller timed out and accounted for the query; discard
		}
		if err != nil {
			s.recordError(t0, end)
		} else {
			if s.timed(sp) {
				if sp != nil {
					// Written before the ch send; the caller reads only
					// after receiving from ch.
					sp.Queue, sp.Exec = t1.Sub(t0), end.Sub(t1)
				}
				s.met.observeQueue(t1.Sub(t0))
			}
			s.record(end.Sub(t0), t0)
		}
		ch <- outcome{res, cost, err}
	}()
	select {
	case out := <-ch:
		return out.res, out.cost, out.err
	case <-timer.C:
		if claimed.CompareAndSwap(false, true) {
			s.met.timeout()
			s.recordError(t0, time.Now())
			return engine.Result{}, engine.Cost{}, ErrTimeout
		}
		// The execution claimed first; its buffered answer is ready.
		out := <-ch
		return out.res, out.cost, out.err
	}
}

// doBatchDeadline is the batching-mode Do under a deadline (req.deadline
// is set): admission itself is bounded by the deadline, and a request whose
// deadline expires while queued behind a slow crack is answered ErrTimeout
// right away — the worker that eventually pops it sees the claim and skips
// execution.
func (s *Server) doBatchDeadline(req *request) (engine.Result, engine.Cost, error) {
	timer := time.NewTimer(time.Until(req.deadline))
	defer timer.Stop()
	select {
	case s.admit <- req:
	case <-timer.C:
		// Never admitted; the request is exclusively ours.
		s.met.timeout()
		s.recordError(req.t0, time.Now())
		return engine.Result{}, engine.Cost{}, ErrTimeout
	}
	select {
	case <-req.done:
		return req.res, req.cost, req.err
	case <-timer.C:
		if req.claimed.CompareAndSwap(false, true) {
			s.met.timeout()
			s.recordError(req.t0, time.Now())
			return engine.Result{}, engine.Cost{}, ErrTimeout
		}
		// A worker claimed the request concurrently; take its answer.
		<-req.done
		return req.res, req.cost, req.err
	}
}

// safeQuery converts an engine panic (e.g. a predicate naming a column the
// relation does not have) into an error, so a malformed query can neither
// leak a semaphore slot nor kill a worker and strand its group's waiters.
func safeQuery(e engine.Engine, q engine.Query) (res engine.Result, cost engine.Cost, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: query panicked: %v", r)
		}
	}()
	res, cost = e.Query(q)
	return res, cost, nil
}

// recordError counts a query that failed — an execution error or a
// deadline expiry. Failed queries capture no latency sample, so without
// this counter a run with failures would silently report healthy
// percentiles and QPS over fewer queries. Both of the query's endpoints
// still feed the run's wall clock (earliest submission, latest
// completion): a failed query occupied the server just the same.
func (s *Server) recordError(t0, end time.Time) {
	s.met.error()
	s.mu.Lock()
	s.errs++
	s.noteStartLocked(t0)
	if end.After(s.last) {
		s.last = end
	}
	s.mu.Unlock()
}

// recordShed counts a query shed at the overload watermark. Sheds stay out
// of Errors and out of the run's wall clock: a shed request consumed no
// slot and no engine time — the counter exists so operators can see the
// defense firing, not to distort throughput numbers.
func (s *Server) recordShed() {
	s.met.shed()
	s.mu.Lock()
	s.sheds++
	s.mu.Unlock()
}

// record captures a completed query: its latency, the completion-time
// high-water mark, and the earliest-submission marker. Tracking the
// minimum t0 (rather than stamping whichever racing Do got there first,
// as a sync.Once would) keeps Elapsed correct under concurrent start-up:
// the once-winner can carry a later t0 than another already-in-flight
// query, shrinking Elapsed and inflating QPS. Folding the minimum into
// the completion-side update keeps Do at one stats critical section per
// query.
func (s *Server) record(lat time.Duration, t0 time.Time) {
	s.met.success(lat)
	s.mu.Lock()
	s.total++
	if w := s.opts.LatencyWindow; w > 0 && len(s.lats) >= w {
		// Window full: overwrite round-robin so memory stays bounded on
		// long-running servers.
		s.lats[s.latPos] = lat
		s.latPos = (s.latPos + 1) % w
	} else {
		s.lats = append(s.lats, lat)
	}
	s.noteStartLocked(t0)
	if t := t0.Add(lat); t.After(s.last) {
		s.last = t
	}
	s.mu.Unlock()
}

// noteStartLocked folds t0 into the earliest-submission marker; the caller
// holds s.mu.
func (s *Server) noteStartLocked(t0 time.Time) {
	if s.first.IsZero() || t0.Before(s.first) {
		s.first = t0
	}
}

// dispatch moves requests from the admission queue to the worker pool,
// batching same-attribute queries.
func (s *Server) dispatch() {
	defer s.wg.Done()
	defer close(s.work)
	for req := range s.admit {
		batch := []*request{req}
		if s.opts.BatchWindow > 0 {
			deadline := time.NewTimer(s.opts.BatchWindow)
		windowed:
			for len(batch) < s.opts.BatchMax {
				select {
				case r, ok := <-s.admit:
					if !ok {
						break windowed
					}
					batch = append(batch, r)
				case <-deadline.C:
					break windowed
				}
			}
			deadline.Stop()
		} else {
		drain:
			// Batch whatever queued up while the workers were busy; never
			// hold a query back waiting for company.
			for len(batch) < s.opts.BatchMax {
				select {
				case r, ok := <-s.admit:
					if !ok {
						break drain
					}
					batch = append(batch, r)
				default:
					break drain
				}
			}
		}
		// Group by primary attribute, preserving arrival order within a
		// group: the group's first query cracks, the rest ride the
		// read-only fast path.
		order := make([]string, 0, 4)
		groups := make(map[string][]*request, 4)
		for _, r := range batch {
			attr := r.q.Preds[0].Attr
			if _, ok := groups[attr]; !ok {
				order = append(order, attr)
			}
			groups[attr] = append(groups[attr], r)
		}
		for _, attr := range order {
			s.work <- groups[attr]
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for group := range s.work {
		for _, req := range group {
			s.serveRequest(req)
		}
	}
}

// serveRequest executes one admitted request, honoring its deadline: an
// abandoned or already-expired request is skipped without touching the
// engine (that skip is what un-wedges a queue stuck behind a slow crack),
// and a result whose caller timed out mid-execution is discarded — the
// caller's ErrTimeout accounting already covered the query.
func (s *Server) serveRequest(req *request) {
	defer close(req.done)
	if req.claimed.Load() {
		return // caller timed out while the request was queued
	}
	if req.expired(time.Now()) {
		if req.claimed.CompareAndSwap(false, true) {
			req.err = ErrTimeout
			s.met.timeout()
			s.recordError(req.t0, time.Now())
		}
		return
	}
	var t1 time.Time
	if s.timed(req.sp) {
		t1 = time.Now()
	}
	s.met.execStart()
	res, cost, err := safeQuery(s.e, req.q)
	s.met.execEnd()
	if !req.deadline.IsZero() && !req.claimed.CompareAndSwap(false, true) {
		return // caller gave up mid-execution; discard
	}
	req.res, req.cost, req.err = res, cost, err
	if err == nil {
		end := time.Now()
		if s.timed(req.sp) {
			if req.sp != nil {
				// Written before close(req.done); the caller reads after.
				req.sp.Queue, req.sp.Exec = t1.Sub(req.t0), end.Sub(t1)
			}
			s.met.observeQueue(t1.Sub(req.t0))
		}
		s.record(end.Sub(req.t0), req.t0)
	} else {
		s.recordError(req.t0, time.Now())
	}
}

// Close waits for in-flight queries, drains the queues, and stops the
// pool. Close is idempotent; Do after Close returns ErrClosed.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.inDo.Wait() // let racing Do calls finish
	s.bg.Wait()   // and detached timed-out executions release their slots
	if s.opts.Batch {
		close(s.admit)
		s.wg.Wait()
	}
}

// Stats summarizes the serving run so far.
type Stats struct {
	Queries int // completed queries (successful; errored queries are not counted here)
	// Errors counts queries that failed — an engine panic converted by
	// safeQuery (typically a malformed query) or a deadline expiry
	// (ErrTimeout under Options.Timeout). Failed queries contribute no
	// latency sample, so QPS and the percentiles describe the Queries
	// successes only; a nonzero Errors flags that the run was not healthy.
	Errors int
	// Sheds counts queries rejected with ErrOverloaded at the MaxWaiting
	// watermark. They are neither Queries nor Errors: nothing executed.
	Sheds   int
	Elapsed time.Duration // earliest submission to last completion
	QPS     float64       // Queries / Elapsed

	// Latency percentiles (wait + execute), conservative nearest-rank:
	// Pxx is sorted[ceil(p*(n-1))], i.e. the fractional rank rounded
	// upward, so a reported tail percentile is never below the true one.
	P50, P95, P99, Max time.Duration

	// Latencies holds the captured per-query latencies in completion
	// order (a copy; safe to keep) — every sample, or the retained window
	// when Options.LatencyWindow bounds it.
	Latencies []time.Duration

	// Reader-wait observability, from the shared engine wrapper when it
	// tracks contention (engine.ConcStatsOf). ReaderWait is cumulative
	// time readers spent blocked acquiring read access (always zero for
	// the lock-free Snapshot wrapper); ReaderWaits counts blocked
	// acquisitions; Snapshots counts versions published by the Snapshot
	// wrapper and Reclaimed the retired versions already freed.
	ReaderWait  time.Duration
	ReaderWaits int64
	Snapshots   int64
	Reclaimed   int64
}

// Stats captures a consistent snapshot of the server's counters. With
// LatencyWindow set, the percentiles (and Latencies) describe the most
// recent window while Queries and QPS count every completed query.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	lats := append([]time.Duration(nil), s.lats...)
	total := s.total
	errs := s.errs
	sheds := s.sheds
	first, last := s.first, s.last
	s.mu.Unlock()

	var elapsed time.Duration
	if len(lats) > 0 {
		elapsed = last.Sub(first)
	}
	st := Summarize(lats, errs, elapsed)
	st.Sheds = sheds
	if total != st.Queries {
		st.Queries = total
		if st.Elapsed > 0 {
			st.QPS = float64(total) / st.Elapsed.Seconds()
		}
	}
	if cs, ok := engine.ConcStatsOf(s.e); ok {
		st.ReaderWait = cs.ReaderWait
		st.ReaderWaits = cs.ReaderWaits
		st.Snapshots = cs.Snapshots
		st.Reclaimed = cs.Reclaimed
	}
	return st
}

// Summarize computes Stats from externally captured per-query latencies —
// the same conservative nearest-rank percentile math the server applies to
// its own samples, exported so load generators measuring from the client
// side (crackbench -remote) report comparable numbers. lats is retained in
// the returned Stats (not copied).
func Summarize(lats []time.Duration, errors int, elapsed time.Duration) Stats {
	st := Stats{Queries: len(lats), Errors: errors, Latencies: lats}
	if len(lats) == 0 {
		return st
	}
	st.Elapsed = elapsed
	if st.Elapsed > 0 {
		st.QPS = float64(st.Queries) / st.Elapsed.Seconds()
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) time.Duration {
		// Nearest-rank needs the ceiling: int() truncation toward zero
		// picks a rank below the percentile whenever the product is
		// non-integral (e.g. P99 of 200 samples read index 197 instead of
		// 198), systematically underreporting tail latency.
		i := int(math.Ceil(p * float64(len(sorted)-1)))
		return sorted[i]
	}
	st.P50, st.P95, st.P99 = pct(0.50), pct(0.95), pct(0.99)
	st.Max = sorted[len(sorted)-1]
	return st
}
