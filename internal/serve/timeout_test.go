package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/store"
)

// gatedEngine is a minimal engine whose Query blocks for a configurable
// delay — a stand-in for a crack that takes much longer than the serving
// deadline. QueryRO always refuses, so under the Concurrent wrapper every
// query takes the slow exclusive path, like a real cold crack would.
type gatedEngine struct {
	delay time.Duration
	calls atomic.Int64
}

func (g *gatedEngine) Name() string { return "gated" }
func (g *gatedEngine) Kind() engine.Kind {
	return engine.Scan
}

func (g *gatedEngine) Query(q engine.Query) (engine.Result, engine.Cost) {
	g.calls.Add(1)
	time.Sleep(g.delay)
	return engine.Result{N: 1, Cols: map[string][]store.Value{"B": {1}}}, engine.Cost{}
}

func (g *gatedEngine) Probe(q engine.Query) bool { return true }
func (g *gatedEngine) QueryRO(q engine.Query) (engine.Result, engine.Cost, bool) {
	return engine.Result{}, engine.Cost{}, false
}
func (g *gatedEngine) Insert(vals ...store.Value) int        { return 0 }
func (g *gatedEngine) Delete(key int)                        {}
func (g *gatedEngine) Prepare(attrs ...string) time.Duration { return 0 }
func (g *gatedEngine) Storage() int                          { return 0 }
func (g *gatedEngine) JoinInput(preds []engine.AttrPred, joinAttr string, projs []string) (engine.JoinInput, engine.Cost) {
	return engine.JoinInput{}, engine.Cost{}
}

var slowQuery = engine.Query{
	Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(0, 10)}},
	Projs: []string{"B"},
}

// TestTimeoutDuringExecution: the query is already executing when the
// deadline expires. Do must return ErrTimeout long before the execution
// finishes, the execution must release its slot in the background (a
// follow-up query gets a slot), and the timeout must count in Errors.
func TestTimeoutDuringExecution(t *testing.T) {
	for _, batch := range []bool{false, true} {
		g := &gatedEngine{delay: 600 * time.Millisecond}
		srv := New(g, Options{Workers: 1, Batch: batch, Timeout: 40 * time.Millisecond})
		t0 := time.Now()
		_, _, err := srv.Do(slowQuery)
		took := time.Since(t0)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("batch=%v: want ErrTimeout, got %v", batch, err)
		}
		if took >= g.delay {
			t.Fatalf("batch=%v: Do blocked %v — the full execution time; the deadline did not detach", batch, took)
		}
		// Close waits for the detached execution: afterwards the slot has
		// been released and the stats are final.
		srv.Close()
		st := srv.Stats()
		if st.Errors != 1 {
			t.Fatalf("batch=%v: Errors = %d, want 1", batch, st.Errors)
		}
		if st.Queries != 0 {
			t.Fatalf("batch=%v: timed-out query also counted as a success (Queries = %d)", batch, st.Queries)
		}
		if got := g.calls.Load(); got != 1 {
			t.Fatalf("batch=%v: engine executed %d times, want 1", batch, got)
		}
	}
}

// TestTimeoutWhileQueued: one slow query occupies the only worker slot;
// queries stacked behind it must time out without ever touching the
// engine — the skip that keeps a wedged queue from executing a backlog of
// already-abandoned work.
func TestTimeoutWhileQueued(t *testing.T) {
	for _, batch := range []bool{false, true} {
		g := &gatedEngine{delay: 600 * time.Millisecond}
		srv := New(g, Options{Workers: 1, Batch: batch, Timeout: 60 * time.Millisecond})

		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // the wedger
			defer wg.Done()
			srv.Do(slowQuery)
		}()
		time.Sleep(20 * time.Millisecond) // let it take the slot
		const waiters = 4
		timeouts := make(chan error, waiters)
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _, err := srv.Do(slowQuery)
				timeouts <- err
			}()
		}
		wg.Wait()
		for i := 0; i < waiters; i++ {
			if err := <-timeouts; !errors.Is(err, ErrTimeout) {
				t.Fatalf("batch=%v: waiter got %v, want ErrTimeout", batch, err)
			}
		}
		srv.Close()
		if got := g.calls.Load(); got != 1 {
			t.Fatalf("batch=%v: engine executed %d times, want 1 (abandoned waiters must not execute)", batch, got)
		}
		st := srv.Stats()
		// The wedger itself also timed out (delay >> timeout).
		if st.Errors != waiters+1 {
			t.Fatalf("batch=%v: Errors = %d, want %d", batch, st.Errors, waiters+1)
		}
	}
}

// TestTimeoutAccountingExactlyOnce: under a racy mix of queries that finish
// just around the deadline, every Do call is accounted exactly once —
// Queries + Errors equals the number of calls, regardless of which side of
// the deadline each one landed on.
func TestTimeoutAccountingExactlyOnce(t *testing.T) {
	for _, batch := range []bool{false, true} {
		g := &gatedEngine{delay: 2 * time.Millisecond}
		srv := New(g, Options{Workers: 2, Batch: batch, Timeout: 2 * time.Millisecond})
		const calls = 200
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < calls/8; j++ {
					srv.Do(slowQuery)
				}
			}()
		}
		wg.Wait()
		srv.Close()
		st := srv.Stats()
		if st.Queries+st.Errors != calls {
			t.Fatalf("batch=%v: Queries(%d) + Errors(%d) = %d, want %d",
				batch, st.Queries, st.Errors, st.Queries+st.Errors, calls)
		}
	}
}

// TestLatencyWindowBoundsHistory: with LatencyWindow set, the retained
// sample count is bounded while Queries and QPS keep counting everything —
// the invariant that keeps a long-running daemon's memory flat.
func TestLatencyWindowBoundsHistory(t *testing.T) {
	g := &gatedEngine{}
	srv := New(g, Options{Workers: 1, LatencyWindow: 8})
	defer srv.Close()
	const n = 30
	for i := 0; i < n; i++ {
		if _, _, err := srv.Do(slowQuery); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Queries != n {
		t.Fatalf("Queries = %d, want %d (window must not shrink the count)", st.Queries, n)
	}
	if len(st.Latencies) != 8 {
		t.Fatalf("retained %d samples, want the 8-sample window", len(st.Latencies))
	}
	if st.QPS <= 0 || st.P50 <= 0 {
		t.Fatalf("window stats implausible: %+v", st)
	}
}

// TestNoTimeoutFastQueries: with a deadline comfortably above the execution
// time nothing times out and results flow normally.
func TestNoTimeoutFastQueries(t *testing.T) {
	for _, batch := range []bool{false, true} {
		g := &gatedEngine{}
		srv := New(g, Options{Workers: 2, Batch: batch, Timeout: 5 * time.Second})
		for i := 0; i < 20; i++ {
			res, _, err := srv.Do(slowQuery)
			if err != nil {
				t.Fatalf("batch=%v: %v", batch, err)
			}
			if res.N != 1 {
				t.Fatalf("batch=%v: N = %d, want 1", batch, res.N)
			}
		}
		srv.Close()
		st := srv.Stats()
		if st.Queries != 20 || st.Errors != 0 {
			t.Fatalf("batch=%v: stats %d/%d, want 20/0", batch, st.Queries, st.Errors)
		}
	}
}
