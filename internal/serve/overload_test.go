package serve

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestOverloadSheds: with Workers=1 busy on a slow crack and MaxWaiting=2,
// a flood of submissions is mostly shed with ErrOverloaded — cheaply, not
// by stalling — while non-shed queries still complete correctly. Covers
// both direct and batching admission.
func TestOverloadSheds(t *testing.T) {
	for _, batch := range []bool{false, true} {
		g := &gatedEngine{delay: 50 * time.Millisecond}
		srv := New(g, Options{Workers: 1, Batch: batch, Queue: 16, MaxWaiting: 2})

		const flood = 32
		var wg sync.WaitGroup
		var mu sync.Mutex
		var shed, ok, other int
		for i := 0; i < flood; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _, err := srv.Do(slowQuery)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					other++
				}
			}()
		}
		wg.Wait()
		if other != 0 {
			t.Errorf("batch=%v: %d unexpected errors", batch, other)
		}
		if shed == 0 {
			t.Errorf("batch=%v: flood of %d at MaxWaiting=2 shed nothing", batch, flood)
		}
		if ok == 0 {
			t.Errorf("batch=%v: everything was shed; watermark must admit work", batch)
		}
		st := srv.Stats()
		if st.Sheds != shed {
			t.Errorf("batch=%v: Stats.Sheds=%d, want %d", batch, st.Sheds, shed)
		}
		if st.Errors != 0 {
			t.Errorf("batch=%v: sheds leaked into Errors (%d)", batch, st.Errors)
		}
		// The server is healthy after the storm: a lone query succeeds.
		if _, _, err := srv.Do(slowQuery); err != nil {
			t.Errorf("batch=%v: post-storm query failed: %v", batch, err)
		}
		srv.Close()
	}
}

// TestDoUntilExpiredSkipsExecution: a DoUntil whose deadline has already
// passed returns ErrTimeout without ever reaching the engine, in both
// modes — the server-side half of the wire TTL hint.
func TestDoUntilExpiredSkipsExecution(t *testing.T) {
	for _, batch := range []bool{false, true} {
		g := &gatedEngine{}
		srv := New(g, Options{Workers: 1, Batch: batch})
		before := g.calls.Load()
		_, _, err := srv.DoUntil(slowQuery, time.Now().Add(-time.Second))
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("batch=%v: want ErrTimeout for expired deadline, got %v", batch, err)
		}
		if g.calls.Load() != before {
			t.Errorf("batch=%v: expired request reached the engine", batch)
		}
		if st := srv.Stats(); st.Errors != 1 {
			t.Errorf("batch=%v: expired request not counted: Errors=%d", batch, st.Errors)
		}
		srv.Close()
	}
}

// TestDoUntilNoSlotLeak is the regression test for the TTL satellite: a
// burst of requests that all expire while one slow query holds the only
// worker slot must not leak slots — afterwards the full worker capacity is
// still available and fresh queries run.
func TestDoUntilNoSlotLeak(t *testing.T) {
	for _, batch := range []bool{false, true} {
		g := &gatedEngine{delay: 150 * time.Millisecond}
		srv := New(g, Options{Workers: 1, Batch: batch, Queue: 64})

		// Occupy the worker.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Do(slowQuery)
		}()
		time.Sleep(20 * time.Millisecond)

		// 16 requests whose deadlines expire while the worker is busy.
		var expired sync.WaitGroup
		for i := 0; i < 16; i++ {
			expired.Add(1)
			go func() {
				defer expired.Done()
				_, _, err := srv.DoUntil(slowQuery, time.Now().Add(30*time.Millisecond))
				if !errors.Is(err, ErrTimeout) {
					t.Errorf("batch=%v: want ErrTimeout, got %v", batch, err)
				}
			}()
		}
		expired.Wait()
		wg.Wait()

		// All slots must be back: a query with plenty of deadline runs fine.
		g.delay = 0
		if _, _, err := srv.DoUntil(slowQuery, time.Now().Add(5*time.Second)); err != nil {
			t.Errorf("batch=%v: slot leaked — post-expiry query failed: %v", batch, err)
		}
		srv.Close()
	}
}
