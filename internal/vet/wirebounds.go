package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WireBounds guards the wire package's prealloc-DoS contract: every
// decode-side make([]T, n) / make(map[...], n) must take its size from a
// count that cannot exceed the bytes actually remaining — which is exactly
// what consumeLen produces. A size that reaches make straight from a
// decoded integer lets a 5-byte adversarial frame demand a multi-gigabyte
// allocation; the fuzz targets probe this property, this checker proves it
// per call site. A size is accepted when it derives from:
//
//   - a consumeLen result (the canonical bounded count),
//   - a constant, len(), or cap(),
//   - a variable that an earlier `if v > limit { return ... }` guard
//     bounds explicitly (the frame-header path, where the length is
//     validated before any payload exists to measure against),
//
// or arithmetic over those. Only non-test files of wire packages are
// checked: tests build their own inputs, and encoders allocate from data
// the process already holds either way — but the checker cannot tell an
// encoder from a decoder, so it holds both to the same rule (encode-side
// sizes all come from len() anyway).
var WireBounds = &Checker{
	Name: "wirebounds",
	Doc:  "wire decode preallocations must be bounded via consumeLen",
	Run:  runWireBounds,
}

func runWireBounds(pass *Pass) {
	if pass.Name != "wire" && !strings.Contains(pass.PkgPath, "internal/wire") {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					wireBoundsBody(pass, fn.Body)
				}
				return false // bodies handle their own nested literals
			}
			return true
		})
	}
}

func wireBoundsBody(pass *Pass, body *ast.BlockStmt) {
	blessed := make(map[types.Object]bool)

	identObj := func(id *ast.Ident) types.Object {
		if o := pass.Info.Defs[id]; o != nil {
			return o
		}
		return pass.Info.Uses[id]
	}

	// unwrap strips parens and conversions: `uint64(n)` guards n.
	var unwrap func(e ast.Expr) ast.Expr
	unwrap = func(e ast.Expr) ast.Expr {
		switch x := e.(type) {
		case *ast.ParenExpr:
			return unwrap(x.X)
		case *ast.CallExpr:
			if tv, ok := pass.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				return unwrap(x.Args[0])
			}
		}
		return e
	}

	// isConsumeLen matches a call to a function named consumeLen (the
	// bounded-count decoder; matched by name so fixtures work).
	isConsumeLen := func(call *ast.CallExpr) bool {
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == "consumeLen"
		case *ast.SelectorExpr:
			return fun.Sel.Name == "consumeLen"
		}
		return false
	}

	// terminates reports whether a statement list unconditionally leaves
	// the function (the body of a size guard).
	terminates := func(stmts []ast.Stmt) bool {
		if len(stmts) == 0 {
			return false
		}
		switch s := stmts[len(stmts)-1].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					return id.Name == "panic"
				}
			}
		}
		return false
	}

	// isBlessed reports whether e is provably bounded.
	var isBlessed func(e ast.Expr) bool
	isBlessed = func(e ast.Expr) bool {
		if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
			return true // any constant expression
		}
		switch x := e.(type) {
		case *ast.Ident:
			obj := identObj(x)
			return obj != nil && blessed[obj]
		case *ast.ParenExpr:
			return isBlessed(x.X)
		case *ast.BinaryExpr:
			return isBlessed(x.X) && isBlessed(x.Y)
		case *ast.UnaryExpr:
			return isBlessed(x.X)
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "len" || id.Name == "cap" || id.Name == "min") {
					return true
				}
			}
			if tv, ok := pass.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				return isBlessed(x.Args[0]) // conversion of a bounded value
			}
		}
		return false
	}

	// Bless fixpoint: consumeLen results, comparison guards with
	// terminating bodies, and propagation through bounded assignments.
	for changed := true; changed; {
		changed = false
		bless := func(id *ast.Ident) {
			if obj := identObj(id); obj != nil && !blessed[obj] {
				blessed[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 {
					if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isConsumeLen(call) && len(s.Lhs) >= 1 {
						if id, ok := s.Lhs[0].(*ast.Ident); ok {
							bless(id)
						}
						return true
					}
				}
				if len(s.Lhs) == len(s.Rhs) {
					for i, rhs := range s.Rhs {
						if id, ok := s.Lhs[i].(*ast.Ident); ok && isBlessed(rhs) {
							bless(id)
						}
					}
				}
			case *ast.IfStmt:
				// `if v > limit { return err }` bounds v for the paths
				// that continue.
				cmp, ok := s.Cond.(*ast.BinaryExpr)
				if !ok || !terminates(s.Body.List) {
					return true
				}
				switch cmp.Op {
				case token.GTR, token.GEQ, token.LSS, token.LEQ, token.NEQ:
					for _, side := range []ast.Expr{cmp.X, cmp.Y} {
						if id, ok := unwrap(side).(*ast.Ident); ok {
							bless(id)
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		for _, sz := range call.Args[1:] {
			if !isBlessed(sz) {
				pass.Reportf(call.Pos(), "preallocation size does not derive from consumeLen (or an explicit bound guard): a corrupt length can demand an arbitrary allocation")
				break
			}
		}
		return true
	})
}
