package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockPair enforces sync.Mutex / sync.RWMutex discipline per function:
// Lock must pair with Unlock and RLock with RUnlock on every path (a
// return while a lock is held, or a branch that releases on one arm only,
// is the bug class behind the PR 7 per-tuple-RLock fix); acquiring a lock
// the function already holds (same receiver chain) is flagged as a
// self-deadlock; and releasing with the wrong method (Lock→RUnlock) is a
// pairing-class mismatch. Locks handed across function boundaries (a
// helper that locks for its caller) are out of scope: the checker only
// pairs what it can see inside one body, so it never reports a release
// without a visible acquire.
var LockPair = &Checker{
	Name: "lockpair",
	Doc:  "Lock/Unlock and RLock/RUnlock must pair on every path",
	Run:  runLockPair,
}

// lockMethodMode classifies the four mutex methods into (mode, acquire).
func lockMethodMode(name string) (mode string, acquire, ok bool) {
	switch name {
	case "Lock":
		return "W", true, true
	case "Unlock":
		return "W", false, true
	case "RLock":
		return "R", true, true
	case "RUnlock":
		return "R", false, true
	}
	return "", false, false
}

// isSyncLock reports whether t (after deref) is sync.Mutex or
// sync.RWMutex.
func isSyncLock(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockEvent matches call as a mutex method call on a nameable receiver
// chain ("s.mu", "e.inner.statsMu").
func (p *Pass) lockEvent(call *ast.CallExpr, def bool) (event, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return event{}, false
	}
	mode, acquire, ok := lockMethodMode(sel.Sel.Name)
	if !ok {
		return event{}, false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || !isSyncLock(tv.Type) {
		return event{}, false
	}
	key, ok := recvChain(sel.X)
	if !ok {
		return event{}, false
	}
	kind := evRelease
	if acquire {
		kind = evAcquire
	}
	return event{kind: kind, key: key, mode: mode, def: def, pos: call.Pos(), call: call}, true
}

func runLockPair(pass *Pass) {
	funcBodies(pass.Package, func(name string, body *ast.BlockStmt) {
		lockPairBody(pass, body)
	})
}

func lockPairBody(pass *Pass, body *ast.BlockStmt) {
	classify := func(stmt ast.Stmt) []event {
		var evs []event
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if ev, ok := pass.lockEvent(call, false); ok {
					evs = append(evs, ev)
				}
			}
		case *ast.DeferStmt:
			if ev, ok := pass.lockEvent(s.Call, true); ok {
				evs = append(evs, ev)
				break
			}
			// defer func() { ...; mu.Unlock(); ... }()
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if ev, ok := pass.lockEvent(call, true); ok && ev.kind == evRelease {
							evs = append(evs, ev)
						}
					}
					return true
				})
			}
		}
		return evs
	}

	relName := map[string]string{"W": "Unlock", "R": "RUnlock"}
	acqName := map[string]string{"W": "Lock", "R": "RLock"}
	walkFlow(pass, body, flowHooks{
		classify: classify,
		describe: func(key string) string { return key },
		onDoubleAcquire: func(e event, prev *heldRes) {
			pass.Reportf(e.pos, "%s.%s: %s is already held here (acquired with %s); double acquire self-deadlocks",
				e.key, acqName[e.mode], e.key, acqName[prev.mode])
		},
		onMismatch: func(e event, prev *heldRes) {
			pass.Reportf(e.pos, "%s released with %s but was acquired with %s",
				e.key, relName[e.mode], acqName[prev.mode])
		},
		onDoubleRelease: func(e event) {
			pass.Reportf(e.pos, "%s unlocked here but a deferred unlock is still pending (double release)", e.key)
		},
		onLeak: func(key string, h *heldRes, at token.Pos, how string) {
			pass.Reportf(at, "%s %s (acquired with %s and never released on this path)",
				key, how, acqName[h.mode])
		},
		onDiverge: func(key string, h *heldRes, at token.Pos) {
			pass.Reportf(h.pos, "%s is released on some paths but still held on others", key)
		},
	})
}
