package vet

import (
	"go/ast"
	"go/types"
)

// DetRand keeps the deterministic kernel and tape-replay packages —
// internal/crack, internal/sideways, internal/partial — free of wall-clock
// and ambient-randomness calls. Those packages carry the
// layout-equivalence guarantees (replaying a crack tape must reproduce the
// exact physical layout; all policy pivots derive from a seeded hash), and
// a single time.Now or global math/rand call makes a replay diverge from
// the run that produced the tape. Explicitly seeded local generators
// (rand.New(rand.NewSource(seed))) are allowed; the process-global
// functions and the clock are not. Test files are exempt — they measure
// and fuzz, which is exactly what needs clocks and randomness.
var DetRand = &Checker{
	Name: "detrand",
	Doc:  "no time.Now / global math/rand in deterministic kernel packages",
	Run:  runDetRand,
}

// detRandPackages names the deterministic packages by package name (name,
// not path, so fixtures match too).
var detRandPackages = map[string]bool{
	"crack":    true,
	"sideways": true,
	"partial":  true,
}

// detRandAllowed lists the math/rand functions that construct explicitly
// seeded local generators; everything else package-level draws from (or
// seeds) ambient process state.
var detRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewZipf":    true,
	"NewChaCha8": true,
}

func runDetRand(pass *Pass) {
	if !detRandPackages[pass.Name] {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, isFunc := obj.(*types.Func)
			if !isFunc {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a method on a local, explicitly seeded generator
			}
			switch obj.Pkg().Path() {
			case "time":
				if obj.Name() == "Now" || obj.Name() == "Since" || obj.Name() == "Until" {
					pass.Reportf(sel.Pos(), "time.%s in a deterministic kernel package: replay would diverge from the recorded run", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if !detRandAllowed[obj.Name()] {
					pass.Reportf(sel.Pos(), "global %s.%s in a deterministic kernel package: use an explicitly seeded rand.New(rand.NewSource(seed))", obj.Pkg().Name(), obj.Name())
				}
			}
			return true
		})
	}
}
