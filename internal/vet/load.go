package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for checking. When the
// directory contains in-package test files they are type-checked together
// with the library files (as `go test` does), so the checkers see test code
// too; an external foo_test package in the same directory is loaded as its
// own Package.
type Package struct {
	PkgPath string // import path ("crackstore/internal/wire")
	Name    string // package name ("wire")
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	testFiles map[*ast.File]bool
}

// IsTestFile reports whether f came from a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// loader resolves module-local imports from its registry of already
// type-checked library packages and everything else through the compiler
// export data (falling back to type-checking the standard library from
// source where export data is unavailable). Only the two stdlib importers
// are used — crackvet must not grow dependencies, exactly like the module
// it checks.
type loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	reg     map[string]*types.Package // import path -> checked library package
	gc      types.Importer
	src     types.Importer
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modPath: modPath,
		modRoot: modRoot,
		reg:     make(map[string]*types.Package),
		gc:      importer.Default(),
		src:     importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.reg[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		return nil, fmt.Errorf("vet: module package %s not loaded (dependency cycle or missing dir?)", path)
	}
	if p, err := l.gc.Import(path); err == nil {
		return p, nil
	}
	return l.src.Import(path)
}

// findModule walks up from dir to the enclosing go.mod, returning the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("vet: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("vet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// skipDir reports directories the package walk never descends into.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// goDirs returns every directory under root that contains .go files.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if p != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// dirFiles parses every .go file in dir, split into the library files, the
// in-package test files, and the external (foo_test) test files.
func (l *loader) dirFiles(dir string) (lib, tests, xtests []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			xtests = append(xtests, f)
		case strings.HasSuffix(name, "_test.go"):
			tests = append(tests, f)
		default:
			lib = append(lib, f)
		}
	}
	return lib, tests, xtests, nil
}

// importPath maps a module directory to its import path.
func (l *loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

func localImports(files []*ast.File, modPath string) []string {
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == modPath || strings.HasPrefix(p, modPath+"/") {
				out = append(out, p)
			}
		}
	}
	return out
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

func (l *loader) check(path, dir string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("vet: type-checking %s: %w", dir, err)
	}
	return pkg, info, nil
}

// Load type-checks the whole module rooted above dir and returns the
// analysis packages selected by patterns ("./...", "./internal/wire", ...),
// interpreted relative to dir. Every module package is type-checked (the
// targets may import any of them); only the matched ones are returned.
func Load(dir string, patterns []string) ([]*Package, error) {
	modRoot, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(modRoot, modPath)

	dirs, err := goDirs(modRoot)
	if err != nil {
		return nil, err
	}

	// Parse every module package once.
	type rawPkg struct {
		dir, path          string
		lib, tests, xtests []*ast.File
		deps               []string
	}
	raws := make(map[string]*rawPkg)
	for _, d := range dirs {
		lib, tests, xtests, err := l.dirFiles(d)
		if err != nil {
			return nil, err
		}
		if len(lib) == 0 && len(tests) == 0 && len(xtests) == 0 {
			continue
		}
		path, err := l.importPath(d)
		if err != nil {
			return nil, err
		}
		raws[path] = &rawPkg{dir: d, path: path, lib: lib, tests: tests, xtests: xtests,
			deps: localImports(lib, modPath)}
	}

	// Type-check library files in dependency order, registering each so
	// later packages (and test variants) resolve their module imports.
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("vet: import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		r := raws[p]
		for _, d := range r.deps {
			if _, ok := raws[d]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	var paths []string
	for p := range raws {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	for _, p := range order {
		r := raws[p]
		if len(r.lib) == 0 {
			continue
		}
		pkg, _, err := l.check(p, r.dir, r.lib)
		if err != nil {
			return nil, err
		}
		l.reg[p] = pkg
	}

	// Resolve the target directories.
	targets, err := expandPatterns(dir, modRoot, patterns)
	if err != nil {
		return nil, err
	}

	// Build the analysis packages: library+tests together (re-checked, not
	// registered, so test-only imports can never create a module cycle),
	// plus the external test package when present.
	var out []*Package
	for _, p := range order {
		r := raws[p]
		if !targets[r.dir] {
			continue
		}
		if len(r.lib)+len(r.tests) > 0 {
			files := append(append([]*ast.File(nil), r.lib...), r.tests...)
			pkg, info, err := l.check(p, r.dir, files)
			if err != nil {
				return nil, err
			}
			ap := &Package{
				PkgPath: p, Name: pkg.Name(), Dir: r.dir, Fset: l.fset,
				Files: files, Types: pkg, Info: info,
				testFiles: make(map[*ast.File]bool, len(r.tests)),
			}
			for _, f := range r.tests {
				ap.testFiles[f] = true
			}
			out = append(out, ap)
		}
		if len(r.xtests) > 0 {
			pkg, info, err := l.check(p+"_test", r.dir, r.xtests)
			if err != nil {
				return nil, err
			}
			ap := &Package{
				PkgPath: p + "_test", Name: pkg.Name(), Dir: r.dir, Fset: l.fset,
				Files: r.xtests, Types: pkg, Info: info,
				testFiles: make(map[*ast.File]bool, len(r.xtests)),
			}
			for _, f := range r.xtests {
				ap.testFiles[f] = true
			}
			out = append(out, ap)
		}
	}
	return out, nil
}

// LoadDir type-checks the single directory dir as one self-contained
// package (stdlib imports only. The fixture loader for checker tests.)
func LoadDir(dir string) (*Package, error) {
	l := newLoader(dir, "fixture")
	lib, tests, _, err := l.dirFiles(dir)
	if err != nil {
		return nil, err
	}
	files := append(lib, tests...)
	if len(files) == 0 {
		return nil, fmt.Errorf("vet: no Go files in %s", dir)
	}
	pkg, info, err := l.check("fixture/"+filepath.Base(dir), dir, files)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath: pkg.Path(), Name: pkg.Name(), Dir: dir, Fset: l.fset,
		Files: files, Types: pkg, Info: info,
	}, nil
}

func expandPatterns(cwd, modRoot string, patterns []string) (map[string]bool, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets := make(map[string]bool)
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			rec, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		abs, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(abs+string(filepath.Separator), modRoot+string(filepath.Separator)) {
			return nil, fmt.Errorf("vet: pattern %q escapes module root %s", pat, modRoot)
		}
		if rec {
			ds, err := goDirs(abs)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				targets[d] = true
			}
		} else {
			targets[abs] = true
		}
	}
	return targets, nil
}
