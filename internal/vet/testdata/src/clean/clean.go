// Fixture proving the suite is quiet on idiomatic code: epoch pins behind
// defer, paired locks, copy-then-publish version replacement.
package clean

import (
	"sync"
	"sync/atomic"
)

type Pin struct{ slot int32 }

type Epoch struct{ n int }

func (e *Epoch) Enter() Pin { e.n++; return Pin{} }
func (e *Epoch) Exit(p Pin) { e.n-- }

type version struct {
	vals []int64
}

type store struct {
	mu  sync.Mutex
	cur atomic.Pointer[version]
	ep  Epoch
}

func work() {}

func (s *store) read() int64 {
	pin := s.ep.Enter()
	defer s.ep.Exit(pin)
	v := s.cur.Load()
	if len(v.vals) == 0 {
		return 0
	}
	return v.vals[0]
}

func (s *store) replace(vals []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := &version{vals: append([]int64(nil), vals...)}
	s.cur.Store(next)
}

func (s *store) bump() {
	s.mu.Lock()
	work()
	s.mu.Unlock()
}
