// Fixture for the frozenversion checker: writes through values loaded from
// atomic.Pointer are flagged; fresh copies and pointees of published
// containers stay writable.
package frozenversion

import "sync/atomic"

type version struct {
	vals []int64
	n    int
}

type col struct {
	cur atomic.Pointer[version]
}

func okRead(c *col) int64 {
	v := c.cur.Load()
	if len(v.vals) == 0 {
		return int64(v.n)
	}
	return v.vals[0]
}

// okReplace is the legal write path: copy, mutate the copy, publish.
func okReplace(c *col) {
	v := c.cur.Load()
	next := &version{vals: append([]int64(nil), v.vals...), n: v.n}
	next.n++
	c.cur.Store(next)
}

// okStructCopy: a value copy of the struct is private memory.
func okStructCopy(c *col) int {
	v := c.cur.Load()
	tmp := *v
	tmp.n = 7
	return tmp.n
}

func badFieldWrite(c *col) {
	v := c.cur.Load()
	v.n = 1 // want "published versions are immutable"
}

func badDirectWrite(c *col) {
	c.cur.Load().n = 2 // want "published versions are immutable"
}

func badSliceElem(c *col) {
	v := c.cur.Load()
	v.vals[0] = 9 // want "published versions are immutable"
}

func badAliasedSlice(c *col) {
	vals := c.cur.Load().vals
	vals[1] = 3 // want "published versions are immutable"
}

func badCopyInto(c *col, src []int64) {
	v := c.cur.Load()
	copy(v.vals, src) // want "published versions are immutable"
}

func badIncDec(c *col) {
	c.cur.Load().n++ // want "published versions are immutable"
}

type item struct{ n int }

type reg struct {
	m atomic.Pointer[map[string]*item]
}

// okPointees: the pointees held by a published map are independently
// synchronized live objects, not part of the frozen version.
func okPointees(r *reg) {
	for _, it := range *r.m.Load() {
		it.n = 5
	}
}

func badMapInsert(r *reg) {
	m := *r.m.Load()
	m["x"] = nil // want "published versions are immutable"
}
