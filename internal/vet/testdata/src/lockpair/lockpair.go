// Fixture for the lockpair checker: per-path Lock/Unlock and
// RLock/RUnlock pairing over sync.Mutex and sync.RWMutex fields.
package lockpair

import "sync"

type S struct {
	mu  sync.Mutex
	rmu sync.RWMutex
	n   int
}

func work() {}

func (s *S) deferredOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func (s *S) inlineOK() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *S) deferredLitOK() {
	s.rmu.RLock()
	defer func() {
		work()
		s.rmu.RUnlock()
	}()
	work()
}

func (s *S) bothModesOK() {
	s.rmu.RLock()
	s.rmu.RUnlock()
	s.rmu.Lock()
	s.rmu.Unlock()
}

func (s *S) leakOnReturn(b bool) {
	s.mu.Lock()
	if b {
		return // want "still held at return"
	}
	s.mu.Unlock()
}

func (s *S) leakToEnd() {
	s.mu.Lock() // want "not released before the function returns"
	s.n++
}

func (s *S) doubleAcquire() {
	s.mu.Lock()
	s.mu.Lock() // want "self-deadlocks"
	s.mu.Unlock()
}

func (s *S) modeMismatch() {
	s.rmu.Lock()
	s.rmu.RUnlock() // want "released with RUnlock but was acquired with Lock"
}

func (s *S) divergingPaths(b bool) {
	s.rmu.RLock() // want "released on some paths but still held on others"
	if b {
		s.rmu.RUnlock()
	}
}
