// Fixture for the exhaustive checker's engine.Kind coverage (the package
// is named engine so the enum reads engine.Kind, exactly as in the repo).
package engine

type Kind int

const (
	Scan Kind = iota
	Crack
	Sideways
)

func name(k Kind) string {
	switch k { // want "misses Sideways and has no default arm"
	case Scan:
		return "scan"
	case Crack:
		return "crack"
	}
	return ""
}

func okDefaultArm(k Kind) string {
	switch k {
	case Scan:
		return "scan"
	default:
		return "?"
	}
}

func okFullCoverage(k Kind) string {
	switch k {
	case Scan:
		return "scan"
	case Crack:
		return "crack"
	case Sideways:
		return "sideways"
	}
	return ""
}
