// Fixture for the epochpin checker: a structural stand-in for
// internal/crack's Epoch/Pin pair, with one function per violation class
// and the legal patterns alongside them.
package epochpin

type Pin struct{ slot int32 }

type Epoch struct{ n int }

func (e *Epoch) Enter() Pin { e.n++; return Pin{} }
func (e *Epoch) Exit(p Pin) { e.n-- }

func work() {}

// deferredOK is the canonical pattern: the pin survives every edge.
func deferredOK(ep *Epoch) {
	pin := ep.Enter()
	defer ep.Exit(pin)
	work()
}

// immediateOK: nothing that can panic runs while the pin is held, so a
// non-deferred release is sound.
func immediateOK(ep *Epoch) {
	pin := ep.Enter()
	ep.Exit(pin)
}

func deferredLitOK(ep *Epoch) {
	pin := ep.Enter()
	defer func() {
		work()
		ep.Exit(pin)
	}()
	work()
}

func discarded(ep *Epoch) {
	ep.Enter() // want "pin discarded"
}

func discardedBlank(ep *Epoch) {
	_ = ep.Enter() // want "pin discarded"
}

func earlyReturn(ep *Epoch, b bool) {
	pin := ep.Enter()
	if b {
		return // want "still held at return"
	}
	ep.Exit(pin)
}

func divergePaths(ep *Epoch, b bool) {
	pin := ep.Enter() // want "released on some paths but not others"
	if b {
		ep.Exit(pin)
	}
}

func panicEdge(ep *Epoch) {
	pin := ep.Enter() // want "non-panic edge"
	work()
	ep.Exit(pin)
}

func reacquired(ep *Epoch) {
	pin := ep.Enter()
	pin = ep.Enter() // want "reacquired"
	ep.Exit(pin)
}

func releasedTwice(ep *Epoch) {
	pin := ep.Enter()
	defer ep.Exit(pin)
	ep.Exit(pin) // want "released twice"
}

type holder struct{ p Pin }

func escapesToStruct(ep *Epoch, h *holder) {
	pin := ep.Enter()
	h.p = pin // want "escapes its acquiring statement"
	ep.Exit(pin)
}

func enterEscapes(ep *Epoch) []Pin {
	return []Pin{ep.Enter()} // want "Enter result escapes"
}
