// Fixture for the wirebounds and exhaustive checkers: a miniature wire
// package with a consumeLen-style bounded count decoder, decode-side
// preallocations, and switches over the Op/Status enums.
package wire

type Op byte

const (
	OpQuery  Op = 1
	OpInsert Op = 2
	OpPing   Op = 3
)

type Status byte

const (
	StatusOK  Status = 0
	StatusErr Status = 1
)

// consumeLen decodes a count and refuses any value exceeding what the
// remaining input could possibly hold (minSize bytes per element).
func consumeLen(b []byte, minSize int) (int, []byte, bool) {
	if len(b) == 0 {
		return 0, b, false
	}
	n := int(b[0])
	if n > len(b[1:])/minSize {
		return 0, b, false
	}
	return n, b[1:], true
}

func okBounded(b []byte) []int64 {
	n, rest, ok := consumeLen(b, 8)
	if !ok {
		return nil
	}
	_ = rest
	return make([]int64, n)
}

// okGuarded mirrors the frame-header path: the length is validated against
// an explicit limit before any payload exists to measure it against.
func okGuarded(b []byte, maxFrame int) []byte {
	n := int(b[0])
	if uint64(n) > uint64(maxFrame) {
		return nil
	}
	return make([]byte, n)
}

func okFromLen(b []byte) []byte {
	dst := make([]byte, len(b))
	copy(dst, b)
	return dst
}

func okConstant() []int {
	return make([]int, 16)
}

func badUnbounded(b []byte) []int64 {
	n := int(b[0])
	return make([]int64, n) // want "preallocation size"
}

func badMapPrealloc(b []byte) map[int]int {
	n := int(b[0])
	return make(map[int]int, n) // want "preallocation size"
}

func describeOp(op Op) string {
	switch op { // want "misses OpPing and has no default arm"
	case OpQuery:
		return "query"
	case OpInsert:
		return "insert"
	}
	return "?"
}

func okDefaultArm(op Op) string {
	switch op {
	case OpQuery:
		return "query"
	default:
		return "other"
	}
}

func okFullCoverage(st Status) string {
	switch st {
	case StatusOK:
		return "ok"
	case StatusErr:
		return "err"
	}
	return ""
}

func badEmptySwitch(st Status) int {
	switch st { // want "misses StatusErr, StatusOK and has no default arm"
	}
	return 0
}
