// Fixture for the detrand checker (the package is named crack so the
// deterministic-kernel rule applies, exactly as in the repo).
package crack

import (
	"math/rand"
	"time"
)

// okSeeded: an explicitly seeded local generator is deterministic.
func okSeeded(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63()
}

func badNow() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since"
}

func badGlobalRand() int {
	return rand.Intn(10) // want "global rand.Intn"
}
