// Fixture for the exhaustive checker's obs.Stage coverage (the package
// is named obs so the enum reads obs.Stage, exactly as in the repo).
package obs

type Stage uint8

const (
	StageClientSend Stage = 1
	StageQueue      Stage = 2
	StageExecute    Stage = 3
)

func name(s Stage) string {
	switch s { // want "misses StageExecute and has no default arm"
	case StageClientSend:
		return "client_send"
	case StageQueue:
		return "queue"
	}
	return ""
}

func okDefaultArm(s Stage) string {
	switch s {
	case StageClientSend:
		return "client_send"
	default:
		return "?"
	}
}

func okFullCoverage(s Stage) string {
	switch s {
	case StageClientSend:
		return "client_send"
	case StageQueue:
		return "queue"
	case StageExecute:
		return "execute"
	}
	return ""
}
