// Fixture for the exhaustive checker's wal.RecType coverage (the package
// is named wal so the enum reads wal.RecType, exactly as in the repo). A
// recovery switch that silently skips a new record type replays a
// corrupted store, so these switches must cover every constant or decide
// their unknown-value behavior in a default arm.
package wal

type RecType byte

const (
	RecInsert     RecType = 1
	RecDelete     RecType = 2
	RecCrack      RecType = 3
	RecCheckpoint RecType = 4
)

func apply(t RecType) string {
	switch t { // want "misses RecCheckpoint, RecCrack and has no default arm"
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	}
	return ""
}

func okDefaultArm(t RecType) string {
	switch t {
	case RecInsert:
		return "insert"
	default:
		return "?"
	}
}

func okFullCoverage(t RecType) string {
	switch t {
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	case RecCrack:
		return "crack"
	case RecCheckpoint:
		return "checkpoint"
	}
	return ""
}
