// Fixture for //crackvet:ignore handling: a correctly named pragma
// suppresses (and is counted), a wrong checker name does not.
package pragma

type Pin struct{ slot int32 }

type Epoch struct{ n int }

func (e *Epoch) Enter() Pin { e.n++; return Pin{} }
func (e *Epoch) Exit(p Pin) { e.n-- }

func work() {}

func suppressed(ep *Epoch) {
	//crackvet:ignore epochpin fixture exercising the suppression pragma
	pin := ep.Enter()
	work()
	ep.Exit(pin)
}

func wrongCheckerName(ep *Epoch) {
	//crackvet:ignore lockpair a wrong checker name must not silence epochpin
	pin := ep.Enter() // want "non-panic edge"
	work()
	ep.Exit(pin)
}
