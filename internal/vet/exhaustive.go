package vet

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive requires every switch over the protocol and engine enums —
// wire.Op, wire.Status, engine.Kind, wal.RecType, obs.Stage — to either
// cover every constant declared for the type or carry an explicit default
// arm. The enums grow (a new op, a new status, a new engine kind, a new
// WAL record type, a new trace stage), and a switch silently falling
// through on the new value is how a decoder mis-frames, a dispatcher
// drops a request, recovery skips a logged write, or a trace renderer
// drops a span; the default arm forces each site to decide its
// unknown-value behavior.
var Exhaustive = &Checker{
	Name: "exhaustive",
	Doc:  "switches over wire.Op, wire.Status, engine.Kind, wal.RecType, obs.Stage must be exhaustive or have a default",
	Run:  runExhaustive,
}

// exhaustiveTypes names the enum types the checker covers, as
// packageName.TypeName (package name, not path, so fixtures match too).
var exhaustiveTypes = map[string]bool{
	"wire.Op":     true,
	"wire.Status": true,
	"engine.Kind": true,
	"wal.RecType": true,
	"obs.Stage":   true,
}

func runExhaustive(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok || tv.Type == nil {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil {
				return true
			}
			typeName := obj.Pkg().Name() + "." + obj.Name()
			if !exhaustiveTypes[typeName] {
				return true
			}

			// Every package-level constant of the tag type, by value (so a
			// renamed alias constant still counts as covering its value).
			declared := make(map[string]string) // exact value -> first name
			scope := obj.Pkg().Scope()
			for _, name := range scope.Names() {
				c, ok := scope.Lookup(name).(*types.Const)
				if !ok || !types.Identical(c.Type(), named) {
					continue
				}
				v := c.Val().ExactString()
				if _, ok := declared[v]; !ok {
					declared[v] = name
				}
			}
			if len(declared) == 0 {
				return true
			}

			covered := make(map[string]bool)
			hasDefault := false
			for _, cs := range sw.Body.List {
				cc, ok := cs.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if etv, ok := pass.Info.Types[e]; ok && etv.Value != nil {
						covered[etv.Value.ExactString()] = true
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for v, name := range declared {
				if !covered[v] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(sw.Pos(), "switch over %s misses %s and has no default arm",
					typeName, strings.Join(missing, ", "))
			}
			return true
		})
	}
}
