package vet

import (
	"go/ast"
	"go/types"
)

// FrozenVersion enforces the snapshot immutability contract: a value
// loaded from an atomic.Pointer[T] is a published version — readers
// traverse it lock-free, so nothing reachable from it may ever be written.
// The checker flags any assignment through such a value: a field store, a
// slice/map element store, a store through the deref, or a copy() into a
// slice that came from it — whether written through the Load() call
// directly or through a local alias.
//
// Propagation is value-structural: it follows field selections, indexing,
// slicing, and deref of the loaded pointer, and it follows aliases whose
// type shares memory (slices, maps, and the loaded pointer itself).
// Following a pointer *stored inside* frozen memory steps outside the
// frozen region (such pointees — e.g. the SnapCols held by a published
// cols map — are independently synchronized live objects, not versions),
// with one deliberate exception: an element read out of a frozen slice of
// pointers still denotes frozen memory when written through in place
// (v.pieces[i].head[j] = x), because sub-pieces published together are
// immutable together.
var FrozenVersion = &Checker{
	Name: "frozenversion",
	Doc:  "values loaded from atomic.Pointer are immutable",
	Run:  runFrozenVersion,
}

// isAtomicPointerLoad matches a call to (*sync/atomic.Pointer[T]).Load.
func (p *Pass) isAtomicPointerLoad(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Load" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func runFrozenVersion(pass *Pass) {
	funcBodies(pass.Package, func(name string, body *ast.BlockStmt) {
		frozenBody(pass, body)
	})
}

func frozenBody(pass *Pass, body *ast.BlockStmt) {
	frozen := make(map[types.Object]bool)

	identObj := func(id *ast.Ident) types.Object {
		if o := pass.Info.Defs[id]; o != nil {
			return o
		}
		return pass.Info.Uses[id]
	}

	// isFrozen reports whether e denotes (or references) memory inside a
	// published version.
	var isFrozen func(e ast.Expr) bool
	isFrozen = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.CallExpr:
			return pass.isAtomicPointerLoad(x)
		case *ast.Ident:
			obj := identObj(x)
			return obj != nil && frozen[obj]
		case *ast.ParenExpr:
			return isFrozen(x.X)
		case *ast.StarExpr:
			return isFrozen(x.X)
		case *ast.SelectorExpr:
			return isFrozen(x.X)
		case *ast.IndexExpr:
			return isFrozen(x.X)
		case *ast.SliceExpr:
			return isFrozen(x.X)
		}
		return false
	}

	// aliases reports whether binding rhs to a variable carries frozen
	// memory: the loaded pointer itself, a frozen variable copied
	// wholesale, or any frozen expression whose type shares backing store
	// (slice or map; struct and scalar copies are genuinely private).
	sharesMemory := func(t types.Type) bool {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
		return false
	}
	aliases := func(rhs ast.Expr) bool {
		if !isFrozen(rhs) {
			return false
		}
		switch rhs.(type) {
		case *ast.CallExpr, *ast.Ident: // the Load itself / a straight copy
			return true
		}
		if tv, ok := pass.Info.Types[rhs]; ok && tv.Type != nil {
			return sharesMemory(tv.Type)
		}
		return false
	}

	// Fixpoint alias collection: `v := p.Load()`, `cols := *p.Load()`,
	// `base := bases[attr]`, `w = old`, range values over frozen maps.
	for changed := true; changed; {
		changed = false
		add := func(id *ast.Ident) {
			if obj := identObj(id); obj != nil && !frozen[obj] {
				frozen[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, rhs := range s.Rhs {
						if id, ok := s.Lhs[i].(*ast.Ident); ok && aliases(rhs) {
							add(id)
						}
					}
				}
			case *ast.RangeStmt:
				if isFrozen(s.X) && s.Value != nil {
					if id, ok := s.Value.(*ast.Ident); ok {
						if tv, ok := pass.Info.Types[s.Value]; ok && tv.Type != nil && sharesMemory(tv.Type) {
							add(id)
						}
					}
				}
			}
			return true
		})
	}

	report := func(pos ast.Node) {
		pass.Reportf(pos.Pos(), "write through a value loaded from atomic.Pointer: published versions are immutable")
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue // rebinding a variable is not a write-through
				}
				if isFrozen(lhs) {
					report(lhs)
				}
			}
		case *ast.IncDecStmt:
			if _, isIdent := s.X.(*ast.Ident); !isIdent && isFrozen(s.X) {
				report(s.X)
			}
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "copy" && len(s.Args) == 2 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && isFrozen(s.Args[0]) {
					report(s.Args[0])
				}
			}
		}
		return true
	})
}
