package vet

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts the golden expectation from a fixture comment:
// `// want "regex"` on the line a finding must anchor to.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type want struct {
	re   *regexp.Regexp
	file string
	line int
	hit  bool
}

// fixture runs checkers over testdata/src/<name> and matches the findings
// one-to-one against the `// want` comments in the fixture sources: every
// finding must be wanted, every want must be found.
func fixture(t *testing.T, name string, checkers ...*Checker) Result {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	res := Run([]*Package{pkg}, checkers)

	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{re: regexp.MustCompile(m[1]), file: pos.Filename, line: pos.Line})
			}
		}
	}
	for _, f := range res.Findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matching %q", w.file, w.line, w.re)
		}
	}
	return res
}

func TestEpochPinFixture(t *testing.T)       { fixture(t, "epochpin", EpochPin) }
func TestFrozenVersionFixture(t *testing.T)  { fixture(t, "frozenversion", FrozenVersion) }
func TestLockPairFixture(t *testing.T)       { fixture(t, "lockpair", LockPair) }
func TestWireFixture(t *testing.T)           { fixture(t, "wire", WireBounds, Exhaustive) }
func TestExhaustiveKindFixture(t *testing.T) { fixture(t, "exhaustive", Exhaustive) }
func TestExhaustiveWalFixture(t *testing.T)  { fixture(t, "walenum", Exhaustive) }
func TestExhaustiveObsFixture(t *testing.T)  { fixture(t, "obsstage", Exhaustive) }
func TestDetRandFixture(t *testing.T)        { fixture(t, "crack", DetRand) }

// TestPragmaFixture: a matching //crackvet:ignore suppresses and is
// counted; a pragma naming the wrong checker suppresses nothing.
func TestPragmaFixture(t *testing.T) {
	res := fixture(t, "pragma", EpochPin)
	if len(res.Suppressed) != 1 {
		t.Fatalf("suppressed = %v, want exactly 1", res.Suppressed)
	}
	if s := res.Suppressed[0]; s.Check != "epochpin" {
		t.Fatalf("suppressed check = %q, want epochpin", s.Check)
	}
}

// TestCleanFixture: idiomatic code draws zero findings from the full suite.
func TestCleanFixture(t *testing.T) {
	res := fixture(t, "clean", All...)
	if len(res.Findings)+len(res.Suppressed) != 0 {
		t.Fatalf("clean fixture not clean: %v / %v", res.Findings, res.Suppressed)
	}
}

// TestRepoInvariantsHold runs the full suite over the real module — the
// same gate CI applies via cmd/crackvet — and enforces the pragma budget.
func TestRepoInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check")
	}
	pkgs, err := Load(".", []string{"../../..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	res := Run(pkgs, nil)
	for _, f := range res.Findings {
		t.Errorf("%s", f)
	}
	if n := len(res.Suppressed); n > 3 {
		t.Errorf("%d pragma suppressions, budget is 3:", n)
		for _, f := range res.Suppressed {
			t.Errorf("  %s", f)
		}
	}
}
