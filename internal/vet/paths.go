package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The path walker is the shared engine behind epochpin and lockpair: an
// abstract interpretation of one function body that tracks a set of held
// resources (epoch pins, mutexes) across the statement-level control flow
// — sequencing, if/else, loops, switch/select, return — and reports
// acquire/release pairing violations. Function literals are walked as
// independent bodies (their statements execute at another time), and a
// deferred release makes a resource safe on every subsequent path,
// including panic edges.

type evKind int

const (
	evAcquire evKind = iota
	evRelease
)

// event is one acquire/release action extracted from a statement.
type event struct {
	kind evKind
	key  string // resource identity, function-local
	mode string // pairing class ("W"/"R" for locks; "" for pins)
	def  bool   // release registered via defer
	pos  token.Pos
	call *ast.CallExpr // the call the event came from (excluded from dirty tracking)
}

// heldRes is one currently held resource.
type heldRes struct {
	mode  string
	pos   token.Pos
	dirty bool // a potentially panicking call executed while held
}

type flowState struct {
	held     map[string]*heldRes
	deferred map[string]string // key -> mode of the pending deferred release
}

func newFlowState() *flowState {
	return &flowState{held: make(map[string]*heldRes), deferred: make(map[string]string)}
}

func (s *flowState) clone() *flowState {
	c := newFlowState()
	for k, h := range s.held {
		hc := *h
		c.held[k] = &hc
	}
	for k, m := range s.deferred {
		c.deferred[k] = m
	}
	return c
}

// flowHooks parameterizes the walker per checker. Nil hooks disable the
// corresponding report.
type flowHooks struct {
	// classify extracts the acquire/release events of one simple statement.
	classify func(stmt ast.Stmt) []event
	// describe renders a resource key for messages ("epoch pin p", "s.mu").
	describe func(key string) string

	onDoubleAcquire func(e event, prev *heldRes)
	onMismatch      func(e event, prev *heldRes)
	onDoubleRelease func(e event)
	// onLeak reports a resource still held when a path leaves the function
	// (at == return position, or the acquire position on fall-through and
	// loop-iteration leaks).
	onLeak func(key string, h *heldRes, at token.Pos, how string)
	// onDiverge reports a resource held on some but not all merging
	// branches — released (or acquired) on one path only.
	onDiverge func(key string, h *heldRes, at token.Pos)
	// onPanicEdge, when non-nil, reports a non-deferred release that only
	// covers the normal edge: a call executed while the resource was held,
	// so a panic would leak it. Used by epochpin (pins must survive panic
	// edges); lockpair leaves it nil (a panic with a lock held is fatal
	// anyway).
	onPanicEdge func(key string, h *heldRes, rel token.Pos)
}

type flowWalker struct {
	pass  *Pass
	hooks flowHooks
}

func walkFlow(pass *Pass, body *ast.BlockStmt, hooks flowHooks) {
	w := &flowWalker{pass: pass, hooks: hooks}
	st := newFlowState()
	if !w.walkStmts(body.List, st) {
		for k, h := range st.held {
			if _, ok := st.deferred[k]; !ok {
				w.hooks.onLeak(k, h, h.pos, "not released before the function returns")
			}
		}
	}
}

// walkStmts interprets a statement list; true means every path through the
// list terminates (return/panic/branch) before falling off the end.
func (w *flowWalker) walkStmts(stmts []ast.Stmt, st *flowState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *flowWalker) walkStmt(s ast.Stmt, st *flowState) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		w.markDirty(s, nil, st)
		for k, h := range st.held {
			if _, ok := st.deferred[k]; !ok {
				w.hooks.onLeak(k, h, s.Pos(), "still held at return")
			}
		}
		return true

	case *ast.BranchStmt:
		// break/continue/goto: drop the path rather than model the jump.
		return true

	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.markDirty(s.Cond, nil, st)
		bodySt := st.clone()
		bodyTerm := w.walkStmts(s.Body.List, bodySt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		return w.merge(st, s.End(), []branchOut{{bodySt, bodyTerm}, {elseSt, elseTerm}})

	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.markDirty(s.Cond, nil, st)
		w.loopBody(s.Body, st)
		return false

	case *ast.RangeStmt:
		w.markDirty(s.X, nil, st)
		w.loopBody(s.Body, st)
		return false

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.markDirty(s.Tag, nil, st)
		return w.clauses(s.Body, st, s.End(), false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		return w.clauses(s.Body, st, s.End(), false)

	case *ast.SelectStmt:
		// A select with no default blocks until one clause runs, but for
		// pairing purposes clauses merge exactly like switch cases.
		return w.clauses(s.Body, st, s.End(), true)

	case *ast.DeferStmt:
		w.apply(w.hooks.classify(s), s, st)
		return false

	case *ast.GoStmt:
		// The spawned body runs later (walked separately as a FuncLit);
		// the call expression itself may panic while resources are held.
		w.markDirty(s, nil, st)
		return false

	default:
		evs := w.hooks.classify(s)
		w.apply(evs, s, st)
		return w.isTerminator(s)
	}
}

func (w *flowWalker) loopBody(body *ast.BlockStmt, st *flowState) {
	pre := st.clone()
	bodySt := st.clone()
	w.walkStmts(body.List, bodySt)
	// A resource acquired inside the iteration and still held at its end
	// leaks once per pass around the loop.
	for k, h := range bodySt.held {
		if _, was := pre.held[k]; !was {
			if _, ok := bodySt.deferred[k]; !ok {
				w.hooks.onLeak(k, h, h.pos, "acquired in a loop and not released by the end of the iteration")
			}
		}
	}
	// Continue after the loop from the zero-iteration state.
	*st = *pre
}

type branchOut struct {
	st   *flowState
	term bool
}

// clauses walks each case/comm clause of body as a branch and merges.
func (w *flowWalker) clauses(body *ast.BlockStmt, st *flowState, end token.Pos, isSelect bool) bool {
	var outs []branchOut
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			bs := st.clone()
			if c.Comm != nil {
				w.walkStmt(c.Comm, bs)
			}
			outs = append(outs, branchOut{bs, w.walkStmts(c.Body, bs)})
			continue
		}
		bs := st.clone()
		outs = append(outs, branchOut{bs, w.walkStmts(stmts, bs)})
	}
	if !hasDefault && !isSelect {
		// The tag may match no case: the fall-through state is a branch too.
		outs = append(outs, branchOut{st.clone(), false})
	}
	if len(outs) == 0 {
		return false
	}
	return w.merge(st, end, outs)
}

// merge folds branch out-states back into st; true when every branch
// terminated. A resource held in some but not all surviving branches is
// reported as a divergence and dropped (so one bug draws one report).
func (w *flowWalker) merge(st *flowState, at token.Pos, outs []branchOut) bool {
	var live []*flowState
	for _, o := range outs {
		if !o.term {
			live = append(live, o.st)
		}
	}
	if len(live) == 0 {
		return true
	}
	held := make(map[string]*heldRes)
	for k, h := range live[0].held {
		inAll := true
		dirty := h.dirty
		for _, o := range live[1:] {
			oh, ok := o.held[k]
			if !ok {
				inAll = false
				break
			}
			dirty = dirty || oh.dirty
		}
		if inAll {
			hc := *h
			hc.dirty = dirty
			held[k] = &hc
		}
	}
	for _, o := range live {
		for k, h := range o.held {
			if _, ok := held[k]; ok {
				continue
			}
			if _, pending := o.deferred[k]; pending {
				continue
			}
			w.hooks.onDiverge(k, h, at)
		}
	}
	deferred := make(map[string]string)
	for k, m := range live[0].deferred {
		inAll := true
		for _, o := range live[1:] {
			if _, ok := o.deferred[k]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			deferred[k] = m
		}
	}
	st.held = held
	st.deferred = deferred
	return false
}

// apply interprets one statement's events against the state, then marks
// held resources dirty if the statement contains any other call.
func (w *flowWalker) apply(evs []event, stmt ast.Stmt, st *flowState) {
	eventCalls := make(map[*ast.CallExpr]bool, len(evs))
	for _, e := range evs {
		if e.call != nil {
			eventCalls[e.call] = true
		}
	}
	// Dirty first: a call in the same statement as a release (e.g.
	// `x := f(); mu.Unlock()` can't share a statement, but
	// `v := decode(p.Load())` can) executes before the event applies only
	// for acquire-producing calls; keeping the conservative order (dirty
	// before releases, after nothing) over-reports nothing in practice
	// because release statements are bare calls.
	w.markDirty(stmt, eventCalls, st)
	for _, e := range evs {
		switch e.kind {
		case evAcquire:
			if prev, ok := st.held[e.key]; ok {
				w.hooks.onDoubleAcquire(e, prev)
				continue
			}
			if _, pending := st.deferred[e.key]; pending {
				w.hooks.onDoubleAcquire(e, &heldRes{mode: st.deferred[e.key], pos: e.pos})
				continue
			}
			st.held[e.key] = &heldRes{mode: e.mode, pos: e.pos}
		case evRelease:
			prev, ok := st.held[e.key]
			if !ok {
				if _, pending := st.deferred[e.key]; pending && !e.def {
					w.hooks.onDoubleRelease(e)
				}
				if e.def {
					// Deferred release with no visible acquire yet: arm it
					// so a later acquire in this function is covered.
					st.deferred[e.key] = e.mode
				}
				continue
			}
			if prev.mode != e.mode {
				w.hooks.onMismatch(e, prev)
			}
			delete(st.held, e.key)
			if e.def {
				st.deferred[e.key] = e.mode
			} else if prev.dirty && w.hooks.onPanicEdge != nil {
				w.hooks.onPanicEdge(e.key, prev, e.pos)
			}
		}
	}
}

// markDirty flags every held resource when n contains a call that could
// panic — any call except the statement's own classified events, type
// conversions, and panic-free builtins.
func (w *flowWalker) markDirty(n ast.Node, eventCalls map[*ast.CallExpr]bool, st *flowState) {
	if n == nil || len(st.held) == 0 {
		return
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false // runs later, not on this edge
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if eventCalls[call] {
			return true
		}
		if tv, ok := w.pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "len", "cap", "append", "copy", "delete", "new", "min", "max":
				if _, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		found = true
		return false
	})
	if found {
		for _, h := range st.held {
			h.dirty = true
		}
	}
}

// isTerminator reports statements that end the path without a return:
// panic, os.Exit/runtime.Goexit/log.Fatal* (package-level), and the
// testing.T family (Fatal, Fatalf, FailNow, Skip*, which stop the test
// goroutine). Method calls named Exit on ordinary values (e.g.
// Epoch.Exit) are NOT terminators — only package functions are.
func (w *flowWalker) isTerminator(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		_, isPkg := w.pass.Info.Uses[id].(*types.PkgName)
		switch fun.Sel.Name {
		case "Exit", "Goexit", "Fatalln":
			return isPkg // os.Exit, runtime.Goexit, log.Fatalln
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true // log.Fatal* or (*testing.T) — both end the path
		}
	}
	return false
}
