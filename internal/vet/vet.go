// Package vet implements crackvet, the repo-invariant static analyzer
// suite: a set of checkers over the type-checked AST that enforce, at
// compile time, the concurrency and protocol contracts the runtime layers
// rely on (see doc.go "Invariants" at the module root). Built on the
// standard library only — go/ast, go/parser, go/types, go/importer — so
// the module keeps its zero-dependency go.mod.
//
// Each checker reports findings as `file:line: [check-name] message`. A
// finding can be suppressed by a pragma comment on the same line or the
// line directly above it:
//
//	//crackvet:ignore check-name reason for the exception
//
// Suppressions are counted and surfaced by cmd/crackvet so pragma creep
// stays visible.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Message)
}

// Checker is one named invariant check.
type Checker struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Pass carries one checker's run over one package.
type Pass struct {
	*Package
	check    string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// All is the full checker suite, in reporting order.
var All = []*Checker{
	EpochPin,
	FrozenVersion,
	LockPair,
	WireBounds,
	Exhaustive,
	DetRand,
}

// Result is the outcome of running checkers over a set of packages.
type Result struct {
	Findings   []Finding // active findings (exit nonzero when non-empty)
	Suppressed []Finding // findings silenced by a //crackvet:ignore pragma
}

// ignorePragma is the suppression comment prefix.
const ignorePragma = "//crackvet:ignore"

// ignores collects, per file, the set of (line, check) pairs suppressed by
// pragmas. A pragma on line N suppresses findings of the named check on
// line N and line N+1 (so it can sit on its own line above the finding).
func ignoredLines(p *Package) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, ignorePragma)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				check := fields[0]
				pos := p.Fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					out[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = make(map[string]bool)
					}
					byLine[line][check] = true
				}
			}
		}
	}
	return out
}

// Run executes the given checkers (all of them when nil) over pkgs,
// splitting findings into active and pragma-suppressed, each sorted by
// position.
func Run(pkgs []*Package, checkers []*Checker) Result {
	if checkers == nil {
		checkers = All
	}
	var res Result
	for _, pkg := range pkgs {
		var fs []Finding
		for _, c := range checkers {
			pass := &Pass{Package: pkg, check: c.Name, findings: &fs}
			c.Run(pass)
		}
		ign := ignoredLines(pkg)
		seen := make(map[Finding]bool) // path-flow checkers can reach one site twice
		for _, f := range fs {
			if seen[f] {
				continue
			}
			seen[f] = true
			if ign[f.Pos.Filename][f.Pos.Line][f.Check] {
				res.Suppressed = append(res.Suppressed, f)
			} else {
				res.Findings = append(res.Findings, f)
			}
		}
	}
	byPos := func(s []Finding) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].Pos.Filename != s[j].Pos.Filename {
				return s[i].Pos.Filename < s[j].Pos.Filename
			}
			if s[i].Pos.Line != s[j].Pos.Line {
				return s[i].Pos.Line < s[j].Pos.Line
			}
			return s[i].Check < s[j].Check
		}
	}
	sort.Slice(res.Findings, byPos(res.Findings))
	sort.Slice(res.Suppressed, byPos(res.Suppressed))
	return res
}

// ---------------------------------------------------------------------------
// Shared AST helpers.

// funcBodies visits every function-like body in the package: declared
// functions and methods, and every function literal (each literal body is
// its own unit — statements inside it run at another time, so path-based
// checkers must not mix them with the enclosing body).
func funcBodies(p *Package, visit func(name string, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn.Name.Name, fn.Body)
				}
			case *ast.FuncLit:
				visit("func literal", fn.Body)
			}
			return true
		})
	}
}

// recvChain renders a selector chain of identifiers and field selections
// ("s.mu", "e.inner.statsMu") for use as a lock identity key; ok is false
// when the expression contains anything else (calls, indexing), which a
// path-insensitive key cannot name reliably.
func recvChain(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := recvChain(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.ParenExpr:
		return recvChain(x.X)
	}
	return "", false
}
