package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// EpochPin enforces the epoch-reclamation contract around Epoch.Enter/Exit
// (internal/crack/epoch.go): every Pin returned by Enter must be released
// on every path out of the function that acquired it — including panic
// edges, so a release that is not deferred may not have any potentially
// panicking call between Enter and Exit — and a Pin must never escape the
// acquiring function (copied into a struct, slice, channel, or another
// call), because a pin that outlives its stack frame blocks reclamation
// forever (slot leak) or, worse, is Exited twice.
//
// Matching is structural so the checker works on fixture packages too: an
// acquire is a call to a method named Enter on a (pointer to a) named type
// Epoch returning a single value of named type Pin; a release is the
// matching Exit(Pin) method.
var EpochPin = &Checker{
	Name: "epochpin",
	Doc:  "Epoch.Enter pins must be Exited on all paths and never escape",
	Run:  runEpochPin,
}

// epochMethod reports whether obj is the Enter or Exit method of an Epoch
// type (by structural shape, independent of the defining package).
func epochMethod(obj types.Object, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Epoch" {
		return false
	}
	switch name {
	case "Enter":
		return sig.Params().Len() == 0 && sig.Results().Len() == 1 && isNamed(sig.Results().At(0).Type(), "Pin")
	case "Exit":
		return sig.Params().Len() == 1 && isNamed(sig.Params().At(0).Type(), "Pin")
	}
	return false
}

func isNamed(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}

// epochCall matches call as an Enter/Exit method call.
func (p *Pass) epochCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return epochMethod(p.Info.Uses[sel.Sel], name)
}

func runEpochPin(pass *Pass) {
	funcBodies(pass.Package, func(name string, body *ast.BlockStmt) {
		epochPinBody(pass, body)
	})
}

func epochPinBody(pass *Pass, body *ast.BlockStmt) {
	// pinObjs: variables holding pins acquired in this body, for the
	// escape scan.
	pinObjs := make(map[types.Object]bool)

	objKey := func(obj types.Object) string {
		return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
	}
	identObj := func(id *ast.Ident) types.Object {
		if o := pass.Info.Defs[id]; o != nil {
			return o
		}
		return pass.Info.Uses[id]
	}

	exitEvent := func(call *ast.CallExpr, def bool) (event, bool) {
		if !pass.epochCall(call, "Exit") || len(call.Args) != 1 {
			return event{}, false
		}
		id, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return event{}, false
		}
		obj := identObj(id)
		if obj == nil {
			return event{}, false
		}
		return event{kind: evRelease, key: objKey(obj), def: def, pos: call.Pos(), call: call}, true
	}

	classify := func(stmt ast.Stmt) []event {
		var evs []event
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 && len(s.Lhs) == 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && pass.epochCall(call, "Enter") {
					if id, ok := s.Lhs[0].(*ast.Ident); ok {
						if id.Name == "_" {
							pass.Reportf(call.Pos(), "Epoch.Enter pin discarded: it can never be released")
							return nil
						}
						if obj := identObj(id); obj != nil {
							pinObjs[obj] = true
							evs = append(evs, event{kind: evAcquire, key: objKey(obj), pos: call.Pos(), call: call})
						}
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if pass.epochCall(call, "Enter") {
					pass.Reportf(call.Pos(), "Epoch.Enter pin discarded: it can never be released")
					return nil
				}
				if ev, ok := exitEvent(call, false); ok {
					evs = append(evs, ev)
				}
			}
		case *ast.DeferStmt:
			if ev, ok := exitEvent(s.Call, true); ok {
				evs = append(evs, ev)
				break
			}
			// defer func() { ...; ep.Exit(pin); ... }()
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if ev, ok := exitEvent(call, true); ok {
							evs = append(evs, ev)
						}
					}
					return true
				})
			}
		}
		return evs
	}

	walkFlow(pass, body, flowHooks{
		classify: classify,
		describe: func(key string) string { return "epoch pin" },
		onDoubleAcquire: func(e event, prev *heldRes) {
			pass.Reportf(e.pos, "epoch pin reacquired into the same variable before the previous pin was released")
		},
		onMismatch:      func(e event, prev *heldRes) {},
		onDoubleRelease: func(e event) { pass.Reportf(e.pos, "epoch pin released twice") },
		onLeak: func(key string, h *heldRes, at token.Pos, how string) {
			pass.Reportf(at, "epoch pin %s: the pin from Enter leaks, blocking reclamation (use defer Exit)", how)
		},
		onDiverge: func(key string, h *heldRes, at token.Pos) {
			pass.Reportf(h.pos, "epoch pin released on some paths but not others (use defer Exit)")
		},
		onPanicEdge: func(key string, h *heldRes, rel token.Pos) {
			pass.Reportf(h.pos, "epoch pin released only on the non-panic edge: a call between Enter and Exit can panic and leak the pin (use defer Exit)")
		},
	})

	// Escape scan: a pin variable may appear only on the left of an
	// assignment (its definition) or as the argument of an Exit call —
	// any other use copies the pin somewhere it may outlive the frame.
	withParents(body, func(n ast.Node, parents []ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			obj := identObj(x)
			if obj == nil || !pinObjs[obj] {
				return true
			}
			if len(parents) > 0 {
				switch p := parents[len(parents)-1].(type) {
				case *ast.CallExpr:
					if pass.epochCall(p, "Exit") {
						return true
					}
				case *ast.AssignStmt:
					for _, lhs := range p.Lhs {
						if lhs == n {
							return true
						}
					}
				}
			}
			pass.Reportf(x.Pos(), "epoch pin %s escapes its acquiring statement (only Exit may consume a pin)", x.Name)
		case *ast.CallExpr:
			if !pass.epochCall(x, "Enter") {
				return true
			}
			// An Enter anywhere but a simple assignment or expression
			// statement escapes by construction (composite literal,
			// argument, return value, ...).
			if len(parents) > 0 {
				switch parents[len(parents)-1].(type) {
				case *ast.AssignStmt, *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
					return true // handled (or reported) by classify
				}
			}
			pass.Reportf(x.Pos(), "Epoch.Enter result escapes (assign it to a local and release it with Exit)")
		}
		return true
	})
}

// withParents walks root invoking fn with the ancestor stack (nearest
// last); returning false prunes the subtree.
func withParents(root ast.Node, fn func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
