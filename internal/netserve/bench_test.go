package netserve

import (
	"math/rand"
	"testing"

	"crackstore/client"
	"crackstore/internal/engine"
	"crackstore/internal/serve"
	"crackstore/internal/store"
)

// BenchmarkRemoteWarmQuery measures the full wire round trip for warm
// (read-only) queries with b.N requests pipelined by RunParallel —
// the per-request overhead of the remote path over the in-process one.
func BenchmarkRemoteWarmQuery(b *testing.B) {
	rel := buildRelB(1, 100_000, 50_000)
	s, err := Listen("127.0.0.1:0", engine.New(engine.Sideways, rel), Options{
		Serve: serve.Options{Workers: 8},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := client.Dial(s.Addr().String(), client.Options{Conns: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	pool := warmPool(b, 32, 50_000, func(q engine.Query) error {
		_, _, err := c.Query(q)
		return err
	})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(7))
		for pb.Next() {
			if _, _, err := c.Query(pool[rng.Intn(len(pool))]); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkInProcessWarmQuery is the same workload through serve.Server
// directly, for the overhead comparison.
func BenchmarkInProcessWarmQuery(b *testing.B) {
	rel := buildRelB(1, 100_000, 50_000)
	srv := serve.New(engine.New(engine.Sideways, rel), serve.Options{Workers: 8})
	defer srv.Close()
	pool := warmPool(b, 32, 50_000, func(q engine.Query) error {
		_, _, err := srv.Do(q)
		return err
	})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(7))
		for pb.Next() {
			if _, _, err := srv.Do(pool[rng.Intn(len(pool))]); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func buildRelB(seed int64, n int, domain int64) *store.Relation {
	rng := rand.New(rand.NewSource(seed))
	return store.Build("R", n, []string{"A", "B", "C"}, func(string, int) store.Value {
		return 1 + rng.Int63n(domain)
	})
}

func warmPool(b *testing.B, n int, domain int64, do func(engine.Query) error) []engine.Query {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	pool := make([]engine.Query, n)
	for i := range pool {
		lo := 1 + rng.Int63n(domain-40)
		pool[i] = engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(lo, lo+20)}},
			Projs: []string{"B"},
		}
		if err := do(pool[i]); err != nil {
			b.Fatal(err)
		}
	}
	return pool
}
