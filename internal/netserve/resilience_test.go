package netserve

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/serve"
	"crackstore/internal/store"
	"crackstore/internal/wire"
)

// stallEngine blocks every Query until its gate opens — the remote-layer
// stand-in for an engine busy on a slow crack. Kind Scan keeps the
// inline-RO fast path off, so every request takes the dispatch path and
// the in-flight accounting is deterministic.
type stallEngine struct {
	gate  chan struct{}
	calls atomic.Int64
}

func (g *stallEngine) Name() string      { return "stall" }
func (g *stallEngine) Kind() engine.Kind { return engine.Scan }
func (g *stallEngine) Query(q engine.Query) (engine.Result, engine.Cost) {
	g.calls.Add(1)
	<-g.gate
	return engine.Result{N: 1, Cols: map[string][]store.Value{"B": {1}}}, engine.Cost{}
}
func (g *stallEngine) Probe(q engine.Query) bool { return true }
func (g *stallEngine) QueryRO(q engine.Query) (engine.Result, engine.Cost, bool) {
	return engine.Result{}, engine.Cost{}, false
}
func (g *stallEngine) Insert(vals ...store.Value) int        { return 0 }
func (g *stallEngine) Delete(key int)                        {}
func (g *stallEngine) Prepare(attrs ...string) time.Duration { return 0 }
func (g *stallEngine) Storage() int                          { return 0 }
func (g *stallEngine) JoinInput(preds []engine.AttrPred, joinAttr string, projs []string) (engine.JoinInput, engine.Cost) {
	return engine.JoinInput{}, engine.Cost{}
}

var stallQuery = engine.Query{
	Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(0, 10)}},
	Projs: []string{"B"},
}

// TestPingAnsweredOnReader: Ping round-trips StatusOK, including while the
// whole pool is wedged behind a stalled query — the fast peer-death probe
// must never queue behind work.
func TestPingAnsweredOnReader(t *testing.T) {
	g := &stallEngine{gate: make(chan struct{})}
	s := startServer(t, g, Options{Serve: serve.Options{Workers: 1}})
	r := rawDial(t, s)

	// Wedge the only worker.
	r.write(wire.AppendRequest(nil, &wire.Request{ID: 1, Op: wire.OpQuery, Query: stallQuery}))
	time.Sleep(20 * time.Millisecond)

	r.write(wire.AppendRequest(nil, &wire.Request{ID: 2, Op: wire.OpPing}))
	resp := r.read()
	if resp.ID != 2 || resp.Op != wire.OpPing || resp.Status != wire.StatusOK {
		t.Fatalf("ping under load answered %+v", resp)
	}
	close(g.gate)
	if resp := r.read(); resp.ID != 1 || resp.Status != wire.StatusOK {
		t.Fatalf("stalled query answered %+v after gate opened", resp)
	}
}

// TestGlobalInflightSheds: with MaxInflight=2 occupied by stalled queries,
// the next request draws StatusOverloaded in-band — the connection stays
// open and serves the backlog once capacity frees up.
func TestGlobalInflightSheds(t *testing.T) {
	g := &stallEngine{gate: make(chan struct{})}
	s := startServer(t, g, Options{
		Serve:       serve.Options{Workers: 2},
		MaxInflight: 2,
	})
	r := rawDial(t, s)

	for id := uint64(1); id <= 2; id++ {
		r.write(wire.AppendRequest(nil, &wire.Request{ID: id, Op: wire.OpQuery, Query: stallQuery}))
	}
	time.Sleep(20 * time.Millisecond)
	r.write(wire.AppendRequest(nil, &wire.Request{ID: 3, Op: wire.OpQuery, Query: stallQuery}))

	resp := r.read()
	if resp.ID != 3 || resp.Status != wire.StatusOverloaded {
		t.Fatalf("over-cap request answered %+v, want StatusOverloaded for ID 3", resp)
	}
	if st := s.Stats(); st.Sheds != 1 {
		t.Fatalf("Stats.Sheds = %d, want 1", st.Sheds)
	}

	close(g.gate)
	seen := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		resp := r.read()
		if resp.Status != wire.StatusOK {
			t.Fatalf("stalled query answered %+v", resp)
		}
		seen[resp.ID] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("missing answers, saw %v", seen)
	}
}

// TestServeWatermarkShedsOverWire: the serve-layer MaxWaiting watermark
// also surfaces as StatusOverloaded (not StatusErr) at the wire.
func TestServeWatermarkShedsOverWire(t *testing.T) {
	g := &stallEngine{gate: make(chan struct{})}
	s := startServer(t, g, Options{
		Serve: serve.Options{Workers: 1, MaxWaiting: 1},
	})
	r := rawDial(t, s)

	// ID 1 executes, ID 2 waits (at the watermark), ID 3 is shed.
	r.write(wire.AppendRequest(nil, &wire.Request{ID: 1, Op: wire.OpQuery, Query: stallQuery}))
	time.Sleep(20 * time.Millisecond)
	r.write(wire.AppendRequest(nil, &wire.Request{ID: 2, Op: wire.OpQuery, Query: stallQuery}))
	time.Sleep(20 * time.Millisecond)
	r.write(wire.AppendRequest(nil, &wire.Request{ID: 3, Op: wire.OpQuery, Query: stallQuery}))

	resp := r.read()
	if resp.ID != 3 || resp.Status != wire.StatusOverloaded {
		t.Fatalf("watermark shed answered %+v, want StatusOverloaded for ID 3", resp)
	}
	close(g.gate)
	for i := 0; i < 2; i++ {
		if resp := r.read(); resp.Status != wire.StatusOK {
			t.Fatalf("backlogged query answered %+v", resp)
		}
	}
}

// TestDedupReplaysWrite: re-sending a tokened Insert — even from a
// different connection, as a pooled client's retry would — applies the
// write once and replays the recorded response under the retry's ID.
func TestDedupReplaysWrite(t *testing.T) {
	rel := buildRel(11, 1000, 300)
	s := startServer(t, engine.New(engine.Sideways, rel), Options{})
	r1 := rawDial(t, s)
	r2 := rawDial(t, s)

	q := engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Point(7777)}},
		Projs: []string{"B"},
	}
	count := func(r *rawConn, id uint64) int {
		r.t.Helper()
		r.write(wire.AppendRequest(nil, &wire.Request{ID: id, Op: wire.OpQuery, Query: q}))
		resp := r.read()
		if resp.Status != wire.StatusOK {
			r.t.Fatalf("count query answered %+v", resp)
		}
		return resp.Result.N
	}
	if n := count(r1, 1); n != 0 {
		t.Fatalf("sentinel value already present: %d", n)
	}

	ins := wire.Request{ID: 2, Op: wire.OpInsert, Token: 0xFEED, Vals: []store.Value{7777, 1, 1}}
	r1.write(wire.AppendRequest(nil, &ins))
	first := r1.read()
	if first.Status != wire.StatusOK {
		t.Fatalf("insert answered %+v", first)
	}

	// The "response was lost, retry on another conn" path.
	ins.ID = 9
	r2.write(wire.AppendRequest(nil, &ins))
	replay := r2.read()
	if replay.Status != wire.StatusOK || replay.ID != 9 {
		t.Fatalf("replayed insert answered %+v, want OK under ID 9", replay)
	}
	if replay.Key != first.Key {
		t.Fatalf("replay returned key %d, original %d — write applied twice?", replay.Key, first.Key)
	}
	if n := count(r1, 3); n != 1 {
		t.Fatalf("after insert + retry the value appears %d times, want exactly 1", n)
	}

	// Tokened delete retries are deduplicated the same way.
	del := wire.Request{ID: 4, Op: wire.OpDelete, Token: 0xBEEF, Key: first.Key}
	r1.write(wire.AppendRequest(nil, &del))
	if resp := r1.read(); resp.Status != wire.StatusOK {
		t.Fatalf("delete answered %+v", resp)
	}
	del.ID = 10
	r2.write(wire.AppendRequest(nil, &del))
	if resp := r2.read(); resp.Status != wire.StatusOK || resp.ID != 10 {
		t.Fatalf("replayed delete answered %+v", resp)
	}
	if n := count(r1, 5); n != 0 {
		t.Fatalf("value still present %d times after delete", n)
	}
}

// TestDedupWindowEvicts: the token window is bounded — after cap inserts
// the oldest token is forgotten and a very late retry re-executes.
func TestDedupWindowEvicts(t *testing.T) {
	d := newDedupWindow(2)
	a, first := d.claim(1)
	if !first {
		t.Fatal("fresh token not first")
	}
	close(a.done)
	if _, first := d.claim(2); !first {
		t.Fatal("fresh token not first")
	}
	if _, first := d.claim(3); !first { // evicts token 1
		t.Fatal("fresh token not first")
	}
	if _, first := d.claim(1); !first {
		t.Fatal("evicted token should have been forgotten")
	}
	if _, first := d.claim(3); first {
		t.Fatal("live token re-claimed as first")
	}
}

// TestTTLExpiredSkipsExecution: a request whose wire TTL burns out while
// the worker is busy is answered with a timeout and never reaches the
// engine — the server does not waste a slot on an answer nobody awaits.
func TestTTLExpiredSkipsExecution(t *testing.T) {
	g := &stallEngine{gate: make(chan struct{})}
	s := startServer(t, g, Options{Serve: serve.Options{Workers: 1}})
	r := rawDial(t, s)

	r.write(wire.AppendRequest(nil, &wire.Request{ID: 1, Op: wire.OpQuery, Query: stallQuery}))
	time.Sleep(20 * time.Millisecond)
	r.write(wire.AppendRequest(nil, &wire.Request{ID: 2, Op: wire.OpQuery, Query: stallQuery, TTL: 30 * time.Millisecond}))

	resp := r.read()
	if resp.ID != 2 || resp.Status != wire.StatusErr || !strings.Contains(resp.Err, "deadline") {
		t.Fatalf("expired request answered %+v, want deadline error for ID 2", resp)
	}
	close(g.gate)
	if resp := r.read(); resp.ID != 1 || resp.Status != wire.StatusOK {
		t.Fatalf("stalled query answered %+v", resp)
	}
	if g.calls.Load() != 1 {
		t.Fatalf("engine executed %d queries, want 1 (expired one skipped)", g.calls.Load())
	}
}
