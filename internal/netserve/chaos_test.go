package netserve

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"crackstore/client"
	"crackstore/internal/engine"
	"crackstore/internal/faultnet"
	"crackstore/internal/store"
)

// TestChaosEquivalence is the resilience layer's property test: the
// remote-vs-in-process equivalence workload runs THROUGH a fault-injecting
// proxy (corruption, resets, partial writes, truncation, delays at >= 1%
// aggregate) and must still satisfy, end to end:
//
//   - zero wrong answers — every remote result byte-identical to the
//     in-process engine (the frame checksum turns corruption into conn
//     errors, never silent damage);
//   - zero duplicated write effects — insert keys and final row counts
//     match exactly, because retried writes are deduplicated by token;
//   - zero client-visible errors for retryable faults — the retry budget
//     absorbs every injected failure;
//   - clean drain — server, proxy, and client all close without leaking
//     goroutines (enforced by -race and the t.Cleanup ordering).
func TestChaosEquivalence(t *testing.T) {
	cases := []struct {
		name string
		kind engine.Kind
		rate float64
		seed int64
	}{
		{"selcrack/1pct", engine.SelCrack, 0.01, 101},
		{"sideways/1pct", engine.Sideways, 0.01, 202},
		{"sideways/5pct", engine.Sideways, 0.05, 303},
		{"scan/5pct", engine.Scan, 0.05, 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const (
				rows   = 800
				domain = 300
				ops    = 160
			)
			base := store.Build("R", rows, []string{"A", "B", "C"},
				func(attr string, row int) store.Value {
					h := int64(row)*2654435761 + int64(len(attr))*97
					return 1 + (h%domain+domain)%domain
				})
			local := engine.New(tc.kind, cloneRel(base))
			s := startServer(t, engine.New(tc.kind, cloneRel(base)), Options{})

			p, err := faultnet.NewProxy("127.0.0.1:0", s.Addr().String(), faultnet.Mix(tc.rate, tc.seed))
			if err != nil {
				t.Fatalf("proxy: %v", err)
			}
			t.Cleanup(func() { p.Close() })

			c, err := client.Dial(p.Addr().String(), client.Options{
				Conns:      2,
				MaxRetries: 16,
				RetryBase:  time.Millisecond,
				RetryMax:   50 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("dial through proxy: %v", err)
			}
			t.Cleanup(func() { c.Close() })

			r := rand.New(rand.NewSource(tc.seed))
			var liveKeys []int
			nextVal := func() store.Value { return 1 + r.Int63n(domain) }
			updates := tc.kind != engine.RowStore

			// Phase 1: sequential interleaved workload through the faults.
			for i := 0; i < ops; i++ {
				switch {
				case updates && r.Intn(10) == 0:
					vals := []store.Value{nextVal(), nextVal(), nextVal()}
					wantKey := local.Insert(vals...)
					gotKey, err := c.Insert(vals...)
					if err != nil {
						t.Fatalf("op %d: insert through faults: %v", i, err)
					}
					if gotKey != wantKey {
						t.Fatalf("op %d: insert key %d != in-process %d (write duplicated or lost)", i, gotKey, wantKey)
					}
					liveKeys = append(liveKeys, gotKey)
				case updates && r.Intn(12) == 0 && len(liveKeys) > 0:
					j := r.Intn(len(liveKeys))
					key := liveKeys[j]
					liveKeys = append(liveKeys[:j], liveKeys[j+1:]...)
					local.Delete(key)
					if err := c.Delete(key); err != nil {
						t.Fatalf("op %d: delete through faults: %v", i, err)
					}
				default:
					q := genQuery(r, domain)
					wantRes, _ := local.Query(q)
					gotRes, _, err := c.Query(q)
					if err != nil {
						t.Fatalf("op %d: query through faults: %v", i, err)
					}
					if !bytes.Equal(encodeResult(gotRes), encodeResult(wantRes)) {
						t.Fatalf("op %d: WRONG ANSWER through faults for %+v: remote N=%d local N=%d",
							i, q, gotRes.N, wantRes.N)
					}
				}
			}

			// Duplicated-write check by total row count: a double-applied
			// insert or delete shifts this count even if later keys happen
			// to line up.
			full := engine.Query{
				Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(1, int64(domain))}},
				Projs: []string{"A"},
			}
			wantFull, _ := local.Query(full)
			gotFull, _, err := c.Query(full)
			if err != nil {
				t.Fatalf("full-count query: %v", err)
			}
			if gotFull.N != wantFull.N {
				t.Fatalf("row count drifted through faults: remote %d, in-process %d", gotFull.N, wantFull.N)
			}

			// Phase 2: frozen query pool, hammered concurrently through the
			// fault proxy; answers must not drift and no call may error.
			pool := make([]engine.Query, 8)
			want := make([][]byte, len(pool))
			for i := range pool {
				pool[i] = genQuery(r, domain)
				local.Query(pool[i])
				if _, _, err := c.Query(pool[i]); err != nil {
					t.Fatalf("warm query %d: %v", i, err)
				}
			}
			for i := range pool {
				res, _ := local.Query(pool[i])
				want[i] = encodeResult(res)
			}
			var wg sync.WaitGroup
			fail := make(chan string, 32)
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rr := rand.New(rand.NewSource(seed))
					for i := 0; i < 25; i++ {
						j := rr.Intn(len(pool))
						res, _, err := c.Query(pool[j])
						if err != nil {
							fail <- fmt.Sprintf("concurrent query through faults: %v", err)
							return
						}
						if !bytes.Equal(encodeResult(res), want[j]) {
							fail <- fmt.Sprintf("concurrent query %d: answer drifted under faults", j)
							return
						}
					}
				}(tc.seed + int64(g))
			}
			wg.Wait()
			close(fail)
			for msg := range fail {
				t.Fatal(msg)
			}

			ctr := c.Counters()
			if tc.rate > 0 && ctr.Retries == 0 && ctr.Redials == 0 {
				t.Logf("note: no faults were hit this run (rate %.0f%%)", tc.rate*100)
			}
			t.Logf("chaos %s: retries=%d redials=%d sheds=%d", tc.name, ctr.Retries, ctr.Redials, ctr.Sheds)
		})
	}
}
