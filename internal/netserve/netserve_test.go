package netserve

import (
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"crackstore/client"
	"crackstore/internal/engine"
	"crackstore/internal/serve"
	"crackstore/internal/store"
	"crackstore/internal/wire"
)

func buildRel(seed int64, n int, domain int64) *store.Relation {
	rng := rand.New(rand.NewSource(seed))
	return store.Build("R", n, []string{"A", "B", "C"}, func(string, int) store.Value {
		return 1 + rng.Int63n(domain)
	})
}

func startServer(t *testing.T, e engine.Engine, opts Options) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", e, opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dial(t *testing.T, s *Server, opts client.Options) *client.Client {
	t.Helper()
	c, err := client.Dial(s.Addr().String(), opts)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEndToEndQueryInsertDeleteStats(t *testing.T) {
	rel := buildRel(1, 2000, 500)
	s := startServer(t, engine.New(engine.Sideways, rel), Options{})
	c := dial(t, s, client.Options{})

	q := engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(100, 140)}},
		Projs: []string{"B"},
	}
	res, _, err := c.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.N == 0 || len(res.Cols["B"]) != res.N {
		t.Fatalf("implausible result: %+v", res)
	}

	// Insert a tuple that matches the range, requery, count grows by one.
	key, err := c.Insert(120, 7, 7)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if key != 2000 {
		t.Fatalf("Insert key = %d, want 2000 (append order)", key)
	}
	res2, _, err := c.Query(q)
	if err != nil {
		t.Fatalf("Query after insert: %v", err)
	}
	if res2.N != res.N+1 {
		t.Fatalf("after insert N = %d, want %d", res2.N, res.N+1)
	}

	// Delete it again.
	if err := c.Delete(key); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	res3, _, err := c.Query(q)
	if err != nil {
		t.Fatalf("Query after delete: %v", err)
	}
	if res3.N != res.N {
		t.Fatalf("after delete N = %d, want %d", res3.N, res.N)
	}

	// QueryRO on the now-cracked range must succeed read-only...
	if _, _, ok, err := c.QueryRO(q); err != nil || !ok {
		t.Fatalf("QueryRO warm: ok=%v err=%v", ok, err)
	}
	// ...and be refused on a cold one.
	cold := engine.Query{
		Preds: []engine.AttrPred{{Attr: "C", Pred: store.Range(1, 3)}},
		Projs: []string{"A"},
	}
	if _, _, ok, err := c.QueryRO(cold); err != nil || ok {
		t.Fatalf("QueryRO cold: ok=%v err=%v, want refused", ok, err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Queries < 3 {
		t.Fatalf("server stats report %d queries, want >= 3", st.Queries)
	}
	if st.Errors != 0 {
		t.Fatalf("server stats report %d errors, want 0", st.Errors)
	}
}

// TestPipelinedConcurrentClients hammers one server from many goroutines
// over a small conn pool; every answer must match the direct count.
func TestPipelinedConcurrentClients(t *testing.T) {
	rel := buildRel(2, 4000, 600)
	wantCount := func(p store.Pred) int {
		return store.SelectCount(rel.MustColumn("A"), p)
	}
	preds := make([]store.Pred, 24)
	want := make([]int, len(preds))
	rng := rand.New(rand.NewSource(3))
	for i := range preds {
		lo := 1 + rng.Int63n(520)
		preds[i] = store.Range(lo, lo+50)
		want[i] = wantCount(preds[i])
	}

	s := startServer(t, engine.New(engine.Sideways, rel), Options{
		Serve: serve.Options{Workers: 4},
	})
	c := dial(t, s, client.Options{Conns: 2})

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				j := r.Intn(len(preds))
				res, _, err := c.Query(engine.Query{
					Preds: []engine.AttrPred{{Attr: "A", Pred: preds[j]}},
					Projs: []string{"B"},
				})
				if err != nil {
					errs <- err.Error()
					return
				}
				if res.N != want[j] || len(res.Cols["B"]) != want[j] {
					errs <- "wrong result"
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := s.Stats()
	if st.Queries != 8*50 {
		t.Fatalf("server recorded %d queries, want %d", st.Queries, 8*50)
	}
	if st.Errors != 0 {
		t.Fatalf("server recorded %d errors, want 0", st.Errors)
	}
}

// rawConn is a minimal hand-rolled protocol peer for malformed-input tests.
type rawConn struct {
	t  *testing.T
	nc net.Conn
}

func rawDial(t *testing.T, s *Server) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc}
}

func (r *rawConn) write(frame []byte) {
	r.t.Helper()
	if _, err := r.nc.Write(frame); err != nil {
		r.t.Fatalf("raw write: %v", err)
	}
}

func (r *rawConn) read() wire.Response {
	r.t.Helper()
	r.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := wire.ReadFrame(r.nc, 0)
	if err != nil {
		r.t.Fatalf("raw read: %v", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		r.t.Fatalf("raw decode: %v", err)
	}
	return resp
}

// TestCorruptPayloadAnsweredInBand: a payload whose header decodes but whose
// body is garbage draws a StatusErr for that ID and the connection keeps
// working.
func TestCorruptPayloadAnsweredInBand(t *testing.T) {
	s := startServer(t, engine.New(engine.Sideways, buildRel(4, 500, 100)), Options{})
	r := rawDial(t, s)

	// Op byte + ID uvarint + garbage body.
	payload := []byte{byte(wire.OpQuery)}
	payload = binary.AppendUvarint(payload, 42)
	payload = append(payload, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	r.write(wire.AppendFrame(nil, payload))
	resp := r.read()
	if resp.ID != 42 || resp.Status != wire.StatusErr {
		t.Fatalf("corrupt payload answered %+v, want StatusErr for ID 42", resp)
	}

	// The connection must still serve a valid request afterwards.
	req := wire.Request{ID: 43, Op: wire.OpQuery, Query: engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(1, 50)}},
		Projs: []string{"B"},
	}}
	r.write(wire.AppendRequest(nil, &req))
	resp = r.read()
	if resp.ID != 43 || resp.Status != wire.StatusOK {
		t.Fatalf("valid request after corrupt one answered %+v", resp)
	}
}

// TestOversizedFrameRejected: a frame above the server's cap draws an
// ID-0 error, the connection closes, and the server keeps accepting.
func TestOversizedFrameRejected(t *testing.T) {
	s := startServer(t, engine.New(engine.Sideways, buildRel(5, 500, 100)), Options{MaxFrame: 1 << 16})
	r := rawDial(t, s)

	// A well-formed header announcing 16 MiB (echo intact, so the length
	// itself is trusted and the size cap is what rejects it).
	hdr := wire.AppendFrame(nil, make([]byte, 1<<24))[:wire.FrameHeader]
	r.write(hdr)
	resp := r.read()
	if resp.ID != 0 || resp.Status != wire.StatusErr || !strings.Contains(resp.Err, "maximum size") {
		t.Fatalf("oversized frame answered %+v", resp)
	}
	// The server hangs up on this connection (framing is unrecoverable)...
	r.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(r.nc, 0); err != io.EOF {
		t.Fatalf("after oversize want clean EOF, got %v", err)
	}
	// ...but the process survives and accepts fresh connections.
	c := dial(t, s, client.Options{})
	if _, _, err := c.Query(engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(1, 50)}},
	}); err != nil {
		t.Fatalf("server unusable after oversized frame: %v", err)
	}
}

// TestNotOurProtocol: a peer writing non-protocol bytes (an HTTP request)
// is disconnected without taking the server down.
func TestNotOurProtocol(t *testing.T) {
	s := startServer(t, engine.New(engine.Sideways, buildRel(6, 500, 100)), Options{MaxFrame: 1 << 16})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	// "GET " parses as a huge length prefix -> oversize error + close.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf, _ := io.ReadAll(nc)
	_ = buf // any bytes (error frame) or none; the point is the server survives
	c := dial(t, s, client.Options{})
	if _, _, err := c.Query(engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(1, 50)}},
	}); err != nil {
		t.Fatalf("server unusable after junk peer: %v", err)
	}
}

// TestInsertArityPanicIsAnError: an insert with the wrong tuple arity
// panics inside the engine; the server must convert it to an error
// response and keep the connection alive.
func TestInsertArityPanicIsAnError(t *testing.T) {
	s := startServer(t, engine.New(engine.Sideways, buildRel(7, 500, 100)), Options{})
	c := dial(t, s, client.Options{})
	if _, err := c.Insert(1); err == nil { // relation has 3 attributes
		t.Fatal("wrong-arity insert did not error")
	}
	if _, err := c.Insert(1, 2, 3); err != nil {
		t.Fatalf("connection unusable after panicking insert: %v", err)
	}
}

// TestOversizedResponseBecomesInBandError: a result too wide for the
// frame cap is converted to an error for that one request instead of
// being shipped and killing the peer's connection.
func TestOversizedResponseBecomesInBandError(t *testing.T) {
	rel := buildRel(12, 4000, 1000)
	s := startServer(t, engine.New(engine.Sideways, rel), Options{MaxFrame: 1 << 12})
	c := dial(t, s, client.Options{})

	// Every row qualifies: the response would be ~8x the cap.
	_, _, err := c.Query(engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(1, 1001)}},
		Projs: []string{"B"},
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized result: want in-band frame-limit error, got %v", err)
	}
	// The connection survives for reasonably sized queries.
	res, _, err := c.Query(engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Point(3)}},
		Projs: []string{"B"},
	})
	if err != nil {
		t.Fatalf("connection dead after oversized result: %v", err)
	}
	if res.N == 0 {
		t.Fatal("narrow query returned nothing")
	}
}

// TestGracefulClose: Close under load answers or cleanly fails every
// in-flight call, returns, and leaves the client with conn errors only.
func TestGracefulClose(t *testing.T) {
	rel := buildRel(8, 2000, 300)
	s := startServer(t, engine.New(engine.Sideways, rel), Options{
		Serve: serve.Options{Workers: 2},
	})
	c := dial(t, s, client.Options{Conns: 2})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	bad := make(chan string, 16)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := 1 + r.Int63n(250)
				res, _, err := c.Query(engine.Query{
					Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(lo, lo+20)}},
					Projs: []string{"B"},
				})
				if err != nil {
					return // conn failed during Close: expected
				}
				if res.N != store.SelectCount(rel.MustColumn("A"), store.Range(lo, lo+20)) {
					bad <- "wrong result during shutdown"
					return
				}
			}
		}(int64(g))
	}
	time.Sleep(50 * time.Millisecond) // let traffic flow
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain within 10s")
	}
	close(stop)
	wg.Wait()
	close(bad)
	for e := range bad {
		t.Fatal(e)
	}
}

// slowEngine blocks every Query for a fixed delay and refuses QueryRO —
// a deterministic stand-in for a crack that overruns the serving deadline.
type slowEngine struct {
	delay time.Duration
}

func (g *slowEngine) Name() string      { return "slow" }
func (g *slowEngine) Kind() engine.Kind { return engine.Scan }
func (g *slowEngine) Query(q engine.Query) (engine.Result, engine.Cost) {
	time.Sleep(g.delay)
	return engine.Result{N: 1, Cols: map[string][]store.Value{"B": {1}}}, engine.Cost{}
}
func (g *slowEngine) Probe(q engine.Query) bool { return true }
func (g *slowEngine) QueryRO(q engine.Query) (engine.Result, engine.Cost, bool) {
	return engine.Result{}, engine.Cost{}, false
}
func (g *slowEngine) Insert(vals ...store.Value) int        { return 0 }
func (g *slowEngine) Delete(key int)                        {}
func (g *slowEngine) Prepare(attrs ...string) time.Duration { return 0 }
func (g *slowEngine) Storage() int                          { return 0 }
func (g *slowEngine) JoinInput(preds []engine.AttrPred, joinAttr string, projs []string) (engine.JoinInput, engine.Cost) {
	return engine.JoinInput{}, engine.Cost{}
}

// TestServeTimeoutOverWire: a server-side per-query deadline surfaces to
// the remote client as an error response long before the slow execution
// finishes, and the timeout is counted in the server's stats.
func TestServeTimeoutOverWire(t *testing.T) {
	s := startServer(t, &slowEngine{delay: 600 * time.Millisecond}, Options{
		Serve: serve.Options{Workers: 1, Timeout: 30 * time.Millisecond},
	})
	c := dial(t, s, client.Options{})
	t0 := time.Now()
	_, _, err := c.Query(engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(1, 1000)}},
		Projs: []string{"B"},
	})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want remote deadline error, got %v", err)
	}
	if took := time.Since(t0); took >= 600*time.Millisecond {
		t.Fatalf("timeout response took %v — waited out the full execution", took)
	}
	st := s.Stats()
	if st.Errors == 0 {
		t.Fatalf("timeout not counted in server stats: %+v", st)
	}
}

// TestDispatchUnknownOp: an op byte the server does not implement must get
// a StatusErr response naming the op, not a hang or a mis-framed answer.
func TestDispatchUnknownOp(t *testing.T) {
	s := startServer(t, engine.New(engine.Sideways, buildRel(99, 100, 100)), Options{})
	resp := s.dispatch(&wire.Request{ID: 1, Op: wire.Op(99)}, time.Now())
	if resp.Status != wire.StatusErr {
		t.Fatalf("unknown op status = %d, want StatusErr", byte(resp.Status))
	}
	if !strings.Contains(resp.Err, "unknown op") {
		t.Fatalf("unknown op error %q does not name the problem", resp.Err)
	}
	if resp.ID != 1 {
		t.Fatalf("response ID = %d, want 1 (caller must be able to correlate)", resp.ID)
	}
}
