package netserve

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"crackstore/client"
	"crackstore/internal/engine"
	"crackstore/internal/shard"
	"crackstore/internal/store"
	"crackstore/internal/wire"
)

// encodeResult canonicalizes a result for byte comparison: the wire
// encoding sorts columns, so two results encode identically iff they hold
// the same rows in the same order with the same projections.
func encodeResult(res engine.Result) []byte {
	return wire.AppendResponse(nil, &wire.Response{Op: wire.OpQuery, Result: res})
}

func cloneRel(rel *store.Relation) *store.Relation {
	out := store.NewRelation(rel.Name, rel.Order...)
	for _, a := range rel.Order {
		out.MustColumn(a).Vals = append([]store.Value(nil), rel.MustColumn(a).Vals...)
	}
	return out
}

// equivCase is one cell of the kinds × sharding matrix.
type equivCase struct {
	name    string
	kind    engine.Kind
	shards  int  // 0 = unsharded
	updates bool // RowStore is read-only
}

func equivMatrix() []equivCase {
	kinds := []engine.Kind{
		engine.Scan, engine.SelCrack, engine.Presorted,
		engine.Sideways, engine.PartialSideways,
	}
	var cases []equivCase
	for _, k := range kinds {
		cases = append(cases,
			equivCase{name: k.String(), kind: k, updates: true},
			equivCase{name: k.String() + "/sharded", kind: k, shards: 3, updates: true},
		)
	}
	// The read-only reference engine, both modes.
	cases = append(cases,
		equivCase{name: "rowstore", kind: engine.RowStore},
		equivCase{name: "rowstore/sharded", kind: engine.RowStore, shards: 3},
	)
	return cases
}

func buildCaseEngine(c equivCase, rel *store.Relation) engine.Engine {
	if c.shards > 0 {
		return shard.New(c.kind, rel, c.shards, shard.Options{Attr: "A"})
	}
	return engine.New(c.kind, rel)
}

// genQuery draws a random query over the relation: 1-2 predicates,
// conjunctive or disjunctive, 1-2 projections.
func genQuery(r *rand.Rand, domain int64) engine.Query {
	attrs := []string{"A", "B", "C"}
	nPreds := 1 + r.Intn(2)
	q := engine.Query{Disjunctive: nPreds > 1 && r.Intn(3) == 0}
	used := r.Perm(len(attrs))
	for i := 0; i < nPreds; i++ {
		lo := 1 + r.Int63n(domain-1)
		width := 1 + r.Int63n(domain/4)
		var p store.Pred
		switch r.Intn(3) {
		case 0:
			p = store.Range(lo, lo+width)
		case 1:
			p = store.Open(lo, lo+width)
		default:
			p = store.Point(lo)
		}
		q.Preds = append(q.Preds, engine.AttrPred{Attr: attrs[used[i]], Pred: p})
	}
	for _, j := range r.Perm(len(attrs))[:1+r.Intn(2)] {
		q.Projs = append(q.Projs, attrs[j])
	}
	return q
}

// TestRemoteEquivalence replays an identical workload — queries, inserts,
// deletes — through a remote client against a loopback netserve daemon and
// directly against an in-process engine of the same kind, for every engine
// kind, sharded and unsharded. Every remote answer must be byte-identical
// (canonical wire encoding) to the in-process one, and insert keys must
// match. A final concurrent phase then pipelines the warmed query pool
// through the wire from many goroutines and checks each answer against the
// in-process result, proving the network layer neither corrupts nor
// reorders within a response under real concurrency.
func TestRemoteEquivalence(t *testing.T) {
	const (
		rows   = 1200
		domain = 400
		ops    = 220
	)
	for _, tc := range equivMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			base := store.Build("R", rows, []string{"A", "B", "C"},
				func(attr string, row int) store.Value {
					// Deterministic but attribute-dependent contents.
					h := int64(row)*2654435761 + int64(len(attr))*97
					return 1 + (h%domain+domain)%domain
				})
			local := buildCaseEngine(tc, cloneRel(base))
			s := startServer(t, buildCaseEngine(tc, cloneRel(base)), Options{})
			c := dial(t, s, client.Options{Conns: 2})

			r := rand.New(rand.NewSource(42))
			var liveKeys []int
			nextVal := func() store.Value { return 1 + r.Int63n(domain) }

			// Phase 1: sequential interleaved workload, exact comparison.
			for i := 0; i < ops; i++ {
				switch {
				case tc.updates && r.Intn(10) == 0: // insert
					vals := []store.Value{nextVal(), nextVal(), nextVal()}
					wantKey := local.Insert(vals...)
					gotKey, err := c.Insert(vals...)
					if err != nil {
						t.Fatalf("op %d: remote insert: %v", i, err)
					}
					if gotKey != wantKey {
						t.Fatalf("op %d: insert key %d != in-process %d", i, gotKey, wantKey)
					}
					liveKeys = append(liveKeys, gotKey)
				case tc.updates && r.Intn(12) == 0 && len(liveKeys) > 0: // delete
					j := r.Intn(len(liveKeys))
					key := liveKeys[j]
					liveKeys = append(liveKeys[:j], liveKeys[j+1:]...)
					local.Delete(key)
					if err := c.Delete(key); err != nil {
						t.Fatalf("op %d: remote delete: %v", i, err)
					}
				default: // query
					q := genQuery(r, domain)
					wantRes, _ := local.Query(q)
					gotRes, _, err := c.Query(q)
					if err != nil {
						t.Fatalf("op %d: remote query: %v", i, err)
					}
					if !bytes.Equal(encodeResult(gotRes), encodeResult(wantRes)) {
						t.Fatalf("op %d: remote result differs from in-process for %+v:\nremote N=%d, local N=%d",
							i, q, gotRes.N, wantRes.N)
					}
				}
			}

			// Phase 2: a fixed pool, warmed on both sides so no further
			// reorganization can change physical result order, then
			// pipelined concurrently through the wire.
			pool := make([]engine.Query, 12)
			want := make([][]byte, len(pool))
			for i := range pool {
				// Warm both sides: cracks from later pool queries can still
				// reorder earlier answers, so expectations are captured in
				// a second pass once the layout is frozen.
				pool[i] = genQuery(r, domain)
				local.Query(pool[i])
				if _, _, err := c.Query(pool[i]); err != nil {
					t.Fatalf("warm query %d: %v", i, err)
				}
			}
			for i := range pool {
				res, _ := local.Query(pool[i])
				want[i] = encodeResult(res)
				if gotRes, _, err := c.Query(pool[i]); err != nil {
					t.Fatalf("capture query %d: %v", i, err)
				} else if !bytes.Equal(encodeResult(gotRes), want[i]) {
					t.Fatalf("capture query %d: remote result differs from in-process", i)
				}
			}
			var wg sync.WaitGroup
			fail := make(chan string, 32)
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rr := rand.New(rand.NewSource(seed))
					for i := 0; i < 30; i++ {
						j := rr.Intn(len(pool))
						res, _, err := c.Query(pool[j])
						if err != nil {
							fail <- fmt.Sprintf("concurrent query: %v", err)
							return
						}
						if !bytes.Equal(encodeResult(res), want[j]) {
							fail <- fmt.Sprintf("concurrent query %d: answer drifted", j)
							return
						}
					}
				}(int64(g))
			}
			wg.Wait()
			close(fail)
			for msg := range fail {
				t.Fatal(msg)
			}
			if st := s.Stats(); st.Errors != 0 {
				t.Fatalf("server recorded %d errors during equivalence run", st.Errors)
			}
		})
	}
}
