package netserve

import (
	"sync"

	"crackstore/internal/wire"
)

// dedupWindow is the server-global idempotency-token memory: the first
// request carrying a token claims it and executes; any retry of the same
// token — which may arrive on a *different* connection, since the client
// pools conns — waits for that execution and gets the recorded response
// replayed. The window is bounded FIFO: once full, the oldest token is
// forgotten, so a pathologically late retry of an ancient write may
// re-execute — the window just has to outlive the client's retry budget,
// which spans seconds, not the server's lifetime.
type dedupWindow struct {
	mu    sync.Mutex
	cap   int
	m     map[uint64]*dedupEntry
	order []uint64 // insertion order for FIFO eviction
	pos   int      // next eviction slot once the ring is full
}

// dedupEntry is one claimed token. done is closed by the claimer after it
// stores resp; replayers wait on done and copy resp (re-addressing the ID).
type dedupEntry struct {
	done chan struct{}
	resp wire.Response
}

func newDedupWindow(capacity int) *dedupWindow {
	return &dedupWindow{
		cap:   capacity,
		m:     make(map[uint64]*dedupEntry, capacity),
		order: make([]uint64, 0, capacity),
	}
}

// claim registers token ownership: first is true for the one caller that
// must execute the write and then record+close the entry; every other
// caller gets the same entry with first=false and replays it.
func (d *dedupWindow) claim(token uint64) (*dedupEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.m[token]; ok {
		return e, false
	}
	e := &dedupEntry{done: make(chan struct{})}
	if len(d.order) < d.cap {
		d.order = append(d.order, token)
	} else {
		// Ring full: forget the oldest token in place.
		delete(d.m, d.order[d.pos])
		d.order[d.pos] = token
		d.pos = (d.pos + 1) % d.cap
	}
	d.m[token] = e
	return e, true
}
