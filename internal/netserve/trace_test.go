package netserve

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"crackstore/client"
	"crackstore/internal/engine"
	"crackstore/internal/obs"
	"crackstore/internal/store"
)

func rangeQuery(lo, hi store.Value) engine.Query {
	return engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(lo, hi)}},
		Projs: []string{"B"},
	}
}

// TestTracePropagation is the end-to-end tracing contract: a client with
// TraceSample=1 negotiates protocol v2, every query rides the wire with a
// trace ID, and the assembled trace covers the queue and execute stages
// with monotonically non-decreasing stage start times, bracketed by the
// client's own send/recv spans.
func TestTracePropagation(t *testing.T) {
	rel := buildRel(1, 2000, 500)
	s := startServer(t, engine.Concurrent(engine.New(engine.Sideways, rel)), Options{})

	var (
		mu     sync.Mutex
		traces []*obs.Trace
	)
	c := dial(t, s, client.Options{
		TraceSample: 1,
		OnTrace: func(tr *obs.Trace) {
			mu.Lock()
			traces = append(traces, tr)
			mu.Unlock()
		},
	})

	if _, _, err := c.Query(rangeQuery(100, 140)); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if _, _, _, err := c.QueryRO(rangeQuery(100, 140)); err != nil {
		t.Fatalf("QueryRO: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(traces) != 2 {
		t.Fatalf("collected %d traces, want 2 (did v2 negotiation fail?)", len(traces))
	}
	for i, tr := range traces {
		if tr.ID == 0 {
			t.Errorf("trace %d: zero ID", i)
		}
		if tr.Total <= 0 {
			t.Errorf("trace %d: non-positive total %v", i, tr.Total)
		}
		if tr.Err != "" {
			t.Errorf("trace %d: unexpected error %q", i, tr.Err)
		}
		stages := make(map[obs.Stage]bool)
		for _, sp := range tr.Spans {
			stages[sp.Stage] = true
		}
		// Queue and execute must have crossed the wire from the server;
		// send and recv are the client's own brackets.
		for _, want := range []obs.Stage{obs.StageClientSend, obs.StageQueue, obs.StageExecute, obs.StageClientRecv} {
			if !stages[want] {
				t.Errorf("trace %d: missing stage %v in %v", i, want, tr.Spans)
			}
		}
		if tr.Spans[0].Stage != obs.StageClientSend {
			t.Errorf("trace %d: first span %v, want client_send", i, tr.Spans[0].Stage)
		}
		if last := tr.Spans[len(tr.Spans)-1]; last.Stage != obs.StageClientRecv {
			t.Errorf("trace %d: last span %v, want client_recv", i, last.Stage)
		}
		for j := 1; j < len(tr.Spans); j++ {
			if tr.Spans[j].Start < tr.Spans[j-1].Start {
				t.Errorf("trace %d: stage starts not monotonic: %v", i, tr.Spans)
			}
		}
		for j, sp := range tr.Spans {
			if sp.Start < 0 || sp.Dur < 0 || sp.Start+sp.Dur > tr.Total {
				t.Errorf("trace %d span %d: %+v escapes total %v", i, j, sp, tr.Total)
			}
		}
	}
}

// TestTraceUntracedClientHasNoCallbacks: without TraceSample the client
// never negotiates tracing and OnTrace never fires.
func TestTraceUntracedClientHasNoCallbacks(t *testing.T) {
	rel := buildRel(1, 1000, 500)
	s := startServer(t, engine.New(engine.Sideways, rel), Options{})
	fired := false
	c := dial(t, s, client.Options{OnTrace: func(*obs.Trace) { fired = true }})
	if _, _, err := c.Query(rangeQuery(100, 140)); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if fired {
		t.Errorf("OnTrace fired without TraceSample")
	}
}

// TestServerSideSampling: a server started with TraceSample=1 traces
// requests from an untraced client and emits one-line JSON events with
// queue, execute, and encode spans to its sink, while the client sees a
// perfectly ordinary response.
func TestServerSideSampling(t *testing.T) {
	rel := buildRel(1, 2000, 500)
	var sink bytes.Buffer
	s := startServer(t, engine.New(engine.Sideways, rel), Options{
		TraceSample: 1,
		TraceSink:   &sink,
	})
	c := dial(t, s, client.Options{})

	res, _, err := c.Query(rangeQuery(100, 140))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.N == 0 {
		t.Fatalf("empty result")
	}

	// The event is written to the sink before the response frame is
	// enqueued, so it is visible once the client call returns.
	out := sink.String()
	if !strings.Contains(out, `"trace":"`) {
		t.Fatalf("no trace event emitted; sink: %q", out)
	}
	line := strings.SplitN(out, "\n", 2)[0]
	for _, stage := range []string{`"queue"`, `"execute"`, `"encode"`} {
		if !strings.Contains(line, stage) {
			t.Errorf("server event missing %s span: %s", stage, line)
		}
	}
}

// TestMetricsEndToEnd drives queries over the wire against a fully
// instrumented server and asserts the layered families the metrics-smoke
// CI job depends on are present and moving.
func TestMetricsEndToEnd(t *testing.T) {
	rel := buildRel(1, 2000, 500)
	reg := obs.NewRegistry()
	e := engine.Concurrent(engine.New(engine.Sideways, rel))
	s := startServer(t, e, Options{Metrics: reg})
	engine.RegisterMetrics(reg, s.srv.Engine())
	c := dial(t, s, client.Options{Metrics: reg})

	for i := 0; i < 10; i++ {
		lo := store.Value(50 + 20*i)
		if _, _, err := c.Query(rangeQuery(lo, lo+15)); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()

	if fams := len(reg.Families()); fams < 25 {
		t.Errorf("only %d families registered, want >= 25", fams)
	}
	// One family per layer must have moved off zero.
	for _, fam := range []string{
		"crack_serve_queries_total 1",
		"crack_net_frames_read_total 1",
		"crack_net_conns_total 1",
		"crack_kernel_crack_in_two_total",
		"crack_index_pieces",
		"crack_engine_storage_tuples",
	} {
		if !strings.Contains(out, strings.SplitN(fam, " ", 2)[0]) {
			t.Errorf("exposition missing family %s", fam)
		}
	}
	for _, nonzero := range []string{"crack_serve_queries_total 0\n", "crack_net_frames_read_total 0\n"} {
		if strings.Contains(out, nonzero) {
			t.Errorf("family stuck at zero: %s", strings.TrimSpace(nonzero))
		}
	}
}
