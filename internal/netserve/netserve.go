// Package netserve puts a network boundary in front of the serving layer:
// a TCP server that speaks the internal/wire protocol and dispatches
// decoded requests into a serve.Server, so remote clients
// (crackstore/client, cmd/crackserved) reach the same bounded-concurrency,
// admission-batched, latency-tracked execution path in-process callers get.
//
// Each accepted connection runs exactly two long-lived goroutines: a reader
// that decodes frames and dispatches each request on its own (pipeline-
// capped) goroutine, and a writer that serializes response frames back,
// coalescing flushes while the connection is busy. Because every request
// carries an ID and responses are written in completion order, a single
// connection pipelines many in-flight requests — a slow crack does not
// stall the answers of the read-only queries behind it (pair with
// serve.Options.Timeout to bound the slow request itself).
//
// Malformed input never kills the process: an oversized frame or an
// undecodable payload draws an error response and, when the stream can no
// longer be trusted (framing desync), a clean close of that one connection.
// Close drains gracefully — it stops accepting, unblocks the readers, waits
// for every dispatched request to be answered and flushed, then closes the
// connections and the serving layer.
package netserve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bufio"

	"os"

	"crackstore/internal/engine"
	"crackstore/internal/obs"
	"crackstore/internal/serve"
	"crackstore/internal/wire"
)

// Options tunes the network server.
type Options struct {
	// Serve configures the underlying serving layer (worker pool,
	// admission batching, per-query Timeout, cracking Policy).
	Serve serve.Options
	// MaxFrame caps frame sizes in both directions: request frames
	// announcing more are rejected without allocation, and a response
	// that would encode larger (a very wide result) is converted to an
	// in-band error rather than shipped to a peer whose reader would
	// reject it and drop the connection. 0 means wire.DefaultMaxFrame.
	MaxFrame int
	// MaxPipeline caps the in-flight requests per connection; 0 means 256.
	// A client pipelining deeper is backpressured at the TCP level (the
	// reader stops reading), never disconnected.
	MaxPipeline int
	// MaxInflight caps requests in flight across ALL connections; one more
	// is answered wire.StatusOverloaded in-band — the connection stays
	// healthy and the client backs off. 0 disables the global cap (per-conn
	// MaxPipeline still applies). Ping is exempt: health checks must answer
	// precisely when the server is saturated.
	MaxInflight int
	// DedupWindow bounds the idempotency-token dedup map: the server
	// remembers the response of the last DedupWindow tokened writes and
	// replays it when a client retry re-sends a token, so a write whose
	// response was lost in transit is applied exactly once. 0 means 4096.
	DedupWindow int
	// Metrics, when non-nil, registers the network layer's counters
	// (frames, bytes, corrupt frames, dedup hits, connections) into the
	// registry; it is also forwarded to the serving layer unless
	// Serve.Metrics is already set, so one registry observes both layers.
	// Nil keeps the hot path byte-identical to the uninstrumented build.
	Metrics *obs.Registry
	// TraceSample, when > 0, server-side samples one in TraceSample
	// non-ping requests for tracing (rounded up to the next power of
	// two): the sampled request takes the fully
	// timed dispatch path and its trace is emitted as a one-line JSON
	// event on TraceSink. Client-initiated traces (requests carrying a
	// trace ID) are always honored regardless of this setting.
	TraceSample int
	// TraceSink receives one-line JSON trace events for sampled and
	// client-traced requests. Nil with TraceSample > 0 means os.Stderr;
	// nil with TraceSample == 0 means client-traced requests return their
	// spans to the client but emit no server-side events.
	TraceSink io.Writer
}

func (o Options) withDefaults() Options {
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	if o.MaxFrame > math.MaxUint32-4 {
		// The frame length prefix is a uint32; a larger cap could let an
		// encoded length wrap and desync the stream.
		o.MaxFrame = math.MaxUint32 - 4
	}
	if o.MaxPipeline <= 0 {
		o.MaxPipeline = 256
	}
	if o.DedupWindow <= 0 {
		o.DedupWindow = 4096
	}
	if o.Serve.LatencyWindow <= 0 {
		// A network server is long-running by nature: without a window the
		// latency history grows ~8 bytes per query forever. 2^20 samples
		// (~8 MB) keeps percentiles meaningful at any realistic rate.
		o.Serve.LatencyWindow = 1 << 20
	}
	if o.Metrics != nil && o.Serve.Metrics == nil {
		o.Serve.Metrics = o.Metrics
	}
	if o.TraceSample > 0 && o.TraceSink == nil {
		o.TraceSink = os.Stderr
	}
	return o
}

// ErrClosed is returned by Serve when the server has been closed.
var ErrClosed = errors.New("netserve: server is closed")

// Server serves a crackstore engine over TCP.
type Server struct {
	srv  *serve.Server
	opts Options
	// inlineRO enables the reader-goroutine fast path for read-only
	// queries. Cracking and presorted engines answer QueryRO in sublinear
	// time plus a clustered copy, so executing inline beats a goroutine
	// handoff; the scan-family engines (Scan, RowStore) answer every query
	// "read-only" with a full relation scan, which would serialize a
	// connection's whole pipeline on its one reader — those always
	// dispatch.
	inlineRO bool

	// glimit is the global in-flight cap (nil when MaxInflight is 0);
	// sheds counts requests answered StatusOverloaded at this layer.
	glimit chan struct{}
	sheds  atomic.Int64
	dedup  *dedupWindow

	// met is nil when Options.Metrics is nil; every method on a nil met
	// no-ops, so call sites are unconditional.
	met     *netMetrics
	sampler *obs.Sampler // server-side 1-in-N trace sampling (nil = off)
	traceMu sync.Mutex   // serializes one-line JSON trace events on traceSink

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	serveErr error // fatal accept error, surfaced by Close
	closed   atomic.Bool
	wg       sync.WaitGroup // accept loop + per-connection goroutines
}

// NewServer builds a network server over e without listening yet; call
// Serve with a listener. The engine is wrapped exactly as serve.New does:
// in engine.Concurrent unless it is already shared-safe.
func NewServer(e engine.Engine, opts Options) *Server {
	opts = opts.withDefaults()
	kind := e.Kind()
	s := &Server{
		srv:      serve.New(e, opts.Serve),
		opts:     opts,
		inlineRO: kind != engine.Scan && kind != engine.RowStore,
		dedup:    newDedupWindow(opts.DedupWindow),
		conns:    make(map[*conn]struct{}),
	}
	if opts.MaxInflight > 0 {
		s.glimit = make(chan struct{}, opts.MaxInflight)
	}
	s.met = newNetMetrics(opts.Metrics, s)
	s.sampler = obs.NewSampler(opts.TraceSample)
	return s
}

// netMetrics holds the network layer's registry-backed instruments. A
// nil *netMetrics (Options.Metrics unset) no-ops on every method, so the
// loops never branch on configuration.
type netMetrics struct {
	framesRead, framesWritten *obs.Counter
	bytesRead, bytesWritten   *obs.Counter
	corrupt                   *obs.Counter
	dedupHits                 *obs.Counter
	hellos                    *obs.Counter
	connsTotal                *obs.Counter
	traces                    *obs.Counter
	conns                     *obs.Gauge
}

func newNetMetrics(r *obs.Registry, s *Server) *netMetrics {
	if r == nil {
		return nil
	}
	m := &netMetrics{
		framesRead:    r.Counter("crack_net_frames_read_total", "request frames decoded off client connections"),
		framesWritten: r.Counter("crack_net_frames_written_total", "response frames written to client connections"),
		bytesRead:     r.Counter("crack_net_bytes_read_total", "bytes read off client connections (frame headers included)"),
		bytesWritten:  r.Counter("crack_net_bytes_written_total", "bytes written to client connections (frame headers included)"),
		corrupt:       r.Counter("crack_net_corrupt_frames_total", "frames rejected as oversized, undecodable, or corrupt"),
		dedupHits:     r.Counter("crack_net_dedup_hits_total", "retried writes answered from the idempotency dedup window"),
		hellos:        r.Counter("crack_net_hello_total", "protocol version negotiations answered"),
		connsTotal:    r.Counter("crack_net_conns_total", "connections accepted"),
		traces:        r.Counter("crack_net_traces_total", "requests traced (client-initiated plus server-sampled)"),
		conns:         r.Gauge("crack_net_conns", "currently open connections"),
	}
	r.CounterFunc("crack_net_sheds_total", "requests shed by the global in-flight cap", func() uint64 { return uint64(s.sheds.Load()) })
	return m
}

func (m *netMetrics) frameRead(n int) {
	if m != nil {
		m.framesRead.Inc()
		m.bytesRead.Add(uint64(n))
	}
}

func (m *netMetrics) frameWritten(n int) {
	if m != nil {
		m.framesWritten.Inc()
		m.bytesWritten.Add(uint64(n))
	}
}

func (m *netMetrics) corruptFrame() {
	if m != nil {
		m.corrupt.Inc()
	}
}

func (m *netMetrics) dedupHit() {
	if m != nil {
		m.dedupHits.Inc()
	}
}

func (m *netMetrics) hello() {
	if m != nil {
		m.hellos.Inc()
	}
}

func (m *netMetrics) connOpen() {
	if m != nil {
		m.connsTotal.Inc()
		m.conns.Add(1)
	}
}

func (m *netMetrics) connClose() {
	if m != nil {
		m.conns.Add(-1)
	}
}

func (m *netMetrics) traced() {
	if m != nil {
		m.traces.Inc()
	}
}

// Listen starts serving e on addr (e.g. ":9090", "127.0.0.1:0") in a
// background goroutine and returns once the listener is bound, so
// Addr() is immediately valid.
func Listen(addr string, e engine.Engine, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := NewServer(e, opts)
	s.mu.Lock()
	s.ln = ln // bind before the accept goroutine runs, so Addr() is valid now
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return s, nil
}

// Serve accepts connections on ln until Close. It returns ErrClosed after
// a graceful Close, or the accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln // no-op when Listen already bound it; last listener wins otherwise
	s.mu.Unlock()
	backoff := 5 * time.Millisecond
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return ErrClosed
			}
			// Transient accept failures (EMFILE under load, ECONNABORTED)
			// must not silently kill the accept loop and leave a half-dead
			// daemon; back off and retry. Only a closed listener is fatal.
			if !errors.Is(err, net.ErrClosed) {
				time.Sleep(backoff)
				if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				continue
			}
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
			return err
		}
		backoff = 5 * time.Millisecond
		c := &conn{
			s:     s,
			nc:    nc,
			out:   make(chan *[]byte, 64),
			limit: make(chan struct{}, s.opts.MaxPipeline),
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			nc.Close()
			return ErrClosed
		}
		s.conns[c] = struct{}{}
		// Add under the lock: a concurrent Close between registration and
		// Add would otherwise see a zero WaitGroup, Wait through it, and
		// tear the serve layer down under this connection's goroutines.
		s.wg.Add(2)
		s.mu.Unlock()
		s.met.connOpen()
		go c.readLoop()
		go c.writeLoop()
	}
}

// Addr returns the bound listener address (nil before Serve/Listen).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Stats snapshots the serving-layer statistics (queries executed over all
// connections; inserts and deletes are not counted as queries). Sheds sums
// both shed layers: the serve watermark and the netserve global in-flight
// cap.
func (s *Server) Stats() serve.Stats {
	st := s.srv.Stats()
	st.Sheds += int(s.sheds.Load())
	return st
}

// Engine returns the shared (wrapped) engine requests execute against.
func (s *Server) Engine() engine.Engine { return s.srv.Engine() }

// Close drains the server gracefully: stop accepting, unblock every
// connection's reader, answer and flush every request already dispatched,
// close the connections, then close the serving layer. Idempotent. It
// returns the fatal accept error if the listener died before Close (a
// daemon that stopped accepting mid-run), nil after a clean shutdown.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		// Unblock the reader; it drains in-flight requests and shuts the
		// connection down on its way out.
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.srv.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serveErr
}

func (s *Server) dropConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.met.connClose()
}

// ---------------------------------------------------------------------------
// Per-connection handling.

type conn struct {
	s  *Server
	nc net.Conn

	out      chan *[]byte   // encoded response frames, reader/dispatch -> writer
	limit    chan struct{}  // in-flight request cap (MaxPipeline slots)
	inflight sync.WaitGroup // dispatched requests not yet answered

	// inlineCooldown (reader-goroutine local) dispatches the next N
	// requests off-reader after an inline execution overran inlineCutoff:
	// one oversized read-only result may head-of-line block the pipeline
	// once, but not repeatedly.
	inlineCooldown int
}

// Inline fast-path feedback bounds: an inline execution longer than
// inlineCutoff pushes the next inlineCooldownN requests onto dispatch
// goroutines, restoring out-of-order completion for heavy streaks.
const (
	inlineCutoff    = 250 * time.Microsecond
	inlineCooldownN = 64
)

// readLoop decodes request frames and dispatches them until the stream
// ends (peer close, Close() deadline, or an unrecoverable protocol error),
// then drains: waits for dispatched requests, lets the writer flush, and
// closes the socket.
func (c *conn) readLoop() {
	defer c.s.wg.Done()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		payload, err := wire.ReadFrame(br, c.s.opts.MaxFrame)
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) || errors.Is(err, wire.ErrCorrupt) {
				c.s.met.corruptFrame()
			}
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// The length prefix itself was intact: report the refusal
				// before hanging up (the body was never read, so the
				// stream position is unrecoverable).
				c.send(&wire.Response{Status: wire.StatusErr, Err: err.Error()})
			}
			break
		}
		c.s.met.frameRead(len(payload) + wire.FrameHeader)
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			c.s.met.corruptFrame()
			// Framing was intact — only this payload is bad. If its header
			// (op + ID) survives, answer the error in-band and keep
			// serving the connection; otherwise the peer is not speaking
			// our protocol and the connection ends.
			if op, id, ok := headerOf(payload); ok {
				c.send(&wire.Response{ID: id, Op: op, Status: wire.StatusErr, Err: err.Error()})
				continue
			}
			c.send(&wire.Response{Status: wire.StatusErr, Err: err.Error()})
			break
		}
		arrival := time.Now()
		// Ping answers on the reader, ahead of every limit: its whole point
		// is fast peer-death detection, so it must respond even when the
		// pipeline is saturated or the pool is shedding.
		if req.Op == wire.OpPing {
			c.send(&wire.Response{ID: req.ID, Op: wire.OpPing, Status: wire.StatusOK})
			continue
		}
		// Server-side trace sampling: a sampled request borrows the traced
		// dispatch path (fully timed, off-reader) but its spans stay on the
		// server — the client did not ask for them.
		sampled := false
		if req.Trace == 0 {
			if id, ok := c.s.sampler.Next(); ok {
				req.Trace, sampled = id, true
			}
		}
		// Global in-flight cap: over the line, the request is shed in-band
		// with StatusOverloaded — never by closing the conn — and the client
		// backs off and retries.
		acquired := false
		if c.s.glimit != nil {
			select {
			case c.s.glimit <- struct{}{}:
				acquired = true
			default:
				c.s.sheds.Add(1)
				c.send(&wire.Response{ID: req.ID, Op: req.Op, Status: wire.StatusOverloaded})
				continue
			}
		}
		// Fast path: the warm read-only majority is answered inline — no
		// goroutine handoff, no semaphore wait — whenever the engine can
		// take the query without reorganizing and a slot is free. Slow
		// queries (cracks, merges, updates, a momentarily full pool, a
		// full-scan engine per Server.inlineRO, or a post-overrun cooldown)
		// fall through to dispatch goroutines and complete out of order.
		// Traced requests always dispatch: tracing wants the fully timed
		// path, and at 1-in-N sampling the handoff cost is noise.
		if req.Op == wire.OpQuery && req.Trace == 0 && c.s.inlineRO && c.inlineCooldown == 0 {
			t0 := time.Now()
			if res, cost, ok := c.s.srv.TryRO(req.Query); ok {
				c.send(&wire.Response{ID: req.ID, Op: req.Op, Result: res, Cost: cost})
				if time.Since(t0) > inlineCutoff {
					c.inlineCooldown = inlineCooldownN
				}
				if acquired {
					<-c.s.glimit
				}
				continue
			}
		} else if c.inlineCooldown > 0 {
			c.inlineCooldown--
		}
		c.limit <- struct{}{} // pipeline cap: backpressure instead of unbounded goroutines
		c.inflight.Add(1)
		go func(req wire.Request, acquired, sampled bool) {
			defer c.inflight.Done()
			resp := c.s.dispatch(&req, arrival)
			if req.Trace != 0 {
				c.s.met.traced()
				c.sendTraced(&req, resp, arrival, sampled)
			} else {
				c.send(resp)
			}
			if acquired {
				<-c.s.glimit
			}
			<-c.limit
		}(req, acquired, sampled)
	}
	c.inflight.Wait() // every dispatched request has queued its response
	close(c.out)      // writer flushes the tail and exits
	c.s.dropConn(c)
}

// frameBufPool recycles response frame buffers between requests: the
// writer returns each buffer after it hits the socket, so steady-state
// serving allocates no fresh frame per response.
var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// writeLoop serializes response frames onto the socket, flushing whenever
// the queue momentarily empties (so pipelined bursts coalesce into few
// syscalls without adding latency). On a write error it keeps draining the
// channel so dispatch goroutines can never block on a dead connection.
func (c *conn) writeLoop() {
	defer c.s.wg.Done()
	defer c.nc.Close()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	broken := false
	for frame := range c.out {
		if !broken {
			if _, err := bw.Write(*frame); err != nil {
				broken = true
			} else if c.s.met.frameWritten(len(*frame)); len(c.out) == 0 {
				if err := bw.Flush(); err != nil {
					broken = true
				}
			}
		}
		*frame = (*frame)[:0]
		frameBufPool.Put(frame)
	}
	if !broken {
		bw.Flush()
	}
}

// send enqueues one encoded response. A response whose frame exceeds
// MaxFrame (the cap is symmetric: clients enforce it on reads) is replaced
// by an in-band error for that one request — shipping it would make the
// peer's frame reader kill the whole connection, failing every pipelined
// call, for one oversized result. send never blocks forever: the writer
// drains the channel until the reader closes it, even on a broken socket.
func (c *conn) send(resp *wire.Response) {
	c.out <- c.encodeFrame(resp)
}

// encodeFrame encodes one response into a pooled frame buffer, applying
// the oversize-to-error conversion.
func (c *conn) encodeFrame(resp *wire.Response) *[]byte {
	buf := frameBufPool.Get().(*[]byte)
	*buf = wire.AppendResponse(*buf, resp)
	if len(*buf)-wire.FrameHeader > c.s.opts.MaxFrame {
		over := len(*buf) - wire.FrameHeader
		*buf = wire.AppendResponse((*buf)[:0], &wire.Response{
			ID: resp.ID, Op: resp.Op, Status: wire.StatusErr,
			Err: fmt.Sprintf("netserve: response frame %d bytes exceeds the %d-byte limit; narrow the query or raise MaxFrame", over, c.s.opts.MaxFrame),
		})
	}
	return buf
}

// sendTraced encodes and enqueues a traced request's response, timing the
// encode, and emits the server-side trace event: the response's spans
// plus the encode span the response cannot carry about itself. A sampled
// (server-initiated) trace strips the spans from the wire response first
// — the client did not ask for them.
func (c *conn) sendTraced(req *wire.Request, resp *wire.Response, arrival time.Time, sampled bool) {
	spans := resp.Spans
	if sampled {
		resp.Spans = nil
	}
	t0 := time.Now()
	buf := c.encodeFrame(resp)
	enc := time.Since(t0)
	if sink := c.s.opts.TraceSink; sink != nil {
		tr := obs.Trace{
			ID:    req.Trace,
			Op:    req.Op.String(),
			Total: time.Since(arrival),
			Err:   resp.Err,
			Spans: append(spans, obs.Span{Stage: obs.StageEncode, Start: t0.Sub(arrival), Dur: enc}),
		}
		c.s.traceMu.Lock()
		tr.WriteJSON(sink)
		c.s.traceMu.Unlock()
	}
	c.out <- buf
}

// headerOf attempts to salvage the op and request ID from a payload whose
// full decode failed, so the error can be delivered to the right waiter.
func headerOf(payload []byte) (wire.Op, uint64, bool) {
	if len(payload) < 1 {
		return 0, 0, false
	}
	id, n := binary.Uvarint(payload[1:])
	if n <= 0 {
		return 0, 0, false
	}
	return wire.Op(payload[0]), id, true
}

// ---------------------------------------------------------------------------
// Request dispatch.

// dispatch executes one decoded request against the serving layer and
// builds its response. Writes carrying an idempotency token pass through
// the dedup window first: a token already seen replays the recorded
// response (re-addressed to the retry's request ID) instead of applying
// the write twice — the exactly-once half of the client's
// retry-after-send contract.
func (s *Server) dispatch(req *wire.Request, arrival time.Time) *wire.Response {
	if req.Token != 0 && (req.Op == wire.OpInsert || req.Op == wire.OpDelete) {
		e, first := s.dedup.claim(req.Token)
		if !first {
			// A retry of a write the server already owns: wait out the
			// original execution if needed and replay its response.
			s.met.dedupHit()
			<-e.done
			r := e.resp
			r.ID = req.ID
			return &r
		}
		resp := s.exec(req, arrival)
		e.resp = *resp
		close(e.done)
		return resp
	}
	return s.exec(req, arrival)
}

// exec runs one request against the serving layer and builds its response.
// Engine panics (malformed tuples, unknown attributes) become error
// responses, never process deaths; serve-layer sheds and expiries map to
// their in-band statuses.
func (s *Server) exec(req *wire.Request, arrival time.Time) (resp *wire.Response) {
	resp = &wire.Response{ID: req.ID, Op: req.Op}
	defer func() {
		if r := recover(); r != nil {
			resp.Status = wire.StatusErr
			resp.Err = fmt.Sprintf("netserve: %v panicked: %v", req.Op, r)
			resp.Result = engine.Result{}
			resp.Cost = engine.Cost{}
		}
	}()
	// The wire TTL hint becomes an absolute deadline anchored at frame
	// arrival: a query whose client has already given up is skipped by the
	// serve layer instead of burning a worker slot.
	var deadline time.Time
	if req.TTL > 0 {
		deadline = arrival.Add(req.TTL)
	}
	fail := func(err error) *wire.Response {
		if errors.Is(err, serve.ErrOverloaded) {
			resp.Status = wire.StatusOverloaded
			return resp
		}
		resp.Status = wire.StatusErr
		resp.Err = err.Error()
		return resp
	}
	// Traced queries go through the span-capturing entry point; their
	// response carries queue/execute/crack spans back to the client.
	var sp *serve.SpanTimes
	if req.Trace != 0 {
		sp = new(serve.SpanTimes)
	}
	switch req.Op {
	case wire.OpQuery:
		res, cost, err := s.srv.DoUntilSpans(req.Query, deadline, sp)
		if err != nil {
			return fail(err)
		}
		resp.Result, resp.Cost = res, cost
		resp.Spans = serverSpans(sp, cost)
	case wire.OpQueryRO:
		// Read-only requests stay inside the serving layer so the worker
		// bound, per-query deadline, and statistics apply to them exactly
		// as to full queries. TryRO covers the common case; when it
		// declines for lack of a free slot (or batching mode) rather than
		// because the query would reorganize, fall through to Do — for a
		// reorganization-free query that is the same read-only execution,
		// just queued fairly behind the pool. Traced requests skip TryRO:
		// tracing wants the timed pool path.
		var res engine.Result
		var cost engine.Cost
		ok := false
		if sp == nil {
			res, cost, ok = s.srv.TryRO(req.Query)
		}
		if !ok {
			if s.srv.Engine().Probe(req.Query) {
				resp.Status = wire.StatusRefused
				return resp
			}
			var err error
			res, cost, err = s.srv.DoUntilSpans(req.Query, deadline, sp)
			if err != nil {
				return fail(err)
			}
			resp.Spans = serverSpans(sp, cost)
		}
		resp.Result, resp.Cost = res, cost
	case wire.OpInsert:
		resp.Key = s.srv.Engine().Insert(req.Vals...)
	case wire.OpDelete:
		s.srv.Engine().Delete(req.Key)
	case wire.OpPing:
		// Normally answered on the reader; kept here so a directly
		// dispatched ping still works.
	case wire.OpHello:
		// Version negotiation: answer with the server's protocol version.
		// Old servers answer OpHello with an in-band unknown-op error,
		// which new clients read as "version 1, no tracing".
		s.met.hello()
		resp.Version = wire.ProtoVersion
	case wire.OpStats:
		st := s.Stats()
		resp.Stats = wire.Stats{
			Queries: st.Queries,
			Errors:  st.Errors,
			Sheds:   st.Sheds,
			Elapsed: st.Elapsed,
			QPS:     st.QPS,
			P50:     st.P50,
			P95:     st.P95,
			P99:     st.P99,
			Max:     st.Max,
		}
	default:
		resp.Status = wire.StatusErr
		resp.Err = fmt.Sprintf("netserve: unknown op %d", byte(req.Op))
	}
	return resp
}

// serverSpans converts the serving layer's stage times into wire spans,
// anchored at the serve entry (the client re-anchors them after its send
// span). The crack span is the selection side of execution — locating
// qualifying tuples, including any physical reorganization — nested at
// the start of the execute span. Returns nil for an untraced call.
func serverSpans(sp *serve.SpanTimes, cost engine.Cost) []obs.Span {
	if sp == nil {
		return nil
	}
	spans := []obs.Span{
		{Stage: obs.StageQueue, Start: 0, Dur: sp.Queue},
		{Stage: obs.StageExecute, Start: sp.Queue, Dur: sp.Exec},
	}
	if cost.Sel > 0 {
		spans = append(spans, obs.Span{Stage: obs.StageCrack, Start: sp.Queue, Dur: cost.Sel})
	}
	return spans
}

var _ io.Closer = (*Server)(nil)
