// Package dict provides an order-preserving string dictionary: strings are
// encoded as their rank in sorted order, so string range and prefix
// predicates become integer range predicates — which makes string columns
// crackable by the integer cracking machinery. The paper's conclusions
// name "string cracking" as future work; this dictionary is the standard
// way column-stores (including MonetDB) bring strings into an
// integer-ordered domain, and it is what internal/tpch's categorical
// attributes model.
//
// The dictionary is immutable once built. Extending it with unseen strings
// would renumber ranks and invalidate stored codes; Extend therefore
// returns a fresh dictionary plus the remapping old code -> new code, and
// the caller rewrites its columns (an offline operation, like the paper's
// presorting).
package dict

import (
	"sort"

	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// Dict maps strings to dense, order-preserving codes 0..Len()-1.
type Dict struct {
	strs  []string
	codes map[string]Value
}

// Build returns a dictionary over the distinct values in vals. Codes are
// assigned by sorted rank, so s1 < s2 implies Code(s1) < Code(s2).
func Build(vals []string) *Dict {
	uniq := make(map[string]bool, len(vals))
	for _, s := range vals {
		uniq[s] = true
	}
	strs := make([]string, 0, len(uniq))
	for s := range uniq {
		strs = append(strs, s)
	}
	sort.Strings(strs)
	d := &Dict{strs: strs, codes: make(map[string]Value, len(strs))}
	for i, s := range strs {
		d.codes[s] = Value(i)
	}
	return d
}

// Len returns the number of distinct strings.
func (d *Dict) Len() int { return len(d.strs) }

// Code returns the code of s; ok is false for unknown strings.
func (d *Dict) Code(s string) (Value, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// String returns the string for code c. Panics on out-of-range codes.
func (d *Dict) String(c Value) string { return d.strs[int(c)] }

// Encode maps vals to codes. Unknown strings yield code -1.
func (d *Dict) Encode(vals []string) []Value {
	out := make([]Value, len(vals))
	for i, s := range vals {
		if c, ok := d.codes[s]; ok {
			out[i] = c
		} else {
			out[i] = -1
		}
	}
	return out
}

// RangePred returns the code predicate equivalent to lo <= s <= hi in
// string order. Bounds need not be present in the dictionary.
func (d *Dict) RangePred(lo, hi string) store.Pred {
	l := sort.SearchStrings(d.strs, lo)
	h := sort.SearchStrings(d.strs, hi)
	hIncl := false
	if h < len(d.strs) && d.strs[h] == hi {
		hIncl = true
	}
	return store.Pred{Lo: Value(l), Hi: Value(h), LoIncl: true, HiIncl: hIncl}
}

// PrefixPred returns the code predicate matching all strings with the
// given prefix — a contiguous code range thanks to order preservation.
// An empty prefix matches everything.
func (d *Dict) PrefixPred(prefix string) store.Pred {
	l := sort.SearchStrings(d.strs, prefix)
	h := len(d.strs)
	if next, ok := nextPrefix(prefix); ok {
		h = sort.SearchStrings(d.strs, next)
	}
	return store.Pred{Lo: Value(l), Hi: Value(h), LoIncl: true, HiIncl: false}
}

// nextPrefix returns the smallest string greater than every string with
// the given prefix (increment the last byte, with carry). ok is false when
// no such string exists (prefix is empty or all 0xff).
func nextPrefix(p string) (string, bool) {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}

// Extend builds a new dictionary over the union of the current strings and
// extra, returning it together with the remapping remap[oldCode] ==
// newCode for rewriting existing encoded columns.
func (d *Dict) Extend(extra []string) (*Dict, []Value) {
	all := make([]string, 0, len(d.strs)+len(extra))
	all = append(all, d.strs...)
	all = append(all, extra...)
	nd := Build(all)
	remap := make([]Value, len(d.strs))
	for i, s := range d.strs {
		remap[i] = nd.codes[s]
	}
	return nd, remap
}
