package dict

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildOrderPreserving(t *testing.T) {
	d := Build([]string{"pear", "apple", "banana", "apple"})
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	a, _ := d.Code("apple")
	b, _ := d.Code("banana")
	p, _ := d.Code("pear")
	if !(a < b && b < p) {
		t.Fatalf("codes not order-preserving: %d %d %d", a, b, p)
	}
	if d.String(a) != "apple" {
		t.Fatal("round trip failed")
	}
	if _, ok := d.Code("kiwi"); ok {
		t.Fatal("unknown string should not have a code")
	}
}

func TestEncode(t *testing.T) {
	d := Build([]string{"x", "y"})
	got := d.Encode([]string{"y", "z", "x"})
	if got[1] != -1 {
		t.Fatal("unknown string must encode to -1")
	}
	if d.String(got[0]) != "y" || d.String(got[2]) != "x" {
		t.Fatal("encode mismatch")
	}
}

func TestRangePred(t *testing.T) {
	d := Build([]string{"aa", "ab", "b", "ca", "cb"})
	p := d.RangePred("ab", "ca")
	for _, tc := range []struct {
		s    string
		want bool
	}{{"aa", false}, {"ab", true}, {"b", true}, {"ca", true}, {"cb", false}} {
		c, _ := d.Code(tc.s)
		if p.Matches(c) != tc.want {
			t.Errorf("RangePred(ab,ca).Matches(%q) = %v, want %v", tc.s, p.Matches(c), tc.want)
		}
	}
	// Bounds absent from the dictionary.
	p = d.RangePred("a", "bzzz")
	for _, tc := range []struct {
		s    string
		want bool
	}{{"aa", true}, {"b", true}, {"ca", false}} {
		c, _ := d.Code(tc.s)
		if p.Matches(c) != tc.want {
			t.Errorf("RangePred(a,bzzz).Matches(%q) = %v, want %v", tc.s, p.Matches(c), tc.want)
		}
	}
}

func TestPrefixPred(t *testing.T) {
	d := Build([]string{"car", "cart", "cat", "dog", "ca"})
	p := d.PrefixPred("ca")
	for _, tc := range []struct {
		s    string
		want bool
	}{{"ca", true}, {"car", true}, {"cart", true}, {"cat", true}, {"dog", false}} {
		c, _ := d.Code(tc.s)
		if p.Matches(c) != tc.want {
			t.Errorf("PrefixPred(ca).Matches(%q) = %v, want %v", tc.s, p.Matches(c), tc.want)
		}
	}
}

func TestPrefixPredEdgeCases(t *testing.T) {
	d := Build([]string{"a", "b", string([]byte{0xff, 0xff})})
	// Empty prefix matches everything.
	p := d.PrefixPred("")
	if got := countMatches(d, p); got != 3 {
		t.Fatalf("empty prefix matched %d, want 3", got)
	}
	// All-0xff prefix has no successor; must still terminate and match.
	p = d.PrefixPred(string([]byte{0xff}))
	if got := countMatches(d, p); got != 1 {
		t.Fatalf("0xff prefix matched %d, want 1", got)
	}
}

func countMatches(d *Dict, p interface{ Matches(Value) bool }) int {
	n := 0
	for c := 0; c < d.Len(); c++ {
		if p.Matches(Value(c)) {
			n++
		}
	}
	return n
}

func TestExtendRemap(t *testing.T) {
	d := Build([]string{"m", "z"})
	nd, remap := d.Extend([]string{"a", "q"})
	if nd.Len() != 4 {
		t.Fatalf("extended Len = %d", nd.Len())
	}
	for old, s := range d.strs {
		if nd.String(remap[old]) != s {
			t.Fatalf("remap broken for %q", s)
		}
	}
	// Order preservation still holds in the new dictionary.
	prev := ""
	for c := 0; c < nd.Len(); c++ {
		if s := nd.String(Value(c)); s < prev {
			t.Fatal("extended dictionary not sorted")
		} else {
			prev = s
		}
	}
}

// Property: for random string sets, code comparisons agree with string
// comparisons, and PrefixPred matches exactly strings.HasPrefix.
func TestQuickOrderAndPrefix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = randWord(rng)
		}
		d := Build(vals)
		for k := 0; k < 30; k++ {
			s1, s2 := vals[rng.Intn(n)], vals[rng.Intn(n)]
			c1, _ := d.Code(s1)
			c2, _ := d.Code(s2)
			if (s1 < s2) != (c1 < c2) || (s1 == s2) != (c1 == c2) {
				return false
			}
		}
		prefix := randWord(rng)
		if cut := 1 + rng.Intn(2); cut < len(prefix) {
			prefix = prefix[:cut]
		}
		p := d.PrefixPred(prefix)
		for _, s := range vals {
			c, _ := d.Code(s)
			if p.Matches(c) != strings.HasPrefix(s, prefix) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randWord(rng *rand.Rand) string {
	n := 1 + rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(4))
	}
	return string(b)
}

// Property: RangePred(lo,hi) matches exactly lo <= s <= hi.
func TestQuickRangePred(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(80)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = randWord(rng)
		}
		d := Build(vals)
		lo, hi := randWord(rng), randWord(rng)
		if lo > hi {
			lo, hi = hi, lo
		}
		p := d.RangePred(lo, hi)
		for _, s := range vals {
			c, _ := d.Code(s)
			if p.Matches(c) != (s >= lo && s <= hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedCodesRoundTrip(t *testing.T) {
	words := []string{"delta", "alpha", "charlie", "bravo"}
	d := Build(words)
	codes := d.Encode(words)
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	var got []string
	for _, c := range codes {
		got = append(got, d.String(c))
	}
	if fmt.Sprint(got) != "[alpha bravo charlie delta]" {
		t.Fatalf("got %v", got)
	}
}
