package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAllClear(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if v.Count() != 0 {
		t.Fatalf("Count = %d, want 0", v.Count())
	}
	for i := 0; i < 130; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
	}
}

func TestNewSet(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 129, 1000} {
		v := NewSet(n)
		if v.Count() != n {
			t.Fatalf("NewSet(%d).Count = %d", n, v.Count())
		}
	}
}

func TestSetClearGet(t *testing.T) {
	v := New(200)
	v.Set(0)
	v.Set(63)
	v.Set(64)
	v.Set(199)
	for _, i := range []int{0, 63, 64, 199} {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Count() != 4 {
		t.Fatalf("Count = %d, want 4", v.Count())
	}
	v.Clear(63)
	if v.Get(63) {
		t.Error("bit 63 should be clear")
	}
	if v.Count() != 3 {
		t.Fatalf("Count = %d, want 3", v.Count())
	}
}

func TestAndOr(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	c := a.Clone()
	c.And(b)
	if c.Count() != 1 || !c.Get(50) {
		t.Errorf("And: got count %d", c.Count())
	}
	d := a.Clone()
	d.Or(b)
	if d.Count() != 3 {
		t.Errorf("Or: got count %d, want 3", d.Count())
	}
}

func TestAndLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).And(New(11))
}

func TestSetRange(t *testing.T) {
	for _, tc := range []struct{ n, lo, hi int }{
		{10, 0, 10}, {10, 3, 7}, {200, 60, 70}, {200, 0, 200},
		{200, 64, 128}, {200, 63, 129}, {200, 5, 5}, {65, 64, 65},
	} {
		v := New(tc.n)
		v.SetRange(tc.lo, tc.hi)
		if v.Count() != tc.hi-tc.lo {
			t.Errorf("SetRange(%d,%d) on n=%d: count %d, want %d",
				tc.lo, tc.hi, tc.n, v.Count(), tc.hi-tc.lo)
		}
		for i := 0; i < tc.n; i++ {
			want := i >= tc.lo && i < tc.hi
			if v.Get(i) != want {
				t.Fatalf("SetRange(%d,%d): bit %d = %v, want %v", tc.lo, tc.hi, i, v.Get(i), want)
			}
		}
	}
}

func TestForEachSetOrder(t *testing.T) {
	v := New(500)
	want := []int{3, 64, 65, 130, 499}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAppendSet(t *testing.T) {
	v := New(70)
	v.Set(69)
	v.Set(2)
	got := v.AppendSet(nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 69 {
		t.Fatalf("AppendSet = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(5)
	b := a.Clone()
	b.Set(6)
	if a.Get(6) {
		t.Fatal("Clone is not independent")
	}
	if !b.Get(5) {
		t.Fatal("Clone lost bit")
	}
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesSets(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		rng := rand.New(rand.NewSource(seed))
		v := New(n)
		set := map[int]bool{}
		for i := 0; i < 100; i++ {
			j := rng.Intn(n)
			if rng.Intn(2) == 0 {
				v.Set(j)
				set[j] = true
			} else {
				v.Clear(j)
				delete(set, j)
			}
		}
		if v.Count() != len(set) {
			return false
		}
		for j := range set {
			if !v.Get(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: And is intersection, Or is union (element-wise).
func TestQuickAndOrSemantics(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%500 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := New(n), New(n)
		as, bs := make([]bool, n), make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
				as[i] = true
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
				bs[i] = true
			}
		}
		and, or := a.Clone(), a.Clone()
		and.And(b)
		or.Or(b)
		for i := 0; i < n; i++ {
			if and.Get(i) != (as[i] && bs[i]) || or.Get(i) != (as[i] || bs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetRange(b *testing.B) {
	v := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.SetRange(1000, 1<<19)
		v.ClearAll()
	}
}

func BenchmarkCount(b *testing.B) {
	v := NewSet(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.Count()
	}
}
