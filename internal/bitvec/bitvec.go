// Package bitvec provides a dense bit vector used for multi-predicate
// filtering in sideways cracking (Section 3.3 of the paper). Conjunctive
// query plans create a bit vector sized to the candidate area of the most
// selective predicate and successive selections clear bits of tuples that
// fail their predicate; disjunctive plans start with a vector sized to the
// whole map and successively set bits.
package bitvec

import "math/bits"

const wordBits = 64

// Vector is a fixed-size bit vector. The zero value is an empty vector;
// use New to create one with a given length.
type Vector struct {
	words []uint64
	n     int
}

// New returns a vector of n bits, all clear.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewSet returns a vector of n bits, all set.
func NewSet(n int) *Vector {
	v := New(n)
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.clearTail()
	return v
}

func (v *Vector) clearTail() {
	if r := v.n % wordBits; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(r)) - 1
	}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Set sets bit i.
func (v *Vector) Set(i int) { v.words[i/wordBits] |= 1 << uint(i%wordBits) }

// Clear clears bit i.
func (v *Vector) Clear(i int) { v.words[i/wordBits] &^= 1 << uint(i%wordBits) }

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool { return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0 }

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects v with o in place. Panics if lengths differ.
func (v *Vector) And(o *Vector) {
	if v.n != o.n {
		panic("bitvec: length mismatch")
	}
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Or unions v with o in place. Panics if lengths differ.
func (v *Vector) Or(o *Vector) {
	if v.n != o.n {
		panic("bitvec: length mismatch")
	}
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// SetAll sets every bit.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.clearTail()
}

// ClearAll clears every bit.
func (v *Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// SetRange sets bits [lo, hi).
func (v *Vector) SetRange(lo, hi int) {
	if lo < 0 || hi > v.n || lo > hi {
		panic("bitvec: bad range")
	}
	for i := lo; i < hi && i%wordBits != 0; i++ {
		v.Set(i)
	}
	lo += (wordBits - lo%wordBits) % wordBits
	if lo > hi {
		return
	}
	for ; lo+wordBits <= hi; lo += wordBits {
		v.words[lo/wordBits] = ^uint64(0)
	}
	for ; lo < hi; lo++ {
		v.Set(lo)
	}
}

// ForEachSet calls f with the index of every set bit, in ascending order.
func (v *Vector) ForEachSet(f func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// AppendSet appends the indices of all set bits to dst and returns it.
func (v *Vector) AppendSet(dst []int) []int {
	v.ForEachSet(func(i int) { dst = append(dst, i) })
	return dst
}

// Clone returns a copy of v.
func (v *Vector) Clone() *Vector {
	w := &Vector{words: make([]uint64, len(v.words)), n: v.n}
	copy(w.words, v.words)
	return w
}
