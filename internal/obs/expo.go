package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// Exposition. Scrapes hold the registry lock, so families registered
// concurrently with a scrape appear atomically; instrument values are
// individually-atomic loads (monitoring-grade consistency, documented on
// Histogram.Quantile). Output is sorted by family name so the format is
// stable and diffable (and golden-testable).

// WritePrometheus writes every family in Prometheus text exposition
// format (version 0.0.4). Duration histograms registered with a
// _seconds name are converted from internal nanoseconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.sortedMetrics() {
		var err error
		switch m.kind {
		case kindCounter:
			err = writeScalar(w, m, "counter", formatUint(m.c.Value()))
		case kindCounterFunc:
			err = writeScalar(w, m, "counter", formatUint(m.cf()))
		case kindGauge:
			err = writeScalar(w, m, "gauge", strconv.FormatInt(m.g.Value(), 10))
		case kindGaugeFunc:
			err = writeScalar(w, m, "gauge", formatFloat(m.gf()))
		case kindHistogram:
			err = writeHistogram(w, m)
		default:
			// Unreachable: kinds are only minted by the register helpers.
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) sortedMetrics() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}

func writeScalar(w io.Writer, m *metric, typ, val string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		m.name, m.help, m.name, typ, m.name, val)
	return err
}

func writeHistogram(w io.Writer, m *metric) error {
	h := m.h
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
		m.name, m.help, m.name); err != nil {
		return err
	}
	// Cumulative buckets up to the highest non-empty one, then +Inf.
	// Bucket bounds are seconds (instruments record nanoseconds).
	top := -1
	var counts [nHistBuckets]uint64
	for i := 0; i < nHistBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		le := formatFloat(float64(bucketUpper(i)) / 1e9)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		m.name, formatFloat(h.Sum().Seconds()), m.name, h.Count()); err != nil {
		return err
	}
	// The exact maximum is information a Prometheus histogram cannot
	// carry; expose it as a companion gauge family.
	_, err := fmt.Fprintf(w, "# HELP %s_max exact maximum observation of %s\n# TYPE %s_max gauge\n%s_max %s\n",
		m.name, m.name, m.name, m.name, formatFloat(h.Max().Seconds()))
	return err
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON writes every family as a JSON object keyed by family name —
// the machine-readable twin of WritePrometheus, consumed by
// `cracktrace -metrics`. Histograms summarize to count/sum/p50/p99/max
// (seconds).
func (r *Registry) WriteJSON(w io.Writer) error {
	ms := r.sortedMetrics()
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, m := range ms {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			err = jsonScalar(w, m.name, "counter", formatUint(m.c.Value()))
		case kindCounterFunc:
			err = jsonScalar(w, m.name, "counter", formatUint(m.cf()))
		case kindGauge:
			err = jsonScalar(w, m.name, "gauge", strconv.FormatInt(m.g.Value(), 10))
		case kindGaugeFunc:
			err = jsonScalar(w, m.name, "gauge", formatFloat(m.gf()))
		case kindHistogram:
			s := m.h.Snapshot()
			_, err = fmt.Fprintf(w,
				"%q:{\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"p50\":%s,\"p99\":%s,\"max\":%s}",
				m.name, s.Count, formatFloat(s.Sum.Seconds()), formatFloat(s.P50.Seconds()),
				formatFloat(s.P99.Seconds()), formatFloat(s.Max.Seconds()))
		default:
			// Unreachable: kinds are only minted by the register helpers.
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

func jsonScalar(w io.Writer, name, typ, val string) error {
	_, err := fmt.Fprintf(w, "%q:{\"type\":%q,\"value\":%s}", name, typ, val)
	return err
}

// Handler serves the registry over HTTP: Prometheus text by default,
// JSON with ?format=json. Mounted by `crackserved -metrics-addr` at
// /metrics alongside net/http/pprof.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
