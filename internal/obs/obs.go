// Package obs is the observability core of crackstore: a stdlib-only
// metrics registry (atomic counters, gauges, and fixed-bucket log₂
// latency histograms) plus sampled per-query traces, built so the hot
// path never allocates and never takes a lock.
//
// Design rules:
//
//   - Instruments are plain structs of atomics. Add/Observe are a handful
//     of atomic ops — no maps, no interfaces, no allocation, no locks —
//     so serving layers can keep them on per-query paths.
//   - The Registry is only touched at registration time and at scrape
//     time. Layers hold direct *Counter/*Gauge/*Histogram pointers.
//   - Func-backed metrics bridge the repo's pre-existing stats structs
//     (serve.Stats, engine.ConcStats/DurStats, wal.Stats, ...) into the
//     registry at zero hot-path cost: the closure runs at scrape time
//     only.
//   - obs imports nothing from the rest of the repo; every other layer
//     may import obs. This keeps the dependency arrow one-directional.
//
// Metric naming follows Prometheus conventions: crack_<layer>_<what>[_unit]
// with counters suffixed _total and durations exported in seconds. See
// the "Observability" section in the root doc.go for the full scheme.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; all methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (queue depths, open conns).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// nHistBuckets is one bucket per possible bits.Len64 of a nanosecond
// duration: bucket i holds observations with bits.Len64(ns) == i, i.e.
// ns in [2^(i-1), 2^i). Bucket 0 holds zero/negative observations.
const nHistBuckets = 65

// Histogram is a fixed-bucket log₂ latency histogram. Observe is a few
// atomic ops (bucket add, sum add, a max check that is read-only unless
// a new maximum arrives) — no locks, no allocation — so it can sit on
// the per-query hot path. There is deliberately no separate count cell:
// the observation count is the sum of the buckets, computed at read
// time, which saves one contended atomic per Observe. Max is exact;
// quantiles are bucket upper bounds, so a reported quantile is never
// below the true value and never more than 2x above it.
type Histogram struct {
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds, exact (CAS race)
	buckets [nHistBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d <= 0 {
		// Zero contributes nothing to sum or max; one bucket add records it.
		h.buckets[0].Add(1)
		return
	}
	ns := uint64(d)
	h.buckets[bits.Len64(ns)].Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations (the sum of the buckets;
// under concurrent Observe it is a lower bound on the true count).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := 0; i < nHistBuckets; i++ {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the exact largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// bucketUpper returns the inclusive upper bound of bucket i in
// nanoseconds: the largest ns with bits.Len64(ns) == i.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of the
// bucket holding the nearest-rank observation — within 2x of the true
// value by construction. It returns 0 for an empty histogram. The
// per-bucket loads are not a consistent snapshot; under concurrent
// Observe the result is approximate, which is fine for monitoring.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	// Nearest-rank: ceil(q * total), clamped to [1, total].
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < nHistBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(bucketUpper(nHistBuckets - 1))
}

// HistSnapshot is a point-in-time summary of a Histogram.
type HistSnapshot struct {
	Count uint64
	Sum   time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot summarizes the histogram. Like Quantile, it is approximate
// under concurrent Observe.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// metricKind discriminates registry entries at scrape time.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// metric is one registered family.
type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	cf   func() uint64
	gf   func() float64
}

// Registry names a set of metric families and exposes them (Prometheus
// text and JSON; see expo.go). Registration is cheap but locked; do it
// at setup time and keep the returned instrument pointers. A nil
// *Registry is valid for all registration calls and returns working
// instruments that simply aren't exported — callers can instrument
// unconditionally and let the owner decide whether to expose.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) add(m *metric) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.metrics[m.name] = m
	r.order = append(r.order, m.name)
}

// Counter registers and returns a counter family. Counter names should
// end in _total.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, kind: kindGauge, g: g})
	return g
}

// Histogram registers and returns a latency histogram family. Duration
// histograms should be named _seconds; exposition converts from the
// internal nanosecond buckets.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.add(&metric{name: name, help: help, kind: kindHistogram, h: h})
	return h
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time only — the bridge for pre-existing cumulative stats (wal.Stats
// appends, engine kernel counters) with zero hot-path cost.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.add(&metric{name: name, help: help, kind: kindCounterFunc, cf: fn})
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time
// only (piece counts, limbo depth, tape length).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&metric{name: name, help: help, kind: kindGaugeFunc, gf: fn})
}

// FindHistogram returns the histogram registered under name, or nil.
// For tests and tools that want exact quantiles without parsing the
// exposition.
func (r *Registry) FindHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.metrics[name]; m != nil {
		return m.h
	}
	return nil
}

// Families returns the registered family names in registration order.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}
