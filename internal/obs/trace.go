package obs

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Per-query tracing. A trace is born at the client (which allocates the
// ID and decides, by sampling, whether this query is traced), rides the
// wire as a request extension, accumulates per-stage spans on the server
// (queue → execute → crack), returns in the response, and is completed
// by the client (send/recv spans). Traces are emitted as one-line JSON
// events; `crackserved -trace-sample` and `crackbench -trace` print
// them. Sampling is 1-in-N at the client, so the untraced hot path costs
// one counter increment and a branch.

// Stage labels one span of a query's life. Wire-encoded as a single
// byte; values are protocol surface and must not be renumbered.
type Stage uint8

const (
	// StageClientSend covers request encode + write on the client.
	StageClientSend Stage = 1
	// StageQueue is time spent waiting for a serve worker slot.
	StageQueue Stage = 2
	// StageExecute is engine execution, queue exit to answer.
	StageExecute Stage = 3
	// StageCrack is the selection part of execution (engine Cost.Sel):
	// locating qualifying tuples, including any physical cracking and
	// piece alignment the query triggered.
	StageCrack Stage = 4
	// StageEncode covers response encode + write on the server. It only
	// appears in server-emitted events: the response cannot carry the
	// time it took to build itself.
	StageEncode Stage = 5
	// StageClientRecv covers response read + decode on the client.
	StageClientRecv Stage = 6
)

// String names the stage for JSON events and rendering.
func (s Stage) String() string {
	switch s {
	case StageClientSend:
		return "client_send"
	case StageQueue:
		return "queue"
	case StageExecute:
		return "execute"
	case StageCrack:
		return "crack"
	case StageEncode:
		return "encode"
	case StageClientRecv:
		return "client_recv"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// MaxStage is the highest defined Stage; the wire decoder rejects
// anything above it.
const MaxStage = StageClientRecv

// Span is one timed stage of a traced query. Start is the offset from
// the trace's origin — client call start for client spans, request
// receipt for server spans; the client re-anchors server spans after its
// send span when assembling the full trace.
type Span struct {
	Stage Stage
	Start time.Duration
	Dur   time.Duration
}

// Trace is an assembled per-query trace.
type Trace struct {
	ID    uint64
	Op    string
	Total time.Duration
	Err   string
	Spans []Span
}

// WriteJSON emits the trace as a one-line JSON event. Durations are
// microseconds (µs resolution is ample for stage attribution and keeps
// events eyeball-able).
func (t *Trace) WriteJSON(w io.Writer) error {
	if _, err := fmt.Fprintf(w, `{"trace":"%016x","op":%q,"total_us":%d`,
		t.ID, t.Op, t.Total.Microseconds()); err != nil {
		return err
	}
	if t.Err != "" {
		if _, err := fmt.Fprintf(w, `,"err":%q`, t.Err); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, `,"spans":[`); err != nil {
		return err
	}
	for i, sp := range t.Spans {
		sep := ""
		if i > 0 {
			sep = ","
		}
		if _, err := fmt.Fprintf(w, `%s{"stage":%q,"start_us":%d,"dur_us":%d}`,
			sep, sp.Stage.String(), sp.Start.Microseconds(), sp.Dur.Microseconds()); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// Sampler makes the 1-in-N trace decision and allocates trace IDs.
// Next() is one atomic add and a mask on the untraced path. A nil
// Sampler never samples.
type Sampler struct {
	mask uint64 // pow2-rounded rate minus one
	hi   uint64 // random high bits so IDs from different processes differ
	ctr  atomic.Uint64
	once sync.Once
}

// NewSampler samples one call in n (n <= 0 disables sampling). The rate
// is rounded up to the next power of two so the sampling decision needs
// no division: at ~1M q/s even the integer DIV of a modulo shows up on
// the untraced hot path.
func NewSampler(n int) *Sampler {
	if n <= 0 {
		return nil
	}
	p := uint64(1)
	for p < uint64(n) {
		p <<= 1
	}
	return &Sampler{mask: p - 1}
}

// Next reports whether this call is sampled and, if so, returns a
// process-unique nonzero trace ID.
func (s *Sampler) Next() (uint64, bool) {
	if s == nil {
		return 0, false
	}
	c := s.ctr.Add(1)
	if c&s.mask != 0 {
		return 0, false
	}
	s.once.Do(func() {
		// Seeded lazily so constructing a sampler stays trivially cheap;
		// IDs need uniqueness across processes, not unpredictability.
		s.hi = uint64(rand.Int63())<<16 | 0x1
	})
	id := s.hi ^ c
	if id == 0 {
		id = 1
	}
	return id, true
}
