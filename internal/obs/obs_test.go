package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusGolden pins the text exposition byte-for-byte: families
// sorted by name, counters/gauges/func-backed scalars, and a histogram
// with log2 buckets in seconds, cumulative counts, an +Inf bucket, and
// the exact-max companion gauge. The format is protocol surface for
// scrapers and the CI metrics-smoke job; change it deliberately.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("crack_test_events_total", "events handled")
	c.Add(3)
	g := r.Gauge("crack_test_depth", "queue depth")
	g.Set(-2)
	r.CounterFunc("crack_test_bridge_total", "bridged cumulative stat", func() uint64 { return 7 })
	r.GaugeFunc("crack_test_ratio", "bridged instantaneous stat", func() float64 { return 1.5 })
	h := r.Histogram("crack_test_latency_seconds", "query latency")
	h.Observe(100 * time.Nanosecond) // bucket 7: (63ns, 127ns]
	h.Observe(300 * time.Nanosecond) // bucket 9: (255ns, 511ns]

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP crack_test_bridge_total bridged cumulative stat
# TYPE crack_test_bridge_total counter
crack_test_bridge_total 7
# HELP crack_test_depth queue depth
# TYPE crack_test_depth gauge
crack_test_depth -2
# HELP crack_test_events_total events handled
# TYPE crack_test_events_total counter
crack_test_events_total 3
# HELP crack_test_latency_seconds query latency
# TYPE crack_test_latency_seconds histogram
crack_test_latency_seconds_bucket{le="0"} 0
crack_test_latency_seconds_bucket{le="1e-09"} 0
crack_test_latency_seconds_bucket{le="3e-09"} 0
crack_test_latency_seconds_bucket{le="7e-09"} 0
crack_test_latency_seconds_bucket{le="1.5e-08"} 0
crack_test_latency_seconds_bucket{le="3.1e-08"} 0
crack_test_latency_seconds_bucket{le="6.3e-08"} 0
crack_test_latency_seconds_bucket{le="1.27e-07"} 1
crack_test_latency_seconds_bucket{le="2.55e-07"} 1
crack_test_latency_seconds_bucket{le="5.11e-07"} 2
crack_test_latency_seconds_bucket{le="+Inf"} 2
crack_test_latency_seconds_sum 4e-07
crack_test_latency_seconds_count 2
# HELP crack_test_latency_seconds_max exact maximum observation of crack_test_latency_seconds
# TYPE crack_test_latency_seconds_max gauge
crack_test_latency_seconds_max 3e-07
# HELP crack_test_ratio bridged instantaneous stat
# TYPE crack_test_ratio gauge
crack_test_ratio 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestJSONExposition sanity-checks the machine-readable twin: every
// family present, histograms summarized.
func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("crack_test_a_total", "a").Inc()
	h := r.Histogram("crack_test_b_seconds", "b")
	h.Observe(time.Millisecond)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := b.String()
	for _, frag := range []string{
		`"crack_test_a_total":{"type":"counter","value":1}`,
		`"crack_test_b_seconds":{"type":"histogram","count":1,`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("JSON exposition missing %s in:\n%s", frag, out)
		}
	}
}

// TestHistogramQuantileBounds checks the log2-bucket guarantee: a
// reported quantile is never below the true value and never more than
// 2x above it, and Max is exact.
func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	exactP99 := 990 * time.Microsecond
	got := h.Quantile(0.99)
	if got < exactP99 || got > 2*exactP99 {
		t.Errorf("p99 = %v, want within [%v, %v]", got, exactP99, 2*exactP99)
	}
	if h.Max() != 1000*time.Microsecond {
		t.Errorf("max = %v, want exactly 1ms", h.Max())
	}
	if h.Count() != 1000 {
		t.Errorf("count = %d, want 1000", h.Count())
	}
}

// TestHistogramHammer drives a histogram from 8 goroutines while a
// scraper renders the full exposition and reads quantiles concurrently.
// Run under -race this is the proof the hot path and the scrape path
// need no locks; the final totals must still be exact.
func TestHistogramHammer(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20000
	)
	r := NewRegistry()
	h := r.Histogram("crack_test_hammer_seconds", "hammered")
	c := r.Counter("crack_test_hammer_total", "hammered")

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				_ = h.Quantile(0.99)
				_ = h.Snapshot()
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Nanosecond)
				c.Inc()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	if h.Count() != goroutines*perG {
		t.Errorf("count = %d, want %d", h.Count(), goroutines*perG)
	}
	if c.Value() != goroutines*perG {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
	wantMax := time.Duration(goroutines*perG) * time.Nanosecond
	if h.Max() != wantMax {
		t.Errorf("max = %v, want %v", h.Max(), wantMax)
	}
	// Sum of 1..goroutines*perG nanoseconds.
	n := uint64(goroutines * perG)
	if got, want := uint64(h.Sum()), n*(n+1)/2; got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

// TestNilRegistry: a nil *Registry must hand out working instruments and
// no-op on every read path, so layers can instrument unconditionally.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("counter from nil registry broken: %d", c.Value())
	}
	r.Gauge("y", "").Set(5)
	r.Histogram("z_seconds", "").Observe(time.Second)
	r.CounterFunc("cf_total", "", func() uint64 { return 1 })
	r.GaugeFunc("gf", "", func() float64 { return 1 })
	if fams := r.Families(); fams != nil {
		t.Errorf("nil registry families = %v", fams)
	}
	if h := r.FindHistogram("z_seconds"); h != nil {
		t.Errorf("nil registry found a histogram")
	}
}

func TestDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

// TestTraceWriteJSON pins the one-line event format shared by server
// emission and `crackbench -trace` output.
func TestTraceWriteJSON(t *testing.T) {
	tr := Trace{
		ID:    0xabc,
		Op:    "query",
		Total: 1500 * time.Microsecond,
		Spans: []Span{
			{Stage: StageClientSend, Start: 0, Dur: 100 * time.Microsecond},
			{Stage: StageQueue, Start: 100 * time.Microsecond, Dur: 200 * time.Microsecond},
			{Stage: StageExecute, Start: 300 * time.Microsecond, Dur: 1000 * time.Microsecond},
		},
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := `{"trace":"0000000000000abc","op":"query","total_us":1500,"spans":[` +
		`{"stage":"client_send","start_us":0,"dur_us":100},` +
		`{"stage":"queue","start_us":100,"dur_us":200},` +
		`{"stage":"execute","start_us":300,"dur_us":1000}]}` + "\n"
	if got := b.String(); got != want {
		t.Errorf("trace event:\n got %s want %s", got, want)
	}

	tr.Err = "boom"
	b.Reset()
	_ = tr.WriteJSON(&b)
	if !strings.Contains(b.String(), `"err":"boom"`) {
		t.Errorf("error trace missing err field: %s", b.String())
	}
}

// TestSampler checks the 1-in-N contract and the nonzero-ID guarantee.
func TestSampler(t *testing.T) {
	if s := NewSampler(0); s != nil {
		t.Errorf("NewSampler(0) should disable sampling")
	}
	var nilS *Sampler
	if _, ok := nilS.Next(); ok {
		t.Errorf("nil sampler sampled")
	}

	s := NewSampler(4)
	sampled := 0
	for i := 0; i < 4000; i++ {
		if id, ok := s.Next(); ok {
			sampled++
			if id == 0 {
				t.Fatalf("sampled with zero trace ID")
			}
		}
	}
	if sampled != 1000 {
		t.Errorf("1-in-4 sampler: %d/4000 sampled, want 1000", sampled)
	}
}
