// Package partial implements partial sideways cracking (Section 4 of the
// paper): cracker maps materialized lazily as collections of independent
// chunks, enabling self-organizing storage management.
//
// Each map set S_A owns a chunk map H_A — a cracker column over (A, key) —
// whose value range is divided into areas. An area is fetched when the
// first partial map materializes a chunk from it; fetched areas of H_A are
// frozen (never cracked or physically updated again) so that every chunk
// created from them starts from the same initial layout. Each fetched area
// has its own cracker tape; chunks carry a cursor into their area's tape and
// are aligned by replay, exactly like full maps but at chunk granularity.
//
// The storage manager drops least-frequently-accessed chunks when a budget
// is exceeded; dropping the last chunk of an area un-fetches it (its tape's
// pending effects are pushed back to the set's pending updates, so nothing
// is lost). Heavily cracked or idle chunks can drop their head column; the
// head is recovered deterministically from the frozen H_A area by replaying
// the tape prefix, or copied from a same-cursor sibling chunk (Section 4.1,
// "Dropping the Head Column").
package partial

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"crackstore/internal/bitvec"
	"crackstore/internal/crack"
	"crackstore/internal/crackindex"
	"crackstore/internal/sideways"
	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// AttrPred and Result are shared with the full-map implementation.
type (
	AttrPred = sideways.AttrPred
	Result   = sideways.Result
)

type entryKind uint8

const (
	entryCrack entryKind = iota
	entryInsert
	entryDelete
)

type entry struct {
	kind      entryKind
	pred      store.Pred
	keys      []int // insert: tuple keys; delete: tuple keys (for un-fetch)
	positions []int // delete: physical positions at this tape point
}

// chunk is one materialized piece of a partial map: a (head, tail) pairs
// table covering its area's value range, plus a cursor into the area tape.
type chunk struct {
	p      *crack.Pairs
	cursor int
	access int64 // bumped atomically by the read-only path, plainly under
	// exclusive access (LFU storage management)
	headDropped bool
	lastCrack   int // store query counter at the last replayed crack entry
}

func (c *chunk) Len() int { return len(c.p.Tail) }

// tuples returns the chunk's storage cost in tuples: a full chunk of n
// pairs costs n; a head-dropped chunk costs half (rounded up).
func (c *chunk) tuples() int {
	if c.headDropped {
		return (c.Len() + 1) / 2
	}
	return c.Len()
}

// area is a fetched value range of a chunk map: a frozen span [lo, hi) of
// H_A, its own cracker tape, and the chunks materialized from it (keyed by
// tail attribute; "" is the key chunk used for deletions).
type area struct {
	id       int
	lo, hi   int // span in H_A, frozen at fetch time
	loB, hiB crackindex.Bound
	tape     []entry
	// lastUpdate is one past the tape index of the most recent insert or
	// delete entry. Partial alignment may lag on crack entries but must
	// never leave an update entry unapplied in a chunk it returns data
	// from.
	lastUpdate int
	chunks     map[string]*chunk
	access     int64
}

// covers reports whether bound b falls in [loB, hiB).
func (w *area) covers(b crackindex.Bound) bool {
	return !b.Less(w.loB) && b.Less(w.hiB)
}

// Set is a partial map set S_A: the chunk map H_A plus fetched areas and
// pending updates.
type Set struct {
	st    *Store
	attr  string
	ha    *crack.Pairs // chunk map H_A: head = A values, tail = keys
	areas []*area      // fetched areas, ascending by value range

	pendIns []int
	pendDel map[int]bool
	nextID  int
}

// Attr returns the head attribute name.
func (set *Set) Attr() string { return set.attr }

// NumAreas returns the number of fetched areas (for tests/experiments).
func (set *Set) NumAreas() int { return len(set.areas) }

// Store owns a base relation and its partial map sets.
type Store struct {
	rel        *store.Relation
	tombstones map[int]bool
	sets       map[string]*Set

	// Budget is the storage threshold T in tuples over all chunks (the
	// chunk map is excluded, like the cracker columns of selection
	// cracking); 0 means unlimited.
	Budget int
	// CachedPieceTuples enables head dropping for chunks whose pieces all
	// fit in a CPU-cache-sized window of this many tuples; 0 disables.
	CachedPieceTuples int
	// HeadDropIdleQueries drops the head of chunks not cracked for this
	// many queries; 0 disables.
	HeadDropIdleQueries int

	// ForceFullAlignment is an ablation switch: when set, covered chunks
	// align to the tape end like boundary chunks, disabling the partial
	// alignment optimization of Section 4.1.
	ForceFullAlignment bool

	// Policy is the adaptive cracking policy (crack.Policy) applied to
	// chunk maps and their chunks. It is frozen per set at set creation —
	// sibling chunks replay shared area tapes and must make identical
	// pivot decisions — so set Policy before the first query touches an
	// attribute. Lazy head-drop replay stays valid under every policy:
	// a crack whose bounds are existing boundaries is a physical no-op.
	Policy crack.Policy

	queries        int
	pinnedAreas    map[*area]bool // areas resolved by the in-flight query
	statsMu        sync.Mutex     // guards colMin/colMax (lazily filled by read-only probes)
	colMin, colMax map[string]Value
}

// NewStore wraps rel (not copied) for partial sideways cracking.
func NewStore(rel *store.Relation) *Store {
	return &Store{
		rel:        rel,
		tombstones: make(map[int]bool),
		sets:       make(map[string]*Set),
		colMin:     make(map[string]Value),
		colMax:     make(map[string]Value),
	}
}

// Relation returns the underlying base relation.
func (s *Store) Relation() *store.Relation { return s.rel }

// StorageTuples returns the total chunk storage in tuples (head-dropped
// chunks count half). The chunk maps are excluded; see ChunkMapTuples.
// Kernel aggregates the kernel partition counters and cracker-index
// sizes over every chunk map and every materialized chunk: the
// observability bridge. Call it under the same synchronization as
// queries (the stats are plain ints on the Pairs).
func (s *Store) Kernel() (ks crack.KernelStats, pieces, cols int) {
	for _, set := range s.sets {
		ks.Add(set.ha.Stats)
		pieces += set.ha.Idx.Pieces()
		cols++
		for _, a := range set.areas {
			for _, ch := range a.chunks {
				ks.Add(ch.p.Stats)
				pieces += ch.p.Idx.Pieces()
				cols++
			}
		}
	}
	return ks, pieces, cols
}

func (s *Store) StorageTuples() int {
	total := 0
	for _, set := range s.sets {
		for _, w := range set.areas {
			for _, c := range w.chunks {
				total += c.tuples()
			}
		}
	}
	return total
}

// ChunkMapTuples returns the total size of all chunk maps H_A in tuples.
func (s *Store) ChunkMapTuples() int {
	total := 0
	for _, set := range s.sets {
		total += set.ha.Len()
	}
	return total
}

// Insert appends a tuple to the base relation and registers it as pending
// with every existing set. Returns the new tuple's key.
func (s *Store) Insert(vals ...Value) int {
	s.rel.AppendRow(vals...)
	key := s.rel.NumRows() - 1
	for _, set := range s.sets {
		set.pendIns = append(set.pendIns, key)
	}
	return key
}

// Delete tombstones the tuple with the given key.
func (s *Store) Delete(key int) {
	if s.tombstones[key] {
		return
	}
	s.tombstones[key] = true
	for _, set := range s.sets {
		set.noteDelete(key)
	}
}

func (set *Set) noteDelete(key int) {
	for i, k := range set.pendIns {
		if k == key {
			set.pendIns = append(set.pendIns[:i], set.pendIns[i+1:]...)
			return
		}
	}
	set.pendDel[key] = true
}

// Set returns the partial map set for attr, creating H_A on demand from the
// current base state (inserts included; live tombstones become pending).
func (s *Store) Set(attr string) *Set {
	if set, ok := s.sets[attr]; ok {
		return set
	}
	col := s.rel.MustColumn(attr)
	n := col.Len()
	head := make([]Value, n)
	copy(head, col.Vals)
	tail := make([]Value, n)
	for i := range tail {
		tail[i] = Value(i)
	}
	set := &Set{
		st:      s,
		attr:    attr,
		ha:      crack.WrapPairs(head, tail),
		pendDel: make(map[int]bool),
	}
	// ha.Policy doubles as the set's frozen policy snapshot: chunks and
	// head-recovery replays copy it, so a later Store.Policy change cannot
	// misalign an existing set.
	set.ha.Policy = s.Policy
	for k := range s.tombstones {
		set.pendDel[k] = true
	}
	s.sets[attr] = set
	return set
}

// SetIfExists returns the set for attr if materialized.
func (s *Store) SetIfExists(attr string) *Set { return s.sets[attr] }

var (
	minBound = crackindex.Bound{V: math.MinInt64, Incl: true}  // before all values
	maxBound = crackindex.Bound{V: math.MaxInt64, Incl: false} // after all values
)

// FullRange matches every tuple; used to resolve the whole domain for
// disjunctive queries.
var FullRange = store.Pred{Lo: math.MinInt64, Hi: math.MaxInt64, LoIncl: true, HiIncl: true}

// resolve returns, in value order, the fetched areas that jointly cover
// pred's value range, fetching gap areas from H_A as needed (Section 4.1,
// "Creating Chunks"). Newly fetched areas cover exactly the needed range,
// so only pre-existing boundary areas may require chunk cracking.
func (set *Set) resolve(pred store.Pred) []*area {
	lowerB, upperB := pred.LowerBound(), pred.UpperBound()
	if !lowerB.Less(upperB) {
		return nil
	}
	var out []*area
	cur := lowerB
	i := 0
	for cur.Less(upperB) {
		for i < len(set.areas) && !cur.Less(set.areas[i].hiB) {
			i++
		}
		if i < len(set.areas) && !cur.Less(set.areas[i].loB) {
			out = append(out, set.areas[i])
			cur = set.areas[i].hiB
			i++
			continue
		}
		gapEnd := upperB
		if i < len(set.areas) && set.areas[i].loB.Less(upperB) {
			gapEnd = set.areas[i].loB
		}
		w := set.fetch(cur, gapEnd)
		out = append(out, w)
		// fetch inserted w into set.areas just before index i; keep i
		// pointing past it.
		i++
		cur = gapEnd
	}
	return out
}

// fetch cracks H_A at the given bounds (in the unfetched gap they fall in),
// marks the resulting span as a fetched area, and returns it.
func (set *Set) fetch(lo, hi crackindex.Bound) *area {
	p1 := crackHABound(set.ha, lo)
	p2 := crackHABound(set.ha, hi)
	if p2 < p1 {
		p2 = p1
	}
	w := &area{
		id: set.nextID, lo: p1, hi: p2, loB: lo, hiB: hi,
		chunks: make(map[string]*chunk),
	}
	set.nextID++
	at := sort.Search(len(set.areas), func(k int) bool { return lo.Less(set.areas[k].loB) })
	set.areas = append(set.areas, nil)
	copy(set.areas[at+1:], set.areas[at:])
	set.areas[at] = w
	return w
}

// crackHABound cracks H_A at bound b unless b is a sentinel edge.
func crackHABound(ha *crack.Pairs, b crackindex.Bound) int {
	if b == minBound {
		return 0
	}
	if b == maxBound {
		return ha.Len()
	}
	return ha.CrackBound(b)
}

// unfetch removes area w: its tape's updates are pushed back to the set's
// pending structures so they reapply when the range is fetched again.
func (set *Set) unfetch(w *area) {
	for _, e := range w.tape {
		switch e.kind {
		case entryInsert:
			set.pendIns = append(set.pendIns, e.keys...)
		case entryDelete:
			for _, k := range e.keys {
				set.pendDel[k] = true
			}
		}
	}
	for i, a := range set.areas {
		if a == w {
			set.areas = append(set.areas[:i], set.areas[i+1:]...)
			break
		}
	}
}

// ensureChunk materializes (or returns) the chunk of area w for tailAttr
// ("" = key chunk). New chunks fetch head values from the frozen H_A span
// and tail values from the base column via the keys stored in H_A
// (Section 4.1: "we use the keys stored in w to get the B values from B's
// base column").
func (set *Set) ensureChunk(w *area, tailAttr string, pinned map[*chunk]bool) *chunk {
	if c, ok := w.chunks[tailAttr]; ok {
		return c
	}
	size := w.hi - w.lo
	set.st.ensureBudget(size, pinned)
	head := make([]Value, size)
	copy(head, set.ha.Head[w.lo:w.hi])
	tail := make([]Value, size)
	if tailAttr == "" {
		copy(tail, set.ha.Tail[w.lo:w.hi])
	} else {
		col := set.st.rel.MustColumn(tailAttr)
		for i := 0; i < size; i++ {
			tail[i] = col.Vals[int(set.ha.Tail[w.lo+i])]
		}
	}
	c := &chunk{p: crack.WrapPairs(head, tail), lastCrack: set.st.queries}
	c.p.Policy = set.ha.Policy
	w.chunks[tailAttr] = c
	return c
}

// replay aligns chunk c of area w to tape position end.
func (set *Set) replay(w *area, c *chunk, end int, tailAttr string) {
	if c.cursor >= end {
		return
	}
	headCol := set.st.rel.MustColumn(set.attr)
	var tailCol *store.Column
	if tailAttr != "" {
		tailCol = set.st.rel.MustColumn(tailAttr)
	}
	for ; c.cursor < end; c.cursor++ {
		e := w.tape[c.cursor]
		// Head-dropped chunks replay lazily: a crack entry whose bounds
		// are already boundaries is a physical no-op and can be skipped
		// (Section 4.1: "if b matches one of the past cracks, cracking and
		// thus full alignment of c is not necessary"). Any entry that
		// would physically move tuples first recovers the head, since
		// crack, ripple-insert and delete reorganize head and tail
		// together.
		if c.headDropped {
			if e.kind == entryCrack && boundsKnown(c, e.pred) {
				continue
			}
			set.recoverHead(w, c)
		}
		switch e.kind {
		case entryCrack:
			c.p.CrackRange(e.pred)
			c.lastCrack = set.st.queries
		case entryInsert:
			c.p.RippleInsertKeys(e.keys, headCol, tailCol)
		case entryDelete:
			c.p.RippleDeleteBatch(e.positions)
		}
	}
}

// boundsKnown reports whether both bounds of pred are already boundaries in
// the chunk's index, making a crack replay a physical no-op.
func boundsKnown(c *chunk, pred store.Pred) bool {
	return c.p.Idx.Has(pred.LowerBound()) && c.p.Idx.Has(pred.UpperBound())
}

// recoverHead restores a dropped head column (Section 4.1). Fast path: copy
// from a sibling chunk of the same area at the same cursor. Otherwise the
// head is rebuilt from the frozen H_A span by replaying the tape prefix —
// deterministic cracking guarantees the rebuilt head pairs correctly with
// the surviving tail.
func (set *Set) recoverHead(w *area, c *chunk) {
	for _, sib := range w.chunks {
		if sib != c && !sib.headDropped && sib.cursor == c.cursor {
			head := make([]Value, len(sib.p.Head))
			copy(head, sib.p.Head)
			c.p.Head = head
			c.headDropped = false
			return
		}
	}
	size := w.hi - w.lo
	head := make([]Value, size)
	copy(head, set.ha.Head[w.lo:w.hi])
	dummy := make([]Value, size)
	tmp := crack.WrapPairs(head, dummy)
	// Replay under the set's policy: the rebuilt head must make the same
	// pivot decisions the chunk originally did to pair with its tail.
	tmp.Policy = set.ha.Policy
	headCol := set.st.rel.MustColumn(set.attr)
	for i := 0; i < c.cursor; i++ {
		e := w.tape[i]
		switch e.kind {
		case entryCrack:
			tmp.CrackRange(e.pred)
		case entryInsert:
			vals := make([]Value, len(e.keys))
			for i, k := range e.keys {
				vals[i] = headCol.Vals[k]
			}
			tmp.RippleInsertBatch(vals, make([]Value, len(e.keys)))
		case entryDelete:
			tmp.RippleDeleteBatch(e.positions)
		}
	}
	c.p.Head = tmp.Head
	c.headDropped = false
}

// DropHead explicitly drops the head column of every chunk in every set,
// keeping only tails (used by experiments; normally the automatic policies
// in maybeDropHeads apply).
func (s *Store) DropHead() {
	for _, set := range s.sets {
		for _, w := range set.areas {
			for _, c := range w.chunks {
				if !c.headDropped {
					c.p.Head = nil
					c.headDropped = true
				}
			}
		}
	}
}

// maybeDropHeads applies the two head-drop opportunities of Section 4.1 to
// the chunks used by the current query.
func (s *Store) maybeDropHeads(set *Set, used []*chunk, areas []*area) {
	if s.CachedPieceTuples <= 0 && s.HeadDropIdleQueries <= 0 {
		return
	}
	for i, c := range used {
		if c.headDropped {
			continue
		}
		if s.CachedPieceTuples > 0 && maxPiece(c, areas[i]) <= s.CachedPieceTuples {
			c.p.Head = nil
			c.headDropped = true
			continue
		}
		if s.HeadDropIdleQueries > 0 && s.queries-c.lastCrack >= s.HeadDropIdleQueries {
			c.p.Head = nil
			c.headDropped = true
		}
	}
}

// maxPiece returns the largest piece size of chunk c.
func maxPiece(c *chunk, _ *area) int {
	largest := 0
	prev := 0
	c.p.Idx.Walk(func(b crackindex.Bound, pos int) {
		if pos-prev > largest {
			largest = pos - prev
		}
		prev = pos
	})
	if c.Len()-prev > largest {
		largest = c.Len() - prev
	}
	return largest
}

// ensureBudget drops least-frequently-accessed unpinned chunks until size
// more tuples fit in the budget. Dropping an area's last chunk un-fetches
// the area.
func (s *Store) ensureBudget(size int, pinned map[*chunk]bool) {
	if s.Budget <= 0 {
		return
	}
	for s.StorageTuples()+size > s.Budget {
		type cand struct {
			set  *Set
			w    *area
			attr string
			c    *chunk
		}
		var victim *cand
		for _, set := range s.sets {
			for _, w := range set.areas {
				for attr, c := range w.chunks {
					if pinned[c] {
						continue
					}
					if victim == nil || c.access < victim.c.access ||
						(c.access == victim.c.access && w.id < victim.w.id) {
						victim = &cand{set, w, attr, c}
					}
				}
			}
		}
		if victim == nil {
			return // everything pinned; allow exceeding the budget
		}
		delete(victim.w.chunks, victim.attr)
		// Never un-fetch an area the in-flight query resolved: pushing its
		// tape updates back to pending while the query holds the area
		// object would double-apply them. An empty fetched area is valid.
		if len(victim.w.chunks) == 0 && !s.pinnedAreas[victim.w] {
			victim.set.unfetch(victim.w)
		}
	}
}

// Region is one chunk-wise result fragment: the aligned chunks of one area
// (parallel to the query's tail attributes) and the qualifying position
// range [Lo, Hi) within them.
type Region struct {
	Chunks []*chunk
	Lo, Hi int
}

// Tail returns the tail values of the i-th requested attribute within the
// region.
func (r Region) Tail(i int) []Value { return r.Chunks[i].p.Tail[r.Lo:r.Hi] }

// Query is the set-level partial sideways.select: resolve/fetch the areas
// covering pred, merge relevant pending updates into the area tapes, crack
// boundary chunks, partially align covered chunks, and return one Region
// per area in value order (chunk-wise processing, Section 4.1).
func (set *Set) Query(pred store.Pred, tailAttrs []string) []Region {
	set.st.queries++
	areas := set.resolve(pred)
	if len(areas) == 0 {
		return nil
	}
	set.st.pinnedAreas = make(map[*area]bool, len(areas))
	for _, w := range areas {
		set.st.pinnedAreas[w] = true
	}
	defer func() { set.st.pinnedAreas = nil }()
	lowerB, upperB := pred.LowerBound(), pred.UpperBound()

	// Merge pending insertions into the tapes of the areas they belong to.
	if len(set.pendIns) > 0 {
		headCol := set.st.rel.MustColumn(set.attr)
		perArea := make(map[*area][]int)
		rest := set.pendIns[:0]
		for _, k := range set.pendIns {
			if !pred.Matches(headCol.Vals[k]) {
				rest = append(rest, k)
				continue
			}
			w := findArea(areas, crackindex.Bound{V: headCol.Vals[k], Incl: true})
			if w == nil {
				rest = append(rest, k) // defensive; should not happen
				continue
			}
			perArea[w] = append(perArea[w], k)
		}
		set.pendIns = rest
		for _, w := range areas {
			if keys := perArea[w]; len(keys) > 0 {
				w.tape = append(w.tape, entry{kind: entryInsert, keys: keys})
				w.lastUpdate = len(w.tape)
			}
		}
	}

	// Merge pending deletions via each area's key chunk.
	if len(set.pendDel) > 0 {
		headCol := set.st.rel.MustColumn(set.attr)
		var matched []int
		for k := range set.pendDel {
			if pred.Matches(headCol.Vals[k]) {
				matched = append(matched, k)
			}
		}
		sort.Ints(matched)
		perArea := make(map[*area][]int)
		for _, k := range matched {
			w := findArea(areas, crackindex.Bound{V: headCol.Vals[k], Incl: true})
			if w == nil {
				continue
			}
			perArea[w] = append(perArea[w], k)
			delete(set.pendDel, k)
		}
		for _, w := range areas {
			keys := perArea[w]
			if len(keys) == 0 {
				continue
			}
			kc := set.ensureChunk(w, "", nil)
			set.replay(w, kc, len(w.tape), "")
			want := make(map[Value]bool, len(keys))
			for _, k := range keys {
				want[Value(k)] = true
			}
			var positions []int
			for i, k := range kc.p.Tail {
				if want[k] {
					positions = append(positions, i)
				}
			}
			sort.Ints(positions)
			w.tape = append(w.tape, entry{kind: entryDelete, keys: keys, positions: positions})
			w.lastUpdate = len(w.tape)
			set.replay(w, kc, len(w.tape), "")
		}
	}

	// Append crack entries to boundary areas only (Section 4.1, partial
	// alignment: "only the boundary chunks might need to be cracked").
	first, last := areas[0], areas[len(areas)-1]
	if first.loB.Less(lowerB) {
		first.tape = append(first.tape, entry{kind: entryCrack, pred: pred})
	}
	if upperB.Less(last.hiB) && (last != first || !first.loB.Less(lowerB)) {
		last.tape = append(last.tape, entry{kind: entryCrack, pred: pred})
	}

	// Align chunks and build regions.
	regions := make([]Region, 0, len(areas))
	pinned := make(map[*chunk]bool)
	var usedChunks []*chunk
	var usedAreas []*area
	for _, w := range areas {
		w.access++
		chunks := make([]*chunk, len(tailAttrs))
		// Partial alignment (Section 4.1): boundary areas align to the
		// tape end (they must replay this query's crack); covered areas
		// align only to the maximum cursor among the chunks this query
		// uses — but never short of the last update entry, which affects
		// chunk contents rather than just their internal order.
		target := len(w.tape)
		if !boundaryArea(w, first, last, lowerB, upperB) && !set.st.ForceFullAlignment {
			target = w.lastUpdate
			for _, attr := range tailAttrs {
				if c, ok := w.chunks[attr]; ok && c.cursor > target {
					target = c.cursor
				}
			}
		}
		for i, attr := range tailAttrs {
			c := set.ensureChunk(w, attr, pinned)
			pinned[c] = true
			set.replay(w, c, target, attr)
			c.access++
			chunks[i] = c
			usedChunks = append(usedChunks, c)
			usedAreas = append(usedAreas, w)
		}
		lo, hi := 0, 0
		if len(chunks) > 0 {
			hi = chunks[0].Len()
			if first == w && first.loB.Less(lowerB) {
				if p, ok := chunks[0].p.Idx.Lookup(lowerB); ok {
					lo = p
				}
			}
			if last == w && upperB.Less(last.hiB) {
				if p, ok := chunks[0].p.Idx.Lookup(upperB); ok {
					hi = p
				}
			}
			if hi < lo {
				hi = lo
			}
		}
		regions = append(regions, Region{Chunks: chunks, Lo: lo, Hi: hi})
	}
	set.st.maybeDropHeads(set, usedChunks, usedAreas)
	return regions
}

// boundaryArea reports whether w is a boundary area of the current query.
func boundaryArea(w, first, last *area, lowerB, upperB crackindex.Bound) bool {
	return (w == first && first.loB.Less(lowerB)) || (w == last && upperB.Less(last.hiB))
}

func findArea(areas []*area, b crackindex.Bound) *area {
	for _, w := range areas {
		if w.covers(b) {
			return w
		}
	}
	return nil
}

// EstimateSelectivity estimates |pred(attr)| using the chunk map's cracker
// index, falling back to uniform base-column statistics.
func (s *Store) EstimateSelectivity(attr string, pred store.Pred) int {
	if set := s.sets[attr]; set != nil {
		_, _, est := set.ha.Idx.Estimate(pred.LowerBound(), pred.UpperBound(), set.ha.Len())
		return est
	}
	lo, hi := s.colStats(attr)
	n := s.rel.NumRows()
	if hi <= lo {
		return n
	}
	clo, chi := pred.Lo, pred.Hi
	if clo < lo {
		clo = lo
	}
	if chi > hi {
		chi = hi
	}
	if chi < clo {
		return 0
	}
	return int(float64(n) * float64(chi-clo) / float64(hi-lo))
}

func (s *Store) colStats(attr string) (lo, hi Value) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if l, ok := s.colMin[attr]; ok {
		return l, s.colMax[attr]
	}
	col := s.rel.MustColumn(attr)
	l, _ := store.Min(col.Vals)
	h, _ := store.Max(col.Vals)
	s.colMin[attr], s.colMax[attr] = l, h
	return l, h
}

// SelectProject evaluates select projs from R where pred(selAttr) with
// chunk-wise processing.
func (s *Store) SelectProject(selAttr string, pred store.Pred, projs []string) Result {
	set := s.Set(selAttr)
	regions := set.Query(pred, projs)
	res := Result{Cols: make(map[string][]Value, len(projs))}
	for _, r := range regions {
		res.N += r.Hi - r.Lo
	}
	for i, attr := range projs {
		out := make([]Value, 0, res.N)
		for _, r := range regions {
			out = append(out, r.Tail(i)...)
		}
		res.Cols[attr] = out
	}
	return res
}

// choosePred picks the plan's head predicate: the most (conjunctive) or
// least (disjunctive) selective one per the chunk-map histograms. Read-only.
func (s *Store) choosePred(preds []AttrPred, disjunctive bool) int {
	chosen := 0
	if len(preds) == 1 {
		return 0
	}
	bestEst := s.EstimateSelectivity(preds[0].Attr, preds[0].Pred)
	for i := 1; i < len(preds); i++ {
		est := s.EstimateSelectivity(preds[i].Attr, preds[i].Pred)
		better := est < bestEst
		if disjunctive {
			better = est > bestEst
		}
		if better {
			chosen, bestEst = i, est
		}
	}
	return chosen
}

// multiPlan lays out a multi-selection plan: head and secondary predicates
// plus the tail-attribute slots (others first, then projections, then the
// head attribute itself for disjunctions, which must evaluate the head
// predicate outside its cracked region).
func (s *Store) multiPlan(preds []AttrPred, projs []string, disjunctive bool) (head AttrPred, others []AttrPred, tailAttrs []string, tailOf map[string]int) {
	chosen := s.choosePred(preds, disjunctive)
	others = make([]AttrPred, 0, len(preds)-1)
	for i, ap := range preds {
		if i != chosen {
			others = append(others, ap)
		}
	}
	head = preds[chosen]
	tailAttrs = make([]string, 0, len(others)+len(projs)+1)
	tailOf = make(map[string]int)
	add := func(attr string) {
		if _, ok := tailOf[attr]; !ok {
			tailOf[attr] = len(tailAttrs)
			tailAttrs = append(tailAttrs, attr)
		}
	}
	for _, ap := range others {
		add(ap.Attr)
	}
	for _, attr := range projs {
		add(attr)
	}
	if disjunctive {
		add(head.Attr)
	}
	return head, others, tailAttrs, tailOf
}

// MultiSelect evaluates a multi-selection query (Section 3.3 semantics on
// partial maps, processed chunk by chunk).
func (s *Store) MultiSelect(preds []AttrPred, projs []string, disjunctive bool) Result {
	if len(preds) == 0 {
		panic("partial: MultiSelect requires at least one predicate")
	}
	head, others, tailAttrs, tailOf := s.multiPlan(preds, projs, disjunctive)
	set := s.Set(head.Attr)

	if disjunctive {
		// The whole domain is relevant.
		regions := set.Query(FullRange, tailAttrs)
		return disjunctiveRegions(regions, tailOf, head, others, projs)
	}
	regions := set.Query(head.Pred, tailAttrs)
	return conjunctiveRegions(regions, tailOf, others, projs)
}

// disjunctiveRegions finishes a disjunctive plan: per region, mark tuples
// matching any predicate and reconstruct the projections. A pure read over
// the aligned chunks, shared by the write path and the read-only path.
func disjunctiveRegions(regions []Region, tailOf map[string]int, head AttrPred, others []AttrPred, projs []string) Result {
	res := Result{Cols: make(map[string][]Value, len(projs))}
	headIdx := tailOf[head.Attr]
	for _, r := range regions {
		n := r.Chunks[0].Len()
		bv := bitvec.New(n)
		headTail := r.Chunks[headIdx].p.Tail
		for i := 0; i < n; i++ {
			if head.Pred.Matches(headTail[i]) {
				bv.Set(i)
				continue
			}
			for _, ap := range others {
				if ap.Pred.Matches(r.Chunks[tailOf[ap.Attr]].p.Tail[i]) {
					bv.Set(i)
					break
				}
			}
		}
		res.N += bv.Count()
		for _, attr := range projs {
			vals := sideways.ReconstructBV(r.Chunks[tailOf[attr]].p.Tail, 0, bv)
			res.Cols[attr] = append(res.Cols[attr], vals...)
		}
	}
	if res.Cols == nil {
		res.Cols = map[string][]Value{}
	}
	for _, attr := range projs {
		if res.Cols[attr] == nil {
			res.Cols[attr] = []Value{}
		}
	}
	return res
}

// conjunctiveRegions finishes a conjunctive plan: per region, refine the
// qualifying range with a bit vector for the secondary predicates and
// reconstruct the projections. Pure read, shared by both paths.
func conjunctiveRegions(regions []Region, tailOf map[string]int, others []AttrPred, projs []string) Result {
	res := Result{Cols: make(map[string][]Value, len(projs))}
	for _, attr := range projs {
		res.Cols[attr] = []Value{}
	}
	for _, r := range regions {
		var bv *bitvec.Vector
		for _, ap := range others {
			tail := r.Chunks[tailOf[ap.Attr]].p.Tail
			if bv == nil {
				bv = sideways.SelectCreateBV(tail, r.Lo, r.Hi, ap.Pred)
			} else {
				sideways.SelectRefineBV(tail, r.Lo, r.Hi, ap.Pred, bv)
			}
		}
		if bv == nil {
			res.N += r.Hi - r.Lo
			for _, attr := range projs {
				res.Cols[attr] = append(res.Cols[attr], r.Tail(tailOf[attr])...)
			}
			continue
		}
		res.N += bv.Count()
		for _, attr := range projs {
			vals := sideways.ReconstructBV(r.Chunks[tailOf[attr]].p.Tail, r.Lo, bv)
			res.Cols[attr] = append(res.Cols[attr], vals...)
		}
	}
	return res
}

// pendingTouches reports whether any pending insertion or deletion of the
// set falls inside pred's value range. Read-only.
func (set *Set) pendingTouches(pred store.Pred) bool {
	if len(set.pendIns) == 0 && len(set.pendDel) == 0 {
		return false
	}
	headCol := set.st.rel.MustColumn(set.attr)
	for _, k := range set.pendIns {
		if pred.Matches(headCol.Vals[k]) {
			return true
		}
	}
	for k := range set.pendDel {
		if pred.Matches(headCol.Vals[k]) {
			return true
		}
	}
	return false
}

// resolveRO returns, in value order, the fetched areas covering pred, or
// ok == false when a gap would have to be fetched from H_A (a write).
// Read-only counterpart of resolve.
func (set *Set) resolveRO(pred store.Pred) ([]*area, bool) {
	lowerB, upperB := pred.LowerBound(), pred.UpperBound()
	if !lowerB.Less(upperB) {
		return nil, true
	}
	var out []*area
	cur := lowerB
	i := 0
	for cur.Less(upperB) {
		for i < len(set.areas) && !cur.Less(set.areas[i].hiB) {
			i++
		}
		if i >= len(set.areas) || cur.Less(set.areas[i].loB) {
			return nil, false
		}
		out = append(out, set.areas[i])
		cur = set.areas[i].hiB
		i++
	}
	return out, true
}

// regionsRO builds the chunk-wise regions for pred without replaying,
// fetching, or cracking anything. ok is false when the write path would
// reorganize: a gap needs fetching, a chunk is missing or misaligned, or a
// boundary chunk lacks the predicate's physical bounds.
func (s *Store) regionsRO(set *Set, pred store.Pred, tailAttrs []string) ([]Region, bool) {
	areas, ok := set.resolveRO(pred)
	if !ok {
		return nil, false
	}
	if len(areas) == 0 {
		return nil, true
	}
	lowerB, upperB := pred.LowerBound(), pred.UpperBound()
	first, last := areas[0], areas[len(areas)-1]
	regions := make([]Region, 0, len(areas))
	for _, w := range areas {
		chunks := make([]*chunk, len(tailAttrs))
		cursor := -1
		for i, attr := range tailAttrs {
			c, ok := w.chunks[attr]
			if !ok {
				return nil, false
			}
			// The write path replays laggards to a shared target; a cursor
			// mismatch among the used chunks means replay work.
			if cursor == -1 {
				cursor = c.cursor
			} else if c.cursor != cursor {
				return nil, false
			}
			chunks[i] = c
		}
		if len(tailAttrs) > 0 {
			if boundaryArea(w, first, last, lowerB, upperB) || s.ForceFullAlignment {
				// Boundary chunks must already sit at the tape end (the
				// write path would replay this query's crack onto them).
				if cursor != len(w.tape) {
					return nil, false
				}
			} else if cursor < w.lastUpdate {
				// Partial alignment may lag on cracks but never on updates.
				return nil, false
			}
		}
		lo, hi := 0, 0
		if len(chunks) > 0 {
			hi = chunks[0].Len()
			if w == first && first.loB.Less(lowerB) {
				p, ok := chunks[0].p.Idx.Lookup(lowerB)
				if !ok {
					return nil, false
				}
				lo = p
			}
			if w == last && upperB.Less(last.hiB) {
				p, ok := chunks[0].p.Idx.Lookup(upperB)
				if !ok {
					return nil, false
				}
				hi = p
			}
			if hi < lo {
				hi = lo
			}
		}
		regions = append(regions, Region{Chunks: chunks, Lo: lo, Hi: hi})
	}
	return regions, true
}

// planRO resolves a full read-only plan or reports ok == false when the
// query needs the write path.
func (s *Store) planRO(preds []AttrPred, projs []string, disjunctive bool) (regions []Region, tailOf map[string]int, head AttrPred, others []AttrPred, ok bool) {
	if len(preds) == 0 {
		return nil, nil, head, nil, false
	}
	var tailAttrs []string
	head, others, tailAttrs, tailOf = s.multiPlan(preds, projs, disjunctive)
	set := s.sets[head.Attr]
	if set == nil {
		return nil, nil, head, nil, false
	}
	pred := head.Pred
	if disjunctive {
		pred = FullRange
	}
	if set.pendingTouches(pred) {
		return nil, nil, head, nil, false
	}
	regions, ok = s.regionsRO(set, pred, tailAttrs)
	if !ok {
		return nil, nil, head, nil, false
	}
	return regions, tailOf, head, others, true
}

// ProbeMulti is the read-only probe of the two-phase (probe/execute)
// protocol: it reports whether MultiSelect(preds, projs, disjunctive) would
// physically reorganize the store (fetch an area, create or replay a chunk,
// crack, merge pending updates, or grow a tape). Safe for concurrent use
// with other read-only operations.
func (s *Store) ProbeMulti(preds []AttrPred, projs []string, disjunctive bool) bool {
	_, _, _, _, ok := s.planRO(preds, projs, disjunctive)
	return !ok
}

// MultiSelectRO is the reorganization-free execute path paired with
// ProbeMulti: it answers the query only when every needed chunk exists,
// is sufficiently aligned, and no pending update or fetch is required.
// ok is false otherwise; callers then fall back to MultiSelect under
// exclusive access. LFU access counters are bumped atomically; the
// head-drop idle clock is not advanced by read-only queries.
func (s *Store) MultiSelectRO(preds []AttrPred, projs []string, disjunctive bool) (Result, bool) {
	regions, tailOf, head, others, ok := s.planRO(preds, projs, disjunctive)
	if !ok {
		return Result{}, false
	}
	// No dedup needed: regions are one per area and a region's chunks are
	// keyed by distinct tail attributes, so no chunk repeats.
	for _, r := range regions {
		for _, c := range r.Chunks {
			atomic.AddInt64(&c.access, 1)
		}
	}
	if disjunctive {
		return disjunctiveRegions(regions, tailOf, head, others, projs), true
	}
	return conjunctiveRegions(regions, tailOf, others, projs), true
}

// sanity check helper used by tests: verify every chunk's piece invariants.
func (s *Store) checkInvariants() error {
	for attr, set := range s.sets {
		if !set.ha.CheckPieces() {
			return fmt.Errorf("chunk map H_%s violates piece invariants", attr)
		}
		for _, w := range set.areas {
			for tattr, c := range w.chunks {
				if !c.headDropped && !c.p.CheckPieces() {
					return fmt.Errorf("chunk %s/%d/%s violates piece invariants", attr, w.id, tattr)
				}
			}
		}
	}
	return nil
}
